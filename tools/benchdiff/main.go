// Command benchdiff compares a fresh `kfac-bench -json` run against the
// committed bench/BENCH_*.json reference trajectory and reports step-time
// and allocation regressions per scenario.
//
// Usage:
//
//	go run ./tools/benchdiff -ref bench -new bench-artifacts
//	go run ./tools/benchdiff -ref bench -new bench-artifacts -strict
//	go run ./tools/benchdiff -a bench -b bench-artifacts
//	go run ./tools/benchdiff -a bench -b bench -suffix _f32
//	go run ./tools/benchdiff -ref bench -new bench-artifacts -fabric tcp
//
// The -a/-b pair is the general two-directory form (-a is the baseline,
// -b the candidate); -ref/-new remain as the regression-gate spelling and
// the two pairs are interchangeable. With -suffix S, side B keeps only the
// scenarios whose name ends in S, rekeyed without the suffix — so
// `-a bench -b bench -suffix _f32` lines the committed mixed-precision
// cells (medium_sync_f32, …) up against their float64 counterparts and
// prints the measured speedup as a negative step-time delta.
//
// Scenarios are matched by their "scenario" field; entries present on only
// one side are listed but never fail the run (the matrices may evolve).
// Step-time deltas use a deliberately loose default tolerance — absolute
// timings on shared CI runners are noise — while allocation counts are
// deterministic and gate tightly. The exit status is 0 unless -strict is
// set and a regression was found, so CI can run it as a soft-fail
// regression report step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/experiments"
)

// load reads every BENCH_*.json in dir, keyed by scenario. A non-empty
// suffix keeps only scenarios ending in it and strips it from the key, so a
// suffixed matrix slice (e.g. the _f32 cells) can be compared against its
// unsuffixed baseline. A non-empty fabric keeps only cells measured on that
// transport — the committed references mix in-process w4 cells with
// multi-process tcp w16/w32 cells, and a run covers one transport at a time.
func load(dir, suffix, fabric string) (map[string]*experiments.BenchResult, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]*experiments.BenchResult, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var r experiments.BenchResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if r.Schema != "" && r.Schema != experiments.BenchSchema {
			// Foreign-schema artifacts (e.g. BENCH_eig.json, the kernel
			// microbenchmark) live alongside the step cells but are not
			// step trajectories; skip them.
			continue
		}
		if r.Scenario == "" {
			return nil, fmt.Errorf("%s: missing scenario field", p)
		}
		if fabric != "" && r.Fabric != fabric {
			continue
		}
		key := r.Scenario
		if suffix != "" {
			if !strings.HasSuffix(key, suffix) {
				continue
			}
			key = strings.TrimSuffix(key, suffix)
		}
		out[key] = &r
	}
	return out, nil
}

// stageCol formats one stage's ref→new pair with its relative delta,
// e.g. " 120.4→  48.1ms  -60%".
func stageCol(ref, new int64) string {
	return fmt.Sprintf("%7.1f→%7.1fms %+4.0f%%",
		float64(ref)/1e6, float64(new)/1e6, 100*relDelta(ref, new))
}

// relDelta returns (new-old)/old, or 0 when old is 0.
func relDelta(old, new int64) float64 {
	if old == 0 {
		return 0
	}
	return float64(new-old) / float64(old)
}

func main() {
	var (
		refDir    = flag.String("ref", "bench", "directory holding the committed reference BENCH_*.json")
		newDir    = flag.String("new", ".", "directory holding the fresh run's BENCH_*.json")
		aDir      = flag.String("a", "", "baseline directory (general two-directory form; overrides -ref)")
		bDir      = flag.String("b", "", "candidate directory (general two-directory form; overrides -new)")
		suffix    = flag.String("suffix", "", "keep only side-B scenarios with this suffix, rekeyed without it (e.g. _f32)")
		fabric    = flag.String("fabric", "", "compare only cells measured on this transport (local, inproc, tcp; empty = all)")
		stepTol   = flag.Float64("step-tol", 0.50, "allowed relative step-time increase (0.50 = +50%)")
		allocsTol = flag.Float64("allocs-tol", 0.10, "allowed relative allocs/step increase beyond the absolute slack")
		allocsAbs = flag.Float64("allocs-abs", 2, "absolute allocs/step slack before the relative tolerance applies")
		strict    = flag.Bool("strict", false, "exit non-zero when a regression exceeds tolerance")
	)
	flag.Parse()

	baseline, candidate := *refDir, *newDir
	if *aDir != "" {
		baseline = *aDir
	}
	if *bDir != "" {
		candidate = *bDir
	}
	ref, err := load(baseline, "", *fabric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: ref:", err)
		os.Exit(2)
	}
	fresh, err := load(candidate, *suffix, *fabric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: new:", err)
		os.Exit(2)
	}
	if len(ref) == 0 || len(fresh) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: nothing to compare (%d reference, %d fresh)\n", len(ref), len(fresh))
		os.Exit(2)
	}

	var scenarios []string
	for s := range fresh {
		scenarios = append(scenarios, s)
	}
	sort.Strings(scenarios)

	regressions := 0
	fmt.Printf("%-32s %14s %14s %8s   %s\n", "scenario", "ref step", "new step", "Δ", "allocs ref→new")
	for _, s := range scenarios {
		n := fresh[s]
		r, ok := ref[s]
		if !ok {
			fmt.Printf("%-32s %14s %14s %8s   (new scenario, no reference)\n", s, "—", "—", "—")
			continue
		}
		d := relDelta(r.StepTimeMeanNS, n.StepTimeMeanNS)
		mark := ""
		if d > *stepTol {
			mark = "  ← step-time regression"
			regressions++
		}
		allocDelta := n.SteadyAllocsPerStep - r.SteadyAllocsPerStep
		if allocDelta > *allocsAbs && allocDelta > *allocsTol*r.SteadyAllocsPerStep {
			mark += "  ← allocs regression"
			regressions++
		}
		fmt.Printf("%-32s %11.2fms %11.2fms %+7.1f%%   %.1f→%.1f%s\n",
			s, float64(r.StepTimeMeanNS)/1e6, float64(n.StepTimeMeanNS)/1e6, 100*d,
			r.SteadyAllocsPerStep, n.SteadyAllocsPerStep, mark)
	}
	// Per-stage compute breakdown: factor construction, eigendecomposition,
	// and preconditioning GEMMs per scenario. Informational only — stage
	// shares shift by design when solvers or schedules change, and the
	// step-time gate above already bounds the total — but this is where a
	// solver speedup (or regression) is actually visible.
	fmt.Printf("\n%-32s %21s %21s %21s\n", "stage breakdown", "factor ref→new", "eig ref→new", "precond ref→new")
	for _, s := range scenarios {
		n := fresh[s]
		r, ok := ref[s]
		if !ok {
			continue
		}
		if r.FactorComputeNS+r.EigComputeNS+r.PreconditionNS == 0 &&
			n.FactorComputeNS+n.EigComputeNS+n.PreconditionNS == 0 {
			continue
		}
		fmt.Printf("%-32s %s %s %s\n", s,
			stageCol(r.FactorComputeNS, n.FactorComputeNS),
			stageCol(r.EigComputeNS, n.EigComputeNS),
			stageCol(r.PreconditionNS, n.PreconditionNS))
	}

	var refOnly []string
	if *suffix == "" {
		// Under -suffix the sides intentionally cover different matrix
		// slices; listing the unsuffixed remainder as "missing" is noise.
		for s := range ref {
			if _, ok := fresh[s]; !ok {
				refOnly = append(refOnly, s)
			}
		}
	}
	sort.Strings(refOnly)
	for _, s := range refOnly {
		fmt.Printf("%-32s (reference scenario missing from this run)\n", s)
	}

	if regressions > 0 {
		fmt.Printf("\nbenchdiff: %d regression(s) beyond tolerance (step %.0f%%, allocs +%.0f/%.0f%%)\n",
			regressions, 100**stepTol, *allocsAbs, 100**allocsTol)
		if *strict {
			os.Exit(1)
		}
		fmt.Println("benchdiff: soft-fail mode — reporting only (pass -strict to gate)")
		return
	}
	fmt.Println("\nbenchdiff: no regressions beyond tolerance")
}
