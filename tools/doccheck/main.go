// Command doccheck fails when a package exports an identifier without a doc
// comment — the repository's substitute for revive's `exported` rule, built
// on go/ast alone so CI needs no third-party linter.
//
// Usage:
//
//	go run ./tools/doccheck ./internal/kfac ./internal/comm ...
//
// It checks exported functions, methods (on exported receivers), types,
// and var/const specs in non-test files. Grouped var/const declarations
// are satisfied by a doc comment on the group. Exit status 1 lists every
// undocumented export.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		dir = strings.TrimPrefix(dir, "./")
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				bad += checkFile(fset, filepath.ToSlash(path), file)
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkFile reports undocumented exports in one parsed file.
func checkFile(fset *token.FileSet, path string, file *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: undocumented exported %s %s\n", path, p.Line, kind, name)
		bad++
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are not public API.
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if groupDoc || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// receiverExported reports whether a method's receiver type is exported.
func receiverExported(fl *ast.FieldList) bool {
	if len(fl.List) == 0 {
		return false
	}
	t := fl.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true // conservatively check unknown shapes
		}
	}
}
