// Package plot renders simple ASCII line charts and bar charts so the
// experiment harness can *draw* the paper's figures in a terminal, not just
// print their underlying series. Charts are deterministic text, suitable
// for golden-file comparison in tests.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of y-values over an implicit 0..n-1 x-axis.
type Series struct {
	Name   string
	Values []float64
	// Marker is the rune drawn for this series (assigned automatically
	// when zero).
	Marker rune
}

var defaultMarkers = []rune{'*', 'o', '+', 'x', '#', '@'}

// LineChart renders the series on a width×height character grid with a
// y-axis scale and a legend. All series share the x range [0, maxLen).
func LineChart(title string, width, height int, series ...Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if maxLen == 0 {
		return title + "\n(no data)\n"
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i, v := range s.Values {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			yf := (v - lo) / (hi - lo)
			y := height - 1 - int(yf*float64(height-1)+0.5)
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = marker
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for r, row := range grid {
		// y-axis label on first, middle, last row.
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", lo)
		case height / 2:
			label = fmt.Sprintf("%9.3g ", lo+(hi-lo)/2)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%sx: 0..%d", strings.Repeat(" ", 11), maxLen-1)
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "   %c %s", marker, s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

// Bar is one labeled bar value.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters.
func BarChart(title string, width int, bars []Bar) string {
	if width < 8 {
		width = 8
	}
	maxV := 0.0
	maxLabel := 0
	for _, b := range bars {
		if math.Abs(b.Value) > maxV {
			maxV = math.Abs(b.Value)
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for _, b := range bars {
		n := 0
		if maxV > 0 {
			n = int(math.Abs(b.Value) / maxV * float64(width))
		}
		bar := strings.Repeat("█", n)
		if n == 0 && b.Value != 0 {
			bar = "▏"
		}
		fmt.Fprintf(&sb, "%-*s  %10.4g  %s\n", maxLabel, b.Label, b.Value, bar)
	}
	return sb.String()
}
