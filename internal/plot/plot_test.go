package plot

import (
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	out := LineChart("test chart", 40, 10,
		Series{Name: "up", Values: []float64{0, 1, 2, 3, 4}},
		Series{Name: "down", Values: []float64{4, 3, 2, 1, 0}},
	)
	if !strings.Contains(out, "test chart") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "up") || !strings.Contains(out, "down") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
	// Axis labels include extremes.
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Error("missing y-axis labels")
	}
}

func TestLineChartDeterministic(t *testing.T) {
	s := Series{Name: "s", Values: []float64{1, 5, 3}}
	a := LineChart("t", 30, 8, s)
	b := LineChart("t", 30, 8, s)
	if a != b {
		t.Error("chart not deterministic")
	}
}

func TestLineChartEmpty(t *testing.T) {
	out := LineChart("empty", 30, 8)
	if !strings.Contains(out, "no data") {
		t.Error("expected no-data message")
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	out := LineChart("const", 30, 8, Series{Name: "c", Values: []float64{2, 2, 2}})
	if out == "" || strings.Contains(out, "NaN") {
		t.Error("constant series should render without NaN")
	}
}

func TestLineChartSingleValue(t *testing.T) {
	out := LineChart("one", 30, 8, Series{Name: "c", Values: []float64{1}})
	if !strings.Contains(out, "x: 0..0") {
		t.Error("single point axis wrong")
	}
}

func TestLineChartClampsTinyDims(t *testing.T) {
	out := LineChart("tiny", 1, 1, Series{Name: "c", Values: []float64{1, 2}})
	if out == "" {
		t.Error("tiny dims should still render")
	}
}

func TestCustomMarker(t *testing.T) {
	out := LineChart("m", 30, 6, Series{Name: "c", Values: []float64{1, 2}, Marker: '%'})
	if !strings.Contains(out, "%") {
		t.Error("custom marker not used")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("bars", 20, []Bar{
		{"alpha", 10},
		{"beta", 5},
		{"zero", 0},
	})
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("missing labels")
	}
	// alpha's bar should be longer than beta's.
	lines := strings.Split(out, "\n")
	var alphaLen, betaLen int
	for _, l := range lines {
		n := strings.Count(l, "█")
		if strings.HasPrefix(l, "alpha") {
			alphaLen = n
		}
		if strings.HasPrefix(l, "beta") {
			betaLen = n
		}
	}
	if alphaLen <= betaLen {
		t.Errorf("bar lengths: alpha %d, beta %d", alphaLen, betaLen)
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("z", 20, []Bar{{"a", 0}})
	if out == "" {
		t.Error("zero bars should render")
	}
}
