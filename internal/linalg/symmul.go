package linalg

import (
	"runtime"
	"sync"

	"repro/internal/sched"
	"repro/internal/tensor"
)

// symThreshold is the multiply-add count below which SymMulT1Into runs
// serially; it mirrors the threshold of the tensor matmul kernels.
const symThreshold = 64 * 64 * 64

// SymMulT1Into computes the Gram matrix dst = aᵀ × a for a (k×m), writing
// an m×m result. It is the kernel K-FAC's covariance factors A = aᵀa/N and
// G = gᵀg are built from: because the result is symmetric, only the upper
// triangle is computed (half the multiply-adds of a general matmul) and the
// lower triangle is mirrored.
//
// The result is bit-identical to tensor.MatMulT1Into(dst, a, a) for finite
// inputs: each upper-triangle element accumulates the same products in the
// same k-ascending order as the general kernel, partial sums can never be
// −0 (they start at +0 and +0 + ±0 = +0), and mirroring copies products
// that are commutatively identical. Large products are split row-blocked
// across the shared compute pool (sched.Shared) with zero steady-state heap
// allocation; parallel results are bit-identical to serial ones because
// every element is produced by exactly one range.
func SymMulT1Into(dst, a *tensor.Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != m {
		panic("linalg: SymMulT1Into shape mismatch")
	}
	dst.Zero()
	nw := runtime.GOMAXPROCS(0)
	// Half the work of a general m×m×k product.
	if work := m * m * k / 2; work < symThreshold || nw <= 1 || m < 2 {
		symMulRange(dst.Data, a.Data, 0, m, k, m)
	} else {
		r := symRangerPool.Get().(*symRanger)
		r.dst, r.a, r.k, r.m = dst.Data, a.Data, k, m
		// Oversubscribe chunks: row i carries m−i products, so equal row
		// counts are imbalanced; smaller chunks let the pool level the load.
		sched.Shared().ForEach(m, 4*nw, r, &r.wg)
		r.dst, r.a = nil, nil
		symRangerPool.Put(r)
	}
	mirrorLower(dst.Data, m)
}

// SymMulT1 returns aᵀ × a for a (k×m) as a freshly allocated m×m tensor.
func SymMulT1(a *tensor.Tensor) *tensor.Tensor {
	dst := tensor.New(a.Shape[1], a.Shape[1])
	SymMulT1Into(dst, a)
	return dst
}

// symRanger is the pooled dispatch record for one parallel SymMulT1Into.
type symRanger struct {
	wg     sync.WaitGroup
	dst, a []float64
	k, m   int
}

// RunRange implements sched.Ranger.
func (r *symRanger) RunRange(lo, hi int) {
	symMulRange(r.dst, r.a, lo, hi, r.k, r.m)
}

var symRangerPool = sync.Pool{New: func() any { return new(symRanger) }}

// symMulRange accumulates rows [lo, hi) of the upper triangle of aᵀa. The
// loop structure (k outer, destination rows inner, zero-products skipped,
// 4-way unrolled axpy) matches tensor's matmulT1Range exactly, restricted
// to columns j ≥ i.
func symMulRange(dst, a []float64, lo, hi, k, m int) {
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyUnroll(dst[i*m+i:(i+1)*m], arow[i:], av)
		}
	}
}

// mirrorLower copies the computed upper triangle into the lower one.
func mirrorLower(dst []float64, m int) {
	for i := 1; i < m; i++ {
		for j := 0; j < i; j++ {
			dst[i*m+j] = dst[j*m+i]
		}
	}
}

// axpyUnroll computes dst += a*src with 4-way unrolling — the same
// accumulation kernel as tensor's axpy, duplicated here so the symmetric
// multiply stays bit-compatible with the general matmul path (enforced by
// TestSymMulBitIdenticalToMatMulT1).
func axpyUnroll(dst, src []float64, a float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}
