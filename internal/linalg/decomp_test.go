package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestLUSolveRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randSPD(rng, n, 0.5)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := tensor.MatVec(a, tensor.FromSlice(x, n))
		got, err := SolveLinear(a, b.Data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: solve mismatch at %d: %v vs %v", n, i, got[i], x[i])
			}
		}
	}
}

func TestLUDetKnown(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-(-2)) > 1e-12 {
		t.Errorf("Det = %v, want -2", d)
	}
}

func TestDetSingularIsZero(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 2, 4}, 2, 2)
	d, err := Det(a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("Det of singular = %v", d)
	}
}

// Property: det(AB) = det(A)·det(B).
func TestDetMultiplicativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := tensor.Randn(rng, 1, n, n)
		b := tensor.Randn(rng, 1, n, n)
		da, err := Det(a)
		if err != nil {
			return false
		}
		db, err := Det(b)
		if err != nil {
			return false
		}
		dab, err := Det(tensor.MatMul(a, b))
		if err != nil {
			return false
		}
		return math.Abs(dab-da*db) < 1e-6*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := LUDecompose(tensor.New(2, 3)); err == nil {
		t.Error("expected error")
	}
}

func TestLUSolveWrongLength(t *testing.T) {
	lu, err := LUDecompose(tensor.Eye(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lu.Solve([]float64{1, 2}); err == nil {
		t.Error("expected error for wrong rhs length")
	}
}

func TestQRReconstruct(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {5, 3}, {10, 7}, {4, 1}} {
		rng := rand.New(rand.NewSource(int64(dims[0]*10 + dims[1])))
		a := tensor.Randn(rng, 1, dims[0], dims[1])
		qr, err := QRDecompose(a)
		if err != nil {
			t.Fatal(err)
		}
		back := tensor.MatMul(qr.Q, qr.R)
		if !back.Equal(a, 1e-9) {
			t.Errorf("%v: QR does not reconstruct A", dims)
		}
	}
}

func TestQROrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.Randn(rng, 1, 12, 5)
	qr, err := QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	qtq := tensor.MatMulT1(qr.Q, qr.Q)
	if !qtq.Equal(tensor.Eye(5), 1e-10) {
		t.Error("QᵀQ != I")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := tensor.Randn(rng, 1, 6, 4)
	qr, err := QRDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		for j := 0; j < i; j++ {
			if qr.R.At(i, j) != 0 {
				t.Fatalf("R[%d,%d] = %v below diagonal", i, j, qr.R.At(i, j))
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := QRDecompose(tensor.New(2, 4)); err == nil {
		t.Error("expected error for wide matrix")
	}
}

func TestPowerIterateDominantEigenvalue(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
	a := tensor.New(4, 4)
	for i, v := range []float64{1, 7, 3, 2} {
		a.Set(v, i, i)
	}
	lambda, vec, err := PowerIterate(a, 500, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-7) > 1e-6 {
		t.Errorf("dominant eigenvalue = %v, want 7", lambda)
	}
	// Eigenvector concentrates on coordinate 1.
	if math.Abs(math.Abs(vec.Data[1])-1) > 1e-4 {
		t.Errorf("eigenvector = %v", vec.Data)
	}
}

func TestPowerIterateMatchesSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 15, 0.1)
	lambda, _, err := PowerIterate(a, 2000, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := eg.Values[len(eg.Values)-1]
	if math.Abs(lambda-want) > 1e-6*(1+want) {
		t.Errorf("power iteration %v vs symeig %v", lambda, want)
	}
}

func TestPowerIterateZeroMatrix(t *testing.T) {
	lambda, _, err := PowerIterate(tensor.New(3, 3), 10, 1e-10)
	if err != nil || lambda != 0 {
		t.Errorf("zero matrix: %v, %v", lambda, err)
	}
}

func TestPowerIterateEmpty(t *testing.T) {
	if _, _, err := PowerIterate(tensor.New(0, 0), 10, 1e-10); err == nil {
		t.Error("expected error for empty matrix")
	}
}
