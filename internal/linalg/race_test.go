//go:build race

package linalg

// raceEnabled reports whether this test binary runs under the race
// detector, where sync.Pool deliberately drops a fraction of Puts and
// allocation-count assertions cannot hold.
const raceEnabled = true
