//go:build amd64 && !purego

package linalg

import "math"

// AVX2+FMA implementations of the blocked eigensolver's float64 kernel
// primitives (simd_amd64.s), swapped into the dispatch variables at init
// when the CPU and OS support them. Build with -tags purego to keep the
// portable scalar path on any hardware. The feature probe mirrors
// internal/tensor's: CPUID AVX2+FMA plus OS-enabled YMM state.

//go:noescape
func dotF64AVX(a, b []float64) float64

//go:noescape
func axpyF64AVX(dst, src []float64, a float64)

//go:noescape
func rotRows4AVX(a0, a1, a2, a3, cs, sn []float64, nrot int)

// eigCPUID executes CPUID with the given leaf/subleaf.
func eigCPUID(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// eigXGETBV reads extended control register 0.
func eigXGETBV() (eax, edx uint32)

// eigHasAVX2FMA reports whether the CPU supports AVX2 and FMA and the OS
// has enabled YMM state saving.
func eigHasAVX2FMA() bool {
	maxID, _, _, _ := eigCPUID(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := eigCPUID(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := eigXGETBV()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := eigCPUID(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// rotSweepRowFMA is the single-row rotation sweep with arithmetic
// bitwise-matched to rotRows4AVX: the right-column update is one rounded
// product plus one fused multiply-add (VMULPD + VFMADD231PD), the carry
// update one rounded product plus one fused negated multiply-add
// (VMULPD + VFNMADD231PD). Chunk grids group rows into fours with a
// scalar remainder, so this pairing is what keeps the QL pass
// deterministic across team sizes under the AVX dispatch.
func rotSweepRowFMA(sub, cs, sn []float64, nrot int) {
	carry := sub[nrot]
	for t := 0; t < nrot; t++ {
		p := nrot - 1 - t
		x := sub[p]
		c, s := cs[t], sn[t]
		sub[p+1] = math.FMA(s, x, c*carry)
		carry = math.FMA(-s, carry, c*x)
	}
	sub[0] = carry
}

func init() {
	if eigHasAVX2FMA() {
		eigDot = dotF64AVX
		eigAxpy = axpyF64AVX
		rotRows4 = rotRows4AVX
		rotRow = rotSweepRowFMA
		eigKernelISA = "avx2+fma"
	}
}
