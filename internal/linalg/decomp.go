package linalg

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Additional dense decompositions: LU with partial pivoting (general
// solves and determinants), Householder QR (orthogonalization and
// least-squares), and power/inverse iteration for extremal eigenvalue
// estimates. The K-FAC core only needs SymEig and the damped inverses;
// these support the wider library surface (condition estimation, adaptive
// damping diagnostics, test oracles).

// LU holds a PA = LU factorization with partial pivoting. L is unit lower
// triangular and U upper triangular, packed into a single matrix; Piv
// records row exchanges; Sign is the permutation parity (±1).
type LU struct {
	packed *tensor.Tensor
	Piv    []int
	Sign   float64
}

// LUDecompose factors square matrix a. Returns ErrSingular when a pivot
// vanishes.
func LUDecompose(a *tensor.Tensor) (*LU, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: LU requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	m := a.Clone()
	piv := make([]int, n)
	sign := 1.0
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		maxAbs := math.Abs(m.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.Data[r*n+col]); v > maxAbs {
				maxAbs = v
				p = r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		piv[col] = p
		if p != col {
			swapRows(m.Data, n, p, col)
			sign = -sign
		}
		pivVal := m.Data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := m.Data[r*n+col] / pivVal
			m.Data[r*n+col] = f
			for j := col + 1; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
		}
	}
	return &LU{packed: m, Piv: piv, Sign: sign}, nil
}

// Det returns the determinant from the factorization.
func (lu *LU) Det() float64 {
	n := lu.packed.Rows()
	d := lu.Sign
	for i := 0; i < n; i++ {
		d *= lu.packed.Data[i*n+i]
	}
	return d
}

// Solve solves A x = b for one right-hand side using the factorization.
func (lu *LU) Solve(b []float64) ([]float64, error) {
	n := lu.packed.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: LU solve needs rhs of length %d, got %d", n, len(b))
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply permutation.
	for i := 0; i < n; i++ {
		if p := lu.Piv[i]; p != i {
			x[i], x[p] = x[p], x[i]
		}
	}
	// Forward solve L y = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		var s float64
		for k := 0; k < i; k++ {
			s += lu.packed.Data[i*n+k] * x[k]
		}
		x[i] -= s
	}
	// Back solve U x = y.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for k := i + 1; k < n; k++ {
			s += lu.packed.Data[i*n+k] * x[k]
		}
		x[i] = (x[i] - s) / lu.packed.Data[i*n+i]
	}
	return x, nil
}

// QR holds a Householder QR factorization A = Q R with Q (m×n,
// orthonormal columns, thin form) and R (n×n upper triangular), for m ≥ n.
type QR struct {
	Q *tensor.Tensor
	R *tensor.Tensor
}

// QRDecompose factors a (m×n, m ≥ n) by Householder reflections.
func QRDecompose(a *tensor.Tensor) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires m ≥ n, got %dx%d", m, n)
	}
	r := a.Clone()
	// Store Householder vectors.
	vs := make([][]float64, n)
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm += r.Data[i*n+k] * r.Data[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs[k] = nil
			continue
		}
		if r.Data[k*n+k] > 0 {
			norm = -norm
		}
		v := make([]float64, m-k)
		for i := k; i < m; i++ {
			v[i-k] = r.Data[i*n+k]
		}
		v[0] -= norm
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm == 0 {
			vs[k] = nil
			continue
		}
		// Apply H = I − 2vvᵀ/(vᵀv) to the trailing submatrix.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * r.Data[i*n+j]
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				r.Data[i*n+j] -= f * v[i-k]
			}
		}
		vs[k] = v
	}
	// Extract R (upper n×n) and zero below.
	rOut := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rOut.Data[i*n+j] = r.Data[i*n+j]
		}
	}
	// Accumulate Q = H₀H₁…H_{n−1} applied to the first n columns of I.
	q := tensor.New(m, n)
	for j := 0; j < n; j++ {
		q.Data[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.Data[i*n+j]
			}
			f := 2 * dot / vnorm
			for i := k; i < m; i++ {
				q.Data[i*n+j] -= f * v[i-k]
			}
		}
	}
	return &QR{Q: q, R: rOut}, nil
}

// PowerIterate estimates the dominant eigenvalue (by magnitude) of
// symmetric matrix a and its eigenvector, via power iteration with the
// given start vector length checks. Returns after iters sweeps or when the
// Rayleigh quotient stabilizes within tol.
func PowerIterate(a *tensor.Tensor, iters int, tol float64) (float64, *tensor.Tensor, error) {
	n := a.Rows()
	if a.Cols() != n || n == 0 {
		return 0, nil, fmt.Errorf("linalg: PowerIterate requires non-empty square matrix")
	}
	v := tensor.New(n)
	for i := range v.Data {
		// Deterministic, non-degenerate start: alternating pattern.
		v.Data[i] = 1 / float64(i+1)
	}
	normalize(v)
	prev := math.Inf(1)
	var lambda float64
	for it := 0; it < iters; it++ {
		av := tensor.MatVec(a, v)
		lambda = v.Dot(av)
		norm := av.Norm2()
		if norm == 0 {
			return 0, v, nil // a ≈ 0 matrix
		}
		av.Scale(1 / norm)
		v = av
		if math.Abs(lambda-prev) <= tol*(1+math.Abs(lambda)) {
			break
		}
		prev = lambda
	}
	return lambda, v, nil
}

func normalize(v *tensor.Tensor) {
	n := v.Norm2()
	if n > 0 {
		v.Scale(1 / n)
	}
}

// Det returns the determinant of a via LU.
func Det(a *tensor.Tensor) (float64, error) {
	lu, err := LUDecompose(a)
	if err == ErrSingular {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return lu.Det(), nil
}

// SolveLinear solves A x = b via LU with partial pivoting.
func SolveLinear(a *tensor.Tensor, b []float64) ([]float64, error) {
	lu, err := LUDecompose(a)
	if err != nil {
		return nil, err
	}
	return lu.Solve(b)
}
