package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// blockedDims covers the blocked path proper (≥ eigBlockedMinDim),
// including odd sizes that exercise the remainder panel and the final
// narrow panel, plus one multiple-of-b size.
var blockedDims = []int{130, 161, 256, 293}

func maxAbsRowSum(a *tensor.Tensor) float64 {
	n := a.Rows()
	worst := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a.Data[i*n+j])
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

func TestSymEigBlockedReconstruct(t *testing.T) {
	for _, n := range blockedDims {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randSPD(rng, n, 0.1)
		var eg Eigen
		if err := SymEigBlockedInto(a, &eg, 4); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := eg.Reconstruct()
		tol := 1e-12 * float64(n) * maxAbsRowSum(a)
		if !r.Equal(a, tol) {
			t.Errorf("n=%d: QΛQᵀ does not reconstruct A within %g", n, tol)
		}
	}
}

func TestSymEigBlockedOrthonormal(t *testing.T) {
	n := 161
	rng := rand.New(rand.NewSource(42))
	a := randSPD(rng, n, 0.01)
	var eg Eigen
	if err := SymEigBlockedInto(a, &eg, 4); err != nil {
		t.Fatal(err)
	}
	// QᵀQ = I.
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += eg.Q.Data[k*n+i] * eg.Q.Data[k*n+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-12*float64(n) {
				t.Fatalf("QᵀQ[%d,%d] = %v, want %v", i, j, dot, want)
			}
		}
	}
}

// TestSymEigBlockedValuesMatchSerial bounds the eigenvalue disagreement
// between the blocked and serial solvers by the backward-stability bound
// c·n·eps·‖A‖ both algorithms individually satisfy.
func TestSymEigBlockedValuesMatchSerial(t *testing.T) {
	for _, n := range blockedDims {
		rng := rand.New(rand.NewSource(int64(n) + 1))
		a := randSPD(rng, n, 0.1)
		serial, err := SymEig(a)
		if err != nil {
			t.Fatalf("n=%d serial: %v", n, err)
		}
		var blocked Eigen
		if err := SymEigBlockedInto(a, &blocked, 4); err != nil {
			t.Fatalf("n=%d blocked: %v", n, err)
		}
		const eps = 2.220446049250313e-16
		tol := 64 * float64(n) * eps * maxAbsRowSum(a)
		for i := range serial.Values {
			if d := math.Abs(serial.Values[i] - blocked.Values[i]); d > tol {
				t.Errorf("n=%d: eigenvalue %d differs by %g (tol %g): serial %v blocked %v",
					n, i, d, tol, serial.Values[i], blocked.Values[i])
			}
		}
	}
}

// TestSymEigBlockedDeterministicAcrossTeams is the core contract: the
// same input must produce bitwise-identical Q and Λ for every team size
// and on repeated calls, so SPMD ranks with heterogeneous team
// assignments stay in lockstep.
func TestSymEigBlockedDeterministicAcrossTeams(t *testing.T) {
	for _, n := range []int{130, 256} {
		rng := rand.New(rand.NewSource(int64(n) + 2))
		a := randSPD(rng, n, 0.1)
		var ref Eigen
		if err := SymEigBlockedInto(a, &ref, 1); err != nil {
			t.Fatal(err)
		}
		refQ := append([]float64(nil), ref.Q.Data...)
		refV := append([]float64(nil), ref.Values...)
		for team := 1; team <= 8; team++ {
			for rep := 0; rep < 2; rep++ {
				var eg Eigen
				if err := SymEigBlockedInto(a, &eg, team); err != nil {
					t.Fatalf("n=%d team=%d: %v", n, team, err)
				}
				for i, v := range eg.Values {
					if math.Float64bits(v) != math.Float64bits(refV[i]) {
						t.Fatalf("n=%d team=%d rep=%d: eigenvalue %d not bitwise equal", n, team, rep, i)
					}
				}
				for i, v := range eg.Q.Data {
					if math.Float64bits(v) != math.Float64bits(refQ[i]) {
						t.Fatalf("n=%d team=%d rep=%d: Q[%d] not bitwise equal", n, team, rep, i)
					}
				}
			}
		}
	}
}

// TestSymEigBlockedSmallFallback checks that below eigBlockedMinDim the
// blocked entry point is bitwise the serial solver for every team size —
// small factors must not depend on team assignment at all.
func TestSymEigBlockedSmallFallback(t *testing.T) {
	for _, n := range []int{1, 2, 17, 64, 127} {
		rng := rand.New(rand.NewSource(int64(n) + 3))
		a := randSPD(rng, n, 0.1)
		var serial Eigen
		if err := SymEigInto(a, &serial); err != nil {
			t.Fatal(err)
		}
		for _, team := range []int{1, 8} {
			var eg Eigen
			if err := SymEigBlockedInto(a, &eg, team); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i := range serial.Values {
				if math.Float64bits(serial.Values[i]) != math.Float64bits(eg.Values[i]) {
					t.Fatalf("n=%d team=%d: fallback eigenvalue %d differs from serial", n, team, i)
				}
			}
			for i := range serial.Q.Data {
				if math.Float64bits(serial.Q.Data[i]) != math.Float64bits(eg.Q.Data[i]) {
					t.Fatalf("n=%d team=%d: fallback Q[%d] differs from serial", n, team, i)
				}
			}
		}
	}
}

// TestSymEigBlockedDiagonal drives every Householder column through the
// scale==0 (zero column) branch: a diagonal input is already tridiagonal.
func TestSymEigBlockedDiagonal(t *testing.T) {
	n := 161
	a := tensor.New(n, n)
	rng := rand.New(rand.NewSource(5))
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		v := rng.Float64()*10 - 5
		a.Data[i*n+i] = v
		want[i] = v
	}
	var eg Eigen
	if err := SymEigBlockedInto(a, &eg, 4); err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), want...)
	for i := 0; i < n-1; i++ { // selection sort, to mirror the solver
		k := i
		for j := i + 1; j < n; j++ {
			if sorted[j] < sorted[k] {
				k = j
			}
		}
		sorted[i], sorted[k] = sorted[k], sorted[i]
	}
	for i := range sorted {
		if math.Abs(eg.Values[i]-sorted[i]) > 1e-12 {
			t.Fatalf("diagonal eigenvalue %d = %v, want %v", i, eg.Values[i], sorted[i])
		}
	}
	r := eg.Reconstruct()
	if !r.Equal(a, 1e-10) {
		t.Fatal("diagonal input does not reconstruct")
	}
}

func TestSymEigBlockedRejectsBadInput(t *testing.T) {
	if err := SymEigBlockedInto(tensor.New(3, 4), &Eigen{}, 2); err == nil {
		t.Fatal("expected error for non-square input")
	}
	a := tensor.New(4, 4)
	a.Data[5] = math.NaN()
	if err := SymEigBlockedInto(a, &Eigen{}, 2); err == nil {
		t.Fatal("expected error for NaN input")
	}
	a.Data[5] = math.Inf(1)
	if err := SymEigBlockedInto(a, &Eigen{}, 2); err == nil {
		t.Fatal("expected error for Inf input")
	}
}

// TestSymEigBlockedKernelTimes checks that the timed variant attributes
// wall time to all three blocked kernels on a blocked-path input.
func TestSymEigBlockedKernelTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 192, 0.1)
	var eg Eigen
	var tm EigKernelTimes
	if err := SymEigBlockedTimedInto(a, &eg, 2, &tm); err != nil {
		t.Fatal(err)
	}
	if tm.TridiagNS <= 0 || tm.BackAccumNS <= 0 || tm.QLNS <= 0 {
		t.Fatalf("kernel times not populated: %+v", tm)
	}
	if tm.TotalNS() != tm.TridiagNS+tm.BackAccumNS+tm.QLNS {
		t.Fatalf("TotalNS mismatch: %+v", tm)
	}
}

// TestSymEigBlockedSteadyStateZeroAllocs verifies the arena + pool
// workspace routing: after warmup, repeated decompositions into the same
// Eigen target allocate nothing.
func TestSymEigBlockedSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops random Puts under the race detector; allocation counts cannot hold")
	}
	rng := rand.New(rand.NewSource(13))
	a := randSPD(rng, 160, 0.1)
	var eg Eigen
	for i := 0; i < 3; i++ {
		if err := SymEigBlockedInto(a, &eg, 2); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := SymEigBlockedInto(a, &eg, 2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SymEigBlockedInto allocates %.1f/op, want 0", allocs)
	}
}
