package linalg

import (
	"errors"
	"fmt"

	"math"

	"repro/internal/tensor"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Inverse returns the inverse of square matrix a computed by Gauss–Jordan
// elimination with partial pivoting. This is the explicit-inverse path the
// paper ablates in Table I: cheaper per update than eigendecomposition but
// less robust for ill-conditioned covariance factors.
//
// Inverse (and InverseDamped) are reentrant: the input is cloned before
// elimination and no package state is shared, so concurrent calls are safe
// — the property the pipelined K-FAC engine depends on when inverting a
// rank's owned factors in parallel.
func Inverse(a *tensor.Tensor) (*tensor.Tensor, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: Inverse requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	// Augment [A | I] and reduce in place.
	m := a.Clone()
	inv := tensor.Eye(n)
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		maxAbs := math.Abs(m.Data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.Data[r*n+col]); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m.Data, n, pivot, col)
			swapRows(inv.Data, n, pivot, col)
		}
		// Scale pivot row.
		p := m.Data[col*n+col]
		invP := 1 / p
		for j := 0; j < n; j++ {
			m.Data[col*n+j] *= invP
			inv.Data[col*n+j] *= invP
		}
		// Eliminate all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m.Data[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
				inv.Data[r*n+j] -= f * inv.Data[col*n+j]
			}
		}
	}
	return inv, nil
}

func swapRows(data []float64, n, i, j int) {
	ri := data[i*n : (i+1)*n]
	rj := data[j*n : (j+1)*n]
	for k := 0; k < n; k++ {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// InverseDamped returns (A + γI)⁻¹ by explicit inversion — the Tikhonov-
// regularized inverse of Equation (11) in the paper.
func InverseDamped(a *tensor.Tensor, gamma float64) (*tensor.Tensor, error) {
	n := a.Rows()
	d := a.Clone()
	for i := 0; i < n; i++ {
		d.Data[i*n+i] += gamma
	}
	return Inverse(d)
}

// Cholesky returns the lower-triangular L with A = L Lᵀ for symmetric
// positive-definite a. Returns ErrSingular if a pivot is not positive.
func Cholesky(a *tensor.Tensor) (*tensor.Tensor, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: Cholesky requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	l := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Data[i*n+i] = math.Sqrt(s)
			} else {
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, for each
// column of b. b is n×m; the result is n×m.
func SolveCholesky(l, b *tensor.Tensor) *tensor.Tensor {
	n := l.Rows()
	m := b.Cols()
	x := b.Clone()
	// Forward solve L y = b.
	for col := 0; col < m; col++ {
		for i := 0; i < n; i++ {
			s := x.Data[i*m+col]
			for k := 0; k < i; k++ {
				s -= l.Data[i*n+k] * x.Data[k*m+col]
			}
			x.Data[i*m+col] = s / l.Data[i*n+i]
		}
		// Back solve Lᵀ x = y.
		for i := n - 1; i >= 0; i-- {
			s := x.Data[i*m+col]
			for k := i + 1; k < n; k++ {
				s -= l.Data[k*n+i] * x.Data[k*m+col]
			}
			x.Data[i*m+col] = s / l.Data[i*n+i]
		}
	}
	return x
}

// ConditionNumber estimates the 2-norm condition number of symmetric matrix
// a from its eigendecomposition: |λ|max / |λ|min. Returns +Inf when the
// smallest magnitude eigenvalue is zero.
func ConditionNumber(a *tensor.Tensor) (float64, error) {
	eg, err := SymEig(a)
	if err != nil {
		return 0, err
	}
	if len(eg.Values) == 0 {
		return 1, nil
	}
	maxAbs, minAbs := 0.0, math.Inf(1)
	for _, v := range eg.Values {
		av := math.Abs(v)
		if av > maxAbs {
			maxAbs = av
		}
		if av < minAbs {
			minAbs = av
		}
	}
	if minAbs == 0 {
		return math.Inf(1), nil
	}
	return maxAbs / minAbs, nil
}
