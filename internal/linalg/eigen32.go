package linalg

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/tensor"
)

// Float32 symmetric eigendecomposition by cyclic Jacobi rotations — the
// mixed-precision twin of SymEigInto. Jacobi is preferred over a float32
// tred2/tql2 port because every update is a plane rotation, which the
// tensor.Rot32 kernel vectorizes 8-wide, and because its element-wise
// convergence test is robust at float32 precision where the QL shift
// strategy's eps-scaled deflation is not. The decomposition lands in an
// ordinary float64 Eigen: eigenvalues and eigenvectors are widened at the
// boundary so everything downstream (damped inverses, the decomposition
// allgather, checkpoints) is precision-agnostic.
//
// Note on cost: the float32 Jacobi is typically slower than the float64
// tred2/tql2 path for the factor sizes K-FAC produces (Jacobi is O(n³) per
// sweep with several sweeps). The mixed-precision step still comes out
// ahead because eigendecomposition runs every InvUpdateFreq steps while the
// float32 matmul kernels run every step; see docs/PERFORMANCE.md.

// maxJacobiSweeps bounds the cyclic sweeps of SymEigInto32. Well-conditioned
// symmetric matrices converge in ~6–10 sweeps; the budget only trips on
// pathological inputs.
const maxJacobiSweeps = 40

// jacobiWorkspace holds one decomposition's float32 working matrix and
// transposed eigenvector accumulator; pooled because the pipelined K-FAC
// engine decomposes a rank's owned layers concurrently.
type jacobiWorkspace struct {
	m  []float32 // working copy of the matrix, row-major n×n
	vt []float32 // Vᵀ: row j is eigenvector j, so V-updates are row rotations
}

var jacobiPool = sync.Pool{New: func() any { return new(jacobiWorkspace) }}

// grow sizes the workspace for an n×n problem.
func (w *jacobiWorkspace) grow(n int) {
	need := n * n
	if cap(w.m) < need {
		w.m = make([]float32, need)
	}
	w.m = w.m[:need]
	if cap(w.vt) < need {
		w.vt = make([]float32, need)
	}
	w.vt = w.vt[:need]
}

// SymEigInto32 computes the eigendecomposition of symmetric matrix a using
// float32 working storage, writing the result (widened to float64) into eg
// with the same reuse semantics as SymEigInto. The input is read at float64
// and rounded once into the float32 working copy; rotation parameters are
// computed in float64 from the float32 entries, so each rotation is as
// accurate as float32 storage permits. Asymmetry up to round-off is
// tolerated ((A+Aᵀ)/2 is decomposed). NaN/Inf inputs are rejected before eg
// is touched; ErrNoConvergence is wrapped when the off-diagonal mass fails
// to shrink into tolerance within the sweep budget.
func SymEigInto32(a *tensor.Tensor, eg *Eigen) error {
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("linalg: SymEigInto32 requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	for _, x := range a.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("linalg: SymEigInto32 input contains NaN/Inf")
		}
	}
	q := tensor.Ensure(&eg.Q, n, n)
	eg.Values = ensureFloats(eg.Values, n)
	if n == 0 {
		return nil
	}

	ws := jacobiPool.Get().(*jacobiWorkspace)
	defer jacobiPool.Put(ws)
	ws.grow(n)
	m, vt := ws.m, ws.vt

	// Narrow + symmetrize the input; start V at identity. frob2 fixes the
	// convergence scale: off-diagonal mass below ~1e-12·‖A‖²_F is round-off
	// at float32 resolution (ε₃₂² ≈ 1.4e-14), not structure.
	frob2 := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
			m[i*n+j] = float32(v)
			vt[i*n+j] = 0
		}
		vt[i*n+i] = 1
		for j := 0; j < n; j++ {
			v := float64(m[i*n+j])
			frob2 += v * v
		}
	}
	tol := 1e-12 * (frob2 + 1)

	off := offDiag2(m, n)
	sweeps := 0
	for off > tol && sweeps < maxJacobiSweeps {
		for p := 0; p < n-1; p++ {
			rowP := m[p*n : (p+1)*n]
			for qi := p + 1; qi < n; qi++ {
				apq := float64(rowP[qi])
				if apq == 0 {
					continue
				}
				app := float64(rowP[p])
				aqq := float64(m[qi*n+qi])
				// Rotation parameters in float64 (Golub & Van Loan §8.5.2):
				// t = tan of the angle that zeroes a[p][q].
				theta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c64 := 1 / math.Sqrt(t*t+1)
				s64 := t * c64
				c, s := float32(c64), float32(s64)

				// A ← JᵀA: rotate rows p and q (vectorized).
				rowQ := m[qi*n : (qi+1)*n]
				tensor.Rot32(rowP, rowQ, c, s)
				// A ← AJ: rotate columns p and q (strided scalar pass).
				for k := 0; k < n; k++ {
					akp := m[k*n+p]
					akq := m[k*n+qi]
					m[k*n+p] = c*akp - s*akq
					m[k*n+qi] = s*akp + c*akq
				}
				// V ← VJ, maintained transposed: rotate VT rows p and q.
				tensor.Rot32(vt[p*n:(p+1)*n], vt[qi*n:(qi+1)*n], c, s)
			}
		}
		off = offDiag2(m, n)
		sweeps++
	}
	if off > tol*1e6 {
		// Far outside round-off even after the full sweep budget.
		return fmt.Errorf("linalg: SymEigInto32 off-diagonal %.3e above tolerance %.3e: %w", off, tol, ErrNoConvergence)
	}

	// Sort eigenvalues ascending, permuting VT rows to match.
	for i := 0; i < n; i++ {
		eg.Values[i] = float64(m[i*n+i])
	}
	for i := 0; i < n-1; i++ {
		k := i
		p := eg.Values[i]
		for j := i + 1; j < n; j++ {
			if eg.Values[j] < p {
				k = j
				p = eg.Values[j]
			}
		}
		if k != i {
			eg.Values[k] = eg.Values[i]
			eg.Values[i] = p
			ri, rk := vt[i*n:(i+1)*n], vt[k*n:(k+1)*n]
			for j := 0; j < n; j++ {
				ri[j], rk[j] = rk[j], ri[j]
			}
		}
	}
	// Widen VT into Q with the transpose folded in: Q's column j is
	// eigenvector j, i.e. VT's row j.
	for j := 0; j < n; j++ {
		row := vt[j*n : (j+1)*n]
		for i := 0; i < n; i++ {
			q.Data[i*n+j] = float64(row[i])
		}
	}
	return nil
}

// offDiag2 returns the sum of squared off-diagonal elements (in float64) —
// the quantity each Jacobi sweep monotonically shrinks.
func offDiag2(m []float32, n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		row := m[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			v := float64(row[j])
			s += v * v
		}
	}
	return s
}
