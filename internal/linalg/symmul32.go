package linalg

import (
	"runtime"
	"sync"

	"repro/internal/sched"
	"repro/internal/tensor"
)

// symBlock32 is the destination-row tile of the float32 symmetric multiply:
// each tile streams a's rows once for up to symBlock32 destination rows.
const symBlock32 = 8

// SymMulT1Into32 computes the Gram matrix dst = aᵀ × a for a float32 a
// (k×m), writing an m×m result — the float32 twin of SymMulT1Into, and the
// kernel the mixed-precision covariance updates (A = aᵀa/N, G = gᵀg) run
// on. Only the upper triangle is computed; the lower triangle is mirrored.
//
// Accumulation follows the package-wide mixed-precision discipline:
// products are summed in float32 within k-chunks, each chunk is folded into
// a float64 accumulator, and the total is rounded back to float32 once.
// When k fits in a single chunk the result is bit-identical to the chunked
// path (widening a float32 and rounding it back is exact). Large products
// split row-blocked across the shared compute pool with zero steady-state
// heap allocation.
func SymMulT1Into32(dst, a *tensor.T32) {
	k, m := a.Shape[0], a.Shape[1]
	if dst.Shape[0] != m || dst.Shape[1] != m {
		panic("linalg: SymMulT1Into32 shape mismatch")
	}
	nw := runtime.GOMAXPROCS(0)
	// Half the work of a general m×m×k product.
	if work := m * m * k / 2; work < symThreshold || nw <= 1 || m < 2 {
		symMulRange32(dst.Data, a.Data, 0, m, k, m)
	} else {
		r := sym32RangerPool.Get().(*sym32Ranger)
		r.dst, r.a, r.k, r.m = dst.Data, a.Data, k, m
		// Oversubscribe chunks: row i carries m−i products, so equal row
		// counts are imbalanced; smaller chunks let the pool level the load.
		sched.Shared().ForEach(m, 4*nw, r, &r.wg)
		r.dst, r.a = nil, nil
		sym32RangerPool.Put(r)
	}
	mirrorLower32(dst.Data, m)
}

// sym32Ranger is the pooled dispatch record for one parallel SymMulT1Into32.
type sym32Ranger struct {
	wg   sync.WaitGroup
	dst  []float32
	a    []float32
	k, m int
}

// RunRange implements sched.Ranger.
func (r *sym32Ranger) RunRange(lo, hi int) {
	symMulRange32(r.dst, r.a, lo, hi, r.k, r.m)
}

var sym32RangerPool = sync.Pool{New: func() any { return new(sym32Ranger) }}

// sym32Workspace holds one range's packed chunk and accumulator storage for
// a row block of upper-triangle segments; pooled for zero-allocation reuse.
type sym32Workspace struct {
	chunk []float32
	acc   []float64
}

var sym32Pool = sync.Pool{New: func() any { return new(sym32Workspace) }}

// grow sizes the workspace to hold at least need packed elements.
func (w *sym32Workspace) grow(need int) {
	if cap(w.chunk) < need {
		w.chunk = make([]float32, need)
	}
	w.chunk = w.chunk[:need]
	if cap(w.acc) < need {
		w.acc = make([]float64, need)
	}
	w.acc = w.acc[:need]
}

// symKChunk32 mirrors the tensor package's k-chunk extent (kChunk32) so
// both float32 kernel families share one accumulation granularity.
const symKChunk32 = 64

// symMulRange32 accumulates rows [lo, hi) of the upper triangle of aᵀa.
// Row i's segment spans columns [i, m). Row blocks pack their segments
// contiguously (offset r·(m−i0) − r(r−1)/2) so one FoldAcc32 call folds the
// whole block's chunk into the float64 accumulator.
func symMulRange32(dst, a []float32, lo, hi, k, m int) {
	if k <= symKChunk32 {
		// Single chunk: accumulate directly in the float32 destination —
		// bit-identical to the chunked path below.
		for i := lo; i < hi; i++ {
			seg := dst[i*m+i : (i+1)*m]
			for j := range seg {
				seg[j] = 0
			}
		}
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			for i := lo; i < hi; i++ {
				if av := arow[i]; av != 0 {
					tensor.Axpy32(dst[i*m+i:(i+1)*m], arow[i:], av)
				}
			}
		}
		return
	}
	ws := sym32Pool.Get().(*sym32Workspace)
	for i0 := lo; i0 < hi; i0 += symBlock32 {
		i1 := i0 + symBlock32
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		seg0 := m - i0 // longest (first) segment of the block
		packed := rows*seg0 - rows*(rows-1)/2
		ws.grow(packed)
		acc := ws.acc[:packed]
		for j := range acc {
			acc[j] = 0
		}
		for kb := 0; kb < k; kb += symKChunk32 {
			kmax := kb + symKChunk32
			if kmax > k {
				kmax = k
			}
			chunk := ws.chunk[:packed]
			for j := range chunk {
				chunk[j] = 0
			}
			for kk := kb; kk < kmax; kk++ {
				arow := a[kk*m : (kk+1)*m]
				for r := 0; r < rows; r++ {
					av := arow[i0+r]
					if av == 0 {
						continue
					}
					off := r*seg0 - r*(r-1)/2
					tensor.Axpy32(chunk[off:off+seg0-r], arow[i0+r:], av)
				}
			}
			tensor.FoldAcc32(acc, chunk)
		}
		for r := 0; r < rows; r++ {
			off := r*seg0 - r*(r-1)/2
			i := i0 + r
			tensor.Narrow(dst[i*m+i:(i+1)*m], acc[off:off+seg0-r])
		}
	}
	sym32Pool.Put(ws)
}

// mirrorLower32 copies the computed upper triangle into the lower one.
func mirrorLower32(dst []float32, m int) {
	for i := 1; i < m; i++ {
		for j := 0; j < i; j++ {
			dst[i*m+j] = dst[j*m+i]
		}
	}
}
