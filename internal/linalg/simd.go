package linalg

// Dispatch variables for the float64 kernel primitives of the blocked
// eigensolver. The portable scalar implementations below are the defaults;
// simd_amd64.go swaps in AVX2+FMA versions at init when the CPU and OS
// support them (and the build is not -tags purego).
//
// Determinism note: the dispatch is global per process, so every chunk of
// every parallel pass uses the same kernel — results stay bitwise
// identical across team sizes and repeated runs within a build. The one
// kernel whose INPUT GROUPING depends on the chunk grid is the QL
// rotation sweep (rows are processed four at a time within a chunk, with
// a single-row remainder): its packed and single-row variants must
// therefore produce identical bits per row, which is why the AVX dispatch
// pairs rotRows4AVX with the math.FMA-matched scalar rotSweepRowFMA
// rather than the plain mul/add rotSweepRow.
var (
	// eigDot is the fixed-order inner product.
	eigDot func(a, b []float64) float64 = eigDot4
	// eigAxpy computes dst[i] += a*src[i].
	eigAxpy func(dst, src []float64, a float64) = eigAxpyGeneric
	// rotRows4 applies a recorded rotation sweep to four rows in lockstep.
	rotRows4 func(a0, a1, a2, a3, cs, sn []float64, nrot int) = rotSweepRow4
	// rotRow applies a recorded rotation sweep to one row; must be
	// bitwise-compatible with rotRows4 (see determinism note above).
	rotRow func(sub, cs, sn []float64, nrot int) = rotSweepRow

	// eigKernelISA names the active float64 kernel set ("generic" or
	// "avx2+fma"); surfaced by tests and benchmarks.
	eigKernelISA = "generic"
)

// eigAxpyGeneric is the portable dst += a*src.
func eigAxpyGeneric(dst, src []float64, a float64) {
	for i, s := range src {
		dst[i] += a * s
	}
}
