package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestJacobiReconstruct(t *testing.T) {
	for _, n := range []int{1, 2, 8, 30} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randSPD(rng, n, 0.1)
		eg, err := SymEigJacobi(a, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !eg.Reconstruct().Equal(a, 1e-8*float64(n)) {
			t.Errorf("n=%d: Jacobi QΛQᵀ != A", n)
		}
	}
}

// Property: Jacobi and Householder+QL agree on eigenvalues — the
// cross-solver oracle check.
func TestJacobiMatchesSymEigProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		b := tensor.Randn(rng, 1, n, n)
		a := b.Clone()
		a.Add(tensor.Transpose(b)) // symmetric, possibly indefinite
		e1, err := SymEig(a)
		if err != nil {
			return false
		}
		e2, err := SymEigJacobi(a, 0)
		if err != nil {
			return false
		}
		for i := range e1.Values {
			if math.Abs(e1.Values[i]-e2.Values[i]) > 1e-8*(1+math.Abs(e1.Values[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJacobiOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 20, 0.2)
	eg, err := SymEigJacobi(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	qtq := tensor.MatMulT1(eg.Q, eg.Q)
	if !qtq.Equal(tensor.Eye(20), 1e-10) {
		t.Error("Jacobi eigenvectors not orthonormal")
	}
}

func TestJacobiEdgeCases(t *testing.T) {
	if _, err := SymEigJacobi(tensor.New(2, 3), 0); err == nil {
		t.Error("non-square should error")
	}
	eg, err := SymEigJacobi(tensor.New(0, 0), 0)
	if err != nil || len(eg.Values) != 0 {
		t.Error("empty matrix should succeed trivially")
	}
	// Already diagonal: zero sweeps needed.
	d := tensor.New(3, 3)
	d.Set(5, 0, 0)
	d.Set(-1, 1, 1)
	d.Set(2, 2, 2)
	eg, err = SymEigJacobi(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 5}
	for i := range want {
		if math.Abs(eg.Values[i]-want[i]) > 1e-12 {
			t.Errorf("diagonal eigenvalues = %v", eg.Values)
		}
	}
}
