// Package linalg provides the dense linear-algebra kernels K-FAC needs:
// symmetric eigendecomposition (the paper's implicit-inverse path, §IV-A),
// explicit matrix inversion with partial pivoting (the ablated path),
// Cholesky factorization, triangular and general solves, and Kronecker
// algebra (the structure K-FAC's Fisher approximation is built from).
//
// All routines operate on tensor.Tensor matrices and are written against the
// standard library only. The eigensolver uses Householder tridiagonalization
// followed by the implicit-shift QL iteration — a faithful port of the
// public-domain JAMA tred2/tql2 pair — which is O(n³), numerically robust
// for the symmetric positive-semidefinite covariance factors K-FAC produces,
// and accurate enough to reconstruct A = QΛQᵀ to ~1e-10 for the factor sizes
// that occur in ResNets.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ErrNoConvergence is returned when the QL iteration fails to drive an
// off-diagonal element to zero within the iteration budget. In practice this
// only happens for matrices containing NaN/Inf.
var ErrNoConvergence = errors.New("linalg: eigendecomposition did not converge")

// Eigen holds the eigendecomposition A = Q diag(Values) Qᵀ of a symmetric
// matrix. Q's columns are the eigenvectors; Values are ascending.
//
// An Eigen may be reused across decompositions via SymEigInto, which
// recycles Q, Values, and the internal tridiagonal scratch so steady-state
// redecomposition allocates nothing.
type Eigen struct {
	Q      *tensor.Tensor // n×n, column j is the eigenvector for Values[j]
	Values []float64      // ascending eigenvalues

	scratch []float64 // sub-diagonal workspace reused by SymEigInto
}

// SymEig computes the eigendecomposition of symmetric matrix a. The input is
// not modified. Asymmetry up to round-off is tolerated: the routine operates
// on (A+Aᵀ)/2.
//
// SymEig is reentrant: it touches no package state and works on private
// copies, so concurrent calls on distinct (or even shared, unmutated)
// inputs are safe. The pipelined K-FAC engine relies on this to
// eigendecompose a rank's owned layers in parallel; see
// TestConcurrentSymEigMatchesSerial.
func SymEig(a *tensor.Tensor) (*Eigen, error) {
	eg := &Eigen{}
	if err := SymEigInto(a, eg); err != nil {
		return nil, err
	}
	return eg, nil
}

// SymEigInto is SymEig writing the decomposition into eg, reusing eg's Q,
// Values, and internal scratch when their capacity suffices — the
// steady-state redecomposition path of the K-FAC preconditioner, which
// holds one Eigen per factor and refreshes it in place with zero heap
// allocation. The input is validated (NaN/Inf rejected) before eg is
// touched; on a convergence error eg's contents are unspecified.
func SymEigInto(a *tensor.Tensor, eg *Eigen) error {
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("linalg: SymEig requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	for _, x := range a.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("linalg: SymEig input contains NaN/Inf")
		}
	}
	v := tensor.Ensure(&eg.Q, n, n)
	if n == 0 {
		eg.Values = eg.Values[:0]
		return nil
	}
	// Work on the symmetrized copy.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v.Data[i*n+j] = 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
		}
	}
	eg.Values = ensureFloats(eg.Values, n)   // diagonal of the tridiagonal form
	eg.scratch = ensureFloats(eg.scratch, n) // sub-diagonal
	d, e := eg.Values, eg.scratch
	tred2(v.Data, n, d, e)
	return tql2(v.Data, n, d, e)
}

// SetFrom overwrites the decomposition with n eigenvalues and an n×n
// eigenvector matrix copied from the given flat slices, reusing eg's
// storage when possible. It is the deserialization path of K-FAC's
// decomposition allgather.
func (eg *Eigen) SetFrom(values, q []float64, n int) {
	eg.Values = ensureFloats(eg.Values, n)
	copy(eg.Values, values)
	copy(tensor.Ensure(&eg.Q, n, n).Data, q)
}

// ensureFloats returns a length-n slice, reusing buf's storage when its
// capacity suffices. Contents are unspecified.
func ensureFloats(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

// tred2 reduces a symmetric matrix (stored in v, row-major n×n) to
// tridiagonal form by Householder similarity transformations, accumulating
// the orthogonal transformation in v. On return d holds the diagonal and e
// the sub-diagonal (e[0] = 0). JAMA EigenvalueDecomposition.tred2 port.
func tred2(v []float64, n int, d, e []float64) {
	for j := 0; j < n; j++ {
		d[j] = v[(n-1)*n+j]
	}
	// Householder reduction to tridiagonal form.
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale := 0.0
		h := 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v[(i-1)*n+j]
				v[i*n+j] = 0
				v[j*n+i] = 0
			}
		} else {
			// Generate Householder vector.
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				v[j*n+i] = f
				g = e[j] + v[j*n+j]*f
				for k := j + 1; k <= i-1; k++ {
					g += v[k*n+j] * d[k]
					e[k] += v[k*n+j] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v[k*n+j] -= f*e[k] + g*d[k]
				}
				d[j] = v[(i-1)*n+j]
				v[i*n+j] = 0
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v[(n-1)*n+i] = v[i*n+i]
		v[i*n+i] = 1
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v[k*n+i+1] / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v[k*n+i+1] * v[k*n+j]
				}
				for k := 0; k <= i; k++ {
					v[k*n+j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			v[k*n+i+1] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v[(n-1)*n+j]
		v[(n-1)*n+j] = 0
	}
	v[(n-1)*n+n-1] = 1
	e[0] = 0
}

// maxQLIter bounds the implicit-shift QL sweeps per eigenvalue.
const maxQLIter = 60

// tql2 computes eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix by the QL algorithm with implicit shifts, accumulating the
// transformations into v (which on entry holds the tred2 output). On return
// d holds ascending eigenvalues and v's columns the eigenvectors.
// JAMA EigenvalueDecomposition.tql2 port.
func tql2(v []float64, n int, d, e []float64) error {
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f := 0.0
	tst1 := 0.0
	const eps = 2.220446049250313e-16 // 2^-52
	for l := 0; l < n; l++ {
		// Find small subdiagonal element.
		if t := math.Abs(d[l]) + math.Abs(e[l]); t > tst1 {
			tst1 = t
		}
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		// If m == l, d[l] is an eigenvalue; otherwise iterate.
		if m > l {
			for iter := 0; ; iter++ {
				if iter > maxQLIter {
					return ErrNoConvergence
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h

				// Implicit QL transformation.
				p = d[m]
				c := 1.0
				c2, c3 := c, c
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])

					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = v[k*n+i+1]
						v[k*n+i+1] = s*v[k*n+i] + c*h
						v[k*n+i] = c*v[k*n+i] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p

				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}

	// Sort eigenvalues ascending, permuting eigenvector columns to match.
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			for j := 0; j < n; j++ {
				v[j*n+i], v[j*n+k] = v[j*n+k], v[j*n+i]
			}
		}
	}
	return nil
}

// Reconstruct returns Q diag(Values) Qᵀ, the matrix the decomposition
// represents. Used by tests to verify round-trip accuracy.
func (eg *Eigen) Reconstruct() *tensor.Tensor {
	n := eg.Q.Rows()
	qs := tensor.New(n, n) // Q * diag(Values)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qs.Data[i*n+j] = eg.Q.Data[i*n+j] * eg.Values[j]
		}
	}
	return tensor.MatMulT2(qs, eg.Q)
}

// InverseWithDamping returns (A + γI)⁻¹ computed from the decomposition as
// Q diag(1/(λᵢ+γ)) Qᵀ. This is the numerically stable inverse path used by
// the paper's eigen-decomposition K-FAC variant.
func (eg *Eigen) InverseWithDamping(gamma float64) *tensor.Tensor {
	n := eg.Q.Rows()
	qs := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			qs.Data[i*n+j] = eg.Q.Data[i*n+j] / (eg.Values[j] + gamma)
		}
	}
	return tensor.MatMulT2(qs, eg.Q)
}

// EigFLOPs returns the approximate floating-point operation count of a
// symmetric eigendecomposition of an n×n matrix. The standard dense
// tridiagonalization + QL cost is ~9n³; the constant only matters relative
// to the other cost-model terms in internal/simulate.
func EigFLOPs(n int) float64 { return 9 * float64(n) * float64(n) * float64(n) }
