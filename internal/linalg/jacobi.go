package linalg

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SymEigJacobi computes the eigendecomposition of a symmetric matrix by the
// cyclic Jacobi rotation method. It is asymptotically slower than the
// Householder+QL solver in SymEig (O(n³) with a larger constant) but has a
// very simple correctness argument (each sweep monotonically reduces
// off-diagonal mass), making it the reference oracle the test suite
// cross-checks SymEig against — the same role the paper's Table I plays for
// validating the numerically delicate path.
func SymEigJacobi(a *tensor.Tensor, maxSweeps int) (*Eigen, error) {
	return symEigJacobi(a, maxSweeps, nil)
}

// SymEigJacobiArena is SymEigJacobi with every workspace — the symmetrized
// working copy, the eigenvector accumulator, and the eigenvalue slice's
// backing tensor — checked out of ws instead of heap-allocated, so repeated
// oracle decompositions (test cross-checks, convergence sweeps) can run
// allocation-free between ws.Reset calls. The returned Eigen's storage is
// owned by the arena: it is valid only until the next ws.Reset.
func SymEigJacobiArena(a *tensor.Tensor, maxSweeps int, ws *tensor.Arena) (*Eigen, error) {
	return symEigJacobi(a, maxSweeps, ws)
}

// symEigJacobi runs the cyclic Jacobi iteration; ws may be nil (heap
// scratch).
func symEigJacobi(a *tensor.Tensor, maxSweeps int, ws *tensor.Arena) (*Eigen, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("linalg: SymEigJacobi requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	alloc := func(shape ...int) *tensor.Tensor {
		if ws != nil {
			return ws.GetZero(shape...)
		}
		return tensor.New(shape...)
	}
	if n == 0 {
		return &Eigen{Q: alloc(0, 0)}, nil
	}
	if maxSweeps <= 0 {
		maxSweeps = 60
	}
	// Work on the symmetrized copy.
	m := alloc(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
		}
	}
	v := alloc(n, n)
	for i := 0; i < n; i++ {
		v.Data[i*n+i] = 1
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m.Data[i*n+j] * m.Data[i*n+j]
			}
		}
		return s
	}
	var frob float64
	for _, x := range m.Data {
		frob += x * x
	}
	tol := 1e-28 * (frob + 1)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offDiag() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.Data[p*n+q]
				if apq == 0 {
					continue
				}
				app := m.Data[p*n+p]
				aqq := m.Data[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/cols p and q of m.
				for k := 0; k < n; k++ {
					akp := m.Data[k*n+p]
					akq := m.Data[k*n+q]
					m.Data[k*n+p] = c*akp - s*akq
					m.Data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := m.Data[p*n+k]
					aqk := m.Data[q*n+k]
					m.Data[p*n+k] = c*apk - s*aqk
					m.Data[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.Data[k*n+p]
					vkq := v.Data[k*n+q]
					v.Data[k*n+p] = c*vkp - s*vkq
					v.Data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	if offDiag() > tol*1e6 {
		return nil, ErrNoConvergence
	}
	var vals []float64
	if ws != nil {
		vals = ws.Get(n).Data // fully overwritten below
	} else {
		vals = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		vals[i] = m.Data[i*n+i]
	}
	// Sort ascending, permuting columns.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[k] {
				k = j
			}
		}
		if k != i {
			vals[i], vals[k] = vals[k], vals[i]
			for j := 0; j < n; j++ {
				v.Data[j*n+i], v.Data[j*n+k] = v.Data[j*n+k], v.Data[j*n+i]
			}
		}
	}
	return &Eigen{Q: v, Values: vals}, nil
}
