package linalg

// Reentrancy tests for the kernels the pipelined K-FAC engine calls from
// multiple pool workers at once. Run with -race: the assertions check both
// freedom from data races and that concurrent results are bit-identical to
// serial ones (the engine's numerical-equivalence guarantee depends on it).

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// spdMatrices builds n random symmetric positive-definite matrices.
func spdMatrices(n, dim int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Tensor, n)
	for i := range out {
		m := tensor.Randn(rng, 1, dim, dim)
		spd := tensor.MatMulT1(m, m)
		for d := 0; d < dim; d++ {
			spd.Data[d*dim+d] += 1
		}
		out[i] = spd
	}
	return out
}

func TestConcurrentSymEigMatchesSerial(t *testing.T) {
	mats := spdMatrices(16, 12, 1)
	serial := make([]*Eigen, len(mats))
	for i, m := range mats {
		eg, err := SymEig(m)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = eg
	}
	concurrent := make([]*Eigen, len(mats))
	errs := make([]error, len(mats))
	var wg sync.WaitGroup
	for i, m := range mats {
		wg.Add(1)
		go func(i int, m *tensor.Tensor) {
			defer wg.Done()
			concurrent[i], errs[i] = SymEig(m)
		}(i, m)
	}
	wg.Wait()
	for i := range mats {
		if errs[i] != nil {
			t.Fatalf("matrix %d: %v", i, errs[i])
		}
		if !concurrent[i].Q.Equal(serial[i].Q, 0) {
			t.Errorf("matrix %d: concurrent Q differs from serial", i)
		}
		for j := range serial[i].Values {
			if concurrent[i].Values[j] != serial[i].Values[j] {
				t.Errorf("matrix %d: concurrent eigenvalue %d differs", i, j)
			}
		}
	}
}

func TestConcurrentSymEigSharedInput(t *testing.T) {
	// Many goroutines decomposing the SAME (unmutated) matrix must neither
	// race nor disagree — SymEig works on a private symmetrized copy.
	m := spdMatrices(1, 10, 2)[0]
	ref, err := SymEig(m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eg, err := SymEig(m)
			if err != nil {
				t.Error(err)
				return
			}
			if !eg.Q.Equal(ref.Q, 0) {
				t.Error("shared-input decomposition differs")
			}
		}()
	}
	wg.Wait()
}

func TestConcurrentInverseDampedMatchesSerial(t *testing.T) {
	mats := spdMatrices(16, 10, 3)
	const gamma = 1e-3
	serial := make([]*tensor.Tensor, len(mats))
	for i, m := range mats {
		inv, err := InverseDamped(m, gamma)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = inv
	}
	concurrent := make([]*tensor.Tensor, len(mats))
	errs := make([]error, len(mats))
	var wg sync.WaitGroup
	for i, m := range mats {
		wg.Add(1)
		go func(i int, m *tensor.Tensor) {
			defer wg.Done()
			concurrent[i], errs[i] = InverseDamped(m, gamma)
		}(i, m)
	}
	wg.Wait()
	for i := range mats {
		if errs[i] != nil {
			t.Fatalf("matrix %d: %v", i, errs[i])
		}
		if !concurrent[i].Equal(serial[i], 0) {
			t.Errorf("matrix %d: concurrent inverse differs from serial", i)
		}
	}
}
