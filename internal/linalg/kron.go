package linalg

import (
	"repro/internal/tensor"
)

// Kron returns the Kronecker product A ⊗ B (Equation 6 of the paper): for
// A (m×n) and B (p×q) the result is (mp × nq) with block (i,j) equal to
// a[i,j]·B. K-FAC approximates each layer's Fisher block as A ⊗ G; this
// explicit product is used only for verification and small problems — the
// whole point of K-FAC is never to materialize it.
func Kron(a, b *tensor.Tensor) *tensor.Tensor {
	m, n := a.Rows(), a.Cols()
	p, q := b.Rows(), b.Cols()
	out := tensor.New(m*p, n*q)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			aij := a.Data[i*n+j]
			if aij == 0 {
				continue
			}
			for r := 0; r < p; r++ {
				dst := out.Data[((i*p+r)*n*q + j*q):]
				src := b.Data[r*q : (r+1)*q]
				for c := 0; c < q; c++ {
					dst[c] = aij * src[c]
				}
			}
		}
	}
	return out
}

// KronMatVec computes (A ⊗ B) vec(X) without materializing the Kronecker
// product, using the identity (A ⊗ B) vec(X) = vec(B X Aᵀ), where
// vec stacks X's rows (row-major vectorization, matching tensor layout).
// X must be (rows(A) input side) — concretely, for A (m×n), B (p×q),
// X is n×q viewed as the vectorized operand, and the result is m×p...
//
// To keep orientation unambiguous this helper takes X with shape q×n
// (row-major vec(X) has length n·q) and returns B X Aᵀ with shape p×m.
// The K-FAC preconditioner uses the equivalent orientation
// G⁻¹ ∇L A⁻¹ directly (Equation 10), so this function exists mainly to
// verify that identity against the explicit Kron in tests.
func KronMatVec(a, b, x *tensor.Tensor) *tensor.Tensor {
	bx := tensor.MatMul(b, x)
	return tensor.MatMulT2(bx, a)
}

// KronVec flattens matrix x into the row-major vec used by KronMatVec.
func KronVec(x *tensor.Tensor) *tensor.Tensor {
	return x.Reshape(x.Len())
}

// AddScaledIdentity returns a + γI without modifying a.
func AddScaledIdentity(a *tensor.Tensor, gamma float64) *tensor.Tensor {
	n := a.Rows()
	out := a.Clone()
	for i := 0; i < n; i++ {
		out.Data[i*n+i] += gamma
	}
	return out
}

// SymmetrizeInPlace replaces a with (a + aᵀ)/2. Covariance factors are
// symmetric in exact arithmetic; this clears accumulated round-off skew
// before decomposition.
func SymmetrizeInPlace(a *tensor.Tensor) {
	n := a.Rows()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
			a.Data[i*n+j] = v
			a.Data[j*n+i] = v
		}
	}
}

// Trace returns the trace of square matrix a.
func Trace(a *tensor.Tensor) float64 {
	n := a.Rows()
	var s float64
	for i := 0; i < n; i++ {
		s += a.Data[i*n+i]
	}
	return s
}

// IsSymmetric reports whether a is symmetric to within tol.
func IsSymmetric(a *tensor.Tensor, tol float64) bool {
	n := a.Rows()
	if a.Cols() != n {
		return false
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := a.Data[i*n+j] - a.Data[j*n+i]
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}
