package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// randSPD returns a random symmetric positive-definite n×n matrix
// M = BᵀB + εI, the same structure as a K-FAC covariance factor.
func randSPD(rng *rand.Rand, n int, eps float64) *tensor.Tensor {
	b := tensor.Randn(rng, 1, n, n)
	m := tensor.MatMulT1(b, b)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] += eps
	}
	return m
}

func TestSymEigDiagonal(t *testing.T) {
	a := tensor.New(3, 3)
	a.Set(3, 0, 0)
	a.Set(1, 1, 1)
	a.Set(2, 2, 2)
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(eg.Values[i]-w) > 1e-12 {
			t.Errorf("eigenvalue %d = %v, want %v", i, eg.Values[i], w)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := tensor.FromSlice([]float64{2, 1, 1, 2}, 2, 2)
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eg.Values[0]-1) > 1e-12 || math.Abs(eg.Values[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [1 3]", eg.Values)
	}
}

func TestSymEigReconstruct(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40, 100} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randSPD(rng, n, 0.1)
		eg, err := SymEig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		r := eg.Reconstruct()
		if !r.Equal(a, 1e-8*float64(n)) {
			t.Errorf("n=%d: QΛQᵀ does not reconstruct A (max err matters)", n)
		}
	}
}

func TestSymEigOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSPD(rng, 30, 0.01)
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	qtq := tensor.MatMulT1(eg.Q, eg.Q)
	if !qtq.Equal(tensor.Eye(30), 1e-9) {
		t.Error("QᵀQ != I: eigenvectors not orthonormal")
	}
}

func TestSymEigAscendingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(rng, 25, 0)
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(eg.Values); i++ {
		if eg.Values[i] < eg.Values[i-1] {
			t.Fatalf("eigenvalues not ascending: %v", eg.Values)
		}
	}
}

func TestSymEigSPDPositiveValues(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSPD(rng, 20, 0.5)
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eg.Values {
		if v <= 0 {
			t.Errorf("SPD matrix has non-positive eigenvalue %v", v)
		}
	}
}

func TestSymEigNonSquare(t *testing.T) {
	if _, err := SymEig(tensor.New(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestSymEigEmpty(t *testing.T) {
	eg, err := SymEig(tensor.New(0, 0))
	if err != nil || len(eg.Values) != 0 {
		t.Errorf("empty matrix: eg=%v err=%v", eg, err)
	}
}

// Property: trace(A) == sum of eigenvalues; this holds for any symmetric A.
func TestEigTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		b := tensor.Randn(rng, 1, n, n)
		a := b.Clone()
		a.Add(tensor.Transpose(b)) // symmetric, possibly indefinite
		eg, err := SymEig(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range eg.Values {
			sum += v
		}
		return math.Abs(sum-Trace(a)) < 1e-8*(1+math.Abs(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvector residual ‖Av - λv‖ is tiny for every pair.
func TestEigResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		a := randSPD(rng, n, 0.01)
		eg, err := SymEig(a)
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			v := tensor.New(n)
			for i := 0; i < n; i++ {
				v.Data[i] = eg.Q.Data[i*n+j]
			}
			av := tensor.MatVec(a, v)
			av.AddScaled(-eg.Values[j], v)
			if av.Norm2() > 1e-8*(1+math.Abs(eg.Values[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigenInverseWithDamping(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 12
	a := randSPD(rng, n, 0)
	gamma := 0.3
	eg, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := eg.InverseWithDamping(gamma)
	// (A+γI) * inv should be I.
	damped := AddScaledIdentity(a, gamma)
	prod := tensor.MatMul(damped, inv)
	if !prod.Equal(tensor.Eye(n), 1e-8) {
		t.Error("eigen damped inverse: (A+γI)·inv != I")
	}
}

func TestInverseKnown(t *testing.T) {
	a := tensor.FromSlice([]float64{4, 7, 2, 6}, 2, 2)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromSlice([]float64{0.6, -0.7, -0.2, 0.4}, 2, 2)
	if !inv.Equal(want, 1e-12) {
		t.Errorf("Inverse = %v, want %v", inv.Data, want.Data)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{1, 3, 10, 50} {
		rng := rand.New(rand.NewSource(int64(100 + n)))
		a := randSPD(rng, n, 0.5)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod := tensor.MatMul(a, inv)
		if !prod.Equal(tensor.Eye(n), 1e-7) {
			t.Errorf("n=%d: A·A⁻¹ != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 2, 4}, 2, 2)
	if _, err := Inverse(a); err == nil {
		t.Error("expected ErrSingular for rank-deficient matrix")
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := Inverse(tensor.New(2, 3)); err == nil {
		t.Error("expected error for non-square input")
	}
}

func TestInverseDamped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 8
	a := randSPD(rng, n, 0)
	inv, err := InverseDamped(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	prod := tensor.MatMul(AddScaledIdentity(a, 0.1), inv)
	if !prod.Equal(tensor.Eye(n), 1e-8) {
		t.Error("(A+γI)·InverseDamped(A,γ) != I")
	}
}

// Property: eigen-path damped inverse and explicit damped inverse agree.
// This is the heart of the paper's §IV-A claim that the eigendecomposition
// computes (F̂+γI)⁻¹ implicitly.
func TestEigenVsExplicitInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randSPD(rng, n, 0)
		gamma := 0.01 + rng.Float64()
		eg, err := SymEig(a)
		if err != nil {
			return false
		}
		ei := eg.InverseWithDamping(gamma)
		xi, err := InverseDamped(a, gamma)
		if err != nil {
			return false
		}
		return ei.Equal(xi, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 15
	a := randSPD(rng, n, 1)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := tensor.MatMulT2(l, l)
	if !llt.Equal(a, 1e-9) {
		t.Error("LLᵀ != A")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 0, 0, -1}, 2, 2)
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for indefinite matrix")
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 10
	a := randSPD(rng, n, 1)
	x := tensor.Randn(rng, 1, n, 3)
	b := tensor.MatMul(a, x)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := SolveCholesky(l, b)
	if !got.Equal(x, 1e-8) {
		t.Error("SolveCholesky did not recover x")
	}
}

func TestKronKnownExample(t *testing.T) {
	// The worked example from the paper (Equation 7).
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float64{5, 6, 7, 8, 9, 0}, 3, 2)
	k := Kron(a, b)
	want := []float64{
		5, 6, 10, 12,
		7, 8, 14, 16,
		9, 0, 18, 0,
		15, 18, 20, 24,
		21, 24, 28, 32,
		27, 0, 36, 0,
	}
	if k.Rows() != 6 || k.Cols() != 4 {
		t.Fatalf("Kron shape = %v", k.Shape)
	}
	for i := range want {
		if k.Data[i] != want[i] {
			t.Fatalf("Kron = %v, want %v", k.Data, want)
		}
	}
}

// Property: (A ⊗ B)⁻¹ == A⁻¹ ⊗ B⁻¹ (Equation 8 — the identity that makes
// K-FAC tractable).
func TestKronInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		p := 1 + rng.Intn(4)
		a := randSPD(rng, m, 0.5)
		b := randSPD(rng, p, 0.5)
		ia, err := Inverse(a)
		if err != nil {
			return false
		}
		ib, err := Inverse(b)
		if err != nil {
			return false
		}
		left, err := Inverse(Kron(a, b))
		if err != nil {
			return false
		}
		right := Kron(ia, ib)
		return left.Equal(right, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Kronecker product is bilinear: (A+A') ⊗ B = A⊗B + A'⊗B.
func TestKronBilinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(4), 1+rng.Intn(4)
		p, q := 1+rng.Intn(4), 1+rng.Intn(4)
		a1 := tensor.Randn(rng, 1, m, n)
		a2 := tensor.Randn(rng, 1, m, n)
		b := tensor.Randn(rng, 1, p, q)
		sum := a1.Clone()
		sum.Add(a2)
		left := Kron(sum, b)
		right := Kron(a1, b)
		right.Add(Kron(a2, b))
		return left.Equal(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the vec-trick (A ⊗ B) vec(X) = vec(B X Aᵀ) matches the explicit
// Kronecker matrix-vector product. This is Equation (10)'s justification.
func TestKronMatVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(4)
		p := 1 + rng.Intn(4)
		q := 1 + rng.Intn(4)
		a := tensor.Randn(rng, 1, m, n)
		b := tensor.Randn(rng, 1, p, q)
		x := tensor.Randn(rng, 1, q, n)
		// Explicit: (A ⊗ B) vec(X) where vec is row-major over the p×m
		// output orientation. With row-major vec and X as q×n, the
		// matching explicit form multiplies the (mp × nq) Kron matrix by
		// vec(Xᵀ reshaped appropriately). To sidestep orientation
		// bookkeeping, verify via elementwise definition:
		// result[i*p+r] = Σ_{j,c} a[i,j]·b[r,c]·x[c,j].
		got := KronMatVec(a, b, x) // p×m: B X Aᵀ
		for i := 0; i < m; i++ {
			for r := 0; r < p; r++ {
				var wantV float64
				for j := 0; j < n; j++ {
					for c := 0; c < q; c++ {
						wantV += a.Data[i*n+j] * b.Data[r*q+c] * x.Data[c*n+j]
					}
				}
				if math.Abs(got.Data[r*m+i]-wantV) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymmetrizeInPlace(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 4, 3}, 2, 2)
	SymmetrizeInPlace(a)
	if !IsSymmetric(a, 0) {
		t.Error("not symmetric after SymmetrizeInPlace")
	}
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Errorf("off-diagonal = %v, want 3", a.At(0, 1))
	}
}

func TestIsSymmetric(t *testing.T) {
	if !IsSymmetric(tensor.Eye(3), 0) {
		t.Error("identity should be symmetric")
	}
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if IsSymmetric(a, 0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if IsSymmetric(tensor.New(2, 3), 1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestTrace(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 9, 9, 2}, 2, 2)
	if Trace(a) != 3 {
		t.Errorf("Trace = %v, want 3", Trace(a))
	}
}

func TestConditionNumber(t *testing.T) {
	a := tensor.New(2, 2)
	a.Set(10, 0, 0)
	a.Set(0.1, 1, 1)
	c, err := ConditionNumber(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-100) > 1e-9 {
		t.Errorf("ConditionNumber = %v, want 100", c)
	}
}

func TestEigFLOPsMonotone(t *testing.T) {
	if EigFLOPs(100) >= EigFLOPs(200) {
		t.Error("EigFLOPs should grow with n")
	}
	if EigFLOPs(2) != 9*8 {
		t.Errorf("EigFLOPs(2) = %v, want 72", EigFLOPs(2))
	}
}
