// Blocked symmetric eigensolver: Level-3 Householder tridiagonalization in
// the compact-WY representation, a parallel Q back-accumulation pass, and a
// batched-rotation QL iteration. This is the multi-threaded counterpart of
// the serial tred2/tql2 pair in eigen.go, built so that every parallel
// partition is a fixed chunk grid whose elements are each produced by
// exactly one chunk with a fixed serial reduction order — the
// sched.Pool.ForEach contract — making the result bitwise identical across
// repeated calls, team sizes, and GOMAXPROCS settings.
//
// Structure (for an n×n symmetric input, panel width b = eigBlock):
//
//  1. Blocked tridiagonalization. Columns are reduced in panels of width b.
//     Within a panel, column j's Householder reflector v_j and the product
//     w_j = τ(A v_j − V Wᵀv_j − W Vᵀv_j) − ½τ²(v_jᵀ·)v_j are accumulated
//     into a combined U = [V|W] panel; only the panel's own columns are
//     updated eagerly. The trailing matrix then receives one symmetric
//     rank-2b update A ← A − VWᵀ − WVᵀ, expressed as a single pooled
//     tensor.MatMulT2Into GEMM S = U·[W|V]ᵀ followed by a chunked
//     subtraction — the Level-3 step that carries ~2/3 of the reduction's
//     flops.
//  2. Q back-accumulation. Q is formed from the stored reflectors (kept in
//     the reduced matrix's lower triangle, LAPACK-style) panel by panel in
//     reverse, Q ← (I − V T Vᵀ)Q, with the small triangular T rebuilt per
//     panel and the three GEMV/GEMM phases fused into one column-chunked
//     parallel pass over the active bottom-right window.
//  3. Batched QL. The scalar shift/rotation recurrence of tql2 — which
//     touches only the tridiagonal d/e arrays — runs serially and records
//     each sweep's rotation cosines/sines; the accumulated rotations are
//     then applied to Q's rows in a row-chunked parallel pass whose
//     per-row carry chain performs arithmetic identical to tql2's
//     column-strided loop (see rotSweepRow). The final eigenvalue sort
//     computes its column permutation serially and applies it in one
//     row-chunked pass.
package linalg

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/internal/tensor"
)

const (
	// eigBlock is the panel width b of the blocked tridiagonalization and
	// the back-accumulation. 32 keeps one U=[V|W] panel row (2b float64s)
	// inside a cache line multiple and the rank-2b GEMM dots long enough
	// for the pooled kernels to run at full throughput.
	eigBlock = 32

	// eigBlockedMinDim is the dimension below which the blocked solver
	// falls back to the serial tred2/tql2 pair: small factors are
	// launch-overhead bound, and the serial pair wins outright. The
	// fallback ignores the team parameter entirely, so the determinism
	// contract (same bits for every team size) holds trivially there.
	eigBlockedMinDim = 128
)

// eigArena pools the blocked solver's workspaces — the reduced matrix copy
// (whose lower triangle stores the Householder vectors), the U=[V|W] and
// column-swapped panels, the rank-2b update buffer, and the
// rotation/permutation scratch — so steady-state redecomposition performs
// no heap allocation. Checkouts are balanced per call (Get/Put), never
// Reset, so concurrent decompositions (the pipelined engine, intra-step
// factor teams) share the arena safely.
var eigArena = tensor.NewArena()

// EigKernelTimes accumulates the per-kernel wall time of one or more
// blocked eigendecompositions, in nanoseconds. The K-FAC engines surface
// these through StageStats so the stage profile shows where
// decomposition time goes, not just its total.
type EigKernelTimes struct {
	// TridiagNS is the blocked Householder reduction (panel factorization
	// plus trailing rank-2b GEMM updates).
	TridiagNS int64
	// BackAccumNS is the compact-WY Q back-accumulation.
	BackAccumNS int64
	// QLNS is the implicit-shift QL iteration with batched rotation
	// application, including the final eigenvalue sort.
	QLNS int64
}

// Add folds other's counters into tm.
func (tm *EigKernelTimes) Add(other *EigKernelTimes) {
	tm.TridiagNS += other.TridiagNS
	tm.BackAccumNS += other.BackAccumNS
	tm.QLNS += other.QLNS
}

// TotalNS returns the summed kernel time.
func (tm *EigKernelTimes) TotalNS() int64 {
	return tm.TridiagNS + tm.BackAccumNS + tm.QLNS
}

// SymEigBlockedInto computes the eigendecomposition of symmetric matrix a
// into eg using the blocked multi-threaded solver with the given worker
// team size. The input is not modified; asymmetry up to round-off is
// tolerated (the routine operates on (A+Aᵀ)/2, exactly as SymEigInto).
//
// team bounds the chunk grid of the solver's internal parallel passes:
// team ≤ 1 runs every pass inline on the calling goroutine, team > 1
// dispatches over the shared scheduler pool. The result is bitwise
// IDENTICAL for every team value — partitions are fixed chunk grids whose
// output elements are each written by exactly one chunk with a fixed
// reduction order — so team is purely a performance knob. Concurrent calls
// on distinct Eigen targets are safe.
func SymEigBlockedInto(a *tensor.Tensor, eg *Eigen, team int) error {
	return SymEigBlockedTimedInto(a, eg, team, nil)
}

// SymEigBlockedTimedInto is SymEigBlockedInto accumulating per-kernel wall
// times into tm (when non-nil). The fallback serial path below
// eigBlockedMinDim reports its entire cost as QL time zero and tridiag
// time zero — by convention only the blocked kernels are itemized.
func SymEigBlockedTimedInto(a *tensor.Tensor, eg *Eigen, team int, tm *EigKernelTimes) error {
	n := a.Rows()
	if a.Cols() != n {
		return fmt.Errorf("linalg: SymEig requires square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	for _, x := range a.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("linalg: SymEig input contains NaN/Inf")
		}
	}
	v := tensor.Ensure(&eg.Q, n, n)
	if n == 0 {
		eg.Values = eg.Values[:0]
		return nil
	}
	eg.Values = ensureFloats(eg.Values, n)
	eg.scratch = ensureFloats(eg.scratch, n)
	d, e := eg.Values, eg.scratch
	if n < eigBlockedMinDim {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v.Data[i*n+j] = 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
			}
		}
		tred2(v.Data, n, d, e)
		return tql2(v.Data, n, d, e)
	}
	if team < 1 {
		team = 1
	}

	ws := eigWSPool.Get().(*eigWS)
	ws.team = team
	A := eigArena.Get(n, n)
	S := eigArena.Get(n, n)
	U := eigArena.Get(n, 2*eigBlock)
	C := eigArena.Get(n, 2*eigBlock)
	tauT := eigArena.Get(n)
	workT := eigArena.Get(4 * n)
	defer func() {
		ws.clear()
		eigWSPool.Put(ws)
		eigArena.Put(A)
		eigArena.Put(S)
		eigArena.Put(U)
		eigArena.Put(C)
		eigArena.Put(tauT)
		eigArena.Put(workT)
	}()

	// Symmetrized working copy; a is left untouched.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			A.Data[i*n+j] = 0.5 * (a.Data[i*n+j] + a.Data[j*n+i])
		}
	}

	start := time.Now()
	ws.blockedTridiag(A.Data, S, U, C, n, d, e, tauT.Data, workT.Data)
	tTri := time.Now()
	identityInto(v.Data, n)
	ws.backAccumulate(v.Data, A.Data, n, tauT.Data, U.Data, C.Data, S.Data)
	tAcc := time.Now()
	err := ws.batchedQL(v.Data, n, d, e, workT.Data, A.Data)
	if tm != nil {
		tm.TridiagNS += tTri.Sub(start).Nanoseconds()
		tm.BackAccumNS += tAcc.Sub(tTri).Nanoseconds()
		tm.QLNS += time.Since(tAcc).Nanoseconds()
	}
	return err
}

// eigWS carries the reusable non-tensor state of one blocked
// decomposition: the ranger structs the parallel passes dispatch through
// (each with its own WaitGroup, reused across dispatches), the view
// headers handed to the pooled GEMM, and the sort permutation buffer. A
// sync.Pool recycles them so steady-state solves allocate nothing.
type eigWS struct {
	team int

	// View headers over arena storage for the trailing-update GEMM.
	sv, uv, cv tensor.Tensor

	xr xPassRanger
	tr trailRanger
	ar accumRanger
	rr rotRanger
	pr permRanger

	perm []int
}

var eigWSPool = sync.Pool{New: func() any { return &eigWS{} }}

// clear drops the slice references the rangers and views captured so a
// pooled workspace does not pin arena storage class membership decisions
// to stale shapes.
func (ws *eigWS) clear() {
	ws.sv.Data, ws.uv.Data, ws.cv.Data = nil, nil, nil
	ws.xr = xPassRanger{}
	ws.tr = trailRanger{}
	ws.ar = accumRanger{}
	ws.rr = rotRanger{}
	ws.pr = permRanger{}
}

// run executes r over [0,m) — inline when the team is 1 (or the range
// trivial), else as a team-wide ForEach over the shared pool. Both paths
// produce identical bits: every output element belongs to exactly one
// chunk and is computed with a fixed serial reduction order, so the chunk
// grid (and hence team) cannot affect results.
func (ws *eigWS) run(m int, r sched.Ranger, wg *sync.WaitGroup) {
	if ws.team <= 1 || m < 2 {
		r.RunRange(0, m)
		return
	}
	sched.Shared().ForEach(m, ws.team, r, wg)
}

// identityInto writes the n×n identity.
func identityInto(q []float64, n int) {
	for i := range q[:n*n] {
		q[i] = 0
	}
	for i := 0; i < n; i++ {
		q[i*n+i] = 1
	}
}

// eigDot4 is a fixed-order dot product with four partial accumulators (the
// same reduction shape as the pooled kernels' dotUnroll): the serial order
// is a pure function of the slice length, never of the caller's chunk
// grid, which is what keeps chunked passes bitwise reproducible.
func eigDot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// blockedTridiag reduces the symmetric matrix in A (row-major n×n) to
// tridiagonal form by blocked Householder similarity transformations.
// On return the diagonal and subdiagonal of A hold the tridiagonal form
// (extracted into d and e), A's strict lower triangle below the
// subdiagonal holds the normalized Householder vectors (v[0]=1 implicit on
// the subdiagonal row), and tau[j] the reflector scale of column j — the
// LAPACK dsytrd storage convention back-accumulation consumes.
func (ws *eigWS) blockedTridiag(A []float64, S, U, C *tensor.Tensor, n int, d, e, tau []float64, work []float64) {
	const b = eigBlock
	hv := work[0:n]
	x := work[n : 2*n]
	tmp1 := work[2*n : 3*n] // Wᵀv over the panel's prior columns
	tmp2 := work[3*n : 4*n] // Vᵀv over the panel's prior columns

	for j0 := 0; j0 < n-2; {
		w := b
		if j0+w > n-2 {
			w = n - 2 - j0
		}
		mt := n - 1 - j0 // panel rows: j0+1 .. n-1
		uz := U.Data[:mt*2*b]
		for i := range uz {
			uz[i] = 0
		}

		for jj := 0; jj < w; jj++ {
			j := j0 + jj
			m := n - 1 - j // reflector length: rows j+1 .. n-1

			// Apply the panel's previous reflector pairs to the stored
			// column j (rows j..n-1): A[p,j] −= V[p,:]·W[j,:]ᵀ + W[p,:]·V[j,:]ᵀ.
			// Row j is U panel row jj-1.
			if jj > 0 {
				vj := U.Data[(jj-1)*2*b : (jj-1)*2*b+jj]
				wj := U.Data[(jj-1)*2*b+b : (jj-1)*2*b+b+jj]
				for r := jj - 1; r < mt; r++ {
					urow := U.Data[r*2*b:]
					A[(j0+1+r)*n+j] -= eigDot(urow[:jj], wj) + eigDot(urow[b:b+jj], vj)
				}
			}

			// Householder reflector for A[j+1:n, j], with the same
			// sum-of-absolute-values scaling discipline as tred2.
			scale := 0.0
			for i := 0; i < m; i++ {
				scale += math.Abs(A[(j+1+i)*n+j])
			}
			if scale == 0 {
				// Zero column: H = I. Store v = e1 so back-accumulation
				// reads a well-defined (and, with τ=0, inert) reflector.
				tau[j] = 0
				U.Data[jj*2*b+jj] = 1
				continue
			}
			h := 0.0
			for i := 0; i < m; i++ {
				val := A[(j+1+i)*n+j] / scale
				hv[i] = val
				h += val * val
			}
			f := hv[0]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			hh := h - f*g // = uᵀu/2 for u = (f−g, a₁, …)
			u0 := f - g   // no cancellation: f and g have opposite signs
			tau[j] = u0 * u0 / hh
			inv := 1 / u0
			hv[0] = 1
			for i := 1; i < m; i++ {
				hv[i] *= inv
			}
			A[(j+1)*n+j] = scale * g // the subdiagonal entry e[j+1]
			for i := 1; i < m; i++ {
				A[(j+1+i)*n+j] = hv[i]
			}
			U.Data[jj*2*b+jj] = 1
			for i := 1; i < m; i++ {
				U.Data[(jj+i)*2*b+jj] = hv[i]
			}

			// tmp1 = Wᵀv, tmp2 = Vᵀv (serial: O(m·jj), ~2% of the panel).
			for l := 0; l < jj; l++ {
				tmp1[l] = 0
				tmp2[l] = 0
			}
			if jj > 0 {
				for i := 0; i < m; i++ {
					vi := hv[i]
					if vi == 0 {
						continue
					}
					urow := U.Data[(jj+i)*2*b:]
					eigAxpy(tmp2[:jj], urow[:jj], vi)
					eigAxpy(tmp1[:jj], urow[b:b+jj], vi)
				}
			}

			// x = (A − VWᵀ − WVᵀ)·v: chunked row dots over the trailing
			// rows, the prior-column corrections folded into each row's
			// owner chunk.
			ws.xr.A, ws.xr.U = A, U.Data
			ws.xr.v, ws.xr.x, ws.xr.tmp1, ws.xr.tmp2 = hv[:m], x, tmp1, tmp2
			ws.xr.n, ws.xr.j, ws.xr.jj = n, j, jj
			ws.run(m, &ws.xr, &ws.xr.wg)

			// w = τx − ½τ²(xᵀv)·v, stored as W column jj.
			t := tau[j]
			xv := eigDot(x[:m], hv[:m])
			beta := 0.5 * t * t * xv
			for i := 0; i < m; i++ {
				U.Data[(jj+i)*2*b+b+jj] = t*x[i] - beta*hv[i]
			}
		}

		// Trailing symmetric rank-2w update on rows/cols ≥ j0+w:
		// A ← A − VWᵀ − WVᵀ, expressed as ONE pooled GEMM S = U·Cᵀ with
		// C = [W|V] (the column-swapped panel, so the single product sums
		// both terms), then a chunked per-row subtraction.
		rcount := mt - w + 1 // U rows w-1 .. mt-1 ↔ A rows j0+w .. n-1
		base := (w - 1) * 2 * b
		usl := U.Data[base : mt*2*b]
		csl := C.Data[base : mt*2*b]
		for r := 0; r < rcount; r++ {
			ur := usl[r*2*b:]
			cr := csl[r*2*b:]
			for l := 0; l < b; l++ {
				cr[l] = ur[b+l]
				cr[b+l] = ur[l]
			}
		}
		ws.uv.Shape = append(ws.uv.Shape[:0], rcount, 2*b)
		ws.uv.Data = usl
		ws.cv.Shape = append(ws.cv.Shape[:0], rcount, 2*b)
		ws.cv.Data = csl
		ws.sv.Shape = append(ws.sv.Shape[:0], rcount, rcount)
		ws.sv.Data = S.Data[:rcount*rcount]
		tensor.MatMulT2Into(&ws.sv, &ws.uv, &ws.cv)

		ws.tr.A, ws.tr.S = A, S.Data
		ws.tr.n, ws.tr.off, ws.tr.m = n, j0+w, rcount
		ws.run(rcount, &ws.tr, &ws.tr.wg)

		j0 += w
	}

	d[0] = A[0]
	e[0] = 0
	for i := 1; i < n; i++ {
		d[i] = A[i*n+i]
		e[i] = A[i*n+i-1]
	}
}

// xPassRanger computes x[i] = dot(A row j+1+i over cols j+1..n-1, v) minus
// the panel's prior-column corrections, one trailing row per element —
// each x element owned by exactly one chunk.
type xPassRanger struct {
	wg         sync.WaitGroup
	A, U       []float64
	v, x       []float64
	tmp1, tmp2 []float64
	n, j, jj   int
}

// RunRange implements sched.Ranger.
func (r *xPassRanger) RunRange(lo, hi int) {
	const b = eigBlock
	n, j, jj := r.n, r.j, r.jj
	for i := lo; i < hi; i++ {
		p := j + 1 + i
		row := r.A[p*n+j+1 : p*n+n]
		acc := eigDot(row, r.v)
		if jj > 0 {
			urow := r.U[(jj+i)*2*b:]
			acc -= eigDot(urow[:jj], r.tmp1) + eigDot(urow[b:b+jj], r.tmp2)
		}
		r.x[i] = acc
	}
}

// trailRanger subtracts the rank-2w product S from the trailing block of A
// (rows/cols off..off+m-1), one matrix row per range element.
type trailRanger struct {
	wg        sync.WaitGroup
	A, S      []float64
	n, off, m int
}

// RunRange implements sched.Ranger.
func (r *trailRanger) RunRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		p := r.off + i
		arow := r.A[p*r.n+r.off : p*r.n+r.off+r.m]
		srow := r.S[i*r.m : (i+1)*r.m]
		for q := range arow {
			arow[q] -= srow[q]
		}
	}
}

// backAccumulate forms the tridiagonalization's orthogonal Q in q (n×n,
// entered as identity) from the Householder vectors stored in A's lower
// triangle, applying the compact-WY panels in reverse: Q ← (I − V T Vᵀ)Q.
// V is repacked per panel into vbuf (stride eigBlock), T is rebuilt
// serially (small), and the V/T/Q products run as one fused column-chunked
// pass over the active bottom-right window. mbuf provides the two mt×b
// intermediates; tbuf the T triangle.
func (ws *eigWS) backAccumulate(q, A []float64, n int, tau, vbuf, mbuf, tbuf []float64) {
	const b = eigBlock
	for j0 := (n - 3) / b * b; j0 >= 0; j0 -= b {
		w := b
		if j0+w > n-2 {
			w = n - 2 - j0
		}
		mt := n - 1 - j0

		// Pack V (mt×b row-major): row r ↔ A row j0+1+r; unit diagonal,
		// stored components below, zero elsewhere. Row-wise contiguous
		// reads from A's lower triangle.
		for r := 0; r < mt; r++ {
			vr := vbuf[r*b : (r+1)*b]
			lim := r + 1
			if lim > w {
				lim = w
			}
			arow := A[(j0+1+r)*n+j0:]
			for l := 0; l < lim; l++ {
				if l == r {
					vr[l] = 1
				} else {
					vr[l] = arow[l]
				}
			}
			for l := lim; l < b; l++ {
				vr[l] = 0
			}
		}

		// T (w×w upper triangular, forward columnwise): T[k,k] = τ_k,
		// T[0:k,k] = −τ_k·T(0:k,0:k)·(V[:,0:k]ᵀ v_k). Serial — O(w²·mt)
		// against the panel's O(w·mt²) apply.
		T := tbuf[:w*w]
		y := tbuf[w*w : w*w+w]
		for k := 0; k < w; k++ {
			tk := tau[j0+k]
			for l := 0; l < k; l++ {
				y[l] = 0
			}
			for r := k; r < mt; r++ {
				vr := vbuf[r*b:]
				vk := vr[k]
				if vk == 0 {
					continue
				}
				eigAxpy(y[:k], vr[:k], vk)
			}
			for l := 0; l < k; l++ {
				T[l*w+k] = -tk * eigDot(T[l*w+l:l*w+k], y[l:k])
			}
			T[k*w+k] = tk
		}

		ws.ar.q, ws.ar.V, ws.ar.T = q, vbuf, T
		ws.ar.M1, ws.ar.M2 = mbuf[:n*b], mbuf[n*b:2*n*b]
		ws.ar.n, ws.ar.j0, ws.ar.mt, ws.ar.w = n, j0, mt, w
		ws.run(mt, &ws.ar, &ws.ar.wg)
	}
}

// accumRanger applies one compact-WY panel to a column range of Q's active
// window: M1 = VᵀQ, M2 = T·M1, Q ← Q − V·M2, all three phases fused per
// chunk. M1/M2 are stored transposed (one contiguous b-row per Q column)
// and every element — including the updated Q entries — is owned by
// exactly one column chunk.
type accumRanger struct {
	wg           sync.WaitGroup
	q, V, T      []float64
	M1, M2       []float64
	n, j0, mt, w int
}

// RunRange implements sched.Ranger over Q's active-window columns.
func (r *accumRanger) RunRange(clo, chi int) {
	const b = eigBlock
	off := r.j0 + 1
	for c := clo; c < chi; c++ {
		m1 := r.M1[c*b : c*b+r.w]
		for k := range m1 {
			m1[k] = 0
		}
	}
	for rr := 0; rr < r.mt; rr++ {
		vrow := r.V[rr*b:]
		qrow := r.q[(off+rr)*r.n+off:]
		lim := rr + 1
		if lim > r.w {
			lim = r.w
		}
		for c := clo; c < chi; c++ {
			x := qrow[c]
			if x == 0 {
				continue // Q is identity-sparse in the early panels
			}
			eigAxpy(r.M1[c*b:c*b+lim], vrow[:lim], x)
		}
	}
	for c := clo; c < chi; c++ {
		m1 := r.M1[c*b:]
		m2 := r.M2[c*b:]
		for k := 0; k < r.w; k++ {
			m2[k] = eigDot(r.T[k*r.w+k:(k+1)*r.w], m1[k:r.w])
		}
	}
	for rr := 0; rr < r.mt; rr++ {
		vrow := r.V[rr*b:]
		qrow := r.q[(off+rr)*r.n+off:]
		lim := rr + 1
		if lim > r.w {
			lim = r.w
		}
		for c := clo; c < chi; c++ {
			qrow[c] -= eigDot(vrow[:lim], r.M2[c*b:c*b+lim])
		}
	}
}

// batchedQL runs tql2's implicit-shift QL iteration with the rotation
// application to Q batched: the scalar recurrence (d/e only) is byte-for-
// byte the serial algorithm and records each sweep's Givens pairs, which a
// row-chunked parallel pass then applies with per-row arithmetic identical
// to the serial column loop. qtmp (n×n) is the sort scratch.
func (ws *eigWS) batchedQL(v []float64, n int, d, e []float64, work, qtmp []float64) error {
	cs := work[:n]
	sn := work[n : 2*n]
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f := 0.0
	tst1 := 0.0
	const eps = 2.220446049250313e-16 // 2^-52
	for l := 0; l < n; l++ {
		if t := math.Abs(d[l]) + math.Abs(e[l]); t > tst1 {
			tst1 = t
		}
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > maxQLIter {
					return ErrNoConvergence
				}
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h

				p = d[m]
				c := 1.0
				c2, c3 := c, c
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					cs[m-1-i] = c
					sn[m-1-i] = s
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p

				ws.rr.q, ws.rr.cs, ws.rr.sn = v, cs, sn
				ws.rr.n, ws.rr.l, ws.rr.m = n, l, m
				ws.run(n, &ws.rr, &ws.rr.wg)

				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}

	// Sort eigenvalues ascending. The selection scan and d swaps are the
	// serial tql2 code; the column permutation is recorded and applied to
	// Q in one row-chunked pass instead of per-swap column walks.
	if cap(ws.perm) < n {
		ws.perm = make([]int, n)
	}
	perm := ws.perm[:n]
	for i := range perm {
		perm[i] = i
	}
	changed := false
	for i := 0; i < n-1; i++ {
		k := i
		p := d[i]
		for j := i + 1; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			perm[i], perm[k] = perm[k], perm[i]
			changed = true
		}
	}
	if changed {
		ws.pr.q, ws.pr.tmp, ws.pr.perm = v, qtmp, perm
		ws.pr.n = n
		ws.run(n, &ws.pr, &ws.pr.wg)
	}
	return nil
}

// rotRanger applies one QL sweep's recorded rotation sequence to a range
// of Q's rows. Within a chunk, rows advance four at a time — four
// independent carry chains hide the floating-point latency the serial
// column-strided loop exposes — and each row's arithmetic is exactly the
// serial recurrence, so grouping cannot change bits.
type rotRanger struct {
	wg      sync.WaitGroup
	q       []float64
	cs, sn  []float64
	n, l, m int
}

// RunRange implements sched.Ranger over Q's rows.
func (r *rotRanger) RunRange(lo, hi int) {
	nrot := r.m - r.l
	k := lo
	for ; k+4 <= hi; k += 4 {
		rotRows4(
			r.q[k*r.n+r.l:k*r.n+r.m+1],
			r.q[(k+1)*r.n+r.l:(k+1)*r.n+r.m+1],
			r.q[(k+2)*r.n+r.l:(k+2)*r.n+r.m+1],
			r.q[(k+3)*r.n+r.l:(k+3)*r.n+r.m+1],
			r.cs, r.sn, nrot)
	}
	for ; k < hi; k++ {
		rotRow(r.q[k*r.n+r.l:k*r.n+r.m+1], r.cs, r.sn, nrot)
	}
}

// rotSweepRow applies rotations t = 0..nrot-1 (rotation t acts on columns
// (m-1-t, m-t), recorded in generation order) to one row segment
// sub = Q[row][l..m]. The carry-chain form is algebraically AND bitwise
// the serial tql2 update: h is the running value of the right column, and
// each step's two writes match the serial pair exactly.
func rotSweepRow(sub, cs, sn []float64, nrot int) {
	carry := sub[nrot]
	for t := 0; t < nrot; t++ {
		p := nrot - 1 - t
		x := sub[p]
		c, s := cs[t], sn[t]
		sub[p+1] = s*x + c*carry
		carry = c*x - s*carry
	}
	sub[0] = carry
}

// rotSweepRow4 is rotSweepRow over four rows in lockstep: identical
// per-row arithmetic, but four independent dependency chains keep the FPU
// pipeline full (~2.6× the single-row throughput in the scalar build).
func rotSweepRow4(a0, a1, a2, a3, cs, sn []float64, nrot int) {
	k0, k1, k2, k3 := a0[nrot], a1[nrot], a2[nrot], a3[nrot]
	for t := 0; t < nrot; t++ {
		p := nrot - 1 - t
		c, s := cs[t], sn[t]
		x0 := a0[p]
		a0[p+1] = s*x0 + c*k0
		k0 = c*x0 - s*k0
		x1 := a1[p]
		a1[p+1] = s*x1 + c*k1
		k1 = c*x1 - s*k1
		x2 := a2[p]
		a2[p+1] = s*x2 + c*k2
		k2 = c*x2 - s*k2
		x3 := a3[p]
		a3[p+1] = s*x3 + c*k3
		k3 = c*x3 - s*k3
	}
	a0[0], a1[0], a2[0], a3[0] = k0, k1, k2, k3
}

// permRanger applies the eigenvalue sort's column permutation to a range
// of Q's rows: each row is permuted into its slot of the shared scratch
// and copied back — rows are chunk-owned, so the pass is deterministic
// for any grid.
type permRanger struct {
	wg     sync.WaitGroup
	q, tmp []float64
	perm   []int
	n      int
}

// RunRange implements sched.Ranger over Q's rows.
func (r *permRanger) RunRange(lo, hi int) {
	for k := lo; k < hi; k++ {
		row := r.q[k*r.n : (k+1)*r.n]
		trow := r.tmp[k*r.n : (k+1)*r.n]
		for j := 0; j < r.n; j++ {
			trow[j] = row[r.perm[j]]
		}
		copy(row, trow)
	}
}
