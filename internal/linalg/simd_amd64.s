//go:build amd64 && !purego

#include "textflag.h"

// AVX2+FMA float64 kernels for the blocked eigensolver. Operand order
// note: the Go assembler reverses Intel operand order, so
// VFMADD231PD Ys, Ym, Yd computes Yd += Ym*Ys. Every routine handles
// arbitrary lengths (vector body + scalar tail) and executes VZEROUPPER
// before returning to avoid SSE/AVX transition stalls.

// func dotF64AVX(a, b []float64) float64
// Inner product: 4×4 float64 FMA lanes (16 elements per iteration), a
// 4-lane cleanup loop, and a scalar tail kept in its own accumulator so
// the VEX.128 scalar ops cannot clobber the packed lanes.
TEXT ·dotF64AVX(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD X8, X8, X8   // scalar-tail accumulator
	XORQ   AX, AX
	MOVQ   CX, DX
	ANDQ   $-16, DX

dot_loop16:
	CMPQ AX, DX
	JGE  dot_rem4
	VMOVUPD     (SI)(AX*8), Y4
	VMOVUPD     32(SI)(AX*8), Y5
	VMOVUPD     64(SI)(AX*8), Y6
	VMOVUPD     96(SI)(AX*8), Y7
	VFMADD231PD (DI)(AX*8), Y4, Y0
	VFMADD231PD 32(DI)(AX*8), Y5, Y1
	VFMADD231PD 64(DI)(AX*8), Y6, Y2
	VFMADD231PD 96(DI)(AX*8), Y7, Y3
	ADDQ $16, AX
	JMP  dot_loop16

dot_rem4:
	MOVQ CX, DX
	ANDQ $-4, DX

dot_rem4_loop:
	CMPQ AX, DX
	JGE  dot_tail
	VMOVUPD     (SI)(AX*8), Y4
	VFMADD231PD (DI)(AX*8), Y4, Y0
	ADDQ $4, AX
	JMP  dot_rem4_loop

dot_tail:
	CMPQ AX, CX
	JGE  dot_sum
	VMOVSD      (SI)(AX*8), X4
	VFMADD231SD (DI)(AX*8), X4, X8
	INCQ AX
	JMP  dot_tail

dot_sum:
	VADDPD       Y1, Y0, Y0
	VADDPD       Y3, Y2, Y2
	VADDPD       Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X2
	VADDPD       X2, X0, X0
	VHADDPD      X0, X0, X0
	VADDSD       X8, X0, X0
	VMOVSD       X0, ret+48(FP)
	VZEROUPPER
	RET

// func axpyF64AVX(dst, src []float64, a float64)
// dst += a*src, 4 lanes per iteration. Element-wise FMA, so the packed
// body and scalar tail produce identical bits per element.
TEXT ·axpyF64AVX(SB), NOSPLIT, $0-56
	MOVQ         dst_base+0(FP), DI
	MOVQ         dst_len+8(FP), CX
	MOVQ         src_base+24(FP), SI
	VBROADCASTSD a+48(FP), Y0
	XORQ         AX, AX
	MOVQ         CX, DX
	ANDQ         $-4, DX

axpy_loop4:
	CMPQ AX, DX
	JGE  axpy_tail
	VMOVUPD     (SI)(AX*8), Y1
	VMOVUPD     (DI)(AX*8), Y2
	VFMADD231PD Y1, Y0, Y2
	VMOVUPD     Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy_loop4

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSD      (SI)(AX*8), X1
	VMOVSD      (DI)(AX*8), X2
	VFMADD231SD X1, X0, X2
	VMOVSD      X2, (DI)(AX*8)
	INCQ AX
	JMP  axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func rotRows4AVX(a0, a1, a2, a3, cs, sn []float64, nrot int)
// Applies rotation sweep t = 0..nrot-1 (rotation t on positions
// (nrot-1-t, nrot-t), generation order) to four row segments in lockstep:
// lane r holds row r's running carry, and each step gathers the four
// rows' element p into one ymm, computes out = s*x + c*carry (VMULPD +
// VFMADD231PD) and carry' = c*x − s*carry (VMULPD + VFNMADD231PD), and
// scatters out to position p+1. Bitwise-matched by rotSweepRowFMA for the
// remainder rows.
TEXT ·rotRows4AVX(SB), NOSPLIT, $0-152
	MOVQ a0_base+0(FP), R8
	MOVQ a1_base+24(FP), R9
	MOVQ a2_base+48(FP), R10
	MOVQ a3_base+72(FP), R11
	MOVQ cs_base+96(FP), SI
	MOVQ sn_base+120(FP), DI
	MOVQ nrot+144(FP), CX

	// carry = [a0[nrot], a1[nrot], a2[nrot], a3[nrot]]
	VMOVSD      (R8)(CX*8), X4
	VMOVHPD     (R9)(CX*8), X4, X4
	VMOVSD      (R10)(CX*8), X5
	VMOVHPD     (R11)(CX*8), X5, X5
	VINSERTF128 $1, X5, Y4, Y4
	XORQ        AX, AX

rot_loop:
	CMPQ AX, CX
	JGE  rot_done
	MOVQ CX, DX
	SUBQ AX, DX
	DECQ DX                       // p = nrot-1-t
	VBROADCASTSD (SI)(AX*8), Y0   // c
	VBROADCASTSD (DI)(AX*8), Y1   // s

	// x = [a0[p], a1[p], a2[p], a3[p]]
	VMOVSD      (R8)(DX*8), X2
	VMOVHPD     (R9)(DX*8), X2, X2
	VMOVSD      (R10)(DX*8), X3
	VMOVHPD     (R11)(DX*8), X3, X3
	VINSERTF128 $1, X3, Y2, Y2

	VMULPD      Y4, Y0, Y5        // c*carry
	VFMADD231PD Y2, Y1, Y5        // + s*x
	VMULPD      Y2, Y0, Y6        // c*x
	VFNMADD231PD Y4, Y1, Y6       // − s*carry
	VMOVAPD     Y6, Y4

	// rows[p+1] = out
	VMOVSD       X5, 8(R8)(DX*8)
	VMOVHPD      X5, 8(R9)(DX*8)
	VEXTRACTF128 $1, Y5, X7
	VMOVSD       X7, 8(R10)(DX*8)
	VMOVHPD      X7, 8(R11)(DX*8)

	INCQ AX
	JMP  rot_loop

rot_done:
	// rows[0] = carry
	VMOVSD       X4, (R8)
	VMOVHPD      X4, (R9)
	VEXTRACTF128 $1, Y4, X7
	VMOVSD       X7, (R10)
	VMOVHPD      X7, (R11)
	VZEROUPPER
	RET

// func eigCPUID(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·eigCPUID(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func eigXGETBV() (eax, edx uint32)
TEXT ·eigXGETBV(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
