package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// randSym32 returns an n×n float32 symmetric matrix with entries in [-1, 1)
// plus a widened float64 copy.
func randSym32(rng *rand.Rand, n int) (*tensor.T32, *tensor.Tensor) {
	a32 := tensor.NewT32(n, n)
	a64 := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := float32(rng.Float64()*2 - 1)
			a32.Data[i*n+j] = v
			a32.Data[j*n+i] = v
		}
	}
	tensor.Widen(a64.Data, a32.Data)
	return a32, a64
}

// TestSymMul32MatchesFloat64Oracle drives the float32 Gram kernel over
// random k×m inputs — k below and above the accumulation chunk, m below and
// above the parallel threshold — against the float64 SymMulT1Into on
// widened copies. The error budget is the chunked-accumulation bound
// (O(kChunk·ε₃₂) per element, inputs bounded by 1); exact symmetry of the
// result is required separately since the lower triangle is a mirror copy.
func TestSymMul32MatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const eps32 = 1.1920929e-07
	for _, sh := range []struct{ k, m int }{
		{1, 1}, {3, 5}, {64, 12}, {65, 12}, {200, 33}, {300, 96},
	} {
		a32 := tensor.NewT32(sh.k, sh.m)
		for i := range a32.Data {
			a32.Data[i] = float32(rng.Float64()*2 - 1)
		}
		a64 := tensor.New(sh.k, sh.m)
		tensor.Widen(a64.Data, a32.Data)

		got := tensor.NewT32(sh.m, sh.m)
		SymMulT1Into32(got, a32)
		want := SymMulT1(a64)

		tol := 64 * eps32 * 8 * (float64(sh.k) + 1)
		for i, g := range got.Data {
			if d := math.Abs(float64(g) - want.Data[i]); d > tol {
				t.Fatalf("k=%d m=%d element %d: got %v want %v (|Δ|=%.3e > %.3e)",
					sh.k, sh.m, i, g, want.Data[i], d, tol)
			}
		}
		for i := 0; i < sh.m; i++ {
			for j := 0; j < i; j++ {
				if got.Data[i*sh.m+j] != got.Data[j*sh.m+i] {
					t.Fatalf("k=%d m=%d asymmetric at (%d,%d)", sh.k, sh.m, i, j)
				}
			}
		}
	}
}

// TestSymMul32ZeroAllocSteadyState asserts the parallel float32 Gram kernel
// allocates nothing once its pooled workspaces are warm.
func TestSymMul32ZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := tensor.NewT32(300, 96)
	for i := range a.Data {
		a.Data[i] = float32(rng.Float64()*2 - 1)
	}
	dst := tensor.NewT32(96, 96)
	SymMulT1Into32(dst, a)
	if allocs := testing.AllocsPerRun(10, func() { SymMulT1Into32(dst, a) }); allocs != 0 {
		t.Fatalf("SymMulT1Into32 allocates %v times per call", allocs)
	}
}

// TestSymEigInto32Reconstructs checks the float32 Jacobi eigensolver on
// random symmetric matrices at several sizes: QΛQᵀ must reconstruct the
// symmetrized input to float32 resolution and Q must be orthogonal to the
// same resolution.
func TestSymEigInto32Reconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 8, 17, 40} {
		_, a64 := randSym32(rng, n)
		var eg Eigen
		if err := SymEigInto32(a64, &eg); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := eg.Reconstruct()
		// ‖A‖_F scales with n for unit-bounded entries; allow float32
		// round-off amplified by the O(n) accumulation in reconstruction.
		tol := 1e-5 * float64(n+1)
		for i := range rec.Data {
			if d := math.Abs(rec.Data[i] - a64.Data[i]); d > tol {
				t.Fatalf("n=%d reconstruct element %d: |Δ|=%.3e > %.3e", n, i, d, tol)
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var dot float64
				for k := 0; k < n; k++ {
					dot += eg.Q.Data[k*n+i] * eg.Q.Data[k*n+j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > tol {
					t.Fatalf("n=%d QᵀQ[%d,%d] = %v", n, i, j, dot)
				}
			}
		}
		for i := 1; i < n; i++ {
			if eg.Values[i] < eg.Values[i-1] {
				t.Fatalf("n=%d eigenvalues not ascending: %v", n, eg.Values)
			}
		}
	}
}

// TestSymEigInto32MatchesFloat64Values compares the float32 Jacobi
// eigenvalues against the float64 Householder+QL solver on the same input:
// eigenvalues of a symmetric matrix are perfectly conditioned (Weyl), so
// they must agree to float32 round-off in the matrix norm.
func TestSymEigInto32MatchesFloat64Values(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const n = 24
	_, a64 := randSym32(rng, n)
	ref, err := SymEig(a64)
	if err != nil {
		t.Fatal(err)
	}
	var eg Eigen
	if err := SymEigInto32(a64, &eg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d := math.Abs(eg.Values[i] - ref.Values[i]); d > 1e-4 {
			t.Fatalf("eigenvalue %d: f32 %v vs f64 %v", i, eg.Values[i], ref.Values[i])
		}
	}
}

// TestSymEigInto32PSDFactors exercises the solver on the Gram-type
// positive-semidefinite matrices K-FAC actually produces (A = aᵀa/N plus
// damping-scale diagonal), including reuse of the same Eigen across calls.
func TestSymEigInto32PSDFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var eg Eigen
	for trial := 0; trial < 3; trial++ {
		const k, m = 64, 20
		a := tensor.New(k, m)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		f := SymMulT1(a)
		f.Scale(1.0 / k)
		if err := SymEigInto32(f, &eg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, v := range eg.Values {
			if v < -1e-4 {
				t.Fatalf("trial %d: PSD factor produced eigenvalue %d = %v", trial, i, v)
			}
		}
		rec := eg.Reconstruct()
		for i := range rec.Data {
			if d := math.Abs(rec.Data[i] - f.Data[i]); d > 1e-4*float64(m) {
				t.Fatalf("trial %d reconstruct element %d: |Δ|=%.3e", trial, i, d)
			}
		}
	}
}

// TestSymEigInto32RejectsBadInput mirrors the float64 solver's validation.
func TestSymEigInto32RejectsBadInput(t *testing.T) {
	var eg Eigen
	bad := tensor.New(2, 2)
	bad.Data[1] = math.NaN()
	if err := SymEigInto32(bad, &eg); err == nil {
		t.Fatal("NaN input accepted")
	}
	rect := tensor.New(2, 3)
	if err := SymEigInto32(rect, &eg); err == nil {
		t.Fatal("rectangular input accepted")
	}
}
