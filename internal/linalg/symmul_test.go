package linalg

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestSymMulBitIdenticalToMatMulT1 is the kernel-equality gate: the blocked
// symmetric multiply must reproduce the general matmul bit for bit — zero
// tolerance — across shapes small enough for the serial path and large
// enough to fan out over the shared pool, including matrices with exact
// zeros (the skip path).
func TestSymMulBitIdenticalToMatMulT1(t *testing.T) {
	shapes := []struct{ k, m int }{
		{1, 1}, {3, 2}, {7, 5}, {16, 16}, {33, 9},
		{128, 64},  // serial path
		{600, 220}, // parallel path: 220·220·600/2 ≈ 14.5M madds
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(sh.k*1000 + sh.m)))
		a := tensor.Randn(rng, 1, sh.k, sh.m)
		// Sprinkle exact zeros so the zero-skip branch is exercised.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}
		want := tensor.New(sh.m, sh.m)
		tensor.MatMulT1Into(want, a, a)
		got := SymMulT1(a)
		if !got.SameShape(want) {
			t.Fatalf("k=%d m=%d: shape %v, want %v", sh.k, sh.m, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("k=%d m=%d: element %d differs: %x vs %x",
					sh.k, sh.m, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestSymMulIntoReuse: repeated in-place use over the same destination must
// fully overwrite previous results.
func TestSymMulIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dst := tensor.New(6, 6)
	dst.Fill(999)
	a := tensor.Randn(rng, 1, 9, 6)
	SymMulT1Into(dst, a)
	want := tensor.New(6, 6)
	tensor.MatMulT1Into(want, a, a)
	if !dst.Equal(want, 0) {
		t.Error("SymMulT1Into did not overwrite stale destination contents")
	}
}

// TestSymEigIntoReuseMatchesFresh: refreshing one Eigen in place across
// several matrices must give exactly the results of fresh decompositions.
func TestSymEigIntoReuseMatchesFresh(t *testing.T) {
	var reused Eigen
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + int(seed)*5 // varying sizes force Q/Values regrowth
		m := tensor.Randn(rng, 1, n, n)
		spd := SymMulT1(m)
		if err := SymEigInto(spd, &reused); err != nil {
			t.Fatal(err)
		}
		fresh, err := SymEig(spd)
		if err != nil {
			t.Fatal(err)
		}
		if !reused.Q.Equal(fresh.Q, 0) {
			t.Errorf("seed %d: reused Q differs from fresh", seed)
		}
		for i := range fresh.Values {
			if reused.Values[i] != fresh.Values[i] {
				t.Errorf("seed %d: eigenvalue %d differs", seed, i)
			}
		}
	}
}

// TestSymEigIntoRejectsNaNWithoutClobbering: a NaN input must fail before
// the previous decomposition stored in the Eigen is touched.
func TestSymEigIntoRejectsNaNWithoutClobbering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	spd := SymMulT1(tensor.Randn(rng, 1, 6, 6))
	var eg Eigen
	if err := SymEigInto(spd, &eg); err != nil {
		t.Fatal(err)
	}
	q0 := eg.Q.Clone()
	bad := spd.Clone()
	bad.Data[3] = nan()
	if err := SymEigInto(bad, &eg); err == nil {
		t.Fatal("NaN input accepted")
	}
	if !eg.Q.Equal(q0, 0) {
		t.Error("failed decomposition clobbered the previous result")
	}
}

func nan() float64 { z := 0.0; return z / z }

// TestSymEigJacobiArenaMatchesHeap: the arena-backed oracle must agree with
// the heap-allocating one and leave the arena fully recyclable.
func TestSymEigJacobiArenaMatchesHeap(t *testing.T) {
	ws := tensor.NewArena()
	for seed := int64(0); seed < 3; seed++ {
		ws.Reset()
		rng := rand.New(rand.NewSource(seed))
		spd := SymMulT1(tensor.Randn(rng, 1, 10, 10))
		got, err := SymEigJacobiArena(spd, 0, ws)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SymEigJacobi(spd, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Q.Equal(want.Q, 0) {
			t.Errorf("seed %d: arena Q differs from heap Q", seed)
		}
		for i := range want.Values {
			if got.Values[i] != want.Values[i] {
				t.Errorf("seed %d: eigenvalue %d differs", seed, i)
			}
		}
	}
}
