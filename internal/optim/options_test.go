package optim

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// clonedParams returns two identical parameter sets so two optimizers can be
// stepped side by side.
func clonedParams(value, grad []float64) (*nn.Param, *nn.Param) {
	a := paramWith(value, grad)
	b := paramWith(value, grad)
	return a, b
}

// The functional constructors must produce trajectories identical to the
// deprecated positional ones.
func TestFunctionalConstructorsMatchPositional(t *testing.T) {
	t.Run("sgd", func(t *testing.T) {
		a, b := clonedParams([]float64{1, -2}, []float64{0.3, 0.7})
		oldOpt := NewSGD([]*nn.Param{a}, 0.05, 0.9, 0.01, true)
		newOpt := SGD([]*nn.Param{b},
			WithLR(0.05), WithMomentum(0.9), WithWeightDecay(0.01), WithNesterov())
		for i := 0; i < 5; i++ {
			oldOpt.Step()
			newOpt.Step()
		}
		if !a.Value.Equal(b.Value, 0) {
			t.Errorf("SGD trajectories diverge: %v vs %v", a.Value.Data, b.Value.Data)
		}
	})
	t.Run("lars", func(t *testing.T) {
		a, b := clonedParams([]float64{1, 1}, []float64{2, -1})
		oldOpt := NewLARS([]*nn.Param{a}, 0.05, 0.9, 0.01, 0.02)
		newOpt := LARS([]*nn.Param{b},
			WithLR(0.05), WithMomentum(0.9), WithWeightDecay(0.01), WithTrustCoefficient(0.02))
		for i := 0; i < 5; i++ {
			oldOpt.Step()
			newOpt.Step()
		}
		if !a.Value.Equal(b.Value, 0) {
			t.Errorf("LARS trajectories diverge: %v vs %v", a.Value.Data, b.Value.Data)
		}
	})
	t.Run("adam", func(t *testing.T) {
		a, b := clonedParams([]float64{1, -1}, []float64{0.5, 0.25})
		oldOpt := NewAdam([]*nn.Param{a}, 0.01, 0.8, 0.99, 1e-6, 0.01)
		newOpt := Adam([]*nn.Param{b},
			WithLR(0.01), WithBetas(0.8, 0.99), WithEpsilon(1e-6), WithWeightDecay(0.01))
		for i := 0; i < 5; i++ {
			oldOpt.Step()
			newOpt.Step()
		}
		if !a.Value.Equal(b.Value, 0) {
			t.Errorf("Adam trajectories diverge: %v vs %v", a.Value.Data, b.Value.Data)
		}
	})
}

func TestOptionDefaults(t *testing.T) {
	a := Adam(nil)
	if a.Beta1 != 0.9 || a.Beta2 != 0.999 || a.Eps != 1e-8 {
		t.Errorf("Adam defaults = %v %v %v", a.Beta1, a.Beta2, a.Eps)
	}
	if a.LR() != 0.1 {
		t.Errorf("default lr = %v, want 0.1", a.LR())
	}
	l := LARS(nil)
	if l.Eta != 0.001 {
		t.Errorf("LARS default eta = %v, want 0.001", l.Eta)
	}
	s := SGD(nil)
	if s.Momentum != 0 || s.WeightDecay != 0 || s.Nesterov {
		t.Errorf("SGD defaults = %+v", s)
	}
}

// Later options override earlier ones.
func TestOptionOrderLastWins(t *testing.T) {
	s := SGD(nil, WithLR(0.1), WithLR(0.7))
	if s.LR() != 0.7 {
		t.Errorf("lr = %v, want 0.7 (last option wins)", s.LR())
	}
}

// Irrelevant options are accepted and ignored, so one option list can serve
// several optimizer families.
func TestIrrelevantOptionsIgnored(t *testing.T) {
	shared := []Option{WithLR(0.2), WithBetas(0.5, 0.6), WithTrustCoefficient(7)}
	s := SGD(nil, shared...)
	if s.LR() != 0.2 {
		t.Errorf("SGD ignored WithLR in shared list: %v", s.LR())
	}
	a := Adam(nil, shared...)
	if a.Beta1 != 0.5 || a.Beta2 != 0.6 {
		t.Errorf("Adam betas = %v %v", a.Beta1, a.Beta2)
	}
}

func TestZeroGrad(t *testing.T) {
	p := paramWith([]float64{1, 2}, []float64{3, 4})
	for _, o := range []Optimizer{
		SGD([]*nn.Param{p}),
		LARS([]*nn.Param{p}),
		Adam([]*nn.Param{p}),
	} {
		copy(p.Grad.Data, []float64{3, 4})
		o.ZeroGrad()
		if p.Grad.Data[0] != 0 || p.Grad.Data[1] != 0 {
			t.Errorf("%T: ZeroGrad left %v", o, p.Grad.Data)
		}
	}
}

// NewAdam's zero-argument defaulting must survive the shim.
func TestNewAdamZeroDefaultsThroughShim(t *testing.T) {
	p := paramWith([]float64{0}, []float64{1})
	a := NewAdam([]*nn.Param{p}, 0.1, 0, 0, 0, 0)
	if a.Beta1 != 0.9 || a.Beta2 != 0.999 || a.Eps != 1e-8 {
		t.Errorf("shim defaults = %v %v %v", a.Beta1, a.Beta2, a.Eps)
	}
	// Partial zeroing: beta1 set, beta2 zero → beta2 defaults.
	b := NewAdam([]*nn.Param{p}, 0.1, 0.8, 0, 0, 0)
	if b.Beta1 != 0.8 || b.Beta2 != 0.999 {
		t.Errorf("partial shim defaults = %v %v", b.Beta1, b.Beta2)
	}
}

// The Optimizer interface is satisfied by all three families and drives a
// quadratic to its minimum regardless of implementation.
func TestInterfaceStepConverges(t *testing.T) {
	target := []float64{1, -2, 3}
	for _, mk := range []func(p *nn.Param) Optimizer{
		func(p *nn.Param) Optimizer { return SGD([]*nn.Param{p}, WithLR(0.3), WithMomentum(0.9)) },
		func(p *nn.Param) Optimizer { return Adam([]*nn.Param{p}, WithLR(0.1)) },
	} {
		p := nn.NewParam("w", tensor.New(3))
		o := mk(p)
		for i := 0; i < 1000; i++ {
			o.ZeroGrad()
			for j := range p.Grad.Data {
				p.Grad.Data[j] = p.Value.Data[j] - target[j]
			}
			o.Step()
		}
		for j := range target {
			if math.Abs(p.Value.Data[j]-target[j]) > 1e-3 {
				t.Errorf("%T did not converge: %v", o, p.Value.Data)
				break
			}
		}
	}
}
