package optim

// Option configures an optimizer constructor (SGD, LARS, Adam). Options are
// applied in argument order, later options overriding earlier ones; options
// irrelevant to a constructor (e.g. WithBetas on SGD) are accepted and
// ignored, so one option slice can parameterize several optimizer families.
type Option func(*settings)

// settings is the resolved option set shared by every constructor.
type settings struct {
	lr           float64
	momentum     float64
	weightDecay  float64
	nesterov     bool
	eta          float64 // LARS trust coefficient
	beta1, beta2 float64 // Adam moment decays
	eps          float64 // Adam denominator floor
}

// resolve applies opts over the package defaults.
func resolve(opts []Option) settings {
	st := settings{
		lr:    0.1,
		eta:   0.001,
		beta1: 0.9,
		beta2: 0.999,
		eps:   1e-8,
	}
	for _, o := range opts {
		o(&st)
	}
	return st
}

// WithLR sets the initial learning rate (default 0.1). Schedules typically
// override it per epoch through Optimizer.SetLR.
func WithLR(lr float64) Option { return func(s *settings) { s.lr = lr } }

// WithMomentum sets the momentum coefficient (default 0; paper: 0.9).
func WithMomentum(m float64) Option { return func(s *settings) { s.momentum = m } }

// WithWeightDecay sets the L2 weight-decay coefficient (default 0).
// Parameters flagged nn.Param.NoWeightDecay are always excluded.
func WithWeightDecay(wd float64) Option { return func(s *settings) { s.weightDecay = wd } }

// WithNesterov selects the Nesterov momentum update for SGD (default
// heavy-ball).
func WithNesterov() Option { return func(s *settings) { s.nesterov = true } }

// WithTrustCoefficient sets LARS's η trust coefficient (default 0.001).
func WithTrustCoefficient(eta float64) Option { return func(s *settings) { s.eta = eta } }

// WithBetas sets Adam's first/second-moment decay rates (default 0.9,
// 0.999).
func WithBetas(beta1, beta2 float64) Option {
	return func(s *settings) { s.beta1, s.beta2 = beta1, beta2 }
}

// WithEpsilon sets Adam's denominator floor ε (default 1e-8).
func WithEpsilon(eps float64) Option { return func(s *settings) { s.eps = eps } }
