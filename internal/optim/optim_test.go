package optim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func paramWith(value, grad []float64) *nn.Param {
	p := nn.NewParam("p", tensor.FromSlice(value, len(value)))
	copy(p.Grad.Data, grad)
	return p
}

func TestSGDVanillaStep(t *testing.T) {
	p := paramWith([]float64{1, 2}, []float64{0.5, -0.5})
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0, false)
	s.Step()
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 || math.Abs(p.Value.Data[1]-2.05) > 1e-12 {
		t.Errorf("SGD step = %v", p.Value.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := paramWith([]float64{0}, []float64{1})
	s := NewSGD([]*nn.Param{p}, 1, 0.9, 0, false)
	s.Step() // buf=1, w=-1
	copy(p.Grad.Data, []float64{1})
	s.Step() // buf=1.9, w=-2.9
	if math.Abs(p.Value.Data[0]+2.9) > 1e-12 {
		t.Errorf("momentum step = %v, want -2.9", p.Value.Data[0])
	}
}

func TestSGDNesterov(t *testing.T) {
	p := paramWith([]float64{0}, []float64{1})
	s := NewSGD([]*nn.Param{p}, 1, 0.9, 0, true)
	s.Step() // buf=1; update = g + m*buf = 1.9; w=-1.9
	if math.Abs(p.Value.Data[0]+1.9) > 1e-12 {
		t.Errorf("nesterov step = %v, want -1.9", p.Value.Data[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := paramWith([]float64{10}, []float64{0})
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5, false)
	s.Step() // g_eff = 0 + 0.5*10 = 5; w = 10 - 0.5 = 9.5
	if math.Abs(p.Value.Data[0]-9.5) > 1e-12 {
		t.Errorf("weight decay step = %v, want 9.5", p.Value.Data[0])
	}
}

func TestSGDNoWeightDecayFlag(t *testing.T) {
	p := paramWith([]float64{10}, []float64{0})
	p.NoWeightDecay = true
	s := NewSGD([]*nn.Param{p}, 0.1, 0, 0.5, false)
	s.Step()
	if p.Value.Data[0] != 10 {
		t.Errorf("NoWeightDecay param moved: %v", p.Value.Data[0])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ½‖w − w*‖²; gradient = w − w*.
	rng := rand.New(rand.NewSource(1))
	target := tensor.Randn(rng, 1, 10)
	p := nn.NewParam("w", tensor.New(10))
	s := NewSGD([]*nn.Param{p}, 0.3, 0.9, 0, false)
	for i := 0; i < 500; i++ {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = p.Value.Data[j] - target.Data[j]
		}
		s.Step()
	}
	diff := p.Value.Clone()
	diff.Sub(target)
	if diff.Norm2() > 1e-6 {
		t.Errorf("SGD did not converge: dist %v", diff.Norm2())
	}
}

func TestLARSTrustRatioScalesUpdate(t *testing.T) {
	// With ‖w‖=1 and ‖g‖=100, trust ≈ eta/100: update is tiny relative to
	// vanilla SGD.
	p := paramWith([]float64{1, 0}, []float64{100, 0})
	l := NewLARS([]*nn.Param{p}, 1, 0, 0, 0.001)
	l.Step()
	moved := math.Abs(1 - p.Value.Data[0])
	if moved > 0.01 {
		t.Errorf("LARS moved %v, trust ratio not applied", moved)
	}
}

func TestLARSConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := tensor.Randn(rng, 1, 8)
	p := nn.NewParam("w", tensor.Ones(8))
	l := NewLARS([]*nn.Param{p}, 0.5, 0.9, 0, 0.02)
	for i := 0; i < 3000; i++ {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = p.Value.Data[j] - target.Data[j]
		}
		l.Step()
	}
	diff := p.Value.Clone()
	diff.Sub(target)
	if diff.Norm2() > 0.05 {
		t.Errorf("LARS did not approach target: dist %v", diff.Norm2())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	target := tensor.Randn(rng, 1, 10)
	p := nn.NewParam("w", tensor.New(10))
	a := NewAdam([]*nn.Param{p}, 0.05, 0, 0, 0, 0)
	for i := 0; i < 2000; i++ {
		for j := range p.Grad.Data {
			p.Grad.Data[j] = p.Value.Data[j] - target.Data[j]
		}
		a.Step()
	}
	diff := p.Value.Clone()
	diff.Sub(target)
	if diff.Norm2() > 1e-3 {
		t.Errorf("Adam did not converge: dist %v", diff.Norm2())
	}
}

func TestAdamDefaults(t *testing.T) {
	p := paramWith([]float64{0}, []float64{1})
	a := NewAdam([]*nn.Param{p}, 0.1, 0, 0, 0, 0)
	if a.Beta1 != 0.9 || a.Beta2 != 0.999 || a.Eps != 1e-8 {
		t.Errorf("defaults = %v %v %v", a.Beta1, a.Beta2, a.Eps)
	}
	a.Step()
	// First Adam step moves by ≈ lr regardless of gradient scale.
	if math.Abs(p.Value.Data[0]+0.1) > 1e-6 {
		t.Errorf("first Adam step = %v, want ≈ -0.1", p.Value.Data[0])
	}
}

func TestSetLR(t *testing.T) {
	p := paramWith([]float64{0}, []float64{1})
	for _, o := range []Optimizer{
		NewSGD([]*nn.Param{p}, 0.1, 0, 0, false),
		NewLARS([]*nn.Param{p}, 0.1, 0, 0, 0.001),
		NewAdam([]*nn.Param{p}, 0.1, 0, 0, 0, 0),
	} {
		o.SetLR(0.42)
		if o.LR() != 0.42 {
			t.Errorf("%T: SetLR/LR failed", o)
		}
	}
}

func TestLRScheduleWarmupAndDecay(t *testing.T) {
	s := LRSchedule{BaseLR: 1.0, WarmupEpochs: 5, Milestones: []int{10, 20}, Factor: 0.1}
	// Linear warmup: epoch 0 → 0.2, epoch 4 → 1.0.
	if math.Abs(s.At(0)-0.2) > 1e-12 {
		t.Errorf("At(0) = %v, want 0.2", s.At(0))
	}
	if math.Abs(s.At(4)-1.0) > 1e-12 {
		t.Errorf("At(4) = %v, want 1.0", s.At(4))
	}
	if math.Abs(s.At(7)-1.0) > 1e-12 {
		t.Errorf("At(7) = %v, want 1.0", s.At(7))
	}
	if math.Abs(s.At(10)-0.1) > 1e-12 {
		t.Errorf("At(10) = %v, want 0.1", s.At(10))
	}
	if math.Abs(s.At(25)-0.01) > 1e-12 {
		t.Errorf("At(25) = %v, want 0.01", s.At(25))
	}
}

func TestLRScheduleDefaultFactor(t *testing.T) {
	s := LRSchedule{BaseLR: 1.0, Milestones: []int{2}}
	if math.Abs(s.At(3)-0.1) > 1e-12 {
		t.Errorf("default factor At(3) = %v, want 0.1", s.At(3))
	}
}

func TestLRScheduleMonotoneNonIncreasingAfterWarmup(t *testing.T) {
	s := LRSchedule{BaseLR: 3.2, WarmupEpochs: 5, Milestones: []int{25, 35, 40, 45, 50}, Factor: 0.1}
	prev := math.Inf(1)
	for e := 5; e < 55; e++ {
		v := s.At(e)
		if v > prev {
			t.Fatalf("LR increased after warmup at epoch %d", e)
		}
		prev = v
	}
}

func TestClipGradNorm(t *testing.T) {
	p := paramWith([]float64{0, 0}, []float64{3, 4}) // norm 5
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if norm != 5 {
		t.Errorf("returned norm = %v, want 5", norm)
	}
	if math.Abs(p.Grad.Norm2()-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", p.Grad.Norm2())
	}
	// Within bounds: unchanged.
	p2 := paramWith([]float64{0}, []float64{0.5})
	ClipGradNorm([]*nn.Param{p2}, 1)
	if p2.Grad.Data[0] != 0.5 {
		t.Error("in-bounds gradient modified")
	}
	// maxNorm <= 0: no-op.
	p3 := paramWith([]float64{0}, []float64{10})
	ClipGradNorm([]*nn.Param{p3}, 0)
	if p3.Grad.Data[0] != 10 {
		t.Error("maxNorm=0 should disable clipping")
	}
}
