// Package optim implements the first-order optimizers and learning-rate
// schedules used in the paper's experiments: SGD with momentum (optionally
// Nesterov) and decoupled weight decay exclusions, LARS (the large-batch
// baseline family the related-work section compares against), Adam, and the
// linear-warmup + step-decay schedule used for every run in §VI.
//
// Optimizers are constructed with functional options:
//
//	opt := optim.SGD(net.Params(), optim.WithLR(0.1), optim.WithMomentum(0.9))
//
// K-FAC composes with any of these: the preconditioner rewrites parameter
// gradients in place, then the optimizer applies its usual update rule
// (paper Listing 1).
package optim

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. All
// implementations in this package satisfy it, and the trainer accepts any
// implementation through trainer.WithOptimizer.
type Optimizer interface {
	// Step applies one update using the current learning rate.
	Step()
	// ZeroGrad clears the accumulated gradients of every managed parameter.
	ZeroGrad()
	// SetLR sets the learning rate used by subsequent steps.
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// zeroGrads clears the gradient buffers of params — the shared ZeroGrad
// implementation.
func zeroGrads(params []*nn.Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// SGDOptimizer is stochastic gradient descent with momentum and L2 weight
// decay, matching PyTorch's torch.optim.SGD semantics:
//
//	buf = momentum·buf + grad + wd·w
//	w  -= lr · buf            (heavy ball)
//	w  -= lr · (grad + momentum·buf)  (Nesterov)
type SGDOptimizer struct {
	Params      []*nn.Param
	Momentum    float64
	WeightDecay float64
	Nesterov    bool

	lr   float64
	bufs []*tensor.Tensor
}

// SGD constructs an SGD optimizer over params. Defaults (overridable by
// options): lr 0.1, zero momentum, zero weight decay, heavy-ball update.
func SGD(params []*nn.Param, opts ...Option) *SGDOptimizer {
	st := resolve(opts)
	bufs := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		bufs[i] = tensor.New(p.Value.Shape...)
	}
	return &SGDOptimizer{
		Params: params, Momentum: st.momentum, WeightDecay: st.weightDecay,
		Nesterov: st.nesterov, lr: st.lr, bufs: bufs,
	}
}

// NewSGD constructs an SGD optimizer from positional arguments.
//
// Deprecated: use SGD with functional options.
func NewSGD(params []*nn.Param, lr, momentum, weightDecay float64, nesterov bool) *SGDOptimizer {
	opts := []Option{WithLR(lr), WithMomentum(momentum), WithWeightDecay(weightDecay)}
	if nesterov {
		opts = append(opts, WithNesterov())
	}
	return SGD(params, opts...)
}

// Step implements Optimizer.
func (s *SGDOptimizer) Step() {
	for i, p := range s.Params {
		g := p.Grad
		buf := s.bufs[i]
		wd := s.WeightDecay
		if p.NoWeightDecay {
			wd = 0
		}
		for j := range g.Data {
			gj := g.Data[j]
			if wd != 0 {
				gj += wd * p.Value.Data[j]
			}
			buf.Data[j] = s.Momentum*buf.Data[j] + gj
			upd := buf.Data[j]
			if s.Nesterov {
				upd = gj + s.Momentum*buf.Data[j]
			}
			p.Value.Data[j] -= s.lr * upd
		}
	}
}

// ZeroGrad implements Optimizer.
func (s *SGDOptimizer) ZeroGrad() { zeroGrads(s.Params) }

// SetLR implements Optimizer.
func (s *SGDOptimizer) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGDOptimizer) LR() float64 { return s.lr }

// LARSOptimizer is layer-wise adaptive rate scaling (You et al.), the
// optimizer the large-batch SGD line of work (paper §III-A) builds on. Each
// parameter's local learning rate is scaled by η·‖w‖/(‖g‖+wd·‖w‖).
type LARSOptimizer struct {
	Params      []*nn.Param
	Momentum    float64
	WeightDecay float64
	Eta         float64 // trust coefficient

	lr   float64
	bufs []*tensor.Tensor
}

// LARS constructs a LARS optimizer over params. Defaults (overridable by
// options): lr 0.1, zero momentum, zero weight decay, trust coefficient
// η = 0.001.
func LARS(params []*nn.Param, opts ...Option) *LARSOptimizer {
	st := resolve(opts)
	bufs := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		bufs[i] = tensor.New(p.Value.Shape...)
	}
	return &LARSOptimizer{
		Params: params, Momentum: st.momentum, WeightDecay: st.weightDecay,
		Eta: st.eta, lr: st.lr, bufs: bufs,
	}
}

// NewLARS constructs a LARS optimizer from positional arguments.
//
// Deprecated: use LARS with functional options.
func NewLARS(params []*nn.Param, lr, momentum, weightDecay, eta float64) *LARSOptimizer {
	return LARS(params, WithLR(lr), WithMomentum(momentum),
		WithWeightDecay(weightDecay), WithTrustCoefficient(eta))
}

// Step implements Optimizer.
func (l *LARSOptimizer) Step() {
	for i, p := range l.Params {
		wd := l.WeightDecay
		if p.NoWeightDecay {
			wd = 0
		}
		wNorm := p.Value.Norm2()
		gNorm := p.Grad.Norm2()
		trust := 1.0
		if wNorm > 0 && gNorm > 0 {
			trust = l.Eta * wNorm / (gNorm + wd*wNorm)
		}
		buf := l.bufs[i]
		for j := range p.Grad.Data {
			gj := p.Grad.Data[j] + wd*p.Value.Data[j]
			buf.Data[j] = l.Momentum*buf.Data[j] + trust*gj
			p.Value.Data[j] -= l.lr * buf.Data[j]
		}
	}
}

// ZeroGrad implements Optimizer.
func (l *LARSOptimizer) ZeroGrad() { zeroGrads(l.Params) }

// SetLR implements Optimizer.
func (l *LARSOptimizer) SetLR(lr float64) { l.lr = lr }

// LR implements Optimizer.
func (l *LARSOptimizer) LR() float64 { return l.lr }

// AdamOptimizer implements the Adam optimizer (Kingma & Ba) with bias
// correction.
type AdamOptimizer struct {
	Params      []*nn.Param
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	lr   float64
	step int
	m, v []*tensor.Tensor
}

// Adam constructs an Adam optimizer over params. Defaults (overridable by
// options): lr 0.1, β₁ 0.9, β₂ 0.999, ε 1e-8, zero weight decay.
func Adam(params []*nn.Param, opts ...Option) *AdamOptimizer {
	st := resolve(opts)
	m := make([]*tensor.Tensor, len(params))
	v := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		m[i] = tensor.New(p.Value.Shape...)
		v[i] = tensor.New(p.Value.Shape...)
	}
	return &AdamOptimizer{
		Params: params, Beta1: st.beta1, Beta2: st.beta2, Eps: st.eps,
		WeightDecay: st.weightDecay, lr: st.lr, m: m, v: v,
	}
}

// NewAdam constructs an Adam optimizer from positional arguments, with the
// usual defaults for zero beta/eps arguments (0.9, 0.999, 1e-8).
//
// Deprecated: use Adam with functional options.
func NewAdam(params []*nn.Param, lr, beta1, beta2, eps, weightDecay float64) *AdamOptimizer {
	opts := []Option{WithLR(lr), WithWeightDecay(weightDecay)}
	if beta1 != 0 || beta2 != 0 {
		b1, b2 := beta1, beta2
		if b1 == 0 {
			b1 = 0.9
		}
		if b2 == 0 {
			b2 = 0.999
		}
		opts = append(opts, WithBetas(b1, b2))
	}
	if eps != 0 {
		opts = append(opts, WithEpsilon(eps))
	}
	return Adam(params, opts...)
}

// Step implements Optimizer.
func (a *AdamOptimizer) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.Params {
		wd := a.WeightDecay
		if p.NoWeightDecay {
			wd = 0
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Grad.Data {
			g := p.Grad.Data[j] + wd*p.Value.Data[j]
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*g
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			p.Value.Data[j] -= a.lr * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// ZeroGrad implements Optimizer.
func (a *AdamOptimizer) ZeroGrad() { zeroGrads(a.Params) }

// SetLR implements Optimizer.
func (a *AdamOptimizer) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *AdamOptimizer) LR() float64 { return a.lr }

// ClipGradNorm rescales all gradients jointly so their global L2 norm does
// not exceed maxNorm, returning the pre-clip norm. A no-op when the norm is
// already within bounds or maxNorm ≤ 0.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.Scale(scale)
	}
	return norm
}

// LRSchedule produces a learning rate for each epoch. The paper's recipe
// (§VI-C): linear warmup over the first WarmupEpochs from BaseLR/N to the
// full scaled rate, then multiplicative decay by Factor at each milestone.
type LRSchedule struct {
	BaseLR       float64
	WarmupEpochs int
	Milestones   []int   // epochs at which to decay
	Factor       float64 // per-milestone multiplier (paper: 0.1)
}

// At returns the learning rate for the given zero-based epoch.
func (s LRSchedule) At(epoch int) float64 {
	lr := s.BaseLR
	if s.WarmupEpochs > 0 && epoch < s.WarmupEpochs {
		// Linear ramp: epoch 0 starts at BaseLR/(warmup+1) ... full at end.
		return s.BaseLR * float64(epoch+1) / float64(s.WarmupEpochs)
	}
	f := s.Factor
	if f == 0 {
		f = 0.1
	}
	for _, m := range s.Milestones {
		if epoch >= m {
			lr *= f
		}
	}
	return lr
}
