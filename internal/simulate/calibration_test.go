// Model-vs-measured calibration suite: the topology cost model's step-time
// predictions checked against freshly measured training runs on THIS host,
// worlds 1–8, both step engines, across the distribution-mode axis. The
// model's constants (link α–β, eigensolver and GEMM throughput, base step
// cost) are probed locally right before the comparison, so the suite
// calibrates the model's *structure* — which stages it bills, how costs
// scale with world and mode — rather than hard-coded constants that drift
// across machines.
//
// Tolerance: predicted and measured step time must agree within a factor of
// calibTolerance (8×, i.e. better than order-of-magnitude both ways). The
// band is deliberately wide: the model prices idealized α–β collectives and
// peak-throughput compute, while the measurement includes Go scheduler
// noise, cache effects, and allocator jitter on tiny matrices. What the
// band catches is structural breakage — a stage billed to the wrong
// frequency, a collective priced at the wrong world, a mode whose plan
// diverges from what the engines execute. docs/PERFORMANCE.md records the
// band next to the committed w16/w32 trajectories.
//
// This test lives in package simulate_test (not simulate) because it drives
// the real training stack — internal/experiments already imports simulate,
// so the harness is a self-contained mirror of the benchmark runner's
// per-rank body instead of a reuse of it.
package simulate_test

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/kfac"
	"repro/internal/linalg"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/simulate"
	"repro/internal/tensor"
	"repro/internal/testenv"
)

// Calibration workload: the tiny benchmark ResNet at the dist-bench update
// frequencies, so measured amortization matches the model's 1/freq terms
// exactly (measured step counts are multiples of invUpdateFreq).
const (
	calibBlocks  = 1
	calibWidth   = 4
	calibBatch   = 4
	calibFacFreq = 2
	calibInvFreq = 4

	// calibTolerance is the documented predicted-vs-measured band: the
	// ratio in either direction must stay under 8×.
	calibTolerance = 8.0
)

// calibNet builds the calibration network deterministically.
func calibNet() *nn.Sequential {
	rng := rand.New(rand.NewSource(17))
	net := models.BuildCIFARResNet(calibBlocks, calibWidth, 3, 10, rng)
	nn.SetBufferReuse(net, true)
	return net
}

// calibBatchData returns the fixed input batch and labels every rank trains
// on.
func calibBatchData() (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(23))
	x := tensor.Randn(rng, 1, calibBatch, 3, 16, 16)
	labels := make([]int, calibBatch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	return x, labels
}

// probeAllreduce measures the best-of-reps wall time of one AllreduceMean
// of n float64s over a world-2 in-process fabric — the transport the
// measured runs use.
func probeAllreduce(t *testing.T, n int) float64 {
	t.Helper()
	const world, reps = 2, 5
	fab := comm.NewInprocFabric(world)
	times := make([]float64, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comm.NewCommunicator(fab.Endpoint(r))
			buf := make([]float64, n)
			for i := range buf {
				buf[i] = float64(r*n + i)
			}
			if errs[r] = c.AllreduceMean(buf); errs[r] != nil {
				return // warmup
			}
			best := math.MaxFloat64
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				if errs[r] = c.AllreduceMean(buf); errs[r] != nil {
					return
				}
				if s := time.Since(t0).Seconds(); s < best {
					best = s
				}
			}
			times[r] = best
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("probe rank %d: %v", r, err)
		}
	}
	return times[0]
}

// probeLink fits α–β constants for the in-process transport from two
// allreduce sizes. At world 2 the ring model costs 2α + b/β, so two probes
// solve for both constants; results are clamped to stay positive under
// timer noise.
func probeLink(t *testing.T) simulate.Link {
	t.Helper()
	const small, large = 64, 1 << 15 // floats: 512 B and 256 KiB payloads
	tSmall := probeAllreduce(t, small)
	tLarge := probeAllreduce(t, large)
	beta := float64((large-small)*8) / math.Max(tLarge-tSmall, 1e-9)
	alpha := math.Max((tSmall-float64(small*8)/beta)/2, 50e-9)
	return simulate.Link{AlphaSec: alpha, BetaBytesPerSec: beta}
}

// symEigSec measures the best-of-reps time of one symmetric
// eigendecomposition at dimension d using the solver the engines actually
// run — the blocked solver with a full-machine team (the eig scheduler's
// choice for a factor that is the whole rank load). Small probe
// dimensions take the solver's own serial fallback, exactly as the
// engines' small factors do.
func symEigSec(t *testing.T, d, team int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := tensor.Randn(rng, 1, d, d)
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(v, i, j)
			a.Set(v, j, i)
		}
		a.Set(a.At(i, i)+float64(d), i, i) // diagonally dominant: well-conditioned
	}
	var eg linalg.Eigen
	best := math.MaxFloat64
	for rep := 0; rep < 4; rep++ {
		work := a.Clone()
		t0 := time.Now()
		if err := linalg.SymEigBlockedInto(work, &eg, team); err != nil {
			t.Fatalf("probe SymEigBlocked(%d, team %d): %v", d, team, err)
		}
		if s := time.Since(t0).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// probeGEMM measures effective square-matmul throughput in FLOP/s.
func probeGEMM() float64 {
	const d = 64
	rng := rand.New(rand.NewSource(7))
	a := tensor.Randn(rng, 1, d, d)
	b := tensor.Randn(rng, 1, d, d)
	dst := tensor.Zeros(d, d)
	tensor.MatMulInto(dst, a, b) // warmup
	best := math.MaxFloat64
	for rep := 0; rep < 4; rep++ {
		t0 := time.Now()
		tensor.MatMulInto(dst, a, b)
		if s := time.Since(t0).Seconds(); s < best {
			best = s
		}
	}
	return 2 * d * d * d / best
}

// probeBaseStepSec measures the candidate-independent part of a training
// step — forward, loss, zero-grad, backward — with no preconditioner.
func probeBaseStepSec() float64 {
	net := calibNet()
	x, labels := calibBatchData()
	ce := nn.CrossEntropy{}
	params := net.Params()
	run := func() {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		for _, p := range params {
			p.ZeroGrad()
		}
		net.Backward(grad)
	}
	run()
	run()
	best := math.MaxFloat64
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		for i := 0; i < 4; i++ {
			run()
		}
		if s := time.Since(t0).Seconds() / 4; s < best {
			best = s
		}
	}
	return best
}

// calibrationModel assembles a PlanModel entirely from local probes: the
// in-process link priced uniformly at every topology level (goroutine ranks
// share one memory hierarchy), measured solver/GEMM throughput, and the
// measured forward+backward as the base step.
func calibrationModel(t *testing.T) *simulate.PlanModel {
	t.Helper()
	link := probeLink(t)
	eigTeam := runtime.GOMAXPROCS(0)
	eigSmall := symEigSec(t, 8, eigTeam)
	eigBig := symEigSec(t, 48, eigTeam)
	m := &simulate.PlanModel{
		Topology: simulate.Topology{
			RanksPerNode: 2048, NodesPerRack: 1,
			IntraNode: link, InterNode: link, InterRack: link,
		},
		BytesPerElem:         8, // the fabric moves float64s verbatim
		DecompBytesPerElem:   8,
		EigFlopsPerSec:       linalg.EigFLOPs(48) / math.Max(eigBig-eigSmall, 1e-9),
		FactorFlopsPerSec:    probeGEMM(),
		PerFactorOverheadSec: eigSmall, // tiny-dim solve ≈ pure launch cost
		BaseStepSec:          probeBaseStepSec(),
		GradBytes:            0, // the harness syncs no gradients outside K-FAC
		FactorUpdateFreq:     calibFacFreq,
		InvUpdateFreq:        calibInvFreq,
		EigWorkers:           eigTeam,
	}
	if err := m.Topology.Validate(); err != nil {
		t.Fatalf("probed topology invalid: %v", err)
	}
	t.Logf("probes: α=%.3gs β=%.3gB/s eig=%.3gFLOP/s (blocked, team %d) gemm=%.3gFLOP/s base=%.3gs overhead=%.3gs",
		link.AlphaSec, link.BetaBytesPerSec, m.EigFlopsPerSec, eigTeam, m.FactorFlopsPerSec,
		m.BaseStepSec, m.PerFactorOverheadSec)
	return m
}

// calibRank is one measured rank: the benchmark runner's per-rank body
// (same network, update frequencies, warmup discipline) returning the mean
// measured step time.
func calibRank(c *comm.Communicator, engine kfac.Engine, mode kfac.DistMode, frac float64, steps int) (float64, error) {
	net := calibNet()
	x, labels := calibBatchData()
	prec := kfac.NewFromOptions(net, c, kfac.Options{
		FactorUpdateFreq: calibFacFreq, InvUpdateFreq: calibInvFreq, Damping: 1e-3,
		DistMode: mode, GradWorkerFrac: frac, Engine: engine,
	})
	defer prec.Close()
	ce := nn.CrossEntropy{}
	params := net.Params()
	step := func() error {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		for _, p := range params {
			p.ZeroGrad()
		}
		net.Backward(grad)
		return prec.Step(0.1)
	}
	for i := 0; i < 2; i++ { // warmup: first factor + decomposition update
		if err := step(); err != nil {
			return 0, err
		}
	}
	t0 := time.Now()
	for i := 0; i < steps; i++ {
		if err := step(); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Seconds() / float64(steps), nil
}

// measureStepSec runs world lockstep ranks over an in-process fabric and
// returns rank 0's mean step time.
func measureStepSec(t *testing.T, engine kfac.Engine, mode kfac.DistMode, frac float64, world, steps int) float64 {
	t.Helper()
	fab := comm.NewInprocFabric(world)
	abortCtx, abort := context.WithCancel(context.Background())
	defer abort()
	var rank0Mean float64
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if errs[r] != nil {
					abort() // a dead rank must not strand peers in a collective
				}
			}()
			c := comm.NewCommunicator(fab.Endpoint(r)).WithContext(abortCtx)
			mean, err := calibRank(c, engine, mode, frac, steps)
			errs[r] = err
			if r == 0 {
				rank0Mean = mean
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("measured rank %d: %v", r, err)
		}
	}
	return rank0Mean
}

// calibRefs resolves the factor list of the calibration network — the same
// refs BuildPlan sees in the measured runs.
func calibRefs() []kfac.FactorRef {
	prec := kfac.NewFromOptions(calibNet(), nil, kfac.Options{Damping: 1e-3})
	defer prec.Close()
	return prec.FactorRefs()
}

// TestCalibrationPredictedVsMeasured is the calibration gate: for every
// (engine × mode × world) cell it compares the model's predicted step time
// against a fresh measurement and requires agreement within calibTolerance
// in either direction. Measured wall time is normalized by the CPU
// oversubscription factor ⌈world/GOMAXPROCS⌉ first: goroutine ranks
// serialize on a small host, while the model prices ranks as parallel —
// exactly the paper's deployment and the CI multi-core case.
func TestCalibrationPredictedVsMeasured(t *testing.T) {
	model := calibrationModel(t)
	refs := calibRefs()

	worlds := []int{1, 2, 4, 8}
	steps := 2 * calibInvFreq
	if testenv.Short() {
		worlds = []int{1, 2}
		steps = calibInvFreq
	}
	engines := []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined}
	modes := []struct {
		name string
		mode kfac.DistMode
		frac float64
	}{
		{"commopt", kfac.CommOpt, 0},
		{"memopt", kfac.MemOpt, 0},
		{"hybrid50", kfac.Hybrid, 0.5},
	}

	maxProcs := runtime.GOMAXPROCS(0)
	for _, eng := range engines {
		for _, md := range modes {
			for _, world := range worlds {
				cand := kfac.PlanCandidate{Mode: md.mode, GradWorkerFrac: md.frac}
				predicted := model.Evaluate(kfac.RoundRobin, refs, world, cand).StepSec
				measured := measureStepSec(t, eng, md.mode, md.frac, world, steps)
				oversub := (world + maxProcs - 1) / maxProcs
				normalized := measured / float64(oversub)
				ratio := predicted / normalized
				t.Logf("%-9s %-8s w%-2d predicted %8.3gms measured %8.3gms norm %8.3gms ratio %5.2f",
					eng, md.name, world, predicted*1e3, measured*1e3, normalized*1e3, ratio)
				if ratio > calibTolerance || ratio < 1/calibTolerance {
					t.Errorf("%s/%s w%d: predicted %.3gms vs normalized measured %.3gms — ratio %.2f outside ±%gx band",
						eng, md.name, world, predicted*1e3, normalized*1e3, ratio, calibTolerance)
				}
			}
		}
	}
}

// TestCalibrationModePredictionsOrder pins the structural predictions the
// planner relies on, using the same probed model: MEM-OPT must predict
// strictly lower per-rank memory than COMM-OPT, and HYBRID must land
// between them — independent of this host's timing noise. World ≥ 4: at
// world 2 a factor's eigen-owner plus its gradient worker already cover
// both ranks, so every mode resolves to the same resident footprint.
func TestCalibrationModePredictionsOrder(t *testing.T) {
	model := calibrationModel(t)
	refs := calibRefs()
	for _, world := range []int{4, 8} {
		co := model.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.CommOpt})
		mo := model.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.MemOpt})
		hy := model.Evaluate(kfac.RoundRobin, refs, world,
			kfac.PlanCandidate{Mode: kfac.Hybrid, GradWorkerFrac: 0.5})
		if mo.MaxMemBytes >= co.MaxMemBytes {
			t.Errorf("w%d: MEM-OPT max mem %d ≥ COMM-OPT %d", world, mo.MaxMemBytes, co.MaxMemBytes)
		}
		if hy.MaxMemBytes < mo.MaxMemBytes || hy.MaxMemBytes > co.MaxMemBytes {
			t.Errorf("w%d: HYBRID mem %d outside [%d, %d]", world, hy.MaxMemBytes, mo.MaxMemBytes, co.MaxMemBytes)
		}
	}
}
