package simulate

import (
	"math"
	"testing"

	"repro/internal/kfac"
	"repro/internal/models"
)

func testPlanModel() *PlanModel {
	return NewPlanModel(DefaultTopology(), DefaultV100Cluster())
}

func r50Refs() []kfac.FactorRef { return models.ResNet50Catalog().FactorRefs() }

func TestPlanModelMemoryMatchesPlan(t *testing.T) {
	// The model's memory side must agree byte-for-byte with the real plan's
	// DecompElemsPerRank at 8 bytes/elem — the same arithmetic ctl.Admit
	// charges.
	pm := testPlanModel()
	refs := r50Refs()
	for _, world := range []int{1, 4, 64} {
		for _, cand := range []kfac.PlanCandidate{
			{Mode: kfac.CommOpt},
			{Mode: kfac.MemOpt},
			{Mode: kfac.Hybrid, GradWorkerFrac: 0.25},
		} {
			ev := pm.Evaluate(kfac.RoundRobin, refs, world, cand)
			plan := kfac.BuildPlan(kfac.RoundRobin, cand.Mode, cand.GradWorkerFrac, refs, world)
			elems := plan.DecompElemsPerRank(refs)
			if len(ev.MemBytesPerRank) != world {
				t.Fatalf("world=%d: %d memory entries", world, len(ev.MemBytesPerRank))
			}
			var wantMax int64
			for r, e := range elems {
				want := e * 8
				if ev.MemBytesPerRank[r] != want {
					t.Errorf("world=%d mode=%v rank=%d: mem %d, want %d",
						world, cand.Mode, r, ev.MemBytesPerRank[r], want)
				}
				if want > wantMax {
					wantMax = want
				}
			}
			if ev.MaxMemBytes != wantMax {
				t.Errorf("world=%d mode=%v: max mem %d, want %d", world, cand.Mode, ev.MaxMemBytes, wantMax)
			}
		}
	}
}

func TestPlanModelMemOptSavesMemoryCostsComm(t *testing.T) {
	// The paper's tradeoff, reproduced by the model at scale: MEM-OPT's
	// worst rank holds far less than COMM-OPT's full replication, and pays
	// for it with per-iteration result broadcasts COMM-OPT doesn't have.
	pm := testPlanModel()
	refs := r50Refs()
	world := 64
	co := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.CommOpt})
	mo := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.MemOpt})
	if mo.MaxMemBytes >= co.MaxMemBytes {
		t.Errorf("MemOpt max mem %d should undercut CommOpt %d", mo.MaxMemBytes, co.MaxMemBytes)
	}
	if co.ResultBcastSec != 0 {
		t.Errorf("CommOpt should have no result broadcasts, got %.6f", co.ResultBcastSec)
	}
	if mo.ResultBcastSec <= 0 {
		t.Error("MemOpt must pay per-iteration result broadcasts")
	}
	if co.EigCommSec != 0 {
		// Full replication means every factor broadcasts to all ranks.
		// (Recipient sets are the whole world, so this IS nonzero — fix the
		// expectation if the plan semantics say otherwise.)
		t.Logf("CommOpt eig distribution %.6f (expected nonzero)", co.EigCommSec)
	}
	// Hybrid interpolates the memory side.
	hy := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.Hybrid, GradWorkerFrac: 0.25})
	if !(mo.MaxMemBytes <= hy.MaxMemBytes && hy.MaxMemBytes <= co.MaxMemBytes) {
		t.Errorf("Hybrid mem %d not between MemOpt %d and CommOpt %d",
			hy.MaxMemBytes, mo.MaxMemBytes, co.MaxMemBytes)
	}
}

func TestPlanModelStepSecIsBreakdownSum(t *testing.T) {
	pm := testPlanModel()
	pm.BaseStepSec = 0.190
	pm.GradBytes = 25.5e6 * 4
	refs := r50Refs()
	ev := pm.Evaluate(kfac.RoundRobin, refs, 128, kfac.PlanCandidate{Mode: kfac.Hybrid, GradWorkerFrac: 0.5, GroupSize: 4})
	sum := pm.BaseStepSec + ev.GradAllreduceSec + ev.PrecondSec + ev.ResultBcastSec +
		ev.FactorCommSec + ev.EigComputeSec + ev.EigCommSec
	if math.Abs(ev.StepSec-sum) > 1e-12 {
		t.Errorf("StepSec %.9f != breakdown sum %.9f", ev.StepSec, sum)
	}
	if ev.GradAllreduceSec <= 0 || ev.FactorCommSec <= 0 || ev.EigComputeSec <= 0 {
		t.Errorf("breakdown has empty stages: %+v", ev)
	}
}

func TestPlanModelGroupSizeChangesCost(t *testing.T) {
	// The group-size axis must actually reach the collective pricing:
	// node-sized groups beat the flat ring for the bulk factor payload at a
	// multi-rack world.
	pm := testPlanModel()
	refs := r50Refs()
	world := 256
	flat := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.CommOpt})
	grouped := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.CommOpt, GroupSize: 4})
	if grouped.FactorCommSec >= flat.FactorCommSec {
		t.Errorf("grouped factor allreduce %.6f should beat flat %.6f",
			grouped.FactorCommSec, flat.FactorCommSec)
	}
	// Memory is plan-determined, not group-size-determined.
	if grouped.MaxMemBytes != flat.MaxMemBytes {
		t.Errorf("group size changed memory: %d vs %d", grouped.MaxMemBytes, flat.MaxMemBytes)
	}
}

func TestPlanModelDeterministic(t *testing.T) {
	pm := testPlanModel()
	refs := r50Refs()
	cand := kfac.PlanCandidate{Mode: kfac.Hybrid, GradWorkerFrac: 0.125, GroupSize: 8}
	c1, m1 := pm.CandidateCost(kfac.SizeGreedy, refs, 512, cand)
	c2, m2 := pm.CandidateCost(kfac.SizeGreedy, refs, 512, cand)
	if c1 != c2 || m1 != m2 {
		t.Errorf("CandidateCost not deterministic: (%v,%v) vs (%v,%v)", c1, m1, c2, m2)
	}
}

func TestPlanModelMemStats(t *testing.T) {
	min, median, max := memStats([]int64{5, 1, 3})
	if min != 1 || median != 3 || max != 5 {
		t.Errorf("memStats = %d/%d/%d, want 1/3/5", min, median, max)
	}
	if a, b, c := memStats(nil); a != 0 || b != 0 || c != 0 {
		t.Error("empty memStats should be zeros")
	}
}

func TestPlanModelDrivesAutoPlanner(t *testing.T) {
	// End-to-end: the planner with this model picks a real candidate, never
	// over budget when one fits, and under a tight budget avoids CommOpt's
	// full replication at scale.
	pm := testPlanModel()
	refs := r50Refs()
	world := 256
	co := pm.Evaluate(kfac.RoundRobin, refs, world, kfac.PlanCandidate{Mode: kfac.CommOpt})

	unlimited := kfac.ResolveAutoPlan(kfac.AutoPlannerConfig{Model: pm}, kfac.RoundRobin, refs, world)
	if unlimited.Candidates == 0 || unlimited.OverBudget {
		t.Fatalf("unlimited planner failed: %+v", unlimited)
	}

	tight := kfac.ResolveAutoPlan(kfac.AutoPlannerConfig{
		Model:             pm,
		MemoryBudgetBytes: co.MaxMemBytes / 2,
	}, kfac.RoundRobin, refs, world)
	if tight.OverBudget {
		t.Fatalf("half-CommOpt budget should still admit candidates: %+v", tight)
	}
	if tight.Mode == kfac.CommOpt {
		t.Errorf("budget of CommOpt/2 must exclude CommOpt, picked %+v", tight.PlanCandidate)
	}
	if tight.PredictedMemBytes > co.MaxMemBytes/2 {
		t.Errorf("chosen candidate %d bytes exceeds budget %d", tight.PredictedMemBytes, co.MaxMemBytes/2)
	}
	if tight.Rejected == 0 {
		t.Error("tight budget should have rejected some candidates")
	}
}
