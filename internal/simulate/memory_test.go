package simulate

import (
	"testing"

	"repro/internal/models"
)

func TestMemoryModelResNet50(t *testing.T) {
	mb := MemoryModel(models.ResNet50Catalog(), 32, 4)
	// Weights ≈ 102 MB at FP32.
	if mb.Weights < 95e6 || mb.Weights > 110e6 {
		t.Errorf("weights = %.0f MB", mb.Weights/1e6)
	}
	// K-FAC state (factors + eigenvectors) is several times the weights —
	// the §VI-C4 memory pressure.
	if mb.KFACState() < mb.Weights {
		t.Errorf("K-FAC state %.0f MB should exceed weights %.0f MB",
			mb.KFACState()/1e6, mb.Weights/1e6)
	}
	if mb.Total() <= mb.KFACState() {
		t.Error("total must include non-KFAC components")
	}
}

func TestMemoryModelGrowsWithModel(t *testing.T) {
	m50 := MemoryModel(models.ResNet50Catalog(), 32, 4)
	m152 := MemoryModel(models.ResNet152Catalog(), 32, 4)
	if m152.Total() <= m50.Total() {
		t.Error("ResNet-152 must use more memory than ResNet-50")
	}
	if m152.KFACState() <= m50.KFACState() {
		t.Error("K-FAC state must grow with model size")
	}
}

func TestMemoryModelActivationsScaleWithBatch(t *testing.T) {
	a := MemoryModel(models.ResNet50Catalog(), 32, 4)
	b := MemoryModel(models.ResNet50Catalog(), 64, 4)
	if b.Activations != 2*a.Activations {
		t.Errorf("activations %v vs %v; expected 2x", b.Activations, a.Activations)
	}
	if b.Weights != a.Weights {
		t.Error("weights must not depend on batch")
	}
}
