package simulate

import (
	"math"
)

// Convergence models for the ImageNet experiments: the paper's measured
// end-points (Table III, Figure 5) are encoded directly and interpolated.
// This is an explicit substitution (DESIGN.md #4): full ImageNet training is
// not reproducible here, so the *accuracy* side of Tables III and Figures
// 5–6 comes from a calibrated model, while the *time* side comes from the
// performance model and the real placement algorithms. The synthetic-data
// CIFAR-scale experiments (Tables I–II, Figure 4) are trained for real.

// FinalAccSGD returns the paper's SGD validation accuracy after 90 epochs.
func FinalAccSGD(model string) float64 {
	switch model {
	case "resnet50":
		return 0.762
	case "resnet101":
		return 0.780
	case "resnet152":
		return 0.782
	}
	return 0.76
}

// FinalAccKFAC returns the modeled K-FAC validation accuracy after 55
// epochs as a function of the decomposition interval (iterations). The
// staleness penalty is calibrated to Table III: negligible below ~100
// iterations, growing smoothly through 500 and 1000.
func FinalAccKFAC(model string, invFreq int) float64 {
	base := map[string]float64{
		"resnet50":  0.762,
		"resnet101": 0.777,
		"resnet152": 0.780,
	}[model]
	if base == 0 {
		base = 0.76
	}
	return base - StalenessPenalty(model, invFreq)
}

// StalenessPenalty returns the validation-accuracy cost of reusing stale
// decompositions for invFreq iterations. Piecewise-smooth fit to the
// paper's Table III deltas (ResNet-50: −0.0% @100, −0.1% @500, −0.7% @1000;
// ResNet-101/152: −0.0% @500, −0.4/−0.2% @1000 relative to their K-FAC
// baselines).
func StalenessPenalty(model string, invFreq int) float64 {
	if invFreq <= 100 {
		return 0
	}
	// Sharp growth in log-interval beyond 100: Table III shows ≈−0.1% at
	// 500 and −0.7% at 1000 for ResNet-50, requiring a steep exponent.
	scale := map[string]float64{
		"resnet50":  0.007,
		"resnet101": 0.004,
		"resnet152": 0.002,
	}[model]
	if scale == 0 {
		scale = 0.005
	}
	x := math.Log10(float64(invFreq) / 100) // 0 at 100, 1 at 1000
	return scale * math.Pow(x, 5.4)
}

// CurveConfig parameterizes a validation-accuracy curve over epochs with
// the step-decay jumps ImageNet training exhibits (Figures 4–6).
type CurveConfig struct {
	FinalAcc     float64
	Epochs       int
	WarmupEpochs int
	// Milestones are LR-decay epochs; each adds a visible jump.
	Milestones []int
	// PlateauAcc is the pre-first-decay plateau (ImageNet runs hover around
	// 0.60–0.70 before the first decay).
	PlateauAcc float64
}

// AccuracyCurve generates a per-epoch validation-accuracy series with the
// characteristic ImageNet step-schedule shape of Figures 4–6: the accuracy
// tracks a target that sits at PlateauAcc until the first LR decay and jumps
// closer to FinalAcc at each milestone (each decay closes 85% of the
// remaining gap); per epoch the accuracy closes 35% of its gap to the
// current target.
func AccuracyCurve(cfg CurveConfig) []float64 {
	out := make([]float64, cfg.Epochs)
	plateau := cfg.PlateauAcc
	if plateau == 0 {
		plateau = 0.85 * cfg.FinalAcc
	}
	const (
		closure = 0.85 // per-milestone gap closure toward FinalAcc
		rate    = 0.35 // per-epoch approach rate toward the target
	)
	acc := 0.0
	for e := 0; e < cfg.Epochs; e++ {
		target := plateau
		for _, ms := range cfg.Milestones {
			if e >= ms {
				target += closure * (cfg.FinalAcc - target)
			}
		}
		r := rate
		if cfg.WarmupEpochs > 0 && e < cfg.WarmupEpochs {
			r *= float64(e+1) / float64(cfg.WarmupEpochs)
		}
		acc += (target - acc) * r
		if acc > cfg.FinalAcc {
			acc = cfg.FinalAcc
		}
		out[e] = acc
	}
	if cfg.Epochs > 0 {
		out[cfg.Epochs-1] = cfg.FinalAcc
	}
	return out
}

// ResNet50Curves returns the modeled Figure 5 pair: K-FAC (55 epochs,
// decays at 25/35/40/45/50, final 76.4%) and SGD (90 epochs, decays at
// 30/60/80, final 76.2%), on 16 GPUs.
func ResNet50Curves() (kfacCurve, sgdCurve []float64) {
	kfacCurve = AccuracyCurve(CurveConfig{
		FinalAcc: 0.764, Epochs: 55, WarmupEpochs: 5,
		Milestones: []int{25, 35, 40, 45, 50}, PlateauAcc: 0.70,
	})
	sgdCurve = AccuracyCurve(CurveConfig{
		FinalAcc: 0.762, Epochs: 90, WarmupEpochs: 5,
		Milestones: []int{30, 60, 80}, PlateauAcc: 0.66,
	})
	return kfacCurve, sgdCurve
}

// EpochsToReach returns the first 1-based epoch at which the curve meets
// the threshold, or -1.
func EpochsToReach(curve []float64, acc float64) int {
	for i, v := range curve {
		if v >= acc {
			return i + 1
		}
	}
	return -1
}
