package simulate

import (
	"repro/internal/models"
)

// Per-GPU memory-footprint model. The paper's §VI-C4 limitations (ResNet-152
// deteriorating at scale) are partly a memory story: every worker holds the
// model, gradients, optimizer state, *and* — because the paper's design has
// every worker precondition all layers locally — the full set of Kronecker
// factors and their eigendecompositions. This model quantifies that:
// K-FAC state for ResNet-152 approaches the model size itself several times
// over, a real constraint on 16 GB V100s once activations are added.

// MemoryBreakdown itemizes per-GPU bytes for one configuration.
type MemoryBreakdown struct {
	Weights     float64 // model parameters
	Gradients   float64 // one gradient set
	Momentum    float64 // SGD momentum buffers
	Factors     float64 // running-average A and G factors
	EigVectors  float64 // eigenvector matrices Q_A, Q_G
	EigValues   float64 // eigenvalue vectors
	Activations float64 // forward activations for one local batch
}

// Total sums all components.
func (m MemoryBreakdown) Total() float64 {
	return m.Weights + m.Gradients + m.Momentum + m.Factors +
		m.EigVectors + m.EigValues + m.Activations
}

// KFACState returns only the K-FAC-specific bytes.
func (m MemoryBreakdown) KFACState() float64 {
	return m.Factors + m.EigVectors + m.EigValues
}

// MemoryModel estimates the per-GPU footprint of K-FAC training for a
// catalog at the given local batch size, using the cluster's element size.
func MemoryModel(cat *models.Catalog, batchPerGPU int, bytesPerElem float64) MemoryBreakdown {
	var mb MemoryBreakdown
	params := float64(cat.TotalParams())
	mb.Weights = params * bytesPerElem
	mb.Gradients = params * bytesPerElem
	mb.Momentum = params * bytesPerElem
	var factorElems, valueElems, actElems float64
	for _, l := range cat.Layers {
		da := float64(l.FactorADim())
		dg := float64(l.GDim)
		factorElems += da*da + dg*dg
		valueElems += da + dg
		// Activation storage: layer output spatial × channels per image.
		actElems += float64(l.SpatialOut) * dg
	}
	mb.Factors = factorElems * bytesPerElem
	mb.EigVectors = factorElems * bytesPerElem // Q matrices match factor shapes
	mb.EigValues = valueElems * bytesPerElem
	mb.Activations = actElems * float64(batchPerGPU) * bytesPerElem
	return mb
}
