package simulate

import (
	"fmt"
	"math"
)

// Node/rack topology for the scale model. The flat α–β constants in
// ClusterConfig price every byte identically; at worlds 64–1024 that hides
// exactly the structure the hierarchical allreduce in internal/comm
// exploits — fast intra-node links, slower inter-node fabric, oversubscribed
// rack-to-rack spine. Topology makes the three link classes explicit and
// prices the multi-level collectives the way comm executes them, so the
// plan cost model (plancost.go) can trade hierarchical group size against
// distribution mode with the same shape the real transport has.

// Link is one α–β link class: fixed per-message latency plus inverse
// bandwidth.
type Link struct {
	// AlphaSec is the per-message latency in seconds.
	AlphaSec float64
	// BetaBytesPerSec is the sustained point-to-point bandwidth.
	BetaBytesPerSec float64
}

// xfer returns the α–β time to move b bytes over the link once.
func (l Link) xfer(b float64) float64 {
	return l.AlphaSec + b/l.BetaBytesPerSec
}

// Topology describes the rank placement hierarchy: RanksPerNode consecutive
// ranks share a node (linked by IntraNode), NodesPerRack consecutive nodes
// share a rack (linked by InterNode), and racks talk over InterRack.
// Consecutive-rank placement matches both the hierarchical allreduce's
// consecutive grouping and how MPI launchers fill nodes.
type Topology struct {
	// RanksPerNode is the number of consecutive ranks per node (≥ 1).
	RanksPerNode int
	// NodesPerRack is the number of consecutive nodes per rack (≥ 1).
	NodesPerRack int
	// IntraNode prices rank pairs on the same node (e.g. NVLink/shared
	// memory).
	IntraNode Link
	// InterNode prices rank pairs on different nodes of one rack (e.g.
	// InfiniBand through the rack switch).
	InterNode Link
	// InterRack prices rank pairs in different racks (spine links,
	// typically oversubscribed).
	InterRack Link
}

// DefaultTopology returns constants consistent with the paper's platform
// (4×V100 nodes, EDR InfiniBand) extended with a modeled 16-node rack and
// a 2:1-oversubscribed spine: NVLink-class intra-node links, the
// ClusterConfig EDR numbers inter-node, and half that bandwidth with
// doubled latency across racks.
func DefaultTopology() Topology {
	return Topology{
		RanksPerNode: 4,
		NodesPerRack: 16,
		IntraNode:    Link{AlphaSec: 5e-6, BetaBytesPerSec: 60e9},
		InterNode:    Link{AlphaSec: 0.25e-3, BetaBytesPerSec: 10e9},
		InterRack:    Link{AlphaSec: 0.5e-3, BetaBytesPerSec: 5e9},
	}
}

// Validate reports a descriptive error for a malformed topology.
func (t Topology) Validate() error {
	if t.RanksPerNode < 1 || t.NodesPerRack < 1 {
		return fmt.Errorf("simulate: topology needs ≥1 rank/node and ≥1 node/rack (got %d, %d)",
			t.RanksPerNode, t.NodesPerRack)
	}
	for _, l := range []Link{t.IntraNode, t.InterNode, t.InterRack} {
		if l.AlphaSec < 0 || l.BetaBytesPerSec <= 0 {
			return fmt.Errorf("simulate: topology link needs α ≥ 0 and β > 0 (got α=%g β=%g)",
				l.AlphaSec, l.BetaBytesPerSec)
		}
	}
	return nil
}

// RanksPerRack returns the rank span of one rack.
func (t Topology) RanksPerRack() int { return t.RanksPerNode * t.NodesPerRack }

// node returns the node index of a rank.
func (t Topology) node(rank int) int { return rank / t.RanksPerNode }

// rack returns the rack index of a rank.
func (t Topology) rack(rank int) int { return rank / t.RanksPerRack() }

// LinkBetween returns the link class connecting two ranks: the slowest
// class on their path (same node → IntraNode, same rack → InterNode,
// else InterRack).
func (t Topology) LinkBetween(a, b int) Link {
	switch {
	case t.node(a) == t.node(b):
		return t.IntraNode
	case t.rack(a) == t.rack(b):
		return t.InterNode
	default:
		return t.InterRack
	}
}

// spanLink returns the slowest link class spanned by a consecutive rank
// interval [lo, hi] — the class that bounds any collective whose
// communication pattern stays inside the interval.
func (t Topology) spanLink(lo, hi int) Link {
	switch {
	case t.node(lo) == t.node(hi):
		return t.IntraNode
	case t.rack(lo) == t.rack(hi):
		return t.InterNode
	default:
		return t.InterRack
	}
}

// SpanLink exposes spanLink for callers that price custom patterns over a
// consecutive rank interval [lo, hi].
func (t Topology) SpanLink(lo, hi int) Link { return t.spanLink(lo, hi) }

// RingAllreduceCost prices a flat ring allreduce of b bytes over ranks
// [0, world): 2(p−1) steps, each bounded by the slowest neighbor link in
// the ring (rank p−1 → rank 0 wraps the full span), moving b/p bytes per
// step.
func (t Topology) RingAllreduceCost(b float64, world int) float64 {
	if world <= 1 {
		return 0
	}
	l := t.slowestRingLink(0, world, 1)
	steps := float64(2 * (world - 1))
	return steps*l.AlphaSec + 2*float64(world-1)/float64(world)*b/l.BetaBytesPerSec
}

// slowestRingLink returns the slowest link among ring neighbors when
// `count` members start at rank `lo` with stride `stride` (the leader ring
// of the hierarchical allreduce has stride == groupSize).
func (t Topology) slowestRingLink(lo, count, stride int) Link {
	slowest := t.IntraNode
	for i := 0; i < count; i++ {
		a := lo + i*stride
		bk := lo + ((i+1)%count)*stride
		l := t.LinkBetween(a, bk)
		if l.BetaBytesPerSec < slowest.BetaBytesPerSec ||
			(l.BetaBytesPerSec == slowest.BetaBytesPerSec && l.AlphaSec > slowest.AlphaSec) {
			slowest = l
		}
	}
	return slowest
}

// HierarchicalAllreduceCost prices b bytes through the exact three-phase
// algorithm comm.HierarchicalAllreduceMean executes on `world` ranks with
// `groupSize` consecutive ranks per group:
//
//  1. members send to their group leader, which accumulates sequentially
//     — (groupSize−1) transfers of the full payload over the group's link;
//  2. ring allreduce over one leader per group, bounded by the slowest
//     leader-to-leader link;
//  3. leaders send the result back to members — another (groupSize−1)
//     sequential transfers.
//
// Degenerate group sizes (≤ 1 or ≥ world) collapse to the flat ring,
// matching the implementation's fallback.
func (t Topology) HierarchicalAllreduceCost(b float64, world, groupSize int) float64 {
	if world <= 1 {
		return 0
	}
	if groupSize <= 1 || groupSize >= world {
		return t.RingAllreduceCost(b, world)
	}
	numGroups := (world + groupSize - 1) / groupSize
	// Phases 1 and 3: the widest group bounds the sequential leader fan-in
	// and fan-out; a group spanning nodes pays the slower class for every
	// member transfer.
	groupLink := t.spanLink(0, groupSize-1)
	fan := float64(groupSize-1) * groupLink.xfer(b)
	// Phase 2: leader ring with stride groupSize.
	var ringCost float64
	if numGroups > 1 {
		l := t.slowestRingLink(0, numGroups, groupSize)
		steps := float64(2 * (numGroups - 1))
		ringCost = steps*l.AlphaSec + 2*float64(numGroups-1)/float64(numGroups)*b/l.BetaBytesPerSec
	}
	return 2*fan + ringCost
}

// BroadcastCost prices a binomial-tree broadcast of b bytes to a member
// set spanning ranks [lo, hi] with `count` members: ⌈log₂ count⌉ rounds,
// each bounded by the slowest link the span can force.
func (t Topology) BroadcastCost(b float64, lo, hi, count int) float64 {
	if count <= 1 {
		return 0
	}
	l := t.spanLink(lo, hi)
	rounds := math.Ceil(math.Log2(float64(count)))
	return rounds * l.xfer(b)
}

// AllgatherCost prices a ring allgather of b total bytes over ranks
// [0, world).
func (t Topology) AllgatherCost(b float64, world int) float64 {
	if world <= 1 {
		return 0
	}
	l := t.slowestRingLink(0, world, 1)
	steps := float64(world - 1)
	return steps*l.AlphaSec + float64(world-1)/float64(world)*b/l.BetaBytesPerSec
}
