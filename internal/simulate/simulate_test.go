package simulate

import (
	"math"
	"testing"

	"repro/internal/kfac"
	"repro/internal/models"
)

func r50Model() *Model {
	return NewModel(DefaultV100Cluster(), ImageNetWorkload(models.ResNet50Catalog()))
}

func r152Model() *Model {
	return NewModel(DefaultV100Cluster(), ImageNetWorkload(models.ResNet152Catalog()))
}

func TestIterationsPerEpoch(t *testing.T) {
	m := r50Model()
	if got := m.IterationsPerEpoch(16); got != 2503 { // ceil(1281167/512)
		t.Errorf("iters/epoch @16 = %d, want 2503", got)
	}
	if got := m.IterationsPerEpoch(256); got != 157 {
		t.Errorf("iters/epoch @256 = %d, want 157", got)
	}
}

func TestSGDIterTimeMatchesPaperTable3(t *testing.T) {
	// Paper Table III: ResNet-50 SGD on 64 GPUs = 178 min for 90 epochs.
	m := r50Model()
	got := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 90})
	if got < 150 || got > 210 {
		t.Errorf("SGD R50@64 = %.0f min, want ≈ 178 (±20%%)", got)
	}
	// ResNet-152 SGD on 64 GPUs = 345 min.
	m152 := r152Model()
	got152 := m152.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 90})
	if got152 < 300 || got152 > 400 {
		t.Errorf("SGD R152@64 = %.0f min, want ≈ 345 (±15%%)", got152)
	}
}

func TestKFACTimeMatchesPaperTable3(t *testing.T) {
	// Paper Table III @64 GPUs, K-FAC 55 epochs:
	// R50 freq500 = 128 min; R152 freq500 = 310 min.
	m := r50Model()
	got := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 55, KFAC: true, InvFreq: 500})
	if got < 110 || got > 160 {
		t.Errorf("K-FAC R50@64 freq500 = %.0f min, want ≈ 128 (±25%%)", got)
	}
	got152 := r152Model().TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 55, KFAC: true, InvFreq: 500})
	if got152 < 270 || got152 > 360 {
		t.Errorf("K-FAC R152@64 freq500 = %.0f min, want ≈ 310 (±15%%)", got152)
	}
}

func TestUpdateFreqMonotone(t *testing.T) {
	// Larger decomposition intervals must never be slower (Table III rows).
	m := r50Model()
	prev := math.Inf(1)
	for _, f := range []int{100, 500, 1000} {
		v := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 55, KFAC: true, InvFreq: f})
		if v > prev {
			t.Errorf("time increased with update freq %d: %v > %v", f, v, prev)
		}
		prev = v
	}
}

func TestOptBeatsLwAcrossScales(t *testing.T) {
	// Figure 7: K-FAC-opt ≥ K-FAC-lw (lower time) at every scale.
	m := r50Model()
	for _, p := range []int{16, 32, 64, 128, 256} {
		opt := m.TimeToSolutionMin(RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.RoundRobin})
		lw := m.TimeToSolutionMin(RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.LayerWise})
		if opt > lw {
			t.Errorf("p=%d: opt %.0f min slower than lw %.0f min", p, opt, lw)
		}
	}
}

func TestKFACOptBeatsSGDOnResNet50(t *testing.T) {
	// Headline result: K-FAC-opt reaches its 55-epoch budget faster than
	// SGD's 90 at every scale in Figure 7.
	m := r50Model()
	for _, p := range []int{16, 32, 64, 128, 256} {
		sgd := m.TimeToSolutionMin(RunSpec{GPUs: p, Epochs: 90})
		opt := m.TimeToSolutionMin(RunSpec{GPUs: p, Epochs: 55, KFAC: true})
		improvement := (sgd - opt) / sgd
		if improvement <= 0 {
			t.Errorf("p=%d: K-FAC-opt not faster than SGD (%.1f%%)", p, improvement*100)
		}
		if p == 64 && (improvement < 0.10 || improvement > 0.35) {
			t.Errorf("p=64 improvement %.1f%%, paper reports 25.2%%", improvement*100)
		}
	}
}

func TestResNet152CrossoverAt256(t *testing.T) {
	// Figure 9 / Table IV: K-FAC-opt is slower than SGD for ResNet-152 at
	// 256 GPUs (paper: −11.1%), while still faster at ≤128.
	m := r152Model()
	sgd256 := m.TimeToSolutionMin(RunSpec{GPUs: 256, Epochs: 90})
	opt256 := m.TimeToSolutionMin(RunSpec{GPUs: 256, Epochs: 55, KFAC: true})
	if opt256 <= sgd256 {
		t.Errorf("expected crossover at 256 GPUs: opt %.0f vs SGD %.0f", opt256, sgd256)
	}
	sgd64 := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 90})
	opt64 := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 55, KFAC: true})
	if opt64 >= sgd64 {
		t.Errorf("K-FAC should still win at 64 GPUs: opt %.0f vs SGD %.0f", opt64, sgd64)
	}
}

func TestImprovementDeterioratesWithModelSize(t *testing.T) {
	// Table IV row order: at 64 GPUs, improvement R50 > R101 > R152.
	var imps []float64
	for _, cat := range []*models.Catalog{
		models.ResNet50Catalog(), models.ResNet101Catalog(), models.ResNet152Catalog(),
	} {
		m := NewModel(DefaultV100Cluster(), ImageNetWorkload(cat))
		sgd := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 90})
		opt := m.TimeToSolutionMin(RunSpec{GPUs: 64, Epochs: 55, KFAC: true})
		imps = append(imps, (sgd-opt)/sgd)
	}
	if !(imps[0] > imps[1] && imps[1] > imps[2]) {
		t.Errorf("improvements not decreasing with model size: %v", imps)
	}
}

func TestFactorStageComputeConstantInP(t *testing.T) {
	// Table V: factor Tcomp is independent of GPU count.
	m := r50Model()
	c16, _ := m.FactorStage(16)
	c64, _ := m.FactorStage(64)
	if c16 != c64 {
		t.Errorf("factor compute varies with p: %v vs %v", c16, c64)
	}
}

func TestFactorComputeSuperlinearInModel(t *testing.T) {
	// Figure 10: factor compute grows super-linearly with parameter count.
	m50 := r50Model()
	m152 := r152Model()
	c50, _ := m50.FactorStage(16)
	c152, _ := m152.FactorStage(16)
	paramRatio := float64(models.ResNet152Catalog().TotalParams()) /
		float64(models.ResNet50Catalog().TotalParams()) // ≈ 2.35
	timeRatio := c152 / c50
	if timeRatio <= paramRatio {
		t.Errorf("factor compute ratio %.2f not super-linear vs param ratio %.2f",
			timeRatio, paramRatio)
	}
}

func TestEigStageDecreasesWithWorkers(t *testing.T) {
	// Table V: eig Tcomp decreases (sub-linearly) as workers increase.
	m := r50Model()
	e16, _ := m.EigStage(16, kfac.RoundRobin)
	e64, _ := m.EigStage(64, kfac.RoundRobin)
	if e64 >= e16 {
		t.Errorf("eig stage did not shrink: %v → %v", e16, e64)
	}
	// But far from the 4× ideal, because of load imbalance.
	if e16/e64 > 3 {
		t.Errorf("eig stage scaled too ideally (%.2fx): imbalance missing", e16/e64)
	}
}

func TestWorkerEigImbalanceMatchesTable6Shape(t *testing.T) {
	// Table VI: from 16→64 GPUs the fastest worker speeds up 6–8×, the
	// slowest only 1.3–1.9×, for all three models under round-robin.
	for _, cat := range []*models.Catalog{
		models.ResNet50Catalog(), models.ResNet101Catalog(), models.ResNet152Catalog(),
	} {
		m := NewModel(DefaultV100Cluster(), ImageNetWorkload(cat))
		t16 := m.WorkerEigTimes(16, kfac.RoundRobin)
		t64 := m.WorkerEigTimes(64, kfac.RoundRobin)
		min16, max16 := minMax(t16)
		min64, max64 := minMax(t64)
		minSpeedup := max16 / max64 // slowest-worker improvement
		maxSpeedup := min16 / min64 // fastest-worker improvement
		if minSpeedup < 1.0 || minSpeedup > 3.0 {
			t.Errorf("%s: slowest-worker speedup %.2f outside Table VI ballpark [1,3]",
				cat.Name, minSpeedup)
		}
		if maxSpeedup < 3.0 {
			t.Errorf("%s: fastest-worker speedup %.2f, want ≥ 3 (paper 6.2–8.3)",
				cat.Name, maxSpeedup)
		}
		if maxSpeedup <= minSpeedup {
			t.Errorf("%s: no imbalance spread (min %.2f, max %.2f)",
				cat.Name, minSpeedup, maxSpeedup)
		}
	}
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		// Idle workers (zero load) are excluded, as the paper measures
		// workers with assigned factors.
		if x == 0 {
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func TestSizeGreedyReducesEigStage(t *testing.T) {
	// The paper's proposed future-work placement should cut the slowest
	// worker's eig time relative to round-robin at high worker counts.
	m := r152Model()
	rr, _ := m.EigStage(64, kfac.RoundRobin)
	gr, _ := m.EigStage(64, kfac.SizeGreedy)
	if gr > rr {
		t.Errorf("size-greedy eig stage %.3f worse than round-robin %.3f", gr, rr)
	}
}

func TestScalingEfficiencyDeclines(t *testing.T) {
	m := r50Model()
	spec := RunSpec{Epochs: 90}
	eff128 := m.ScalingEfficiency(withGPUs(spec, 128), 16)
	eff256 := m.ScalingEfficiency(withGPUs(spec, 256), 16)
	if eff128 <= eff256 {
		t.Errorf("efficiency should decline with scale: %0.2f @128 vs %0.2f @256", eff128, eff256)
	}
	if eff256 >= 0.5 {
		t.Errorf("paper: efficiency < 50%% at 256 GPUs, model gives %.0f%%", eff256*100)
	}
	if eff128 < 0.55 || eff128 > 0.85 {
		t.Errorf("eff @128 = %.0f%%, paper ≈ 68.6%%", eff128*100)
	}
}

func withGPUs(s RunSpec, p int) RunSpec { s.GPUs = p; return s }

func TestPaperInvFreq(t *testing.T) {
	want := map[int]int{16: 2000, 32: 1000, 64: 500, 128: 250, 256: 125}
	for p, f := range want {
		if got := PaperInvFreq(p); got != f {
			t.Errorf("PaperInvFreq(%d) = %d, want %d", p, got, f)
		}
	}
}

func TestCommPrimitiveCosts(t *testing.T) {
	m := r50Model()
	if m.ringAllreduceTime(1e6, 1) != 0 {
		t.Error("single-rank allreduce should be free")
	}
	// Allreduce moves ~2× the payload of allgather on a ring.
	ar := m.ringAllreduceTime(1e9, 32)
	ag := m.ringAllgatherTime(1e9, 32)
	if ar <= ag {
		t.Errorf("allreduce %.3f should cost more than allgather %.3f", ar, ag)
	}
	if m.broadcastTime(1e6, 1) != 0 {
		t.Error("single-rank broadcast should be free")
	}
	if m.broadcastTime(1e6, 8) <= 0 {
		t.Error("broadcast must cost time")
	}
}

func TestConvergenceEndpoints(t *testing.T) {
	if FinalAccSGD("resnet50") != 0.762 {
		t.Error("SGD R50 endpoint wrong")
	}
	if FinalAccKFAC("resnet50", 100) != 0.762 {
		t.Error("K-FAC R50 @100 should match SGD per Table III")
	}
	// Freq 1000 dips below the MLPerf baseline for R50 (75.5% in Table III).
	acc1000 := FinalAccKFAC("resnet50", 1000)
	if acc1000 >= 0.759 {
		t.Errorf("R50 @1000 = %.3f, should drop below 0.759", acc1000)
	}
	// Freq 500 stays above baseline.
	if FinalAccKFAC("resnet50", 500) < 0.759 {
		t.Error("R50 @500 should stay above the MLPerf baseline")
	}
	// Unknown models get defaults.
	if FinalAccSGD("vgg") != 0.76 || FinalAccKFAC("vgg", 10000) >= 0.76 {
		t.Error("default endpoints wrong")
	}
}

func TestStalenessPenaltyMonotone(t *testing.T) {
	prev := -1.0
	for _, f := range []int{10, 100, 200, 500, 1000, 2000} {
		p := StalenessPenalty("resnet50", f)
		if p < prev {
			t.Errorf("penalty decreased at freq %d", f)
		}
		prev = p
	}
	if StalenessPenalty("resnet50", 50) != 0 {
		t.Error("no penalty expected below 100 iterations")
	}
}

func TestAccuracyCurveShape(t *testing.T) {
	kf, sgd := ResNet50Curves()
	if len(kf) != 55 || len(sgd) != 90 {
		t.Fatalf("curve lengths = %d, %d", len(kf), len(sgd))
	}
	if kf[54] != 0.764 || sgd[89] != 0.762 {
		t.Errorf("final accs = %v, %v", kf[54], sgd[89])
	}
	// Paper: K-FAC crosses 75.9% near epoch 43, SGD near epoch 76.
	ek := EpochsToReach(kf, 0.759)
	es := EpochsToReach(sgd, 0.759)
	if ek < 35 || ek > 50 {
		t.Errorf("K-FAC reaches baseline at epoch %d, paper: 43", ek)
	}
	if es < 65 || es > 85 {
		t.Errorf("SGD reaches baseline at epoch %d, paper: 76", es)
	}
	if ek >= es {
		t.Error("K-FAC must reach the baseline before SGD")
	}
	// Curves are within [0, final] and never NaN.
	for _, v := range append(append([]float64{}, kf...), sgd...) {
		if math.IsNaN(v) || v < 0 || v > 0.765 {
			t.Fatalf("curve value out of range: %v", v)
		}
	}
}

func TestEpochsToReachNotFound(t *testing.T) {
	if EpochsToReach([]float64{0.1, 0.2}, 0.5) != -1 {
		t.Error("unreached threshold should return -1")
	}
}

func TestAccuracyCurveDefaults(t *testing.T) {
	c := AccuracyCurve(CurveConfig{FinalAcc: 0.9, Epochs: 20})
	if len(c) != 20 || c[19] != 0.9 {
		t.Errorf("default curve = len %d final %v", len(c), c[len(c)-1])
	}
}
