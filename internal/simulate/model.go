// Package simulate is the cluster performance model used to regenerate the
// paper's ImageNet-scale measurements (Tables III–VI, Figures 5–10) without
// the 16–256 V100 GPUs the authors used (DESIGN.md, substitution 4).
//
// The model combines:
//
//   - α–β communication costs for the ring allreduce / allgather / broadcast
//     algorithms implemented in internal/comm, with an effective latency
//     that grows with scale (switch contention and stragglers) and a
//     contention multiplier on K-FAC's large factor payloads;
//   - FLOP-derived compute times from the exact layer catalogs in
//     internal/models, with a sublinear model-size exponent calibrated to
//     the paper's measured per-iteration times (deeper models achieve
//     better GPU utilization than raw FLOPs predict);
//   - eigendecomposition stage time = max over workers of Σ 9n³/throughput,
//     where the factor→worker assignment comes from the *real* placement
//     code in internal/kfac — load imbalance (Table VI) is produced by the
//     algorithm, not curve-fit;
//   - a per-iteration K-FAC overhead (hook capture, preconditioning GEMMs,
//     ν scaling, framework bookkeeping) calibrated against the residual
//     per-iteration costs implied by Table III and scaling quadratically
//     with parameter count, matching the measured 26/84/173 ms residuals
//     for ResNet-50/101/152.
//
// EXPERIMENTS.md records the calibration and paper-vs-model numbers for
// every artifact.
package simulate

import (
	"fmt"
	"math"

	"repro/internal/kfac"
	"repro/internal/models"
)

// ClusterConfig holds the calibrated constants of the modeled cluster
// (Frontera GPU subsystem: 4×V100 nodes, EDR InfiniBand).
type ClusterConfig struct {
	// AlphaBaseSec is the per-step collective latency at small scale.
	AlphaBaseSec float64
	// AlphaContentionGPUs controls latency growth: α(p) = base·(1+p/this).
	AlphaContentionGPUs float64
	// BetaBytesPerSec is effective point-to-point bandwidth.
	BetaBytesPerSec float64
	// FlopsPerSec is effective FP32 training throughput at the reference
	// model size (ResNet-50), including framework and input-pipeline
	// overheads.
	FlopsPerSec float64
	// SublinearExponent maps relative model FLOPs to relative time:
	// t ∝ (F/F_ref)^exponent. Calibrated to the paper's measured
	// 190/260/368 ms iteration times for ResNet-50/101/152.
	SublinearExponent float64
	// FactorFlopsPerSec is the near-peak GEMM throughput of the factor
	// products and preconditioning rotations.
	FactorFlopsPerSec float64
	// EigFlopsPerSec is the effective symmetric-eigensolver throughput.
	EigFlopsPerSec float64
	// BytesPerElem is the wire size of one element (paper: FP32 = 4).
	BytesPerElem float64
	// OverlapFraction is the fraction of forward+backward compute the
	// gradient allreduce can hide behind (Figure 1 pipeline).
	OverlapFraction float64
	// PerIterOverheadSec is the per-iteration K-FAC bookkeeping cost at the
	// reference parameter count; scales with (params/ref)².
	PerIterOverheadSec float64
	// RefParams anchors the per-iteration overhead scaling (ResNet-50).
	RefParams float64
	// StageContentionGPUs controls the multiplier on K-FAC's bulk factor
	// collectives: 1 + (p/this)².
	StageContentionGPUs float64
	// PerFactorOverheadSec is the fixed cost of launching one
	// eigendecomposition (kernel launch, host sync, workspace setup). It
	// floors the fastest workers' times, which is why the paper's Table VI
	// max speedups saturate around 6–8× instead of scaling with factor
	// count.
	PerFactorOverheadSec float64
}

// DefaultV100Cluster returns the constants calibrated against the paper's
// Table III (64-GPU training minutes) and Table V (stage profiles).
func DefaultV100Cluster() ClusterConfig {
	return ClusterConfig{
		AlphaBaseSec:         0.25e-3,
		AlphaContentionGPUs:  128,
		BetaBytesPerSec:      10e9,
		FlopsPerSec:          4.0e12,
		SublinearExponent:    0.65,
		FactorFlopsPerSec:    28e12,
		EigFlopsPerSec:       0.40e12,
		BytesPerElem:         4,
		OverlapFraction:      0.3,
		PerIterOverheadSec:   26e-3,
		RefParams:            25.5e6,
		StageContentionGPUs:  128,
		PerFactorOverheadSec: 20e-3,
	}
}

// alpha returns the effective per-step latency at world size p.
func (c ClusterConfig) alpha(p int) float64 {
	return c.AlphaBaseSec * (1 + float64(p)/c.AlphaContentionGPUs)
}

// stageContention returns the congestion multiplier for K-FAC's bulk
// factor payloads at world size p.
func (c ClusterConfig) stageContention(p int) float64 {
	x := float64(p) / c.StageContentionGPUs
	return 1 + x*x
}

// refFwdFLOPs is the forward GEMM cost per image of the reference model.
var refFwdFLOPs = catalogFwdFLOPs(models.ResNet50Catalog())

func catalogFwdFLOPs(c *models.Catalog) float64 {
	var f float64
	for _, l := range c.Layers {
		f += 2 * float64(l.ADim) * float64(l.GDim) * float64(l.SpatialOut)
	}
	return f
}

// Workload describes one training job.
type Workload struct {
	Catalog     *models.Catalog
	BatchPerGPU int // paper: 32
	TrainImages int // paper: ~1.28 M for ImageNet-1k
}

// ImageNetWorkload returns the paper's standard job for a model catalog.
func ImageNetWorkload(c *models.Catalog) Workload {
	return Workload{Catalog: c, BatchPerGPU: 32, TrainImages: 1_281_167}
}

// Model evaluates iteration and stage times for a workload on a cluster.
type Model struct {
	Cluster  ClusterConfig
	Workload Workload
}

// NewModel pairs a cluster with a workload.
func NewModel(cluster ClusterConfig, w Workload) *Model {
	return &Model{Cluster: cluster, Workload: w}
}

// IterationsPerEpoch returns the iteration count per epoch at world size p.
func (m *Model) IterationsPerEpoch(p int) int {
	global := m.Workload.BatchPerGPU * p
	return (m.Workload.TrainImages + global - 1) / global
}

// fwdFLOPsPerImage sums 2·ADim·GDim·spatial over catalog layers.
func (m *Model) fwdFLOPsPerImage() float64 { return catalogFwdFLOPs(m.Workload.Catalog) }

// FwdBwdTime returns the per-iteration forward+backward compute time:
// backward ≈ 2× forward, throughput adjusted by the sublinear model-size
// exponent relative to ResNet-50.
func (m *Model) FwdBwdTime() float64 {
	f := m.fwdFLOPsPerImage()
	refTime := 3 * refFwdFLOPs * float64(m.Workload.BatchPerGPU) / m.Cluster.FlopsPerSec
	return refTime * math.Pow(f/refFwdFLOPs, m.Cluster.SublinearExponent)
}

// GradBytes returns the size of one gradient exchange.
func (m *Model) GradBytes() float64 {
	return float64(m.Workload.Catalog.TotalParams()) * m.Cluster.BytesPerElem
}

// ringAllreduceTime is the α–β cost of a ring allreduce of b bytes on p
// ranks: 2(p−1) latency steps and 2(p−1)/p bandwidth factors.
func (m *Model) ringAllreduceTime(b float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := float64(2 * (p - 1))
	return steps*m.Cluster.alpha(p) + 2*float64(p-1)/float64(p)*b/m.Cluster.BetaBytesPerSec
}

// ringAllgatherTime is the α–β cost of gathering b total bytes on p ranks.
func (m *Model) ringAllgatherTime(b float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := float64(p - 1)
	return steps*m.Cluster.alpha(p) + float64(p-1)/float64(p)*b/m.Cluster.BetaBytesPerSec
}

// broadcastTime is the α–β cost of a binomial-tree broadcast of b bytes.
func (m *Model) broadcastTime(b float64, p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(p)))
	return steps * (m.Cluster.alpha(p) + b/m.Cluster.BetaBytesPerSec)
}

// SGDIterTime models one synchronous-SGD iteration: forward+backward plus
// the non-overlapped remainder of the gradient allreduce.
func (m *Model) SGDIterTime(p int) float64 {
	fb := m.FwdBwdTime()
	ar := m.ringAllreduceTime(m.GradBytes(), p)
	exposed := ar - m.Cluster.OverlapFraction*fb
	if exposed < 0 {
		exposed = 0
	}
	return fb + exposed
}

// FactorBytes returns the wire size of all Kronecker factors.
func (m *Model) FactorBytes() float64 {
	var elems float64
	for _, l := range m.Workload.Catalog.Layers {
		da := float64(l.FactorADim())
		dg := float64(l.GDim)
		elems += da*da + dg*dg
	}
	return elems * m.Cluster.BytesPerElem
}

// FactorStage returns the (compute, communication) time of one factor
// update: every GPU computes all factors over its local batch (compute
// independent of p — the Table V observation), then the running averages
// are allreduced. comm excludes the contention multiplier; callers that
// amortize stage costs apply it via stageContention.
func (m *Model) FactorStage(p int) (comp, comm float64) {
	var flops float64
	b := float64(m.Workload.BatchPerGPU)
	for _, l := range m.Workload.Catalog.Layers {
		da := float64(l.FactorADim())
		dg := float64(l.GDim)
		s := float64(l.SpatialOut)
		flops += 2 * b * s * (da*da + dg*dg)
	}
	comp = flops / m.Cluster.FactorFlopsPerSec
	comm = m.ringAllreduceTime(m.FactorBytes(), p)
	return comp, comm
}

// WorkerEigTimes returns the per-worker eigendecomposition time under the
// given placement strategy — the quantity whose min/max spread Table VI
// reports.
func (m *Model) WorkerEigTimes(p int, strategy kfac.Strategy) []float64 {
	refs := m.Workload.Catalog.FactorRefs()
	assign := kfac.Assign(strategy, refs, p)
	loads := kfac.WorkerLoads(refs, assign, p)
	counts := make([]int, p)
	for _, w := range assign {
		counts[w]++
	}
	out := make([]float64, p)
	for i, l := range loads {
		out[i] = l/m.Cluster.EigFlopsPerSec +
			float64(counts[i])*m.Cluster.PerFactorOverheadSec
	}
	return out
}

// EigStage returns the (compute, communication) time of one decomposition
// update: compute is bounded by the slowest worker; comm is the allgather
// of eigenvectors+values (zero under LayerWise, whose results stay local).
func (m *Model) EigStage(p int, strategy kfac.Strategy) (comp, comm float64) {
	for _, t := range m.WorkerEigTimes(p, strategy) {
		if t > comp {
			comp = t
		}
	}
	if strategy == kfac.LayerWise {
		return comp, 0
	}
	comm = m.ringAllgatherTime(m.FactorBytes(), p)
	return comp, comm
}

// PrecondTime returns the per-iteration preconditioning GEMM cost
// (Equations 13–15: two rotation GEMM pairs per layer) at near-peak GEMM
// throughput.
func (m *Model) PrecondTime() float64 {
	var flops float64
	for _, l := range m.Workload.Catalog.Layers {
		da := float64(l.FactorADim())
		dg := float64(l.GDim)
		flops += 2 * 2 * (da*da*dg + da*dg*dg)
	}
	return flops / m.Cluster.FactorFlopsPerSec
}

// PrecondTimeLayerWise returns the slowest worker's preconditioning GEMM
// cost when whole layers are distributed (K-FAC-lw).
func (m *Model) PrecondTimeLayerWise(p int) float64 {
	loads := make([]float64, p)
	for i, l := range m.Workload.Catalog.Layers {
		da := float64(l.FactorADim())
		dg := float64(l.GDim)
		loads[i%p] += 2 * 2 * (da*da*dg + da*dg*dg)
	}
	var maxLoad float64
	for _, v := range loads {
		if v > maxLoad {
			maxLoad = v
		}
	}
	return maxLoad / m.Cluster.FactorFlopsPerSec
}

// perIterOverhead is the calibrated per-iteration K-FAC bookkeeping cost
// (hook capture, in-place gradient rewrites, ν scaling): quadratic in
// relative parameter count, matching Table III residuals.
func (m *Model) perIterOverhead() float64 {
	r := float64(m.Workload.Catalog.TotalParams()) / m.Cluster.RefParams
	return m.Cluster.PerIterOverheadSec * r * r
}

// KFACIterAvgTime returns the average per-iteration time of K-FAC training
// with decomposition interval invFreq (kfac-update-freq); factors update
// 10× as often (paper §V-C). Strategy selects the distribution scheme.
func (m *Model) KFACIterAvgTime(p, invFreq int, strategy kfac.Strategy) float64 {
	if invFreq < 1 {
		invFreq = 1
	}
	facFreq := invFreq / 10
	if facFreq < 1 {
		facFreq = 1
	}
	cont := m.Cluster.stageContention(p)
	t := m.SGDIterTime(p)
	fComp, fComm := m.FactorStage(p)
	eComp, eComm := m.EigStage(p, strategy)
	t += (fComp + fComm*cont) / float64(facFreq)
	t += (eComp + eComm*cont) / float64(invFreq)
	if strategy == kfac.LayerWise {
		// Owner preconditions its layers; every layer's preconditioned
		// gradient is then broadcast every iteration (non-overlapped), and
		// only part of the bookkeeping overhead applies (no local
		// preconditioning of all layers on every rank).
		t += 0.5 * m.perIterOverhead()
		t += m.PrecondTimeLayerWise(p)
		t += m.broadcastTime(m.GradBytes(), p)
	} else {
		t += m.perIterOverhead()
		t += m.PrecondTime()
	}
	return t
}

// PaperInvFreq returns the paper's scale-proportional kfac-update-freq
// (constant per epoch): 2000, 1000, 500, 250, 125 at 16…256 GPUs.
func PaperInvFreq(p int) int {
	f := 2000 * 16 / p
	if f < 1 {
		f = 1
	}
	return f
}

// RunSpec describes one time-to-solution projection, mirroring the paper's
// §VI-C3 methodology (measured time per epoch × epoch budget).
type RunSpec struct {
	GPUs     int
	Epochs   int
	Strategy kfac.Strategy // used when KFAC is true
	KFAC     bool
	InvFreq  int // 0 = PaperInvFreq(GPUs)
}

// TimeToSolutionMin evaluates a RunSpec in minutes.
func (m *Model) TimeToSolutionMin(spec RunSpec) float64 {
	iters := m.IterationsPerEpoch(spec.GPUs) * spec.Epochs
	var perIter float64
	if spec.KFAC {
		f := spec.InvFreq
		if f == 0 {
			f = PaperInvFreq(spec.GPUs)
		}
		perIter = m.KFACIterAvgTime(spec.GPUs, f, spec.Strategy)
	} else {
		perIter = m.SGDIterTime(spec.GPUs)
	}
	return float64(iters) * perIter / 60
}

// RingAllreduceTime exposes the α–β ring-allreduce cost for ablations
// (e.g. the fusion-buffer sweep).
func (m *Model) RingAllreduceTime(bytes float64, p int) float64 {
	return m.ringAllreduceTime(bytes, p)
}

// ScalingEfficiency returns T(base)·base / (T(p)·p): sustained utilization
// relative to the base scale.
func (m *Model) ScalingEfficiency(spec RunSpec, baseGPUs int) float64 {
	base := spec
	base.GPUs = baseGPUs
	tBase := m.TimeToSolutionMin(base)
	tP := m.TimeToSolutionMin(spec)
	if tP == 0 {
		return 0
	}
	return tBase * float64(baseGPUs) / (tP * float64(spec.GPUs))
}

// String describes the model briefly.
func (m *Model) String() string {
	return fmt.Sprintf("simulate.Model{%s, batch/GPU=%d}", m.Workload.Catalog.Name, m.Workload.BatchPerGPU)
}
