package simulate

import (
	"math"
	"testing"
)

func TestTopologyValidate(t *testing.T) {
	if err := DefaultTopology().Validate(); err != nil {
		t.Fatalf("default topology invalid: %v", err)
	}
	bad := DefaultTopology()
	bad.RanksPerNode = 0
	if bad.Validate() == nil {
		t.Error("zero ranks/node should fail validation")
	}
	bad = DefaultTopology()
	bad.InterRack.BetaBytesPerSec = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth should fail validation")
	}
	bad = DefaultTopology()
	bad.IntraNode.AlphaSec = -1
	if bad.Validate() == nil {
		t.Error("negative latency should fail validation")
	}
}

func TestLinkClassification(t *testing.T) {
	topo := DefaultTopology() // 4 ranks/node, 16 nodes/rack → 64 ranks/rack
	if topo.RanksPerRack() != 64 {
		t.Fatalf("ranks/rack = %d, want 64", topo.RanksPerRack())
	}
	cases := []struct {
		a, b int
		want Link
	}{
		{0, 3, topo.IntraNode},   // same node
		{0, 4, topo.InterNode},   // neighbor node, same rack
		{5, 63, topo.InterNode},  // far nodes, same rack
		{0, 64, topo.InterRack},  // first rank of next rack
		{63, 64, topo.InterRack}, // rack boundary neighbors
		{7, 7, topo.IntraNode},   // self
	}
	for _, c := range cases {
		if got := topo.LinkBetween(c.a, c.b); got != c.want {
			t.Errorf("LinkBetween(%d,%d) = %+v, want %+v", c.a, c.b, got, c.want)
		}
	}
	// SpanLink: the slowest class the interval can force.
	if topo.SpanLink(0, 3) != topo.IntraNode {
		t.Error("span inside one node should be intra-node")
	}
	if topo.SpanLink(0, 63) != topo.InterNode {
		t.Error("span inside one rack should be inter-node")
	}
	if topo.SpanLink(0, 64) != topo.InterRack {
		t.Error("span across racks should be inter-rack")
	}
}

func TestRingAllreduceCost(t *testing.T) {
	topo := DefaultTopology()
	if topo.RingAllreduceCost(1e9, 1) != 0 {
		t.Error("single-rank allreduce should be free")
	}
	// Monotone in payload and in the latency term with world size.
	if !(topo.RingAllreduceCost(2e9, 16) > topo.RingAllreduceCost(1e9, 16)) {
		t.Error("cost should grow with bytes")
	}
	// A ring inside one node uses the fast link; spanning nodes pays the
	// slower class.
	intra := topo.RingAllreduceCost(1e8, 4) // one node
	inter := topo.RingAllreduceCost(1e8, 8) // two nodes
	if intra >= inter {
		t.Errorf("intra-node ring %.6f should undercut node-spanning ring %.6f", intra, inter)
	}
}

func TestHierarchicalDegeneratesToFlatRing(t *testing.T) {
	topo := DefaultTopology()
	b := 64e6
	for _, world := range []int{2, 8, 64, 256} {
		flat := topo.RingAllreduceCost(b, world)
		for _, g := range []int{0, 1, world, world + 5} {
			if got := topo.HierarchicalAllreduceCost(b, world, g); got != flat {
				t.Errorf("world=%d group=%d: %.6f != flat %.6f", world, g, got, flat)
			}
		}
	}
	if topo.HierarchicalAllreduceCost(b, 1, 4) != 0 {
		t.Error("single-rank hierarchical allreduce should be free")
	}
}

func TestHierarchicalGroupingWinsAtScale(t *testing.T) {
	// With node-sized groups, members aggregate over NVLink and only one
	// leader per node rides the slow fabric — the structural advantage the
	// comm package's hierarchical allreduce exists for. Assert the model
	// reproduces it at a multi-rack world with a bulk payload.
	topo := DefaultTopology()
	b := 256e6
	world := 256
	flat := topo.RingAllreduceCost(b, world)
	grouped := topo.HierarchicalAllreduceCost(b, world, topo.RanksPerNode)
	if grouped >= flat {
		t.Errorf("node-sized groups %.4f should beat the flat ring %.4f at world %d",
			grouped, flat, world)
	}
}

func TestHierarchicalLeaderRingPaysSpannedClass(t *testing.T) {
	// Leaders are groupSize apart: with node-sized groups at a two-node
	// world the leader ring crosses nodes, so the total must exceed the
	// pure intra-node fan-in/fan-out cost.
	topo := DefaultTopology()
	b := 1e6
	g := topo.RanksPerNode
	fan := 2 * float64(g-1) * (topo.IntraNode.AlphaSec + b/topo.IntraNode.BetaBytesPerSec)
	got := topo.HierarchicalAllreduceCost(b, 2*g, g)
	if got <= fan {
		t.Errorf("hierarchical cost %.6f should include a node-spanning leader ring beyond fan cost %.6f", got, fan)
	}
}

func TestBroadcastCost(t *testing.T) {
	topo := DefaultTopology()
	if topo.BroadcastCost(1e6, 0, 0, 1) != 0 {
		t.Error("single-member broadcast should be free")
	}
	// ⌈log₂count⌉ rounds over the spanned class.
	b := 4e6
	want := 3 * (topo.IntraNode.AlphaSec + b/topo.IntraNode.BetaBytesPerSec)
	if got := topo.BroadcastCost(b, 0, 3, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("broadcast = %.9f, want %.9f", got, want)
	}
	// A wider span can only cost more.
	if topo.BroadcastCost(b, 0, 64, 8) <= topo.BroadcastCost(b, 0, 3, 8) {
		t.Error("rack-spanning broadcast should cost more than node-local")
	}
}

func TestAllgatherCheaperThanAllreduce(t *testing.T) {
	topo := DefaultTopology()
	if topo.AllgatherCost(1e6, 1) != 0 {
		t.Error("single-rank allgather should be free")
	}
	if !(topo.AllgatherCost(1e9, 32) < topo.RingAllreduceCost(1e9, 32)) {
		t.Error("ring allgather moves half the payload of allreduce")
	}
}
