package simulate

import (
	"repro/internal/kfac"
)

// PlanModel is the topology-aware plan/cost model behind kfac's auto
// planner: it prices one candidate (DistMode, GradWorkerFrac, GroupSize)
// configuration by resolving the *real* kfac.Plan over the factor list and
// walking the communication the step engines would issue under it, with
// each collective priced on the node/rack Topology. It implements
// kfac.PlanCostModel, and is a pure function of its inputs — the
// determinism contract auto-planning across ranks depends on.
type PlanModel struct {
	// Topology prices every collective.
	Topology Topology
	// BytesPerElem is the wire width of one payload element (4 models the
	// paper's FP32 fabric, 8 this repo's exact float64 wire format).
	BytesPerElem float64
	// DecompBytesPerElem is the resident width of one decomposition
	// element. The live engines hold decompositions in float64 even on the
	// f32 compute path, so admission parity wants 8 (the default).
	DecompBytesPerElem float64
	// EigFlopsPerSec is the effective symmetric-eigensolver throughput.
	EigFlopsPerSec float64
	// FactorFlopsPerSec is the GEMM throughput of the preconditioning
	// rotations.
	FactorFlopsPerSec float64
	// PerFactorOverheadSec is the fixed cost of launching one
	// eigendecomposition.
	PerFactorOverheadSec float64
	// EigWorkers is GOMAXPROCS of the modeled ranks: the worker budget the
	// kfac eig scheduler splits between inter-factor fan-out and
	// intra-factor teams. 0 preserves the pre-team model (every factor
	// priced at the flat EigFlopsPerSec), keeping old calibrations valid.
	EigWorkers int
	// EigTeamEff is the marginal efficiency of each additional team
	// worker in the blocked solver's speedup model
	// speedup(t) = 1 + EigTeamEff·(t−1); 0 selects the default 0.7.
	// Only consulted when EigWorkers > 0.
	EigTeamEff float64
	// BaseStepSec is the candidate-independent per-iteration compute
	// (forward+backward and bookkeeping). It shifts every candidate's total
	// equally; 0 is fine for planning, calibration sets it from a measured
	// forward/backward.
	BaseStepSec float64
	// GradBytes is the per-iteration gradient-exchange payload; the
	// candidate's hierarchical group size prices it too (the trainer routes
	// the gradient fusion buffer through the same group size). 0 skips the
	// term.
	GradBytes float64
	// FactorUpdateFreq and InvUpdateFreq amortize the factor and
	// decomposition stages the way training does (defaults 10 and 100).
	FactorUpdateFreq, InvUpdateFreq int
}

// NewPlanModel assembles a PlanModel from a topology and the calibrated
// cluster compute constants, with the paper's default update frequencies.
func NewPlanModel(topo Topology, cluster ClusterConfig) *PlanModel {
	return &PlanModel{
		Topology:             topo,
		BytesPerElem:         cluster.BytesPerElem,
		DecompBytesPerElem:   8,
		EigFlopsPerSec:       cluster.EigFlopsPerSec,
		FactorFlopsPerSec:    cluster.FactorFlopsPerSec,
		PerFactorOverheadSec: cluster.PerFactorOverheadSec,
		FactorUpdateFreq:     10,
		InvUpdateFreq:        100,
	}
}

// freqs returns the amortization intervals with defaults applied.
func (pm *PlanModel) freqs() (fac, inv float64) {
	fac, inv = float64(pm.FactorUpdateFreq), float64(pm.InvUpdateFreq)
	if fac < 1 {
		fac = 10
	}
	if inv < 1 {
		inv = 100
	}
	return fac, inv
}

// eigTeamSpeedup models the blocked solver's scaling with team size t:
// 1 + eff·(t−1), a fixed-marginal-efficiency line (eff defaults to 0.7).
func (pm *PlanModel) eigTeamSpeedup(t int) float64 {
	if t <= 1 {
		return 1
	}
	eff := pm.EigTeamEff
	if eff <= 0 {
		eff = 0.7
	}
	return 1 + eff*float64(t-1)
}

// decompWidth returns the resident decomposition element width.
func (pm *PlanModel) decompWidth() float64 {
	if pm.DecompBytesPerElem > 0 {
		return pm.DecompBytesPerElem
	}
	return 8
}

// PlanEval is one candidate's full predicted breakdown — what kfac-sim's
// predicted-vs-chosen table prints and CandidateCost condenses.
type PlanEval struct {
	// Candidate identifies the configuration.
	Candidate kfac.PlanCandidate
	// World is the rank count evaluated.
	World int
	// StepSec is the amortized per-iteration total.
	StepSec float64
	// GradAllreduceSec is the per-iteration gradient exchange.
	GradAllreduceSec float64
	// PrecondSec is the slowest rank's per-iteration preconditioning GEMMs.
	PrecondSec float64
	// ResultBcastSec sums the per-iteration preconditioned-gradient
	// broadcasts of partially replicated layers.
	ResultBcastSec float64
	// FactorCommSec is the amortized factor allreduce.
	FactorCommSec float64
	// EigComputeSec is the amortized slowest-worker eigendecomposition
	// time.
	EigComputeSec float64
	// EigCommSec is the amortized decomposition distribution.
	EigCommSec float64
	// MemBytesPerRank is each rank's resident decomposition footprint
	// under the candidate's plan.
	MemBytesPerRank []int64
	// MaxMemBytes is the worst rank's footprint — what the planner's
	// memory budget gates on.
	MaxMemBytes int64
}

// memStats returns min/median/max of a per-rank byte list.
func memStats(b []int64) (min, median, max int64) {
	if len(b) == 0 {
		return 0, 0, 0
	}
	sorted := append([]int64(nil), b...)
	for i := 1; i < len(sorted); i++ { // insertion sort; rank counts are small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1]
}

// MemStats returns the eval's min/median/max per-rank footprint.
func (e *PlanEval) MemStats() (min, median, max int64) { return memStats(e.MemBytesPerRank) }

// Evaluate prices one candidate configuration at the given world size: it
// builds the real plan, prices every collective the engines would issue on
// the topology, and totals the amortized per-iteration cost alongside the
// exact per-rank memory footprint.
func (pm *PlanModel) Evaluate(strategy kfac.Strategy, refs []kfac.FactorRef, world int, cand kfac.PlanCandidate) PlanEval {
	if world < 1 {
		world = 1
	}
	facFreq, invFreq := pm.freqs()
	plan := kfac.BuildPlan(strategy, cand.Mode, cand.GradWorkerFrac, refs, world)
	ev := PlanEval{Candidate: cand, World: world}

	// Per-rank resident decomposition memory: the budget side.
	elems := plan.DecompElemsPerRank(refs)
	ev.MemBytesPerRank = make([]int64, len(elems))
	for r, e := range elems {
		ev.MemBytesPerRank[r] = int64(float64(e) * pm.decompWidth())
		if ev.MemBytesPerRank[r] > ev.MaxMemBytes {
			ev.MaxMemBytes = ev.MemBytesPerRank[r]
		}
	}

	// Factor allreduce: running averages of every factor matrix, fused,
	// through the candidate's hierarchical group size.
	var factorElems float64
	for _, f := range refs {
		factorElems += float64(f.Dim) * float64(f.Dim)
	}
	ev.FactorCommSec = pm.Topology.HierarchicalAllreduceCost(
		factorElems*pm.BytesPerElem, world, cand.GroupSize) / facFreq

	// Eigendecomposition stage: compute from the real placement (slowest
	// worker bounds it), distribution as per-factor broadcasts from the
	// owner to the factor's recipient set.
	assign := kfac.Assign(strategy, refs, world)
	loads := kfac.WorkerLoads(refs, assign, world)
	counts := make([]int, world)
	for _, w := range assign {
		counts[w]++
	}
	var eigComp float64
	if pm.EigWorkers > 0 {
		// Team-aware pricing: each factor's cost shrinks by the modeled
		// speedup of the team the kfac eig scheduler would grant it on its
		// owner rank (EigTeamSize against the owner's total load) — the
		// MEM-OPT one-big-factor-per-rank case is exactly where this
		// diverges from the flat-throughput model.
		perRank := make([]float64, world)
		for i, f := range refs {
			r := assign[i]
			team := kfac.EigTeamSize(f.Dim, pm.EigWorkers, loads[r])
			perRank[r] += f.Cost() / (pm.EigFlopsPerSec * pm.eigTeamSpeedup(team))
		}
		for r, t := range perRank {
			t += float64(counts[r]) * pm.PerFactorOverheadSec
			if t > eigComp {
				eigComp = t
			}
		}
	} else {
		for r, l := range loads {
			t := l/pm.EigFlopsPerSec + float64(counts[r])*pm.PerFactorOverheadSec
			if t > eigComp {
				eigComp = t
			}
		}
	}
	ev.EigComputeSec = eigComp / invFreq
	var eigComm float64
	for i, f := range refs {
		recips := plan.Recipients(i/2, f.IsG)
		if len(recips) <= 1 {
			continue
		}
		bytes := (float64(f.Dim)*float64(f.Dim) + float64(f.Dim)) * pm.BytesPerElem
		eigComm += pm.Topology.BroadcastCost(bytes, recips[0], recips[len(recips)-1], len(recips))
	}
	ev.EigCommSec = eigComm / invFreq

	// Per-iteration preconditioning: each gradient worker preconditions the
	// layers it serves; the slowest rank bounds the stage. Layer result
	// broadcasts reach the ranks outside the gradient-worker set.
	perRank := make([]float64, world)
	for i := 0; i < plan.NumLayers(); i++ {
		da := float64(refs[2*i].Dim)
		dg := float64(refs[2*i+1].Dim)
		flops := 2 * 2 * (da*da*dg + da*dg*dg)
		lp := plan.Layers[i]
		for _, r := range lp.GradWorkers {
			perRank[r] += flops
		}
		if len(lp.BcastMembers) > 1 {
			bytes := da * dg * pm.BytesPerElem
			ev.ResultBcastSec += pm.Topology.BroadcastCost(bytes,
				lp.BcastMembers[0], lp.BcastMembers[len(lp.BcastMembers)-1], len(lp.BcastMembers))
		}
	}
	var precondMax float64
	for _, f := range perRank {
		if f > precondMax {
			precondMax = f
		}
	}
	ev.PrecondSec = precondMax / pm.FactorFlopsPerSec

	if pm.GradBytes > 0 {
		ev.GradAllreduceSec = pm.Topology.HierarchicalAllreduceCost(pm.GradBytes, world, cand.GroupSize)
	}

	ev.StepSec = pm.BaseStepSec + ev.GradAllreduceSec + ev.PrecondSec + ev.ResultBcastSec +
		ev.FactorCommSec + ev.EigComputeSec + ev.EigCommSec
	return ev
}

// CandidateCost implements kfac.PlanCostModel.
func (pm *PlanModel) CandidateCost(strategy kfac.Strategy, refs []kfac.FactorRef, world int, cand kfac.PlanCandidate) (float64, int64) {
	ev := pm.Evaluate(strategy, refs, world, cand)
	return ev.StepSec, ev.MaxMemBytes
}

var _ kfac.PlanCostModel = (*PlanModel)(nil)
