package comm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Fault injection for the distributed runtime. The paper's speedups come
// from asynchronous, overlapped collectives — exactly the code paths that
// are hardest to trust on anything but a well-behaved in-memory fabric.
// ChaosTransport wraps any Transport and injects latency, message drops
// (with bounded retry), bandwidth caps, and scripted rank kills, all
// replayable from a seed, so the conformance suite and the elastic trainer
// can exercise the SPMD ordering contract and the recovery path under
// adversity.
//
// Determinism model: every per-message decision (injected latency, drop
// rolls) is a pure hash of (seed, from, to, tag, use, attempt), where
// `use` is the per-(to, tag) send ordinal. Collective wire tags are
// unique per operation instance (Communicator.nextOp), so their use is
// always 0 and the fault sequence experienced by a given collective
// schedule is a pure function of the seed — independent of goroutine
// interleaving and wall time. Reusable low-range tags (heartbeats) draw
// independent fates per message through the use ordinal, which is equally
// deterministic for the single-sender streams that use them. Replaying the same seed over the same schedule replays the same
// faults. Because latency and retried drops never alter payloads, an
// injected-latency-only schedule leaves all collective arithmetic
// bit-identical to a chaos-free run.
//
// Kill triggers (KillSpec.AfterSends) count a rank's completed sends; with
// the single-issuer collective schedule the count at which a kill fires is
// deterministic, though which concurrent message observes it first may
// vary. Tests that need an exact kill point use ChaosFabric.Kill directly.

// ErrRankKilled is returned by a killed rank's own Send/Recv calls.
var ErrRankKilled = errors.New("comm: rank killed by chaos schedule")

// ErrPeerKilled is returned when sending to a rank the chaos schedule has
// killed — the in-memory analogue of a connection reset.
var ErrPeerKilled = errors.New("comm: peer killed by chaos schedule")

// ErrDropped is returned when a message was dropped on every attempt of
// the bounded retry loop.
var ErrDropped = errors.New("comm: message dropped after retries exhausted")

// KillSpec schedules the death of one rank: after AfterSends completed
// (successfully delivered) sends in the collective tag namespace, the
// rank's next collective send attempt fails with ErrRankKilled and the
// rank stays dead. Heartbeat traffic is excluded from the count — it is
// timer-driven, so counting it would tie the kill point to wall-clock
// speed instead of training progress.
type KillSpec struct {
	Rank       int
	AfterSends int64
}

// ChaosConfig scripts the fault schedule. The zero value injects nothing.
type ChaosConfig struct {
	// Seed drives every latency and drop decision; the same seed replays
	// the same fault sequence over the same collective schedule.
	Seed int64
	// MinLatency/MaxLatency bound the per-message injected delivery delay
	// (uniform, hash-derived). MaxLatency ≤ 0 disables latency injection.
	MinLatency, MaxLatency time.Duration
	// DropRate is the per-attempt probability a send is dropped. Dropped
	// sends are retried up to MaxRetries times (the transport's reliability
	// contract is preserved unless the retry budget is exhausted).
	DropRate float64
	// MaxRetries bounds the retry loop for dropped sends (default 3).
	MaxRetries int
	// RetryBackoff is the delay between retry attempts (default 200µs).
	RetryBackoff time.Duration
	// BandwidthBps caps per-message throughput: each send is additionally
	// delayed by payloadBytes/BandwidthBps seconds (0 = uncapped).
	BandwidthBps float64
	// Kills lists scripted rank deaths.
	Kills []KillSpec
}

func (c *ChaosConfig) fillDefaults() {
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 200 * time.Microsecond
	}
}

// DeliveryMetrics counts one endpoint's chaos-layer traffic.
type DeliveryMetrics struct {
	// Sent counts successful Send completions; Received successful Recvs.
	Sent, Received int64
	// Dropped counts dropped attempts; Retried counts re-send attempts
	// after a drop (Retried ≤ Dropped).
	Dropped, Retried int64
	// Bytes is the payload volume of successful sends.
	Bytes int64
	// InjectedDelay is the total latency+bandwidth delay added to sends.
	InjectedDelay time.Duration
}

// endpointState is the shared per-rank chaos state.
type endpointState struct {
	killed     atomic.Bool
	killCtx    context.Context
	killCancel context.CancelFunc

	// tagUse counts sends per (to, tag) for reusable low-range tags
	// (heartbeats), salting their fault rolls so a stream reusing one tag
	// still gets independent per-message fates. Guarded by mu.
	mu     sync.Mutex
	tagUse map[uint64]uint64

	sent, recvd, dropped, retried, bytes atomic.Int64
	delayNanos                           atomic.Int64
	// schedSent counts completed sends in the collective tag namespace
	// only. Kill triggers consume this counter, not sent: heartbeat
	// traffic is timer-driven (its volume depends on wall-clock speed), so
	// counting it would make scripted kill points machine-dependent and
	// break seed replay.
	schedSent atomic.Int64
}

// useCount returns and increments the per-(to,tag) usage ordinal.
func (s *endpointState) useCount(to int, tag uint64) uint64 {
	key := uint64(to)<<32 | tag
	s.mu.Lock()
	if s.tagUse == nil {
		s.tagUse = make(map[uint64]uint64)
	}
	n := s.tagUse[key]
	s.tagUse[key] = n + 1
	s.mu.Unlock()
	return n
}

func (s *endpointState) metrics() DeliveryMetrics {
	return DeliveryMetrics{
		Sent:          s.sent.Load(),
		Received:      s.recvd.Load(),
		Dropped:       s.dropped.Load(),
		Retried:       s.retried.Load(),
		Bytes:         s.bytes.Load(),
		InjectedDelay: time.Duration(s.delayNanos.Load()),
	}
}

// ChaosFabric wraps another fabric's endpoints in ChaosTransports sharing
// one fault schedule and one kill/metrics table.
type ChaosFabric struct {
	inner Fabric
	cfg   ChaosConfig
	ranks []*endpointState

	mu        sync.Mutex
	endpoints map[int]*ChaosTransport
}

// NewChaosFabric builds a chaos wrapper over inner for a world of n ranks.
func NewChaosFabric(inner Fabric, n int, cfg ChaosConfig) *ChaosFabric {
	cfg.fillDefaults()
	f := &ChaosFabric{
		inner:     inner,
		cfg:       cfg,
		ranks:     make([]*endpointState, n),
		endpoints: make(map[int]*ChaosTransport),
	}
	for i := range f.ranks {
		ctx, cancel := context.WithCancel(context.Background())
		f.ranks[i] = &endpointState{killCtx: ctx, killCancel: cancel}
	}
	return f
}

// Endpoint returns rank's chaos-wrapped transport (cached: repeated calls
// return the same instance).
func (f *ChaosFabric) Endpoint(rank int) Transport {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t, ok := f.endpoints[rank]; ok {
		return t
	}
	t := &ChaosTransport{inner: f.inner.Endpoint(rank), fabric: f, rank: rank}
	f.endpoints[rank] = t
	return t
}

// Kill marks rank dead immediately: its blocked receives unblock with
// ErrRankKilled and all of its subsequent operations fail.
func (f *ChaosFabric) Kill(rank int) {
	if rank < 0 || rank >= len(f.ranks) {
		return
	}
	s := f.ranks[rank]
	if s.killed.CompareAndSwap(false, true) {
		s.killCancel()
	}
}

// Killed lists the ranks the schedule (or Kill) has terminated, ascending.
func (f *ChaosFabric) Killed() []int {
	var out []int
	for r, s := range f.ranks {
		if s.killed.Load() {
			out = append(out, r)
		}
	}
	return out
}

// Metrics returns rank's delivery counters.
func (f *ChaosFabric) Metrics(rank int) DeliveryMetrics {
	if rank < 0 || rank >= len(f.ranks) {
		return DeliveryMetrics{}
	}
	return f.ranks[rank].metrics()
}

// TotalMetrics sums the delivery counters over all ranks.
func (f *ChaosFabric) TotalMetrics() DeliveryMetrics {
	var total DeliveryMetrics
	for r := range f.ranks {
		m := f.Metrics(r)
		total.Sent += m.Sent
		total.Received += m.Received
		total.Dropped += m.Dropped
		total.Retried += m.Retried
		total.Bytes += m.Bytes
		total.InjectedDelay += m.InjectedDelay
	}
	return total
}

// ChaosTransport is one rank's fault-injecting Transport view. Create it
// through ChaosFabric.Endpoint — kills and metrics are shared across a
// fabric's endpoints, so standalone wrapping has no meaningful semantics.
type ChaosTransport struct {
	inner  Transport
	fabric *ChaosFabric
	rank   int
}

var _ Transport = (*ChaosTransport)(nil)

// Rank implements Transport.
func (t *ChaosTransport) Rank() int { return t.inner.Rank() }

// Size implements Transport.
func (t *ChaosTransport) Size() int { return t.inner.Size() }

// Metrics returns this endpoint's delivery counters.
func (t *ChaosTransport) Metrics() DeliveryMetrics { return t.fabric.ranks[t.rank].metrics() }

// splitmix64 is the seed-mixing hash behind every chaos decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll derives the deterministic 64-bit decision value for one message
// attempt. use is the per-(to,tag) send ordinal: collective tags are
// single-use so it is always 0 there, while reusable low-range tags
// (heartbeats) advance it per message so a stream on one tag still draws
// independent fates.
func (t *ChaosTransport) roll(to int, tag uint64, use uint64, attempt int) uint64 {
	h := splitmix64(uint64(t.fabric.cfg.Seed))
	h = splitmix64(h ^ uint64(t.rank)<<32 ^ uint64(to))
	h = splitmix64(h ^ tag)
	h = splitmix64(h ^ use)
	return splitmix64(h ^ uint64(attempt))
}

// unit maps a decision value to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// sendDelay computes the injected latency + bandwidth delay for one send.
func (t *ChaosTransport) sendDelay(to int, tag uint64, use uint64, payloadLen int) time.Duration {
	cfg := &t.fabric.cfg
	var d time.Duration
	if cfg.MaxLatency > 0 {
		span := cfg.MaxLatency - cfg.MinLatency
		if span <= 0 {
			d = cfg.MaxLatency
		} else {
			h := t.roll(to, tag, use, -1)
			d = cfg.MinLatency + time.Duration(h%uint64(span))
		}
	}
	if cfg.BandwidthBps > 0 {
		bytes := float64(8 * payloadLen)
		d += time.Duration(bytes / cfg.BandwidthBps * float64(time.Second))
	}
	return d
}

// state returns the shared chaos state for a rank of this fabric.
func (t *ChaosTransport) state(rank int) *endpointState {
	if rank < 0 || rank >= len(t.fabric.ranks) {
		return nil
	}
	return t.fabric.ranks[rank]
}

// reusableTagLimit bounds the tag range whose per-(to,tag) usage is
// tracked for fault-roll salting: collective tags (≥ 1<<16, single-use by
// construction) stay out of the map, so it never grows with training.
const reusableTagLimit = uint64(1) << 16

// Send implements Transport: it applies the kill schedule, injects the
// hash-derived latency/bandwidth delay, and runs the bounded drop-retry
// loop before delegating to the wrapped transport.
func (t *ChaosTransport) Send(to int, tag uint64, data []float64) error {
	self := t.state(t.rank)
	if self.killed.Load() {
		return ErrRankKilled
	}
	// Scripted kill: the first collective-namespace send attempted after
	// AfterSends *completed* collective sends dies (drop-exhausted
	// attempts and heartbeat traffic do not consume the allowance).
	if tag >= reusableTagLimit {
		for _, k := range t.fabric.cfg.Kills {
			if k.Rank == t.rank && self.schedSent.Load() >= k.AfterSends {
				t.fabric.Kill(t.rank)
				return ErrRankKilled
			}
		}
	}
	if peer := t.state(to); peer != nil && peer.killed.Load() {
		return ErrPeerKilled
	}

	var use uint64
	if tag < reusableTagLimit {
		use = self.useCount(to, tag)
	}
	cfg := &t.fabric.cfg
	if d := t.sendDelay(to, tag, use, len(data)); d > 0 {
		if err := t.sleep(self, d); err != nil {
			return err
		}
	}
	if cfg.DropRate > 0 {
		for attempt := 0; ; attempt++ {
			if unit(t.roll(to, tag, use, attempt)) >= cfg.DropRate {
				break // this attempt goes through
			}
			self.dropped.Add(1)
			if attempt >= cfg.MaxRetries {
				return fmt.Errorf("%w (to %d tag %d, %d attempts)", ErrDropped, to, tag, attempt+1)
			}
			self.retried.Add(1)
			if err := t.sleep(self, cfg.RetryBackoff); err != nil {
				return err
			}
		}
	}
	if err := t.inner.Send(to, tag, data); err != nil {
		return err
	}
	self.sent.Add(1)
	if tag >= reusableTagLimit {
		self.schedSent.Add(1)
	}
	self.bytes.Add(int64(8 * len(data)))
	return nil
}

// sleep delays for d, accounting it as injected delay, but wakes
// immediately with ErrRankKilled if the rank dies mid-sleep — a tight
// bandwidth cap can make single-message delays arbitrarily long, and an
// uninterruptible sleep would stall kill-triggered teardown (and elastic
// recovery) for its full length.
func (t *ChaosTransport) sleep(self *endpointState, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		self.delayNanos.Add(int64(d))
		return nil
	case <-self.killCtx.Done():
		return ErrRankKilled
	}
}

// Recv implements Transport. A killed rank's receives — including ones
// already blocked when the kill fires — return ErrRankKilled.
func (t *ChaosTransport) Recv(ctx context.Context, from int, tag uint64) ([]float64, error) {
	self := t.state(t.rank)
	if self.killed.Load() {
		return nil, ErrRankKilled
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(self.killCtx, cancel)
	defer stop()
	data, err := t.inner.Recv(rctx, from, tag)
	if err != nil {
		if self.killed.Load() {
			return nil, ErrRankKilled
		}
		return nil, err
	}
	self.recvd.Add(1)
	return data, nil
}

// Close implements Transport.
func (t *ChaosTransport) Close() error { return t.inner.Close() }
