// Package comm implements the collective-communication runtime the paper
// delegates to Horovod (§II-D, §V-A): allreduce, allgather, broadcast and
// barrier over an abstract point-to-point Transport, with asynchronous
// handles and a gradient fusion buffer.
//
// Allreduce uses the ring scatter-reduce + allgather algorithm
// (Patarasuk & Yuan), the bandwidth-optimal algorithm Horovod's fusion
// buffer is tuned for: each element crosses each link 2(p−1)/p times.
// Broadcast uses a binomial tree. All collectives are SPMD: every rank must
// invoke the same collectives in the same program order (Horovod enforces
// this with its coordinator; here it is a documented contract, checked by
// the per-operation sequence tags).
//
// Two transports are provided: an in-process fabric (goroutines and
// channels, used by tests, the trainer, and single-process examples) and a
// TCP fabric (one net.Conn per peer pair, used by the multi-process
// example).
package comm

import (
	"context"
	"fmt"
	"sync"
)

// Transport moves float64 payloads between ranks. Implementations must
// allow concurrent Send/Recv from multiple goroutines and must match
// messages by (peer, tag).
type Transport interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank `to` under the given tag. The callee owns
	// no reference to data after return (implementations copy as needed).
	Send(to int, tag uint64, data []float64) error
	// Recv blocks until a message from rank `from` with the given tag
	// arrives and returns its payload, or until ctx is cancelled, in which
	// case it returns ctx's error. Cancellation is a hard abort: the
	// message, if it arrives later, stays queued for a subsequent Recv.
	Recv(ctx context.Context, from int, tag uint64) ([]float64, error)
	// Close releases transport resources.
	Close() error
}

// Fabric hands out one Transport endpoint per rank. InprocFabric and
// ChaosFabric implement it; runners that accept a Fabric (e.g.
// trainer.RunSessionsOn) can therefore train over a fault-injected world
// without knowing about chaos.
type Fabric interface {
	Endpoint(rank int) Transport
}

// message is an in-flight tagged payload.
type message struct {
	tag  uint64
	data []float64
}

// mailbox buffers out-of-order tagged messages from a single peer.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending map[uint64][][]float64
	closed  bool
}

func newMailbox() *mailbox {
	m := &mailbox{pending: make(map[uint64][][]float64)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message and wakes waiters.
func (m *mailbox) put(tag uint64, data []float64) {
	m.mu.Lock()
	m.pending[tag] = append(m.pending[tag], data)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// take blocks until a message with the tag is available, the mailbox is
// closed, or ctx is cancelled.
func (m *mailbox) take(ctx context.Context, tag uint64) ([]float64, error) {
	if ctx.Done() != nil {
		// Wake the condition variable when the context fires. The empty
		// critical section orders the broadcast after any waiter that saw
		// ctx.Err() == nil has entered Wait (releasing the lock), so no
		// wakeup can be missed.
		stop := context.AfterFunc(ctx, func() {
			m.mu.Lock()
			m.mu.Unlock() //nolint:staticcheck // empty section intentional, see above
			m.cond.Broadcast()
		})
		defer stop()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if q := m.pending[tag]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(m.pending, tag)
			} else {
				m.pending[tag] = q[1:]
			}
			return data, nil
		}
		if m.closed {
			return nil, fmt.Errorf("comm: mailbox closed while waiting for tag %d", tag)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.cond.Wait()
	}
}

// close wakes all waiters with an error.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// InprocFabric connects n ranks within one process. Create it once, then
// hand Endpoint(i) to each rank's goroutine.
type InprocFabric struct {
	n     int
	boxes [][]*mailbox // boxes[to][from]
}

// NewInprocFabric builds an n-rank in-process fabric.
func NewInprocFabric(n int) *InprocFabric {
	f := &InprocFabric{n: n, boxes: make([][]*mailbox, n)}
	for to := 0; to < n; to++ {
		f.boxes[to] = make([]*mailbox, n)
		for from := 0; from < n; from++ {
			f.boxes[to][from] = newMailbox()
		}
	}
	return f
}

// Endpoint returns the Transport for the given rank.
func (f *InprocFabric) Endpoint(rank int) Transport {
	return &inprocEndpoint{fabric: f, rank: rank}
}

type inprocEndpoint struct {
	fabric *InprocFabric
	rank   int
}

func (e *inprocEndpoint) Rank() int { return e.rank }
func (e *inprocEndpoint) Size() int { return e.fabric.n }

func (e *inprocEndpoint) Send(to int, tag uint64, data []float64) error {
	if to < 0 || to >= e.fabric.n {
		return fmt.Errorf("comm: send to invalid rank %d", to)
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	e.fabric.boxes[to][e.rank].put(tag, cp)
	return nil
}

func (e *inprocEndpoint) Recv(ctx context.Context, from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= e.fabric.n {
		return nil, fmt.Errorf("comm: recv from invalid rank %d", from)
	}
	return e.fabric.boxes[e.rank][from].take(ctx, tag)
}

func (e *inprocEndpoint) Close() error {
	for from := 0; from < e.fabric.n; from++ {
		e.fabric.boxes[e.rank][from].close()
	}
	return nil
}
