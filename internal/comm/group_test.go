package comm

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGroupBroadcastSubset(t *testing.T) {
	const p = 5
	members := []int{1, 3, 4}
	const root = 3
	got := make([][]float64, p)
	runRanks(t, p, func(c *Communicator) error {
		r := c.Rank()
		data := []float64{float64(10 * (r + 1)), float64(r)}
		g := c.Group(members)
		// Non-members pass nil: the call only reserves the tag namespace.
		var buf []float64
		if g.Contains(r) {
			buf = data
		}
		if err := g.Broadcast(buf, root); err != nil {
			return err
		}
		got[r] = data
		return nil
	})
	for _, m := range members {
		if got[m][0] != 40 || got[m][1] != 3 {
			t.Errorf("member %d = %v, want root 3's data", m, got[m])
		}
	}
	for _, r := range []int{0, 2} {
		if got[r][0] != float64(10*(r+1)) || got[r][1] != float64(r) {
			t.Errorf("non-member %d data disturbed: %v", r, got[r])
		}
	}
}

func TestGroupBroadcastFullWorldMatchesBroadcast(t *testing.T) {
	const p = 4
	rng := rand.New(rand.NewSource(7))
	payload := make([]float64, 37)
	for i := range payload {
		payload[i] = rng.NormFloat64()
	}
	viaGroup := make([][]float64, p)
	viaBcast := make([][]float64, p)
	run := func(out [][]float64, grouped bool) {
		runRanks(t, p, func(c *Communicator) error {
			data := make([]float64, len(payload))
			if c.Rank() == 2 {
				copy(data, payload)
			}
			var err error
			if grouped {
				err = c.Group([]int{0, 1, 2, 3}).Broadcast(data, 2)
			} else {
				err = c.Broadcast(data, 2)
			}
			out[c.Rank()] = data
			return err
		})
	}
	run(viaGroup, true)
	run(viaBcast, false)
	for r := 0; r < p; r++ {
		for i := range payload {
			if viaGroup[r][i] != viaBcast[r][i] || viaGroup[r][i] != payload[i] {
				t.Fatalf("rank %d elem %d: group %v bcast %v want %v",
					r, i, viaGroup[r][i], viaBcast[r][i], payload[i])
			}
		}
	}
}

func TestGroupAllreduceMeanSubset(t *testing.T) {
	const p = 6
	members := []int{0, 2, 5}
	got := make([][]float64, p)
	runRanks(t, p, func(c *Communicator) error {
		r := c.Rank()
		data := []float64{float64(r), float64(2 * r), float64(3 * r)}
		g := c.Group(members)
		var buf []float64
		if g.Contains(r) {
			buf = data
		}
		if err := g.AllreduceMean(buf); err != nil {
			return err
		}
		got[r] = data
		return nil
	})
	// Mean over ranks {0,2,5}: integer sums are exact, and the mean is
	// applied as multiplication by the rounded 1/3 (as the implementation
	// does), so the expectation is bit-exact.
	inv := 1.0 / 3
	want := []float64{7 * inv, 14 * inv, 21 * inv}
	for _, m := range members {
		for i := range want {
			if got[m][i] != want[i] {
				t.Errorf("member %d elem %d = %v, want %v", m, i, got[m][i], want[i])
			}
		}
	}
	for _, r := range []int{1, 3, 4} {
		if got[r][0] != float64(r) {
			t.Errorf("non-member %d data disturbed: %v", r, got[r])
		}
	}
}

func TestGroupBroadcastAsyncOverlapped(t *testing.T) {
	// Two overlapping async group broadcasts on disjoint groups plus a full
	// collective afterwards: tags must stay aligned on every rank.
	const p = 4
	sum := make([]float64, p)
	runRanks(t, p, func(c *Communicator) error {
		r := c.Rank()
		g1 := c.Group([]int{0, 1})
		g2 := c.Group([]int{2, 3})
		d1 := []float64{float64(100 + r)}
		d2 := []float64{float64(200 + r)}
		var b1, b2 []float64
		if g1.Contains(r) {
			b1 = d1
		}
		if g2.Contains(r) {
			b2 = d2
		}
		h1 := g1.BroadcastAsync(b1, 0)
		h2 := g2.BroadcastAsync(b2, 3)
		if err := WaitAll(h1, h2); err != nil {
			return err
		}
		// Full-world collective after the group ops: misaligned tags would
		// deadlock or cross-match here.
		buf := []float64{d1[0] + d2[0]}
		if err := c.AllreduceSum(buf); err != nil {
			return err
		}
		sum[r] = buf[0]
		return nil
	})
	// After the broadcasts: ranks 0,1 have d1=100 (root 0); ranks 2,3 keep
	// their own d1 = 102, 103. d2: ranks 2,3 have 203 (root 3); ranks 0,1
	// keep 200, 201.
	want := (100.0 + 200) + (100 + 201) + (102 + 203) + (103 + 203)
	for r := 0; r < p; r++ {
		if sum[r] != want {
			t.Errorf("rank %d sum = %v, want %v", r, sum[r], want)
		}
	}
}

func TestGroupSingletonAndAccessors(t *testing.T) {
	runRanks(t, 3, func(c *Communicator) error {
		g := c.Group([]int{1, 1, 1})
		if g.Size() != 1 || g.Members()[0] != 1 {
			t.Errorf("dedup failed: %v", g.Members())
		}
		if got, want := g.Rank(), -1; c.Rank() == 1 {
			if g.Rank() != 0 {
				t.Errorf("member index = %d, want 0", g.Rank())
			}
		} else if got != want {
			t.Errorf("non-member index = %d, want -1", got)
		}
		data := []float64{float64(c.Rank())}
		if err := g.Broadcast(data, 1); err != nil {
			return err
		}
		if err := g.AllreduceMean(data); err != nil {
			return err
		}
		if data[0] != float64(c.Rank()) {
			t.Errorf("singleton group modified data: %v", data)
		}
		return nil
	})
}

func TestGroupInvalidMembershipPanics(t *testing.T) {
	fab := NewInprocFabric(2)
	c := NewCommunicator(fab.Endpoint(0))
	for name, members := range map[string][]int{
		"empty":        {},
		"out-of-range": {0, 5},
		"negative":     {-1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s membership did not panic", name)
				}
			}()
			c.Group(members)
		}()
	}
}

func TestGroupBroadcastBadRootPanicsOnEveryRank(t *testing.T) {
	// A non-member root must fail identically on every rank — member or
	// not — because a divergent per-rank outcome would desynchronize the
	// SPMD collective schedule.
	runRanks(t, 3, func(c *Communicator) error {
		g := c.Group([]int{0, 1})
		var buf []float64
		if g.Contains(c.Rank()) {
			buf = []float64{1}
		}
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			_ = g.Broadcast(buf, 2) // 2 is not a member
			return
		}()
		if !panicked {
			t.Errorf("rank %d: non-member root did not panic", c.Rank())
		}
		return nil
	})
}

// TestHierarchicalBitEqualsFlatOnIntegerData is the bit-equality gate for
// the grouped gradient path: on integer-valued data every partial sum is
// exactly representable, so the hierarchical algorithm's regrouped
// summation must agree with the flat ring bit for bit. (For arbitrary
// floats the two group additions differently and agree only to rounding —
// see HierarchicalAllreduceMean.)
func TestHierarchicalBitEqualsFlatOnIntegerData(t *testing.T) {
	const p = 6
	const n = 41
	rng := rand.New(rand.NewSource(11))
	inputs := make([][]float64, p)
	for r := range inputs {
		inputs[r] = make([]float64, n)
		for i := range inputs[r] {
			inputs[r][i] = float64(rng.Intn(2001) - 1000)
		}
	}
	run := func(groupSize int) [][]float64 {
		out := make([][]float64, p)
		runRanks(t, p, func(c *Communicator) error {
			data := append([]float64(nil), inputs[c.Rank()]...)
			var err error
			if groupSize == 0 {
				err = c.AllreduceMean(data)
			} else {
				err = c.HierarchicalAllreduceMean(data, groupSize)
			}
			out[c.Rank()] = data
			return err
		})
		return out
	}
	flat := run(0)
	for _, gs := range []int{2, 3, 4} {
		hier := run(gs)
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if hier[r][i] != flat[r][i] {
					t.Fatalf("groupSize %d rank %d elem %d: hierarchical %v != flat %v",
						gs, r, i, hier[r][i], flat[r][i])
				}
			}
		}
	}
}

// TestFuserGroupSizeBitEqualsFlatOnIntegerData: the fusion path with
// SetGroupSize must land the same (integer-exact) averages as the flat
// fused allreduce, chunk boundaries unchanged.
func TestFuserGroupSizeBitEqualsFlatOnIntegerData(t *testing.T) {
	const p = 4
	run := func(groupSize int) [][]float64 {
		out := make([][]float64, p)
		runRanks(t, p, func(c *Communicator) error {
			rng := rand.New(rand.NewSource(int64(31)))
			ts := makeIntTensors(rng, c.Rank())
			fu := NewFuser(c, 64) // tiny budget: several chunks
			fu.SetGroupSize(groupSize)
			for _, tt := range ts {
				fu.Add(tt)
			}
			if err := fu.Flush(); err != nil {
				return err
			}
			var flatOut []float64
			for _, tt := range ts {
				flatOut = append(flatOut, tt.Data...)
			}
			out[c.Rank()] = flatOut
			return nil
		})
		return out
	}
	flat := run(0)
	hier := run(2)
	for r := 0; r < p; r++ {
		for i := range flat[r] {
			if flat[r][i] != hier[r][i] {
				t.Fatalf("rank %d elem %d: grouped fuser %v != flat %v", r, i, hier[r][i], flat[r][i])
			}
		}
	}
}

// makeIntTensors builds a deterministic per-rank set of integer-valued
// tensors (exactly summable across ranks, so fused averages are exact).
func makeIntTensors(rng *rand.Rand, rank int) []*tensor.Tensor {
	sizes := []int{3, 9, 5, 14, 2}
	out := make([]*tensor.Tensor, 0, len(sizes))
	for _, n := range sizes {
		t := tensor.New(n)
		for i := range t.Data {
			t.Data[i] = float64(rng.Intn(201) - 100 + rank)
		}
		out = append(out, t)
	}
	return out
}
