package comm

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// efRoundTrip pushes one vector through a world-1 fused exchange with the
// given accumulator and returns the decoded (transmitted) vector. At world
// 1 the compressed mean is exactly dec(enc(x+r)), which is what every peer
// would attribute to this rank.
func efRoundTrip(t *testing.T, c *Communicator, ef *ErrorFeedback, src []float64) []float64 {
	t.Helper()
	fu := NewFuser(c, 1<<20)
	fu.SetErrorFeedback(ef)
	ten := tensor.FromSlice(append([]float64(nil), src...), len(src))
	fu.Add(ten)
	if err := fu.Flush(); err != nil {
		t.Errorf("flush: %v", err) // Errorf: also called from rank goroutines
	}
	return ten.Data
}

// TestErrorFeedbackTelescopes pins the defining property of error
// feedback: over any horizon, the sum of what was actually transmitted
// plus the final residual equals the sum of the true payloads. With
// integer-valued inputs every intermediate quantity is integer-valued
// (Top-K transmits exact entries), so the identity must hold exactly; the
// float variant allows one rounding per compensation add.
func TestErrorFeedbackTelescopes(t *testing.T) {
	const n = 9
	const rounds = 50
	for _, tc := range []struct {
		name  string
		codec Codec
		gen   func(r *rand.Rand, i int) float64
		exact bool
	}{
		{"topk-int", TopKCodec{K: 2}, func(r *rand.Rand, i int) float64 { return float64(r.Intn(21) - 10) }, true},
		{"topk-frac-float", TopKCodec{FractionK: 0.34}, func(r *rand.Rand, i int) float64 { return r.NormFloat64() }, false},
		{"float16-int", Float16Codec{}, func(r *rand.Rand, i int) float64 { return float64(r.Intn(21) - 10) }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fab := NewInprocFabric(1)
			c := NewCommunicator(fab.Endpoint(0))
			ef := NewErrorFeedback(tc.codec)
			rng := rand.New(rand.NewSource(42))
			sumTrue := make([]float64, n)
			sumSent := make([]float64, n)
			for step := 0; step < rounds; step++ {
				src := make([]float64, n)
				for i := range src {
					src[i] = tc.gen(rng, i)
					sumTrue[i] += src[i]
				}
				for i, v := range efRoundTrip(t, c, ef, src) {
					sumSent[i] += v
				}
			}
			res := ef.Residual(0)
			if len(res) != n {
				t.Fatalf("residual slot length %d, want %d", len(res), n)
			}
			for i := range sumTrue {
				got := sumSent[i] + res[i]
				if tc.exact {
					if got != sumTrue[i] {
						t.Errorf("elem %d: sent+residual = %v, want exactly %v", i, got, sumTrue[i])
					}
				} else if diff := math.Abs(got - sumTrue[i]); diff > 1e-9*(1+math.Abs(sumTrue[i])) {
					t.Errorf("elem %d: sent+residual = %v, want %v (diff %g)", i, got, sumTrue[i], diff)
				}
			}
		})
	}
}

// TestErrorFeedbackSlotReshape: a length change at a chunk ordinal is a
// schedule reshape — the residual for that slot must reset rather than
// alias stale error mass into an unrelated tensor group.
func TestErrorFeedbackSlotReshape(t *testing.T) {
	fab := NewInprocFabric(1)
	c := NewCommunicator(fab.Endpoint(0))
	ef := NewErrorFeedback(TopKCodec{K: 1})
	efRoundTrip(t, c, ef, []float64{4, 3, 2, 1})
	res := ef.Residual(0)
	if len(res) != 4 {
		t.Fatalf("residual length %d, want 4", len(res))
	}
	nonzero := false
	for _, v := range res {
		nonzero = nonzero || v != 0
	}
	if !nonzero {
		t.Fatalf("expected nonzero residual after k=1 of 4 entries")
	}
	// Reshaped schedule: same ordinal, different length.
	got := efRoundTrip(t, c, ef, []float64{0, 0, 5, 0, 0, 0})
	want := []float64{0, 0, 5, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reshaped exchange elem %d = %v, want %v (stale residual leaked)", i, got[i], want[i])
		}
	}
	if len(ef.Residual(0)) != 6 {
		t.Fatalf("residual slot not resized: %d", len(ef.Residual(0)))
	}
}

// TestTopKTieBreakOrderStable pins the index tiebreak: equal magnitudes
// must be kept lowest-index-first, as a pure function of (value, index) —
// any other rule lets ranks with permuted-but-equal intermediate state
// select different entries, which error feedback silently amplifies into
// divergent residuals.
func TestTopKTieBreakOrderStable(t *testing.T) {
	codec := TopKCodec{K: 3}
	src := []float64{1, -1, 1, -1, 2, 1}
	payload := codec.Encode(src)
	dec, err := codec.Decode(payload, len(src))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// |2| wins outright; the |1| tie must resolve to indices 0 and 1.
	want := []float64{1, -1, 0, 0, 2, 0}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("elem %d = %v, want %v (payload %v)", i, dec[i], want[i], payload)
		}
	}
	// -0 and +0 carry the same magnitude key, so the tie resolves to the
	// lower index: payload must select indices {0, 2}, never {1, 2}.
	payload = TopKCodec{K: 2}.Encode([]float64{math.Copysign(0, -1), 0, 3})
	if payload[1] != 0 || payload[3] != 2 {
		t.Fatalf("zero-tie selected indices {%v, %v}, want {0, 2}", payload[1], payload[3])
	}
}

// TestTopKTieCrossRankEquality is the cross-rank pin for the tiebreak fix:
// every rank compresses tie-heavy vectors inside a chaos-scheduled fused
// exchange with error feedback, and the averaged results must be
// bit-identical on every rank, every round. Before the order-stable
// tiebreak, ranks could legally disagree on which tied entry survived,
// which diverges the residual accumulators and breaks SPMD consensus.
func TestTopKTieCrossRankEquality(t *testing.T) {
	const p = 4
	const n = 16
	const rounds = 6
	fab := NewChaosFabric(NewInprocFabric(p), p, ChaosConfig{
		Seed:         9,
		MinLatency:   5 * time.Microsecond,
		MaxLatency:   80 * time.Microsecond,
		DropRate:     0.05,
		MaxRetries:   25,
		RetryBackoff: 5 * time.Microsecond,
	})
	results := make([][][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewCommunicator(fab.Endpoint(r))
			ef := NewErrorFeedback(TopKCodec{K: 4})
			for round := 0; round < rounds; round++ {
				// Many repeated magnitudes: (r+round) mod 3 cycles a handful
				// of values so threshold ties are guaranteed.
				src := make([]float64, n)
				for i := range src {
					src[i] = float64((r+round+i)%3 - 1)
				}
				results[r] = append(results[r], efRoundTrip(t, c, ef, src))
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for r := 1; r < p; r++ {
		for round := 0; round < rounds; round++ {
			checkEqual(t, fmt.Sprintf("tie round=%d", round), r, results[r][round], results[0][round])
		}
	}
}

// TestCodecEncodeIntoSteadyStateAllocs: the compensate/encode/decode cycle
// must be allocation-free at steady state — the ISSUE-level guarantee that
// turning compression on does not reintroduce per-step garbage into the
// zero-alloc training loop.
func TestCodecEncodeIntoSteadyStateAllocs(t *testing.T) {
	const n = 256
	src := make([]float64, n)
	for i := range src {
		src[i] = math.Sin(float64(i))
	}
	for _, codec := range []Codec{TopKCodec{K: 16}, Float16Codec{}} {
		dst := make([]float64, codec.CompressedLen(n))
		dec := make([]float64, n)
		enc := codec.(codecEncoderInto)
		decI := codec.(codecDecoderInto)
		// Warm the sorter pool.
		enc.EncodeInto(dst, src)
		allocs := testing.AllocsPerRun(50, func() {
			payload := enc.EncodeInto(dst, src)
			if err := decI.DecodeInto(dec, payload); err != nil {
				t.Fatalf("decode: %v", err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per encode/decode round, want 0", codec.Name(), allocs)
		}
	}
}
