package comm

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// runRanks executes fn on every rank of a fresh in-process fabric and fails
// the test on any rank error.
func runRanks(t *testing.T, p int, fn func(c *Communicator) error) {
	t.Helper()
	fab := NewInprocFabric(p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(NewCommunicator(fab.Endpoint(r)))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestFuserTensorLargerThanBudget(t *testing.T) {
	// One tensor bigger than the fusion budget must form its own chunk and
	// still be averaged correctly.
	const p = 3
	const n = 64 // 512 bytes > 128-byte budget
	var mu sync.Mutex
	results := map[int]*tensor.Tensor{}
	runRanks(t, p, func(c *Communicator) error {
		big := tensor.Full(float64(c.Rank()), n)
		small := tensor.Full(float64(c.Rank()+10), 2)
		fu := NewFuser(c, 128)
		fu.Add(big)
		fu.Add(small)
		if err := fu.Flush(); err != nil {
			return err
		}
		mu.Lock()
		results[c.Rank()] = big
		mu.Unlock()
		return nil
	})
	want := (0.0 + 1 + 2) / 3
	for r, got := range results {
		for i := 0; i < n; i++ {
			if got.Data[i] != want {
				t.Fatalf("rank %d big[%d] = %v, want %v", r, i, got.Data[i], want)
			}
		}
	}
}

func TestFuserZeroSizeTensors(t *testing.T) {
	// Zero-element tensors must pass through without deadlocking or
	// corrupting neighbouring tensors.
	const p = 2
	runRanks(t, p, func(c *Communicator) error {
		empty := tensor.New(0)
		v := tensor.Full(float64(c.Rank()), 4)
		empty2 := tensor.New(0)
		fu := NewFuser(c, 1024)
		fu.Add(empty)
		fu.Add(v)
		fu.Add(empty2)
		if err := fu.Flush(); err != nil {
			return err
		}
		for i := range v.Data {
			if v.Data[i] != 0.5 {
				t.Errorf("rank %d v[%d] = %v, want 0.5", c.Rank(), i, v.Data[i])
			}
		}
		return nil
	})
}

func TestFuserOnlyZeroSizeTensors(t *testing.T) {
	// A flush whose every tensor is empty must not emit wire traffic that
	// could deadlock; it should simply complete.
	runRanks(t, 2, func(c *Communicator) error {
		fu := NewFuser(c, 1024)
		fu.Add(tensor.New(0))
		fu.Add(tensor.New(0))
		return fu.Flush()
	})
}

func TestFuserFlushEmptyBuffer(t *testing.T) {
	// Flush with nothing added is a no-op, and a second Flush after a
	// completed one is too.
	runRanks(t, 2, func(c *Communicator) error {
		fu := NewFuser(c, 1024)
		if err := fu.Flush(); err != nil {
			return err
		}
		v := tensor.Full(float64(c.Rank()), 3)
		fu.Add(v)
		if err := fu.Flush(); err != nil {
			return err
		}
		return fu.Flush()
	})
}

func TestFuserStreamingChunks(t *testing.T) {
	// Streaming interface: chunks become available incrementally, each chunk
	// waits independently, and chunk boundaries are deterministic.
	const p = 2
	runRanks(t, p, func(c *Communicator) error {
		ts := make([]*tensor.Tensor, 6)
		for i := range ts {
			ts[i] = tensor.Full(float64(c.Rank()+i), 4) // 32 bytes each
		}
		fu := NewFuser(c, 64) // two tensors per chunk
		var chunks []*Chunk
		for _, x := range ts {
			fu.Add(x)
			chunks = append(chunks, fu.TakeLaunched()...)
		}
		chunks = append(chunks, fu.FlushAsync()...)
		if len(chunks) != 3 {
			t.Errorf("rank %d: got %d chunks, want 3", c.Rank(), len(chunks))
		}
		for _, ch := range chunks {
			if len(ch.Tensors()) != 2 {
				t.Errorf("rank %d: chunk holds %d tensors, want 2", c.Rank(), len(ch.Tensors()))
			}
			if err := ch.Wait(); err != nil {
				return err
			}
		}
		for i, x := range ts {
			want := float64(i) + 0.5 // mean of ranks 0 and 1 offsets
			for _, v := range x.Data {
				if v != want {
					t.Errorf("rank %d tensor %d = %v, want %v", c.Rank(), i, v, want)
				}
			}
		}
		return nil
	})
}

func TestFuserReuseAfterFlushKeepsTakenChunks(t *testing.T) {
	// Chunks handed out via TakeLaunched must stay valid when the fuser is
	// flushed and reused: Flush drops its backing array instead of
	// recycling it underneath the caller's slice.
	runRanks(t, 2, func(c *Communicator) error {
		fu := NewFuser(c, 8) // every tensor launches immediately
		first := tensor.Full(float64(c.Rank()), 2)
		fu.Add(first)
		taken := fu.TakeLaunched()
		if len(taken) != 1 || taken[0].Tensors()[0] != first {
			t.Errorf("rank %d: unexpected taken chunks", c.Rank())
		}
		if err := fu.Flush(); err != nil {
			return err
		}
		second := tensor.Full(float64(c.Rank()+10), 2)
		fu.Add(second)
		if err := fu.Flush(); err != nil {
			return err
		}
		if taken[0].Tensors()[0] != first {
			t.Errorf("rank %d: taken chunk was overwritten by post-Flush launch", c.Rank())
		}
		return nil
	})
}

func TestWaitAllAggregatesHandles(t *testing.T) {
	runRanks(t, 2, func(c *Communicator) error {
		a := []float64{1, 2, 3}
		b := []float64{4, 5}
		h1 := c.AllreduceSumAsync(a)
		h2 := c.AllreduceMeanAsync(b)
		if err := WaitAll(h1, h2); err != nil {
			return err
		}
		if a[0] != 2 || b[0] != 4 {
			t.Errorf("rank %d: a=%v b=%v", c.Rank(), a, b)
		}
		return nil
	})
}

func TestAllgatherVAsyncMatchesSync(t *testing.T) {
	const p = 3
	runRanks(t, p, func(c *Communicator) error {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank()*10 + i)
		}
		h := c.AllgatherVAsync(mine)
		blocks, err := h.Wait()
		if err != nil {
			return err
		}
		if len(blocks) != p {
			t.Errorf("rank %d: %d blocks, want %d", c.Rank(), len(blocks), p)
		}
		for r, blk := range blocks {
			if len(blk) != r+1 {
				t.Errorf("rank %d: block %d has len %d, want %d", c.Rank(), r, len(blk), r+1)
				continue
			}
			for i, v := range blk {
				if v != float64(r*10+i) {
					t.Errorf("rank %d: block %d[%d] = %v", c.Rank(), r, i, v)
				}
			}
		}
		return nil
	})
}

func TestAllgatherVAsyncInterleaved(t *testing.T) {
	// Several async allgathers in flight simultaneously must not cross-match
	// as long as all ranks issue them in the same order.
	const p = 2
	const rounds = 5
	runRanks(t, p, func(c *Communicator) error {
		handles := make([]*GatherHandle, rounds)
		for i := 0; i < rounds; i++ {
			handles[i] = c.AllgatherVAsync([]float64{float64(100*i + c.Rank())})
		}
		for i, h := range handles {
			blocks, err := h.Wait()
			if err != nil {
				return err
			}
			for r, blk := range blocks {
				if len(blk) != 1 || blk[0] != float64(100*i+r) {
					t.Errorf("rank %d round %d: block %d = %v", c.Rank(), i, r, blk)
				}
			}
		}
		return nil
	})
}
