package comm

import (
	"fmt"
	"sort"
)

// Group is a rank-subset sub-communicator: collectives over a sorted subset
// of the parent communicator's ranks, sharing its transport and tag
// sequence. K-FAC's distribution plans use groups to move eigenbases only
// to a factor's gradient workers (MEM-OPT/HYBRID placement) and to broadcast
// preconditioned gradients to the ranks that did not compute them.
//
// Contract — group collectives ride the parent's tag-range scheme, so the
// SPMD ordering rule extends to them unchanged: EVERY rank of the parent
// communicator must invoke every group collective, in the same program
// order, whether or not it is a member. Each call reserves exactly one tag
// namespace on every rank (keeping subsequent collectives aligned); ranks
// outside the group return immediately after the reservation and never
// touch the data argument, so non-members may pass nil.
type Group struct {
	c       *Communicator
	members []int // sorted, deduplicated transport ranks
	index   int   // this rank's position in members, -1 for non-members
}

// Group builds a sub-communicator over the given transport ranks. The
// member list is copied, sorted, and deduplicated; it must be non-empty
// and every rank must be within [0, Size). Invalid membership is a
// programming error (plans are validated at construction) and panics.
func (c *Communicator) Group(members []int) *Group {
	if len(members) == 0 {
		panic("comm: Group needs at least one member")
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	out := ms[:1]
	for _, m := range ms[1:] {
		if m != out[len(out)-1] {
			out = append(out, m)
		}
	}
	for _, m := range out {
		if m < 0 || m >= c.Size() {
			panic(fmt.Sprintf("comm: Group member %d outside world [0,%d)", m, c.Size()))
		}
	}
	g := &Group{c: c, members: out, index: -1}
	for i, m := range out {
		if m == c.Rank() {
			g.index = i
		}
	}
	return g
}

// Members returns the sorted member ranks. The slice is shared; do not
// mutate it.
func (g *Group) Members() []int { return g.members }

// Size returns the number of member ranks.
func (g *Group) Size() int { return len(g.members) }

// Rank returns this rank's index within the group, or -1 for non-members.
func (g *Group) Rank() int { return g.index }

// Contains reports whether the transport rank is a group member.
func (g *Group) Contains(rank int) bool {
	i := sort.SearchInts(g.members, rank)
	return i < len(g.members) && g.members[i] == rank
}

// indexOf returns rank's position in members, or -1.
func (g *Group) indexOf(rank int) int {
	i := sort.SearchInts(g.members, rank)
	if i < len(g.members) && g.members[i] == rank {
		return i
	}
	return -1
}

// Broadcast distributes root's data to every group member (in place on
// non-root members) over the same binomial tree Communicator.Broadcast
// uses; a group spanning the whole world is wire-identical to it. root is
// a transport rank and must be a member — a non-member root is a
// programming error and panics identically on every rank (a divergent
// per-rank error would desynchronize the SPMD schedule). Non-members
// reserve the tag namespace and return (data may be nil there).
func (g *Group) Broadcast(data []float64, root int) error {
	base := g.c.nextOp()
	g.mustContain(root)
	return g.broadcastTagged(data, root, base)
}

// mustContain panics when root is not a member — uniformly on every rank,
// member or not, since the member list is shared state.
func (g *Group) mustContain(root int) {
	if g.indexOf(root) < 0 {
		panic(fmt.Sprintf("comm: group broadcast root %d is not a member of %v", root, g.members))
	}
}

// BroadcastAsync starts an asynchronous group broadcast. The tag namespace
// is reserved synchronously at call time on every rank (members and
// non-members alike), preserving the SPMD ordering contract for overlapping
// operations; the pipelined K-FAC engine streams per-factor eigenbases with
// it. The caller must not touch data until Wait returns. Non-members get an
// already-completed handle.
func (g *Group) BroadcastAsync(data []float64, root int) *Handle {
	base := g.c.nextOp()
	g.mustContain(root)
	if g.index < 0 || len(g.members) == 1 {
		return completedHandle()
	}
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = g.broadcastTagged(data, root, base)
	}()
	return h
}

// broadcastTagged is the group broadcast body with an externally reserved
// tag base; callers have already validated root membership.
func (g *Group) broadcastTagged(data []float64, root int, base uint64) error {
	n := len(g.members)
	if g.index < 0 || n == 1 {
		return nil
	}
	rootIdx := g.indexOf(root)
	rel := mod(g.index-rootIdx, n)
	return g.c.broadcastTree(data, base, rel, n, func(peerRel int) int {
		return g.members[mod(peerRel+rootIdx, n)]
	})
}

// AllreduceSum sums data elementwise across the group members, in place on
// members, using the ring algorithm over the member list. Non-members
// reserve the tag namespace and return with data untouched.
func (g *Group) AllreduceSum(data []float64) error {
	base := g.c.nextOp()
	n := len(g.members)
	if g.index < 0 || n == 1 {
		return nil
	}
	counts, displs := split(len(data), n)
	rg := ring{
		next:  g.members[mod(g.index+1, n)],
		prev:  g.members[mod(g.index-1, n)],
		index: g.index,
		size:  n,
	}
	if err := g.c.ringReduceScatter(data, counts, displs, rg, base, 0); err != nil {
		return err
	}
	return g.c.ringAllgatherChunks(data, counts, displs, rg, base, n)
}

// AllreduceMean averages data elementwise across the group members, in
// place on members. Non-members reserve the tag namespace and return with
// data untouched.
func (g *Group) AllreduceMean(data []float64) error {
	if err := g.AllreduceSum(data); err != nil {
		return err
	}
	if g.index < 0 {
		return nil
	}
	inv := 1 / float64(len(g.members))
	for i := range data {
		data[i] *= inv
	}
	return nil
}
