package comm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/testenv"
)

// SPMD conformance suite: every collective — synchronous, fused, and async
// — must produce identical results on every rank, equal to an
// independently computed reference, for world sizes 1–8, while a
// ChaosTransport injects latency (which reorders deliveries across tags)
// and retried drops. Inputs are small integers so all reductions are exact
// in float64 and "identical" means bit-identical.
//
// This is the test the SPMD ordering contract of docs/ARCHITECTURE.md was
// previously missing: the collectives were only exercised on a
// well-behaved in-memory transport where messages never arrive late or
// out of order relative to their issue.

// confVec derives a deterministic small-integer vector for one rank.
func confVec(n, rank int, seed int64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64((int(seed)*31+rank*7+i*3)%21 - 10)
	}
	return v
}

// confSum is the elementwise sum of every rank's confVec.
func confSum(n, p int, seed int64) []float64 {
	out := make([]float64, n)
	for r := 0; r < p; r++ {
		for i, v := range confVec(n, r, seed) {
			out[i] += v
		}
	}
	return out
}

// confOut is one rank's results for the whole collective script.
type confOut struct {
	sum, mean, bcast   []float64
	gatherv            [][]float64
	reduce             []float64 // meaningful on root only
	rsChunk            []float64 // per-rank
	rsOffset, rsLength int
	gather             [][]float64 // root only
	scatter            []float64   // per-rank
	hier2, hier3       []float64
	compressed         []float64
	asyncSum           []float64
	asyncGather        [][]float64
	fused              [][]float64
	efFused            [][]float64
}

// confScript runs the identical collective program on one rank. Every rank
// must call the same collectives in the same order — the SPMD contract.
func confScript(t *testing.T, c *Communicator, seed int64) *confOut {
	t.Helper()
	r, p := c.Rank(), c.Size()
	root := int(seed) % p
	o := &confOut{}
	const n = 23

	o.sum = confVec(n, r, seed)
	if err := c.AllreduceSum(o.sum); err != nil {
		t.Errorf("rank %d AllreduceSum: %v", r, err)
		return o
	}

	o.mean = confVec(n, r, seed+1)
	if err := c.AllreduceMean(o.mean); err != nil {
		t.Errorf("rank %d AllreduceMean: %v", r, err)
		return o
	}

	o.bcast = confVec(n, r, seed+2)
	if r == root {
		o.bcast = confVec(n, root, seed+100)
	}
	if err := c.Broadcast(o.bcast, root); err != nil {
		t.Errorf("rank %d Broadcast: %v", r, err)
		return o
	}

	var err error
	o.gatherv, err = c.AllgatherV(confVec(r+1, r, seed+3))
	if err != nil {
		t.Errorf("rank %d AllgatherV: %v", r, err)
		return o
	}

	if err := c.Barrier(); err != nil {
		t.Errorf("rank %d Barrier: %v", r, err)
		return o
	}

	o.reduce = confVec(n, r, seed+4)
	if err := c.Reduce(o.reduce, root); err != nil {
		t.Errorf("rank %d Reduce: %v", r, err)
		return o
	}

	rsIn := confVec(n, r, seed+5)
	o.rsChunk, err = c.ReduceScatter(rsIn)
	if err != nil {
		t.Errorf("rank %d ReduceScatter: %v", r, err)
		return o
	}
	_, o.rsOffset, o.rsLength = c.OwnedChunk(n)

	o.gather, err = c.Gather(confVec(r+2, r, seed+6), root)
	if err != nil {
		t.Errorf("rank %d Gather: %v", r, err)
		return o
	}

	var chunks [][]float64
	if r == root {
		chunks = make([][]float64, p)
		for i := range chunks {
			chunks[i] = confVec(i+1, i, seed+7)
		}
	}
	o.scatter, err = c.Scatter(chunks, root)
	if err != nil {
		t.Errorf("rank %d Scatter: %v", r, err)
		return o
	}

	o.hier2 = confVec(n, r, seed+8)
	if err := c.HierarchicalAllreduceMean(o.hier2, 2); err != nil {
		t.Errorf("rank %d Hierarchical(2): %v", r, err)
		return o
	}
	o.hier3 = confVec(n, r, seed+9)
	if err := c.HierarchicalAllreduceMean(o.hier3, 3); err != nil {
		t.Errorf("rank %d Hierarchical(3): %v", r, err)
		return o
	}

	o.compressed = confVec(n, r, seed+10)
	if _, err := c.CompressedAllreduceMean(o.compressed, Float16Codec{}); err != nil {
		t.Errorf("rank %d CompressedAllreduceMean: %v", r, err)
		return o
	}

	// Async variants, deliberately overlapped: the sum-allreduce and the
	// allgather are in flight simultaneously, and the fused chunks launch
	// while both are outstanding. Issue order is identical on all ranks;
	// completion order is whatever the chaos latency makes of it.
	o.asyncSum = confVec(n, r, seed+11)
	h1 := c.AllreduceSumAsync(o.asyncSum)
	gh := c.AllgatherVAsync(confVec(r+1, r, seed+12))

	fu := NewFuser(c, 8*10) // tiny budget: multiple chunks in flight
	tensors := make([]*tensor.Tensor, 3)
	for i := range tensors {
		tensors[i] = tensor.FromSlice(confVec(7, r, seed+13+int64(i)), 7)
		fu.Add(tensors[i])
	}
	if err := fu.Flush(); err != nil {
		t.Errorf("rank %d fused flush: %v", r, err)
		return o
	}
	for _, ten := range tensors {
		o.fused = append(o.fused, ten.Data)
	}
	if err := h1.Wait(); err != nil {
		t.Errorf("rank %d async allreduce: %v", r, err)
		return o
	}
	o.asyncGather, err = gh.Wait()
	if err != nil {
		t.Errorf("rank %d async allgather: %v", r, err)
		return o
	}

	// Fused exchange through error-feedback compression: float16 is exact
	// on the small-integer inputs, so residuals stay zero and the result
	// must equal the rank-order accumulated mean. This exercises the
	// compressed chunk path (payload allgather + decode + residual update)
	// under the same chaos as every other collective.
	ef := NewErrorFeedback(Float16Codec{})
	efFu := NewFuser(c, 8*10)
	efFu.SetErrorFeedback(ef)
	efTensors := make([]*tensor.Tensor, 3)
	for i := range efTensors {
		efTensors[i] = tensor.FromSlice(confVec(7, r, seed+16+int64(i)), 7)
		efFu.Add(efTensors[i])
	}
	if err := efFu.Flush(); err != nil {
		t.Errorf("rank %d EF fused flush: %v", r, err)
		return o
	}
	for _, ten := range efTensors {
		o.efFused = append(o.efFused, ten.Data)
	}
	return o
}

// checkEqual asserts bit-identical float slices.
func checkEqual(t *testing.T, what string, rank int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s rank %d: length %d, want %d", what, rank, len(got), len(want))
		return
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s rank %d: elem %d = %v, want %v", what, rank, i, got[i], want[i])
			return
		}
	}
}

// confReferenceMean replicates AllreduceMean's arithmetic: exact integer
// sum, then one multiply by 1/p.
func confReferenceMean(n, p int, seed int64) []float64 {
	out := confSum(n, p, seed)
	inv := 1 / float64(p)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// confCompressedMean replicates the compressed-mean arithmetic of both
// CompressedAllreduceMean and the compressed fused chunk path: decoded
// blocks accumulated with v·1/p in rank order, exact on small integers.
func confCompressedMean(n, p int, seed int64) []float64 {
	out := make([]float64, n)
	inv := 1 / float64(p)
	for r := 0; r < p; r++ {
		for i, v := range confVec(n, r, seed) {
			out[i] += v * inv
		}
	}
	return out
}

func runConformance(t *testing.T, p int, seed int64, cfg ChaosConfig) {
	t.Helper()
	fab := NewChaosFabric(NewInprocFabric(p), p, cfg)
	outs := make([]*confOut, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r] = confScript(t, NewCommunicator(fab.Endpoint(r)), seed)
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	const n = 23
	root := int(seed) % p

	wantSum := confSum(n, p, seed)
	wantMean := confReferenceMean(n, p, seed+1)
	wantBcast := confVec(n, root, seed+100)
	wantReduce := confSum(n, p, seed+4)
	wantRS := confSum(n, p, seed+5)
	wantAsync := confSum(n, p, seed+11)

	// CompressedAllreduceMean accumulates dec(block_r)·1/p in rank order;
	// small integers are exact in float16, so dec(block_r) = input_r.
	wantComp := confCompressedMean(n, p, seed+10)

	for r := 0; r < p; r++ {
		o := outs[r]
		checkEqual(t, "AllreduceSum", r, o.sum, wantSum)
		checkEqual(t, "AllreduceMean", r, o.mean, wantMean)
		checkEqual(t, "Broadcast", r, o.bcast, wantBcast)
		for q := 0; q < p; q++ {
			checkEqual(t, fmt.Sprintf("AllgatherV[%d]", q), r, o.gatherv[q], confVec(q+1, q, seed+3))
			checkEqual(t, fmt.Sprintf("AllgatherVAsync[%d]", q), r, o.asyncGather[q], confVec(q+1, q, seed+12))
		}
		if r == root {
			checkEqual(t, "Reduce(root)", r, o.reduce, wantReduce)
			for q := 0; q < p; q++ {
				checkEqual(t, fmt.Sprintf("Gather[%d]", q), r, o.gather[q], confVec(q+2, q, seed+6))
			}
		} else {
			// Non-root Reduce inputs must be left untouched.
			checkEqual(t, "Reduce(non-root)", r, o.reduce, confVec(n, r, seed+4))
		}
		checkEqual(t, "ReduceScatter", r, o.rsChunk, wantRS[o.rsOffset:o.rsOffset+o.rsLength])
		checkEqual(t, "Scatter", r, o.scatter, confVec(r+1, r, seed+7))
		checkEqual(t, "Hierarchical(2)", r, o.hier2, confReferenceMean(n, p, seed+8))
		checkEqual(t, "Hierarchical(3)", r, o.hier3, confReferenceMean(n, p, seed+9))
		checkEqual(t, "CompressedAllreduceMean", r, o.compressed, wantComp)
		checkEqual(t, "AllreduceSumAsync", r, o.asyncSum, wantAsync)
		for i := 0; i < 3; i++ {
			checkEqual(t, fmt.Sprintf("Fused[%d]", i), r, o.fused[i], confReferenceMean(7, p, seed+13+int64(i)))
			checkEqual(t, fmt.Sprintf("EFFused[%d]", i), r, o.efFused[i], confCompressedMean(7, p, seed+16+int64(i)))
		}
	}
}

// TestSPMDConformanceUnderChaos runs the full collective script for world
// sizes 1–8 under injected latency + retried drops, across several seeds
// (property-style: the fault schedule is different for every seed, the
// results must never be).
func TestSPMDConformanceUnderChaos(t *testing.T) {
	worlds := []int{1, 2, 3, 4, 5, 6, 7, 8}
	seeds := []int64{1, 2, 3}
	if testenv.Short() {
		worlds = []int{1, 2, 3, 5, 8}
		seeds = []int64{1}
	}
	for _, p := range worlds {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("world=%d/seed=%d", p, seed), func(t *testing.T) {
				t.Parallel()
				runConformance(t, p, seed, ChaosConfig{
					Seed:         seed,
					MinLatency:   5 * time.Microsecond,
					MaxLatency:   150 * time.Microsecond,
					DropRate:     0.05,
					MaxRetries:   25,
					RetryBackoff: 5 * time.Microsecond,
				})
			})
		}
	}
}

// TestConsensusCodecSwitchBoundary pins the autotuner's core protocol at
// the comm layer: each rank feeds a locally nondeterministic signal (the
// measured wall-clock cost of its own previous exchange) into a tiny
// consensus allreduce, thresholds the agreed value, and switches its
// error-feedback codec when the threshold trips. Because every input to
// the decision is a consensus output, the switch must land on the same
// iteration on every rank — under chaos latency and retried drops — and
// the exchanged tensors must stay bit-identical across ranks throughout,
// including the iterations after the mid-run switch to a sparsifying
// codec.
func TestConsensusCodecSwitchBoundary(t *testing.T) {
	worlds := []int{2, 3, 5}
	if testenv.Short() {
		worlds = []int{2, 3}
	}
	for _, p := range worlds {
		t.Run(fmt.Sprintf("world=%d", p), func(t *testing.T) {
			t.Parallel()
			const n = 24
			const iters = 20
			fab := NewChaosFabric(NewInprocFabric(p), p, ChaosConfig{
				Seed:         int64(p),
				MinLatency:   5 * time.Microsecond,
				MaxLatency:   100 * time.Microsecond,
				DropRate:     0.05,
				MaxRetries:   25,
				RetryBackoff: 5 * time.Microsecond,
			})
			type rankOut struct {
				switchIter int
				results    [][]float64
			}
			outs := make([]*rankOut, p)
			var wg sync.WaitGroup
			for r := 0; r < p; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					c := NewCommunicator(fab.Endpoint(r))
					ef := NewErrorFeedback(nil) // exact until the consensus trips
					ro := &rankOut{switchIter: -1}
					outs[r] = ro
					var cum, threshold float64
					for it := 0; it < iters; it++ {
						start := time.Now()
						fu := NewFuser(c, 1) // one chunk per tensor
						fu.SetErrorFeedback(ef)
						ten := tensor.FromSlice(confVec(n, r, int64(it)), n)
						fu.Add(ten)
						if err := fu.Flush(); err != nil {
							t.Errorf("rank %d iter %d flush: %v", r, it, err)
							return
						}
						ro.results = append(ro.results, append([]float64(nil), ten.Data...))
						// Local measurement — genuinely different on every
						// rank and every run — then consensus.
						sig := []float64{float64(time.Since(start).Nanoseconds())}
						if err := c.AllreduceMean(sig); err != nil {
							t.Errorf("rank %d iter %d consensus: %v", r, it, err)
							return
						}
						cum += sig[0]
						if it == 0 {
							threshold = 2 * cum
						}
						// Deterministic fallback a few iterations before the
						// end keeps the test flake-free if the first exchange
						// dwarfed all later ones; the trigger is still the
						// consensus value in the common case.
						if ro.switchIter < 0 && it > 0 && (cum > threshold || it == iters-4) {
							ef.SetCodec(TopKCodec{FractionK: 0.5})
							ro.switchIter = it + 1 // effective from the next exchange
						}
					}
				}(r)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for r := 1; r < p; r++ {
				if outs[r].switchIter != outs[0].switchIter {
					t.Errorf("rank %d switched at iter %d, rank 0 at %d", r, outs[r].switchIter, outs[0].switchIter)
				}
			}
			if outs[0].switchIter < 1 || outs[0].switchIter >= iters {
				t.Errorf("switch iteration %d outside (0, %d)", outs[0].switchIter, iters)
			}
			for r := 1; r < p; r++ {
				for it := range outs[0].results {
					checkEqual(t, fmt.Sprintf("switched exchange iter=%d", it), r, outs[r].results[it], outs[0].results[it])
				}
			}
		})
	}
}

// TestSPMDConformanceClean is the same script with no chaos — the control
// that separates "collective is wrong" from "collective is wrong under
// faults".
func TestSPMDConformanceClean(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("world=%d", p), func(t *testing.T) {
			t.Parallel()
			runConformance(t, p, 5, ChaosConfig{})
		})
	}
}
