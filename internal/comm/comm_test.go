package comm

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/tensor"
)

// runWorld executes fn on every rank of a fresh in-process world and fails
// the test on any per-rank error.
func runWorld(t *testing.T, p int, fn func(c *Communicator) error) {
	t.Helper()
	fab := NewInprocFabric(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(NewCommunicator(fab.Endpoint(r)))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestAllreduceSumSingleRank(t *testing.T) {
	runWorld(t, 1, func(c *Communicator) error {
		data := []float64{1, 2, 3}
		if err := c.AllreduceSum(data); err != nil {
			return err
		}
		if data[0] != 1 || data[2] != 3 {
			return fmt.Errorf("single-rank allreduce mutated data: %v", data)
		}
		return nil
	})
}

func TestAllreduceSumAcrossSizes(t *testing.T) {
	for _, p := range []int{2, 3, 4, 7, 8} {
		for _, n := range []int{1, 2, p - 1, p, p + 1, 100, 1023} {
			if n < 1 {
				continue
			}
			p, n := p, n
			t.Run(fmt.Sprintf("p%d_n%d", p, n), func(t *testing.T) {
				var mu sync.Mutex
				results := make(map[int][]float64)
				runWorld(t, p, func(c *Communicator) error {
					data := make([]float64, n)
					for i := range data {
						data[i] = float64(c.Rank()*1000 + i)
					}
					if err := c.AllreduceSum(data); err != nil {
						return err
					}
					mu.Lock()
					results[c.Rank()] = data
					mu.Unlock()
					return nil
				})
				// Expected sum: Σ_r (r*1000 + i) = 1000·p(p−1)/2 + p·i.
				for r := 0; r < p; r++ {
					for i := 0; i < n; i++ {
						want := 1000*float64(p*(p-1)/2) + float64(p*i)
						if math.Abs(results[r][i]-want) > 1e-9 {
							t.Fatalf("rank %d elem %d = %v, want %v", r, i, results[r][i], want)
						}
					}
				}
			})
		}
	}
}

func TestAllreduceMean(t *testing.T) {
	runWorld(t, 4, func(c *Communicator) error {
		data := []float64{float64(c.Rank())}
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		if math.Abs(data[0]-1.5) > 1e-12 {
			return fmt.Errorf("mean = %v, want 1.5", data[0])
		}
		return nil
	})
}

// Property: allreduce-sum equals the directly computed elementwise sum for
// random vectors and world sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(6)
		n := 1 + rng.Intn(64)
		inputs := make([][]float64, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			inputs[r] = make([]float64, n)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		fab := NewInprocFabric(p)
		got := make([][]float64, p)
		var wg sync.WaitGroup
		ok := true
		var mu sync.Mutex
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := NewCommunicator(fab.Endpoint(r))
				data := append([]float64(nil), inputs[r]...)
				if err := c.AllreduceSum(data); err != nil {
					mu.Lock()
					ok = false
					mu.Unlock()
					return
				}
				got[r] = data
			}(r)
		}
		wg.Wait()
		if !ok {
			return false
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if math.Abs(got[r][i]-want[i]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBroadcastFromEachRoot(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p%d_root%d", p, root), func(t *testing.T) {
				runWorld(t, p, func(c *Communicator) error {
					data := make([]float64, 17)
					if c.Rank() == root {
						for i := range data {
							data[i] = float64(i * i)
						}
					}
					if err := c.Broadcast(data, root); err != nil {
						return err
					}
					for i := range data {
						if data[i] != float64(i*i) {
							return fmt.Errorf("rank %d elem %d = %v", c.Rank(), i, data[i])
						}
					}
					return nil
				})
			})
		}
	}
}

func TestAllgatherV(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		p := p
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			runWorld(t, p, func(c *Communicator) error {
				// Rank r contributes r+1 elements, all valued r.
				mine := make([]float64, c.Rank()+1)
				for i := range mine {
					mine[i] = float64(c.Rank())
				}
				got, err := c.AllgatherV(mine)
				if err != nil {
					return err
				}
				if len(got) != p {
					return fmt.Errorf("got %d blocks, want %d", len(got), p)
				}
				for r := 0; r < p; r++ {
					if len(got[r]) != r+1 {
						return fmt.Errorf("block %d len %d, want %d", r, len(got[r]), r+1)
					}
					for _, v := range got[r] {
						if v != float64(r) {
							return fmt.Errorf("block %d has value %v", r, v)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestBarrier(t *testing.T) {
	runWorld(t, 5, func(c *Communicator) error {
		return c.Barrier()
	})
}

func TestAsyncAllreduceOverlap(t *testing.T) {
	// Launch several async allreduces before waiting on any, exercising tag
	// separation between in-flight collectives.
	runWorld(t, 4, func(c *Communicator) error {
		const k = 5
		bufs := make([][]float64, k)
		handles := make([]*Handle, k)
		for i := 0; i < k; i++ {
			bufs[i] = []float64{float64(c.Rank() + i)}
			handles[i] = c.AllreduceSumAsync(bufs[i])
		}
		for i := k - 1; i >= 0; i-- { // wait out of order
			if err := handles[i].Wait(); err != nil {
				return err
			}
		}
		for i := 0; i < k; i++ {
			want := float64(0+1+2+3) + 4*float64(i)
			if bufs[i][0] != want {
				return fmt.Errorf("op %d = %v, want %v", i, bufs[i][0], want)
			}
		}
		return nil
	})
}

func TestFuserAveragesTensors(t *testing.T) {
	runWorld(t, 3, func(c *Communicator) error {
		a := tensor.Full(float64(c.Rank()), 4)
		b := tensor.Full(float64(c.Rank()*10), 3, 3)
		if err := AllreduceMeanTensors(c, 0, a, b); err != nil {
			return err
		}
		for _, v := range a.Data {
			if math.Abs(v-1) > 1e-12 {
				return fmt.Errorf("a = %v, want 1", v)
			}
		}
		for _, v := range b.Data {
			if math.Abs(v-10) > 1e-12 {
				return fmt.Errorf("b = %v, want 10", v)
			}
		}
		return nil
	})
}

func TestFuserSmallLimitSplitsBatches(t *testing.T) {
	// A tiny limit forces one fused launch per tensor; results must be
	// identical to the single-launch case.
	runWorld(t, 2, func(c *Communicator) error {
		ts := make([]*tensor.Tensor, 6)
		for i := range ts {
			ts[i] = tensor.Full(float64(c.Rank()+i), 8)
		}
		if err := AllreduceMeanTensors(c, 1, ts...); err != nil {
			return err
		}
		for i, tt := range ts {
			want := float64(i) + 0.5
			for _, v := range tt.Data {
				if math.Abs(v-want) > 1e-12 {
					return fmt.Errorf("tensor %d = %v, want %v", i, v, want)
				}
			}
		}
		return nil
	})
}

func TestSplitCoversAll(t *testing.T) {
	for n := 0; n < 40; n++ {
		for p := 1; p <= 9; p++ {
			counts, displs := split(n, p)
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != n {
				t.Fatalf("split(%d,%d) counts sum %d", n, p, total)
			}
			if displs[p] != n {
				t.Fatalf("split(%d,%d) final displacement %d", n, p, displs[p])
			}
			// Chunks differ in size by at most one.
			for _, c := range counts {
				if c < n/p || c > n/p+1 {
					t.Fatalf("split(%d,%d) uneven chunk %d", n, p, c)
				}
			}
		}
	}
}

func TestInprocSendToInvalidRank(t *testing.T) {
	fab := NewInprocFabric(2)
	e := fab.Endpoint(0)
	if err := e.Send(5, 1, []float64{1}); err == nil {
		t.Error("expected error sending to invalid rank")
	}
	if _, err := e.Recv(context.Background(), -1, 1); err == nil {
		t.Error("expected error receiving from invalid rank")
	}
}

func TestInprocSendCopiesData(t *testing.T) {
	fab := NewInprocFabric(2)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	buf := []float64{1, 2, 3}
	if err := a.Send(1, 7, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender reuses its buffer
	got, err := b.Recv(context.Background(), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("Send must copy the payload")
	}
}

func TestMailboxOutOfOrderTags(t *testing.T) {
	fab := NewInprocFabric(2)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	if err := a.Send(1, 100, []float64{100}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, 200, []float64{200}); err != nil {
		t.Fatal(err)
	}
	// Receive in reverse tag order.
	got, err := b.Recv(context.Background(), 0, 200)
	if err != nil || got[0] != 200 {
		t.Fatalf("tag 200: %v %v", got, err)
	}
	got, err = b.Recv(context.Background(), 0, 100)
	if err != nil || got[0] != 100 {
		t.Fatalf("tag 100: %v %v", got, err)
	}
}

func TestTCPFabricAllreduce(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp test skipped in -short")
	}
	const p = 3
	// Reserve distinct loopback ports by listening on :0 first.
	addrs := make([]string, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fab, err := NewTCPFabric(r, addrs, 5*time.Second)
			if err != nil {
				errs[r] = err
				return
			}
			defer fab.Close()
			c := NewCommunicator(fab)
			data := []float64{float64(r), float64(r * 2)}
			if err := c.AllreduceSum(data); err != nil {
				errs[r] = err
				return
			}
			if data[0] != 3 || data[1] != 6 {
				errs[r] = fmt.Errorf("rank %d result %v", r, data)
				return
			}
			// Exercise broadcast and allgather over TCP too.
			bc := make([]float64, 4)
			if r == 1 {
				for i := range bc {
					bc[i] = 7
				}
			}
			if err := c.Broadcast(bc, 1); err != nil {
				errs[r] = err
				return
			}
			if bc[3] != 7 {
				errs[r] = fmt.Errorf("rank %d broadcast got %v", r, bc)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
