package comm

import (
	"fmt"
	"sync/atomic"
)

// Communicator provides MPI/Horovod-style collectives over a Transport.
// All ranks must call the same sequence of collectives (SPMD order); each
// collective consumes one sequence number that namespaces its wire tags, so
// payloads from different collectives can interleave on the transport
// without confusion.
type Communicator struct {
	t   Transport
	seq atomic.Uint64
}

// NewCommunicator wraps a transport endpoint.
func NewCommunicator(t Transport) *Communicator { return &Communicator{t: t} }

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.t.Rank() }

// Size returns the number of ranks.
func (c *Communicator) Size() int { return c.t.Size() }

// Close closes the underlying transport.
func (c *Communicator) Close() error { return c.t.Close() }

// nextOp reserves a tag namespace for one collective invocation.
func (c *Communicator) nextOp() uint64 { return c.seq.Add(1) << 16 }

func opTag(base uint64, step int) uint64 { return base | uint64(step) }

// split partitions n elements into p nearly equal chunks, returning
// per-chunk counts and displacements.
func split(n, p int) (counts, displs []int) {
	counts = make([]int, p)
	displs = make([]int, p+1)
	base := n / p
	rem := n % p
	for i := 0; i < p; i++ {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
		displs[i+1] = displs[i] + counts[i]
	}
	return counts, displs[:p+1]
}

func mod(a, p int) int { return ((a % p) + p) % p }

// sendAsync launches a Send on its own goroutine and returns the error
// channel; pairing concurrent send/recv avoids ring deadlock without
// requiring buffered transports.
func (c *Communicator) sendAsync(to int, tag uint64, data []float64) chan error {
	ch := make(chan error, 1)
	go func() { ch <- c.t.Send(to, tag, data) }()
	return ch
}

// AllreduceSum sums data elementwise across all ranks, in place, using the
// bandwidth-optimal ring algorithm: a scatter-reduce phase (p−1 steps, each
// rank ends owning the full sum of one chunk) followed by a ring allgather
// of the reduced chunks (p−1 steps).
func (c *Communicator) AllreduceSum(data []float64) error {
	return c.allreduceSumTagged(data, c.nextOp())
}

// AllreduceMean averages data elementwise across all ranks, in place. This
// is Horovod's allreduce(average=True), the operation SGD gradient exchange
// and K-FAC factor averaging both use.
func (c *Communicator) AllreduceMean(data []float64) error {
	if err := c.AllreduceSum(data); err != nil {
		return err
	}
	inv := 1 / float64(c.Size())
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Broadcast distributes root's data to all ranks (in place on non-roots)
// over a binomial tree: log₂(p) rounds.
func (c *Communicator) Broadcast(data []float64, root int) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	base := c.nextOp()
	rel := mod(r-root, p)
	for offset := 1; offset < p; offset <<= 1 {
		if rel < offset {
			// Already have the data; forward to rel+offset if it exists.
			peer := rel + offset
			if peer < p {
				if err := c.t.Send(mod(peer+root, p), opTag(base, offset), data); err != nil {
					return err
				}
			}
		} else if rel < 2*offset {
			in, err := c.t.Recv(mod(rel-offset+root, p), opTag(base, offset))
			if err != nil {
				return err
			}
			if len(in) != len(data) {
				return fmt.Errorf("comm: broadcast size mismatch: %d != %d", len(in), len(data))
			}
			copy(data, in)
		}
	}
	return nil
}

// AllgatherV gathers each rank's (variable-length) contribution and returns
// the per-rank payloads indexed by rank, identical on every rank. This is
// the collective the paper's step 2→3 transition uses to share eigen
// decompositions (Algorithm 1, line 18). Ring algorithm: p−1 steps, each
// forwarding the block received in the previous step.
func (c *Communicator) AllgatherV(mine []float64) ([][]float64, error) {
	p := c.Size()
	r := c.Rank()
	out := make([][]float64, p)
	cp := make([]float64, len(mine))
	copy(cp, mine)
	out[r] = cp
	if p == 1 {
		return out, nil
	}
	base := c.nextOp()
	next, prev := mod(r+1, p), mod(r-1, p)
	for s := 0; s < p-1; s++ {
		sendIdx := mod(r-s, p)
		errCh := c.sendAsync(next, opTag(base, s), out[sendIdx])
		in, err := c.t.Recv(prev, opTag(base, s))
		if err != nil {
			return nil, err
		}
		if serr := <-errCh; serr != nil {
			return nil, serr
		}
		out[mod(r-s-1, p)] = in
	}
	return out, nil
}

// Barrier blocks until every rank has entered it.
func (c *Communicator) Barrier() error {
	one := []float64{1}
	return c.AllreduceSum(one)
}

// Handle is an asynchronous collective in flight, in the style of Horovod's
// communication handles: the caller registers operations as results become
// available and waits for completion in batches (paper §V-A).
type Handle struct {
	done chan struct{}
	err  error
}

// Wait blocks until the operation completes and returns its error.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// AllreduceSumAsync starts an asynchronous in-place sum-allreduce. The tag
// namespace is reserved synchronously at call time, so as long as every rank
// issues the same collectives in the same program order, overlapping
// operations cannot cross-match.
func (c *Communicator) AllreduceSumAsync(data []float64) *Handle {
	base := c.nextOp()
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = c.allreduceSumTagged(data, base)
	}()
	return h
}

// AllreduceMeanAsync starts an asynchronous in-place mean-allreduce.
func (c *Communicator) AllreduceMeanAsync(data []float64) *Handle {
	base := c.nextOp()
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		if err := c.allreduceSumTagged(data, base); err != nil {
			h.err = err
			return
		}
		inv := 1 / float64(c.Size())
		for i := range data {
			data[i] *= inv
		}
	}()
	return h
}

// allreduceSumTagged is AllreduceSum with an externally reserved tag base.
func (c *Communicator) allreduceSumTagged(data []float64, base uint64) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	counts, displs := split(len(data), p)
	next, prev := mod(r+1, p), mod(r-1, p)
	chunk := func(i int) []float64 { return data[displs[i] : displs[i]+counts[i]] }
	for s := 0; s < p-1; s++ {
		sendIdx := mod(r-s, p)
		recvIdx := mod(r-s-1, p)
		errCh := c.sendAsync(next, opTag(base, s), chunk(sendIdx))
		in, err := c.t.Recv(prev, opTag(base, s))
		if err != nil {
			return err
		}
		if serr := <-errCh; serr != nil {
			return serr
		}
		dst := chunk(recvIdx)
		if len(in) != len(dst) {
			return fmt.Errorf("comm: allreduce chunk size mismatch: got %d, want %d (ranks must pass equal-length buffers)", len(in), len(dst))
		}
		for i := range dst {
			dst[i] += in[i]
		}
	}
	for s := 0; s < p-1; s++ {
		sendIdx := mod(r+1-s, p)
		recvIdx := mod(r-s, p)
		errCh := c.sendAsync(next, opTag(base, p+s), chunk(sendIdx))
		in, err := c.t.Recv(prev, opTag(base, p+s))
		if err != nil {
			return err
		}
		if serr := <-errCh; serr != nil {
			return serr
		}
		copy(chunk(recvIdx), in)
	}
	return nil
}
