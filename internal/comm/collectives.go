package comm

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Communicator provides MPI/Horovod-style collectives over a Transport.
// All ranks must call the same sequence of collectives (SPMD order); each
// collective consumes one sequence number that namespaces its wire tags, so
// payloads from different collectives can interleave on the transport
// without confusion.
//
// A communicator carries a bound context (context.Background by default;
// see WithContext) consulted by every blocking receive. Cancelling it is a
// HARD abort: in-flight collectives return the context error mid-protocol,
// which desynchronizes the SPMD collective schedule across ranks — after an
// abort the communicator must not be reused for further collectives. For
// cooperative, schedule-preserving cancellation (every rank stops at the
// same point) callers should instead reach consensus through a dedicated
// collective, as trainer.Session.Run does; see docs/ARCHITECTURE.md.
//
// This file holds the synchronous collectives (allreduce, broadcast,
// allgather, barrier, reduce, reduce-scatter, gather, scatter) and the
// shared ring-phase helpers; the asynchronous handle-based variants live in
// async.go.
type Communicator struct {
	t   Transport
	seq *atomic.Uint64
	ctx context.Context
}

// NewCommunicator wraps a transport endpoint.
func NewCommunicator(t Transport) *Communicator {
	return &Communicator{t: t, seq: new(atomic.Uint64), ctx: context.Background()}
}

// WithContext returns a communicator sharing this one's transport and tag
// sequence whose blocking operations additionally abort when ctx is
// cancelled. The parent and the derived communicator may be used
// interchangeably (the collective schedule is common to both); cancellation
// semantics are the hard-abort contract documented on Communicator.
func (c *Communicator) WithContext(ctx context.Context) *Communicator {
	if ctx == nil {
		ctx = context.Background()
	}
	cp := *c
	cp.ctx = ctx
	return &cp
}

// Context returns the context bound by WithContext (context.Background for
// a communicator that never had one bound).
func (c *Communicator) Context() context.Context { return c.ctx }

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.t.Rank() }

// Size returns the number of ranks.
func (c *Communicator) Size() int { return c.t.Size() }

// MetricsProvider is implemented by transports that keep per-endpoint
// delivery counters (ChaosTransport does). The autotuner samples these to
// estimate link health without caring which transport is underneath.
type MetricsProvider interface {
	// Metrics returns a snapshot of the endpoint's delivery counters.
	Metrics() DeliveryMetrics
}

// TransportMetrics returns a snapshot of the underlying transport's
// delivery counters, or ok=false when the transport does not keep any
// (e.g. the plain in-process fabric).
func (c *Communicator) TransportMetrics() (m DeliveryMetrics, ok bool) {
	if p, isP := c.t.(MetricsProvider); isP {
		return p.Metrics(), true
	}
	return DeliveryMetrics{}, false
}

// Close closes the underlying transport.
func (c *Communicator) Close() error { return c.t.Close() }

// recv is the context-bound receive every collective goes through.
func (c *Communicator) recv(from int, tag uint64) ([]float64, error) {
	return c.t.Recv(c.ctx, from, tag)
}

// nextOp reserves a tag namespace for one collective invocation.
func (c *Communicator) nextOp() uint64 { return c.seq.Add(1) << 16 }

func opTag(base uint64, step int) uint64 { return base | uint64(step) }

// split partitions n elements into p nearly equal chunks, returning
// per-chunk counts and displacements.
func split(n, p int) (counts, displs []int) {
	counts = make([]int, p)
	displs = make([]int, p+1)
	base := n / p
	rem := n % p
	for i := 0; i < p; i++ {
		counts[i] = base
		if i < rem {
			counts[i]++
		}
		displs[i+1] = displs[i] + counts[i]
	}
	return counts, displs[:p+1]
}

func mod(a, p int) int { return ((a % p) + p) % p }

// sendAsync launches a Send on its own goroutine and returns the error
// channel; pairing concurrent send/recv avoids ring deadlock without
// requiring buffered transports.
func (c *Communicator) sendAsync(to int, tag uint64, data []float64) chan error {
	ch := make(chan error, 1)
	go func() { ch <- c.t.Send(to, tag, data) }()
	return ch
}

// ring describes one position in a logical ring: the transport ranks of the
// neighbours plus this member's index and the ring's size. For the common
// all-ranks ring the index is the transport rank; hierarchical allreduce
// builds a leader ring whose indices are group numbers.
type ring struct {
	next, prev  int // transport ranks of the ring neighbours
	index, size int // position within the ring and number of members
}

// fullRing is the ring over every rank of the communicator.
func (c *Communicator) fullRing() ring {
	p := c.Size()
	r := c.Rank()
	return ring{next: mod(r+1, p), prev: mod(r-1, p), index: r, size: p}
}

// chunkOf views chunk i of a buffer partitioned by split's counts/displs.
func chunkOf(data []float64, counts, displs []int, i int) []float64 {
	return data[displs[i] : displs[i]+counts[i]]
}

// ringReduceScatter runs the scatter-reduce phase of the ring allreduce:
// size−1 steps, after which ring member i owns the fully summed chunk
// (i+1) mod size. Tags are base | (stepOff + s).
func (c *Communicator) ringReduceScatter(data []float64, counts, displs []int, rg ring, base uint64, stepOff int) error {
	for s := 0; s < rg.size-1; s++ {
		sendIdx := mod(rg.index-s, rg.size)
		recvIdx := mod(rg.index-s-1, rg.size)
		errCh := c.sendAsync(rg.next, opTag(base, stepOff+s), chunkOf(data, counts, displs, sendIdx))
		in, err := c.recv(rg.prev, opTag(base, stepOff+s))
		if err != nil {
			return err
		}
		if serr := <-errCh; serr != nil {
			return serr
		}
		dst := chunkOf(data, counts, displs, recvIdx)
		if len(in) != len(dst) {
			return fmt.Errorf("comm: ring chunk size mismatch: got %d, want %d (ranks must pass equal-length buffers)", len(in), len(dst))
		}
		for i := range dst {
			dst[i] += in[i]
		}
	}
	return nil
}

// ringAllgatherChunks runs the allgather phase of the ring allreduce:
// size−1 steps circulating the reduced chunks until every member holds all
// of them. Tags are base | (stepOff + s).
func (c *Communicator) ringAllgatherChunks(data []float64, counts, displs []int, rg ring, base uint64, stepOff int) error {
	for s := 0; s < rg.size-1; s++ {
		sendIdx := mod(rg.index+1-s, rg.size)
		recvIdx := mod(rg.index-s, rg.size)
		errCh := c.sendAsync(rg.next, opTag(base, stepOff+s), chunkOf(data, counts, displs, sendIdx))
		in, err := c.recv(rg.prev, opTag(base, stepOff+s))
		if err != nil {
			return err
		}
		if serr := <-errCh; serr != nil {
			return serr
		}
		copy(chunkOf(data, counts, displs, recvIdx), in)
	}
	return nil
}

// AllreduceSum sums data elementwise across all ranks, in place, using the
// bandwidth-optimal ring algorithm: a scatter-reduce phase (p−1 steps, each
// rank ends owning the full sum of one chunk) followed by a ring allgather
// of the reduced chunks (p−1 steps).
func (c *Communicator) AllreduceSum(data []float64) error {
	return c.allreduceSumTagged(data, c.nextOp())
}

// allreduceSumTagged is AllreduceSum with an externally reserved tag base.
func (c *Communicator) allreduceSumTagged(data []float64, base uint64) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	counts, displs := split(len(data), p)
	rg := c.fullRing()
	if err := c.ringReduceScatter(data, counts, displs, rg, base, 0); err != nil {
		return err
	}
	return c.ringAllgatherChunks(data, counts, displs, rg, base, p)
}

// AllreduceMean averages data elementwise across all ranks, in place. This
// is Horovod's allreduce(average=True), the operation SGD gradient exchange
// and K-FAC factor averaging both use.
func (c *Communicator) AllreduceMean(data []float64) error {
	if err := c.AllreduceSum(data); err != nil {
		return err
	}
	inv := 1 / float64(c.Size())
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Broadcast distributes root's data to all ranks (in place on non-roots)
// over a binomial tree: log₂(p) rounds.
func (c *Communicator) Broadcast(data []float64, root int) error {
	p := c.Size()
	base := c.nextOp()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	rel := mod(r-root, p)
	return c.broadcastTree(data, base, rel, p, func(peerRel int) int {
		return mod(peerRel+root, p)
	})
}

// broadcastTree runs the binomial-tree broadcast over a logical ordering of
// size members in which relative position 0 is the root; rankOf maps a
// relative position to its transport rank. rel is this participant's own
// relative position. Tags are opTag(base, offset) — identical to the layout
// Broadcast has always used, so the full-world case is wire-compatible.
func (c *Communicator) broadcastTree(data []float64, base uint64, rel, size int, rankOf func(int) int) error {
	for offset := 1; offset < size; offset <<= 1 {
		if rel < offset {
			// Already have the data; forward to rel+offset if it exists.
			peer := rel + offset
			if peer < size {
				if err := c.t.Send(rankOf(peer), opTag(base, offset), data); err != nil {
					return err
				}
			}
		} else if rel < 2*offset {
			in, err := c.recv(rankOf(rel-offset), opTag(base, offset))
			if err != nil {
				return err
			}
			if len(in) != len(data) {
				return fmt.Errorf("comm: broadcast size mismatch: %d != %d", len(in), len(data))
			}
			copy(data, in)
		}
	}
	return nil
}

// AllgatherV gathers each rank's (variable-length) contribution and returns
// the per-rank payloads indexed by rank, identical on every rank. This is
// the collective the paper's step 2→3 transition uses to share eigen
// decompositions (Algorithm 1, line 18). Ring algorithm: p−1 steps, each
// forwarding the block received in the previous step.
func (c *Communicator) AllgatherV(mine []float64) ([][]float64, error) {
	return c.allgatherVTagged(mine, c.nextOp())
}

// allgatherVTagged is AllgatherV with an externally reserved tag base.
func (c *Communicator) allgatherVTagged(mine []float64, base uint64) ([][]float64, error) {
	p := c.Size()
	r := c.Rank()
	out := make([][]float64, p)
	cp := make([]float64, len(mine))
	copy(cp, mine)
	out[r] = cp
	if p == 1 {
		return out, nil
	}
	next, prev := mod(r+1, p), mod(r-1, p)
	for s := 0; s < p-1; s++ {
		sendIdx := mod(r-s, p)
		errCh := c.sendAsync(next, opTag(base, s), out[sendIdx])
		in, err := c.recv(prev, opTag(base, s))
		if err != nil {
			return nil, err
		}
		if serr := <-errCh; serr != nil {
			return nil, serr
		}
		out[mod(r-s-1, p)] = in
	}
	return out, nil
}

// Barrier blocks until every rank has entered it.
func (c *Communicator) Barrier() error {
	one := []float64{1}
	return c.AllreduceSum(one)
}

// Reduce sums data from all ranks onto root (in place on root; other ranks'
// buffers are left unchanged). Binomial-tree reduction, log₂(p) rounds.
func (c *Communicator) Reduce(data []float64, root int) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	base := c.nextOp()
	rel := mod(r-root, p)
	// Accumulate into a scratch copy so non-root callers keep their input.
	acc := data
	if r != root {
		acc = make([]float64, len(data))
		copy(acc, data)
	}
	// Largest power of two ≥ p.
	top := 1
	for top < p {
		top <<= 1
	}
	for offset := 1; offset < top; offset <<= 1 {
		if rel%(2*offset) == offset {
			// Sender this round.
			peer := rel - offset
			return c.t.Send(mod(peer+root, p), opTag(base, offset), acc)
		}
		if rel%(2*offset) == 0 && rel+offset < p {
			in, err := c.recv(mod(rel+offset+root, p), opTag(base, offset))
			if err != nil {
				return err
			}
			if len(in) != len(acc) {
				return fmt.Errorf("comm: reduce size mismatch: %d != %d", len(in), len(acc))
			}
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return nil
}

// ReduceScatter sums data elementwise across ranks and leaves each rank
// with its chunk of the result (the first phase of the ring allreduce).
// Returns this rank's reduced chunk; data is clobbered as scratch.
func (c *Communicator) ReduceScatter(data []float64) ([]float64, error) {
	p := c.Size()
	r := c.Rank()
	counts, displs := split(len(data), p)
	if p == 1 {
		out := make([]float64, counts[0])
		copy(out, data)
		return out, nil
	}
	if err := c.ringReduceScatter(data, counts, displs, c.fullRing(), c.nextOp(), 0); err != nil {
		return nil, err
	}
	// After p−1 steps this rank owns the fully reduced chunk (r+1) mod p.
	own := mod(r+1, p)
	out := make([]float64, counts[own])
	copy(out, chunkOf(data, counts, displs, own))
	return out, nil
}

// OwnedChunk returns the index of the chunk ReduceScatter leaves on this
// rank, and its extent within the original buffer.
func (c *Communicator) OwnedChunk(n int) (index, offset, length int) {
	p := c.Size()
	counts, displs := split(n, p)
	idx := mod(c.Rank()+1, p)
	return idx, displs[idx], counts[idx]
}

// Gather collects each rank's (variable-length) contribution onto root.
// root receives a per-rank slice; other ranks receive nil.
func (c *Communicator) Gather(mine []float64, root int) ([][]float64, error) {
	p := c.Size()
	base := c.nextOp()
	if c.Rank() != root {
		return nil, c.t.Send(root, opTag(base, c.Rank()), mine)
	}
	out := make([][]float64, p)
	cp := make([]float64, len(mine))
	copy(cp, mine)
	out[root] = cp
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		in, err := c.recv(r, opTag(base, r))
		if err != nil {
			return nil, err
		}
		out[r] = in
	}
	return out, nil
}

// Scatter distributes root's per-rank payloads; each rank returns its own
// slice. chunks is only read on root and must have one entry per rank.
func (c *Communicator) Scatter(chunks [][]float64, root int) ([]float64, error) {
	p := c.Size()
	base := c.nextOp()
	if c.Rank() == root {
		if len(chunks) != p {
			return nil, fmt.Errorf("comm: scatter needs %d chunks, got %d", p, len(chunks))
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			if err := c.t.Send(r, opTag(base, r), chunks[r]); err != nil {
				return nil, err
			}
		}
		out := make([]float64, len(chunks[root]))
		copy(out, chunks[root])
		return out, nil
	}
	return c.recv(root, opTag(base, c.Rank()))
}
