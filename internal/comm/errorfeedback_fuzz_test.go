package comm

import (
	"math"
	"testing"
)

// Fuzz harness for the error-feedback encode/decode round trip, mirroring
// compress_fuzz_test.go: the seed corpus (including NaN/Inf gradients and
// zero-length tensors) runs as a regression suite under plain `go test`
// and expands under `go test -fuzz=FuzzErrorFeedback…`. Invariants:
//
//   - one compensate → EncodeInto → DecodeInto → residual-update cycle
//     never panics, whatever float bits the gradient holds;
//   - the allocation-free EncodeInto/DecodeInto paths agree bit-for-bit
//     with the allocating Encode/Decode they shadow (oracle check);
//   - decoded + residual reconstructs the compensated input exactly for
//     Top-K (it transmits exact entries), so residual mass never leaks.

func efFuzzCorpus(f *testing.F) {
	f.Add([]byte{}, uint8(0), false)         // zero-length tensor
	f.Add(make([]byte, 8*5), uint8(2), true) // zeros, ties everywhere
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), false)
	inf := make([]byte, 16)
	for i, b := range []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f} { // +Inf
		inf[i] = b
	}
	f.Add(inf, uint8(3), true)
	nan := make([]byte, 24)
	for i, b := range []byte{1, 0, 0, 0, 0, 0, 0xf8, 0x7f} { // NaN payload bits
		nan[i] = b
	}
	f.Add(nan, uint8(4), false)
}

func FuzzErrorFeedbackRoundTrip(f *testing.F) {
	efFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte, kByte uint8, useTopK bool) {
		src := floatsFromBytes(b)
		n := len(src)
		var codec Codec = Float16Codec{}
		if useTopK {
			codec = TopKCodec{K: int(kByte)%8 + 1}
		}
		// Residual from a previous round: reuse the source bits shifted by
		// one so compensation mixes two arbitrary float patterns.
		res := make([]float64, n)
		for i := range res {
			res[i] = src[(i+1)%n] / 2
		}
		comp := make([]float64, n)
		for i := range comp {
			comp[i] = src[i] + res[i]
		}

		// Oracle agreement: the pooled in-place paths must match the
		// allocating ones bit-for-bit.
		payload := encodeInto(codec, make([]float64, codec.CompressedLen(n)), comp)
		oracle := codec.Encode(comp)
		if len(payload) != len(oracle) {
			t.Fatalf("EncodeInto length %d != Encode %d", len(payload), len(oracle))
		}
		for i := range oracle {
			if math.Float64bits(payload[i]) != math.Float64bits(oracle[i]) {
				t.Fatalf("payload word %d: EncodeInto %x != Encode %x", i,
					math.Float64bits(payload[i]), math.Float64bits(oracle[i]))
			}
		}

		dec := make([]float64, n)
		errInto := decodeInto(codec, dec, payload)
		decOracle, errOracle := codec.Decode(oracle, n)
		if (errInto == nil) != (errOracle == nil) {
			t.Fatalf("DecodeInto err=%v, Decode err=%v", errInto, errOracle)
		}
		if errInto != nil {
			return // both reject: an error on self-encoded data is itself a bug
		}
		for i := range dec {
			if math.Float64bits(dec[i]) != math.Float64bits(decOracle[i]) {
				t.Fatalf("decoded elem %d: DecodeInto %v != Decode %v", i, dec[i], decOracle[i])
			}
		}

		// Residual update: r' = comp − dec. For Top-K the transmitted
		// entries are exact copies, so dec + r' must reconstruct comp
		// bit-for-bit wherever the arithmetic is defined (NaN/Inf entries
		// compare as "both non-finite").
		if useTopK {
			for i := range comp {
				got := dec[i] + (comp[i] - dec[i])
				if math.IsNaN(comp[i]) || math.IsInf(comp[i], 0) {
					if !math.IsNaN(got) && !math.IsInf(got, 0) {
						t.Fatalf("elem %d: non-finite %v reconstructed finite %v", i, comp[i], got)
					}
					continue
				}
				if math.IsNaN(got) || got != comp[i] {
					t.Fatalf("elem %d: dec+residual = %v, want %v", i, got, comp[i])
				}
			}
		}
	})
}

// FuzzErrorFeedbackAdversarialDecode drives DecodeInto with wire-arbitrary
// payloads: it must reject or fill exactly len(dst) values, never panic or
// index out of range — the same contract the adversarial Decode fuzzers
// pin for the allocating path.
func FuzzErrorFeedbackAdversarialDecode(f *testing.F) {
	efFuzzCorpus(f)
	f.Fuzz(func(t *testing.T, b []byte, nByte uint8, useTopK bool) {
		payload := floatsFromBytes(b)
		var codec Codec = Float16Codec{}
		if useTopK {
			codec = TopKCodec{K: 4}
		}
		dst := make([]float64, int(nByte))
		_ = decodeInto(codec, dst, payload) // must not panic
	})
}
