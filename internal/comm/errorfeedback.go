package comm

// Error-feedback compression (Seide et al. 2014; Karimireddy et al. 2019
// "Error Feedback Fixes SignSGD"): a lossy codec applied to gradient-like
// payloads biases the average, and for sparsifiers such as TopKCodec the
// bias is large enough to stall convergence outright. The fix is local
// residual accumulation: before encoding, each rank adds the error its
// codec discarded on previous rounds (compensate), and after decoding its
// own contribution it stores the newly discarded part (update). The
// compensated stream telescopes — over any horizon, the sum of what was
// actually transmitted plus the final residual equals the sum of the true
// payloads — so the compression error stays O(1) instead of growing with
// the step count. See TestErrorFeedbackTelescopes for the property pinned
// as a test.
//
// ErrorFeedback holds one float64 residual buffer per fused chunk
// ordinal. The Fuser hands out slots at launch time in Add order; because
// the SPMD schedule recreates fusers with identical Add sequences every
// round (the same ordering contract that makes async collectives safe),
// ordinal i always names the same tensor group on every rank, and a
// length change at a slot (a reshaped schedule) resets that residual to
// zero identically everywhere.

// ErrorFeedback accumulates per-chunk compression residuals for a lossy
// Codec. The zero codec (nil) means "transmit exact"; residuals are then
// left untouched (frozen) so a later switch back to a lossy codec resumes
// compensation where it left off. Not safe for concurrent use: slots are
// handed out by the single goroutine driving the fuser schedule, and each
// launched chunk owns its slot exclusively until its Wait completes.
type ErrorFeedback struct {
	codec Codec
	slots [][]float64
}

// NewErrorFeedback returns an accumulator wrapping codec (nil for exact
// transmission until SetCodec installs one).
func NewErrorFeedback(codec Codec) *ErrorFeedback {
	return &ErrorFeedback{codec: codec}
}

// Codec returns the currently installed codec (nil = exact).
func (ef *ErrorFeedback) Codec() Codec { return ef.codec }

// SetCodec switches the codec. Residual buffers are preserved across the
// switch: pending error mass keeps draining under the new codec, and a
// switch to nil (exact) freezes it until a lossy codec returns. Callers
// that want a clean slate pair this with Reset. In SPMD use every rank
// must switch at the same schedule boundary — the autotuner guarantees
// this by deriving the switch from a consensus collective.
func (ef *ErrorFeedback) SetCodec(c Codec) { ef.codec = c }

// Reset zeroes every residual buffer (buffers stay allocated for reuse).
func (ef *ErrorFeedback) Reset() {
	for _, s := range ef.slots {
		for i := range s {
			s[i] = 0
		}
	}
}

// Residual exposes the live residual buffer for chunk ordinal i (nil if
// the slot was never used). Callers must not mutate it; it exists so
// tests can assert the telescoping property.
func (ef *ErrorFeedback) Residual(i int) []float64 {
	if i < 0 || i >= len(ef.slots) {
		return nil
	}
	return ef.slots[i]
}

// slot returns the residual buffer for chunk ordinal i, sized n. A size
// mismatch (schedule reshape) discards the old residual — the mismatch is
// schedule-determined, so every rank takes the same branch.
func (ef *ErrorFeedback) slot(i, n int) []float64 {
	for len(ef.slots) <= i {
		ef.slots = append(ef.slots, nil)
	}
	if len(ef.slots[i]) != n {
		ef.slots[i] = make([]float64, n)
	}
	return ef.slots[i]
}
