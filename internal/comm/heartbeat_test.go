package comm

import (
	"sync"
	"testing"
	"time"
)

// TestHeartbeatAllAlive: monitors over a healthy world must not declare
// anyone dead.
func TestHeartbeatAllAlive(t *testing.T) {
	const p = 3
	fab := NewInprocFabric(p)
	cfg := HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 60 * time.Millisecond}
	monitors := make([]*HeartbeatMonitor, p)
	for r := 0; r < p; r++ {
		monitors[r] = StartHeartbeat(fab.Endpoint(r), cfg, func(rank int) {
			t.Errorf("false positive: rank %d declared failed", rank)
		})
	}
	time.Sleep(150 * time.Millisecond)
	for _, m := range monitors {
		if failed := m.Failed(); len(failed) != 0 {
			t.Errorf("Failed() = %v, want none", failed)
		}
		m.Close()
	}
}

// TestHeartbeatDetectsKilledRank: killing one rank must be detected by all
// survivors within a few timeouts, exactly once each.
func TestHeartbeatDetectsKilledRank(t *testing.T) {
	const p = 3
	const victim = 1
	fab := chaosWorld(p, ChaosConfig{Seed: 2})
	cfg := HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 30 * time.Millisecond}

	var mu sync.Mutex
	detected := make(map[int][]int) // observer → failed ranks reported
	monitors := make([]*HeartbeatMonitor, p)
	for r := 0; r < p; r++ {
		r := r
		monitors[r] = StartHeartbeat(fab.Endpoint(r), cfg, func(rank int) {
			mu.Lock()
			detected[r] = append(detected[r], rank)
			mu.Unlock()
		})
	}
	time.Sleep(20 * time.Millisecond) // let the streams establish
	fab.Kill(victim)

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		ok := len(detected[0]) > 0 && len(detected[2]) > 0
		mu.Unlock()
		if ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, m := range monitors {
		m.Close()
	}
	mu.Lock()
	defer mu.Unlock()
	for _, observer := range []int{0, 2} {
		if got := detected[observer]; len(got) != 1 || got[0] != victim {
			t.Errorf("observer %d detected %v, want exactly [%d]", observer, got, victim)
		}
	}
	if got := monitors[0].Failed(); len(got) != 1 || got[0] != victim {
		t.Errorf("Failed() = %v, want [%d]", got, victim)
	}
}

// TestHeartbeatSurvivesChaosLatency: latency and retried drops slow the
// stream but must not trip the detector when the timeout dominates the
// injected delays.
func TestHeartbeatSurvivesChaosLatency(t *testing.T) {
	const p = 2
	fab := chaosWorld(p, ChaosConfig{
		Seed:         9,
		MinLatency:   50 * time.Microsecond,
		MaxLatency:   2 * time.Millisecond,
		DropRate:     0.2,
		MaxRetries:   10,
		RetryBackoff: 50 * time.Microsecond,
	})
	cfg := HeartbeatConfig{Interval: 2 * time.Millisecond, Timeout: 80 * time.Millisecond}
	monitors := make([]*HeartbeatMonitor, p)
	for r := 0; r < p; r++ {
		monitors[r] = StartHeartbeat(fab.Endpoint(r), cfg, nil)
	}
	time.Sleep(200 * time.Millisecond)
	for _, m := range monitors {
		if failed := m.Failed(); len(failed) != 0 {
			t.Errorf("chaos latency tripped the detector: %v", failed)
		}
		m.Close()
	}
}
