package comm

import (
	"fmt"
)

// Additional collectives beyond the paper's minimum set (allreduce,
// allgather, broadcast): reduce-to-root, ring reduce-scatter, and
// gather-to-root. Horovod exposes the same surface; these are used by the
// ablation experiments and available to library users.

// Reduce sums data from all ranks onto root (in place on root; other ranks'
// buffers are left unchanged). Binomial-tree reduction, log₂(p) rounds.
func (c *Communicator) Reduce(data []float64, root int) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	r := c.Rank()
	base := c.nextOp()
	rel := mod(r-root, p)
	// Accumulate into a scratch copy so non-root callers keep their input.
	acc := data
	if r != root {
		acc = make([]float64, len(data))
		copy(acc, data)
	}
	// Largest power of two ≥ p.
	top := 1
	for top < p {
		top <<= 1
	}
	for offset := 1; offset < top; offset <<= 1 {
		if rel%(2*offset) == offset {
			// Sender this round.
			peer := rel - offset
			return c.t.Send(mod(peer+root, p), opTag(base, offset), acc)
		}
		if rel%(2*offset) == 0 && rel+offset < p {
			in, err := c.t.Recv(mod(rel+offset+root, p), opTag(base, offset))
			if err != nil {
				return err
			}
			if len(in) != len(acc) {
				return fmt.Errorf("comm: reduce size mismatch: %d != %d", len(in), len(acc))
			}
			for i := range acc {
				acc[i] += in[i]
			}
		}
	}
	return nil
}

// ReduceScatter sums data elementwise across ranks and leaves each rank
// with its chunk of the result (the first phase of the ring allreduce).
// Returns this rank's reduced chunk; data is clobbered as scratch.
func (c *Communicator) ReduceScatter(data []float64) ([]float64, error) {
	p := c.Size()
	r := c.Rank()
	counts, displs := split(len(data), p)
	if p == 1 {
		out := make([]float64, counts[0])
		copy(out, data)
		return out, nil
	}
	base := c.nextOp()
	next, prev := mod(r+1, p), mod(r-1, p)
	chunk := func(i int) []float64 { return data[displs[i] : displs[i]+counts[i]] }
	for s := 0; s < p-1; s++ {
		sendIdx := mod(r-s, p)
		recvIdx := mod(r-s-1, p)
		errCh := c.sendAsync(next, opTag(base, s), chunk(sendIdx))
		in, err := c.t.Recv(prev, opTag(base, s))
		if err != nil {
			return nil, err
		}
		if serr := <-errCh; serr != nil {
			return nil, serr
		}
		dst := chunk(recvIdx)
		if len(in) != len(dst) {
			return nil, fmt.Errorf("comm: reduce-scatter chunk mismatch: %d != %d", len(in), len(dst))
		}
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// After p−1 steps this rank owns the fully reduced chunk (r+1) mod p.
	own := mod(r+1, p)
	out := make([]float64, counts[own])
	copy(out, chunk(own))
	return out, nil
}

// OwnedChunk returns the index of the chunk ReduceScatter leaves on this
// rank, and its extent within the original buffer.
func (c *Communicator) OwnedChunk(n int) (index, offset, length int) {
	p := c.Size()
	counts, displs := split(n, p)
	idx := mod(c.Rank()+1, p)
	return idx, displs[idx], counts[idx]
}

// Gather collects each rank's (variable-length) contribution onto root.
// root receives a per-rank slice; other ranks receive nil.
func (c *Communicator) Gather(mine []float64, root int) ([][]float64, error) {
	p := c.Size()
	base := c.nextOp()
	if c.Rank() != root {
		return nil, c.t.Send(root, opTag(base, c.Rank()), mine)
	}
	out := make([][]float64, p)
	cp := make([]float64, len(mine))
	copy(cp, mine)
	out[root] = cp
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		in, err := c.t.Recv(r, opTag(base, r))
		if err != nil {
			return nil, err
		}
		out[r] = in
	}
	return out, nil
}

// Scatter distributes root's per-rank payloads; each rank returns its own
// slice. chunks is only read on root and must have one entry per rank.
func (c *Communicator) Scatter(chunks [][]float64, root int) ([]float64, error) {
	p := c.Size()
	base := c.nextOp()
	if c.Rank() == root {
		if len(chunks) != p {
			return nil, fmt.Errorf("comm: scatter needs %d chunks, got %d", p, len(chunks))
		}
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			if err := c.t.Send(r, opTag(base, r), chunks[r]); err != nil {
				return nil, err
			}
		}
		out := make([]float64, len(chunks[root]))
		copy(out, chunks[root])
		return out, nil
	}
	return c.t.Recv(root, opTag(base, c.Rank()))
}
