package comm

import (
	"repro/internal/tensor"
)

// DefaultFusionBytes mirrors Horovod's default fusion-buffer threshold
// (paper §II-D: "usually set as 16 MB or 32 MB to guarantee that each
// allreduce() is bandwidth dominated").
const DefaultFusionBytes = 16 << 20

// Fuser batches small tensors into large allreduce payloads, imitating
// Horovod's tensor-fusion buffer. Callers Add tensors (in identical order on
// every rank) and Flush when done; tensors are averaged in place.
type Fuser struct {
	comm      *Communicator
	limit     int // bytes
	pending   []*tensor.Tensor
	pendingSz int // bytes
	handles   []*Handle
	fusedBufs [][]float64
	fusedSets [][]*tensor.Tensor
}

// NewFuser creates a fusion buffer over comm with the given byte threshold.
// A non-positive limit selects DefaultFusionBytes.
func NewFuser(comm *Communicator, limitBytes int) *Fuser {
	if limitBytes <= 0 {
		limitBytes = DefaultFusionBytes
	}
	return &Fuser{comm: comm, limit: limitBytes}
}

// Add enqueues t for averaging. When the pending set exceeds the fusion
// threshold, an asynchronous fused allreduce is launched.
func (f *Fuser) Add(t *tensor.Tensor) {
	f.pending = append(f.pending, t)
	f.pendingSz += 8 * t.Len()
	if f.pendingSz >= f.limit {
		f.launch()
	}
}

// launch packs the pending tensors into one buffer and starts an async
// mean-allreduce on it.
func (f *Fuser) launch() {
	if len(f.pending) == 0 {
		return
	}
	total := 0
	for _, t := range f.pending {
		total += t.Len()
	}
	buf := make([]float64, total)
	off := 0
	for _, t := range f.pending {
		copy(buf[off:], t.Data)
		off += t.Len()
	}
	f.handles = append(f.handles, f.comm.AllreduceMeanAsync(buf))
	f.fusedBufs = append(f.fusedBufs, buf)
	f.fusedSets = append(f.fusedSets, f.pending)
	f.pending = nil
	f.pendingSz = 0
}

// Flush launches any remaining fused operation, waits for all in-flight
// operations, and scatters results back into the original tensors.
func (f *Fuser) Flush() error {
	f.launch()
	for i, h := range f.handles {
		if err := h.Wait(); err != nil {
			return err
		}
		buf := f.fusedBufs[i]
		off := 0
		for _, t := range f.fusedSets[i] {
			copy(t.Data, buf[off:off+t.Len()])
			off += t.Len()
		}
	}
	f.handles = f.handles[:0]
	f.fusedBufs = f.fusedBufs[:0]
	f.fusedSets = f.fusedSets[:0]
	return nil
}

// AllreduceMeanTensors averages a set of tensors across ranks through a
// fusion buffer — the convenience entry point the trainer uses for gradient
// exchange.
func AllreduceMeanTensors(c *Communicator, limitBytes int, ts ...*tensor.Tensor) error {
	fu := NewFuser(c, limitBytes)
	for _, t := range ts {
		fu.Add(t)
	}
	return fu.Flush()
}
