package comm

import (
	"sync"

	"repro/internal/tensor"
)

// DefaultFusionBytes mirrors Horovod's default fusion-buffer threshold
// (paper §II-D: "usually set as 16 MB or 32 MB to guarantee that each
// allreduce() is bandwidth dominated").
const DefaultFusionBytes = 16 << 20

// Chunk is one fused allreduce in flight: a packed buffer plus the tensors
// it was packed from. Wait blocks for the collective and scatters the
// averaged values back into the original tensors exactly once; it is safe
// to call from multiple goroutines.
//
// A compressed chunk (codec != nil) rides an allgather of encoded payloads
// instead of a ring allreduce: Wait decodes every rank's block and averages
// them in rank order — the same deterministic arithmetic as
// CompressedAllreduceMean, so results are bit-identical across ranks. When
// the chunk carries an error-feedback residual slot, Wait also stores the
// part of this rank's compensated contribution that the codec discarded.
type Chunk struct {
	h       *Handle
	gh      *GatherHandle // compressed path (nil for exact chunks)
	codec   Codec         // captured at launch; immune to later SetCodec
	res     []float64     // error-feedback residual slot (nil = bare codec)
	payload []float64     // pooled encoded payload, recycled by Wait
	buf     []float64
	tensors []*tensor.Tensor
	once    sync.Once
	err     error
}

// Tensors returns the tensors fused into this chunk, in Add order.
func (ch *Chunk) Tensors() []*tensor.Tensor { return ch.tensors }

// Wait blocks until the fused allreduce completes, scatters the averaged
// buffer back into the source tensors, and returns the operation's error.
// On success the packed buffer is recycled into the fusion buffer pool.
func (ch *Chunk) Wait() error {
	ch.once.Do(func() {
		if ch.gh != nil {
			ch.err = ch.waitCompressed()
		} else {
			ch.err = ch.h.Wait()
		}
		if ch.err != nil {
			return
		}
		off := 0
		for _, t := range ch.tensors {
			copy(t.Data, ch.buf[off:off+t.Len()])
			off += t.Len()
		}
		putBuf(ch.buf)
		ch.buf = nil
	})
	return ch.err
}

// waitCompressed completes a compressed chunk: wait for the allgather,
// update the error-feedback residual from this rank's own payload, then
// average the decoded blocks in rank order into ch.buf.
func (ch *Chunk) waitCompressed() error {
	blocks, err := ch.gh.Wait()
	if err != nil {
		return err
	}
	n := len(ch.buf)
	dec := getBuf(n)
	defer putBuf(dec)
	if ch.res != nil {
		// ch.buf still holds the compensated vector x+r; the payload sent was
		// enc(x+r), so the new residual is (x+r) − dec(enc(x+r)). Decoding the
		// local payload keeps the arithmetic identical to what every peer
		// attributes to this rank.
		if err := decodeInto(ch.codec, dec, ch.payload); err != nil {
			return err
		}
		for i := range ch.res {
			ch.res[i] = ch.buf[i] - dec[i]
		}
	}
	inv := 1 / float64(len(blocks))
	for i := range ch.buf {
		ch.buf[i] = 0
	}
	for _, b := range blocks {
		if err := decodeInto(ch.codec, dec, b); err != nil {
			return err
		}
		for i, v := range dec {
			ch.buf[i] += v * inv
		}
	}
	putBuf(ch.payload)
	ch.payload = nil
	return nil
}

// Fuser batches small tensors into large allreduce payloads, imitating
// Horovod's tensor-fusion buffer. Callers Add tensors (in identical order on
// every rank) and either Flush when done (synchronous use) or consume
// launched chunks incrementally via TakeLaunched/FlushAsync (streaming use:
// the pipelined K-FAC engine reacts to each chunk as it lands instead of
// blocking on the whole set). Tensors are averaged in place.
//
// Chunk boundaries are a deterministic function of the Add sequence and the
// byte limit, so every rank launches identical collectives in identical
// order — the SPMD requirement for the underlying async allreduces.
type Fuser struct {
	comm      *Communicator
	limit     int // bytes
	groupSize int // ≥2 routes chunks through the hierarchical allreduce
	bare      Codec
	ef        *ErrorFeedback
	ordinal   int // chunk ordinal within this fuser's schedule (EF slot key)
	pending   []*tensor.Tensor
	pendingSz int // bytes
	launched  []*Chunk
	taken     int // prefix of launched already handed out
}

// NewFuser creates a fusion buffer over comm with the given byte threshold.
// A non-positive limit selects DefaultFusionBytes.
func NewFuser(comm *Communicator, limitBytes int) *Fuser {
	if limitBytes <= 0 {
		limitBytes = DefaultFusionBytes
	}
	return &Fuser{comm: comm, limit: limitBytes}
}

// SetGroupSize routes every subsequently launched chunk through
// HierarchicalAllreduceMean with the given intra-group rank count — the
// two-level algorithm modeling fast intra-node links (kfac.WithGroupSize /
// kfac-train -group-size). Values ≤ 1 (and ≥ world) keep the flat ring.
// Must be set identically on every rank, before the first Add whose chunk
// it should affect; chunk boundaries are unaffected, so the collective
// schedule stays deterministic.
func (f *Fuser) SetGroupSize(n int) { f.groupSize = n }

// SetCodec compresses every subsequently launched chunk with c, WITHOUT
// error feedback — the biased estimator, kept for A/B experiments (the
// convergence-safety suite demonstrates it diverging under Top-K). Pass
// nil to return to exact transmission. Same SPMD rules as SetGroupSize:
// identical on every rank, set before the first Add it should affect.
// Compression takes precedence over the hierarchical route (compressed
// chunks ride a flat allgather of encoded payloads).
func (f *Fuser) SetCodec(c Codec) { f.bare = c }

// SetErrorFeedback routes every subsequently launched chunk through ef:
// the chunk is compensated with ef's residual for its ordinal before
// encoding with ef.Codec(), and the residual is updated after decode. The
// accumulator outlives the fuser — recreating a fuser each round with an
// identical Add sequence reuses the same residual slots, which is exactly
// how the trainer and both K-FAC engines persist error feedback across
// steps. A nil ef (or ef with a nil codec) transmits exact. Overrides
// SetCodec.
func (f *Fuser) SetErrorFeedback(ef *ErrorFeedback) { f.ef = ef }

// Add enqueues t for averaging. When the pending set reaches the fusion
// threshold, an asynchronous fused allreduce is launched. A single tensor
// larger than the threshold forms a chunk of its own.
func (f *Fuser) Add(t *tensor.Tensor) {
	f.pending = append(f.pending, t)
	f.pendingSz += 8 * t.Len()
	if f.pendingSz >= f.limit {
		f.launch()
	}
}

// launch packs the pending tensors into one buffer and starts an async
// mean-allreduce on it.
func (f *Fuser) launch() {
	if len(f.pending) == 0 {
		return
	}
	total := 0
	for _, t := range f.pending {
		total += t.Len()
	}
	// Drawn from the shared pool; returned by Chunk.Wait after scatter.
	buf := getBuf(total)
	off := 0
	for _, t := range f.pending {
		copy(buf[off:], t.Data)
		off += t.Len()
	}
	codec := f.bare
	if f.ef != nil {
		codec = f.ef.Codec()
	}
	if codec != nil && total > 0 {
		// Compressed path: compensate (error feedback only), encode into a
		// pooled payload, allgather the payloads. Decode/average and the
		// residual update happen in Chunk.Wait. The residual slot is claimed
		// here, on the launching goroutine, so concurrent chunk waiters never
		// touch the accumulator's slot table.
		var res []float64
		if f.ef != nil {
			res = f.ef.slot(f.ordinal, total)
			for i, r := range res {
				buf[i] += r
			}
		}
		payload := encodeInto(codec, getBuf(codec.CompressedLen(total)), buf)
		gh := f.comm.AllgatherVAsync(payload)
		f.launched = append(f.launched, &Chunk{
			gh: gh, codec: codec, res: res, payload: payload,
			buf: buf, tensors: f.pending,
		})
		f.pending = nil
		f.pendingSz = 0
		f.ordinal++
		return
	}
	h := completedHandle()
	if total > 0 {
		// Zero-element chunks (all-empty tensors) need no wire traffic; every
		// rank sees the same sizes, so all skip identically.
		if f.groupSize > 1 {
			h = f.comm.HierarchicalAllreduceMeanAsync(buf, f.groupSize)
		} else {
			h = f.comm.AllreduceMeanAsync(buf)
		}
	}
	f.launched = append(f.launched, &Chunk{h: h, buf: buf, tensors: f.pending})
	f.pending = nil
	f.pendingSz = 0
	f.ordinal++
}

// TakeLaunched returns the chunks launched since the previous call (or
// since creation). It does not force pending tensors out; use FlushAsync at
// the end of the Add sequence.
func (f *Fuser) TakeLaunched() []*Chunk {
	out := f.launched[f.taken:len(f.launched):len(f.launched)]
	f.taken = len(f.launched)
	return out
}

// FlushAsync launches any remaining pending tensors and returns the chunks
// not yet handed out by TakeLaunched. The caller waits on each chunk.
func (f *Fuser) FlushAsync() []*Chunk {
	f.launch()
	return f.TakeLaunched()
}

// Flush launches any remaining fused operation, waits for all in-flight
// operations (including chunks already handed out via TakeLaunched), and
// scatters results back into the original tensors.
func (f *Fuser) Flush() error {
	f.launch()
	var firstErr error
	for _, ch := range f.launched {
		if err := ch.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Drop the backing array: slices previously handed out by TakeLaunched
	// alias it, and reusing it via launched[:0] would overwrite their
	// elements on the next launch.
	f.launched = nil
	f.taken = 0
	return firstErr
}

// AllreduceMeanTensors averages a set of tensors across ranks through a
// fusion buffer — the convenience entry point the trainer uses for gradient
// exchange.
func AllreduceMeanTensors(c *Communicator, limitBytes int, ts ...*tensor.Tensor) error {
	fu := NewFuser(c, limitBytes)
	for _, t := range ts {
		fu.Add(t)
	}
	return fu.Flush()
}
