package comm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// chaosWorld builds a chaos-wrapped in-process world.
func chaosWorld(n int, cfg ChaosConfig) *ChaosFabric {
	return NewChaosFabric(NewInprocFabric(n), n, cfg)
}

// TestChaosDeterministicSchedule replays the same collective schedule under
// the same seed twice and asserts the fault sequence — per-rank delay
// totals, drop counts, retry counts — replays exactly, and that a different
// seed produces a different sequence.
func TestChaosDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []DeliveryMetrics {
		const p = 3
		fab := chaosWorld(p, ChaosConfig{
			Seed:         seed,
			MinLatency:   10 * time.Microsecond,
			MaxLatency:   120 * time.Microsecond,
			DropRate:     0.3,
			MaxRetries:   8,
			RetryBackoff: 10 * time.Microsecond,
		})
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := NewCommunicator(fab.Endpoint(r))
				data := []float64{float64(r + 1), float64(2 * r), 7, 9}
				for i := 0; i < 4; i++ {
					if err := c.AllreduceSum(data); err != nil {
						t.Errorf("rank %d allreduce: %v", r, err)
						return
					}
					if _, err := c.AllgatherV([]float64{float64(r)}); err != nil {
						t.Errorf("rank %d allgather: %v", r, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		out := make([]DeliveryMetrics, p)
		for r := 0; r < p; r++ {
			out[r] = fab.Metrics(r)
		}
		return out
	}

	a, b := run(42), run(42)
	for r := range a {
		if a[r] != b[r] {
			t.Errorf("rank %d: same seed, different fault sequence:\n  %+v\n  %+v", r, a[r], b[r])
		}
	}
	c := run(43)
	same := true
	for r := range a {
		if a[r].Dropped != c[r].Dropped || a[r].InjectedDelay != c[r].InjectedDelay {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical fault sequence (suspicious hash)")
	}
	if total := a[0].Dropped + a[1].Dropped + a[2].Dropped; total == 0 {
		t.Error("expected some drops at DropRate 0.3")
	}
}

// TestChaosLatencyOnlyPreservesValues checks the acceptance property that
// latency injection perturbs timing, never arithmetic: a chaos-free and a
// latency-chaos allreduce produce bit-identical results.
func TestChaosLatencyOnlyPreservesValues(t *testing.T) {
	const p = 4
	run := func(chaos bool) [][]float64 {
		var fab Fabric = NewInprocFabric(p)
		if chaos {
			fab = NewChaosFabric(fab, p, ChaosConfig{
				Seed: 7, MinLatency: 5 * time.Microsecond, MaxLatency: 80 * time.Microsecond,
			})
		}
		out := make([][]float64, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := NewCommunicator(fab.Endpoint(r))
				data := make([]float64, 13)
				for i := range data {
					data[i] = float64((r+1)*(i+3)) * 0.125
				}
				if err := c.AllreduceMean(data); err != nil {
					t.Errorf("rank %d: %v", r, err)
				}
				out[r] = data
			}(r)
		}
		wg.Wait()
		return out
	}
	clean, chaotic := run(false), run(true)
	for r := 0; r < p; r++ {
		for i := range clean[r] {
			if clean[r][i] != chaotic[r][i] {
				t.Fatalf("rank %d elem %d: latency chaos changed the value: %v != %v",
					r, i, chaotic[r][i], clean[r][i])
			}
		}
	}
}

// TestChaosDropRetryTransparent: drops below the retry budget must be
// invisible to the collective result.
func TestChaosDropRetryTransparent(t *testing.T) {
	const p = 3
	fab := chaosWorld(p, ChaosConfig{
		Seed: 11, DropRate: 0.4, MaxRetries: 16, RetryBackoff: 5 * time.Microsecond,
	})
	var wg sync.WaitGroup
	results := make([][]float64, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewCommunicator(fab.Endpoint(r))
			data := []float64{float64(r), 1, 2}
			if err := c.AllreduceSum(data); err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
			results[r] = data
		}(r)
	}
	wg.Wait()
	want := []float64{3, 3, 6} // 0+1+2, 1×3, 2×3
	for r := 0; r < p; r++ {
		for i := range want {
			if results[r][i] != want[i] {
				t.Errorf("rank %d: got %v, want %v", r, results[r], want)
			}
		}
	}
	m := fab.TotalMetrics()
	if m.Dropped == 0 || m.Retried != m.Dropped {
		t.Errorf("expected every drop retried (below budget): %+v", m)
	}
}

// TestChaosRetryExhaustion: DropRate 1 defeats any bounded retry budget and
// must surface ErrDropped rather than hanging or panicking.
func TestChaosRetryExhaustion(t *testing.T) {
	fab := chaosWorld(2, ChaosConfig{Seed: 1, DropRate: 1, MaxRetries: 2, RetryBackoff: time.Microsecond})
	err := fab.Endpoint(0).Send(1, 1<<16, []float64{1})
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("got %v, want ErrDropped", err)
	}
	if m := fab.Metrics(0); m.Dropped != 3 || m.Retried != 2 || m.Sent != 0 {
		t.Errorf("metrics after exhaustion: %+v", m)
	}
}

// TestChaosScriptedKill: the send that exceeds the allowance kills the
// rank; peers sending to it see ErrPeerKilled; its own blocked Recv
// unblocks with ErrRankKilled.
func TestChaosScriptedKill(t *testing.T) {
	fab := chaosWorld(2, ChaosConfig{Seed: 1, Kills: []KillSpec{{Rank: 0, AfterSends: 2}}})
	e0, e1 := fab.Endpoint(0), fab.Endpoint(1)

	// A receive blocked before the kill must unblock when it fires.
	recvErr := make(chan error, 1)
	go func() {
		_, err := e0.Recv(context.Background(), 1, 99<<16)
		recvErr <- err
	}()

	if err := e0.Send(1, 1<<16, []float64{1}); err != nil {
		t.Fatalf("send 1: %v", err)
	}
	if err := e0.Send(1, 2<<16, []float64{2}); err != nil {
		t.Fatalf("send 2: %v", err)
	}
	if err := e0.Send(1, 3<<16, []float64{3}); !errors.Is(err, ErrRankKilled) {
		t.Fatalf("send 3: got %v, want ErrRankKilled", err)
	}
	select {
	case err := <-recvErr:
		if !errors.Is(err, ErrRankKilled) {
			t.Fatalf("blocked recv: got %v, want ErrRankKilled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked recv did not unblock on kill")
	}
	if err := e1.Send(0, 4<<16, []float64{4}); !errors.Is(err, ErrPeerKilled) {
		t.Fatalf("peer send: got %v, want ErrPeerKilled", err)
	}
	if got := fab.Killed(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Killed() = %v, want [0]", got)
	}
}

// TestChaosBandwidthCap: a byte-proportional delay must be recorded for
// large payloads.
func TestChaosBandwidthCap(t *testing.T) {
	fab := chaosWorld(2, ChaosConfig{Seed: 5, BandwidthBps: 8e6}) // 1M floats/s
	payload := make([]float64, 2000)                              // → 2ms injected
	start := time.Now()
	if err := fab.Endpoint(0).Send(1, 1<<16, payload); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 1500*time.Microsecond {
		t.Errorf("bandwidth cap not applied: send took %v", elapsed)
	}
	if m := fab.Metrics(0); m.InjectedDelay < 1500*time.Microsecond || m.Bytes != 16000 {
		t.Errorf("metrics: %+v", m)
	}
}

// TestChaosRecvCtxStillWins: a caller context cancellation must still
// surface as the context error, not be misattributed to a kill.
func TestChaosRecvCtxStillWins(t *testing.T) {
	fab := chaosWorld(2, ChaosConfig{Seed: 1})
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := fab.Endpoint(0).Recv(ctx, 1, 1<<16)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
