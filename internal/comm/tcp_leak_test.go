package comm

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitForGoroutines polls until the goroutine count settles back to at
// most base (with a small tolerance for runtime bookkeeping goroutines),
// returning the final count.
func waitForGoroutines(base int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// freePorts reserves n distinct loopback addresses.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// TestTCPFabricNoLeakOnFailedJoin: when a peer never joins, NewTCPFabric
// must return an error within the timeout (not hang in Accept) and leave
// no goroutines or listeners behind — the tcpcluster early-error leak.
func TestTCPFabricNoLeakOnFailedJoin(t *testing.T) {
	addrs := freePorts(t, 3)
	base := runtime.NumGoroutine()

	// Rank 0 listens for ranks 1 and 2; nobody ever dials it.
	start := time.Now()
	fab, err := NewTCPFabric(0, addrs, 400*time.Millisecond)
	if err == nil {
		fab.Close()
		t.Fatal("NewTCPFabric succeeded with no peers")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("constructor hung %v past its 400ms timeout", elapsed)
	}

	if n := waitForGoroutines(base); n > base {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutines leaked after failed join: %d > %d\n%s", n, base, dumpNew(string(buf)))
	}
	// The listener must be released: rebinding the same address succeeds.
	ln, err := net.Listen("tcp", addrs[0])
	if err != nil {
		t.Fatalf("listen address still held after failed join: %v", err)
	}
	ln.Close()
}

// TestTCPFabricNoLeakAfterClose: a successfully formed mesh must wind down
// completely on Close.
func TestTCPFabricNoLeakAfterClose(t *testing.T) {
	const p = 3
	addrs := freePorts(t, p)
	base := runtime.NumGoroutine()

	fabs := make([]*TCPFabric, p)
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			f, err := NewTCPFabric(r, addrs, 5*time.Second)
			fabs[r] = f
			errs <- err
		}(r)
	}
	for i := 0; i < p; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Exercise the mesh so reader goroutines are demonstrably alive first.
	done := make(chan error, 2)
	go func() { done <- fabs[1].Send(0, 7<<16, []float64{1, 2, 3}) }()
	go func() {
		_, err := fabs[0].Recv(context.Background(), 1, 7<<16)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range fabs {
		f.Close()
	}
	if n := waitForGoroutines(base); n > base {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutines leaked after Close: %d > %d\n%s", n, base, dumpNew(string(buf)))
	}
}

// dumpNew trims a full stack dump to the comm-related goroutines, keeping
// leak reports readable.
func dumpNew(stacks string) string {
	var out []string
	for _, g := range strings.Split(stacks, "\n\n") {
		if strings.Contains(g, "repro/internal/comm") {
			out = append(out, g)
		}
	}
	if len(out) == 0 {
		return "(no comm goroutines in dump)"
	}
	return fmt.Sprintf("%d comm goroutines:\n%s", len(out), strings.Join(out, "\n\n"))
}
