package comm

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// TCPFabric is a full-mesh TCP transport: every pair of ranks shares one
// connection, established deterministically (lower rank listens, higher rank
// dials) so the mesh forms without a coordinator. Wire format per message:
//
//	uint64 tag | uint32 count | count × float64 (little endian)
//
// A reader goroutine per peer demultiplexes frames into per-peer mailboxes.
type TCPFabric struct {
	rank, size int
	conns      []net.Conn
	writeMu    []sync.Mutex
	boxes      []*mailbox
	listener   net.Listener
	closeOnce  sync.Once
}

// handshake frame: the dialing rank announces itself.
type hello struct {
	Rank uint32
}

// NewTCPFabric joins a TCP world. addrs lists every rank's listen address
// (host:port), indexed by rank; addrs[rank] is this process's listen
// address. The call blocks until connections to all peers are established
// or the timeout elapses.
func NewTCPFabric(rank int, addrs []string, timeout time.Duration) (*TCPFabric, error) {
	size := len(addrs)
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("comm: rank %d out of range for %d addrs", rank, size)
	}
	f := &TCPFabric{
		rank: rank, size: size,
		conns:   make([]net.Conn, size),
		writeMu: make([]sync.Mutex, size),
		boxes:   make([]*mailbox, size),
	}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	ln, err := net.Listen("tcp", addrs[rank])
	if err != nil {
		return nil, fmt.Errorf("comm: rank %d listen %s: %w", rank, addrs[rank], err)
	}
	f.listener = ln

	deadline := time.Now().Add(timeout)
	// Bound the accept loop by the same deadline the dialers use. Without
	// it a peer that never connects left Accept — and therefore this whole
	// constructor — blocked forever, leaking the listener and every
	// goroutine of the partially formed mesh (the tcpcluster early-error
	// leak). With it, every construction goroutine provably terminates by
	// the deadline and the error path can tear the mesh down.
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, size)

	// Accept connections from all higher ranks.
	nAccept := size - rank - 1
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < nAccept; i++ {
			conn, err := ln.Accept()
			if err != nil {
				errCh <- fmt.Errorf("comm: rank %d accept: %w", rank, err)
				return
			}
			// The handshake read is deadline-bounded too: an accepted peer
			// that never says hello (crash between dial and write, or a
			// stray prober) must not wedge construction past its timeout.
			_ = conn.SetReadDeadline(deadline)
			var h hello
			if err := binary.Read(conn, binary.LittleEndian, &h.Rank); err != nil {
				conn.Close()
				errCh <- fmt.Errorf("comm: rank %d handshake read: %w", rank, err)
				return
			}
			_ = conn.SetReadDeadline(time.Time{}) // back to blocking for readLoop
			peer := int(h.Rank)
			if peer <= rank || peer >= size {
				conn.Close()
				errCh <- fmt.Errorf("comm: rank %d got bad hello from %d", rank, peer)
				return
			}
			f.conns[peer] = conn
			go f.readLoop(peer, conn)
		}
	}()

	// Dial all lower ranks.
	for peer := 0; peer < rank; peer++ {
		wg.Add(1)
		go func(peer int) {
			defer wg.Done()
			var conn net.Conn
			var err error
			for {
				d := net.Dialer{Deadline: deadline}
				conn, err = d.Dial("tcp", addrs[peer])
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					errCh <- fmt.Errorf("comm: rank %d dial rank %d (%s): %w", rank, peer, addrs[peer], err)
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err := binary.Write(conn, binary.LittleEndian, uint32(rank)); err != nil {
				conn.Close()
				errCh <- fmt.Errorf("comm: rank %d handshake write: %w", rank, err)
				return
			}
			f.conns[peer] = conn
			go f.readLoop(peer, conn)
		}(peer)
	}

	wg.Wait()
	select {
	case err := <-errCh:
		f.Close()
		return nil, err
	default:
	}
	return f, nil
}

// readLoop demultiplexes incoming frames from one peer into its mailbox.
func (f *TCPFabric) readLoop(peer int, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 1<<16)
	hdr := make([]byte, 12)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			f.boxes[peer].close()
			return
		}
		tag := binary.LittleEndian.Uint64(hdr[0:8])
		count := binary.LittleEndian.Uint32(hdr[8:12])
		buf := make([]byte, 8*int(count))
		if _, err := io.ReadFull(br, buf); err != nil {
			f.boxes[peer].close()
			return
		}
		data := make([]float64, count)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		f.boxes[peer].put(tag, data)
	}
}

// Rank implements Transport.
func (f *TCPFabric) Rank() int { return f.rank }

// Size implements Transport.
func (f *TCPFabric) Size() int { return f.size }

// Send implements Transport.
func (f *TCPFabric) Send(to int, tag uint64, data []float64) error {
	if to == f.rank {
		cp := make([]float64, len(data))
		copy(cp, data)
		f.boxes[f.rank].put(tag, cp)
		return nil
	}
	if to < 0 || to >= f.size || f.conns[to] == nil {
		return fmt.Errorf("comm: send to invalid/unconnected rank %d", to)
	}
	buf := make([]byte, 12+8*len(data))
	binary.LittleEndian.PutUint64(buf[0:8], tag)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	f.writeMu[to].Lock()
	defer f.writeMu[to].Unlock()
	_, err := f.conns[to].Write(buf)
	return err
}

// Recv implements Transport.
func (f *TCPFabric) Recv(ctx context.Context, from int, tag uint64) ([]float64, error) {
	if from < 0 || from >= f.size {
		return nil, fmt.Errorf("comm: recv from invalid rank %d", from)
	}
	return f.boxes[from].take(ctx, tag)
}

// Close implements Transport.
func (f *TCPFabric) Close() error {
	f.closeOnce.Do(func() {
		if f.listener != nil {
			f.listener.Close()
		}
		for _, c := range f.conns {
			if c != nil {
				c.Close()
			}
		}
		for _, b := range f.boxes {
			b.close()
		}
	})
	return nil
}

var _ Transport = (*TCPFabric)(nil)
