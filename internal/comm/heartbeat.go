package comm

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Heartbeat-based failure detection. Collectives block forever on a dead
// peer (the transport cannot distinguish "slow" from "gone"), so liveness
// is tracked out of band: every rank streams small heartbeat messages to
// every peer on a reserved tag below the collective namespace, and a
// monitor goroutine flags peers whose stream goes quiet for longer than
// the timeout. The monitor never touches the collective tag sequence —
// heartbeats and collectives multiplex freely on one transport.
//
// Detection is the trigger for recovery, not recovery itself: the
// elastic trainer reacts to OnFailure by hard-aborting the generation's
// communicator context and rebuilding a resized world (see
// docs/ARCHITECTURE.md, "Failure model & recovery").

// heartbeatTag is the reserved heartbeat tag, below the collective
// namespace: collective tags are ≥ 1<<16 (Communicator.nextOp shifts its
// sequence by 16 bits), so they never collide. All heartbeats of a pair
// share this one tag — the stream has no ordering or completeness
// requirement, so a lost message is simply a gap in the mailbox queue,
// never a wedge. Fault-injection layers salt their per-message decisions
// with a usage ordinal for reused low-range tags (see comm.ChaosTransport),
// so sharing a tag does not freeze one fault fate for the whole stream.
const heartbeatTag = uint64(1) << 15

// HeartbeatConfig tunes the failure detector.
type HeartbeatConfig struct {
	// Interval between heartbeats to each peer (default 50ms).
	Interval time.Duration
	// Timeout after which a silent peer is declared failed (default
	// 10×Interval). It must comfortably exceed the transport's worst-case
	// delivery delay (including injected chaos latency).
	Timeout time.Duration
}

func (c *HeartbeatConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * c.Interval
	}
}

// HeartbeatMonitor streams heartbeats to all peers and watches for peers
// going silent. Create it with StartHeartbeat (or Communicator.Heartbeat)
// and Close it when the rank leaves the world.
type HeartbeatMonitor struct {
	t      Transport
	cfg    HeartbeatConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	lastSeen  map[int]time.Time
	failed    map[int]bool
	onFailure func(rank int)
}

// StartHeartbeat begins heartbeating over t. onFailure (may be nil) is
// invoked at most once per failed peer, from the monitor goroutine.
func StartHeartbeat(t Transport, cfg HeartbeatConfig, onFailure func(rank int)) *HeartbeatMonitor {
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &HeartbeatMonitor{
		t: t, cfg: cfg, ctx: ctx, cancel: cancel,
		lastSeen:  make(map[int]time.Time),
		failed:    make(map[int]bool),
		onFailure: onFailure,
	}
	start := time.Now()
	self := t.Rank()
	for peer := 0; peer < t.Size(); peer++ {
		if peer != self {
			m.lastSeen[peer] = start // grace period: one full timeout from start
		}
	}
	for peer := 0; peer < t.Size(); peer++ {
		if peer == self {
			continue
		}
		m.wg.Add(2)
		go m.sendLoop(peer)
		go m.recvLoop(peer)
	}
	m.wg.Add(1)
	go m.watchLoop()
	return m
}

// Heartbeat starts a failure detector over this communicator's transport.
func (c *Communicator) Heartbeat(cfg HeartbeatConfig, onFailure func(rank int)) *HeartbeatMonitor {
	return StartHeartbeat(c.t, cfg, onFailure)
}

// sendLoop streams heartbeats to one peer until the monitor closes. Send
// errors are ignored: a dead or unreachable peer is the watcher's finding
// to make, from the silence of the reverse stream.
func (m *HeartbeatMonitor) sendLoop(peer int) {
	defer m.wg.Done()
	payload := []float64{0}
	ticker := time.NewTicker(m.cfg.Interval)
	defer ticker.Stop()
	for n := float64(0); ; n++ {
		payload[0] = n
		_ = m.t.Send(peer, heartbeatTag, payload)
		select {
		case <-m.ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// recvLoop consumes one peer's heartbeat stream, refreshing lastSeen. A
// dropped heartbeat is a gap, not a wedge: every message uses the same
// tag, so the next one that does arrive refreshes liveness.
func (m *HeartbeatMonitor) recvLoop(peer int) {
	defer m.wg.Done()
	for {
		if _, err := m.t.Recv(m.ctx, peer, heartbeatTag); err != nil {
			return // monitor closed, transport closed, or self killed
		}
		m.mu.Lock()
		m.lastSeen[peer] = time.Now()
		m.mu.Unlock()
	}
}

// watchLoop declares peers failed when their stream goes silent.
func (m *HeartbeatMonitor) watchLoop() {
	defer m.wg.Done()
	period := m.cfg.Interval / 2
	if period <= 0 {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case now := <-ticker.C:
			var newlyFailed []int
			m.mu.Lock()
			for peer, seen := range m.lastSeen {
				if !m.failed[peer] && now.Sub(seen) > m.cfg.Timeout {
					m.failed[peer] = true
					newlyFailed = append(newlyFailed, peer)
				}
			}
			m.mu.Unlock()
			if m.onFailure != nil {
				for _, peer := range newlyFailed {
					m.onFailure(peer)
				}
			}
		}
	}
}

// Failed lists the peers declared dead so far, ascending.
func (m *HeartbeatMonitor) Failed() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for peer, f := range m.failed {
		if f {
			out = append(out, peer)
		}
	}
	sort.Ints(out)
	return out
}

// Close stops all monitor goroutines and waits for them to exit. It does
// not close the underlying transport.
func (m *HeartbeatMonitor) Close() {
	m.cancel()
	m.wg.Wait()
}
