package comm

// Asynchronous collectives in the style of Horovod's communication handles
// (paper §V-A): the caller launches operations as inputs become available
// and waits for completion in batches. The tag namespace for every async
// operation is reserved synchronously at call time, so as long as every
// rank issues the same collectives in the same program order, overlapping
// operations cannot cross-match on the wire — this is the SPMD ordering
// contract the pipelined K-FAC engine relies on (see docs/ARCHITECTURE.md).

// Handle is an asynchronous collective in flight.
type Handle struct {
	done chan struct{}
	err  error
}

// Wait blocks until the operation completes and returns its error.
func (h *Handle) Wait() error {
	<-h.done
	return h.err
}

// completedHandle returns an already finished handle. The fuser uses it for
// degenerate (empty) chunks that need no communication.
func completedHandle() *Handle {
	h := &Handle{done: make(chan struct{})}
	close(h.done)
	return h
}

// WaitAll aggregates a batch of handles: it waits for every operation and
// returns the first error encountered.
func WaitAll(hs ...*Handle) error {
	var firstErr error
	for _, h := range hs {
		if err := h.Wait(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AllreduceSumAsync starts an asynchronous in-place sum-allreduce. The tag
// namespace is reserved synchronously at call time, so as long as every rank
// issues the same collectives in the same program order, overlapping
// operations cannot cross-match. The caller must not touch data until Wait
// returns.
func (c *Communicator) AllreduceSumAsync(data []float64) *Handle {
	base := c.nextOp()
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = c.allreduceSumTagged(data, base)
	}()
	return h
}

// AllreduceMeanAsync starts an asynchronous in-place mean-allreduce.
func (c *Communicator) AllreduceMeanAsync(data []float64) *Handle {
	base := c.nextOp()
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		if err := c.allreduceSumTagged(data, base); err != nil {
			h.err = err
			return
		}
		inv := 1 / float64(c.Size())
		for i := range data {
			data[i] *= inv
		}
	}()
	return h
}

// GatherHandle is an asynchronous variable-length allgather in flight.
type GatherHandle struct {
	done   chan struct{}
	blocks [][]float64
	err    error
}

// Wait blocks until the allgather completes and returns the per-rank
// payloads (indexed by rank, identical on every rank).
func (h *GatherHandle) Wait() ([][]float64, error) {
	<-h.done
	return h.blocks, h.err
}

// AllgatherVAsync starts an asynchronous AllgatherV. The pipelined K-FAC
// engine uses one call per layer to stream eigendecompositions instead of
// blocking on a monolithic gather. The caller must not mutate mine until
// Wait returns.
func (c *Communicator) AllgatherVAsync(mine []float64) *GatherHandle {
	base := c.nextOp()
	h := &GatherHandle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.blocks, h.err = c.allgatherVTagged(mine, base)
	}()
	return h
}
