package comm

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/testenv"
)

// Multi-process SPMD conformance: a world of REAL child processes joined
// over the TCP transport must produce bit-identical collective results on
// every rank, matching the in-process fabric exactly — and every child
// must wind its mesh down cleanly (no goroutines, no held listeners)
// before exiting. This is the conformance layer under the multi-process
// benchmark driver (kfac-bench -fabric tcp): if checksums diverge here,
// w16/w32 trajectories are measuring different computations per rank.

// tcpSPMDWorld is the conformance world size: 16 processes, matching the
// smallest committed TCP benchmark world.
const tcpSPMDWorld = 16

const (
	tcpSPMDRankEnv  = "REPRO_TCP_SPMD_RANK"
	tcpSPMDAddrsEnv = "REPRO_TCP_SPMD_ADDRS"
)

// spmdSequence runs a fixed program of collectives — flat allreduce,
// hierarchical allreduce (group 4), broadcast, allgather, reduce-scatter —
// over deterministic per-rank data and folds every resulting bit pattern
// into one checksum. Identical on every rank iff the transport delivered
// every collective exactly.
func spmdSequence(c *Communicator) (uint64, error) {
	rank, world := c.Rank(), c.Size()
	h := fnv.New64a()
	fold := func(data []float64) {
		var buf [8]byte
		for _, v := range data {
			bits := math.Float64bits(v)
			for i := 0; i < 8; i++ {
				buf[i] = byte(bits >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	fill := func(n, salt int) []float64 {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64((rank+1)*(i+salt+1)) / 7.0
		}
		return data
	}

	ar := fill(37, 1)
	if err := c.AllreduceMean(ar); err != nil {
		return 0, fmt.Errorf("allreduce: %w", err)
	}
	fold(ar)

	hier := fill(53, 2)
	if err := c.HierarchicalAllreduceMean(hier, 4); err != nil {
		return 0, fmt.Errorf("hierarchical allreduce: %w", err)
	}
	fold(hier)

	bc := make([]float64, 19)
	if rank == 0 {
		for i := range bc {
			bc[i] = float64(3*i+1) / 11.0
		}
	}
	if err := c.Broadcast(bc, 0); err != nil {
		return 0, fmt.Errorf("broadcast: %w", err)
	}
	fold(bc)

	parts, err := c.AllgatherV(fill(rank+1, 3))
	if err != nil {
		return 0, fmt.Errorf("allgather: %w", err)
	}
	for _, part := range parts {
		fold(part)
	}

	rs, err := c.ReduceScatter(fill(world*4, 5))
	if err != nil {
		return 0, fmt.Errorf("reduce-scatter: %w", err)
	}
	// Reduce-scatter results are per-rank by design; allgather them so the
	// folded checksum stays rank-independent when the transport is correct.
	gathered, err := c.AllgatherV(rs)
	if err != nil {
		return 0, fmt.Errorf("allgather scattered: %w", err)
	}
	for _, part := range gathered {
		fold(part)
	}

	if err := c.Barrier(); err != nil {
		return 0, fmt.Errorf("barrier: %w", err)
	}
	return h.Sum64(), nil
}

// TestTCPSPMDHelper is the child-process entry of the conformance test: it
// joins the TCP mesh described by the environment, runs the collective
// program, prints its checksum, and verifies clean teardown before
// exiting. Skipped unless spawned by TestTCPFabricSPMDConformance.
func TestTCPSPMDHelper(t *testing.T) {
	rankStr := os.Getenv(tcpSPMDRankEnv)
	if rankStr == "" {
		t.Skip("helper entry; spawned by TestTCPFabricSPMDConformance")
	}
	rank, err := strconv.Atoi(rankStr)
	if err != nil {
		t.Fatal(err)
	}
	addrs := strings.Split(os.Getenv(tcpSPMDAddrsEnv), ",")
	base := runtime.NumGoroutine()

	fab, err := NewTCPFabric(rank, addrs, 30*time.Second)
	if err != nil {
		t.Fatalf("rank %d join: %v", rank, err)
	}
	sum, seqErr := spmdSequence(NewCommunicator(fab))
	closeErr := fab.Close()
	if seqErr != nil {
		t.Fatalf("rank %d: %v", rank, seqErr)
	}
	if closeErr != nil {
		t.Fatalf("rank %d close: %v", rank, closeErr)
	}
	// Teardown discipline: all reader goroutines and the listener must be
	// gone — the same clean-exit contract the leak tests pin in-process.
	if n := waitForGoroutines(base); n > base {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("rank %d leaked goroutines after Close: %d > %d\n%s", rank, n, base, dumpNew(string(buf)))
	}
	// The parent greps this token from the test output.
	fmt.Printf("SPMD_SUM rank=%d sum=%016x\n", rank, sum)
}

// TestTCPFabricSPMDConformance spawns tcpSPMDWorld real OS processes (the
// test binary re-executing TestTCPSPMDHelper), each joining a TCP mesh on
// reserved loopback ports, and asserts every process reports the same
// collective checksum — bit-identical to the in-process fabric running the
// identical program.
func TestTCPFabricSPMDConformance(t *testing.T) {
	if testenv.Short() {
		t.Skip("spawns 16 OS processes; skipped in short mode (CI multiproc-smoke runs it)")
	}
	world := tcpSPMDWorld

	// Reference: the same program over the in-process fabric.
	fab := NewInprocFabric(world)
	ref := make([]uint64, world)
	refErrs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ref[r], refErrs[r] = spmdSequence(NewCommunicator(fab.Endpoint(r)))
		}(r)
	}
	wg.Wait()
	for r, err := range refErrs {
		if err != nil {
			t.Fatalf("inproc rank %d: %v", r, err)
		}
	}
	for r := 1; r < world; r++ {
		if ref[r] != ref[0] {
			t.Fatalf("inproc checksums differ: rank %d %016x vs rank 0 %016x", r, ref[r], ref[0])
		}
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := freePorts(t, world)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type child struct {
		cmd *exec.Cmd
		out *bytes.Buffer
	}
	children := make([]child, 0, world)
	killAll := func() {
		for _, ch := range children {
			if ch.cmd.Process != nil {
				_ = ch.cmd.Process.Kill()
			}
		}
	}
	for r := 0; r < world; r++ {
		var out bytes.Buffer
		cmd := exec.CommandContext(ctx, exe, "-test.run", "^TestTCPSPMDHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", tcpSPMDRankEnv, r),
			fmt.Sprintf("%s=%s", tcpSPMDAddrsEnv, strings.Join(addrs, ",")),
		)
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			killAll()
			t.Fatalf("spawn rank %d: %v", r, err)
		}
		children = append(children, child{cmd: cmd, out: &out})
	}
	for r, ch := range children {
		if err := ch.cmd.Wait(); err != nil {
			killAll()
			t.Fatalf("rank %d process failed: %v\n%s", r, err, ch.out.String())
		}
	}

	// Every child must report exactly the in-process checksum.
	for r, ch := range children {
		sum, ok := parseSPMDSum(ch.out.String(), r)
		if !ok {
			t.Fatalf("rank %d output missing SPMD_SUM line:\n%s", r, ch.out.String())
		}
		if sum != ref[0] {
			t.Errorf("rank %d TCP checksum %016x != inproc %016x", r, sum, ref[0])
		}
	}
}

// parseSPMDSum extracts the helper's checksum token for a rank.
func parseSPMDSum(out string, rank int) (uint64, bool) {
	prefix := fmt.Sprintf("SPMD_SUM rank=%d sum=", rank)
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, prefix) {
			sum, err := strconv.ParseUint(strings.TrimPrefix(line, prefix), 16, 64)
			return sum, err == nil
		}
	}
	return 0, false
}
