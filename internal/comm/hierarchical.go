package comm

import (
	"fmt"
)

// HierarchicalAllreduceMean averages data across all ranks using a
// two-level algorithm that mirrors Horovod's hierarchical allreduce on
// multi-GPU nodes (the paper's platform has 4 V100s per node):
//
//  1. intra-group reduce: every member sends to its group leader, which
//     accumulates (models fast intra-node links, e.g. NVLink);
//  2. inter-leader ring allreduce over one representative per group
//     (models the inter-node InfiniBand fabric);
//  3. intra-group broadcast of the result from each leader.
//
// groupSize is the number of consecutive ranks per group (a trailing group
// may be smaller). Every rank receives the identical leader-computed
// result. The sum is grouped differently than the flat ring's, so for
// arbitrary floating-point inputs the result agrees with AllreduceMean to
// rounding (and exactly — bit for bit — whenever the sums are exactly
// representable, e.g. integer-valued data; see
// TestHierarchicalBitEqualsFlatOnIntegerData).
func (c *Communicator) HierarchicalAllreduceMean(data []float64, groupSize int) error {
	return c.hierarchicalMeanTagged(data, groupSize, c.nextOp())
}

// HierarchicalAllreduceMeanAsync starts an asynchronous hierarchical
// mean-allreduce; the gradient/factor fusion path uses it when a group
// size is configured (Fuser.SetGroupSize). The tag namespace is reserved
// synchronously at call time, like every other async collective.
func (c *Communicator) HierarchicalAllreduceMeanAsync(data []float64, groupSize int) *Handle {
	base := c.nextOp()
	h := &Handle{done: make(chan struct{})}
	go func() {
		defer close(h.done)
		h.err = c.hierarchicalMeanTagged(data, groupSize, base)
	}()
	return h
}

// hierarchicalMeanTagged is the hierarchical mean-allreduce body with an
// externally reserved tag base. Degenerate group sizes (≤1, or ≥ world)
// fall back to the flat ring within the same tag namespace, so exactly one
// namespace is consumed per call on every rank.
func (c *Communicator) hierarchicalMeanTagged(data []float64, groupSize int, base uint64) error {
	p := c.Size()
	if groupSize <= 1 || groupSize >= p {
		if err := c.allreduceSumTagged(data, base); err != nil {
			return err
		}
		inv := 1 / float64(p)
		for i := range data {
			data[i] *= inv
		}
		return nil
	}
	r := c.Rank()
	group := r / groupSize
	leader := group * groupSize
	numGroups := (p + groupSize - 1) / groupSize

	// Phase 1: members → leader.
	if r != leader {
		if err := c.t.Send(leader, opTag(base, 1), data); err != nil {
			return err
		}
	} else {
		end := leader + groupSize
		if end > p {
			end = p
		}
		for m := leader + 1; m < end; m++ {
			in, err := c.recv(m, opTag(base, 1))
			if err != nil {
				return err
			}
			if len(in) != len(data) {
				return fmt.Errorf("comm: hierarchical phase-1 size mismatch: %d != %d", len(in), len(data))
			}
			for i := range data {
				data[i] += in[i]
			}
		}
	}

	// Phase 2: ring allreduce among leaders, reusing the shared ring-phase
	// helpers over a ring indexed by group number.
	if r == leader && numGroups > 1 {
		counts, displs := split(len(data), numGroups)
		rg := ring{
			next:  mod(group+1, numGroups) * groupSize,
			prev:  mod(group-1, numGroups) * groupSize,
			index: group,
			size:  numGroups,
		}
		if err := c.ringReduceScatter(data, counts, displs, rg, base, uint16Step(2, 0)); err != nil {
			return err
		}
		if err := c.ringAllgatherChunks(data, counts, displs, rg, base, uint16Step(3, 0)); err != nil {
			return err
		}
	}

	// Phase 3: leader → members, with the mean scaling applied once on the
	// leader before distribution.
	if r == leader {
		inv := 1 / float64(p)
		for i := range data {
			data[i] *= inv
		}
		end := leader + groupSize
		if end > p {
			end = p
		}
		for m := leader + 1; m < end; m++ {
			if err := c.t.Send(m, opTag(base, 4), data); err != nil {
				return err
			}
		}
		return nil
	}
	in, err := c.recv(leader, opTag(base, 4))
	if err != nil {
		return err
	}
	copy(data, in)
	return nil
}

// uint16Step packs (phase, step) into a distinct tag step value.
func uint16Step(phase, s int) int { return phase*4096 + s }
