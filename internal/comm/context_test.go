package comm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// A cancelled context must unblock a Recv that would otherwise wait forever.
func TestRecvUnblocksOnContextCancel(t *testing.T) {
	fab := NewInprocFabric(2)
	e := fab.Endpoint(0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Recv(ctx, 1, 42)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the receiver block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Recv returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on context cancellation")
	}
}

// A message arriving after an aborted Recv stays queued for the next Recv.
func TestAbortedRecvDoesNotConsumeMessage(t *testing.T) {
	fab := NewInprocFabric(2)
	a, b := fab.Endpoint(0), fab.Endpoint(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Recv(ctx, 0, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Recv returned %v", err)
	}
	if err := a.Send(1, 7, []float64{3}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(context.Background(), 0, 7)
	if err != nil || got[0] != 3 {
		t.Fatalf("queued message lost after aborted Recv: %v %v", got, err)
	}
}

// A blocked collective on a context-bound communicator returns the context
// error on the rank whose peer never shows up.
func TestCollectiveAbortsOnContextCancel(t *testing.T) {
	fab := NewInprocFabric(2)
	ctx, cancel := context.WithCancel(context.Background())
	c0 := NewCommunicator(fab.Endpoint(0)).WithContext(ctx)
	done := make(chan error, 1)
	go func() {
		done <- c0.AllreduceSum([]float64{1, 2, 3}) // rank 1 never joins
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("allreduce returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("allreduce did not abort on cancellation")
	}
}

// Cancelling one rank's context must cascade: the aborted rank stops
// participating, and the remaining ranks' collectives (bound to the same
// context here) also unblock rather than deadlock.
func TestAllRanksUnblockOnSharedContextCancel(t *testing.T) {
	const p = 3
	fab := NewInprocFabric(p)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := NewCommunicator(fab.Endpoint(r)).WithContext(ctx)
			if r == 0 {
				// Rank 0 never enters the collective; it just cancels.
				time.Sleep(20 * time.Millisecond)
				cancel()
				errs[r] = context.Canceled
				return
			}
			errs[r] = c.AllreduceSum(make([]float64, 128))
		}(r)
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("ranks deadlocked after cancellation")
	}
	for r := 1; r < p; r++ {
		if !errors.Is(errs[r], context.Canceled) {
			t.Errorf("rank %d returned %v, want context.Canceled", r, errs[r])
		}
	}
}

// WithContext must share the tag sequence with its parent so collectives
// issued through either stay matched across ranks.
func TestWithContextSharesTagSequence(t *testing.T) {
	fab := NewInprocFabric(2)
	base0 := NewCommunicator(fab.Endpoint(0))
	base1 := NewCommunicator(fab.Endpoint(1))
	bound0 := base0.WithContext(context.Background())

	var wg sync.WaitGroup
	var err0, err1 error
	buf0, buf1 := []float64{1}, []float64{2}
	wg.Add(2)
	go func() {
		defer wg.Done()
		// Rank 0 alternates between parent and derived communicator.
		if err0 = base0.AllreduceSum(buf0); err0 != nil {
			return
		}
		err0 = bound0.AllreduceSum(buf0)
	}()
	go func() {
		defer wg.Done()
		if err1 = base1.AllreduceSum(buf1); err1 != nil {
			return
		}
		err1 = base1.AllreduceSum(buf1)
	}()
	wg.Wait()
	if err0 != nil || err1 != nil {
		t.Fatalf("allreduce errors: %v %v", err0, err1)
	}
	if buf0[0] != 6 || buf1[0] != 6 {
		t.Fatalf("results diverged: %v %v (derived communicator must share the tag sequence)", buf0[0], buf1[0])
	}
}
