package comm

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestReduceToEachRoot(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8} {
		for root := 0; root < p; root++ {
			p, root := p, root
			t.Run(fmt.Sprintf("p%d_root%d", p, root), func(t *testing.T) {
				var mu sync.Mutex
				rootData := make([]float64, 3)
				runWorld(t, p, func(c *Communicator) error {
					data := []float64{float64(c.Rank()), 1, float64(c.Rank() * 2)}
					if err := c.Reduce(data, root); err != nil {
						return err
					}
					if c.Rank() == root {
						mu.Lock()
						copy(rootData, data)
						mu.Unlock()
					}
					return nil
				})
				sumR := float64(p * (p - 1) / 2)
				want := []float64{sumR, float64(p), 2 * sumR}
				for i := range want {
					if math.Abs(rootData[i]-want[i]) > 1e-9 {
						t.Fatalf("root data = %v, want %v", rootData, want)
					}
				}
			})
		}
	}
}

func TestReduceNonRootUnchanged(t *testing.T) {
	runWorld(t, 4, func(c *Communicator) error {
		data := []float64{float64(c.Rank())}
		if err := c.Reduce(data, 0); err != nil {
			return err
		}
		if c.Rank() != 0 && data[0] != float64(c.Rank()) {
			return fmt.Errorf("rank %d buffer clobbered: %v", c.Rank(), data)
		}
		return nil
	})
}

func TestReduceScatterMatchesAllreduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6} {
		for _, n := range []int{1, 7, 16, 100} {
			p, n := p, n
			t.Run(fmt.Sprintf("p%d_n%d", p, n), func(t *testing.T) {
				var mu sync.Mutex
				got := make(map[int][]float64)
				runWorld(t, p, func(c *Communicator) error {
					data := make([]float64, n)
					for i := range data {
						data[i] = float64(c.Rank()*100 + i)
					}
					chunk, err := c.ReduceScatter(data)
					if err != nil {
						return err
					}
					mu.Lock()
					got[c.Rank()] = chunk
					mu.Unlock()
					return nil
				})
				// Expected full sum: Σ_r (100r + i) = 100·p(p−1)/2 + p·i.
				full := make([]float64, n)
				for i := range full {
					full[i] = 100*float64(p*(p-1)/2) + float64(p*i)
				}
				counts, displs := split(n, p)
				for r := 0; r < p; r++ {
					own := ((r+1)%p + p) % p
					want := full[displs[own] : displs[own]+counts[own]]
					if len(got[r]) != len(want) {
						t.Fatalf("rank %d chunk len %d, want %d", r, len(got[r]), len(want))
					}
					for i := range want {
						if math.Abs(got[r][i]-want[i]) > 1e-9 {
							t.Fatalf("rank %d chunk = %v, want %v", r, got[r], want)
						}
					}
				}
			})
		}
	}
}

func TestOwnedChunkConsistentWithReduceScatter(t *testing.T) {
	runWorld(t, 4, func(c *Communicator) error {
		n := 10
		idx, off, length := c.OwnedChunk(n)
		counts, displs := split(n, 4)
		wantIdx := (c.Rank() + 1) % 4
		if idx != wantIdx || off != displs[wantIdx] || length != counts[wantIdx] {
			return fmt.Errorf("OwnedChunk = (%d,%d,%d)", idx, off, length)
		}
		return nil
	})
}

func TestGatherVariableLengths(t *testing.T) {
	const p = 4
	const root = 2
	var mu sync.Mutex
	var gathered [][]float64
	runWorld(t, p, func(c *Communicator) error {
		mine := make([]float64, c.Rank()+1)
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		out, err := c.Gather(mine, root)
		if err != nil {
			return err
		}
		if c.Rank() == root {
			mu.Lock()
			gathered = out
			mu.Unlock()
		} else if out != nil {
			return fmt.Errorf("non-root got non-nil gather result")
		}
		return nil
	})
	if len(gathered) != p {
		t.Fatalf("gathered %d blocks", len(gathered))
	}
	for r := 0; r < p; r++ {
		if len(gathered[r]) != r+1 {
			t.Fatalf("block %d len %d", r, len(gathered[r]))
		}
		for _, v := range gathered[r] {
			if v != float64(r) {
				t.Fatalf("block %d value %v", r, v)
			}
		}
	}
}

func TestScatterRoundTripsGather(t *testing.T) {
	const p = 3
	runWorld(t, p, func(c *Communicator) error {
		var chunks [][]float64
		if c.Rank() == 0 {
			chunks = [][]float64{{0}, {1, 1}, {2, 2, 2}}
		}
		mine, err := c.Scatter(chunks, 0)
		if err != nil {
			return err
		}
		if len(mine) != c.Rank()+1 {
			return fmt.Errorf("rank %d scatter len %d", c.Rank(), len(mine))
		}
		for _, v := range mine {
			if v != float64(c.Rank()) {
				return fmt.Errorf("rank %d scatter value %v", c.Rank(), v)
			}
		}
		return nil
	})
}

func TestScatterWrongChunkCount(t *testing.T) {
	fab := NewInprocFabric(1)
	c := NewCommunicator(fab.Endpoint(0))
	if _, err := c.Scatter([][]float64{{1}, {2}}, 0); err == nil {
		t.Error("expected error for wrong chunk count")
	}
}

func TestReduceScatterSingleRank(t *testing.T) {
	fab := NewInprocFabric(1)
	c := NewCommunicator(fab.Endpoint(0))
	out, err := c.ReduceScatter([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1 {
		t.Errorf("single-rank reduce-scatter = %v", out)
	}
}

func TestHierarchicalAllreduceMatchesFlat(t *testing.T) {
	for _, tc := range []struct{ p, g, n int }{
		{4, 2, 10}, {8, 4, 17}, {6, 4, 5}, {9, 3, 100}, {5, 2, 8},
	} {
		tc := tc
		t.Run(fmt.Sprintf("p%d_g%d_n%d", tc.p, tc.g, tc.n), func(t *testing.T) {
			var mu sync.Mutex
			results := make(map[int][]float64)
			runWorld(t, tc.p, func(c *Communicator) error {
				data := make([]float64, tc.n)
				for i := range data {
					data[i] = float64(c.Rank()*100 + i)
				}
				if err := c.HierarchicalAllreduceMean(data, tc.g); err != nil {
					return err
				}
				mu.Lock()
				results[c.Rank()] = data
				mu.Unlock()
				return nil
			})
			for i := 0; i < tc.n; i++ {
				want := (100*float64(tc.p*(tc.p-1)/2) + float64(tc.p*i)) / float64(tc.p)
				for r := 0; r < tc.p; r++ {
					if math.Abs(results[r][i]-want) > 1e-9 {
						t.Fatalf("rank %d elem %d = %v, want %v", r, i, results[r][i], want)
					}
				}
			}
		})
	}
}

func TestHierarchicalDegenerateGroupSizes(t *testing.T) {
	// groupSize 1 and ≥p fall back to the flat algorithm.
	for _, g := range []int{1, 4, 99} {
		g := g
		runWorld(t, 4, func(c *Communicator) error {
			data := []float64{float64(c.Rank())}
			if err := c.HierarchicalAllreduceMean(data, g); err != nil {
				return err
			}
			if math.Abs(data[0]-1.5) > 1e-12 {
				return fmt.Errorf("g=%d: mean %v, want 1.5", g, data[0])
			}
			return nil
		})
	}
}
