package comm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFloat16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in binary16 must round trip exactly.
	exact := []float64{0, 1, -1, 0.5, 2, 1024, -0.25, 65504 /* max half */}
	for _, v := range exact {
		h := float16FromFloat64(v)
		back := float16ToFloat64(h)
		if back != v {
			t.Errorf("float16 round trip %v → %v", v, back)
		}
	}
}

func TestFloat16SpecialValues(t *testing.T) {
	if !math.IsInf(float16ToFloat64(float16FromFloat64(1e10)), 1) {
		t.Error("overflow should map to +Inf")
	}
	if !math.IsInf(float16ToFloat64(float16FromFloat64(math.Inf(-1))), -1) {
		t.Error("-Inf should survive")
	}
	if !math.IsNaN(float16ToFloat64(float16FromFloat64(math.NaN()))) {
		t.Error("NaN should survive")
	}
	if float16ToFloat64(float16FromFloat64(1e-12)) != 0 {
		t.Error("tiny values flush to zero")
	}
}

// Property: half-precision quantization error is bounded by 2⁻¹⁰ relative
// for normal-range values.
func TestFloat16RelativeErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := rng.NormFloat64()
		if math.Abs(v) < 1e-4 {
			return true
		}
		back := float16ToFloat64(float16FromFloat64(v))
		return math.Abs(back-v) <= math.Abs(v)*1.0/1024+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFloat16CodecVector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Float16Codec{}
	for _, n := range []int{1, 3, 4, 5, 17, 100} {
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		enc := c.Encode(src)
		if len(enc) != c.CompressedLen(n) {
			t.Fatalf("n=%d: payload %d words, want %d", n, len(enc), c.CompressedLen(n))
		}
		dec, err := c.Decode(enc, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if math.Abs(dec[i]-src[i]) > math.Abs(src[i])/512+1e-4 {
				t.Fatalf("n=%d elem %d: %v vs %v", n, i, dec[i], src[i])
			}
		}
	}
	if _, err := c.Decode([]float64{0}, 100); err == nil {
		t.Error("short payload should error")
	}
}

func TestTopKCodecKeepsLargest(t *testing.T) {
	c := TopKCodec{K: 2}
	src := []float64{0.1, -5, 0.2, 3, 0}
	enc := c.Encode(src)
	dec, err := c.Decode(enc, len(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, -5, 0, 3, 0}
	for i := range want {
		if dec[i] != want[i] {
			t.Fatalf("dec = %v, want %v", dec, want)
		}
	}
}

func TestTopKCodecFraction(t *testing.T) {
	c := TopKCodec{FractionK: 0.25}
	if k := c.kFor(100); k != 25 {
		t.Errorf("kFor(100) = %d, want 25", k)
	}
	if k := c.kFor(1); k != 1 {
		t.Errorf("kFor(1) = %d, want 1", k)
	}
	// K clamps to n.
	big := TopKCodec{K: 50}
	if k := big.kFor(10); k != 10 {
		t.Errorf("clamped k = %d", k)
	}
}

func TestTopKCodecErrors(t *testing.T) {
	c := TopKCodec{K: 2}
	if _, err := c.Decode(nil, 5); err == nil {
		t.Error("empty payload should error")
	}
	if _, err := c.Decode([]float64{2, 0, 1}, 5); err == nil {
		t.Error("truncated payload should error")
	}
	if _, err := c.Decode([]float64{1, 99, 1}, 5); err == nil {
		t.Error("out-of-range index should error")
	}
}

// Property: top-k residual + decoded reconstruction = original.
func TestTopKResidualDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		c := TopKCodec{K: 1 + rng.Intn(4)}
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		dec, err := c.Decode(c.Encode(src), n)
		if err != nil {
			return false
		}
		for i := range src {
			// Every position is either kept exactly or zeroed.
			if dec[i] != 0 && dec[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompressedAllreduceMeanFloat16(t *testing.T) {
	runWorld(t, 3, func(c *Communicator) error {
		data := []float64{float64(c.Rank()), 1, 2}
		res, err := c.CompressedAllreduceMean(data, Float16Codec{})
		if err != nil {
			return err
		}
		// Mean of {0,1,2} = 1; values small → quantization ≈ exact.
		want := []float64{1, 1, 2}
		for i := range want {
			if math.Abs(data[i]-want[i]) > 1e-3 {
				return fmt.Errorf("mean = %v, want %v", data, want)
			}
		}
		for _, r := range res {
			if math.Abs(r) > 1e-3 {
				return fmt.Errorf("float16 residual too large: %v", res)
			}
		}
		return nil
	})
}

func TestCompressedAllreduceMeanTopKWithErrorFeedback(t *testing.T) {
	// With k=1 only the largest entry of each rank survives one round, but
	// accumulating residuals (error feedback) recovers the rest over
	// repeated rounds — the standard sparsified-SGD result.
	runWorld(t, 2, func(c *Communicator) error {
		grad := []float64{4, 1} // same on both ranks
		acc := []float64{0, 0}  // error-feedback accumulator
		sum := []float64{0, 0}  // what the optimizer would integrate
		codec := TopKCodec{K: 1}
		for round := 0; round < 8; round++ {
			buf := []float64{grad[0] + acc[0], grad[1] + acc[1]}
			res, err := c.CompressedAllreduceMean(buf, codec)
			if err != nil {
				return err
			}
			acc = res
			sum[0] += buf[0]
			sum[1] += buf[1]
		}
		// Over 8 rounds the integrated update should approach 8×grad in
		// ratio: both coordinates must have been transmitted.
		if sum[1] == 0 {
			return fmt.Errorf("error feedback never flushed the small coordinate")
		}
		return nil
	})
}
