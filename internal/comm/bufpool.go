package comm

import (
	"math/bits"
	"sync"
)

// bufPools recycles the float64 payload buffers the fusion layer packs
// tensors into, one sync.Pool per power-of-two capacity class. A fused
// allreduce buffer lives exactly one collective: packed, reduced in place,
// scattered back — so recycling it removes the dominant per-update
// send/recv allocation without any lifetime ambiguity.
var bufPools [64]sync.Pool

// bufClass returns the pool index for n elements: ceil(log2(n)).
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getBuf returns a length-n buffer with power-of-two capacity, drawn from
// the class pool when one is available. Contents are unspecified; callers
// fully overwrite the buffer when packing.
func getBuf(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := bufClass(n)
	if v := bufPools[c].Get(); v != nil {
		return (*v.(*[]float64))[:n]
	}
	b := make([]float64, 1<<c)
	return b[:n]
}

// putBuf returns a buffer obtained from getBuf to its class pool. Buffers
// whose capacity is not a power of two (not ours) are dropped.
func putBuf(b []float64) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b = b[:c]
	bufPools[bufClass(c)].Put(&b)
}
