package comm

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz harnesses for the gradient-compression codecs. Checked in with
// their seed corpora (the f.Add calls below), they run as plain regression
// tests under `go test` and expand coverage under `go test -fuzz=Fuzz…`.
// Invariants:
//
//   - Encode output length always equals CompressedLen;
//   - Decode never panics, whatever bytes arrive off the wire — it
//     either round-trips or returns an error;
//   - Float16 round-trips are within half-precision error bounds;
//   - TopK round-trips reproduce the kept entries bit-exactly and zero
//     the rest.

// floatsFromBytes reinterprets a fuzzer byte string as float64 words.
func floatsFromBytes(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func FuzzFloat16RoundTrip(f *testing.F) {
	seeds := []float64{
		0, -0.0, 1, -1, 0.5, 1.0 / 3, 65504, -65504, 65505, 65520, 70000,
		6.10352e-5, 6.0e-5, 5.96e-8, 2.98e-8, 1e-10, -1e-10,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		2048, 2049, // half-integer-exactness boundary
	}
	for _, v := range seeds {
		f.Add(v)
	}
	codec := Float16Codec{}
	f.Fuzz(func(t *testing.T, v float64) {
		enc := codec.Encode([]float64{v})
		if len(enc) != codec.CompressedLen(1) {
			t.Fatalf("encode length %d != CompressedLen %d", len(enc), codec.CompressedLen(1))
		}
		dec, err := codec.Decode(enc, 1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := dec[0]
		switch {
		case math.IsNaN(v):
			if !math.IsNaN(got) {
				t.Fatalf("NaN decoded to %v", got)
			}
		case math.Abs(v) > 65520:
			// Beyond the rounding boundary of the half range: must saturate
			// to an infinity of the right sign.
			if !math.IsInf(got, int(math.Copysign(1, v))) {
				t.Fatalf("%v decoded to %v, want signed Inf", v, got)
			}
		case math.Abs(v) >= 6.103515625e-5: // smallest normal half
			// Normal range: round-to-nearest gives ≤ 2⁻¹⁰ relative error
			// (values in (65504, 65520] may also legally round up to Inf).
			if math.IsInf(got, 0) && math.Abs(v) > 65504 {
				return
			}
			if rel := math.Abs(got-v) / math.Abs(v); rel > 1.0/1024 {
				t.Fatalf("%v decoded to %v, relative error %g > 2^-10", v, got, rel)
			}
		default:
			// Subnormal half range: absolute error bounded by one subnormal
			// ulp (2⁻²⁴).
			if math.Abs(got-v) > 1.0/(1<<24) {
				t.Fatalf("%v decoded to %v, absolute error %g > 2^-24", v, got, math.Abs(got-v))
			}
		}
		if v != 0 && got != 0 && math.Signbit(got) != math.Signbit(v) {
			t.Fatalf("%v decoded to %v: sign flipped", v, got)
		}
	})
}

func FuzzFloat16VectorRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 8*7)) // non-multiple-of-4 element count
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f})
	codec := Float16Codec{}
	f.Fuzz(func(t *testing.T, b []byte) {
		src := floatsFromBytes(b)
		enc := codec.Encode(src)
		if len(enc) != codec.CompressedLen(len(src)) {
			t.Fatalf("encode length %d != CompressedLen %d", len(enc), codec.CompressedLen(len(src)))
		}
		dec, err := codec.Decode(enc, len(src))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(src) {
			t.Fatalf("decode length %d != %d", len(dec), len(src))
		}
		// Re-encoding the decoded vector must be a fixed point: every
		// decoded value is exactly representable in half precision.
		enc2 := codec.Encode(dec)
		for i := range enc {
			a, b := math.Float64bits(enc[i]), math.Float64bits(enc2[i])
			if a != b {
				t.Fatalf("word %d: re-encode changed bits %x → %x", i, a, b)
			}
		}
	})
}

func FuzzFloat16AdversarialDecode(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	f.Add(make([]byte, 16), 9)           // payload too short for n
	f.Add(make([]byte, 16), -3)          // negative n
	f.Add(make([]byte, 16), math.MaxInt) // (n+3)/4 overflow guard
	f.Add(make([]byte, 16), math.MaxInt-2)
	codec := Float16Codec{}
	f.Fuzz(func(t *testing.T, b []byte, n int) {
		// No cap on n: any n the payload cannot cover must error before
		// allocation (a successful decode allocates at most 4 halves per
		// payload word, so memory stays bounded by the input).
		dec, err := codec.Decode(floatsFromBytes(b), n)
		if err == nil && len(dec) != n {
			t.Fatalf("decode returned %d values for n=%d without error", len(dec), n)
		}
	})
}

func FuzzTopKRoundTrip(f *testing.F) {
	f.Add([]byte{}, 1)
	f.Add(make([]byte, 8*6), 3)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 0, 0, 0, 0, 0, 0, 0}, 1) // +Inf entry
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 2, 2, 2, 2, 2, 2, 2, 2}, 2) // NaN entry
	f.Fuzz(func(t *testing.T, b []byte, k int) {
		src := floatsFromBytes(b)
		if k < 0 {
			k = -k
		}
		k = k%8 + 1
		codec := TopKCodec{K: k}
		enc := codec.Encode(src)
		if len(enc) != codec.CompressedLen(len(src)) {
			t.Fatalf("encode length %d != CompressedLen %d", len(enc), codec.CompressedLen(len(src)))
		}
		dec, err := codec.Decode(enc, len(src))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(dec) != len(src) {
			t.Fatalf("decode length %d != %d", len(dec), len(src))
		}
		kept := 0
		for i := range dec {
			if math.Float64bits(dec[i]) == 0 {
				continue // not selected (or a kept exact +0 — indistinguishable, fine)
			}
			kept++
			if math.Float64bits(dec[i]) != math.Float64bits(src[i]) {
				t.Fatalf("index %d: kept value %v != source %v", i, dec[i], src[i])
			}
		}
		if max := codec.kFor(len(src)); kept > max {
			t.Fatalf("decoded %d non-zeros, codec keeps at most %d", kept, max)
		}
	})
}

func FuzzTopKAdversarialDecode(f *testing.F) {
	f.Add([]byte{}, 4)
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint64(huge, math.Float64bits(4.5e18)) // count overflowing 1+2*k
	f.Add(huge, 4)
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(nan, 4)
	neg := make([]byte, 24)
	binary.LittleEndian.PutUint64(neg, math.Float64bits(1))
	binary.LittleEndian.PutUint64(neg[8:], math.Float64bits(-1)) // negative index
	f.Add(neg, 4)
	frac := make([]byte, 24)
	binary.LittleEndian.PutUint64(frac, math.Float64bits(1))
	binary.LittleEndian.PutUint64(frac[8:], math.Float64bits(0.5)) // fractional index
	f.Add(frac, 4)
	f.Fuzz(func(t *testing.T, b []byte, n int) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 16 // bound the output allocation, not the attack surface
		codec := TopKCodec{K: 4}
		dec, err := codec.Decode(floatsFromBytes(b), n)
		if err == nil && len(dec) != n {
			t.Fatalf("decode returned %d values for n=%d without error", len(dec), n)
		}
	})
}
