package comm

import (
	"fmt"
	"math"
	"sort"
)

// Gradient compression codecs. The paper's conclusion names reducing
// communication quantity as future work ("we will also design and evaluate
// solutions to avoid communications and reduce communication quantity");
// this file implements the two standard families so the ablation harness
// can quantify the tradeoff:
//
//   - Float16Codec: lossy scalar quantization to IEEE-754 half precision
//     (the mixed-precision communication used by several of the paper's
//     related works), 2× volume reduction;
//   - TopKCodec: magnitude sparsification keeping the k largest entries as
//     (index, value) pairs, with optional local error feedback handled by
//     the caller.
//
// Codecs encode into []float64 transport payloads so they compose with any
// Transport; the volume accounting (CompressedLen) feeds the α–β model.

// Codec converts between a dense vector and its compressed wire form.
type Codec interface {
	// Encode compresses src into a transport payload.
	Encode(src []float64) []float64
	// Decode expands a payload produced by Encode back to length n.
	Decode(payload []float64, n int) ([]float64, error)
	// CompressedLen returns the payload length for an n-vector.
	CompressedLen(n int) int
	// Name identifies the codec.
	Name() string
}

// Float16Codec packs each value to IEEE-754 binary16, four per float64
// word. Quantization is round-to-nearest-even with overflow to ±Inf and
// flush of subnormals handled by the conversion.
type Float16Codec struct{}

// Name implements Codec.
func (Float16Codec) Name() string { return "float16" }

// CompressedLen implements Codec.
func (Float16Codec) CompressedLen(n int) int { return (n + 3) / 4 }

// Encode implements Codec.
func (Float16Codec) Encode(src []float64) []float64 {
	out := make([]float64, (len(src)+3)/4)
	for i, v := range src {
		h := uint64(float16FromFloat64(v))
		word := i / 4
		shift := uint(16 * (i % 4))
		bits := math.Float64bits(out[word])
		bits |= h << shift
		out[word] = math.Float64frombits(bits)
	}
	return out
}

// Decode implements Codec.
func (Float16Codec) Decode(payload []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("comm: float16 decode with negative length %d", n)
	}
	// Bound n by the payload before any arithmetic on it: n near MaxInt
	// would wrap (n+3)/4 negative and defeat a ceil-division guard. This
	// single comparison is the full check — n ≤ 4·len(payload) is exactly
	// "the payload has a half-slot for every requested element".
	if n > 4*len(payload) {
		return nil, fmt.Errorf("comm: float16 payload too short: %d words for n=%d", len(payload), n)
	}
	out := make([]float64, n)
	for i := range out {
		word := i / 4
		shift := uint(16 * (i % 4))
		bits := math.Float64bits(payload[word])
		out[i] = float16ToFloat64(uint16(bits >> shift))
	}
	return out, nil
}

// float16FromFloat64 converts with round-to-nearest-even.
func float16FromFloat64(v float64) uint16 {
	f32 := float32(v)
	bits := math.Float32bits(f32)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 31: // overflow → inf; NaN keeps a payload bit
		if math.IsNaN(v) {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		m := (mant + half) >> shift
		return sign | uint16(m)
	default:
		// Round mantissa from 23 to 10 bits, nearest-even.
		m := mant >> 13
		if mant&0x1fff > 0x1000 || (mant&0x1fff == 0x1000 && m&1 == 1) {
			m++
		}
		h := sign | uint16(exp)<<10 + uint16(m)
		return h
	}
}

// float16ToFloat64 expands a binary16 value.
func float16ToFloat64(h uint16) float64 {
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1f)
	mant := float64(h & 0x3ff)
	switch exp {
	case 0:
		return sign * mant * math.Pow(2, -24)
	case 31:
		if mant != 0 {
			// Preserve the sign bit so encode∘decode is a fixed point on
			// NaN payloads too (found by FuzzFloat16VectorRoundTrip).
			nan := math.NaN()
			if h&0x8000 != 0 {
				nan = math.Float64frombits(math.Float64bits(nan) | 1<<63)
			}
			return nan
		}
		return sign * math.Inf(1)
	default:
		return sign * (1 + mant/1024) * math.Pow(2, float64(exp-15))
	}
}

// TopKCodec keeps the k largest-magnitude entries as (index, value) pairs.
// Payload layout: [count, idx₀, val₀, idx₁, val₁, …].
type TopKCodec struct {
	// K is the number of entries to keep; when FractionK > 0, k is computed
	// as ceil(FractionK·n) instead.
	K         int
	FractionK float64
}

// Name implements Codec.
func (c TopKCodec) Name() string { return "topk" }

func (c TopKCodec) kFor(n int) int {
	k := c.K
	if c.FractionK > 0 {
		k = int(math.Ceil(c.FractionK * float64(n)))
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// CompressedLen implements Codec.
func (c TopKCodec) CompressedLen(n int) int { return 1 + 2*c.kFor(n) }

// Encode implements Codec.
func (c TopKCodec) Encode(src []float64) []float64 {
	k := c.kFor(len(src))
	idx := make([]int, len(src))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection via full sort is O(n log n); fine at these sizes.
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(src[idx[a]]) > math.Abs(src[idx[b]])
	})
	out := make([]float64, 1+2*k)
	out[0] = float64(k)
	sel := idx[:k]
	sort.Ints(sel) // deterministic order for reproducibility
	for i, j := range sel {
		out[1+2*i] = float64(j)
		out[2+2*i] = src[j]
	}
	return out
}

// Decode implements Codec.
func (c TopKCodec) Decode(payload []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("comm: top-k decode with negative length %d", n)
	}
	if n > math.MaxInt/8 {
		// The output would overflow the allocator's byte count; a request
		// this size is corrupt, not large.
		return nil, fmt.Errorf("comm: top-k decode length %d too large", n)
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("comm: empty top-k payload")
	}
	// The count word is attacker-controlled on a real wire: reject anything
	// that is not an exact non-negative integer small enough for the
	// payload it claims to describe (a huge count would overflow 1+2*k and
	// turn the bound check into an out-of-range read).
	kf := payload[0]
	if math.IsNaN(kf) || kf != math.Trunc(kf) || kf < 0 || kf > float64((len(payload)-1)/2) {
		return nil, fmt.Errorf("comm: top-k payload has invalid count %v for %d words", kf, len(payload))
	}
	k := int(kf)
	out := make([]float64, n)
	for i := 0; i < k; i++ {
		jf := payload[1+2*i]
		if math.IsNaN(jf) || jf != math.Trunc(jf) || jf < 0 || jf >= float64(n) {
			return nil, fmt.Errorf("comm: top-k index %v out of range %d", jf, n)
		}
		out[int(jf)] = payload[2+2*i]
	}
	return out, nil
}

// CompressedAllreduceMean averages data across ranks through the codec:
// each rank's contribution is compressed, allgathered, decoded and
// averaged. For sparsifying codecs the result is a biased estimate whose
// residual the caller may keep for error feedback (returned as the
// difference between input and the encoded-decoded local contribution).
func (c *Communicator) CompressedAllreduceMean(data []float64, codec Codec) (residual []float64, err error) {
	n := len(data)
	encoded := codec.Encode(data)
	// Local residual for error feedback: x − dec(enc(x)).
	selfDecoded, err := codec.Decode(encoded, n)
	if err != nil {
		return nil, err
	}
	residual = make([]float64, n)
	for i := range residual {
		residual[i] = data[i] - selfDecoded[i]
	}
	blocks, err := c.AllgatherV(encoded)
	if err != nil {
		return nil, err
	}
	for i := range data {
		data[i] = 0
	}
	inv := 1 / float64(len(blocks))
	for _, b := range blocks {
		dec, err := codec.Decode(b, n)
		if err != nil {
			return nil, err
		}
		for i, v := range dec {
			data[i] += v * inv
		}
	}
	return residual, nil
}
