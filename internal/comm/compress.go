package comm

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Gradient compression codecs. The paper's conclusion names reducing
// communication quantity as future work ("we will also design and evaluate
// solutions to avoid communications and reduce communication quantity");
// this file implements the two standard families so the ablation harness
// can quantify the tradeoff:
//
//   - Float16Codec: lossy scalar quantization to IEEE-754 half precision
//     (the mixed-precision communication used by several of the paper's
//     related works), 2× volume reduction;
//   - TopKCodec: magnitude sparsification keeping the k largest entries as
//     (index, value) pairs, with optional local error feedback handled by
//     the caller.
//
// Codecs encode into []float64 transport payloads so they compose with any
// Transport; the volume accounting (CompressedLen) feeds the α–β model.

// Codec converts between a dense vector and its compressed wire form.
type Codec interface {
	// Encode compresses src into a transport payload.
	Encode(src []float64) []float64
	// Decode expands a payload produced by Encode back to length n.
	Decode(payload []float64, n int) ([]float64, error)
	// CompressedLen returns the payload length for an n-vector.
	CompressedLen(n int) int
	// Name identifies the codec.
	Name() string
}

// Float16Codec packs each value to IEEE-754 binary16, four per float64
// word. Quantization is round-to-nearest-even with overflow to ±Inf and
// flush of subnormals handled by the conversion.
type Float16Codec struct{}

// Name implements Codec.
func (Float16Codec) Name() string { return "float16" }

// CompressedLen implements Codec.
func (Float16Codec) CompressedLen(n int) int { return (n + 3) / 4 }

// Encode implements Codec.
func (c Float16Codec) Encode(src []float64) []float64 {
	return c.EncodeInto(make([]float64, (len(src)+3)/4), src)
}

// EncodeInto is Encode writing into a caller-supplied payload buffer of
// length CompressedLen(len(src)) — the allocation-free path the
// error-feedback fusion layer uses with pooled buffers. The buffer is fully
// overwritten; the (possibly reused) contents need not be zeroed.
func (Float16Codec) EncodeInto(dst, src []float64) []float64 {
	dst = dst[:(len(src)+3)/4]
	for i := range dst {
		dst[i] = 0
	}
	for i, v := range src {
		h := uint64(float16FromFloat64(v))
		word := i / 4
		shift := uint(16 * (i % 4))
		bits := math.Float64bits(dst[word])
		bits |= h << shift
		dst[word] = math.Float64frombits(bits)
	}
	return dst
}

// Decode implements Codec.
func (c Float16Codec) Decode(payload []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("comm: float16 decode with negative length %d", n)
	}
	// Check the bound before allocating n words — n is wire-controlled.
	if n > 4*len(payload) {
		return nil, fmt.Errorf("comm: float16 payload too short: %d words for n=%d", len(payload), n)
	}
	out := make([]float64, n)
	if err := c.DecodeInto(out, payload); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto is Decode expanding into a caller-supplied buffer whose
// length selects the output count (the allocation-free counterpart of
// EncodeInto). Validation matches Decode.
func (Float16Codec) DecodeInto(dst, payload []float64) error {
	n := len(dst)
	// Bound n by the payload before any arithmetic on it: n near MaxInt
	// would wrap (n+3)/4 negative and defeat a ceil-division guard. This
	// single comparison is the full check — n ≤ 4·len(payload) is exactly
	// "the payload has a half-slot for every requested element".
	if n > 4*len(payload) {
		return fmt.Errorf("comm: float16 payload too short: %d words for n=%d", len(payload), n)
	}
	for i := range dst {
		word := i / 4
		shift := uint(16 * (i % 4))
		bits := math.Float64bits(payload[word])
		dst[i] = float16ToFloat64(uint16(bits >> shift))
	}
	return nil
}

// float16FromFloat64 converts with round-to-nearest-even.
func float16FromFloat64(v float64) uint16 {
	f32 := float32(v)
	bits := math.Float32bits(f32)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff
	switch {
	case exp >= 31: // overflow → inf; NaN keeps a payload bit
		if math.IsNaN(v) {
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp <= 0: // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		m := (mant + half) >> shift
		return sign | uint16(m)
	default:
		// Round mantissa from 23 to 10 bits, nearest-even.
		m := mant >> 13
		if mant&0x1fff > 0x1000 || (mant&0x1fff == 0x1000 && m&1 == 1) {
			m++
		}
		h := sign | uint16(exp)<<10 + uint16(m)
		return h
	}
}

// float16ToFloat64 expands a binary16 value.
func float16ToFloat64(h uint16) float64 {
	sign := float64(1)
	if h&0x8000 != 0 {
		sign = -1
	}
	exp := int(h >> 10 & 0x1f)
	mant := float64(h & 0x3ff)
	switch exp {
	case 0:
		return sign * mant * math.Pow(2, -24)
	case 31:
		if mant != 0 {
			// Preserve the sign bit so encode∘decode is a fixed point on
			// NaN payloads too (found by FuzzFloat16VectorRoundTrip).
			nan := math.NaN()
			if h&0x8000 != 0 {
				nan = math.Float64frombits(math.Float64bits(nan) | 1<<63)
			}
			return nan
		}
		return sign * math.Inf(1)
	default:
		return sign * (1 + mant/1024) * math.Pow(2, float64(exp-15))
	}
}

// TopKCodec keeps the k largest-magnitude entries as (index, value) pairs.
// Payload layout: [count, idx₀, val₀, idx₁, val₁, …].
type TopKCodec struct {
	// K is the number of entries to keep; when FractionK > 0, k is computed
	// as ceil(FractionK·n) instead.
	K         int
	FractionK float64
}

// Name implements Codec.
func (c TopKCodec) Name() string { return "topk" }

func (c TopKCodec) kFor(n int) int {
	k := c.K
	if c.FractionK > 0 {
		k = int(math.Ceil(c.FractionK * float64(n)))
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// CompressedLen implements Codec.
func (c TopKCodec) CompressedLen(n int) int { return 1 + 2*c.kFor(n) }

// topkMagKey orders values for top-k selection. The raw bit pattern of
// |v| is monotone in |v| for every non-negative float64, gives -0 and +0
// the same rank, totals the order over NaN (which sorts above +Inf, so a
// NaN entry is always "selected" and surfaces downstream instead of
// flapping in and out of the payload), and — unlike a float compare —
// never answers "unordered": two calls on permuted-but-equal inputs pick
// the same entries. Error feedback turns any rank-divergent tie break
// into a silent consensus break, so selection must be a pure function of
// (value, index).
func topkMagKey(v float64) uint64 {
	return math.Float64bits(math.Abs(v))
}

// Encode implements Codec.
func (c TopKCodec) Encode(src []float64) []float64 {
	return c.EncodeInto(make([]float64, c.CompressedLen(len(src))), src)
}

// topkSorter sorts candidate indices by descending magnitude key with an
// ascending-index tiebreak. A pooled pointer implementing sort.Interface
// keeps EncodeInto allocation-free (sort.Slice would box both the slice
// and the comparator on every call).
type topkSorter struct {
	idx []int
	src []float64
}

func (s *topkSorter) Len() int      { return len(s.idx) }
func (s *topkSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }
func (s *topkSorter) Less(a, b int) bool {
	ka, kb := topkMagKey(s.src[s.idx[a]]), topkMagKey(s.src[s.idx[b]])
	if ka != kb {
		return ka > kb
	}
	return s.idx[a] < s.idx[b]
}

var topkSorterPool = sync.Pool{New: func() any { return new(topkSorter) }}

// EncodeInto is Encode writing into a caller-supplied payload buffer of
// length CompressedLen(len(src)). Selection keeps the k largest |v|,
// breaking magnitude ties by the LOWER index — a total order, so every
// rank holding equal data emits an identical payload (required for
// error-feedback consensus; see topkMagKey).
func (c TopKCodec) EncodeInto(dst, src []float64) []float64 {
	k := c.kFor(len(src))
	s := topkSorterPool.Get().(*topkSorter)
	if cap(s.idx) < len(src) {
		s.idx = make([]int, len(src))
	}
	s.idx = s.idx[:len(src)]
	s.src = src
	for i := range s.idx {
		s.idx[i] = i
	}
	// Partial selection via full sort is O(n log n); fine at these sizes.
	sort.Sort(s)
	dst = dst[:1+2*k]
	dst[0] = float64(k)
	sel := s.idx[:k]
	sort.Ints(sel) // ascending index order for reproducibility
	for i, j := range sel {
		dst[1+2*i] = float64(j)
		dst[2+2*i] = src[j]
	}
	s.src = nil
	topkSorterPool.Put(s)
	return dst
}

// Decode implements Codec.
func (c TopKCodec) Decode(payload []float64, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("comm: top-k decode with negative length %d", n)
	}
	if n > math.MaxInt/8 {
		// The output would overflow the allocator's byte count; a request
		// this size is corrupt, not large.
		return nil, fmt.Errorf("comm: top-k decode length %d too large", n)
	}
	out := make([]float64, n)
	if err := c.DecodeInto(out, payload); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto is Decode expanding into a caller-supplied buffer whose
// length selects the output count. The buffer is zeroed before the
// sparse entries are scattered in; validation matches Decode.
func (c TopKCodec) DecodeInto(dst, payload []float64) error {
	n := len(dst)
	if len(payload) < 1 {
		return fmt.Errorf("comm: empty top-k payload")
	}
	// The count word is attacker-controlled on a real wire: reject anything
	// that is not an exact non-negative integer small enough for the
	// payload it claims to describe (a huge count would overflow 1+2*k and
	// turn the bound check into an out-of-range read).
	kf := payload[0]
	if math.IsNaN(kf) || kf != math.Trunc(kf) || kf < 0 || kf > float64((len(payload)-1)/2) {
		return fmt.Errorf("comm: top-k payload has invalid count %v for %d words", kf, len(payload))
	}
	k := int(kf)
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < k; i++ {
		jf := payload[1+2*i]
		if math.IsNaN(jf) || jf != math.Trunc(jf) || jf < 0 || jf >= float64(n) {
			return fmt.Errorf("comm: top-k index %v out of range %d", jf, n)
		}
		dst[int(jf)] = payload[2+2*i]
	}
	return nil
}

// codecEncoderInto / codecDecoderInto are the optional allocation-free
// codec extensions; the fusion path uses them when available and falls
// back to Encode/Decode (plus a copy) for third-party codecs.
type codecEncoderInto interface {
	EncodeInto(dst, src []float64) []float64
}

type codecDecoderInto interface {
	DecodeInto(dst, payload []float64) error
}

// encodeInto compresses src into dst (length CompressedLen(len(src)))
// without allocating when the codec supports it.
func encodeInto(c Codec, dst, src []float64) []float64 {
	if e, ok := c.(codecEncoderInto); ok {
		return e.EncodeInto(dst, src)
	}
	out := c.Encode(src)
	dst = dst[:len(out)]
	copy(dst, out)
	return dst
}

// decodeInto expands payload into dst (whose length selects the output
// count) without allocating when the codec supports it.
func decodeInto(c Codec, dst, payload []float64) error {
	if d, ok := c.(codecDecoderInto); ok {
		return d.DecodeInto(dst, payload)
	}
	out, err := c.Decode(payload, len(dst))
	if err != nil {
		return err
	}
	copy(dst, out)
	return nil
}

// CompressedAllreduceMean averages data across ranks through the codec:
// each rank's contribution is compressed, allgathered, decoded and
// averaged. For sparsifying codecs the result is a biased estimate whose
// residual the caller may keep for error feedback (returned as the
// difference between input and the encoded-decoded local contribution).
func (c *Communicator) CompressedAllreduceMean(data []float64, codec Codec) (residual []float64, err error) {
	n := len(data)
	encoded := codec.Encode(data)
	// Local residual for error feedback: x − dec(enc(x)).
	selfDecoded, err := codec.Decode(encoded, n)
	if err != nil {
		return nil, err
	}
	residual = make([]float64, n)
	for i := range residual {
		residual[i] = data[i] - selfDecoded[i]
	}
	blocks, err := c.AllgatherV(encoded)
	if err != nil {
		return nil, err
	}
	for i := range data {
		data[i] = 0
	}
	inv := 1 / float64(len(blocks))
	for _, b := range blocks {
		dec, err := codec.Decode(b, n)
		if err != nil {
			return nil, err
		}
		for i, v := range dec {
			data[i] += v * inv
		}
	}
	return residual, nil
}
