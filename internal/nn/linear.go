package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Linear is a fully-connected layer computing y = x Wᵀ + b for input
// x [N, in], weight W [out, in] and bias b [out]. It implements
// KFACCapturable: with capture enabled it retains the input activation
// matrix and the output-gradient matrix for Kronecker factor computation.
type Linear struct {
	name    string
	In, Out int
	W       *Param
	B       *Param // nil when bias is disabled

	capture bool
	x       *tensor.Tensor // cached input for backward
	actCap  *tensor.Tensor // captured activations [N, in]
	gradCap *tensor.Tensor // captured output grads [N, out]
	batch   int

	reuse bool           // recycle the buffers below across steps (BufferReuser)
	yBuf  *tensor.Tensor // forward output
	dwBuf *tensor.Tensor // weight-gradient scratch
	dxBuf *tensor.Tensor // input gradient

	f32 *linearF32 // non-nil when the float32 compute path is on (F32Computer)
}

// NewLinear constructs a linear layer with He initialization.
func NewLinear(name string, in, out int, bias bool, rng *rand.Rand) *Linear {
	w := tensor.New(out, in)
	heInit(rng, w, in)
	l := &Linear{name: name, In: in, Out: out, W: NewParam(name+".weight", w)}
	if bias {
		l.B = NewParam(name+".bias", tensor.New(out))
		l.B.NoWeightDecay = true
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if l.f32 != nil {
		return l.forward32(x, train)
	}
	l.x = x
	l.batch = x.Rows()
	if train && l.capture {
		if l.reuse {
			tensor.Ensure(&l.actCap, x.Shape...).CopyFrom(x)
		} else {
			l.actCap = x.Clone()
		}
	}
	y := ensureBuf(l.reuse, &l.yBuf, x.Rows(), l.Out) // [N, out]
	tensor.MatMulT2Into(y, x, l.W.Value)
	if l.B != nil {
		n, out := y.Rows(), y.Cols()
		for i := 0; i < n; i++ {
			row := y.Data[i*out : (i+1)*out]
			for j := 0; j < out; j++ {
				row[j] += l.B.Value.Data[j]
			}
		}
	}
	return y
}

// Backward implements Layer.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if l.f32 != nil {
		return l.backward32(gradOut)
	}
	if l.capture {
		if l.reuse {
			tensor.Ensure(&l.gradCap, gradOut.Shape...).CopyFrom(gradOut)
		} else {
			l.gradCap = gradOut.Clone()
		}
	}
	// dW = gradOutᵀ × x  ([out, in])
	dW := ensureBuf(l.reuse, &l.dwBuf, l.Out, l.In)
	tensor.MatMulT1Into(dW, gradOut, l.x)
	l.W.Grad.Add(dW)
	if l.B != nil {
		n, out := gradOut.Rows(), gradOut.Cols()
		for i := 0; i < n; i++ {
			row := gradOut.Data[i*out : (i+1)*out]
			for j := 0; j < out; j++ {
				l.B.Grad.Data[j] += row[j]
			}
		}
	}
	// dX = gradOut × W ([N, in])
	dx := ensureBuf(l.reuse, &l.dxBuf, gradOut.Rows(), l.In)
	tensor.MatMulInto(dx, gradOut, l.W.Value)
	return dx
}

// SetBufferReuse implements BufferReuser.
func (l *Linear) SetBufferReuse(on bool) { l.reuse = on }

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.B != nil {
		return []*Param{l.W, l.B}
	}
	return []*Param{l.W}
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// SetCapture implements KFACCapturable.
func (l *Linear) SetCapture(on bool) {
	l.capture = on
	if !on {
		l.actCap, l.gradCap = nil, nil
	}
}

// CapturedActivation implements KFACCapturable. On the float32 compute
// path the capture lives in float32; a float64 view is widened on demand.
func (l *Linear) CapturedActivation() *tensor.Tensor {
	if l.f32 != nil {
		return widenCapture(&l.f32.actWide, l.CapturedActivation32())
	}
	return l.actCap
}

// CapturedOutputGrad implements KFACCapturable.
func (l *Linear) CapturedOutputGrad() *tensor.Tensor {
	if l.f32 != nil {
		return widenCapture(&l.f32.gradWide, l.CapturedOutputGrad32())
	}
	return l.gradCap
}

// BatchSize implements KFACCapturable.
func (l *Linear) BatchSize() int { return l.batch }

// SpatialSize implements KFACCapturable.
func (l *Linear) SpatialSize() int { return 1 }

// HasBias implements KFACCapturable.
func (l *Linear) HasBias() bool { return l.B != nil }

// InDim implements KFACCapturable.
func (l *Linear) InDim() int { return l.In }

// OutDim implements KFACCapturable.
func (l *Linear) OutDim() int { return l.Out }

// CombinedGrad implements KFACCapturable: [out, in(+1)] with the bias
// gradient in the final column when present.
func (l *Linear) CombinedGrad() *tensor.Tensor {
	var g *tensor.Tensor
	if l.B == nil {
		g = tensor.New(l.Out, l.In)
	} else {
		g = tensor.New(l.Out, l.In+1)
	}
	l.CombinedGradInto(g)
	return g
}

// CombinedGradInto implements KFACCapturable.
func (l *Linear) CombinedGradInto(g *tensor.Tensor) {
	if l.B == nil {
		g.CopyFrom(l.W.Grad)
		return
	}
	for i := 0; i < l.Out; i++ {
		copy(g.Data[i*(l.In+1):i*(l.In+1)+l.In], l.W.Grad.Data[i*l.In:(i+1)*l.In])
		g.Data[i*(l.In+1)+l.In] = l.B.Grad.Data[i]
	}
}

// SetCombinedGrad implements KFACCapturable.
func (l *Linear) SetCombinedGrad(g *tensor.Tensor) {
	if l.B == nil {
		l.W.Grad.CopyFrom(g)
		return
	}
	for i := 0; i < l.Out; i++ {
		copy(l.W.Grad.Data[i*l.In:(i+1)*l.In], g.Data[i*(l.In+1):i*(l.In+1)+l.In])
		l.B.Grad.Data[i] = g.Data[i*(l.In+1)+l.In]
	}
}

var _ KFACCapturable = (*Linear)(nil)
