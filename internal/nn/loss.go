package nn

import (
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes softmax cross-entropy with optional label smoothing
// (the paper smooths ImageNet labels with factor 0.1). Given logits
// [N, K] and integer labels, it returns the mean loss and the gradient of
// the mean loss with respect to the logits — the starting point of the
// backward pass.
type CrossEntropy struct {
	// Smoothing ε distributes ε of the target mass uniformly over classes:
	// target = (1-ε)·onehot + ε/K.
	Smoothing float64
}

// Loss returns the mean smoothed cross-entropy over the batch and the
// gradient dLoss/dlogits, shape [N, K].
func (ce CrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Rows(), logits.Cols()
	if len(labels) != n {
		panic("nn: CrossEntropy label count mismatch")
	}
	grad := tensor.New(n, k)
	var total float64
	eps := ce.Smoothing
	uni := eps / float64(k)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		grow := grad.Data[i*k : (i+1)*k]
		// Log-sum-exp with max subtraction for stability.
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		logZ := m + math.Log(sum)
		y := labels[i]
		// loss_i = -Σ_j target_j · (logit_j − logZ)
		var li float64
		for j := 0; j < k; j++ {
			target := uni
			if j == y {
				target += 1 - eps
			}
			logp := row[j] - logZ
			li -= target * logp
			p := math.Exp(logp)
			grow[j] = (p - target) * invN
		}
		total += li
	}
	return total * invN, grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Rows()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
