package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm2d normalizes each channel of an [N, C, H, W] tensor over the
// batch and spatial dimensions, then applies a learned affine transform.
// Training mode uses mini-batch statistics and updates running estimates;
// evaluation mode uses the running estimates. K-FAC ignores BatchNorm
// parameters (the paper: "all unsupported layers ... updated normally using
// the user's choice of optimizer").
type BatchNorm2d struct {
	name     string
	C        int
	Eps      float64
	Momentum float64 // running-stats update rate (PyTorch convention)

	Gamma *Param // scale, [C]
	Beta  *Param // shift, [C]

	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	// Backward caches.
	xhat   *tensor.Tensor
	invStd []float64
	n      int // N·H·W per channel in last batch
	shape  []int

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// SetBufferReuse implements BufferReuser.
func (b *BatchNorm2d) SetBufferReuse(on bool) { b.reuse = on }

// NewBatchNorm2d constructs a BatchNorm layer with γ=1, β=0.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	g := NewParam(name+".gamma", tensor.Ones(c))
	b := NewParam(name+".beta", tensor.New(c))
	g.NoWeightDecay = true
	b.NoWeightDecay = true
	rv := tensor.Ones(c)
	return &BatchNorm2d{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma: g, Beta: b,
		RunningMean: tensor.New(c), RunningVar: rv,
	}
}

// Forward implements Layer.
func (b *BatchNorm2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != b.C {
		panic("nn: BatchNorm2d channel mismatch")
	}
	b.shape = x.Shape
	spatial := h * w
	cnt := n * spatial
	b.n = cnt
	out := ensureBuf(b.reuse, &b.outBuf, n, c, h, w)
	if b.reuse {
		tensor.Ensure(&b.xhat, n, c, h, w)
	} else {
		b.xhat = tensor.New(n, c, h, w)
	}
	if b.invStd == nil || len(b.invStd) != c {
		b.invStd = make([]float64, c)
	}
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train {
			for img := 0; img < n; img++ {
				base := (img*c + ch) * spatial
				for s := 0; s < spatial; s++ {
					mean += x.Data[base+s]
				}
			}
			mean /= float64(cnt)
			for img := 0; img < n; img++ {
				base := (img*c + ch) * spatial
				for s := 0; s < spatial; s++ {
					d := x.Data[base+s] - mean
					variance += d * d
				}
			}
			variance /= float64(cnt)
			// Update running stats with the unbiased variance, as PyTorch does.
			unbiased := variance
			if cnt > 1 {
				unbiased = variance * float64(cnt) / float64(cnt-1)
			}
			b.RunningMean.Data[ch] = (1-b.Momentum)*b.RunningMean.Data[ch] + b.Momentum*mean
			b.RunningVar.Data[ch] = (1-b.Momentum)*b.RunningVar.Data[ch] + b.Momentum*unbiased
		} else {
			mean = b.RunningMean.Data[ch]
			variance = b.RunningVar.Data[ch]
		}
		inv := 1 / math.Sqrt(variance+b.Eps)
		b.invStd[ch] = inv
		g := b.Gamma.Value.Data[ch]
		bt := b.Beta.Value.Data[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				xh := (x.Data[base+s] - mean) * inv
				b.xhat.Data[base+s] = xh
				out.Data[base+s] = g*xh + bt
			}
		}
	}
	return out
}

// Backward implements Layer. Standard BatchNorm backward:
// dxhat = dy·γ
// dx = (1/N)·invStd·(N·dxhat − Σdxhat − xhat·Σ(dxhat·xhat))
func (b *BatchNorm2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c := b.shape[0], b.shape[1]
	spatial := b.shape[2] * b.shape[3]
	cnt := float64(b.n)
	dx := ensureBuf(b.reuse, &b.dxBuf, b.shape...)
	for ch := 0; ch < c; ch++ {
		g := b.Gamma.Value.Data[ch]
		var sumDy, sumDyXhat float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				dy := gradOut.Data[base+s]
				sumDy += dy
				sumDyXhat += dy * b.xhat.Data[base+s]
			}
		}
		b.Gamma.Grad.Data[ch] += sumDyXhat
		b.Beta.Grad.Data[ch] += sumDy
		inv := b.invStd[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				dy := gradOut.Data[base+s]
				xh := b.xhat.Data[base+s]
				dx.Data[base+s] = g * inv / cnt * (cnt*dy - sumDy - xh*sumDyXhat)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm2d) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// Name implements Layer.
func (b *BatchNorm2d) Name() string { return b.name }

// StateTensors implements Stateful: the running mean and variance used in
// evaluation mode must survive checkpoints.
func (b *BatchNorm2d) StateTensors() []State {
	return []State{
		{Name: b.name + ".running_mean", Value: b.RunningMean},
		{Name: b.name + ".running_var", Value: b.RunningVar},
	}
}

var _ Stateful = (*BatchNorm2d)(nil)
