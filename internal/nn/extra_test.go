package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestAvgPoolForwardKnown(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	ap := NewAvgPool2d("ap", 2, 2)
	y := ap.Forward(x, true)
	// Window averages: (0+1+4+5)/4=2.5, (2+3+6+7)/4=4.5, ...
	want := []float64{2.5, 4.5, 10.5, 12.5}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("AvgPool = %v, want %v", y.Data, want)
		}
	}
}

func TestAvgPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ap := NewAvgPool2d("ap", 2, 2)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	gradCheckLayer(t, ap, x, rng)
}

func TestAvgPoolStride1GradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ap := NewAvgPool2d("ap", 3, 1)
	x := tensor.Randn(rng, 1, 1, 2, 5, 5)
	gradCheckLayer(t, ap, x, rng)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout("do", 0.5, rng)
	x := tensor.Randn(rng, 1, 4, 4)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Error("eval-mode dropout must be identity")
	}
	g := d.Backward(x)
	if !g.Equal(x, 0) {
		t.Error("eval-mode dropout backward must be identity")
	}
}

func TestDropoutZeroProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout("do", 0, rng)
	x := tensor.Randn(rng, 1, 3, 3)
	if !d.Forward(x, true).Equal(x, 0) {
		t.Error("p=0 dropout must be identity")
	}
}

func TestDropoutPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout("do", 0.3, rng)
	x := tensor.Ones(10000)
	y := d.Forward(x, true)
	// Inverted dropout: E[y] = 1.
	if math.Abs(y.Mean()-1) > 0.05 {
		t.Errorf("dropout mean = %v, want ≈ 1", y.Mean())
	}
	// Survivors are scaled by 1/(1−p).
	seen := map[float64]bool{}
	for _, v := range y.Data {
		seen[v] = true
	}
	if len(seen) != 2 {
		t.Errorf("dropout output has %d distinct values, want 2", len(seen))
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout("do", 0.5, rng)
	x := tensor.Ones(64)
	y := d.Forward(x, true)
	g := d.Backward(tensor.Ones(64))
	// Gradient flows exactly where the forward survived (same scale).
	for i := range y.Data {
		if (y.Data[i] == 0) != (g.Data[i] == 0) {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestGroupNormForwardNormalizesSlabs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	gn := NewGroupNorm("gn", 4, 2)
	x := tensor.Randn(rng, 2, 2, 4, 3, 3)
	y := gn.Forward(x, true)
	// Each (image, group) slab of the output is standardized (γ=1, β=0).
	spatial := 9
	groupLen := 2 * spatial
	for img := 0; img < 2; img++ {
		for grp := 0; grp < 2; grp++ {
			base := img*4*spatial + grp*groupLen
			var mean float64
			for i := 0; i < groupLen; i++ {
				mean += y.Data[base+i]
			}
			mean /= float64(groupLen)
			if math.Abs(mean) > 1e-10 {
				t.Errorf("slab (%d,%d) mean %v", img, grp, mean)
			}
		}
	}
}

func TestGroupNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gn := NewGroupNorm("gn", 4, 2)
	x := tensor.Randn(rng, 1, 2, 4, 3, 3)
	gradCheckLayer(t, gn, x, rng)
}

func TestGroupNormSingleGroupIsLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gn := NewGroupNorm("gn", 3, 1)
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	gradCheckLayer(t, gn, x, rng)
}

func TestGroupNormInvalidGroupsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGroupNorm("gn", 4, 3)
}

func TestGroupNormBatchSizeIndependent(t *testing.T) {
	// GroupNorm of a single image must not change when other images join
	// the batch — the property BatchNorm lacks.
	rng := rand.New(rand.NewSource(10))
	gn := NewGroupNorm("gn", 2, 2)
	x1 := tensor.Randn(rng, 1, 1, 2, 3, 3)
	solo := gn.Forward(x1, true).Clone()
	x2 := tensor.ConcatRows(x1, tensor.Randn(rng, 1, 1, 2, 3, 3))
	both := gn.Forward(x2, true)
	firstHalf := tensor.SliceRows(both, 0, 1)
	if !firstHalf.Equal(solo, 1e-12) {
		t.Error("GroupNorm output depends on batch composition")
	}
}
