package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// reuseTestNet builds a model covering every BufferReuser layer type:
// conv, batchnorm, relu, residual (with conv shortcut), pooling variants,
// dropout, flatten, linear.
func reuseTestNet(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	body := NewSequential("body",
		NewConv2D("b.conv", 4, 4, 3, 1, 1, false, rng),
		NewBatchNorm2d("b.bn", 4),
	)
	short := NewConv2D("b.short", 4, 4, 1, 1, 0, false, rng)
	return NewSequential("net",
		NewConv2D("stem", 2, 4, 3, 1, 1, true, rng),
		NewBatchNorm2d("bn", 4),
		NewReLU("relu"),
		NewResidual("res", body, short),
		NewMaxPool2d("mp", 2, 2),
		NewAvgPool2d("ap", 2, 1),
		NewDropout("drop", 0.3, rand.New(rand.NewSource(seed+1))),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 5, true, rng),
	)
}

// TestBufferReuseBitIdentical: several training steps with workspace
// recycling on must produce exactly the outputs, input gradients, and
// parameter gradients of the allocating path — reuse changes storage
// identity only, never bits.
func TestBufferReuseBitIdentical(t *testing.T) {
	run := func(reuse bool) (outs []*tensor.Tensor, grads []*tensor.Tensor) {
		net := reuseTestNet(11)
		SetBufferReuse(net, reuse)
		ce := CrossEntropy{}
		for step := 0; step < 4; step++ {
			rng := rand.New(rand.NewSource(int64(500 + step)))
			x := tensor.Randn(rng, 1, 3, 2, 8, 8)
			labels := []int{0, 1, 2}
			out := net.Forward(x, true)
			outs = append(outs, out.Clone())
			_, g := ce.Loss(out, labels)
			ZeroGrads(net)
			dx := net.Backward(g)
			grads = append(grads, dx.Clone())
		}
		for _, p := range net.Params() {
			grads = append(grads, p.Grad.Clone())
		}
		return outs, grads
	}
	wantOut, wantGrad := run(false)
	gotOut, gotGrad := run(true)
	for i := range wantOut {
		if !wantOut[i].Equal(gotOut[i], 0) {
			t.Errorf("step %d: forward output differs under buffer reuse (exact comparison)", i)
		}
	}
	for i := range wantGrad {
		if !wantGrad[i].Equal(gotGrad[i], 0) {
			t.Errorf("gradient %d differs under buffer reuse (exact comparison)", i)
		}
	}
}

// TestBufferReuseSteadyStateForwardBackwardAllocs: after warmup at a fixed
// batch shape, the hot layers' forward/backward allocations must collapse
// to near zero. The loss (which is stateless) still allocates its gradient,
// so the guard measures forward+backward only.
func TestBufferReuseSteadyStateForwardBackwardAllocs(t *testing.T) {
	net := reuseTestNet(12)
	SetBufferReuse(net, true)
	rng := rand.New(rand.NewSource(900))
	x := tensor.Randn(rng, 1, 3, 2, 8, 8)
	g := tensor.Randn(rng, 1, 3, 5)
	for i := 0; i < 3; i++ { // settle workspaces
		net.Forward(x, true)
		ZeroGrads(net)
		net.Backward(g)
	}
	// ZeroGrads stays outside the guard: it walks Params(), which builds a
	// fresh slice — bookkeeping, not forward/backward compute. Gradients
	// accumulating across runs does not affect allocation behaviour.
	allocs := testing.AllocsPerRun(50, func() {
		net.Forward(x, true)
		net.Backward(g)
	})
	if allocs != 0 {
		t.Errorf("steady-state forward+backward allocated %.1f times per run, want 0", allocs)
	}
}
