package nn

import (
	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	name string
	mask []bool

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// SetBufferReuse implements BufferReuser.
func (r *ReLU) SetBufferReuse(on bool) { r.reuse = on }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := ensureBuf(r.reuse, &r.outBuf, x.Shape...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	dx := ensureBuf(r.reuse, &r.dxBuf, gradOut.Shape...)
	for i, v := range gradOut.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// MaxPool2d is max pooling over [N, C, H, W] with square window k,
// stride s, and no padding.
type MaxPool2d struct {
	name    string
	K, S    int
	argmax  []int
	inShape []int

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// NewMaxPool2d constructs a max-pooling layer.
func NewMaxPool2d(name string, k, stride int) *MaxPool2d {
	return &MaxPool2d{name: name, K: k, S: stride}
}

// SetBufferReuse implements BufferReuser.
func (m *MaxPool2d) SetBufferReuse(on bool) { m.reuse = on }

// Forward implements Layer.
func (m *MaxPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	m.inShape = x.Shape
	oh := (h-m.K)/m.S + 1
	ow := (w-m.K)/m.S + 1
	out := ensureBuf(m.reuse, &m.outBuf, n, c, oh, ow)
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bestIdx := base + (oy*m.S)*w + ox*m.S
					best := x.Data[bestIdx]
					for ky := 0; ky < m.K; ky++ {
						rowBase := base + (oy*m.S+ky)*w
						for kx := 0; kx < m.K; kx++ {
							idx := rowBase + ox*m.S + kx
							if x.Data[idx] > best {
								best = x.Data[idx]
								bestIdx = idx
							}
						}
					}
					out.Data[oi] = best
					m.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	dx := ensureBufZero(m.reuse, &m.dxBuf, m.inShape...)
	for i, v := range gradOut.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2d) Params() []*Param { return nil }

// Name implements Layer.
func (m *MaxPool2d) Name() string { return m.name }

// GlobalAvgPool reduces [N, C, H, W] to [N, C] by averaging each channel's
// spatial extent — the head pooling of ResNet before the classifier.
type GlobalAvgPool struct {
	name    string
	inShape []int

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// SetBufferReuse implements BufferReuser.
func (g *GlobalAvgPool) SetBufferReuse(on bool) { g.reuse = on }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	g.inShape = x.Shape
	spatial := h * w
	out := ensureBuf(g.reuse, &g.outBuf, n, c)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * spatial
			var s float64
			for i := 0; i < spatial; i++ {
				s += x.Data[base+i]
			}
			out.Data[img*c+ch] = s / float64(spatial)
		}
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	spatial := h * w
	inv := 1 / float64(spatial)
	dx := ensureBuf(g.reuse, &g.dxBuf, g.inShape...)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			gv := gradOut.Data[img*c+ch] * inv
			base := (img*c + ch) * spatial
			for i := 0; i < spatial; i++ {
				dx.Data[base+i] = gv
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// Flatten reshapes [N, ...] to [N, rest]. Needed between conv stacks and
// linear classifiers when global pooling is not used.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = x.Shape
	n := x.Shape[0]
	rest := x.Len() / n
	return x.Reshape(n, rest)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }
