package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// f32LayerTol bounds the forward/backward divergence of the float32 compute
// path from the float64 reference for unit-scale inputs: float32 round-off
// amplified by the O(k) reductions, with float64 accumulation keeping the
// growth linear in ε₃₂ rather than √k·ε₃₂-per-partial.
func f32LayerTol(k int) float64 { return 1e-6 * float64(k+4) }

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// cloneLinear builds two identically-initialized Linear layers.
func cloneLinear(seed int64, in, out int, bias bool) (*Linear, *Linear) {
	a := NewLinear("fc", in, out, bias, rand.New(rand.NewSource(seed)))
	b := NewLinear("fc", in, out, bias, rand.New(rand.NewSource(seed)))
	return a, b
}

// TestLinearF32MatchesFloat64 runs the same forward/backward through the
// float64 reference and the float32 compute path and bounds the divergence
// of output, input gradient, and parameter gradients.
func TestLinearF32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bias := range []bool{true, false} {
		ref, f32 := cloneLinear(7, 6, 5, bias)
		SetComputeF32(f32, true)
		x := tensor.Randn(rng, 1, 8, 6)
		g := tensor.Randn(rng, 1, 8, 5)

		yRef := ref.Forward(x, true)
		yF32 := f32.Forward(x, true)
		if d := maxAbsDiff(yRef, yF32); d > f32LayerTol(6) {
			t.Errorf("bias=%v forward diverges: %.3e", bias, d)
		}
		ZeroGrads(ref)
		ZeroGrads(f32)
		dxRef := ref.Backward(g)
		dxF32 := f32.Backward(g)
		if d := maxAbsDiff(dxRef, dxF32); d > f32LayerTol(5) {
			t.Errorf("bias=%v dx diverges: %.3e", bias, d)
		}
		if d := maxAbsDiff(ref.W.Grad, f32.W.Grad); d > f32LayerTol(8) {
			t.Errorf("bias=%v dW diverges: %.3e", bias, d)
		}
		if bias {
			if d := maxAbsDiff(ref.B.Grad, f32.B.Grad); d > f32LayerTol(8) {
				t.Errorf("dB diverges: %.3e", d)
			}
		}
	}
}

// TestConv2DF32MatchesFloat64 is the conv counterpart, covering the im2col
// lowering, the layout transforms, and the widening col2im scatter.
func TestConv2DF32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func() (*Conv2D, *Conv2D) {
		a := NewConv2D("conv", 2, 3, 3, 1, 1, true, rand.New(rand.NewSource(3)))
		b := NewConv2D("conv", 2, 3, 3, 1, 1, true, rand.New(rand.NewSource(3)))
		return a, b
	}
	ref, f32 := mk()
	SetComputeF32(f32, true)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	yRef := ref.Forward(x, true)
	yF32 := f32.Forward(x, true)
	k := 2 * 3 * 3
	if d := maxAbsDiff(yRef, yF32); d > f32LayerTol(k) {
		t.Errorf("forward diverges: %.3e", d)
	}
	g := tensor.Randn(rng, 1, 2, 3, 5, 5)
	ZeroGrads(ref)
	ZeroGrads(f32)
	dxRef := ref.Backward(g)
	dxF32 := f32.Backward(g)
	// Backward reductions run over N·oh·ow = 50 samples.
	if d := maxAbsDiff(dxRef, dxF32); d > f32LayerTol(50) {
		t.Errorf("dx diverges: %.3e", d)
	}
	if d := maxAbsDiff(ref.W.Grad, f32.W.Grad); d > f32LayerTol(50) {
		t.Errorf("dW diverges: %.3e", d)
	}
	if d := maxAbsDiff(ref.B.Grad, f32.B.Grad); d > f32LayerTol(50) {
		t.Errorf("dB diverges: %.3e", d)
	}
}

// TestF32CaptureAccessors checks the KFAC capture contract on the float32
// path: the native float32 accessors return the captured matrices, the
// float64 accessors return widened views of the same values, and both
// return nil/nil before capture is enabled.
func TestF32CaptureAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	l := NewLinear("fc", 4, 3, true, rng)
	SetComputeF32(l, true)
	x := tensor.Randn(rng, 1, 5, 4)
	g := tensor.Randn(rng, 1, 5, 3)

	l.Forward(x, true)
	if l.CapturedActivation32() != nil || l.CapturedActivation() != nil {
		t.Fatal("capture disabled but activation captured")
	}
	l.SetCapture(true)
	l.Forward(x, true)
	ZeroGrads(l)
	l.Backward(g)
	a32, g32 := l.CapturedActivation32(), l.CapturedOutputGrad32()
	if a32 == nil || g32 == nil {
		t.Fatal("float32 captures missing")
	}
	for i := range a32.Data {
		if a32.Data[i] != float32(x.Data[i]) {
			t.Fatalf("activation capture mismatch at %d", i)
		}
	}
	a64, g64 := l.CapturedActivation(), l.CapturedOutputGrad()
	for i := range a32.Data {
		if a64.Data[i] != float64(a32.Data[i]) {
			t.Fatalf("widened activation view mismatch at %d", i)
		}
	}
	for i := range g32.Data {
		if g64.Data[i] != float64(g32.Data[i]) {
			t.Fatalf("widened grad view mismatch at %d", i)
		}
	}
}

// TestSetComputeF32Toggle checks the walker recurses through containers and
// that switching back to float64 restores the reference path exactly.
func TestSetComputeF32Toggle(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewSequential("net",
		NewConv2D("conv", 1, 2, 3, 1, 1, true, rng),
		NewReLU("relu"),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 2, 3, true, rng),
	)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	want := net.Forward(x, true).Clone()

	SetComputeF32(net, true)
	for _, l := range CapturableLayers(net) {
		if _, ok := l.(F32Computer); !ok {
			t.Fatalf("layer %s did not expose F32Computer", l.Name())
		}
	}
	got32 := net.Forward(x, true)
	if maxAbsDiff(want, got32) == 0 {
		t.Log("f32 output exactly equals f64 (tiny net; not an error)")
	}

	SetComputeF32(net, false)
	got := net.Forward(x, true)
	if !want.Equal(got, 0) {
		t.Fatal("disabling f32 did not restore the exact float64 path")
	}
}

// TestLinearF32ZeroAllocSteadyState guards the reuse contract of the float32
// buffers: with buffer reuse on, steady-state forward+backward through the
// float32 path must not allocate.
func TestLinearF32ZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	l := NewLinear("fc", 16, 8, true, rng)
	SetBufferReuse(l, true)
	SetComputeF32(l, true)
	l.SetCapture(true)
	x := tensor.Randn(rng, 1, 4, 16)
	g := tensor.Randn(rng, 1, 4, 8)
	step := func() {
		l.Forward(x, true)
		l.Backward(g)
	}
	step()
	step()
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Errorf("f32 Linear step allocated %.1f times per run, want 0", allocs)
	}
}
