// Package nn implements the neural-network substrate the K-FAC
// preconditioner operates on: parameterized layers with explicit forward and
// backward passes (Linear, Conv2D via im2col, BatchNorm2d, ReLU, pooling),
// residual blocks, sequential composition, and a cross-entropy loss with
// label smoothing.
//
// The package plays the role PyTorch's nn + autograd play in the paper. In
// particular it provides the capture hooks K-FAC needs (paper §IV-B): layers
// that satisfy KFACCapturable record, when capture is enabled, the layer
// input activations from the forward pass and the gradient with respect to
// the layer output from the backward pass — exactly what the paper's
// registered forward/backward hooks save on each worker.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator. Optimizers
// update Value from Grad; K-FAC rewrites Grad in place before the optimizer
// runs (the "preconditioner" contract from the paper's Listing 1).
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	// NoWeightDecay marks parameters (BatchNorm scales/biases, biases)
	// excluded from L2 regularization, matching common ResNet recipes.
	NoWeightDecay bool
}

// NewParam allocates a parameter with a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward consumes the input and caches
// whatever the backward pass needs; Backward consumes dL/d(output) and
// returns dL/d(input), accumulating parameter gradients into Params.
type Layer interface {
	// Forward runs the layer on x. train selects training behaviour
	// (BatchNorm batch statistics, capture hooks).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates gradOut (dL/d output) and returns dL/d input.
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Name returns a stable human-readable identifier.
	Name() string
}

// KFACCapturable is implemented by layers K-FAC can precondition (Linear and
// Conv2D — the paper's §V "supports K-FAC updates for Linear and Conv2D
// layers"). The capture accessors return the data needed to form the
// Kronecker factors A and G.
type KFACCapturable interface {
	Layer
	// SetCapture enables or disables activation/gradient capture.
	SetCapture(on bool)
	// CapturedActivation returns the activation samples from the last
	// forward pass as a [samples, inDim] matrix (conv layers return the
	// im2col patch matrix [n·outH·outW, C·kh·kw]). Nil if capture was off.
	CapturedActivation() *tensor.Tensor
	// CapturedOutputGrad returns dL/d(pre-activation output) from the last
	// backward pass as a [samples, outDim] matrix (conv layers return
	// [n·outH·outW, outC]). Nil if capture was off.
	CapturedOutputGrad() *tensor.Tensor
	// BatchSize returns the mini-batch size N of the last forward pass.
	BatchSize() int
	// SpatialSize returns outH·outW for conv layers and 1 for linear.
	SpatialSize() int
	// HasBias reports whether the layer has a bias parameter (the A factor
	// then gains a homogeneous coordinate).
	HasBias() bool
	// CombinedGrad returns the [outDim, inDim(+1)] gradient matrix of
	// weight (and bias in the final column when present). The returned
	// tensor is freshly allocated.
	CombinedGrad() *tensor.Tensor
	// CombinedGradInto writes the combined gradient matrix into dst, which
	// must have shape [outDim, inDim(+1)]. This is the allocation-free form
	// the K-FAC step's per-layer workspaces use.
	CombinedGradInto(dst *tensor.Tensor)
	// SetCombinedGrad writes a preconditioned [outDim, inDim(+1)] gradient
	// back into the layer's weight (and bias) gradient accumulators.
	SetCombinedGrad(g *tensor.Tensor)
	// InDim returns the A-factor dimension excluding the bias column.
	InDim() int
	// OutDim returns the G-factor dimension.
	OutDim() int
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Add appends a layer.
func (s *Sequential) Add(l Layer) { s.Layers = append(s.Layers, l) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params implements Layer, concatenating all child parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// State is a named non-trainable buffer (e.g. BatchNorm running statistics)
// that must be checkpointed alongside parameters.
type State struct {
	Name  string
	Value *tensor.Tensor
}

// Stateful is implemented by layers carrying non-trainable state.
type Stateful interface {
	Layer
	// StateTensors returns live views of the layer's buffers; callers may
	// read or overwrite their contents.
	StateTensors() []State
}

// StateTensors walks a layer tree and collects every Stateful layer's
// buffers in deterministic order.
func StateTensors(root Layer) []State {
	var out []State
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			walk(v.Body)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
		case Stateful:
			out = append(out, v.StateTensors()...)
		}
	}
	walk(root)
	return out
}

// CapturableLayers walks a layer tree and returns every KFACCapturable in
// forward order. This is what the K-FAC preconditioner registers against,
// mirroring the paper's per-layer hook registration.
func CapturableLayers(root Layer) []KFACCapturable {
	var out []KFACCapturable
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			walk(v.Body)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
		case KFACCapturable:
			out = append(out, v)
		}
	}
	walk(root)
	return out
}

// BufferReuser is implemented by layers that can recycle their forward and
// backward workspace tensors across steps instead of allocating fresh ones.
// Reuse changes storage identity only — the arithmetic, and therefore the
// result bits, are untouched — but a layer's outputs become invalid once
// its next Forward/Backward runs, so callers that retain outputs across
// steps (tests comparing two forward passes, plotting code) must leave
// reuse off. The trainer enables it for its session-driven loops, where
// every output is consumed within the step that produced it.
type BufferReuser interface {
	Layer
	// SetBufferReuse enables or disables workspace recycling.
	SetBufferReuse(on bool)
}

// SetBufferReuse walks a layer tree and toggles workspace recycling on
// every layer that supports it (see BufferReuser).
func SetBufferReuse(root Layer, on bool) {
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			v.reuse = on
			walk(v.Body)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
			walk(v.relu)
		default:
			if br, ok := l.(BufferReuser); ok {
				br.SetBufferReuse(on)
			}
		}
	}
	walk(root)
}

// ensureBuf returns a tensor of the given shape: when reuse is on it
// recycles (*buf)'s storage via tensor.Ensure (contents unspecified),
// otherwise it allocates fresh zeroed storage without touching *buf. Both
// paths go through Ensure so the variadic shape never escapes — a reusing
// caller at steady state allocates nothing.
func ensureBuf(reuse bool, buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	if reuse {
		return tensor.Ensure(buf, shape...)
	}
	var fresh *tensor.Tensor
	return tensor.Ensure(&fresh, shape...)
}

// ensureBufZero is ensureBuf with the returned tensor guaranteed zeroed.
func ensureBufZero(reuse bool, buf **tensor.Tensor, shape ...int) *tensor.Tensor {
	if reuse {
		return tensor.EnsureZero(buf, shape...)
	}
	var fresh *tensor.Tensor
	return tensor.Ensure(&fresh, shape...)
}

// ZeroGrads clears all parameter gradients in a layer tree.
func ZeroGrads(root Layer) {
	for _, p := range root.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters in a layer tree.
func ParamCount(root Layer) int {
	n := 0
	for _, p := range root.Params() {
		n += p.Value.Len()
	}
	return n
}

// heInit fills w with Kaiming-He normal initialization for fanIn inputs:
// N(0, sqrt(2/fanIn)) — the standard ResNet initialization.
func heInit(rng *rand.Rand, w *tensor.Tensor, fanIn int) {
	std := 1.0
	if fanIn > 0 {
		std = math.Sqrt(2 / float64(fanIn))
	}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * std
	}
}

// Residual is a residual block: out = body(x) + shortcut(x), followed by a
// ReLU, matching the post-activation ResNet-v1 design the paper trains.
// Shortcut may be nil for an identity skip.
type Residual struct {
	name     string
	Body     Layer
	Shortcut Layer // nil = identity

	relu *ReLU
	x    *tensor.Tensor

	reuse  bool
	sumBuf *tensor.Tensor // forward: body + shortcut sum
	bwBuf  *tensor.Tensor // backward: summed input gradient
}

// NewResidual constructs a residual block.
func NewResidual(name string, body, shortcut Layer) *Residual {
	return &Residual{name: name, Body: body, Shortcut: shortcut, relu: NewReLU(name + ".relu")}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.x = x
	out := r.Body.Forward(x, train)
	var sc *tensor.Tensor
	if r.Shortcut != nil {
		sc = r.Shortcut.Forward(x, train)
	} else {
		sc = x
	}
	if !out.SameShape(sc) {
		panic(fmt.Sprintf("nn: residual %s shape mismatch body=%v shortcut=%v",
			r.name, out.Shape, sc.Shape))
	}
	sum := ensureBuf(r.reuse, &r.sumBuf, out.Shape...)
	sum.CopyFrom(out)
	sum.Add(sc)
	return r.relu.Forward(sum, train)
}

// Backward implements Layer.
func (r *Residual) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := r.relu.Backward(gradOut)
	gBody := r.Body.Backward(g)
	if r.Shortcut != nil {
		gShort := r.Shortcut.Backward(g)
		sum := ensureBuf(r.reuse, &r.bwBuf, gBody.Shape...)
		sum.CopyFrom(gBody)
		sum.Add(gShort)
		return sum
	}
	out := ensureBuf(r.reuse, &r.bwBuf, gBody.Shape...)
	out.CopyFrom(gBody)
	out.Add(g)
	return out
}

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Shortcut != nil {
		ps = append(ps, r.Shortcut.Params()...)
	}
	return ps
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }
