package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// GroupNorm normalizes groups of channels within each example of an
// [N, C, H, W] tensor (Wu & He). Unlike BatchNorm it has no batch-size
// dependence and no running statistics, which makes it attractive for the
// very large effective batches the paper's large-batch context concerns —
// included as the standard alternative normalizer.
type GroupNorm struct {
	name   string
	C      int
	Groups int
	Eps    float64

	Gamma *Param
	Beta  *Param

	// Backward caches.
	xhat   *tensor.Tensor
	invStd []float64 // per (image, group)
	shape  []int
}

// NewGroupNorm constructs a group normalization layer; groups must divide c.
func NewGroupNorm(name string, c, groups int) *GroupNorm {
	if groups < 1 || c%groups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm groups %d must divide channels %d", groups, c))
	}
	g := NewParam(name+".gamma", tensor.Ones(c))
	b := NewParam(name+".beta", tensor.New(c))
	g.NoWeightDecay = true
	b.NoWeightDecay = true
	return &GroupNorm{name: name, C: c, Groups: groups, Eps: 1e-5, Gamma: g, Beta: b}
}

// Forward implements Layer.
func (g *GroupNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != g.C {
		panic("nn: GroupNorm channel mismatch")
	}
	g.shape = x.Shape
	spatial := h * w
	chPerGroup := c / g.Groups
	groupLen := chPerGroup * spatial
	out := tensor.New(n, c, h, w)
	g.xhat = tensor.New(n, c, h, w)
	if cap(g.invStd) < n*g.Groups {
		g.invStd = make([]float64, n*g.Groups)
	}
	g.invStd = g.invStd[:n*g.Groups]
	for img := 0; img < n; img++ {
		for grp := 0; grp < g.Groups; grp++ {
			base := img*c*spatial + grp*groupLen
			var mean float64
			for i := 0; i < groupLen; i++ {
				mean += x.Data[base+i]
			}
			mean /= float64(groupLen)
			var variance float64
			for i := 0; i < groupLen; i++ {
				d := x.Data[base+i] - mean
				variance += d * d
			}
			variance /= float64(groupLen)
			inv := 1 / math.Sqrt(variance+g.Eps)
			g.invStd[img*g.Groups+grp] = inv
			for ch := 0; ch < chPerGroup; ch++ {
				gamma := g.Gamma.Value.Data[grp*chPerGroup+ch]
				beta := g.Beta.Value.Data[grp*chPerGroup+ch]
				cb := base + ch*spatial
				for s := 0; s < spatial; s++ {
					xh := (x.Data[cb+s] - mean) * inv
					g.xhat.Data[cb+s] = xh
					out.Data[cb+s] = gamma*xh + beta
				}
			}
		}
	}
	return out
}

// Backward implements Layer. Same derivation as BatchNorm, with statistics
// over each (image, group) slab.
func (g *GroupNorm) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.shape[0], g.shape[1], g.shape[2], g.shape[3]
	spatial := h * w
	chPerGroup := c / g.Groups
	groupLen := chPerGroup * spatial
	dx := tensor.New(g.shape...)
	cnt := float64(groupLen)
	for img := 0; img < n; img++ {
		for grp := 0; grp < g.Groups; grp++ {
			base := img*c*spatial + grp*groupLen
			inv := g.invStd[img*g.Groups+grp]
			// Accumulate per-channel parameter grads and the two slab sums
			// of dxhat = dy·γ.
			var sumDxhat, sumDxhatXhat float64
			for ch := 0; ch < chPerGroup; ch++ {
				gamma := g.Gamma.Value.Data[grp*chPerGroup+ch]
				cb := base + ch*spatial
				for s := 0; s < spatial; s++ {
					dy := gradOut.Data[cb+s]
					xh := g.xhat.Data[cb+s]
					g.Gamma.Grad.Data[grp*chPerGroup+ch] += dy * xh
					g.Beta.Grad.Data[grp*chPerGroup+ch] += dy
					dxh := dy * gamma
					sumDxhat += dxh
					sumDxhatXhat += dxh * xh
				}
			}
			for ch := 0; ch < chPerGroup; ch++ {
				gamma := g.Gamma.Value.Data[grp*chPerGroup+ch]
				cb := base + ch*spatial
				for s := 0; s < spatial; s++ {
					dxh := gradOut.Data[cb+s] * gamma
					xh := g.xhat.Data[cb+s]
					dx.Data[cb+s] = inv / cnt * (cnt*dxh - sumDxhat - xh*sumDxhatXhat)
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GroupNorm) Params() []*Param { return []*Param{g.Gamma, g.Beta} }

// Name implements Layer.
func (g *GroupNorm) Name() string { return g.name }
