package nn

import "repro/internal/tensor"

// Mixed-precision compute path for the GEMM-heavy layers (Linear, Conv2D).
//
// With SetComputeF32 enabled a layer narrows its inputs and weights to
// float32 once per pass and runs its matrix products through the float32
// kernels (tensor.MatMul*Into32), which accumulate inner products in
// float64 before rounding — see internal/tensor/kernels32.go. Everything
// crossing the layer boundary stays float64: Forward still returns a
// float64 tensor, Backward still consumes and produces float64 gradients,
// and parameter gradients accumulate in float64 (via the widening
// tensor.FoldAcc32), so optimizers, communication, and checkpoints are
// untouched ("convert at the boundary", docs/ARCHITECTURE.md). The cheap
// pointwise layers (ReLU, BatchNorm, pooling) stay float64 — they are a
// vanishing share of step time and BatchNorm's running statistics benefit
// from the extra precision.

// F32Computer is implemented by layers that can route their compute through
// the float32 kernel path. Like buffer reuse, the toggle changes arithmetic
// precision of the internal products only — layer interfaces keep float64
// tensors — but unlike reuse it does change result bits; the trainer
// enables it only when the session's KFAC precision is F32.
type F32Computer interface {
	Layer
	// SetComputeF32 enables or disables the float32 compute path.
	SetComputeF32(on bool)
}

// SetComputeF32 walks a layer tree and toggles the float32 compute path on
// every layer that supports it (see F32Computer).
func SetComputeF32(root Layer, on bool) {
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers {
				walk(c)
			}
		case *Residual:
			walk(v.Body)
			if v.Shortcut != nil {
				walk(v.Shortcut)
			}
		default:
			if fc, ok := l.(F32Computer); ok {
				fc.SetComputeF32(on)
			}
		}
	}
	walk(root)
}

// KFACCapturable32 extends KFACCapturable with direct access to the float32
// capture buffers a mixed-precision layer already holds, so the K-FAC
// covariance path can consume them without a float64 round trip. Both
// accessors return nil when the float32 compute path is off (callers fall
// back to narrowing the float64 captures).
type KFACCapturable32 interface {
	KFACCapturable
	// CapturedActivation32 is the float32 twin of CapturedActivation.
	CapturedActivation32() *tensor.T32
	// CapturedOutputGrad32 is the float32 twin of CapturedOutputGrad.
	CapturedOutputGrad32() *tensor.T32
}

// ensureField32 returns a float32 buffer of the given shape stored in *buf:
// under reuse it recycles (*buf)'s storage in place; otherwise it allocates
// fresh storage (still assigned to *buf — unlike the float64 ensureBuf,
// mixed-precision buffers are always fields, because the backward pass and
// the capture accessors need the forward pass's exact buffers).
func ensureField32(reuse bool, buf **tensor.T32, shape ...int) *tensor.T32 {
	if !reuse {
		*buf = nil
	}
	return tensor.Ensure32(buf, shape...)
}

// --- Linear float32 path -------------------------------------------------

// linearF32 carries Linear's mixed-precision buffers, allocated only when
// the path is enabled.
type linearF32 struct {
	x, w, y  *tensor.T32    // narrowed input, narrowed weight, forward product
	g, dw    *tensor.T32    // narrowed output grad, weight-gradient product
	dx       *tensor.T32    // input-gradient product
	actWide  *tensor.Tensor // lazy float64 view for CapturedActivation
	gradWide *tensor.Tensor // lazy float64 view for CapturedOutputGrad
}

// forward32 is Linear.Forward on the float32 kernel path.
func (l *Linear) forward32(x *tensor.Tensor, train bool) *tensor.Tensor {
	f := l.f32
	l.x = x
	l.batch = x.Rows()
	n := x.Rows()
	x32 := ensureField32(l.reuse, &f.x, n, l.In)
	x32.NarrowFrom(x)
	w32 := ensureField32(l.reuse, &f.w, l.Out, l.In)
	w32.NarrowFrom(l.W.Value)
	y32 := ensureField32(l.reuse, &f.y, n, l.Out)
	tensor.MatMulT2Into32(y32, x32, w32)
	if l.B != nil {
		for i := 0; i < n; i++ {
			row := y32.Data[i*l.Out : (i+1)*l.Out]
			for j := 0; j < l.Out; j++ {
				row[j] += float32(l.B.Value.Data[j])
			}
		}
	}
	y := ensureBuf(l.reuse, &l.yBuf, n, l.Out)
	y32.WidenInto(y)
	return y
}

// backward32 is Linear.Backward on the float32 kernel path. Parameter
// gradients accumulate in float64 (FoldAcc32), so repeated micro-batch
// accumulation does not compound float32 round-off.
func (l *Linear) backward32(gradOut *tensor.Tensor) *tensor.Tensor {
	f := l.f32
	n := gradOut.Rows()
	g32 := ensureField32(l.reuse, &f.g, n, l.Out)
	g32.NarrowFrom(gradOut)
	// dW = gradOutᵀ × x ([out, in]), folded into the float64 accumulator.
	dw32 := ensureField32(l.reuse, &f.dw, l.Out, l.In)
	tensor.MatMulT1Into32(dw32, g32, f.x)
	tensor.FoldAcc32(l.W.Grad.Data, dw32.Data)
	if l.B != nil {
		for i := 0; i < n; i++ {
			row := g32.Data[i*l.Out : (i+1)*l.Out]
			for j := 0; j < l.Out; j++ {
				l.B.Grad.Data[j] += float64(row[j])
			}
		}
	}
	// dX = gradOut × W ([N, in]), widened at the boundary.
	dx32 := ensureField32(l.reuse, &f.dx, n, l.In)
	tensor.MatMulInto32(dx32, g32, f.w)
	dx := ensureBuf(l.reuse, &l.dxBuf, n, l.In)
	dx32.WidenInto(dx)
	return dx
}

// SetComputeF32 implements F32Computer.
func (l *Linear) SetComputeF32(on bool) {
	if on && l.f32 == nil {
		l.f32 = &linearF32{}
	}
	if !on {
		l.f32 = nil
	}
}

// CapturedActivation32 implements KFACCapturable32: the narrowed input of
// the last float32 forward pass (valid until the next forward).
func (l *Linear) CapturedActivation32() *tensor.T32 {
	if l.f32 == nil || !l.capture {
		return nil
	}
	return l.f32.x
}

// CapturedOutputGrad32 implements KFACCapturable32.
func (l *Linear) CapturedOutputGrad32() *tensor.T32 {
	if l.f32 == nil || !l.capture {
		return nil
	}
	return l.f32.g
}

var _ F32Computer = (*Linear)(nil)
var _ KFACCapturable32 = (*Linear)(nil)

// --- Conv2D float32 path -------------------------------------------------

// convF32 carries Conv2D's mixed-precision buffers.
type convF32 struct {
	x, cols, w *tensor.T32    // narrowed input, im2col patches, narrowed weight
	outMat     *tensor.T32    // forward GEMM product [n·oh·ow, outC]
	gradMat    *tensor.T32    // narrowed+transposed output grad
	dw, dCols  *tensor.T32    // weight-gradient and column-space products
	actWide    *tensor.Tensor // lazy float64 view for CapturedActivation
	gradWide   *tensor.Tensor // lazy float64 view for CapturedOutputGrad
}

// forward32 is Conv2D.Forward on the float32 kernel path: narrow once,
// im2col and GEMM in float32, widen the NCHW output at the boundary.
func (c *Conv2D) forward32(x *tensor.Tensor, n, h, w int) *tensor.Tensor {
	f := c.f32
	rows := n * c.outH * c.outW
	ckk := c.InC * c.KH * c.KW
	x32 := ensureField32(c.reuse, &f.x, n, c.InC, h, w)
	x32.NarrowFrom(x)
	cols32 := ensureField32(c.reuse, &f.cols, rows, ckk)
	tensor.Im2ColInto32(cols32, x32, c.KH, c.KW, c.Stride, c.Pad)
	w32 := ensureField32(c.reuse, &f.w, c.OutC, ckk)
	w32.NarrowFrom(c.W.Value)
	outMat := ensureField32(c.reuse, &f.outMat, rows, c.OutC)
	tensor.MatMulT2Into32(outMat, cols32, w32)
	if c.B != nil {
		for i := 0; i < rows; i++ {
			row := outMat.Data[i*c.OutC : (i+1)*c.OutC]
			for j := 0; j < c.OutC; j++ {
				row[j] += float32(c.B.Value.Data[j])
			}
		}
	}
	out := ensureBuf(c.reuse, &c.outBuf, n, c.OutC, c.outH, c.outW)
	matToNCHW32(out, outMat, n, c.OutC, c.outH, c.outW)
	return out
}

// backward32 is Conv2D.Backward on the float32 kernel path. The weight
// gradient folds into the float64 accumulator; the input gradient widens
// inside the col2im scatter (tensor.Col2ImInto32), where overlapping
// windows sum.
func (c *Conv2D) backward32(gradOut *tensor.Tensor) *tensor.Tensor {
	f := c.f32
	n := c.inShape[0]
	rows := n * c.outH * c.outW
	ckk := c.InC * c.KH * c.KW
	gradMat := ensureField32(c.reuse, &f.gradMat, rows, c.OutC)
	nchwToMat32(gradMat, gradOut, n, c.OutC, c.outH, c.outW)
	// dW = gradMatᵀ × cols ([outC, ckk]), folded into float64.
	dw32 := ensureField32(c.reuse, &f.dw, c.OutC, ckk)
	tensor.MatMulT1Into32(dw32, gradMat, f.cols)
	tensor.FoldAcc32(c.W.Grad.Data, dw32.Data)
	if c.B != nil {
		for i := 0; i < rows; i++ {
			row := gradMat.Data[i*c.OutC : (i+1)*c.OutC]
			for j := 0; j < c.OutC; j++ {
				c.B.Grad.Data[j] += float64(row[j])
			}
		}
	}
	// dCols = gradMat × W; dX = col2im(dCols) widened into float64.
	dCols := ensureField32(c.reuse, &f.dCols, rows, ckk)
	tensor.MatMulInto32(dCols, gradMat, f.w)
	dx := ensureBuf(c.reuse, &c.dxBuf, n, c.InC, c.inShape[2], c.inShape[3])
	tensor.Col2ImInto32(dx, dCols, c.KH, c.KW, c.Stride, c.Pad)
	return dx
}

// SetComputeF32 implements F32Computer.
func (c *Conv2D) SetComputeF32(on bool) {
	if on && c.f32 == nil {
		c.f32 = &convF32{}
	}
	if !on {
		c.f32 = nil
	}
}

// CapturedActivation32 implements KFACCapturable32: the float32 im2col
// patch matrix of the last forward pass.
func (c *Conv2D) CapturedActivation32() *tensor.T32 {
	if c.f32 == nil || !c.capture {
		return nil
	}
	return c.f32.cols
}

// CapturedOutputGrad32 implements KFACCapturable32.
func (c *Conv2D) CapturedOutputGrad32() *tensor.T32 {
	if c.f32 == nil || !c.capture {
		return nil
	}
	return c.f32.gradMat
}

var _ F32Computer = (*Conv2D)(nil)
var _ KFACCapturable32 = (*Conv2D)(nil)

// matToNCHW32 is matToNCHW with a float32 source, widening as it scatters.
func matToNCHW32(out *tensor.Tensor, m *tensor.T32, n, oc, oh, ow int) {
	spatial := oh * ow
	for img := 0; img < n; img++ {
		for s := 0; s < spatial; s++ {
			src := m.Data[(img*spatial+s)*oc:]
			for ch := 0; ch < oc; ch++ {
				out.Data[((img*oc+ch)*spatial + s)] = float64(src[ch])
			}
		}
	}
}

// nchwToMat32 is nchwToMat with a float64 source, narrowing as it gathers.
func nchwToMat32(m *tensor.T32, t *tensor.Tensor, n, oc, oh, ow int) {
	spatial := oh * ow
	for img := 0; img < n; img++ {
		for ch := 0; ch < oc; ch++ {
			base := (img*oc + ch) * spatial
			for s := 0; s < spatial; s++ {
				m.Data[(img*spatial+s)*oc+ch] = float32(t.Data[base+s])
			}
		}
	}
}

// widenCapture lazily materializes a float64 view of a float32 capture
// buffer for KFACCapturable callers that predate the mixed path.
func widenCapture(dst **tensor.Tensor, src *tensor.T32) *tensor.Tensor {
	if src == nil {
		return nil
	}
	d := tensor.Ensure(dst, src.Shape...)
	src.WidenInto(d)
	return d
}
