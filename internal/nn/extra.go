package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// AvgPool2d is windowed average pooling over [N, C, H, W] with square
// window k and stride s (no padding). ResNet variants use it in shortcut
// paths; GlobalAvgPool covers the classifier head.
type AvgPool2d struct {
	name    string
	K, S    int
	inShape []int

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// NewAvgPool2d constructs an average-pooling layer.
func NewAvgPool2d(name string, k, stride int) *AvgPool2d {
	return &AvgPool2d{name: name, K: k, S: stride}
}

// SetBufferReuse implements BufferReuser.
func (a *AvgPool2d) SetBufferReuse(on bool) { a.reuse = on }

// Forward implements Layer.
func (a *AvgPool2d) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	a.inShape = x.Shape
	oh := (h-a.K)/a.S + 1
	ow := (w-a.K)/a.S + 1
	out := ensureBuf(a.reuse, &a.outBuf, n, c, oh, ow)
	inv := 1 / float64(a.K*a.K)
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					for ky := 0; ky < a.K; ky++ {
						rowBase := base + (oy*a.S+ky)*w + ox*a.S
						for kx := 0; kx < a.K; kx++ {
							s += x.Data[rowBase+kx]
						}
					}
					out.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := a.inShape[0], a.inShape[1], a.inShape[2], a.inShape[3]
	oh := (h-a.K)/a.S + 1
	ow := (w-a.K)/a.S + 1
	dx := ensureBufZero(a.reuse, &a.dxBuf, a.inShape...)
	inv := 1 / float64(a.K*a.K)
	oi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gradOut.Data[oi] * inv
					oi++
					for ky := 0; ky < a.K; ky++ {
						rowBase := base + (oy*a.S+ky)*w + ox*a.S
						for kx := 0; kx < a.K; kx++ {
							dx.Data[rowBase+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (a *AvgPool2d) Params() []*Param { return nil }

// Name implements Layer.
func (a *AvgPool2d) Name() string { return a.name }

// Dropout zeroes each element independently with probability P during
// training and scales survivors by 1/(1−P) (inverted dropout), so
// evaluation is the identity.
type Dropout struct {
	name string
	P    float64
	rng  *rand.Rand
	mask []bool

	reuse  bool
	outBuf *tensor.Tensor
	dxBuf  *tensor.Tensor
}

// NewDropout constructs a dropout layer with drop probability p.
func NewDropout(name string, p float64, rng *rand.Rand) *Dropout {
	return &Dropout{name: name, P: p, rng: rng}
}

// SetBufferReuse implements BufferReuser.
func (d *Dropout) SetBufferReuse(on bool) { d.reuse = on }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := ensureBufZero(d.reuse, &d.outBuf, x.Shape...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.P)
	for i, v := range x.Data {
		if d.rng.Float64() < d.P {
			d.mask[i] = false
		} else {
			d.mask[i] = true
			out.Data[i] = v * scale
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return gradOut
	}
	dx := ensureBufZero(d.reuse, &d.dxBuf, gradOut.Shape...)
	scale := 1 / (1 - d.P)
	for i, v := range gradOut.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }
