package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [N, C, H, W] inputs implemented as
// im2col + GEMM, the same lowering the paper's PyTorch substrate uses.
// Weight has shape [outC, inC·kh·kw]; bias (optional) has shape [outC].
//
// As a KFACCapturable, the captured activation is the im2col patch matrix
// [N·outH·outW, inC·kh·kw] — each row is one receptive-field sample, which
// is why the A factor of a conv layer has dimension inC·kh·kw (+1 with
// bias) — and the captured output gradient is [N·outH·outW, outC].
type Conv2D struct {
	name         string
	InC, OutC    int
	KH, KW       int
	Stride, Pad  int
	W            *Param
	B            *Param // nil when bias disabled
	capture      bool
	cols         *tensor.Tensor // cached im2col of last input
	inShape      []int
	outH, outW   int
	batch        int
	gradCap      *tensor.Tensor
	actCapShared bool // capture shares cols (no clone needed: cols is fresh per forward)

	reuse      bool           // recycle the buffers below across steps (BufferReuser)
	outMatBuf  *tensor.Tensor // forward GEMM output [n·oh·ow, outC]
	outBuf     *tensor.Tensor // forward NCHW output
	gradMatBuf *tensor.Tensor // backward layout transform of gradOut
	dwBuf      *tensor.Tensor // weight-gradient scratch
	dColsBuf   *tensor.Tensor // backward column-space gradient
	dxBuf      *tensor.Tensor // input gradient

	f32 *convF32 // non-nil when the float32 compute path is on (F32Computer)
}

// NewConv2D constructs a convolution layer with He initialization
// (fan-in = inC·kh·kw).
func NewConv2D(name string, inC, outC, k, stride, pad int, bias bool, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	heInit(rng, w, inC*k*k)
	c := &Conv2D{
		name: name, InC: inC, OutC: outC, KH: k, KW: k,
		Stride: stride, Pad: pad,
		W: NewParam(name+".weight", w),
	}
	if bias {
		c.B = NewParam(name+".bias", tensor.New(outC))
		c.B.NoWeightDecay = true
	}
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.InC {
		panic("nn: Conv2D channel mismatch")
	}
	if cap(c.inShape) >= 4 {
		c.inShape = c.inShape[:4]
		c.inShape[0], c.inShape[1], c.inShape[2], c.inShape[3] = n, ch, h, w
	} else {
		c.inShape = []int{n, ch, h, w}
	}
	c.batch = n
	c.outH = tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
	if c.f32 != nil {
		return c.forward32(x, n, h, w)
	}
	rows := n * c.outH * c.outW
	if c.reuse {
		tensor.Ensure(&c.cols, rows, c.InC*c.KH*c.KW)
		tensor.Im2ColInto(c.cols, x, c.KH, c.KW, c.Stride, c.Pad)
	} else {
		c.cols = tensor.Im2Col(x, c.KH, c.KW, c.Stride, c.Pad) // [n·oh·ow, ckk]
	}
	// out matrix [n·oh·ow, outC] = cols × Wᵀ
	outMat := ensureBuf(c.reuse, &c.outMatBuf, rows, c.OutC)
	tensor.MatMulT2Into(outMat, c.cols, c.W.Value)
	if c.B != nil {
		rows, oc := outMat.Rows(), outMat.Cols()
		for i := 0; i < rows; i++ {
			row := outMat.Data[i*oc : (i+1)*oc]
			for j := 0; j < oc; j++ {
				row[j] += c.B.Value.Data[j]
			}
		}
	}
	out := ensureBuf(c.reuse, &c.outBuf, n, c.OutC, c.outH, c.outW)
	matToNCHW(out, outMat, n, c.OutC, c.outH, c.outW)
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if c.f32 != nil {
		return c.backward32(gradOut)
	}
	n := c.inShape[0]
	gradMat := ensureBuf(c.reuse, &c.gradMatBuf, n*c.outH*c.outW, c.OutC)
	nchwToMat(gradMat, gradOut, n, c.OutC, c.outH, c.outW) // [n·oh·ow, outC]
	if c.capture {
		c.gradCap = gradMat
	}
	// dW = gradMatᵀ × cols ([outC, ckk])
	dW := ensureBuf(c.reuse, &c.dwBuf, c.OutC, c.InC*c.KH*c.KW)
	tensor.MatMulT1Into(dW, gradMat, c.cols)
	c.W.Grad.Add(dW)
	if c.B != nil {
		rows, oc := gradMat.Rows(), gradMat.Cols()
		for i := 0; i < rows; i++ {
			row := gradMat.Data[i*oc : (i+1)*oc]
			for j := 0; j < oc; j++ {
				c.B.Grad.Data[j] += row[j]
			}
		}
	}
	// dCols = gradMat × W ([n·oh·ow, ckk]); dX = col2im(dCols)
	dCols := ensureBuf(c.reuse, &c.dColsBuf, n*c.outH*c.outW, c.InC*c.KH*c.KW)
	tensor.MatMulInto(dCols, gradMat, c.W.Value)
	dx := ensureBuf(c.reuse, &c.dxBuf, n, c.InC, c.inShape[2], c.inShape[3])
	tensor.Col2ImInto(dx, dCols, c.KH, c.KW, c.Stride, c.Pad)
	return dx
}

// SetBufferReuse implements BufferReuser.
func (c *Conv2D) SetBufferReuse(on bool) { c.reuse = on }

// matToNCHW reshapes a [n·oh·ow, outC] matrix (rows ordered image-major,
// then spatial) into the [n, outC, oh, ow] destination, fully overwriting
// it.
func matToNCHW(out, m *tensor.Tensor, n, oc, oh, ow int) {
	spatial := oh * ow
	for img := 0; img < n; img++ {
		for s := 0; s < spatial; s++ {
			src := m.Data[(img*spatial+s)*oc:]
			for ch := 0; ch < oc; ch++ {
				out.Data[((img*oc+ch)*spatial + s)] = src[ch]
			}
		}
	}
}

// nchwToMat is the inverse layout transform of matToNCHW, writing into the
// [n·oh·ow, oc] destination m.
func nchwToMat(m, t *tensor.Tensor, n, oc, oh, ow int) {
	spatial := oh * ow
	for img := 0; img < n; img++ {
		for ch := 0; ch < oc; ch++ {
			base := (img*oc + ch) * spatial
			for s := 0; s < spatial; s++ {
				m.Data[(img*spatial+s)*oc+ch] = t.Data[base+s]
			}
		}
	}
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.B != nil {
		return []*Param{c.W, c.B}
	}
	return []*Param{c.W}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// SetCapture implements KFACCapturable.
func (c *Conv2D) SetCapture(on bool) {
	c.capture = on
	if !on {
		c.gradCap = nil
	}
}

// CapturedActivation implements KFACCapturable. The im2col matrix is
// rewritten by each forward pass (freshly allocated, or recycled in place
// under buffer reuse), so sharing it rather than cloning is safe for the
// within-step capture contract: K-FAC consumes it before the next forward.
func (c *Conv2D) CapturedActivation() *tensor.Tensor {
	if !c.capture {
		return nil
	}
	if c.f32 != nil {
		return widenCapture(&c.f32.actWide, c.CapturedActivation32())
	}
	return c.cols
}

// CapturedOutputGrad implements KFACCapturable.
func (c *Conv2D) CapturedOutputGrad() *tensor.Tensor {
	if c.f32 != nil {
		return widenCapture(&c.f32.gradWide, c.CapturedOutputGrad32())
	}
	return c.gradCap
}

// BatchSize implements KFACCapturable.
func (c *Conv2D) BatchSize() int { return c.batch }

// SpatialSize implements KFACCapturable.
func (c *Conv2D) SpatialSize() int { return c.outH * c.outW }

// HasBias implements KFACCapturable.
func (c *Conv2D) HasBias() bool { return c.B != nil }

// InDim implements KFACCapturable.
func (c *Conv2D) InDim() int { return c.InC * c.KH * c.KW }

// OutDim implements KFACCapturable.
func (c *Conv2D) OutDim() int { return c.OutC }

// CombinedGrad implements KFACCapturable.
func (c *Conv2D) CombinedGrad() *tensor.Tensor {
	in := c.InDim()
	var g *tensor.Tensor
	if c.B == nil {
		g = tensor.New(c.OutC, in)
	} else {
		g = tensor.New(c.OutC, in+1)
	}
	c.CombinedGradInto(g)
	return g
}

// CombinedGradInto implements KFACCapturable.
func (c *Conv2D) CombinedGradInto(g *tensor.Tensor) {
	in := c.InDim()
	if c.B == nil {
		g.CopyFrom(c.W.Grad)
		return
	}
	for i := 0; i < c.OutC; i++ {
		copy(g.Data[i*(in+1):i*(in+1)+in], c.W.Grad.Data[i*in:(i+1)*in])
		g.Data[i*(in+1)+in] = c.B.Grad.Data[i]
	}
}

// SetCombinedGrad implements KFACCapturable.
func (c *Conv2D) SetCombinedGrad(g *tensor.Tensor) {
	in := c.InDim()
	if c.B == nil {
		c.W.Grad.CopyFrom(g)
		return
	}
	for i := 0; i < c.OutC; i++ {
		copy(c.W.Grad.Data[i*in:(i+1)*in], g.Data[i*(in+1):i*(in+1)+in])
		c.B.Grad.Data[i] = g.Data[i*(in+1)+in]
	}
}

var _ KFACCapturable = (*Conv2D)(nil)
