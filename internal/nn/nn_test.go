package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// scalarLoss projects a layer output onto fixed random coefficients,
// giving a scalar function of the inputs/parameters whose analytic gradient
// the backward pass must match.
type scalarLoss struct {
	coef *tensor.Tensor
}

func newScalarLoss(rng *rand.Rand, shape []int) *scalarLoss {
	return &scalarLoss{coef: tensor.Randn(rng, 1, shape...)}
}

func (s *scalarLoss) value(out *tensor.Tensor) float64 { return out.Dot(s.coef) }

func (s *scalarLoss) grad() *tensor.Tensor { return s.coef.Clone() }

// numericGrad computes d f/d x[i] by central differences for every element
// of x, where f re-runs the full forward pass.
func numericGrad(f func() float64, x *tensor.Tensor, eps float64) *tensor.Tensor {
	g := tensor.New(x.Shape...)
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		fp := f()
		x.Data[i] = orig - eps
		fm := f()
		x.Data[i] = orig
		g.Data[i] = (fp - fm) / (2 * eps)
	}
	return g
}

func checkGrad(t *testing.T, name string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: gradient shape %v != %v", name, got.Shape, want.Shape)
	}
	for i := range got.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		scale := 1 + math.Abs(want.Data[i])
		if diff/scale > tol {
			t.Fatalf("%s: grad[%d] = %v, numeric %v (rel %.2e)", name, i, got.Data[i], want.Data[i], diff/scale)
		}
	}
}

// gradCheckLayer verifies input and parameter gradients of a layer against
// central differences.
func gradCheckLayer(t *testing.T, l Layer, x *tensor.Tensor, rng *rand.Rand) {
	t.Helper()
	out := l.Forward(x, true)
	sl := newScalarLoss(rng, out.Shape)
	// Analytic gradients.
	ZeroGrads(l)
	dx := l.Backward(sl.grad())
	f := func() float64 { return sl.value(l.Forward(x, true)) }
	numDx := numericGrad(f, x, 1e-5)
	checkGrad(t, l.Name()+"/input", dx, numDx, 2e-4)
	for _, p := range l.Params() {
		numDp := numericGrad(f, p.Value, 1e-5)
		checkGrad(t, l.Name()+"/"+p.Name, p.Grad, numDp, 2e-4)
	}
}

func TestLinearForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 2, 2, true, rng)
	l.W.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	l.B.Value.CopyFrom(tensor.FromSlice([]float64{10, 20}, 2))
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := l.Forward(x, false)
	if y.At(0, 0) != 13 || y.At(0, 1) != 27 {
		t.Errorf("Linear forward = %v, want [13 27]", y.Data)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear("fc", 5, 4, true, rng)
	x := tensor.Randn(rng, 1, 3, 5)
	gradCheckLayer(t, l, x, rng)
}

func TestLinearNoBiasGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 4, 3, false, rng)
	x := tensor.Randn(rng, 1, 2, 4)
	gradCheckLayer(t, l, x, rng)
}

// naiveConv2D computes convolution directly from the definition.
func naiveConv2D(x, w *tensor.Tensor, bias []float64, outC, k, stride, pad int) *tensor.Tensor {
	n, c, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh := tensor.ConvOutSize(h, k, stride, pad)
	ow := tensor.ConvOutSize(wd, k, stride, pad)
	out := tensor.New(n, outC, oh, ow)
	for img := 0; img < n; img++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float64
					if bias != nil {
						s = bias[oc]
					}
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < k; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride - pad + kx
								if ix < 0 || ix >= wd {
									continue
								}
								s += x.At(img, ch, iy, ix) * w.At(oc, (ch*k+ky)*k+kx)
							}
						}
					}
					out.Set(s, img, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, cfg := range []struct{ k, stride, pad int }{
		{3, 1, 1}, {3, 2, 1}, {1, 1, 0}, {5, 1, 2},
	} {
		conv := NewConv2D("c", 3, 4, cfg.k, cfg.stride, cfg.pad, true, rng)
		x := tensor.Randn(rng, 1, 2, 3, 8, 8)
		got := conv.Forward(x, false)
		want := naiveConv2D(x, conv.W.Value, conv.B.Value.Data, 4, cfg.k, cfg.stride, cfg.pad)
		if !got.Equal(want, 1e-10) {
			t.Errorf("k=%d s=%d p=%d: im2col conv disagrees with naive", cfg.k, cfg.stride, cfg.pad)
		}
	}
}

func TestConv2DGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	conv := NewConv2D("c", 2, 3, 3, 1, 1, true, rng)
	x := tensor.Randn(rng, 1, 2, 2, 5, 5)
	gradCheckLayer(t, conv, x, rng)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	conv := NewConv2D("c", 2, 2, 3, 2, 1, false, rng)
	x := tensor.Randn(rng, 1, 2, 2, 6, 6)
	gradCheckLayer(t, conv, x, rng)
}

func TestBatchNormForwardNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2d("bn", 3)
	x := tensor.Randn(rng, 2, 4, 3, 5, 5)
	y := bn.Forward(x, true)
	// Per-channel mean ≈ 0, var ≈ 1 after normalization with γ=1, β=0.
	n, c, h, w := 4, 3, 5, 5
	spatial := h * w
	for ch := 0; ch < c; ch++ {
		var mean float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				mean += y.Data[base+s]
			}
		}
		mean /= float64(n * spatial)
		if math.Abs(mean) > 1e-10 {
			t.Errorf("channel %d mean = %v, want 0", ch, mean)
		}
		var variance float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				d := y.Data[base+s] - mean
				variance += d * d
			}
		}
		variance /= float64(n * spatial)
		if math.Abs(variance-1) > 1e-3 {
			t.Errorf("channel %d var = %v, want 1", ch, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2d("bn", 2)
	x := tensor.Randn(rng, 1, 8, 2, 4, 4)
	// Train several batches so the running stats move off their init.
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	y1 := bn.Forward(x, false)
	y2 := bn.Forward(x, false)
	if !y1.Equal(y2, 0) {
		t.Error("eval mode should be deterministic")
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bn := NewBatchNorm2d("bn", 2)
	x := tensor.Randn(rng, 1, 3, 2, 3, 3)
	gradCheckLayer(t, bn, x, rng)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float64{-1, 2, -3, 4}, 1, 4)
	y := r.Forward(x, true)
	want := []float64{0, 2, 0, 4}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward = %v", y.Data)
		}
	}
	g := r.Backward(tensor.FromSlice([]float64{10, 10, 10, 10}, 1, 4))
	wantG := []float64{0, 10, 0, 10}
	for i := range wantG {
		if g.Data[i] != wantG[i] {
			t.Fatalf("ReLU backward = %v", g.Data)
		}
	}
}

func TestMaxPoolForward(t *testing.T) {
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	mp := NewMaxPool2d("mp", 2, 2)
	y := mp.Forward(x, true)
	want := []float64{5, 7, 13, 15}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("MaxPool = %v, want %v", y.Data, want)
		}
	}
}

func TestMaxPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mp := NewMaxPool2d("mp", 2, 2)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	// Max-pool is piecewise linear; numeric grad check valid away from ties.
	gradCheckLayer(t, mp, x, rng)
}

func TestGlobalAvgPoolGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	gp := NewGlobalAvgPool("gap")
	x := tensor.Randn(rng, 1, 2, 3, 4, 4)
	gradCheckLayer(t, gp, x, rng)
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := NewFlatten("flat")
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Rows() != 2 || y.Cols() != 60 {
		t.Fatalf("Flatten shape = %v", y.Shape)
	}
	back := f.Backward(y)
	if !back.SameShape(x) {
		t.Fatalf("Flatten backward shape = %v", back.Shape)
	}
}

func TestSequentialGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	seq := NewSequential("net",
		NewLinear("fc1", 6, 8, true, rng),
		NewReLU("r1"),
		NewLinear("fc2", 8, 4, true, rng),
	)
	x := tensor.Randn(rng, 1, 3, 6)
	gradCheckLayer(t, seq, x, rng)
}

func TestResidualIdentityGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 1, 1, false, rng),
		NewReLU("r"),
		NewConv2D("c2", 2, 2, 3, 1, 1, false, rng),
	)
	res := NewResidual("res", body, nil)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	gradCheckLayer(t, res, x, rng)
}

func TestResidualProjectionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	body := NewSequential("body",
		NewConv2D("c1", 2, 4, 3, 2, 1, false, rng),
	)
	short := NewConv2D("sc", 2, 4, 1, 2, 0, false, rng)
	res := NewResidual("res", body, short)
	x := tensor.Randn(rng, 1, 2, 2, 4, 4)
	gradCheckLayer(t, res, x, rng)
}

func TestResidualShapeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	body := NewConv2D("c", 2, 4, 3, 1, 1, false, rng) // channel change, no shortcut
	res := NewResidual("res", body, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	res.Forward(tensor.Randn(rng, 1, 1, 2, 4, 4), true)
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over K classes: loss = log K regardless of label.
	logits := tensor.New(2, 4)
	ce := CrossEntropy{}
	loss, _ := ce.Loss(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("uniform CE loss = %v, want ln 4 = %v", loss, math.Log(4))
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	logits := tensor.Randn(rng, 1, 3, 5)
	labels := []int{1, 4, 0}
	for _, smooth := range []float64{0, 0.1} {
		ce := CrossEntropy{Smoothing: smooth}
		_, grad := ce.Loss(logits, labels)
		f := func() float64 {
			l, _ := ce.Loss(logits, labels)
			return l
		}
		num := numericGrad(f, logits, 1e-6)
		checkGrad(t, "crossentropy", grad, num, 1e-5)
	}
}

func TestCrossEntropyGradSumsToZeroPerRow(t *testing.T) {
	// Softmax gradient rows sum to zero (probabilities sum to one on both
	// sides); label smoothing preserves this.
	rng := rand.New(rand.NewSource(18))
	logits := tensor.Randn(rng, 2, 4, 6)
	labels := []int{0, 1, 2, 3}
	ce := CrossEntropy{Smoothing: 0.1}
	_, grad := ce.Loss(logits, labels)
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 6; j++ {
			s += grad.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("row %d grad sum = %v, want 0", i, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0.9, 0.1,
		0.2, 0.8,
		0.6, 0.4,
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestLinearCaptureShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	l := NewLinear("fc", 5, 3, true, rng)
	l.SetCapture(true)
	x := tensor.Randn(rng, 1, 7, 5)
	out := l.Forward(x, true)
	l.Backward(tensor.Randn(rng, 1, out.Shape...))
	act := l.CapturedActivation()
	g := l.CapturedOutputGrad()
	if act.Rows() != 7 || act.Cols() != 5 {
		t.Errorf("captured activation shape = %v", act.Shape)
	}
	if g.Rows() != 7 || g.Cols() != 3 {
		t.Errorf("captured grad shape = %v", g.Shape)
	}
	if l.BatchSize() != 7 || l.SpatialSize() != 1 {
		t.Errorf("batch=%d spatial=%d", l.BatchSize(), l.SpatialSize())
	}
}

func TestConvCaptureShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := NewConv2D("c", 3, 6, 3, 1, 1, true, rng)
	c.SetCapture(true)
	x := tensor.Randn(rng, 1, 2, 3, 8, 8)
	out := c.Forward(x, true)
	c.Backward(tensor.Randn(rng, 1, out.Shape...))
	act := c.CapturedActivation()
	g := c.CapturedOutputGrad()
	if act.Rows() != 2*8*8 || act.Cols() != 3*3*3 {
		t.Errorf("captured activation shape = %v", act.Shape)
	}
	if g.Rows() != 2*8*8 || g.Cols() != 6 {
		t.Errorf("captured grad shape = %v", g.Shape)
	}
	if c.SpatialSize() != 64 {
		t.Errorf("spatial = %d, want 64", c.SpatialSize())
	}
}

func TestCaptureDisabledReturnsNil(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	l := NewLinear("fc", 3, 2, true, rng)
	x := tensor.Randn(rng, 1, 2, 3)
	out := l.Forward(x, true)
	l.Backward(tensor.Randn(rng, 1, out.Shape...))
	if l.CapturedActivation() != nil || l.CapturedOutputGrad() != nil {
		t.Error("capture off should yield nil captures")
	}
}

func TestCombinedGradRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, layer := range []KFACCapturable{
		NewLinear("fc", 4, 3, true, rng),
		NewLinear("fcnb", 4, 3, false, rng),
		NewConv2D("cv", 2, 3, 3, 1, 1, true, rng),
	} {
		// Fill grads with recognizable values.
		for _, p := range layer.Params() {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = float64(i + 1)
			}
		}
		g := layer.CombinedGrad()
		wantCols := layer.InDim()
		if layer.HasBias() {
			wantCols++
		}
		if g.Rows() != layer.OutDim() || g.Cols() != wantCols {
			t.Fatalf("%s: combined grad shape %v", layer.Name(), g.Shape)
		}
		g.Scale(2)
		layer.SetCombinedGrad(g)
		g2 := layer.CombinedGrad()
		if !g2.Equal(g, 0) {
			t.Errorf("%s: SetCombinedGrad/CombinedGrad round trip failed", layer.Name())
		}
	}
}

func TestCapturableLayersWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	body := NewSequential("body",
		NewConv2D("c1", 2, 2, 3, 1, 1, false, rng),
		NewBatchNorm2d("bn", 2),
	)
	res := NewResidual("res", body, NewConv2D("sc", 2, 2, 1, 1, 0, false, rng))
	net := NewSequential("net",
		NewConv2D("stem", 3, 2, 3, 1, 1, false, rng),
		res,
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 2, 10, true, rng),
	)
	caps := CapturableLayers(net)
	if len(caps) != 4 {
		names := make([]string, len(caps))
		for i, c := range caps {
			names[i] = c.Name()
		}
		t.Fatalf("CapturableLayers = %v, want 4 layers", names)
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	l := NewLinear("fc", 10, 5, true, rng)
	if got := ParamCount(l); got != 55 {
		t.Errorf("ParamCount = %d, want 55", got)
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	l := NewLinear("fc", 3, 3, true, rng)
	l.W.Grad.Fill(5)
	ZeroGrads(l)
	if l.W.Grad.Norm2() != 0 {
		t.Error("ZeroGrads did not clear gradient")
	}
}
