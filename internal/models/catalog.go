// Package models provides (a) exact layer-shape catalogs of the ResNet
// family the paper evaluates — ResNet-32 on CIFAR geometry and
// ResNet-34/50/101/152 on ImageNet geometry — and (b) small trainable
// ResNets built from internal/nn used by the correctness experiments.
//
// The catalogs matter because the paper's scaling behaviour (Tables V–VI,
// Figures 7–10) is driven by the true distribution of Kronecker-factor
// dimensions across layers: eigendecomposition cost is cubic in factor size,
// so a handful of 2048–4608-dimensional factors dominate, and round-robin
// placement leaves workers imbalanced exactly as §VI-C4 reports.
package models

import (
	"fmt"

	"repro/internal/kfac"
)

// LayerSpec describes one K-FAC-relevant layer of a reference architecture.
type LayerSpec struct {
	Name string
	// Kind is "conv" or "linear".
	Kind string
	// ADim is the activation-factor dimension (C·kh·kw for conv, in for
	// linear), excluding the bias column.
	ADim int
	// GDim is the gradient-factor dimension (output channels/features).
	GDim int
	// Bias reports whether the layer has a bias (adds 1 to the A factor).
	Bias bool
	// Params is the trainable parameter count (weights + bias).
	Params int
	// SpatialOut is outH·outW at the reference input resolution; linear
	// layers have SpatialOut 1.
	SpatialOut int
}

// FactorADim returns the A factor's matrix dimension including bias.
func (l LayerSpec) FactorADim() int {
	if l.Bias {
		return l.ADim + 1
	}
	return l.ADim
}

// Catalog is an ordered list of the K-FAC layers of one model.
type Catalog struct {
	Name   string
	Layers []LayerSpec
}

// TotalParams sums parameter counts over K-FAC layers.
func (c *Catalog) TotalParams() int {
	n := 0
	for _, l := range c.Layers {
		n += l.Params
	}
	return n
}

// FactorRefs converts the catalog into the factor list used by the
// placement code, in the same (A then G, layer-major) order the live
// preconditioner uses.
func (c *Catalog) FactorRefs() []kfac.FactorRef {
	refs := make([]kfac.FactorRef, 0, 2*len(c.Layers))
	for i, l := range c.Layers {
		refs = append(refs, kfac.FactorRef{Layer: i, IsG: false, Dim: l.FactorADim()})
		refs = append(refs, kfac.FactorRef{Layer: i, IsG: true, Dim: l.GDim})
	}
	return refs
}

// LayerParams maps layer index to parameter count, for ParamsPerWorker.
func (c *Catalog) LayerParams() map[int]int {
	m := make(map[int]int, len(c.Layers))
	for i, l := range c.Layers {
		m[i] = l.Params
	}
	return m
}

// conv appends an ImageNet/CIFAR conv spec (bias-free, BN follows).
func conv(name string, inC, outC, k, spatialOut int) LayerSpec {
	return LayerSpec{
		Name: name, Kind: "conv",
		ADim: inC * k * k, GDim: outC,
		Params:     outC * inC * k * k,
		SpatialOut: spatialOut,
	}
}

// fc appends a biased linear spec.
func fc(name string, in, out int) LayerSpec {
	return LayerSpec{
		Name: name, Kind: "linear",
		ADim: in, GDim: out, Bias: true,
		Params: in*out + out, SpatialOut: 1,
	}
}

// bottleneckCounts are the per-stage block counts of the ImageNet ResNets.
var bottleneckCounts = map[string][4]int{
	"resnet50":  {3, 4, 6, 3},
	"resnet101": {3, 4, 23, 3},
	"resnet152": {3, 8, 36, 3},
}

// imagenetBottleneck builds the catalog of a bottleneck-block ResNet at
// 224×224 input resolution.
func imagenetBottleneck(name string) *Catalog {
	counts, ok := bottleneckCounts[name]
	if !ok {
		panic(fmt.Sprintf("models: unknown bottleneck resnet %q", name))
	}
	c := &Catalog{Name: name}
	// Stem: 7×7/2 conv 3→64 (224→112).
	c.Layers = append(c.Layers, conv("conv1", 3, 64, 7, 112*112))
	// After 3×3/2 max pool: 56×56.
	spatial := [4]int{56 * 56, 28 * 28, 14 * 14, 7 * 7}
	width := [4]int{64, 128, 256, 512}
	inC := 64
	for stage := 0; stage < 4; stage++ {
		w := width[stage]
		outC := 4 * w
		sp := spatial[stage]
		for block := 0; block < counts[stage]; block++ {
			p := fmt.Sprintf("layer%d.%d", stage+1, block)
			c.Layers = append(c.Layers,
				conv(p+".conv1", inC, w, 1, sp),
				conv(p+".conv2", w, w, 3, sp),
				conv(p+".conv3", w, outC, 1, sp),
			)
			if block == 0 {
				// Projection shortcut at each stage entry.
				c.Layers = append(c.Layers, conv(p+".downsample", inC, outC, 1, sp))
			}
			inC = outC
		}
	}
	c.Layers = append(c.Layers, fc("fc", 2048, 1000))
	return c
}

// imagenetBasic builds a basic-block ImageNet ResNet (ResNet-34).
func imagenetBasic(name string, counts [4]int) *Catalog {
	c := &Catalog{Name: name}
	c.Layers = append(c.Layers, conv("conv1", 3, 64, 7, 112*112))
	spatial := [4]int{56 * 56, 28 * 28, 14 * 14, 7 * 7}
	width := [4]int{64, 128, 256, 512}
	inC := 64
	for stage := 0; stage < 4; stage++ {
		w := width[stage]
		sp := spatial[stage]
		for block := 0; block < counts[stage]; block++ {
			p := fmt.Sprintf("layer%d.%d", stage+1, block)
			c.Layers = append(c.Layers,
				conv(p+".conv1", inC, w, 3, sp),
				conv(p+".conv2", w, w, 3, sp),
			)
			if block == 0 && inC != w {
				c.Layers = append(c.Layers, conv(p+".downsample", inC, w, 1, sp))
			}
			inC = w
		}
	}
	c.Layers = append(c.Layers, fc("fc", 512, 1000))
	return c
}

// cifarBasic builds the CIFAR ResNet family of He et al. (6n+2 layers):
// three stages of n basic blocks at widths {16, 32, 64} on 32×32 inputs.
// ResNet-32 is n = 5.
func cifarBasic(name string, n, classes int) *Catalog {
	c := &Catalog{Name: name}
	c.Layers = append(c.Layers, conv("conv1", 3, 16, 3, 32*32))
	spatial := [3]int{32 * 32, 16 * 16, 8 * 8}
	width := [3]int{16, 32, 64}
	inC := 16
	for stage := 0; stage < 3; stage++ {
		w := width[stage]
		sp := spatial[stage]
		for block := 0; block < n; block++ {
			p := fmt.Sprintf("layer%d.%d", stage+1, block)
			c.Layers = append(c.Layers,
				conv(p+".conv1", inC, w, 3, sp),
				conv(p+".conv2", w, w, 3, sp),
			)
			if block == 0 && inC != w {
				c.Layers = append(c.Layers, conv(p+".downsample", inC, w, 1, sp))
			}
			inC = w
		}
	}
	c.Layers = append(c.Layers, fc("fc", 64, classes))
	return c
}

// ResNet50Catalog returns the ResNet-50 layer shapes at 224×224.
func ResNet50Catalog() *Catalog { return imagenetBottleneck("resnet50") }

// ResNet101Catalog returns the ResNet-101 layer shapes at 224×224.
func ResNet101Catalog() *Catalog { return imagenetBottleneck("resnet101") }

// ResNet152Catalog returns the ResNet-152 layer shapes at 224×224.
func ResNet152Catalog() *Catalog { return imagenetBottleneck("resnet152") }

// ResNet34Catalog returns the ResNet-34 layer shapes at 224×224.
func ResNet34Catalog() *Catalog { return imagenetBasic("resnet34", [4]int{3, 4, 6, 3}) }

// ResNet32Catalog returns the CIFAR ResNet-32 layer shapes at 32×32.
func ResNet32Catalog() *Catalog { return cifarBasic("resnet32", 5, 10) }

// CatalogByName resolves a model name to its catalog.
func CatalogByName(name string) (*Catalog, error) {
	switch name {
	case "resnet32":
		return ResNet32Catalog(), nil
	case "resnet34":
		return ResNet34Catalog(), nil
	case "resnet50":
		return ResNet50Catalog(), nil
	case "resnet101":
		return ResNet101Catalog(), nil
	case "resnet152":
		return ResNet152Catalog(), nil
	}
	return nil, fmt.Errorf("models: unknown model %q", name)
}
