package models

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
)

// BuildCIFARResNet constructs a trainable CIFAR-style ResNet (the 6n+2
// family): a 3×3 stem at `width` channels, three stages of n basic residual
// blocks at widths {width, 2·width, 4·width} with stride-2 stage
// transitions, global average pooling and a linear classifier.
//
// The paper's correctness runs use ResNet-32 (n=5, width=16). Pure-Go
// training at that size is possible but slow, so the experiment harness
// defaults to n=1, width=8 — a faithful miniature with the same topology;
// pass n=5, width=16 to build the paper-exact model.
func BuildCIFARResNet(n, width, channels, classes int, rng *rand.Rand) *nn.Sequential {
	if n < 1 || width < 1 {
		panic(fmt.Sprintf("models: invalid resnet config n=%d width=%d", n, width))
	}
	net := nn.NewSequential(fmt.Sprintf("cifar-resnet-%d", 6*n+2),
		nn.NewConv2D("conv1", channels, width, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d("bn1", width),
		nn.NewReLU("relu1"),
	)
	inC := width
	for stage := 0; stage < 3; stage++ {
		w := width << stage
		for block := 0; block < n; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, block)
			body := nn.NewSequential(name+".body",
				nn.NewConv2D(name+".conv1", inC, w, 3, stride, 1, false, rng),
				nn.NewBatchNorm2d(name+".bn1", w),
				nn.NewReLU(name+".relu"),
				nn.NewConv2D(name+".conv2", w, w, 3, 1, 1, false, rng),
				nn.NewBatchNorm2d(name+".bn2", w),
			)
			var shortcut nn.Layer
			if stride != 1 || inC != w {
				shortcut = nn.NewSequential(name+".down",
					nn.NewConv2D(name+".downconv", inC, w, 1, stride, 0, false, rng),
					nn.NewBatchNorm2d(name+".downbn", w),
				)
			}
			net.Add(nn.NewResidual(name, body, shortcut))
			inC = w
		}
	}
	net.Add(nn.NewGlobalAvgPool("gap"))
	net.Add(nn.NewLinear("fc", inC, classes, true, rng))
	return net
}

// BuildMLP constructs a small fully-connected classifier; used by the
// quickstart example and fast tests.
func BuildMLP(name string, dims []int, rng *rand.Rand) *nn.Sequential {
	if len(dims) < 2 {
		panic("models: MLP needs at least input and output dims")
	}
	net := nn.NewSequential(name)
	for i := 0; i < len(dims)-1; i++ {
		net.Add(nn.NewLinear(fmt.Sprintf("%s.fc%d", name, i), dims[i], dims[i+1], true, rng))
		if i < len(dims)-2 {
			net.Add(nn.NewReLU(fmt.Sprintf("%s.relu%d", name, i)))
		}
	}
	return net
}

// BuildBottleneckResNet constructs a trainable bottleneck-block ResNet —
// the block design of ResNet-50/101/152 — at configurable width and depth:
// each block is 1×1 reduce → 3×3 → 1×1 expand (×4) with projection
// shortcuts at stage entries. blocks lists the per-stage block counts
// (e.g. {3,4,6,3} for the ResNet-50 topology); width is the first stage's
// bottleneck width. Miniature configurations ({1,1} / width 4) train in
// seconds in pure Go while preserving the factor-size heterogeneity that
// drives K-FAC load imbalance.
func BuildBottleneckResNet(blocks []int, width, channels, classes int, rng *rand.Rand) *nn.Sequential {
	if len(blocks) == 0 || width < 1 {
		panic("models: invalid bottleneck config")
	}
	net := nn.NewSequential("bottleneck-resnet",
		nn.NewConv2D("conv1", channels, width, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d("bn1", width),
		nn.NewReLU("relu1"),
	)
	inC := width
	for stage, n := range blocks {
		w := width << stage
		outC := 4 * w
		for block := 0; block < n; block++ {
			stride := 1
			if stage > 0 && block == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", stage+1, block)
			body := nn.NewSequential(name+".body",
				nn.NewConv2D(name+".conv1", inC, w, 1, 1, 0, false, rng),
				nn.NewBatchNorm2d(name+".bn1", w),
				nn.NewReLU(name+".relu1"),
				nn.NewConv2D(name+".conv2", w, w, 3, stride, 1, false, rng),
				nn.NewBatchNorm2d(name+".bn2", w),
				nn.NewReLU(name+".relu2"),
				nn.NewConv2D(name+".conv3", w, outC, 1, 1, 0, false, rng),
				nn.NewBatchNorm2d(name+".bn3", outC),
			)
			var shortcut nn.Layer
			if stride != 1 || inC != outC {
				shortcut = nn.NewSequential(name+".down",
					nn.NewConv2D(name+".downconv", inC, outC, 1, stride, 0, false, rng),
					nn.NewBatchNorm2d(name+".downbn", outC),
				)
			}
			net.Add(nn.NewResidual(name, body, shortcut))
			inC = outC
		}
	}
	net.Add(nn.NewGlobalAvgPool("gap"))
	net.Add(nn.NewLinear("fc", inC, classes, true, rng))
	return net
}

// BuildSmallCNN constructs the compact conv net used by fast experiments:
// two conv/BN/ReLU stages with pooling, then GAP and a classifier. It is
// K-FAC-preconditionable end to end (convs and the linear head).
func BuildSmallCNN(channels, classes, width int, rng *rand.Rand) *nn.Sequential {
	return nn.NewSequential("smallcnn",
		nn.NewConv2D("conv1", channels, width, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d("bn1", width),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2d("pool1", 2, 2),
		nn.NewConv2D("conv2", width, 2*width, 3, 1, 1, false, rng),
		nn.NewBatchNorm2d("bn2", 2*width),
		nn.NewReLU("relu2"),
		nn.NewGlobalAvgPool("gap"),
		nn.NewLinear("fc", 2*width, classes, true, rng),
	)
}
