package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestResNet50CatalogParamCount(t *testing.T) {
	// Published ResNet-50 has ~25.56 M parameters; our catalog excludes
	// BatchNorm affine parameters (~53 k), so expect ≈ 25.50 M.
	c := ResNet50Catalog()
	total := c.TotalParams()
	if total < 25_400_000 || total > 25_600_000 {
		t.Errorf("ResNet-50 params = %d, want ≈ 25.5M", total)
	}
}

func TestResNet101CatalogParamCount(t *testing.T) {
	// Published: ~44.55 M including BN.
	total := ResNet101Catalog().TotalParams()
	if total < 44_300_000 || total > 44_700_000 {
		t.Errorf("ResNet-101 params = %d, want ≈ 44.5M", total)
	}
}

func TestResNet152CatalogParamCount(t *testing.T) {
	// Published: ~60.19 M including BN.
	total := ResNet152Catalog().TotalParams()
	if total < 59_900_000 || total > 60_400_000 {
		t.Errorf("ResNet-152 params = %d, want ≈ 60.2M", total)
	}
}

func TestResNet34CatalogParamCount(t *testing.T) {
	// Published: ~21.80 M including BN.
	total := ResNet34Catalog().TotalParams()
	if total < 21_600_000 || total > 21_900_000 {
		t.Errorf("ResNet-34 params = %d, want ≈ 21.8M", total)
	}
}

func TestResNet32CatalogStructure(t *testing.T) {
	c := ResNet32Catalog()
	// 6n+2 with n=5: 31 convs + 1 fc = 32 weighted layers, plus two
	// downsample projections (stage 2 and 3 entries).
	convs, linears, downs := 0, 0, 0
	for _, l := range c.Layers {
		switch l.Kind {
		case "conv":
			convs++
		case "linear":
			linears++
		}
		if l.Name == "layer2.0.downsample" || l.Name == "layer3.0.downsample" {
			downs++
		}
	}
	if linears != 1 {
		t.Errorf("linears = %d, want 1", linears)
	}
	if convs != 31+2 {
		t.Errorf("convs = %d, want 33 (31 + 2 downsample)", convs)
	}
	if downs != 2 {
		t.Errorf("downsample layers = %d, want 2", downs)
	}
	// ~0.46 M params for CIFAR ResNet-32.
	total := c.TotalParams()
	if total < 400_000 || total > 520_000 {
		t.Errorf("ResNet-32 params = %d, want ≈ 0.46M", total)
	}
}

func TestCatalogLayerCounts(t *testing.T) {
	// Weighted-layer counts of the bottleneck models: the "50/101/152"
	// names count convs + fc (excluding downsample projections):
	// 1 stem + 3·Σblocks + 1 fc.
	cases := []struct {
		cat    *Catalog
		blocks int // total bottleneck blocks
	}{
		{ResNet50Catalog(), 16},
		{ResNet101Catalog(), 33},
		{ResNet152Catalog(), 50},
	}
	for _, cse := range cases {
		named := 1 + 3*cse.blocks + 1
		// Catalog also includes 4 downsample convs (one per stage).
		want := named + 4
		if got := len(cse.cat.Layers); got != want {
			t.Errorf("%s: %d layers, want %d", cse.cat.Name, got, want)
		}
	}
}

func TestCatalogMaxFactorDims(t *testing.T) {
	// The largest A factor in bottleneck ResNets is the 3×3 conv at width
	// 512: 512·9 = 4608. The largest G factor is 2048.
	c := ResNet152Catalog()
	maxA, maxG := 0, 0
	for _, l := range c.Layers {
		if l.FactorADim() > maxA {
			maxA = l.FactorADim()
		}
		if l.GDim > maxG {
			maxG = l.GDim
		}
	}
	if maxA != 4608 {
		t.Errorf("max A dim = %d, want 4608", maxA)
	}
	if maxG != 2048 {
		t.Errorf("max G dim = %d, want 2048", maxG)
	}
}

func TestFactorRefsOrderAndCount(t *testing.T) {
	c := ResNet32Catalog()
	refs := c.FactorRefs()
	if len(refs) != 2*len(c.Layers) {
		t.Fatalf("refs = %d, want %d", len(refs), 2*len(c.Layers))
	}
	for i, l := range c.Layers {
		if refs[2*i].IsG || !refs[2*i+1].IsG {
			t.Fatal("refs must alternate A,G")
		}
		if refs[2*i].Dim != l.FactorADim() || refs[2*i+1].Dim != l.GDim {
			t.Fatalf("layer %d ref dims mismatch", i)
		}
	}
}

func TestCatalogByName(t *testing.T) {
	for _, name := range []string{"resnet32", "resnet34", "resnet50", "resnet101", "resnet152"} {
		c, err := CatalogByName(name)
		if err != nil || c.Name != name {
			t.Errorf("CatalogByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CatalogByName("vgg16"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestLayerParamsMap(t *testing.T) {
	c := ResNet32Catalog()
	m := c.LayerParams()
	total := 0
	for _, v := range m {
		total += v
	}
	if total != c.TotalParams() {
		t.Error("LayerParams does not sum to TotalParams")
	}
}

func TestBuildCIFARResNetForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := BuildCIFARResNet(1, 4, 3, 10, rng)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	out := net.Forward(x, true)
	if out.Rows() != 2 || out.Cols() != 10 {
		t.Fatalf("output shape = %v", out.Shape)
	}
	ce := nn.CrossEntropy{}
	loss, grad := ce.Loss(out, []int{3, 7})
	if loss <= 0 {
		t.Errorf("loss = %v", loss)
	}
	nn.ZeroGrads(net)
	net.Backward(grad)
	// Every trainable parameter should receive some gradient signal.
	zero := 0
	for _, p := range net.Params() {
		if p.Grad.Norm2() == 0 {
			zero++
		}
	}
	if zero > 0 {
		t.Errorf("%d parameters received zero gradient", zero)
	}
}

func TestBuildCIFARResNetCapturableLayerCount(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := BuildCIFARResNet(1, 4, 3, 10, rng)
	caps := nn.CapturableLayers(net)
	// n=1: stem + 3 stages × (2 convs) + 2 downsample convs + fc = 1+6+2+1.
	if len(caps) != 10 {
		t.Errorf("capturable layers = %d, want 10", len(caps))
	}
}

func TestBuildCIFARResNetStridesReduceSpatial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := BuildCIFARResNet(1, 4, 3, 5, rng)
	x := tensor.Randn(rng, 1, 1, 3, 32, 32)
	out := net.Forward(x, false)
	if out.Rows() != 1 || out.Cols() != 5 {
		t.Fatalf("32x32 forward output shape = %v", out.Shape)
	}
}

func TestBuildMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := BuildMLP("mlp", []int{8, 16, 4}, rng)
	x := tensor.Randn(rng, 1, 3, 8)
	out := net.Forward(x, true)
	if out.Rows() != 3 || out.Cols() != 4 {
		t.Fatalf("MLP output shape = %v", out.Shape)
	}
	if len(nn.CapturableLayers(net)) != 2 {
		t.Error("MLP should have 2 capturable layers")
	}
}

func TestBuildSmallCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := BuildSmallCNN(3, 10, 8, rng)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	out := net.Forward(x, true)
	if out.Rows() != 2 || out.Cols() != 10 {
		t.Fatalf("SmallCNN output shape = %v", out.Shape)
	}
}

func TestBuildInvalidConfigPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildCIFARResNet(0, 4, 3, 10, rng)
}
