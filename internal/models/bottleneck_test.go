package models

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestBuildBottleneckResNetForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := BuildBottleneckResNet([]int{1, 1}, 4, 3, 10, rng)
	x := tensor.Randn(rng, 1, 2, 3, 16, 16)
	out := net.Forward(x, true)
	if out.Rows() != 2 || out.Cols() != 10 {
		t.Fatalf("output shape = %v", out.Shape)
	}
	ce := nn.CrossEntropy{}
	_, grad := ce.Loss(out, []int{1, 2})
	nn.ZeroGrads(net)
	net.Backward(grad)
	for _, p := range net.Params() {
		if p.Grad.HasNaN() {
			t.Fatalf("NaN gradient in %s", p.Name)
		}
	}
}

func TestBuildBottleneckResNetCapturableLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := BuildBottleneckResNet([]int{1, 1}, 4, 3, 10, rng)
	caps := nn.CapturableLayers(net)
	// stem + 2 blocks × 3 convs + 2 projections + fc = 1+6+2+1 = 10.
	if len(caps) != 10 {
		t.Errorf("capturable layers = %d, want 10", len(caps))
	}
	// Factor-size heterogeneity: the G dims must differ across layers (the
	// property that drives round-robin imbalance).
	dims := map[int]bool{}
	for _, c := range caps {
		dims[c.OutDim()] = true
	}
	if len(dims) < 3 {
		t.Errorf("only %d distinct output dims; expected heterogeneity", len(dims))
	}
}

func TestBuildBottleneckResNetStageWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := BuildBottleneckResNet([]int{1, 1, 1}, 4, 3, 5, rng)
	// Final linear input = 4·width·2^(stages-1) = 4·4·4 = 64.
	caps := nn.CapturableLayers(net)
	fc := caps[len(caps)-1]
	if fc.InDim() != 64 {
		t.Errorf("fc input = %d, want 64", fc.InDim())
	}
}

func TestBuildBottleneckResNetInvalidPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildBottleneckResNet(nil, 4, 3, 10, rng)
}
