// Package metrics provides the evaluation utilities the experiments use on
// top of raw logits: top-k accuracy (the paper reports Top-1 on ImageNet;
// Top-5 is standard alongside), confusion matrices, and running meters for
// loss/throughput aggregation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/tensor"
)

// TopKAccuracy returns the fraction of rows whose true label appears among
// the k largest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	n := logits.Rows()
	if n == 0 || k < 1 {
		return 0
	}
	classes := logits.Cols()
	if k > classes {
		k = classes
	}
	correct := 0
	idx := make([]int, classes)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		for j := 0; j < k; j++ {
			if idx[j] == labels[i] {
				correct++
				break
			}
		}
	}
	return float64(correct) / float64(n)
}

// ConfusionMatrix counts (true, predicted) pairs over batches of logits.
type ConfusionMatrix struct {
	Classes int
	Counts  []int // Counts[true*Classes+pred]
}

// NewConfusionMatrix allocates a k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	return &ConfusionMatrix{Classes: k, Counts: make([]int, k*k)}
}

// Update adds a batch of predictions.
func (c *ConfusionMatrix) Update(logits *tensor.Tensor, labels []int) {
	for i := 0; i < logits.Rows(); i++ {
		pred := logits.ArgMaxRow(i)
		c.Counts[labels[i]*c.Classes+pred]++
	}
}

// Total returns the number of recorded examples.
func (c *ConfusionMatrix) Total() int {
	t := 0
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// Accuracy returns trace/total.
func (c *ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < c.Classes; i++ {
		diag += c.Counts[i*c.Classes+i]
	}
	return float64(diag) / float64(t)
}

// PerClassRecall returns recall for each true class (NaN-free: classes with
// no examples report 0).
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.Classes)
	for i := 0; i < c.Classes; i++ {
		var row int
		for j := 0; j < c.Classes; j++ {
			row += c.Counts[i*c.Classes+j]
		}
		if row > 0 {
			out[i] = float64(c.Counts[i*c.Classes+i]) / float64(row)
		}
	}
	return out
}

// String renders a compact matrix for ≤ 16 classes, or a summary.
func (c *ConfusionMatrix) String() string {
	if c.Classes > 16 {
		return fmt.Sprintf("ConfusionMatrix{classes=%d, n=%d, acc=%.3f}",
			c.Classes, c.Total(), c.Accuracy())
	}
	var b strings.Builder
	for i := 0; i < c.Classes; i++ {
		for j := 0; j < c.Classes; j++ {
			fmt.Fprintf(&b, "%5d", c.Counts[i*c.Classes+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Meter accumulates a scalar series: mean, min, max, last.
type Meter struct {
	n                      int
	sum, minV, maxV, lastV float64
}

// Add records one observation.
func (m *Meter) Add(v float64) {
	if m.n == 0 {
		m.minV, m.maxV = v, v
	}
	if v < m.minV {
		m.minV = v
	}
	if v > m.maxV {
		m.maxV = v
	}
	m.sum += v
	m.lastV = v
	m.n++
}

// Count returns the number of observations.
func (m *Meter) Count() int { return m.n }

// Mean returns the running mean (0 when empty).
func (m *Meter) Mean() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Min returns the minimum observation (0 when empty).
func (m *Meter) Min() float64 { return m.minV }

// Max returns the maximum observation (0 when empty).
func (m *Meter) Max() float64 { return m.maxV }

// Last returns the most recent observation (0 when empty).
func (m *Meter) Last() float64 { return m.lastV }

// Throughput measures items/second over wall-clock intervals.
type Throughput struct {
	items   float64
	elapsed time.Duration
}

// Record adds n items processed in d.
func (t *Throughput) Record(n int, d time.Duration) {
	t.items += float64(n)
	t.elapsed += d
}

// PerSecond returns the aggregate rate.
func (t *Throughput) PerSecond() float64 {
	if t.elapsed <= 0 {
		return 0
	}
	return t.items / t.elapsed.Seconds()
}

// MeanStd returns the mean and (population) standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
