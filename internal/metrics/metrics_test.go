package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestTopKAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0.5, 0.3, 0.2, // pred order: 0,1,2
		0.1, 0.2, 0.7, // pred order: 2,1,0
	}, 2, 3)
	labels := []int{1, 0}
	if got := TopKAccuracy(logits, labels, 1); got != 0 {
		t.Errorf("top-1 = %v, want 0", got)
	}
	if got := TopKAccuracy(logits, labels, 2); got != 0.5 {
		t.Errorf("top-2 = %v, want 0.5", got)
	}
	if got := TopKAccuracy(logits, labels, 3); got != 1 {
		t.Errorf("top-3 = %v, want 1", got)
	}
	// k beyond classes clamps.
	if got := TopKAccuracy(logits, labels, 99); got != 1 {
		t.Errorf("top-99 = %v, want 1", got)
	}
	if TopKAccuracy(tensor.New(0, 3), nil, 1) != 0 {
		t.Error("empty should be 0")
	}
	if TopKAccuracy(logits, labels, 0) != 0 {
		t.Error("k=0 should be 0")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(3)
	logits := tensor.FromSlice([]float64{
		1, 0, 0, // pred 0
		0, 1, 0, // pred 1
		0, 1, 0, // pred 1
		0, 0, 1, // pred 2
	}, 4, 3)
	cm.Update(logits, []int{0, 1, 2, 2})
	if cm.Total() != 4 {
		t.Errorf("Total = %d", cm.Total())
	}
	if got := cm.Accuracy(); got != 0.75 {
		t.Errorf("Accuracy = %v, want 0.75", got)
	}
	rec := cm.PerClassRecall()
	if rec[0] != 1 || rec[1] != 1 || rec[2] != 0.5 {
		t.Errorf("recall = %v", rec)
	}
	if cm.String() == "" {
		t.Error("empty String")
	}
	big := NewConfusionMatrix(20)
	if big.String() == "" || big.Accuracy() != 0 {
		t.Error("big matrix summary wrong")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	if m.Mean() != 0 || m.Count() != 0 {
		t.Error("empty meter should be zero")
	}
	for _, v := range []float64{2, 4, 6} {
		m.Add(v)
	}
	if m.Mean() != 4 || m.Min() != 2 || m.Max() != 6 || m.Last() != 6 || m.Count() != 3 {
		t.Errorf("meter = mean %v min %v max %v last %v", m.Mean(), m.Min(), m.Max(), m.Last())
	}
	m.Add(-10)
	if m.Min() != -10 {
		t.Error("min not updated")
	}
}

func TestThroughput(t *testing.T) {
	var tp Throughput
	if tp.PerSecond() != 0 {
		t.Error("empty throughput should be 0")
	}
	tp.Record(100, time.Second)
	tp.Record(100, time.Second)
	if got := tp.PerSecond(); math.Abs(got-100) > 1e-9 {
		t.Errorf("PerSecond = %v, want 100", got)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v; want 5, 2", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Error("empty MeanStd should be zeros")
	}
}
