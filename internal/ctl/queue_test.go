package ctl

import "testing"

func queuedJob(id, user string, world int) *job {
	return &job{id: id, state: Queued, spec: &JobSpec{User: user, World: world}}
}

// Fair-share: the user with the least running share goes first, submit
// order breaks ties, and jobs too big for the free pool are skipped
// without blocking smaller ones behind them.
func TestPickNextFairShare(t *testing.T) {
	a1 := queuedJob("j-1", "alice", 2)
	b1 := queuedJob("j-2", "bob", 2)
	a2 := queuedJob("j-3", "alice", 2)
	jobs := []*job{a1, b1, a2}

	// Nobody running: FIFO.
	if got := pickNext(jobs, 4, map[string]int{}); got != a1 {
		t.Errorf("empty usage picked %v, want j-1 (FIFO)", got.id)
	}
	// Alice already holds workers: bob's job jumps ahead of hers.
	if got := pickNext(jobs, 4, map[string]int{"alice": 2}); got != b1 {
		t.Errorf("with alice running, picked %v, want j-2", got.id)
	}
	// Equal usage: back to submit order.
	if got := pickNext(jobs, 4, map[string]int{"alice": 2, "bob": 2}); got != a1 {
		t.Errorf("equal usage picked %v, want j-1", got.id)
	}
}

func TestPickNextSkipsOversizedAndNonQueued(t *testing.T) {
	big := queuedJob("j-1", "alice", 8)
	small := queuedJob("j-2", "bob", 1)
	running := queuedJob("j-3", "carol", 1)
	running.state = Running

	// Only 2 free: the 8-worker job cannot fit, the 1-worker one runs.
	if got := pickNext([]*job{big, small, running}, 2, map[string]int{}); got != small {
		t.Errorf("picked %v, want j-2 (j-1 oversized, j-3 not queued)", got)
	}
	// Nothing fits.
	if got := pickNext([]*job{big}, 2, map[string]int{}); got != nil {
		t.Errorf("picked %v from an unschedulable queue, want nil", got.id)
	}
}

// The metrics ring drops oldest entries under pressure but keeps Seq
// monotonic so clients can detect the gap.
func TestMetricsBufferRingAndSince(t *testing.T) {
	b := newMetricsBuffer(4)
	for i := 1; i <= 6; i++ {
		b.append(StepMetric{Iteration: i})
	}
	if b.total() != 6 {
		t.Errorf("total = %d, want 6", b.total())
	}
	got := b.since(0)
	if len(got) != 4 || got[0].Seq != 3 || got[3].Seq != 6 {
		t.Fatalf("since(0) = %+v, want seqs 3..6", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Errorf("non-monotonic seqs: %+v", got)
		}
	}
	if tail := b.since(5); len(tail) != 1 || tail[0].Iteration != 6 {
		t.Errorf("since(5) = %+v, want just iteration 6", tail)
	}
	if none := b.since(6); len(none) != 0 {
		t.Errorf("since(6) = %+v, want empty", none)
	}
}
