package ctl

// pickNext implements fair-share scheduling over queued jobs: among the
// Queued jobs (in submit order) whose World quota fits the free workers,
// pick the one whose user currently holds the fewest running workers; ties
// break by submit order. Returns nil when nothing fits.
//
// jobs must be in submit order. usage maps user → workers currently
// reserved by that user's admitted/running jobs.
func pickNext(jobs []*job, free int, usage map[string]int) *job {
	var best *job
	bestUse := 0
	for _, j := range jobs {
		if j.state != Queued || j.spec.World > free {
			continue
		}
		use := usage[j.spec.User]
		if best == nil || use < bestUse {
			best, bestUse = j, use
		}
	}
	return best
}
