package ctl

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/comm"
)

// fastHeartbeat keeps elastic failure detection snappy under test.
var fastHeartbeat = comm.HeartbeatConfig{
	Interval: 3 * time.Millisecond,
	Timeout:  60 * time.Millisecond,
}

func testDaemon(t *testing.T, fleet Fleet) *Daemon {
	t.Helper()
	d, err := NewDaemon(Config{
		Fleet:      fleet,
		StoreDir:   t.TempDir(),
		ScratchDir: t.TempDir(),
		Heartbeat:  fastHeartbeat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// runnableSpec is a job small enough to train in tens of milliseconds.
func runnableSpec(name, user string, world, epochs int) *JobSpec {
	return &JobSpec{
		Name:  name,
		User:  user,
		Model: ModelSpec{Kind: "mlp", Dims: []int{16, 8, 4}, Classes: 4},
		Data: DataSpec{
			Train: 32, Test: 8, Classes: 4, Channels: 1, Size: 4, Seed: 11,
		},
		World: world, Epochs: epochs, BatchPerRank: 4, LR: 0.05, Seed: 5,
	}
}

func waitState(t *testing.T, d *Daemon, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := d.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() && !want.Terminal() {
			t.Fatalf("job %s settled in %v (err %q) while waiting for %v", id, v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return JobView{}
}

// Two jobs from different users share the fleet concurrently and both
// complete, with metrics streamed and checkpoints stored per job.
func TestDaemonRunsConcurrentJobs(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 4})
	va, err := d.Submit(runnableSpec("a", "alice", 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	vb, err := d.Submit(runnableSpec("b", "bob", 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{va.ID, vb.ID} {
		v, err := d.WaitSettled(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != Completed {
			t.Fatalf("job %s settled in %v (err %q), want completed", id, v.State, v.Error)
		}
		if v.Result == nil || v.Result.Epochs != 2 || v.Result.Iterations == 0 {
			t.Errorf("job %s result %+v, want 2 epochs and nonzero iterations", id, v.Result)
		}
		ms, err := d.Metrics(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != v.Result.Iterations {
			t.Errorf("job %s streamed %d metrics, want %d (one per step)", id, len(ms), v.Result.Iterations)
		}
		for _, m := range ms {
			if m.Loss <= 0 || m.StepNS <= 0 {
				t.Errorf("job %s metric %+v missing loss or duration", id, m)
			}
		}
		f, ref, err := d.Store().Latest(id)
		if err != nil || f == nil {
			t.Fatalf("job %s has no stored checkpoint: %v", id, err)
		}
		if f.Epoch != 2 || ref.Job != id {
			t.Errorf("job %s latest checkpoint epoch %d under %q, want 2 under the job id", id, f.Epoch, ref.Job)
		}
	}
}

// A job that can never fit is rejected synchronously with a descriptive
// error and recorded as Failed for audit.
func TestDaemonRejectsOversizedJob(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 2})
	v, err := d.Submit(runnableSpec("big", "alice", 8, 1))
	if err == nil {
		t.Fatal("oversized job admitted")
	}
	if !strings.Contains(err.Error(), "wants 8 workers") {
		t.Errorf("rejection %q does not explain the quota", err)
	}
	got, jerr := d.Job(v.ID)
	if jerr != nil {
		t.Fatal(jerr)
	}
	if got.State != Failed || got.Error == "" {
		t.Errorf("rejected job recorded as %v (err %q), want failed with cause", got.State, got.Error)
	}
}

// With the fleet full, later jobs queue; when workers free while alice
// still holds part of the fleet, bob (least share) goes first even though
// alice's second job was submitted earlier.
func TestDaemonFairShareOrdering(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 4})
	// alice occupies half the fleet for the whole test; a filler occupies
	// the other half while we queue the contenders.
	long, err := d.Submit(runnableSpec("a-long", "alice", 2, 200))
	if err != nil {
		t.Fatal(err)
	}
	filler, err := d.Submit(runnableSpec("filler", "carol", 2, 200))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, long.ID, Running)
	waitState(t, d, filler.ID, Running)
	a2, err := d.Submit(runnableSpec("a2", "alice", 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := d.Submit(runnableSpec("b1", "bob", 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if s := mustJob(t, d, a2.ID).State; s != Queued {
		t.Fatalf("a2 is %v with a full fleet, want queued", s)
	}
	// Free half the fleet: bob (zero running share) must be picked over
	// alice's a2 (alice still runs a-long) despite submitting later.
	if err := d.Cancel(filler.ID); err != nil {
		t.Fatal(err)
	}
	if v, err := d.WaitSettled(context.Background(), b1.ID); err != nil || v.State != Completed {
		t.Fatalf("b1 settled as %v (err %v), want completed", v.State, err)
	}
	a2done, err := d.WaitSettled(context.Background(), a2.ID)
	if err != nil || a2done.State != Completed {
		t.Fatalf("a2 settled as %v (err %v), want completed", a2done.State, err)
	}
	// bob's job must have STARTED before alice's second (fair share), not
	// merely finished first.
	if !mustJob(t, d, b1.ID).Started.Before(a2done.Started) {
		t.Error("alice's second job started before bob's first despite fair share")
	}
	if err := d.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
}

func mustJob(t *testing.T, d *Daemon, id string) JobView {
	t.Helper()
	v, err := d.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// A scripted worker kill mid-job recovers through RunElastic and the job
// still completes, spanning two generations.
func TestDaemonChaosKillRecovers(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 2})
	spec := runnableSpec("chaotic", "alice", 2, 3)
	spec.Chaos = &ChaosSpec{Seed: 9, KillRank: 1, KillAtEpoch: 1}
	v, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done, err := d.WaitSettled(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != Completed {
		t.Fatalf("chaos job settled in %v (err %q), want completed", done.State, done.Error)
	}
	if done.Result.Generations != 2 {
		t.Errorf("chaos job spanned %d generation(s), want 2 (kill + recovery)", done.Result.Generations)
	}
	if done.Result.Epochs != 3 {
		t.Errorf("chaos job completed %d epochs, want all 3", done.Result.Epochs)
	}
}

// Pause parks a running job with its checkpoint retained; Resume continues
// it to completion from that checkpoint rather than from scratch.
func TestDaemonPauseResume(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 2})
	v, err := d.Submit(runnableSpec("pausable", "alice", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, v.ID, Running)
	// Let it make durable progress (≥ 1 epoch checkpoint) before pausing.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if f, _, _ := d.Store().Latest(v.ID); f != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.Pause(v.ID); err != nil {
		t.Fatal(err)
	}
	paused, err := d.WaitSettled(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if paused.State != Paused {
		t.Fatalf("job settled in %v, want paused", paused.State)
	}
	f, _, err := d.Store().Latest(v.ID)
	if err != nil || f == nil {
		t.Fatalf("paused job lost its checkpoint: %v", err)
	}
	resumedFrom := f.Epoch

	if err := d.Resume(v.ID); err != nil {
		t.Fatal(err)
	}
	done, err := d.WaitSettled(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != Completed {
		t.Fatalf("resumed job settled in %v (err %q), want completed", done.State, done.Error)
	}
	if done.Result.Epochs != 40 {
		t.Errorf("resumed job completed %d epochs, want 40", done.Result.Epochs)
	}
	// The resumed attempt must have continued, not restarted: its history
	// covers fewer epochs than a from-scratch run would.
	if resumedFrom < 1 {
		t.Errorf("checkpoint at epoch %d, want ≥ 1", resumedFrom)
	}
}

// Cancel lands a running job in the terminal Cancelled state via the
// cooperative consensus stop, and terminal jobs reject further verbs.
func TestDaemonCancel(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 2})
	v, err := d.Submit(runnableSpec("doomed", "alice", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, v.ID, Running)
	if err := d.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	done, err := d.WaitSettled(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != Cancelled {
		t.Fatalf("job settled in %v, want cancelled", done.State)
	}
	if err := d.Resume(v.ID); err == nil {
		t.Error("Resume accepted a cancelled job")
	}
	if err := d.Pause(v.ID); err == nil {
		t.Error("Pause accepted a cancelled job")
	}
}

// Identical jobs produce bit-identical epoch checkpoints, which the
// content-addressed store shares: more refs than objects.
func TestDaemonCheckpointDedupAcrossJobs(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 4})
	v1, err := d.Submit(runnableSpec("twin-1", "alice", 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := d.Submit(runnableSpec("twin-2", "bob", 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{v1.ID, v2.ID} {
		if v, err := d.WaitSettled(context.Background(), id); err != nil || v.State != Completed {
			t.Fatalf("twin %s settled as %v (err %v)", id, v.State, err)
		}
	}
	st, err := d.Store().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2 || st.Refs != 2*st.Objects {
		t.Errorf("store stats %+v: identical twins should share every object (refs = 2×objects)", st)
	}
}

// Retention: with MaxPerJob 1, only each job's newest checkpoint survives.
func TestDaemonRetentionPrunes(t *testing.T) {
	d, err := NewDaemon(Config{
		Fleet:      Fleet{Workers: 2},
		StoreDir:   t.TempDir(),
		ScratchDir: t.TempDir(),
		Heartbeat:  fastHeartbeat,
		Retention:  ckptstore.Policy{MaxPerJob: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	v, err := d.Submit(runnableSpec("pruned", "alice", 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := d.WaitSettled(context.Background(), v.ID); err != nil || got.State != Completed {
		t.Fatalf("job settled as %v (err %v)", got.State, err)
	}
	refs, err := d.Store().Refs(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("%d refs survive MaxPerJob=1, want 1", len(refs))
	}
	f, err := d.Store().Get(refs[0].Sum)
	if err != nil {
		t.Fatal(err)
	}
	if f.Epoch != 3 {
		t.Errorf("surviving checkpoint is epoch %d, want the newest (3)", f.Epoch)
	}
}

// Drain refuses new work and pauses running jobs so a restarted daemon
// could resume them.
func TestDaemonDrainPausesRunning(t *testing.T) {
	d := testDaemon(t, Fleet{Workers: 2})
	v, err := d.Submit(runnableSpec("draining", "alice", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, d, v.ID, Running)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if s := mustJob(t, d, v.ID).State; s != Paused {
		t.Errorf("running job drained into %v, want paused", s)
	}
	if _, err := d.Submit(runnableSpec("late", "bob", 1, 1)); err == nil {
		t.Error("draining daemon accepted a submission")
	}
}
