package ctl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/ckptstore"
)

// Client talks to a kfacd daemon over its HTTP JSON API. The zero value is
// not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:7070"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base, http: httpClient}
}

// do issues one API request and decodes the JSON response into out (when
// non-nil). Non-2xx responses surface the server's error envelope.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("ctl: encoding request: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e apiError
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s", e.Error)
		}
		return fmt.Errorf("ctl: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("ctl: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Health checks the daemon's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Submit submits a job spec and returns the created job's view.
func (c *Client) Submit(ctx context.Context, spec *JobSpec) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", spec, &v)
	return v, err
}

// Jobs lists every job, submit order.
func (c *Client) Jobs(ctx context.Context) ([]JobView, error) {
	var vs []JobView
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &vs)
	return vs, err
}

// Job fetches one job's full view, spec included.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &v)
	return v, err
}

// Pause parks a job; see Daemon.Pause for the semantics.
func (c *Client) Pause(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs/"+id+"/pause", nil, &v)
	return v, err
}

// Resume re-queues a paused job.
func (c *Client) Resume(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs/"+id+"/resume", nil, &v)
	return v, err
}

// Cancel terminates a job through the consensus-stop path.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var v JobView
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs/"+id+"/cancel", nil, &v)
	return v, err
}

// Metrics returns the job's retained step metrics with Seq > after.
func (c *Client) Metrics(ctx context.Context, id string, after int) ([]StepMetric, error) {
	var ms []StepMetric
	err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/api/v1/jobs/%s/metrics?since=%d", id, after), nil, &ms)
	return ms, err
}

// Checkpoints lists the job's stored checkpoint refs, oldest first.
func (c *Client) Checkpoints(ctx context.Context, id string) ([]CheckpointView, error) {
	var cks []CheckpointView
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/checkpoints", nil, &cks)
	return cks, err
}

// StoreStats returns the daemon's checkpoint-store statistics.
func (c *Client) StoreStats(ctx context.Context) (ckptstore.Stats, error) {
	var st ckptstore.Stats
	err := c.do(ctx, http.MethodGet, "/api/v1/store", nil, &st)
	return st, err
}

// WaitSettled polls until the job is terminal or Paused (interval capped
// at 250ms) and returns its final view.
func (c *Client) WaitSettled(ctx context.Context, id string) (JobView, error) {
	for {
		v, err := c.Job(ctx, id)
		if err != nil {
			return v, err
		}
		if v.State.Terminal() || v.State == Paused {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return v, ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}
