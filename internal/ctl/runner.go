package ctl

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/ckptstore"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

// runElasticJob executes one admitted job through trainer.RunElastic on an
// in-memory fabric: every rank generates the declared synthetic dataset,
// builds the declared model, and trains under the spec's optimizer and
// K-FAC settings. Rank 0 streams step metrics into the job's ring buffer
// and files every epoch-boundary checkpoint into the content-addressed
// store (pruned under the daemon's retention policy); if the store already
// holds a checkpoint for the job — a paused run being resumed, or a daemon
// restart — training continues from it. A scripted chaos kill, when the
// spec asks for one, rides the first generation's fabric so elastic
// recovery is exercised under control-plane supervision.
func runElasticJob(ctx context.Context, d *Daemon, j *job) (*trainer.ElasticResult, error) {
	spec := j.spec
	train, test := data.GenerateSynthetic(spec.Data.config())
	buildNet := func(rng *rand.Rand) *nn.Sequential { return spec.Model.Build(rng) }

	opts := []trainer.SessionOption{
		trainer.WithEpochs(spec.Epochs),
		trainer.WithBatchPerRank(spec.BatchPerRank),
		trainer.WithLRSchedule(optim.LRSchedule{BaseLR: spec.LR, WarmupEpochs: spec.WarmupEpochs}),
		trainer.WithMomentum(spec.Momentum),
		trainer.WithWeightDecay(spec.WeightDecay),
		trainer.WithSeed(spec.Seed),
	}
	if spec.KFAC != nil {
		o, err := spec.KFAC.options()
		if err != nil {
			return nil, err // unreachable after Validate; belt and braces
		}
		opts = append(opts, trainer.WithKFACOptions(o))
	}

	// Cross-run resume: the latest store checkpoint (if any) seeds the
	// first generation. RunElastic owns within-run recovery checkpoints.
	if latest, _, err := d.store.Latest(j.id); err != nil {
		return nil, fmt.Errorf("ctl: loading resume checkpoint: %w", err)
	} else if latest != nil {
		opts = append(opts, trainer.WithResume(latest))
	}

	// Rank 0 feeds the metrics stream.
	opts = append(opts, trainer.OnStep(func(s *trainer.Session, info trainer.StepInfo) error {
		if s.Rank() == 0 {
			j.metrics.append(StepMetric{
				Epoch:     info.Epoch,
				Iteration: info.Iteration,
				LR:        info.LR,
				Loss:      info.Loss,
				StepNS:    info.StepDuration.Nanoseconds(),
			})
		}
		return nil
	}))

	// Rank 0 files durable checkpoints into the content-addressed store.
	opts = append(opts, trainer.OnCheckpoint(func(s *trainer.Session, info trainer.CheckpointInfo) error {
		if s.Rank() != 0 {
			return nil
		}
		ck := checkpoint.Snapshot(s.Net(), info.Epoch+1, info.Iterations)
		ck.World = s.World()
		if _, _, err := d.store.Put(j.id, ck); err != nil {
			return fmt.Errorf("ctl: storing checkpoint: %w", err)
		}
		if d.cfg.Retention != (ckptstore.Policy{}) {
			if _, err := d.store.Prune(d.cfg.Retention); err != nil {
				return fmt.Errorf("ctl: pruning store: %w", err)
			}
		}
		return nil
	}))

	ecfg := trainer.ElasticConfig{
		World:           spec.World,
		MinWorld:        spec.MinWorld,
		CheckpointDir:   filepath.Join(d.cfg.ScratchDir, j.id),
		CheckpointEvery: spec.CheckpointEvery,
		Heartbeat:       d.cfg.Heartbeat,
		Log:             d.cfg.Log,
	}

	if spec.Chaos != nil {
		var chaos *comm.ChaosFabric
		ecfg.Fabric = func(gen, world int) comm.Fabric {
			if gen == 0 {
				chaos = comm.NewChaosFabric(comm.NewInprocFabric(world), world,
					comm.ChaosConfig{Seed: spec.Chaos.Seed})
				return chaos
			}
			return comm.NewInprocFabric(world)
		}
		// The scripted death: the victim stops responding at an optimizer
		// step of the configured epoch, in the initial world only (a
		// resumed or recovered world has moved past the script).
		opts = append(opts, trainer.OnStep(func(s *trainer.Session, info trainer.StepInfo) error {
			if chaos != nil && s.World() == spec.World &&
				s.Rank() == spec.Chaos.KillRank && info.Epoch == spec.Chaos.KillAtEpoch {
				chaos.Kill(spec.Chaos.KillRank)
			}
			return nil
		}))
	}

	return trainer.RunElastic(ctx, ecfg, buildNet, train, test, opts...)
}
