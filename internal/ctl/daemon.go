package ctl

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/comm"
)

// Config configures a Daemon.
type Config struct {
	// Fleet declares the shared worker pool (required: Workers ≥ 1).
	Fleet Fleet
	// StoreDir roots the content-addressed checkpoint store (required).
	StoreDir string
	// Retention prunes the store after every checkpoint write (zero value:
	// keep everything).
	Retention ckptstore.Policy
	// ScratchDir holds per-job elastic recovery checkpoints (defaults to a
	// fresh temp directory).
	ScratchDir string
	// MetricsBuffer caps each job's retained step metrics (default 4096).
	MetricsBuffer int
	// Heartbeat tunes elastic failure detection for every job (zero values
	// take the comm defaults).
	Heartbeat comm.HeartbeatConfig
	// Log, when non-nil, receives scheduler and generation transitions.
	Log io.Writer
}

// Daemon is the control plane: it admits submitted jobs against the fleet,
// schedules them fair-share within the worker pool, executes each through
// trainer.RunElastic (so worker deaths recover without operator action),
// streams per-step metrics, and checkpoints into the content-addressed
// store. All methods are safe for concurrent use.
type Daemon struct {
	cfg   Config
	store *ckptstore.Store

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on every job state change
	jobs   map[string]*job
	order  []*job // submit order, the FIFO axis of fair-share
	nextID int
	free   int            // unreserved workers
	usage  map[string]int // user → reserved workers

	draining bool
	closed   bool
	wg       sync.WaitGroup // one entry per launched job goroutine
}

// NewDaemon opens the store and starts an idle daemon.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Fleet.Workers < 1 {
		return nil, fmt.Errorf("ctl: daemon needs a fleet with ≥ 1 worker")
	}
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("ctl: daemon needs a checkpoint store directory")
	}
	if cfg.ScratchDir == "" {
		dir, err := os.MkdirTemp("", "kfacd-scratch-")
		if err != nil {
			return nil, fmt.Errorf("ctl: scratch dir: %w", err)
		}
		cfg.ScratchDir = dir
	}
	if cfg.MetricsBuffer < 1 {
		cfg.MetricsBuffer = 4096
	}
	store, err := ckptstore.Open(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:   cfg,
		store: store,
		jobs:  make(map[string]*job),
		free:  cfg.Fleet.Workers,
		usage: make(map[string]int),
	}
	d.cond = sync.NewCond(&d.mu)
	return d, nil
}

// Store exposes the daemon's checkpoint store (read-side: listing refs,
// loading checkpoints).
func (d *Daemon) Store() *ckptstore.Store { return d.store }

// Fleet returns the configured worker pool declaration.
func (d *Daemon) Fleet() Fleet { return d.cfg.Fleet }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		fmt.Fprintf(d.cfg.Log, format+"\n", args...)
	}
}

// setState moves j along a lifecycle edge. Caller holds d.mu; illegal
// edges panic because every caller checks CanTransition (or holds a state
// that makes the edge unconditional) first — a panic here is a daemon bug,
// not an operator error.
func (d *Daemon) setState(j *job, to State) {
	if !CanTransition(j.state, to) {
		panic(fmt.Sprintf("ctl: illegal transition %v → %v for %s", j.state, to, j.id))
	}
	j.state = to
	switch to {
	case Running:
		if j.started.IsZero() {
			j.started = time.Now()
		}
	case Completed, Failed, Cancelled, Paused:
		j.finished = time.Now()
	case Queued: // resume: the job is live again
		j.finished = time.Time{}
	}
	d.cond.Broadcast()
}

// Submit validates and admits a job. Validation and admission are
// synchronous: a returned error means the job will never run — admission
// rejections are additionally recorded as a Failed job so the decision
// stays inspectable. On success the job is Queued and the scheduler picks
// it up as workers free.
func (d *Daemon) Submit(spec *JobSpec) (JobView, error) {
	if spec == nil {
		return JobView{}, fmt.Errorf("ctl: nil job spec")
	}
	if err := spec.Validate(); err != nil {
		return JobView{}, err
	}
	admitErr := Admit(spec, d.cfg.Fleet)

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return JobView{}, fmt.Errorf("ctl: daemon is closed")
	}
	if d.draining {
		return JobView{}, fmt.Errorf("ctl: daemon is draining, not accepting jobs")
	}
	d.nextID++
	j := &job{
		id:        fmt.Sprintf("j-%04d", d.nextID),
		spec:      spec,
		state:     Queued,
		submitted: time.Now(),
		metrics:   newMetricsBuffer(d.cfg.MetricsBuffer),
	}
	d.jobs[j.id] = j
	d.order = append(d.order, j)
	if admitErr != nil {
		j.err = admitErr.Error()
		d.setState(j, Failed)
		d.logf("ctl: %s (%s) rejected: %v", j.id, spec.Name, admitErr)
		return j.view(false), admitErr
	}
	d.logf("ctl: %s (%s) queued: user %s, world %d", j.id, spec.Name, spec.User, spec.World)
	d.scheduleLocked()
	return j.view(false), nil
}

// scheduleLocked launches every queued job that fits the free workers,
// fair-share order. Caller holds d.mu.
func (d *Daemon) scheduleLocked() {
	if d.draining || d.closed {
		return
	}
	for {
		j := pickNext(d.order, d.free, d.usage)
		if j == nil {
			return
		}
		d.free -= j.spec.World
		d.usage[j.spec.User] += j.spec.World
		d.setState(j, Admitted)
		ctx, cancel := context.WithCancel(context.Background())
		j.cancel = cancel
		d.logf("ctl: %s admitted: %d worker(s) reserved, %d free", j.id, j.spec.World, d.free)
		d.wg.Add(1)
		go d.runJob(ctx, j)
	}
}

// runJob drives one admitted job to a settled state and releases its
// workers.
func (d *Daemon) runJob(ctx context.Context, j *job) {
	defer d.wg.Done()

	d.mu.Lock()
	if j.cancelRequested {
		// Cancelled in the Admitted window, before training began.
		d.releaseLocked(j)
		d.setState(j, Cancelled)
		d.scheduleLocked()
		d.mu.Unlock()
		return
	}
	d.setState(j, Running)
	d.mu.Unlock()

	res, err := runElasticJob(ctx, d, j)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.releaseLocked(j)
	if res != nil && res.Result != nil {
		r := &Result{
			Iterations:  res.Result.Iterations,
			Generations: len(res.Generations),
		}
		if n := len(res.Result.History); n > 0 {
			last := res.Result.History[n-1]
			// Epoch indices are global (a resumed run's history starts at
			// its checkpoint), so the last index counts all completed
			// epochs across pause/resume cycles.
			r.Epochs = last.Epoch + 1
			r.FinalTrainLoss = last.TrainLoss
			r.FinalTestAcc = last.ValAcc
		}
		if prev := j.result; prev != nil && r.Epochs == 0 {
			// A resume that made no new epoch keeps the prior outcome.
			r.Epochs = prev.Epochs
			r.FinalTrainLoss = prev.FinalTrainLoss
			r.FinalTestAcc = prev.FinalTestAcc
		}
		j.result = r
	}
	switch {
	case err == nil:
		d.setState(j, Completed)
		d.logf("ctl: %s completed: %d epoch(s), %d generation(s)", j.id,
			j.result.Epochs, j.result.Generations)
	case j.cancelRequested:
		d.setState(j, Cancelled)
		d.logf("ctl: %s cancelled", j.id)
	case j.pauseRequested:
		j.pauseRequested = false
		d.setState(j, Paused)
		d.logf("ctl: %s paused", j.id)
	default:
		j.err = err.Error()
		d.setState(j, Failed)
		d.logf("ctl: %s failed: %v", j.id, err)
	}
	d.scheduleLocked()
}

// releaseLocked returns j's reserved workers to the pool. Caller holds
// d.mu.
func (d *Daemon) releaseLocked(j *job) {
	d.free += j.spec.World
	d.usage[j.spec.User] -= j.spec.World
	if d.usage[j.spec.User] <= 0 {
		delete(d.usage, j.spec.User)
	}
}

func (d *Daemon) get(id string) (*job, error) {
	j, ok := d.jobs[id]
	if !ok {
		return nil, fmt.Errorf("ctl: no such job %q", id)
	}
	return j, nil
}

// Jobs lists every known job in submit order (without specs).
func (d *Daemon) Jobs() []JobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]JobView, 0, len(d.order))
	for _, j := range d.order {
		out = append(out, j.view(false))
	}
	return out
}

// Job returns one job's full view, spec included.
func (d *Daemon) Job(id string) (JobView, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, err := d.get(id)
	if err != nil {
		return JobView{}, err
	}
	return j.view(true), nil
}

// Metrics returns a job's retained step metrics with Seq > after, oldest
// first.
func (d *Daemon) Metrics(id string, after int) ([]StepMetric, error) {
	d.mu.Lock()
	j, err := d.get(id)
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return j.metrics.since(after), nil
}

// Pause stops a job while keeping it resumable: a queued job parks
// immediately; a running job stops cooperatively at the next step boundary
// (the consensus-stop path), keeping its latest store checkpoint for
// resume. Pausing a launching (Admitted) or settled job is an error.
func (d *Daemon) Pause(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, err := d.get(id)
	if err != nil {
		return err
	}
	switch j.state {
	case Queued:
		d.setState(j, Paused)
		return nil
	case Running:
		j.pauseRequested = true
		j.cancel()
		return nil
	case Admitted:
		return fmt.Errorf("ctl: job %s is launching; retry pause in a moment", id)
	}
	return fmt.Errorf("ctl: cannot pause job %s in state %v", id, j.state)
}

// Resume re-queues a paused job. It re-enters scheduling under the same
// quota accounting as a fresh submission and continues from its latest
// store checkpoint.
func (d *Daemon) Resume(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, err := d.get(id)
	if err != nil {
		return err
	}
	if j.state != Paused {
		return fmt.Errorf("ctl: cannot resume job %s in state %v (want paused)", id, j.state)
	}
	if d.draining || d.closed {
		return fmt.Errorf("ctl: daemon is draining, not accepting jobs")
	}
	d.setState(j, Queued)
	d.scheduleLocked()
	return nil
}

// Cancel terminates a job permanently. A running job stops through the
// same cooperative consensus-stop path as Pause — every rank agrees on the
// stopping iteration — but lands in the terminal Cancelled state.
func (d *Daemon) Cancel(id string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, err := d.get(id)
	if err != nil {
		return err
	}
	switch j.state {
	case Queued, Paused:
		d.setState(j, Cancelled)
		return nil
	case Admitted, Running:
		j.cancelRequested = true
		j.cancel()
		return nil
	}
	return fmt.Errorf("ctl: cannot cancel job %s in state %v", id, j.state)
}

// WaitSettled blocks until the job is settled — terminal or Paused, i.e.
// it will not progress further without operator action — and returns its
// view at that moment.
func (d *Daemon) WaitSettled(ctx context.Context, id string) (JobView, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		j, err := d.get(id)
		if err != nil {
			return JobView{}, err
		}
		if j.state.Terminal() || j.state == Paused {
			return j.view(true), nil
		}
		if err := ctx.Err(); err != nil {
			return j.view(false), err
		}
		d.cond.Wait()
	}
}

// Drain gracefully winds the daemon down: new submissions are refused,
// queued jobs stay queued, and every running job is paused (its latest
// checkpoint retained, so a restarted daemon can resume it). Blocks until
// all job goroutines settle or ctx expires.
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	for _, j := range d.order {
		if j.state == Running || j.state == Admitted {
			j.pauseRequested = true
			j.cancel()
		}
	}
	d.mu.Unlock()
	d.logf("ctl: draining")

	done := make(chan struct{})
	go func() { d.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("ctl: drain interrupted: %w", ctx.Err())
	}
}

// Close shuts the daemon down, cancelling whatever Drain has not already
// stopped, and waits for job goroutines to exit.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.draining = true
	for _, j := range d.order {
		if j.state == Running || j.state == Admitted {
			j.cancelRequested = true
			j.cancel()
		}
	}
	d.mu.Unlock()
	d.wg.Wait()
	return nil
}
