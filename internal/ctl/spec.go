package ctl

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
)

// ModelSpec declares the trainable model a job builds on every rank. The
// kinds map onto the internal/models constructors; every rank (and every
// elastic recovery generation) rebuilds the identical architecture from
// this declaration.
type ModelSpec struct {
	// Kind selects the constructor family: "smallcnn", "cifar-resnet", or
	// "mlp".
	Kind string `json:"kind"`
	// Blocks and Width size the "cifar-resnet" kind (BuildCIFARResNet);
	// Width also sizes "smallcnn".
	Blocks int `json:"blocks,omitempty"`
	// Width is the base channel width of the convolutional kinds.
	Width int `json:"width,omitempty"`
	// Channels is the input channel count (default 3).
	Channels int `json:"channels,omitempty"`
	// Classes is the classifier output count (default 10).
	Classes int `json:"classes,omitempty"`
	// Dims are the layer widths of the "mlp" kind, input first.
	Dims []int `json:"dims,omitempty"`
}

func (m *ModelSpec) fillDefaults() {
	if m.Channels == 0 {
		m.Channels = 3
	}
	if m.Classes == 0 {
		m.Classes = 10
	}
}

func (m ModelSpec) validate() error {
	switch m.Kind {
	case "smallcnn":
		if m.Width < 1 {
			return fmt.Errorf("ctl: smallcnn needs width ≥ 1, got %d", m.Width)
		}
	case "cifar-resnet":
		if m.Blocks < 1 || m.Width < 1 {
			return fmt.Errorf("ctl: cifar-resnet needs blocks ≥ 1 and width ≥ 1, got %d/%d",
				m.Blocks, m.Width)
		}
	case "mlp":
		if len(m.Dims) < 2 {
			return fmt.Errorf("ctl: mlp needs ≥ 2 dims, got %v", m.Dims)
		}
		for _, d := range m.Dims {
			if d < 1 {
				return fmt.Errorf("ctl: mlp dims must be positive, got %v", m.Dims)
			}
		}
	default:
		return fmt.Errorf("ctl: unknown model kind %q (want smallcnn, cifar-resnet, or mlp)", m.Kind)
	}
	return nil
}

// Build constructs the model. The rng only seeds the initial weights; the
// trainer's initial broadcast makes every rank's replica identical
// regardless.
func (m ModelSpec) Build(rng *rand.Rand) *nn.Sequential {
	m.fillDefaults()
	switch m.Kind {
	case "smallcnn":
		return models.BuildSmallCNN(m.Channels, m.Classes, m.Width, rng)
	case "cifar-resnet":
		return models.BuildCIFARResNet(m.Blocks, m.Width, m.Channels, m.Classes, rng)
	case "mlp":
		// The trainer feeds [N, C, H, W] batches; a leading Flatten adapts
		// them to the fully-connected stack.
		inner := models.BuildMLP("mlp", m.Dims, rng)
		return nn.NewSequential("mlp",
			append([]nn.Layer{nn.NewFlatten("mlp.flatten")}, inner.Layers...)...)
	}
	panic("ctl: Build on unvalidated ModelSpec")
}

// FactorRefs returns the model's K-FAC factor list in placement order —
// the input the admission controller feeds to kfac.BuildPlan. It derives
// the dimensions from a throwaway instance of the declared architecture,
// so the planning model can never drift from what the job actually trains.
func (m ModelSpec) FactorRefs() ([]kfac.FactorRef, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	net := m.Build(rand.New(rand.NewSource(1)))
	layers := nn.CapturableLayers(net)
	refs := make([]kfac.FactorRef, 0, 2*len(layers))
	for i, l := range layers {
		da, dg := kfac.FactorDims(l)
		refs = append(refs, kfac.FactorRef{Layer: i, IsG: false, Dim: da})
		refs = append(refs, kfac.FactorRef{Layer: i, IsG: true, Dim: dg})
	}
	return refs, nil
}

// DataSpec declares the job's synthetic dataset (data.GenerateSynthetic).
// Every rank generates the full dataset from the same declaration and
// iterates its shard.
type DataSpec struct {
	// Train and Test are the split sizes.
	Train int `json:"train"`
	// Test is the held-out split size.
	Test int `json:"test"`
	// Classes is the label count (must match the model's Classes).
	Classes int `json:"classes"`
	// Channels and Size give the image geometry.
	Channels int `json:"channels"`
	// Size is the square image side length.
	Size int `json:"size"`
	// Noise is the additive Gaussian noise std.
	Noise float64 `json:"noise,omitempty"`
	// Shift is the max circular shift in pixels.
	Shift int `json:"shift,omitempty"`
	// Seed drives generation; identical on every rank.
	Seed int64 `json:"seed"`
}

func (d DataSpec) config() data.SyntheticConfig {
	return data.SyntheticConfig{
		Train: d.Train, Test: d.Test, Classes: d.Classes,
		Channels: d.Channels, Size: d.Size,
		Noise: d.Noise, Shift: d.Shift, Seed: d.Seed,
	}
}

func (d DataSpec) validate() error {
	if d.Train < 1 || d.Test < 1 {
		return fmt.Errorf("ctl: data needs train and test sizes ≥ 1, got %d/%d", d.Train, d.Test)
	}
	if d.Classes < 2 {
		return fmt.Errorf("ctl: data needs ≥ 2 classes, got %d", d.Classes)
	}
	if d.Channels < 1 || d.Size < 4 {
		return fmt.Errorf("ctl: data needs channels ≥ 1 and size ≥ 4, got %d/%d", d.Channels, d.Size)
	}
	return nil
}

// KFACSpec enables and configures K-FAC preconditioning for a job. Its
// distribution fields drive both the live preconditioner and the admission
// controller's memory plan — admission models exactly the placement the
// job will run.
type KFACSpec struct {
	// DistMode is "auto", "commopt", "memopt", or "hybrid".
	DistMode string `json:"dist_mode,omitempty"`
	// GradWorkerFrac sizes hybrid gradient-worker sets (0 < f < 1;
	// required iff DistMode is "hybrid").
	GradWorkerFrac float64 `json:"grad_worker_frac,omitempty"`
	// Damping is the Tikhonov γ (0 = paper default).
	Damping float64 `json:"damping,omitempty"`
	// FactorUpdateFreq is the factor recomputation interval (0 = default).
	FactorUpdateFreq int `json:"factor_update_freq,omitempty"`
	// InvUpdateFreq is the decomposition interval (0 = default).
	InvUpdateFreq int `json:"inv_update_freq,omitempty"`
	// Precision is "f64" (default) or "f32".
	Precision string `json:"precision,omitempty"`
	// Compression selects the payload codec for factor and gradient
	// exchanges: "none" (default), "float16", or "topk".
	Compression string `json:"compression,omitempty"`
	// TopKFraction is the kept-coordinate fraction of the "topk" codec
	// (0 < f ≤ 1; required iff Compression is "topk").
	TopKFraction float64 `json:"topk_fraction,omitempty"`
	// NoErrorFeedback disables residual compensation — the biased
	// estimator, exposed for A/B experiments only.
	NoErrorFeedback bool `json:"no_error_feedback,omitempty"`
	// Autotune enables the bandwidth-adaptive controller (overrides the
	// static compression fields from its first consensus decision on).
	Autotune bool `json:"autotune,omitempty"`
	// AutotuneInterval is the number of factor updates between consensus
	// decisions (0 = every factor update; requires Autotune).
	AutotuneInterval int `json:"autotune_interval,omitempty"`
}

// codec resolves the compression fields to a comm.Codec (nil = exact).
func (k KFACSpec) codec() (comm.Codec, error) {
	switch strings.ToLower(k.Compression) {
	case "", "none":
		if k.TopKFraction != 0 {
			return nil, fmt.Errorf("ctl: topk_fraction requires compression \"topk\"")
		}
		return nil, nil
	case "float16":
		if k.TopKFraction != 0 {
			return nil, fmt.Errorf("ctl: topk_fraction requires compression \"topk\"")
		}
		return comm.Float16Codec{}, nil
	case "topk":
		if k.TopKFraction <= 0 || k.TopKFraction > 1 {
			return nil, fmt.Errorf("ctl: compression topk needs topk_fraction in (0, 1], got %v",
				k.TopKFraction)
		}
		return comm.TopKCodec{FractionK: k.TopKFraction}, nil
	}
	return nil, fmt.Errorf("ctl: unknown compression %q (want none, float16, or topk)", k.Compression)
}

// distMode resolves the wire name to the kfac enum.
func (k KFACSpec) distMode() (kfac.DistMode, error) {
	switch strings.ToLower(k.DistMode) {
	case "", "auto":
		return kfac.DistAuto, nil
	case "commopt":
		return kfac.CommOpt, nil
	case "memopt":
		return kfac.MemOpt, nil
	case "hybrid":
		return kfac.Hybrid, nil
	}
	return 0, fmt.Errorf("ctl: unknown dist_mode %q (want auto, commopt, memopt, or hybrid)", k.DistMode)
}

// options resolves the spec into the kfac.Options the trainer consumes.
func (k KFACSpec) options() (kfac.Options, error) {
	mode, err := k.distMode()
	if err != nil {
		return kfac.Options{}, err
	}
	if mode == kfac.Hybrid && (k.GradWorkerFrac <= 0 || k.GradWorkerFrac >= 1) {
		return kfac.Options{}, fmt.Errorf(
			"ctl: dist_mode hybrid needs grad_worker_frac strictly between 0 and 1, got %v",
			k.GradWorkerFrac)
	}
	if mode != kfac.Hybrid && k.GradWorkerFrac != 0 {
		return kfac.Options{}, fmt.Errorf("ctl: grad_worker_frac requires dist_mode hybrid")
	}
	prec, err := kfac.ParsePrecision(k.Precision)
	if err != nil {
		return kfac.Options{}, fmt.Errorf("ctl: %w", err)
	}
	codec, err := k.codec()
	if err != nil {
		return kfac.Options{}, err
	}
	if k.NoErrorFeedback && codec == nil && !k.Autotune {
		return kfac.Options{}, fmt.Errorf("ctl: no_error_feedback requires a compression codec or autotune")
	}
	if k.AutotuneInterval != 0 && !k.Autotune {
		return kfac.Options{}, fmt.Errorf("ctl: autotune_interval requires autotune")
	}
	if k.AutotuneInterval < 0 {
		return kfac.Options{}, fmt.Errorf("ctl: autotune_interval must be ≥ 0, got %d", k.AutotuneInterval)
	}
	opts := kfac.Options{
		DistMode:         mode,
		GradWorkerFrac:   k.GradWorkerFrac,
		Damping:          k.Damping,
		FactorUpdateFreq: k.FactorUpdateFreq,
		InvUpdateFreq:    k.InvUpdateFreq,
		Precision:        prec,
		Compression:      codec,
		NoErrorFeedback:  k.NoErrorFeedback,
	}
	if k.Autotune {
		opts.Autotune = &kfac.AutotuneConfig{Interval: k.AutotuneInterval}
	}
	return opts, nil
}

// ChaosSpec scripts fault injection into a job's first generation — the
// control-plane hook for exercising (and demonstrating) elastic recovery
// end to end: the scripted rank dies mid-training, the daemon's RunElastic
// rebuilds a smaller world, and the job still completes.
type ChaosSpec struct {
	// Seed drives the chaos fabric's latency/drop decisions.
	Seed int64 `json:"seed,omitempty"`
	// KillRank is the rank scripted to die (in the initial world's
	// numbering).
	KillRank int `json:"kill_rank"`
	// KillAtEpoch is the zero-based epoch at which the victim stops
	// responding (mid-epoch, at an optimizer-step boundary).
	KillAtEpoch int `json:"kill_at_epoch"`
}

// JobSpec is a complete training-job declaration — everything the daemon
// needs to run (and re-run, across elastic generations and pause/resume
// cycles) the job without further operator input.
type JobSpec struct {
	// Name is a human label; it need not be unique (the daemon assigns
	// IDs).
	Name string `json:"name"`
	// User is the fair-share principal the job's worker usage is accounted
	// to (default "anonymous").
	User string `json:"user,omitempty"`
	// Model declares the architecture.
	Model ModelSpec `json:"model"`
	// Data declares the synthetic dataset.
	Data DataSpec `json:"data"`
	// World is the requested worker count (the job's quota while running).
	World int `json:"world"`
	// MinWorld bounds elastic shrink-on-failure (default 1).
	MinWorld int `json:"min_world,omitempty"`
	// Epochs is the number of training passes (required).
	Epochs int `json:"epochs"`
	// BatchPerRank is the local mini-batch size (required).
	BatchPerRank int `json:"batch_per_rank"`
	// LR is the base learning rate (required; already scaled for World).
	LR float64 `json:"lr"`
	// WarmupEpochs linearly ramps the learning rate (0 = none).
	WarmupEpochs int `json:"warmup_epochs,omitempty"`
	// Momentum is the SGD momentum (0 = none).
	Momentum float64 `json:"momentum,omitempty"`
	// WeightDecay is the SGD L2 penalty (0 = none).
	WeightDecay float64 `json:"weight_decay,omitempty"`
	// Seed drives data sharding (identical across ranks).
	Seed int64 `json:"seed,omitempty"`
	// CheckpointEvery is the epoch interval between durable checkpoints
	// (default 1).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// KFAC enables K-FAC preconditioning when non-nil.
	KFAC *KFACSpec `json:"kfac,omitempty"`
	// Chaos scripts a fault into the first generation when non-nil.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// Validate checks the spec for internal consistency; admission (fit
// against a concrete fleet) is a separate, fleet-relative check.
func (s *JobSpec) Validate() error {
	s.Model.fillDefaults()
	if s.User == "" {
		s.User = "anonymous"
	}
	if s.MinWorld == 0 {
		s.MinWorld = 1
	}
	if s.CheckpointEvery == 0 {
		s.CheckpointEvery = 1
	}
	if err := s.Model.validate(); err != nil {
		return err
	}
	if err := s.Data.validate(); err != nil {
		return err
	}
	if s.Model.Classes != s.Data.Classes {
		return fmt.Errorf("ctl: model has %d classes but data has %d", s.Model.Classes, s.Data.Classes)
	}
	if s.Model.Kind != "mlp" && s.Model.Channels != s.Data.Channels {
		return fmt.Errorf("ctl: model wants %d input channels but data has %d",
			s.Model.Channels, s.Data.Channels)
	}
	if s.Model.Kind == "mlp" {
		if flat := s.Data.Channels * s.Data.Size * s.Data.Size; s.Model.Dims[0] != flat {
			return fmt.Errorf("ctl: mlp input dim %d does not match the flattened data (%d×%d×%d = %d)",
				s.Model.Dims[0], s.Data.Channels, s.Data.Size, s.Data.Size, flat)
		}
	}
	if s.World < 1 {
		return fmt.Errorf("ctl: world must be ≥ 1, got %d", s.World)
	}
	if s.MinWorld < 1 || s.MinWorld > s.World {
		return fmt.Errorf("ctl: min_world must be in [1, world], got %d", s.MinWorld)
	}
	if s.Epochs < 1 || s.BatchPerRank < 1 {
		return fmt.Errorf("ctl: epochs and batch_per_rank must be ≥ 1, got %d/%d",
			s.Epochs, s.BatchPerRank)
	}
	if s.LR <= 0 {
		return fmt.Errorf("ctl: lr must be positive, got %v", s.LR)
	}
	if s.CheckpointEvery < 1 {
		return fmt.Errorf("ctl: checkpoint_every must be ≥ 1, got %d", s.CheckpointEvery)
	}
	if s.KFAC != nil {
		if _, err := s.KFAC.options(); err != nil {
			return err
		}
	}
	if s.Chaos != nil {
		if s.Chaos.KillRank < 0 || s.Chaos.KillRank >= s.World {
			return fmt.Errorf("ctl: chaos kill_rank %d outside world %d", s.Chaos.KillRank, s.World)
		}
		if s.Chaos.KillAtEpoch < 0 || s.Chaos.KillAtEpoch >= s.Epochs {
			return fmt.Errorf("ctl: chaos kill_at_epoch %d outside [0, %d)", s.Chaos.KillAtEpoch, s.Epochs)
		}
		if s.World == 1 {
			return fmt.Errorf("ctl: chaos kill needs world ≥ 2 (a 1-rank job cannot survive its only worker)")
		}
	}
	return nil
}
