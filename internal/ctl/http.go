package ctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// apiError is the JSON error envelope every non-2xx API response carries.
type apiError struct {
	// Error is the human-readable cause.
	Error string `json:"error"`
}

// CheckpointView is the wire projection of a store ref: the content hash
// travels as lowercase hex rather than a byte array.
type CheckpointView struct {
	// Job is the owning job identifier.
	Job string `json:"job"`
	// Seq is the job-local checkpoint number.
	Seq int `json:"seq"`
	// Sum is the content hash in lowercase hex — the object's address.
	Sum string `json:"sum"`
	// Time is when the checkpoint was recorded.
	Time time.Time `json:"time"`
}

// NewHandler wraps a Daemon in the kfacd HTTP JSON API:
//
//	POST /api/v1/jobs                  submit a JobSpec → JobView
//	GET  /api/v1/jobs                  list jobs (submit order)
//	GET  /api/v1/jobs/{id}             inspect one job, spec included
//	POST /api/v1/jobs/{id}/pause       park the job, checkpoint retained
//	POST /api/v1/jobs/{id}/resume      re-queue a paused job
//	POST /api/v1/jobs/{id}/cancel      terminate via consensus stop
//	GET  /api/v1/jobs/{id}/metrics     step metrics; ?since=N for the tail
//	GET  /api/v1/jobs/{id}/checkpoints the job's store refs, oldest first
//	GET  /api/v1/store                 store stats
//	GET  /healthz                      liveness
//
// Every response is JSON; errors use the {"error": ...} envelope with 400
// for bad specs/verbs, 404 for unknown jobs, and 503 while draining.
func NewHandler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /api/v1/store", func(w http.ResponseWriter, r *http.Request) {
		st, err := d.Store().Stats()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding job spec: %v", err)})
			return
		}
		v, err := d.Submit(&spec)
		if err != nil {
			// An admission rejection still created an (audit) job record;
			// carry its view alongside the error when present.
			status := http.StatusBadRequest
			var adm *AdmissionError
			if errors.As(err, &adm) {
				status = http.StatusUnprocessableEntity
			}
			if v.ID != "" {
				writeJSON(w, status, struct {
					apiError
					Job JobView `json:"job"`
				}{apiError{err.Error()}, v})
				return
			}
			writeJSON(w, status, apiError{err.Error()})
			return
		}
		writeJSON(w, http.StatusCreated, v)
	})
	mux.HandleFunc("GET /api/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Jobs())
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := d.Job(r.PathValue("id"))
		if err != nil {
			writeJSON(w, http.StatusNotFound, apiError{err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	verb := func(do func(string) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			id := r.PathValue("id")
			if err := do(id); err != nil {
				status := http.StatusBadRequest
				if _, jerr := d.Job(id); jerr != nil {
					status = http.StatusNotFound
				}
				writeJSON(w, status, apiError{err.Error()})
				return
			}
			v, _ := d.Job(id)
			writeJSON(w, http.StatusOK, v)
		}
	}
	mux.HandleFunc("POST /api/v1/jobs/{id}/pause", verb(d.Pause))
	mux.HandleFunc("POST /api/v1/jobs/{id}/resume", verb(d.Resume))
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", verb(d.Cancel))
	mux.HandleFunc("GET /api/v1/jobs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		since := 0
		if q := r.URL.Query().Get("since"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("bad since %q", q)})
				return
			}
			since = n
		}
		ms, err := d.Metrics(r.PathValue("id"), since)
		if err != nil {
			writeJSON(w, http.StatusNotFound, apiError{err.Error()})
			return
		}
		if ms == nil {
			ms = []StepMetric{}
		}
		writeJSON(w, http.StatusOK, ms)
	})
	mux.HandleFunc("GET /api/v1/jobs/{id}/checkpoints", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, err := d.Job(id); err != nil {
			writeJSON(w, http.StatusNotFound, apiError{err.Error()})
			return
		}
		refs, err := d.Store().Refs(id)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{err.Error()})
			return
		}
		views := make([]CheckpointView, 0, len(refs))
		for _, r := range refs {
			views = append(views, CheckpointView{
				Job: r.Job, Seq: r.Seq, Sum: r.Hex(), Time: r.Time,
			})
		}
		writeJSON(w, http.StatusOK, views)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone if this fails
}
