package ctl

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/kfac"
	"repro/internal/simulate"
)

// tinySpec returns a valid 2-worker MLP job; tests mutate it.
func tinySpec() *JobSpec {
	return &JobSpec{
		Name:  "tiny",
		User:  "alice",
		Model: ModelSpec{Kind: "mlp", Dims: []int{16, 8, 4}, Classes: 4},
		Data: DataSpec{
			Train: 32, Test: 8, Classes: 4, Channels: 1, Size: 4, Seed: 7,
		},
		World: 2, Epochs: 2, BatchPerRank: 4, LR: 0.05,
	}
}

func TestValidateCatchesInconsistentSpecs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"unknown model kind", func(s *JobSpec) { s.Model.Kind = "transformer" }},
		{"class mismatch", func(s *JobSpec) { s.Model.Classes = 10 }},
		{"mlp input dim mismatch", func(s *JobSpec) { s.Model.Dims = []int{12, 8, 4} }},
		{"zero world", func(s *JobSpec) { s.World = 0 }},
		{"min_world above world", func(s *JobSpec) { s.MinWorld = 5 }},
		{"no epochs", func(s *JobSpec) { s.Epochs = 0 }},
		{"negative lr", func(s *JobSpec) { s.LR = -1 }},
		{"hybrid without frac", func(s *JobSpec) { s.KFAC = &KFACSpec{DistMode: "hybrid"} }},
		{"frac without hybrid", func(s *JobSpec) {
			s.KFAC = &KFACSpec{DistMode: "memopt", GradWorkerFrac: 0.5}
		}},
		{"bad precision", func(s *JobSpec) { s.KFAC = &KFACSpec{Precision: "fp16"} }},
		{"unknown compression", func(s *JobSpec) { s.KFAC = &KFACSpec{Compression: "qsgd"} }},
		{"topk without fraction", func(s *JobSpec) { s.KFAC = &KFACSpec{Compression: "topk"} }},
		{"topk fraction above 1", func(s *JobSpec) {
			s.KFAC = &KFACSpec{Compression: "topk", TopKFraction: 1.5}
		}},
		{"fraction without topk", func(s *JobSpec) {
			s.KFAC = &KFACSpec{Compression: "float16", TopKFraction: 0.1}
		}},
		{"no_error_feedback without codec", func(s *JobSpec) {
			s.KFAC = &KFACSpec{NoErrorFeedback: true}
		}},
		{"autotune_interval without autotune", func(s *JobSpec) {
			s.KFAC = &KFACSpec{AutotuneInterval: 2}
		}},
		{"chaos rank outside world", func(s *JobSpec) {
			s.Chaos = &ChaosSpec{KillRank: 2, KillAtEpoch: 0}
		}},
		{"chaos on 1-rank world", func(s *JobSpec) {
			s.World, s.MinWorld = 1, 1
			s.Chaos = &ChaosSpec{KillRank: 0, KillAtEpoch: 0}
		}},
	}
	for _, c := range cases {
		s := tinySpec()
		c.mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
		}
	}
	if err := tinySpec().Validate(); err != nil {
		t.Fatalf("baseline spec rejected: %v", err)
	}
}

// TestKFACSpecCompressionResolves pins the wire-name → Options mapping of
// the compression and autotune knobs.
func TestKFACSpecCompressionResolves(t *testing.T) {
	o, err := KFACSpec{Compression: "topk", TopKFraction: 0.1, Autotune: true, AutotuneInterval: 3}.options()
	if err != nil {
		t.Fatal(err)
	}
	if o.Compression == nil || o.Compression.Name() != "topk" {
		t.Errorf("topk spec resolved to codec %v", o.Compression)
	}
	if o.Autotune == nil || o.Autotune.Interval != 3 {
		t.Errorf("autotune spec resolved to %+v", o.Autotune)
	}
	o, err = KFACSpec{Compression: "float16", NoErrorFeedback: true}.options()
	if err != nil {
		t.Fatal(err)
	}
	if o.Compression == nil || o.Compression.Name() != "float16" || !o.NoErrorFeedback {
		t.Errorf("float16 bare spec resolved to %v / NoEF=%v", o.Compression, o.NoErrorFeedback)
	}
	o, err = KFACSpec{}.options()
	if err != nil || o.Compression != nil || o.Autotune != nil {
		t.Errorf("empty spec resolved to %v %+v (err %v)", o.Compression, o.Autotune, err)
	}
}

func TestAdmitWorkerQuota(t *testing.T) {
	s := tinySpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Admit(s, Fleet{Workers: 2}); err != nil {
		t.Errorf("2-worker job rejected by 2-worker fleet: %v", err)
	}
	err := Admit(s, Fleet{Workers: 1})
	if err == nil {
		t.Fatal("2-worker job admitted to 1-worker fleet")
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Errorf("rejection is %T, want *AdmissionError", err)
	}
	if !strings.Contains(err.Error(), "wants 2 workers") {
		t.Errorf("rejection %q does not name the quota", err)
	}
}

// The memory check models the actual distribution plan: a COMM-OPT job
// whose decompositions exceed the per-worker budget is rejected with the
// numbers named, while the same model under MEM-OPT (1/world of the
// resident footprint) fits.
func TestAdmitMemoryFootprintFollowsPlan(t *testing.T) {
	s := tinySpec()
	s.Model = ModelSpec{Kind: "mlp", Dims: []int{64, 64, 4}, Classes: 4}
	s.Data.Size = 8 // 1×8×8 = 64, matching the MLP input
	s.World = 4
	s.KFAC = &KFACSpec{DistMode: "commopt"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	refs, err := s.Model.FactorRefs()
	if err != nil {
		t.Fatal(err)
	}
	// Derive a budget between the two modes' worst ranks: MEM-OPT (owner-
	// only residency) fits, COMM-OPT (every factor on every rank) does not.
	worstOf := func(mode kfac.DistMode) int64 {
		plan := kfac.BuildPlan(kfac.RoundRobin, mode, 0, refs, s.World)
		var worst int64
		for _, elems := range plan.DecompElemsPerRank(refs) {
			if b := elems * decompBytesPerElem; b > worst {
				worst = b
			}
		}
		return worst
	}
	memNeed, commNeed := worstOf(kfac.MemOpt), worstOf(kfac.CommOpt)
	if memNeed >= commNeed {
		t.Fatalf("test premise broken: MEM-OPT worst rank %d ≥ COMM-OPT %d", memNeed, commNeed)
	}
	budget := (memNeed + commNeed) / 2

	fleet := Fleet{Workers: 8, MemoryPerWorker: budget}
	err = Admit(s, fleet)
	if err == nil {
		t.Fatal("COMM-OPT job admitted past the memory budget")
	}
	if !strings.Contains(err.Error(), "bytes of decomposition memory") ||
		!strings.Contains(err.Error(), "planner hint: dist_mode=") {
		t.Errorf("rejection %q should name the footprint and carry a planner hint", err)
	}

	// The hint contract: a FitsBudget placement, applied to the spec,
	// passes the same admission check that rejected the original.
	hint, hintErr := PlacementHint(s, fleet, simulate.DefaultTopology())
	if hintErr != nil {
		t.Fatalf("PlacementHint: %v", hintErr)
	}
	if !hint.FitsBudget {
		t.Fatalf("planner found no fitting candidate under budget %d: %+v", budget, hint)
	}
	hinted := *s
	hinted.KFAC = &KFACSpec{DistMode: hint.DistMode, GradWorkerFrac: hint.GradWorkerFrac}
	if err := Admit(&hinted, fleet); err != nil {
		t.Errorf("hinted configuration %+v rejected under the same budget: %v", hint, err)
	}

	memopt := *s
	memopt.KFAC = &KFACSpec{DistMode: "memopt"}
	if err := Admit(&memopt, fleet); err != nil {
		t.Errorf("MEM-OPT variant rejected under the same budget: %v", err)
	}

	// No K-FAC → no decomposition state → no memory check.
	plain := *s
	plain.KFAC = nil
	if err := Admit(&plain, Fleet{Workers: 8, MemoryPerWorker: 1}); err != nil {
		t.Errorf("non-K-FAC job rejected on K-FAC memory: %v", err)
	}
}

func TestAdmitEmptyFleet(t *testing.T) {
	s := tinySpec()
	if err := Admit(s, Fleet{}); err == nil {
		t.Error("job admitted to an empty fleet")
	}
}
