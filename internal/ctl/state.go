// Package ctl is the multi-job training control plane: the job spec and
// lifecycle state machine, a fair-share queue with per-job worker quotas
// over a shared fleet, an admission-control path that rejects jobs whose
// planned K-FAC memory footprint cannot fit the fleet before they start,
// and the daemon that executes admitted jobs through trainer.RunElastic
// (so a killed worker mid-job recovers without operator action). The kfacd
// binary wraps a Daemon in an HTTP JSON API; kfacctl is its client.
//
// See docs/ARCHITECTURE.md, "Control plane", for the state machine, the
// admission formula, the checkpoint-store layout, and the metrics
// streaming contract.
package ctl

import (
	"encoding/json"
	"fmt"
)

// State is a job's lifecycle position. The machine is
//
//	Queued → Admitted → Running → {Completed, Failed, Cancelled, Paused}
//
// with Paused → Queued on resume (re-admitted under the same quota
// accounting as a fresh job) and Cancelled reachable from every
// non-terminal state. Queued → Failed records an admission rejection.
type State int

const (
	// Queued: submitted and waiting for admission + free workers.
	Queued State = iota
	// Admitted: picked by the scheduler, workers reserved, launching.
	Admitted
	// Running: training (possibly across elastic recovery generations).
	Running
	// Completed: finished every configured epoch (terminal).
	Completed
	// Failed: admission rejection or an unrecoverable training error
	// (terminal; Job.Error names the cause).
	Failed
	// Cancelled: stopped by operator request via the cooperative
	// consensus-stop path (terminal).
	Cancelled
	// Paused: stopped by operator request with its latest checkpoint
	// retained; Resume re-queues it to continue from that checkpoint.
	Paused
)

var stateNames = map[State]string{
	Queued:    "queued",
	Admitted:  "admitted",
	Running:   "running",
	Completed: "completed",
	Failed:    "failed",
	Cancelled: "cancelled",
	Paused:    "paused",
}

// String returns the lowercase wire name of the state.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ParseState inverts String.
func ParseState(s string) (State, error) {
	for st, n := range stateNames {
		if n == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("ctl: unknown state %q", s)
}

// MarshalJSON encodes the state by name, keeping the API readable and the
// enum order free to change.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	st, err := ParseState(name)
	if err != nil {
		return err
	}
	*s = st
	return nil
}

// Terminal reports whether no further transition can leave the state.
func (s State) Terminal() bool {
	return s == Completed || s == Failed || s == Cancelled
}

// transitions is the legal-edge set of the lifecycle machine.
var transitions = map[State][]State{
	Queued:   {Admitted, Failed, Cancelled, Paused},
	Admitted: {Running, Failed, Cancelled},
	Running:  {Completed, Failed, Cancelled, Paused},
	Paused:   {Queued, Cancelled},
}

// CanTransition reports whether from → to is a legal lifecycle edge.
func CanTransition(from, to State) bool {
	for _, t := range transitions[from] {
		if t == to {
			return true
		}
	}
	return false
}
