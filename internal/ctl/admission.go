package ctl

import (
	"fmt"

	"repro/internal/kfac"
	"repro/internal/simulate"
)

// Fleet declares the shared worker pool the daemon schedules over: how many
// workers exist and how much memory each one offers K-FAC's resident
// decomposition state.
type Fleet struct {
	// Workers is the total worker count; the sum of running jobs' World
	// quotas never exceeds it.
	Workers int `json:"workers"`
	// MemoryPerWorker is each worker's declared byte budget for resident
	// eigendecompositions. 0 disables the memory check (workers-only
	// admission).
	MemoryPerWorker int64 `json:"memory_per_worker,omitempty"`
}

// decompBytesPerElem is the storage width of one resident decomposition
// element. Decompositions are held in float64 even under the f32 compute
// path (only Gram products and preconditioning matmuls narrow), so
// admission always charges 8 bytes.
const decompBytesPerElem = 8

// AdmissionError reports why a job cannot fit the fleet. It is terminal:
// the job's footprint is a property of its spec, so waiting cannot cure it.
type AdmissionError struct {
	// Reason is the human-readable rejection, naming the numbers involved.
	Reason string
}

// Error returns the rejection reason.
func (e *AdmissionError) Error() string { return "ctl: admission rejected: " + e.Reason }

// Admit decides whether a validated spec can ever run on the fleet. It
// checks the worker quota (World ≤ fleet.Workers) and, when the fleet
// declares per-worker memory, models the job's exact K-FAC distribution
// plan via kfac.BuildPlan and rejects if any rank's resident decomposition
// footprint (Plan.DecompElemsPerRank × 8 bytes) exceeds the budget. Jobs
// without K-FAC skip the memory check. A nil return admits the job; a
// non-nil return is an *AdmissionError.
func Admit(spec *JobSpec, fleet Fleet) error {
	if fleet.Workers < 1 {
		return &AdmissionError{Reason: "fleet has no workers"}
	}
	if spec.World > fleet.Workers {
		return &AdmissionError{Reason: fmt.Sprintf(
			"job wants %d workers but the fleet has %d", spec.World, fleet.Workers)}
	}
	if spec.KFAC == nil || fleet.MemoryPerWorker <= 0 {
		return nil
	}
	refs, err := spec.Model.FactorRefs()
	if err != nil {
		return &AdmissionError{Reason: err.Error()}
	}
	mode, err := spec.KFAC.distMode()
	if err != nil {
		return &AdmissionError{Reason: err.Error()}
	}
	plan := kfac.BuildPlan(kfac.RoundRobin, mode, spec.KFAC.GradWorkerFrac, refs, spec.World)
	var worst int64
	var worstRank int
	for r, elems := range plan.DecompElemsPerRank(refs) {
		if b := elems * decompBytesPerElem; b > worst {
			worst, worstRank = b, r
		}
	}
	if worst > fleet.MemoryPerWorker {
		reason := fmt.Sprintf(
			"K-FAC plan (%s, world %d) needs %d bytes of decomposition memory on rank %d "+
				"but each worker offers %d",
			plan.Mode, spec.World, worst, worstRank, fleet.MemoryPerWorker)
		// The scale planner prices the full candidate grid with the same
		// memory arithmetic; when a configuration fits, name it so the
		// rejection is actionable in one spec edit.
		if hint, err := PlacementHint(spec, fleet, simulate.DefaultTopology()); err == nil && hint.FitsBudget {
			reason += fmt.Sprintf("; planner hint: dist_mode=%s", hint.DistMode)
			if hint.GradWorkerFrac > 0 {
				reason += fmt.Sprintf(" grad_worker_frac=%g", hint.GradWorkerFrac)
			}
			reason += fmt.Sprintf(" fits at %d bytes/worker", hint.PredictedMemBytes)
		} else {
			reason += "; use dist_mode memopt or hybrid, or shrink the model"
		}
		return &AdmissionError{Reason: reason}
	}
	return nil
}
