package ctl

import (
	"encoding/json"
	"testing"
)

// The lifecycle machine: names round-trip, terminal states have no exits,
// and the edge set matches the documented diagram.
func TestStateNamesRoundTrip(t *testing.T) {
	for st := range stateNames {
		back, err := ParseState(st.String())
		if err != nil || back != st {
			t.Errorf("ParseState(%q) = %v, %v", st.String(), back, err)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var dec State
		if err := json.Unmarshal(b, &dec); err != nil || dec != st {
			t.Errorf("JSON round trip of %v = %v, %v", st, dec, err)
		}
	}
	if _, err := ParseState("exploded"); err == nil {
		t.Error("ParseState accepted an unknown name")
	}
}

func TestTerminalStatesHaveNoExits(t *testing.T) {
	for st := range stateNames {
		if st.Terminal() != (len(transitions[st]) == 0) {
			t.Errorf("%v: Terminal()=%v but has %d exits", st, st.Terminal(), len(transitions[st]))
		}
	}
}

func TestTransitionEdges(t *testing.T) {
	legal := []struct{ from, to State }{
		{Queued, Admitted}, {Queued, Failed}, {Queued, Cancelled}, {Queued, Paused},
		{Admitted, Running}, {Admitted, Failed}, {Admitted, Cancelled},
		{Running, Completed}, {Running, Failed}, {Running, Cancelled}, {Running, Paused},
		{Paused, Queued}, {Paused, Cancelled},
	}
	for _, e := range legal {
		if !CanTransition(e.from, e.to) {
			t.Errorf("edge %v → %v should be legal", e.from, e.to)
		}
	}
	illegal := []struct{ from, to State }{
		{Queued, Running}, {Queued, Completed},
		{Admitted, Paused}, {Admitted, Queued},
		{Running, Queued}, {Running, Admitted},
		{Paused, Running}, {Paused, Completed},
		{Completed, Queued}, {Failed, Queued}, {Cancelled, Queued},
	}
	for _, e := range illegal {
		if CanTransition(e.from, e.to) {
			t.Errorf("edge %v → %v should be illegal", e.from, e.to)
		}
	}
}
