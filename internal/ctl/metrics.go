package ctl

import (
	"sync"
	"time"
)

// StepMetric is one optimizer step of one job, as streamed to API clients.
// Values come straight from the trainer's StepInfo hook payload (rank 0's
// view) — no side channels.
type StepMetric struct {
	// Seq numbers the metric within the job's whole lifetime (1-based,
	// strictly increasing across pause/resume and recovery generations) —
	// the cursor of the streaming contract: clients poll with
	// ?since=<last seen Seq> and receive only newer entries.
	Seq int `json:"seq"`
	// Epoch is the zero-based training epoch of the step.
	Epoch int `json:"epoch"`
	// Iteration is the global optimizer-step count after the step.
	Iteration int `json:"iteration"`
	// LR is the learning rate the step used.
	LR float64 `json:"lr"`
	// Loss is rank 0's training loss for the step.
	Loss float64 `json:"loss"`
	// StepNS is the step's wall time on rank 0, in nanoseconds.
	StepNS int64 `json:"step_ns"`
	// UnixNano timestamps when the daemon recorded the metric.
	UnixNano int64 `json:"unix_nano"`
}

// metricsBuffer is a bounded ring of a job's most recent step metrics.
// Appends never block training; once full, the oldest entries are
// overwritten (clients that poll slower than capacity/step-rate observe a
// gap in Seq, which the streaming contract makes detectable).
type metricsBuffer struct {
	mu   sync.Mutex
	ring []StepMetric
	next int // ring slot of the next append
	seq  int // last issued Seq
}

func newMetricsBuffer(capacity int) *metricsBuffer {
	if capacity < 1 {
		capacity = 1024
	}
	return &metricsBuffer{ring: make([]StepMetric, 0, capacity)}
}

// append records one step, stamping its Seq and arrival time.
func (b *metricsBuffer) append(m StepMetric) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	m.Seq = b.seq
	m.UnixNano = time.Now().UnixNano()
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, m)
		b.next = len(b.ring) % cap(b.ring)
		return
	}
	b.ring[b.next] = m
	b.next = (b.next + 1) % cap(b.ring)
}

// since returns every retained metric with Seq > after, oldest first.
func (b *metricsBuffer) since(after int) []StepMetric {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]StepMetric, 0, len(b.ring))
	// Oldest-first walk: the ring is either not yet full (slots 0..len-1 in
	// order) or full with the oldest entry at next.
	start := 0
	if len(b.ring) == cap(b.ring) {
		start = b.next
	}
	for i := 0; i < len(b.ring); i++ {
		m := b.ring[(start+i)%len(b.ring)]
		if m.Seq > after {
			out = append(out, m)
		}
	}
	return out
}

// total returns the count of metrics ever recorded (≥ len(retained)).
func (b *metricsBuffer) total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}
