package ctl

import (
	"context"
	"time"
)

// Result summarizes a finished (or paused) job's training outcome.
type Result struct {
	// Epochs is how many epochs completed across all generations.
	Epochs int `json:"epochs"`
	// Iterations is the global optimizer-step count reached.
	Iterations int `json:"iterations"`
	// FinalTrainLoss is the last completed epoch's mean training loss.
	FinalTrainLoss float64 `json:"final_train_loss,omitempty"`
	// FinalTestAcc is the last completed epoch's test accuracy.
	FinalTestAcc float64 `json:"final_test_acc,omitempty"`
	// Generations is how many elastic generations the run spanned (1 =
	// no failures).
	Generations int `json:"generations,omitempty"`
}

// job is the daemon's mutable record of one submitted job. All fields
// beyond the immutables (id, spec, submit time, metrics buffer pointer)
// are guarded by the owning Daemon's mutex.
type job struct {
	id     string
	spec   *JobSpec
	state  State
	err    string // rejection or failure cause when state == Failed
	result *Result

	submitted time.Time
	started   time.Time // first entry into Running
	finished  time.Time // entry into a terminal state or Paused

	metrics *metricsBuffer

	// cancel tears down the running attempt's context; the two request
	// flags disambiguate why it fired.
	cancel          context.CancelFunc
	pauseRequested  bool
	cancelRequested bool
}

// JobView is the immutable JSON projection of a job the API serves.
type JobView struct {
	// ID is the daemon-assigned identifier ("j-0001", ...).
	ID string `json:"id"`
	// Name echoes the spec's human label.
	Name string `json:"name"`
	// User is the fair-share principal.
	User string `json:"user"`
	// State is the lifecycle position at snapshot time.
	State State `json:"state"`
	// World is the job's worker quota.
	World int `json:"world"`
	// Error is the admission-rejection or failure cause, if any.
	Error string `json:"error,omitempty"`
	// Submitted, Started, and Finished are lifecycle timestamps
	// (zero when not yet reached).
	Submitted time.Time `json:"submitted"`
	// Started is the first entry into Running.
	Started time.Time `json:"started,omitzero"`
	// Finished is the entry into a terminal state or Paused.
	Finished time.Time `json:"finished,omitzero"`
	// Metrics is the total number of step metrics recorded so far.
	Metrics int `json:"metrics"`
	// Result carries the training outcome once available.
	Result *Result `json:"result,omitempty"`
	// Spec is the full submitted declaration.
	Spec *JobSpec `json:"spec,omitempty"`
}

// view snapshots the job. Caller holds the daemon mutex; withSpec controls
// whether the full spec rides along (inspect) or stays off the wire (list).
func (j *job) view(withSpec bool) JobView {
	v := JobView{
		ID:        j.id,
		Name:      j.spec.Name,
		User:      j.spec.User,
		State:     j.state,
		World:     j.spec.World,
		Error:     j.err,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Metrics:   j.metrics.total(),
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	if withSpec {
		v.Spec = j.spec
	}
	return v
}
