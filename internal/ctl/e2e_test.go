package ctl

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ckptstore"
)

// TestControlPlaneEndToEnd drives the whole control plane through the HTTP
// API exactly as kfacctl would — an in-process kfacd (httptest server over
// NewHandler) with a 4-worker fleet and MaxPerJob=2 retention:
//
//  1. two concurrent jobs from different users run to completion under
//     fair scheduling, streaming metrics and filing checkpoints;
//  2. an oversized third job is rejected at admission with a descriptive
//     error (and recorded for audit);
//  3. a job with a scripted worker kill recovers through RunElastic and
//     completes;
//  4. identical twin jobs share store objects (content-address dedup) and
//     retention pruned each job to its newest two checkpoints;
//  5. pause parks a running job with its checkpoint retained and resume
//     completes it; cancel lands a running job in Cancelled through the
//     consensus-stop path.
func TestControlPlaneEndToEnd(t *testing.T) {
	d, err := NewDaemon(Config{
		Fleet:      Fleet{Workers: 4},
		StoreDir:   t.TempDir(),
		ScratchDir: t.TempDir(),
		Heartbeat:  fastHeartbeat,
		Retention:  ckptstore.Policy{MaxPerJob: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(NewHandler(d))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	// --- 1. Two concurrent jobs (identical specs → dedup material for 4).
	twinA, err := c.Submit(ctx, runnableSpec("twin-a", "alice", 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	twinB, err := c.Submit(ctx, runnableSpec("twin-b", "bob", 2, 3))
	if err != nil {
		t.Fatal(err)
	}

	// --- 2. Oversized job: rejected with the quota named.
	_, err = c.Submit(ctx, runnableSpec("too-big", "carol", 64, 1))
	if err == nil {
		t.Fatal("oversized job accepted over the API")
	}
	if !strings.Contains(err.Error(), "wants 64 workers") ||
		!strings.Contains(err.Error(), "has 4") {
		t.Errorf("rejection %q does not name the quota mismatch", err)
	}

	for _, id := range []string{twinA.ID, twinB.ID} {
		v, err := c.WaitSettled(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != Completed {
			t.Fatalf("job %s settled in %v (err %q), want completed", id, v.State, v.Error)
		}
		ms, err := c.Metrics(ctx, id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) == 0 || ms[len(ms)-1].Iteration != v.Result.Iterations {
			t.Errorf("job %s metrics cover %d entries (last iter %d), want through iteration %d",
				id, len(ms), ms[len(ms)-1].Iteration, v.Result.Iterations)
		}
	}
	// The audit record of the rejection is visible in the listing.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sawRejected bool
	for _, v := range jobs {
		if v.Name == "too-big" && v.State == Failed && strings.Contains(v.Error, "workers") {
			sawRejected = true
		}
	}
	if !sawRejected {
		t.Errorf("rejected job missing from the listing: %+v", jobs)
	}

	// --- 4. Dedup + retention, via the API's store stats and checkpoints.
	st, err := c.StoreStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refs <= st.Objects {
		t.Errorf("store stats %+v: identical twins should dedup (refs > objects)", st)
	}
	for _, id := range []string{twinA.ID, twinB.ID} {
		cks, err := c.Checkpoints(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(cks) != 2 {
			t.Errorf("job %s holds %d checkpoints under MaxPerJob=2, want 2", id, len(cks))
		}
		if len(cks) > 0 && len(cks[len(cks)-1].Sum) != 64 {
			t.Errorf("checkpoint sum %q is not 64-hex", cks[len(cks)-1].Sum)
		}
	}
	// Twins' checkpoint sums match position-wise: content addressing at
	// work across jobs.
	cksA, _ := c.Checkpoints(ctx, twinA.ID)
	cksB, _ := c.Checkpoints(ctx, twinB.ID)
	for i := range cksA {
		if i < len(cksB) && cksA[i].Sum != cksB[i].Sum {
			t.Errorf("twin checkpoint %d differs: %s vs %s", i, cksA[i].Sum, cksB[i].Sum)
		}
	}

	// --- 3. Scripted kill mid-job: elastic recovery completes the run.
	chaotic := runnableSpec("chaotic", "alice", 2, 3)
	chaotic.Chaos = &ChaosSpec{Seed: 13, KillRank: 1, KillAtEpoch: 1}
	cv, err := c.Submit(ctx, chaotic)
	if err != nil {
		t.Fatal(err)
	}
	cdone, err := c.WaitSettled(ctx, cv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cdone.State != Completed {
		t.Fatalf("chaos job settled in %v (err %q), want completed", cdone.State, cdone.Error)
	}
	if cdone.Result.Generations != 2 || cdone.Result.Epochs != 3 {
		t.Errorf("chaos result %+v, want 3 epochs over 2 generations", cdone.Result)
	}

	// --- 5a. Pause → checkpoint retained → resume → completed.
	pv, err := c.Submit(ctx, runnableSpec("pausable", "bob", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	for { // wait for durable progress so resume has something to load
		cks, err := c.Checkpoints(ctx, pv.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(cks) > 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Pause(ctx, pv.ID); err != nil {
		t.Fatal(err)
	}
	paused, err := c.WaitSettled(ctx, pv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if paused.State != Paused {
		t.Fatalf("job settled in %v, want paused", paused.State)
	}
	if cks, _ := c.Checkpoints(ctx, pv.ID); len(cks) == 0 {
		t.Fatal("paused job lost its checkpoints")
	}
	if _, err := c.Resume(ctx, pv.ID); err != nil {
		t.Fatal(err)
	}
	resumed, err := c.WaitSettled(ctx, pv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.State != Completed || resumed.Result.Epochs != 40 {
		t.Fatalf("resumed job: %v with %+v, want completed with 40 epochs", resumed.State, resumed.Result)
	}

	// --- 5b. Cancel a running job: terminal Cancelled via consensus stop.
	dv, err := c.Submit(ctx, runnableSpec("doomed", "alice", 2, 40))
	if err != nil {
		t.Fatal(err)
	}
	for { // ensure it is actually running before cancelling
		v, err := c.Job(ctx, dv.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == Running {
			break
		}
		if err := ctx.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, dv.ID); err != nil {
		t.Fatal(err)
	}
	killed, err := c.WaitSettled(ctx, dv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if killed.State != Cancelled {
		t.Fatalf("cancelled job settled in %v, want cancelled", killed.State)
	}
	// Verbs against settled jobs are clean API errors, not surprises.
	if _, err := c.Resume(ctx, dv.ID); err == nil {
		t.Error("resume of a cancelled job succeeded")
	}
	if _, err := c.Job(ctx, "j-9999"); err == nil {
		t.Error("inspect of an unknown job succeeded")
	}
}
