package ctl

import (
	"fmt"

	"repro/internal/kfac"
	"repro/internal/simulate"
)

// Placement is the admission layer's topology-aware placement hint: the
// scale planner's pick for a job's distribution configuration, priced on a
// cluster topology against the fleet's per-worker memory budget. It is
// advisory — admission still judges the spec the operator submitted — but
// a rejected job's error carries the hint so the fix is one spec edit away.
type Placement struct {
	// DistMode is the suggested dist_mode in spec wire syntax (commopt,
	// memopt, hybrid).
	DistMode string `json:"dist_mode"`
	// GradWorkerFrac is the suggested hybrid fraction (0 outside hybrid).
	GradWorkerFrac float64 `json:"grad_worker_frac,omitempty"`
	// GroupSize is the suggested hierarchical-allreduce group size (0 =
	// flat ring).
	GroupSize int `json:"group_size,omitempty"`
	// PredictedStepSec is the model's amortized per-iteration cost.
	PredictedStepSec float64 `json:"predicted_step_sec"`
	// PredictedMemBytes is the worst per-rank resident decomposition
	// footprint — the same arithmetic Admit charges (elements × 8 bytes).
	PredictedMemBytes int64 `json:"predicted_mem_bytes"`
	// FitsBudget reports whether the pick respects the fleet's per-worker
	// memory budget; false means even the minimum-memory configuration
	// exceeds it and the job can never fit.
	FitsBudget bool `json:"fits_budget"`
}

// specModeToken maps a planner mode to the spec's dist_mode wire syntax.
func specModeToken(m kfac.DistMode) string {
	switch m {
	case kfac.CommOpt:
		return "commopt"
	case kfac.MemOpt:
		return "memopt"
	case kfac.Hybrid:
		return "hybrid"
	}
	return "auto"
}

// PlacementHint runs the scale planner over a K-FAC job's exact factor
// geometry: candidates (DistMode × GradWorkerFrac × GroupSize) are priced
// on topo with the fleet's MemoryPerWorker as the budget, and the cheapest
// fitting configuration is returned. The memory side uses the identical
// plan arithmetic Admit enforces, so a hint with FitsBudget=true is
// guaranteed to pass admission. Jobs without K-FAC have no plan to hint.
func PlacementHint(spec *JobSpec, fleet Fleet, topo simulate.Topology) (*Placement, error) {
	if spec.KFAC == nil {
		return nil, fmt.Errorf("ctl: placement hints apply only to K-FAC jobs")
	}
	refs, err := spec.Model.FactorRefs()
	if err != nil {
		return nil, err
	}
	model := simulate.NewPlanModel(topo, simulate.DefaultV100Cluster())
	dec := kfac.ResolveAutoPlan(kfac.AutoPlannerConfig{
		Model:             model,
		MemoryBudgetBytes: fleet.MemoryPerWorker,
	}, kfac.RoundRobin, refs, spec.World)
	return &Placement{
		DistMode:          specModeToken(dec.Mode),
		GradWorkerFrac:    dec.GradWorkerFrac,
		GroupSize:         dec.GroupSize,
		PredictedStepSec:  dec.PredictedStepSec,
		PredictedMemBytes: dec.PredictedMemBytes,
		FitsBudget:        !dec.OverBudget,
	}, nil
}
