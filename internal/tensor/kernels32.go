package tensor

// Float32 vector primitives behind the precision-pluggable kernel layer.
//
// Each primitive has a portable scalar implementation (always compiled; the
// conformance oracle) and, on amd64 without the purego build tag, an
// AVX2+FMA assembly implementation swapped in at init when the CPU supports
// it (see simd_amd64.go). The exported wrappers dispatch through package
// function variables so the choice is a single indirect call — measured
// ~10× on the 4-wide axpy kernel that dominates the K-FAC step.
//
// Numeric contract: the fast and scalar paths may round differently (FMA
// fuses the multiply-add; lane sums reassociate), so cross-implementation
// tests are tolerance-based, never bit-exact. The float64 paths of this
// package are untouched and stay bit-identical to their references.

// dotChunk32 bounds the number of float32 products summed in working
// precision before the chunk total is widened to float64: DotAcc32 combines
// chunk sums in float64, so worst-case float32 accumulation error stays
// O(dotChunk32·ε₃₂) regardless of the full inner-product length.
const dotChunk32 = 512

// Dispatch variables — overwritten by the amd64 SIMD init when available.
var (
	axpy32Impl   = axpy32Scalar
	dotAcc32Impl = dotAcc32Scalar
	foldAccImpl  = foldAccScalar
	rot32Impl    = rot32Scalar
	widenImpl    = widenScalar
	narrowImpl   = narrowScalar

	// kernelISA names the active implementation for logs and tests.
	kernelISA = "scalar"
)

// KernelISA reports which float32 kernel implementation is active:
// "scalar" (portable Go, and always under the purego build tag) or
// "avx2+fma" (amd64 assembly).
func KernelISA() string { return kernelISA }

// Axpy32 computes dst += a*src elementwise in float32. Slices must have
// equal length and must not overlap.
func Axpy32(dst, src []float32, a float32) {
	if len(dst) != len(src) {
		panic("tensor: Axpy32 length mismatch")
	}
	axpy32Impl(dst, src, a)
}

// DotAcc32 returns the inner product of a and b. Products are accumulated
// in working precision within chunks of at most dotChunk32 elements; chunk
// totals are summed in float64, bounding the accumulation error
// independently of the vector length (the "float32 compute, float64
// accumulate" discipline of the mixed-precision path).
func DotAcc32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: DotAcc32 length mismatch")
	}
	var s float64
	for len(a) > dotChunk32 {
		s += dotAcc32Impl(a[:dotChunk32], b[:dotChunk32])
		a, b = a[dotChunk32:], b[dotChunk32:]
	}
	return s + dotAcc32Impl(a, b)
}

// FoldAcc32 accumulates acc += float64(src) elementwise — the chunk-fold
// step of the float64-accumulating matmul kernels, and the widening
// gradient accumulation (W.Grad += widen(dW₃₂)) of the f32 layer backward
// passes. Slices must have equal length.
func FoldAcc32(acc []float64, src []float32) {
	if len(acc) != len(src) {
		panic("tensor: FoldAcc32 length mismatch")
	}
	foldAccImpl(acc, src)
}

// Rot32 applies the plane rotation (x, y) ← (c·x − s·y, s·x + c·y)
// elementwise — the vectorized row update of the float32 Jacobi
// eigendecomposition sweeps. Slices must have equal length and must not
// overlap.
func Rot32(x, y []float32, c, s float32) {
	if len(x) != len(y) {
		panic("tensor: Rot32 length mismatch")
	}
	rot32Impl(x, y, c, s)
}

// Widen overwrites dst with src converted to float64. Slices must have
// equal length.
func Widen(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Widen length mismatch")
	}
	widenImpl(dst, src)
}

// Narrow overwrites dst with src rounded to float32. Slices must have
// equal length.
func Narrow(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Narrow length mismatch")
	}
	narrowImpl(dst, src)
}

// axpy32Scalar is the portable dst += a*src with 4-way unrolling, mirroring
// the float64 axpy kernel.
func axpy32Scalar(dst, src []float32, a float32) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// dotAcc32Scalar accumulates one chunk's products directly in float64 with
// 4 partial sums — at chunk granularity this is at least as accurate as the
// SIMD path's float32 lanes, so it doubles as the conformance oracle.
func dotAcc32Scalar(a, b []float32) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < n; i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// foldAccScalar is the portable acc += widen(src).
func foldAccScalar(acc []float64, src []float32) {
	for i, v := range src {
		acc[i] += float64(v)
	}
}

// rot32Scalar is the portable plane rotation.
func rot32Scalar(x, y []float32, c, s float32) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// widenScalar is the portable float32 → float64 conversion.
func widenScalar(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// narrowScalar is the portable float64 → float32 rounding.
func narrowScalar(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}
