// Package tensor implements dense, row-major float64 tensors and the
// numerical kernels the rest of the repository builds on: elementwise
// arithmetic, reductions, blocked and goroutine-parallel matrix multiply,
// transposition, and the im2col/col2im transforms used by convolution.
//
// The package is deliberately small and allocation-conscious: a Tensor is a
// shape plus a flat []float64, most operations have an in-place or
// destination-passing variant, and the parallel kernels split work across
// runtime.GOMAXPROCS(0) goroutines only when the problem is large enough to
// amortize the spawn cost.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major tensor. Data holds the elements contiguously;
// Shape holds the extent of each dimension. A Tensor with an empty shape is a
// scalar with a single element.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it must have exactly the number of elements the
// shape implies.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Zeros is an alias for New, for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = 1
	}
	return t
}

// Full returns a tensor of the given shape filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Tensor {
	t := New(n, n)
	for i := 0; i < n; i++ {
		t.Data[i*n+i] = 1
	}
	return t
}

// Randn fills a new tensor of the given shape with samples from
// N(0, std²) drawn from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// RandUniform fills a new tensor with samples from U[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.Shape) }

// Rows returns the first dimension of a matrix.
func (t *Tensor) Rows() int { return t.Shape[0] }

// Cols returns the second dimension of a matrix.
func (t *Tensor) Cols() int { return t.Shape[1] }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v to the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled adds a*o elementwise into t (axpy).
func (t *Tensor) AddScaled(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
}

// Add adds o elementwise into t.
func (t *Tensor) Add(o *Tensor) { t.AddScaled(1, o) }

// Sub subtracts o elementwise from t.
func (t *Tensor) Sub(o *Tensor) { t.AddScaled(-1, o) }

// MulElem multiplies t by o elementwise in place.
func (t *Tensor) MulElem(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: MulElem size mismatch")
	}
	for i := range t.Data {
		t.Data[i] *= o.Data[i]
	}
}

// Lerp sets t = a*t + (1-a)*o, the running-average update used for
// K-FAC factor accumulation (Equations 16–17 of the paper).
func (t *Tensor) Lerp(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Lerp size mismatch")
	}
	b := 1 - a
	for i := range t.Data {
		t.Data[i] = a*t.Data[i] + b*o.Data[i]
	}
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range t.Data {
		s += t.Data[i] * o.Data[i]
	}
	return s
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the maximum element. Panics on empty tensors.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on empty tensors.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns the index of the maximum element in row r of a matrix.
func (t *Tensor) ArgMaxRow(r int) int {
	if t.NDim() != 2 {
		panic("tensor: ArgMaxRow requires a matrix")
	}
	cols := t.Shape[1]
	row := t.Data[r*cols : (r+1)*cols]
	best := 0
	for j := 1; j < cols; j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// Row returns a slice view of row r of a matrix.
func (t *Tensor) Row(r int) []float64 {
	if t.NDim() != 2 {
		panic("tensor: Row requires a matrix")
	}
	cols := t.Shape[1]
	return t.Data[r*cols : (r+1)*cols]
}

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Equal reports whether t and o have the same shape and all elements within
// tol of each other.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) > 64 {
		return fmt.Sprintf("Tensor%v{n=%d, mean=%.4g, norm=%.4g}",
			t.Shape, len(t.Data), t.Mean(), t.Norm2())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v%v", t.Shape, t.Data)
	return b.String()
}
