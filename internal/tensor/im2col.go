package tensor

// Im2Col lowers a batched image tensor to the matrix used by GEMM-based
// convolution. Input x has shape [N, C, H, W]; the result has shape
// [N*outH*outW, C*kh*kw] where each row is the receptive field of one
// output position. With the kernel flattened to [C*kh*kw, outC] the
// convolution is a single matrix multiply — the same lowering cuDNN and
// PyTorch's unfold use, and the reason K-FAC's A factor for a Conv2D layer
// has dimension C*kh*kw (+1 with bias): each im2col row is one "activation"
// sample.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(n*outH*outW, c*kh*kw)
	Im2ColInto(cols, x, kh, kw, stride, pad)
	return cols
}

// Im2ColInto is Im2Col writing into a caller-provided destination of shape
// [N*outH*outW, C*kh*kw]. The destination is fully overwritten (padding
// positions are zeroed explicitly), so reused workspace buffers are safe.
func Im2ColInto(cols, x *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if cols.Shape[0] != n*outH*outW || cols.Shape[1] != c*kh*kw {
		panic("tensor: Im2ColInto shape mismatch")
	}
	cols.Zero()
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - pad
				row := cols.Data[((img*outH+oy)*outW+ox)*colW:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							// Entire kernel row is padding: leave zeros.
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								row[idx] = x.Data[rowBase+ix]
							}
							idx++
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters the column matrix back into image space, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used for the
// input-gradient of convolution. cols has shape [N*outH*outW, C*kh*kw]; the
// result has shape [N, C, H, W].
func Col2Im(cols *Tensor, n, c, h, w, kh, kw, stride, pad int) *Tensor {
	x := New(n, c, h, w)
	Col2ImInto(x, cols, kh, kw, stride, pad)
	return x
}

// Col2ImInto is Col2Im accumulating into a caller-provided [N, C, H, W]
// destination, which it zeroes first.
func Col2ImInto(x, cols *Tensor, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	x.Zero()
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - pad
				row := cols.Data[((img*outH+oy)*outW+ox)*colW:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								x.Data[rowBase+ix] += row[idx]
							}
							idx++
						}
					}
				}
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution or pooling
// window of size k with the given stride and padding applied to extent in.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
