package tensor

// parallelThreshold is the minimum number of multiply-adds below which the
// matmul kernels run single-threaded; dispatching pool work for tiny
// products costs more than it saves.
const parallelThreshold = 64 * 64 * 64

// blockSize is the cache-blocking tile edge for the inner kernel. 64×64
// float64 tiles (32 KiB) fit comfortably in L1/L2 on current hardware.
const blockSize = 64

// MatMul returns a × b for matrices a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic("tensor: MatMul inner dimension mismatch")
	}
	n := b.Shape[1]
	dst := New(m, n)
	MatMulInto(dst, a, b)
	return dst
}

// MatMulInto computes dst = a × b, reusing dst's storage. dst must be m×n
// and must not alias a or b. Large products are split across the shared
// compute pool (sched.Shared) with bit-identical results to a serial run.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulInto shape mismatch")
	}
	dst.Zero()
	runKernel(kindMatMul, dst.Data, a.Data, b.Data, m, k, n, m*n*k)
}

// matmulRange computes rows [lo,hi) of dst = a×b with i-k-j loop order and
// k-blocking. The i-k-j order streams b rows sequentially, which the
// hardware prefetcher handles well, and accumulates into dst rows.
func matmulRange(dst, a, b []float64, lo, hi, k, n int) {
	for kb := 0; kb < k; kb += blockSize {
		kmax := kb + blockSize
		if kmax > k {
			kmax = k
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			for kk := kb; kk < kmax; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				brow := b[kk*n : (kk+1)*n]
				axpy(drow, brow, av)
			}
		}
	}
}

// axpy computes dst += a*src with 4-way unrolling.
func axpy(dst, src []float64, a float64) {
	n := len(dst)
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += a * src[i]
		dst[i+1] += a * src[i+1]
		dst[i+2] += a * src[i+2]
		dst[i+3] += a * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += a * src[i]
	}
}

// MatMulT1 returns aᵀ × b for a (k×m) and b (k×n): the m×n product of a's
// transpose with b. Used for weight-gradient and factor computation
// (e.g. A = aᵀa / batch) without materializing the transpose.
func MatMulT1(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic("tensor: MatMulT1 inner dimension mismatch")
	}
	n := b.Shape[1]
	dst := New(m, n)
	MatMulT1Into(dst, a, b)
	return dst
}

// MatMulT1Into computes dst = aᵀ × b into dst (m×n), splitting large
// products across the shared compute pool.
func MatMulT1Into(dst, a, b *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulT1Into shape mismatch")
	}
	dst.Zero()
	runKernel(kindMatMulT1, dst.Data, a.Data, b.Data, m, k, n, m*n*k)
}

// matmulT1Range computes rows [lo,hi) of dst = aᵀb where a is k×m
// (so aᵀ is m×k) and b is k×n.
func matmulT1Range(dst, a, b []float64, lo, hi, k, m, n int) {
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpy(dst[i*n:(i+1)*n], brow, av)
		}
	}
}

// MatMulT2 returns a × bᵀ for a (m×k) and b (n×k).
func MatMulT2(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[1] != k {
		panic("tensor: MatMulT2 inner dimension mismatch")
	}
	n := b.Shape[0]
	dst := New(m, n)
	MatMulT2Into(dst, a, b)
	return dst
}

// MatMulT2Into computes dst = a × bᵀ into dst (m×n) where b is n×k,
// splitting large products across the shared compute pool.
func MatMulT2Into(dst, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulT2Into shape mismatch")
	}
	runKernel(kindMatMulT2, dst.Data, a.Data, b.Data, m, k, n, m*n*k)
}

// matmulT2Range computes rows [lo,hi) of dst = a×bᵀ. Both a's row i and
// b's row j are contiguous, so this is a sequence of dot products.
func matmulT2Range(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = dotUnroll(arow, b[j*k:(j+1)*k])
		}
	}
}

// dotUnroll returns the dot product of equal-length slices with 4 partial
// accumulators to break the dependency chain.
func dotUnroll(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Transpose returns the transpose of matrix a.
func Transpose(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	t := New(n, m)
	const tb = 32 // tile edge for cache-friendly transposition
	for ib := 0; ib < m; ib += tb {
		imax := ib + tb
		if imax > m {
			imax = m
		}
		for jb := 0; jb < n; jb += tb {
			jmax := jb + tb
			if jmax > n {
				jmax = n
			}
			for i := ib; i < imax; i++ {
				for j := jb; j < jmax; j++ {
					t.Data[j*m+i] = a.Data[i*n+j]
				}
			}
		}
	}
	return t
}

// MatVec returns a × x for matrix a (m×n) and vector x (n).
func MatVec(a, x *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if x.Len() != n {
		panic("tensor: MatVec dimension mismatch")
	}
	y := New(m)
	for i := 0; i < m; i++ {
		y.Data[i] = dotUnroll(a.Data[i*n:(i+1)*n], x.Data)
	}
	return y
}

// Outer returns the outer product x yᵀ of vectors x (m) and y (n).
func Outer(x, y *Tensor) *Tensor {
	m, n := x.Len(), y.Len()
	t := New(m, n)
	for i := 0; i < m; i++ {
		xi := x.Data[i]
		row := t.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] = xi * y.Data[j]
		}
	}
	return t
}
