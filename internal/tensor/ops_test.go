package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumAxis(t *testing.T) {
	m := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
	}, 2, 3)
	col := SumAxis0(m)
	for i, want := range []float64{5, 7, 9} {
		if col.Data[i] != want {
			t.Fatalf("SumAxis0 = %v", col.Data)
		}
	}
	row := SumAxis1(m)
	for i, want := range []float64{6, 15} {
		if row.Data[i] != want {
			t.Fatalf("SumAxis1 = %v", row.Data)
		}
	}
}

func TestMeanVarAxis0(t *testing.T) {
	m := FromSlice([]float64{
		1, 10,
		3, 10,
	}, 2, 2)
	mean := MeanAxis0(m)
	if mean.Data[0] != 2 || mean.Data[1] != 10 {
		t.Fatalf("MeanAxis0 = %v", mean.Data)
	}
	v := VarAxis0(m)
	if v.Data[0] != 1 || v.Data[1] != 0 {
		t.Fatalf("VarAxis0 = %v", v.Data)
	}
}

func TestSliceRowsAndConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 6, 3, 2)
	a := SliceRows(x, 0, 2)
	b := SliceRows(x, 2, 6)
	back := ConcatRows(a, b)
	if !back.Equal(x, 0) {
		t.Error("slice+concat does not round trip")
	}
	if a.Shape[0] != 2 || b.Shape[0] != 4 {
		t.Errorf("slice shapes: %v %v", a.Shape, b.Shape)
	}
}

func TestSliceRowsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SliceRows(New(3, 2), 1, 4)
}

func TestConcatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConcatRows(New(2, 3), New(2, 4))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 3, 5, 7) // large values stress stability
	p := Softmax(x)
	for i := 0; i < 5; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("softmax out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxInvariantToShift(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 1, 2, 6)
		shifted := x.Clone()
		for i := range shifted.Data {
			shifted.Data[i] += 123.456
		}
		return Softmax(x).Equal(Softmax(shifted), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpMatchesDirect(t *testing.T) {
	x := FromSlice([]float64{0, math.Log(2), math.Log(3)}, 1, 3)
	lse := LogSumExpRows(x)
	if math.Abs(lse.Data[0]-math.Log(6)) > 1e-12 {
		t.Errorf("LSE = %v, want ln 6", lse.Data[0])
	}
	// Stability with huge values.
	big := FromSlice([]float64{1000, 1000}, 1, 2)
	lse = LogSumExpRows(big)
	if math.IsInf(lse.Data[0], 0) || math.Abs(lse.Data[0]-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("LSE big = %v", lse.Data[0])
	}
}

func TestPad2D(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Data = []float64{1, 2, 3, 4}
	p := Pad2D(x, 1)
	if p.Shape[2] != 4 || p.Shape[3] != 4 {
		t.Fatalf("padded shape = %v", p.Shape)
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 1, 1) != 1 || p.At(0, 0, 2, 2) != 4 {
		t.Errorf("padding layout wrong: %v", p.Data)
	}
	if p.Sum() != x.Sum() {
		t.Error("padding must preserve mass")
	}
	same := Pad2D(x, 0)
	if !same.Equal(x, 0) {
		t.Error("p=0 should copy")
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float64{-5, 0.5, 5}, 3)
	x.Clamp(-1, 1)
	want := []float64{-1, 0.5, 1}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatalf("Clamp = %v", x.Data)
		}
	}
}
