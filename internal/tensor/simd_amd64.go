//go:build amd64 && !purego

package tensor

// AVX2+FMA implementations of the float32 kernel primitives
// (simd_amd64.s), swapped into the dispatch variables at init when the CPU
// and OS support them. Build with -tags purego to keep the portable scalar
// path (the conformance oracle) on any hardware.

//go:noescape
func axpy32AVX(dst, src []float32, a float32)

//go:noescape
func dotAcc32AVX(a, b []float32) float64

//go:noescape
func foldAccAVX(acc []float64, src []float32)

//go:noescape
func rot32AVX(x, y []float32, c, s float32)

//go:noescape
func widenAVX(dst []float64, src []float32)

//go:noescape
func narrowAVX(dst []float32, src []float64)

// cpuidRaw executes CPUID with the given leaf/subleaf.
func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (the enabled XSAVE state mask).
func xgetbv0() (eax, edx uint32)

// cpuHasAVX2FMA reports whether the CPU supports AVX2 and FMA and the OS
// has enabled YMM state saving (OSXSAVE + XCR0 bits 1–2) — the full
// precondition for the kernels in simd_amd64.s.
func cpuHasAVX2FMA() bool {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func init() {
	if cpuHasAVX2FMA() {
		axpy32Impl = axpy32AVX
		dotAcc32Impl = dotAcc32AVX
		foldAccImpl = foldAccAVX
		rot32Impl = rot32AVX
		widenImpl = widenAVX
		narrowImpl = narrowAVX
		kernelISA = "avx2+fma"
	}
}
