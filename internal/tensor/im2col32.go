package tensor

// Float32 twins of the im2col/col2im lowering. The forward direction stays
// entirely in float32 (it only moves data, never sums it); the backward
// scatter widens to float64 because overlapping receptive fields accumulate
// many contributions per pixel — the same "float32 compute, float64
// accumulate" rule the matmul kernels follow.

// Im2ColInto32 lowers the [N, C, H, W] float32 image x into the
// caller-provided [N*outH*outW, C*kh*kw] column matrix — the float32 twin
// of Im2ColInto. The destination is fully overwritten (padding positions
// are zeroed explicitly), so reused workspace buffers are safe.
func Im2ColInto32(cols, x *T32, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if cols.Shape[0] != n*outH*outW || cols.Shape[1] != c*kh*kw {
		panic("tensor: Im2ColInto32 shape mismatch")
	}
	cols.Zero()
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - pad
				row := cols.Data[((img*outH+oy)*outW+ox)*colW:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							// Entire kernel row is padding: leave zeros.
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								row[idx] = x.Data[rowBase+ix]
							}
							idx++
						}
					}
				}
			}
		}
	}
}

// Col2ImInto32 scatters the float32 column matrix back into image space,
// accumulating overlapping contributions into a float64 [N, C, H, W]
// destination (zeroed first). Widening at the scatter keeps the
// input-gradient of the float32 convolution path as accurate as a float64
// reduction of the float32 per-window values, and hands the upstream layer
// an ordinary float64 gradient — the convert-at-the-boundary rule.
func Col2ImInto32(x *Tensor, cols *T32, kh, kw, stride, pad int) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if cols.Shape[0] != n*outH*outW || cols.Shape[1] != c*kh*kw {
		panic("tensor: Col2ImInto32 shape mismatch")
	}
	x.Zero()
	colW := c * kh * kw
	for img := 0; img < n; img++ {
		base := img * c * h * w
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*stride - pad
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*stride - pad
				row := cols.Data[((img*outH+oy)*outW+ox)*colW:]
				idx := 0
				for ch := 0; ch < c; ch++ {
					chBase := base + ch*h*w
					for ky := 0; ky < kh; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= h {
							idx += kw
							continue
						}
						rowBase := chBase + iy*w
						for kx := 0; kx < kw; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < w {
								x.Data[rowBase+ix] += float64(row[idx])
							}
							idx++
						}
					}
				}
			}
		}
	}
}
