package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{3, 4}, 12},
		{[]int{2, 3, 4}, 24},
		{[]int{7}, 7},
		{[]int{1, 1, 1, 1}, 1},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tt.Len(), c.want)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(3, -1)
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(2, 3, 4)
	x.Set(42, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 42 {
		t.Errorf("At after Set = %v, want 42", got)
	}
	// Row-major layout: offset of (1,2,3) in [2,3,4] is 1*12+2*4+3 = 23.
	if x.Data[23] != 42 {
		t.Errorf("row-major offset wrong: Data[23] = %v", x.Data[23])
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestEye(t *testing.T) {
	e := Eye(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if e.At(i, j) != want {
				t.Errorf("Eye(4)[%d,%d] = %v, want %v", i, j, e.At(i, j), want)
			}
		}
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Error("Reshape should share backing data")
	}
	if y.Rows() != 3 || y.Cols() != 2 {
		t.Errorf("reshaped dims = %dx%d, want 3x2", y.Rows(), y.Cols())
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 100
	if x.Data[0] != 1 {
		t.Error("Clone must not share data")
	}
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 4)
	y := FromSlice([]float64{10, 20, 30, 40}, 4)
	x.Add(y)
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatalf("Add: got %v", x.Data)
		}
	}
	x.Sub(y)
	for i, w := range []float64{1, 2, 3, 4} {
		if x.Data[i] != w {
			t.Fatalf("Sub: got %v", x.Data)
		}
	}
	x.Scale(2)
	for i, w := range []float64{2, 4, 6, 8} {
		if x.Data[i] != w {
			t.Fatalf("Scale: got %v", x.Data)
		}
	}
	x.MulElem(y)
	for i, w := range []float64{20, 80, 180, 320} {
		if x.Data[i] != w {
			t.Fatalf("MulElem: got %v", x.Data)
		}
	}
}

func TestLerpRunningAverage(t *testing.T) {
	// Lerp with a=0.9 is the paper's factor running average:
	// new = 0.9*current + 0.1*update.
	cur := FromSlice([]float64{1, 1}, 2)
	upd := FromSlice([]float64{2, 0}, 2)
	cur.Lerp(0.9, upd)
	if math.Abs(cur.Data[0]-1.1) > 1e-12 || math.Abs(cur.Data[1]-0.9) > 1e-12 {
		t.Errorf("Lerp: got %v, want [1.1 0.9]", cur.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 4, 2, -5}, 4)
	if x.Sum() != 0 {
		t.Errorf("Sum = %v, want 0", x.Sum())
	}
	if x.Mean() != 0 {
		t.Errorf("Mean = %v, want 0", x.Mean())
	}
	if x.Max() != 4 {
		t.Errorf("Max = %v, want 4", x.Max())
	}
	if x.Min() != -5 {
		t.Errorf("Min = %v, want -5", x.Min())
	}
	if got, want := x.Norm2(), math.Sqrt(1+16+4+25); math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestDot(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{4, 5, 6}, 3)
	if got := x.Dot(y); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromSlice([]float64{
		0.1, 0.7, 0.2,
		0.9, 0.05, 0.05,
	}, 2, 3)
	if m.ArgMaxRow(0) != 1 {
		t.Errorf("ArgMaxRow(0) = %d, want 1", m.ArgMaxRow(0))
	}
	if m.ArgMaxRow(1) != 0 {
		t.Errorf("ArgMaxRow(1) = %d, want 0", m.ArgMaxRow(1))
	}
}

func TestHasNaN(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	if x.HasNaN() {
		t.Error("finite tensor reported NaN")
	}
	x.Data[1] = math.NaN()
	if !x.HasNaN() {
		t.Error("NaN not detected")
	}
	x.Data[1] = math.Inf(1)
	if !x.HasNaN() {
		t.Error("Inf not detected")
	}
}

func TestMatMulSmallKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 17, 17)
	c := MatMul(a, Eye(17))
	if !c.Equal(a, 1e-12) {
		t.Error("A × I != A")
	}
	c2 := MatMul(Eye(17), a)
	if !c2.Equal(a, 1e-12) {
		t.Error("I × A != A")
	}
}

// matmulNaive is the reference 3-loop implementation used to validate the
// blocked/parallel kernels.
func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

func TestMatMulMatchesNaiveLarge(t *testing.T) {
	// Large enough to trigger the parallel path.
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 70, 90)
	b := Randn(rng, 1, 90, 80)
	got := MatMul(a, b)
	want := matmulNaive(a, b)
	if !got.Equal(want, 1e-9) {
		t.Error("parallel MatMul disagrees with naive reference")
	}
}

func TestMatMulT1MatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 33, 21)
	b := Randn(rng, 1, 33, 18)
	got := MatMulT1(a, b)
	want := MatMul(Transpose(a), b)
	if !got.Equal(want, 1e-9) {
		t.Error("MatMulT1 != Transpose(a)×b")
	}
}

func TestMatMulT2MatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Randn(rng, 1, 29, 31)
	b := Randn(rng, 1, 23, 31)
	got := MatMulT2(a, b)
	want := MatMul(a, Transpose(b))
	if !got.Equal(want, 1e-9) {
		t.Error("MatMulT2 != a×Transpose(b)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Randn(rng, 1, 45, 37)
	if !Transpose(Transpose(a)).Equal(a, 0) {
		t.Error("Transpose(Transpose(a)) != a")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 1, 1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != 6 || y.Data[1] != 15 {
		t.Errorf("MatVec = %v, want [6 15]", y.Data)
	}
}

func TestOuter(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{3, 4, 5}, 3)
	o := Outer(x, y)
	want := []float64{3, 4, 5, 6, 8, 10}
	for i := range want {
		if o.Data[i] != want[i] {
			t.Fatalf("Outer = %v, want %v", o.Data, want)
		}
	}
}

// Property: matmul distributes over addition, (A+B)C = AC + BC.
func TestMatMulDistributiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, m, k)
		c := Randn(r, 1, k, n)
		ab := a.Clone()
		ab.Add(b)
		left := MatMul(ab, c)
		right := MatMul(a, c)
		right.Add(MatMul(b, c))
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: matmul is associative, (AB)C = A(BC).
func TestMatMulAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, p, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, p)
		c := Randn(r, 1, p, n)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel with stride 1 and no padding is a pure reshuffle: each
	// output row is one pixel across channels.
	x := New(1, 2, 2, 2)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Rows() != 4 || cols.Cols() != 2 {
		t.Fatalf("Im2Col 1x1 shape = %v", cols.Shape)
	}
	// Position (0,0): channel 0 value 0, channel 1 value 4.
	if cols.At(0, 0) != 0 || cols.At(0, 1) != 4 {
		t.Errorf("Im2Col row 0 = %v", cols.Row(0))
	}
}

func TestIm2ColKnown3x3(t *testing.T) {
	// A 3x3 input with a 3x3 kernel, stride 1, pad 1 gives 9 output
	// positions; the center position sees the whole image.
	x := New(1, 1, 3, 3)
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	cols := Im2Col(x, 3, 3, 1, 1)
	if cols.Rows() != 9 || cols.Cols() != 9 {
		t.Fatalf("shape = %v", cols.Shape)
	}
	center := cols.Row(4)
	for i := 0; i < 9; i++ {
		if center[i] != float64(i+1) {
			t.Fatalf("center receptive field = %v", center)
		}
	}
	// Corner position (0,0) has zeros where padding was read.
	corner := cols.Row(0)
	wantCorner := []float64{0, 0, 0, 0, 1, 2, 0, 4, 5}
	for i := range wantCorner {
		if corner[i] != wantCorner[i] {
			t.Fatalf("corner receptive field = %v, want %v", corner, wantCorner)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col — for all x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the property backprop
// through convolution relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, c := 1+r.Intn(2), 1+r.Intn(3)
		h := 3 + r.Intn(4)
		w := 3 + r.Intn(4)
		k := 1 + 2*r.Intn(2) // 1 or 3
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		if (h+2*pad-k) < 0 || (w+2*pad-k) < 0 {
			return true
		}
		x := Randn(r, 1, n, c, h, w)
		cols := Im2Col(x, k, k, stride, pad)
		y := Randn(r, 1, cols.Rows(), cols.Cols())
		lhs := cols.Dot(y)
		back := Col2Im(y, n, c, h, w, k, k, stride, pad)
		rhs := x.Dot(back)
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{224, 7, 2, 3, 112},
		{7, 7, 1, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if small.String() == "" {
		t.Error("empty String for small tensor")
	}
	large := New(10, 10)
	if large.String() == "" {
		t.Error("empty String for large tensor")
	}
}
