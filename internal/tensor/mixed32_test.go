package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randT32 returns a shape-sized float32 tensor with entries drawn uniformly
// from [-1, 1) (values representable exactly at float32 by construction).
func randT32(rng *rand.Rand, shape ...int) *T32 {
	t := NewT32(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return t
}

// widen64 returns the float64 tensor holding exactly t's values.
func widen64(t *T32) *Tensor {
	d := New(t.Shape...)
	Widen(d.Data, t.Data)
	return d
}

// mixedTol returns the per-element error budget of a k-length float32 inner
// product under the chunked-float64 accumulation scheme, relative to scale
// (a bound on Σ|aᵢ||bᵢ|): at most kChunk32 float32 additions accumulate in
// working precision before each fold, so the error is O(kChunk32·ε₃₂·scale)
// independent of k. The constant is generous (≈8× the worst-case bound) so
// the test rejects wrong math, not unlucky rounding.
func mixedTol(scale float64) float64 {
	const eps32 = 1.1920929e-07
	return 64 * eps32 * 8 * (scale + 1)
}

// checkMatClose fails if got and want (same shape) differ anywhere by more
// than mixedTol of the row scale.
func checkMatClose(t *testing.T, name string, got *T32, want *Tensor, scale float64) {
	t.Helper()
	tol := mixedTol(scale)
	for i, g := range got.Data {
		if d := math.Abs(float64(g) - want.Data[i]); d > tol {
			t.Fatalf("%s: element %d: got %v want %v (|Δ|=%.3e > tol %.3e)", name, i, g, want.Data[i], d, tol)
		}
	}
}

// TestMatMul32FamilyMatchesFloat64Oracle drives each float32 matmul kernel
// over random shapes — below and above both the k-chunk boundary and the
// parallel threshold — and compares against the float64 kernels run on
// widened copies of the same (exactly representable) inputs. This is the
// ULP-bounded oracle harness of the mixed-precision path: only accumulation
// error can differ, and that is bounded by the chunk length.
func TestMatMul32FamilyMatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, 64, 7}, {8, 65, 9},
		{16, 200, 24}, {33, 513, 17}, {96, 300, 80}, // last exceeds parallelThreshold
	}
	for _, sh := range shapes {
		a := randT32(rng, sh.m, sh.k)
		b := randT32(rng, sh.k, sh.n)
		aT := randT32(rng, sh.k, sh.m)
		bT := randT32(rng, sh.n, sh.k)
		scale := float64(sh.k) // |entries| ≤ 1 ⇒ Σ|prod| ≤ k

		got := NewT32(sh.m, sh.n)
		want := New(sh.m, sh.n)
		MatMulInto32(got, a, b)
		MatMulInto(want, widen64(a), widen64(b))
		checkMatClose(t, "MatMulInto32", got, want, scale)

		MatMulT1Into32(got, aT, b)
		MatMulT1Into(want, widen64(aT), widen64(b))
		checkMatClose(t, "MatMulT1Into32", got, want, scale)

		MatMulT2Into32(got, a, bT)
		MatMulT2Into(want, widen64(a), widen64(bT))
		checkMatClose(t, "MatMulT2Into32", got, want, scale)
	}
}

// TestKernelPrimitivesMatchScalarOracle compares the active (possibly SIMD)
// implementations of every float32 primitive against the portable scalar
// oracle at sizes straddling every vector-width boundary and tail case.
// Tolerances, not bit-equality: the SIMD path fuses multiply-adds and
// reassociates lane sums.
func TestKernelPrimitivesMatchScalarOracle(t *testing.T) {
	t.Logf("active kernel ISA: %s", KernelISA())
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 3, 4, 7, 8, 9, 31, 32, 33, 63, 64, 100, 511, 512, 513, 1000}
	const eps32 = 1.1920929e-07
	for _, n := range sizes {
		x := make([]float32, n)
		y := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.Float64()*2 - 1)
			y[i] = float32(rng.Float64()*2 - 1)
		}

		// Axpy32 vs scalar.
		d1 := append([]float32(nil), x...)
		d2 := append([]float32(nil), x...)
		Axpy32(d1, y, 0.75)
		axpy32Scalar(d2, y, 0.75)
		for i := range d1 {
			if math.Abs(float64(d1[i]-d2[i])) > 4*eps32 {
				t.Fatalf("Axpy32 n=%d i=%d: %v vs %v", n, i, d1[i], d2[i])
			}
		}

		// DotAcc32 vs scalar-chunk oracle.
		var want float64
		for off := 0; off < n; off += dotChunk32 {
			end := off + dotChunk32
			if end > n {
				end = n
			}
			want += dotAcc32Scalar(x[off:end], y[off:end])
		}
		if got := DotAcc32(x, y); math.Abs(got-want) > 512*eps32*float64(n+1) {
			t.Fatalf("DotAcc32 n=%d: %v vs %v", n, got, want)
		}

		// FoldAcc32 vs scalar (exact: both do float64 adds of exact widenings).
		acc1 := make([]float64, n)
		acc2 := make([]float64, n)
		for i := range acc1 {
			acc1[i] = rng.Float64()
			acc2[i] = acc1[i]
		}
		FoldAcc32(acc1, x)
		foldAccScalar(acc2, x)
		for i := range acc1 {
			if acc1[i] != acc2[i] {
				t.Fatalf("FoldAcc32 n=%d i=%d: %v vs %v", n, i, acc1[i], acc2[i])
			}
		}

		// Rot32 vs scalar.
		x1, y1 := append([]float32(nil), x...), append([]float32(nil), y...)
		x2, y2 := append([]float32(nil), x...), append([]float32(nil), y...)
		c, s := float32(0.8), float32(0.6)
		Rot32(x1, y1, c, s)
		rot32Scalar(x2, y2, c, s)
		for i := range x1 {
			if math.Abs(float64(x1[i]-x2[i])) > 4*eps32 || math.Abs(float64(y1[i]-y2[i])) > 4*eps32 {
				t.Fatalf("Rot32 n=%d i=%d: (%v,%v) vs (%v,%v)", n, i, x1[i], y1[i], x2[i], y2[i])
			}
		}

		// Widen and Narrow are exact conversions: bit-equality required.
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		Widen(w1, x)
		widenScalar(w2, x)
		for i := range w1 {
			if w1[i] != w2[i] {
				t.Fatalf("Widen n=%d i=%d: %v vs %v", n, i, w1[i], w2[i])
			}
		}
		n1 := make([]float32, n)
		n2 := make([]float32, n)
		Narrow(n1, w1)
		narrowScalar(n2, w1)
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("Narrow n=%d i=%d: %v vs %v", n, i, n1[i], n2[i])
			}
		}
	}
}

// TestIm2Col32MatchesFloat64 checks the float32 lowering against the
// float64 one (exact: no arithmetic happens) and the widening Col2ImInto32
// scatter against the float64 Col2ImInto (tolerance: the float64 path sums
// float64 values, the mixed path sums widened float32 values — equal here
// because the inputs are exactly representable).
func TestIm2Col32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, c, h, w, kh, kw, stride, pad = 2, 3, 7, 6, 3, 3, 2, 1
	x32 := randT32(rng, n, c, h, w)
	x64 := widen64(x32)
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)

	cols32 := NewT32(n*outH*outW, c*kh*kw)
	cols64 := New(n*outH*outW, c*kh*kw)
	Im2ColInto32(cols32, x32, kh, kw, stride, pad)
	Im2ColInto(cols64, x64, kh, kw, stride, pad)
	for i, v := range cols32.Data {
		if float64(v) != cols64.Data[i] {
			t.Fatalf("Im2ColInto32 element %d: %v vs %v", i, v, cols64.Data[i])
		}
	}

	dx32 := New(n, c, h, w)
	dx64 := New(n, c, h, w)
	Col2ImInto32(dx32, cols32, kh, kw, stride, pad)
	Col2ImInto(dx64, cols64, kh, kw, stride, pad)
	for i := range dx32.Data {
		if dx32.Data[i] != dx64.Data[i] {
			t.Fatalf("Col2ImInto32 element %d: %v vs %v", i, dx32.Data[i], dx64.Data[i])
		}
	}
}

// TestEnsure32ReusesStorage verifies the float32 buffer-reuse primitive:
// same capacity ⇒ same backing array, larger need ⇒ fresh allocation.
func TestEnsure32ReusesStorage(t *testing.T) {
	var buf *T32
	a := Ensure32(&buf, 4, 8)
	a.Data[0] = 42
	b := Ensure32(&buf, 8, 4)
	if &a.Data[0] != &b.Data[0] {
		t.Fatal("Ensure32 did not reuse storage for equal element count")
	}
	if b.Rows() != 8 || b.Cols() != 4 {
		t.Fatalf("Ensure32 shape = %v", b.Shape)
	}
	c := Ensure32(&buf, 16, 16)
	if len(c.Data) != 256 {
		t.Fatalf("Ensure32 grow: len = %d", len(c.Data))
	}
	if allocs := testing.AllocsPerRun(100, func() { Ensure32(&buf, 16, 16) }); allocs != 0 {
		t.Fatalf("steady-state Ensure32 allocates %v times per call", allocs)
	}
}

// TestMatMul32ZeroAllocSteadyState asserts the float32 kernels allocate
// nothing once their pooled workspaces are warm — the same discipline the
// float64 hot path maintains.
func TestMatMul32ZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randT32(rng, 24, 200)
	b := randT32(rng, 200, 24)
	bT := randT32(rng, 24, 200)
	dst := NewT32(24, 24)
	// Warm the workspace pools.
	MatMulInto32(dst, a, b)
	MatMulT1Into32(dst, b, b)
	MatMulT2Into32(dst, a, bT)
	if allocs := testing.AllocsPerRun(10, func() {
		MatMulInto32(dst, a, b)
		MatMulT1Into32(dst, b, b)
		MatMulT2Into32(dst, a, bT)
	}); allocs != 0 {
		t.Fatalf("float32 matmul kernels allocate %v times per step", allocs)
	}
}
