package tensor

import (
	"runtime"
	"sync"

	"repro/internal/sched"
)

// Float32 matmul family. Same blocked loop structures as the float64
// kernels, with the mixed-precision accumulation discipline: products are
// accumulated in float32 only within k-chunks of kChunk32 terms; each
// chunk's partial row is folded into a float64 accumulator (FoldAcc32) and
// the final sum is rounded back to float32 once. When k ≤ kChunk32 the
// single-chunk path accumulates directly into the destination — bit-
// identical to the general path, since widening a float32 and rounding it
// back is exact.

// kChunk32 is the k-extent of one float32 accumulation chunk in the
// axpy-form kernels (MatMulInto32, MatMulT1Into32, linalg.SymMulT1Into32):
// at most kChunk32 products are summed in float32 before the partial sum is
// widened into the float64 accumulator. It equals the float64 kernels'
// cache block edge so both paths walk memory the same way.
const kChunk32 = 64

// mmRowBlock is the destination-row tile of the float32 kernels: b's rows
// are streamed once per row block instead of once per row, cutting the
// chunked path's memory traffic by the block factor.
const mmRowBlock = 4

// t1RowBlock is the destination-row tile of the aᵀb-form kernels, where a
// (not b) carries the per-row scalars; a larger tile amortizes streaming b.
const t1RowBlock = 8

// mm32Workspace carries one range's chunk and accumulator rows. Pooled so
// parallel kernel launches perform zero steady-state heap allocation.
type mm32Workspace struct {
	chunk []float32
	acc   []float64
}

var mm32Pool = sync.Pool{New: func() any { return new(mm32Workspace) }}

// grow sizes the workspace for rows×n tiles, reusing prior capacity.
func (w *mm32Workspace) grow(rows, n int) {
	need := rows * n
	if cap(w.chunk) < need {
		w.chunk = make([]float32, need)
	}
	w.chunk = w.chunk[:need]
	if cap(w.acc) < need {
		w.acc = make([]float64, need)
	}
	w.acc = w.acc[:need]
}

// zero32 clears a float32 slice.
func zero32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// zero64 clears a float64 slice.
func zero64(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// MatMulInto32 computes dst = a × b for float32 matrices a (m×k) and
// b (k×n), writing the m×n result over dst. dst must not alias a or b.
// Inner products accumulate per the package's chunked float64 scheme;
// large products split across the shared compute pool.
func MatMulInto32(dst, a, b *T32) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulInto32 shape mismatch")
	}
	runKernel32(kind32MatMul, dst.Data, a.Data, b.Data, m, k, n)
}

// matmulRange32 computes rows [lo,hi) of dst = a×b.
func matmulRange32(dst, a, b []float32, lo, hi, k, n int) {
	if k <= kChunk32 {
		// Single chunk: accumulate directly in the float32 destination —
		// bit-identical to the general path (see package comment above).
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			drow := dst[i*n : (i+1)*n]
			zero32(drow)
			for kk := 0; kk < k; kk++ {
				if av := arow[kk]; av != 0 {
					Axpy32(drow, b[kk*n:(kk+1)*n], av)
				}
			}
		}
		return
	}
	ws := mm32Pool.Get().(*mm32Workspace)
	ws.grow(mmRowBlock, n)
	for i0 := lo; i0 < hi; i0 += mmRowBlock {
		i1 := i0 + mmRowBlock
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		acc := ws.acc[:rows*n]
		zero64(acc)
		for kb := 0; kb < k; kb += kChunk32 {
			kmax := kb + kChunk32
			if kmax > k {
				kmax = k
			}
			chunk := ws.chunk[:rows*n]
			zero32(chunk)
			for kk := kb; kk < kmax; kk++ {
				brow := b[kk*n : (kk+1)*n]
				for r := 0; r < rows; r++ {
					if av := a[(i0+r)*k+kk]; av != 0 {
						Axpy32(chunk[r*n:(r+1)*n], brow, av)
					}
				}
			}
			FoldAcc32(acc, chunk)
		}
		for r := 0; r < rows; r++ {
			Narrow(dst[(i0+r)*n:(i0+r+1)*n], acc[r*n:(r+1)*n])
		}
	}
	mm32Pool.Put(ws)
}

// MatMulT1Into32 computes dst = aᵀ × b for float32 matrices a (k×m) and
// b (k×n), writing the m×n result over dst — the float32 twin of
// MatMulT1Into, with chunked float64 accumulation.
func MatMulT1Into32(dst, a, b *T32) {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if b.Shape[0] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulT1Into32 shape mismatch")
	}
	runKernel32(kind32MatMulT1, dst.Data, a.Data, b.Data, m, k, n)
}

// matmulT1Range32 computes rows [lo,hi) of dst = aᵀb where a is k×m and
// b is k×n.
func matmulT1Range32(dst, a, b []float32, lo, hi, k, m, n int) {
	if k <= kChunk32 {
		for i := lo; i < hi; i++ {
			zero32(dst[i*n : (i+1)*n])
		}
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m : (kk+1)*m]
			brow := b[kk*n : (kk+1)*n]
			for i := lo; i < hi; i++ {
				if av := arow[i]; av != 0 {
					Axpy32(dst[i*n:(i+1)*n], brow, av)
				}
			}
		}
		return
	}
	ws := mm32Pool.Get().(*mm32Workspace)
	ws.grow(t1RowBlock, n)
	for i0 := lo; i0 < hi; i0 += t1RowBlock {
		i1 := i0 + t1RowBlock
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		acc := ws.acc[:rows*n]
		zero64(acc)
		for kb := 0; kb < k; kb += kChunk32 {
			kmax := kb + kChunk32
			if kmax > k {
				kmax = k
			}
			chunk := ws.chunk[:rows*n]
			zero32(chunk)
			for kk := kb; kk < kmax; kk++ {
				arow := a[kk*m : (kk+1)*m]
				brow := b[kk*n : (kk+1)*n]
				for r := 0; r < rows; r++ {
					if av := arow[i0+r]; av != 0 {
						Axpy32(chunk[r*n:(r+1)*n], brow, av)
					}
				}
			}
			FoldAcc32(acc, chunk)
		}
		for r := 0; r < rows; r++ {
			Narrow(dst[(i0+r)*n:(i0+r+1)*n], acc[r*n:(r+1)*n])
		}
	}
	mm32Pool.Put(ws)
}

// MatMulT2Into32 computes dst = a × bᵀ for float32 matrices a (m×k) and
// b (n×k), writing the m×n result over dst. Row-by-row dot products via
// DotAcc32, which carries the chunked float64 accumulation internally.
func MatMulT2Into32(dst, a, b *T32) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k || dst.Shape[0] != m || dst.Shape[1] != n {
		panic("tensor: MatMulT2Into32 shape mismatch")
	}
	runKernel32(kind32MatMulT2, dst.Data, a.Data, b.Data, m, k, n)
}

// matmulT2Range32 computes rows [lo,hi) of dst = a×bᵀ.
func matmulT2Range32(dst, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			drow[j] = float32(DotAcc32(arow, b[j*k:(j+1)*k]))
		}
	}
}

// kind32 selects the row kernel a mat32Ranger dispatches to.
type kind32 uint8

const (
	kind32MatMul kind32 = iota
	kind32MatMulT1
	kind32MatMulT2
)

// mat32Ranger carries one float32 matmul dispatch through the shared
// compute pool; recycled via mat32RangerPool for zero-allocation launches.
type mat32Ranger struct {
	wg        sync.WaitGroup
	kind      kind32
	dst, a, b []float32
	k, m, n   int
}

// RunRange implements sched.Ranger: rows [lo, hi) of the selected kernel.
// Ranges are disjoint and every destination element is produced by exactly
// one range, so parallel results equal serial ones.
func (r *mat32Ranger) RunRange(lo, hi int) {
	switch r.kind {
	case kind32MatMul:
		matmulRange32(r.dst, r.a, r.b, lo, hi, r.k, r.n)
	case kind32MatMulT1:
		matmulT1Range32(r.dst, r.a, r.b, lo, hi, r.k, r.m, r.n)
	case kind32MatMulT2:
		matmulT2Range32(r.dst, r.a, r.b, lo, hi, r.k, r.n)
	}
}

var mat32RangerPool = sync.Pool{New: func() any { return new(mat32Ranger) }}

// runKernel32 executes one float32 matmul-family kernel over rows [0, m),
// splitting across the shared compute pool when m·n·k is large enough to
// amortize dispatch.
func runKernel32(kind kind32, dst, a, b []float32, m, k, n int) {
	nw := runtime.GOMAXPROCS(0)
	if work := m * n * k; work < parallelThreshold || nw <= 1 || m < 2 {
		switch kind {
		case kind32MatMul:
			matmulRange32(dst, a, b, 0, m, k, n)
		case kind32MatMulT1:
			matmulT1Range32(dst, a, b, 0, m, k, m, n)
		case kind32MatMulT2:
			matmulT2Range32(dst, a, b, 0, m, k, n)
		}
		return
	}
	r := mat32RangerPool.Get().(*mat32Ranger)
	r.kind, r.dst, r.a, r.b, r.k, r.m, r.n = kind, dst, a, b, k, m, n
	sched.Shared().ForEach(m, nw, r, &r.wg)
	r.dst, r.a, r.b = nil, nil, nil // don't pin operand memory in the pool
	mat32RangerPool.Put(r)
}
