package tensor

import (
	"runtime"
	"sync"

	"repro/internal/sched"
)

// kernelKind selects the row kernel a matRanger dispatches to.
type kernelKind uint8

const (
	kindMatMul kernelKind = iota
	kindMatMulT1
	kindMatMulT2
)

// matRanger carries one blocked-matmul dispatch through the shared compute
// pool. Instances are recycled via matRangerPool so a parallel kernel launch
// performs zero heap allocations; the embedded WaitGroup is the completion
// scratch sched.Pool.ForEach requires.
type matRanger struct {
	wg        sync.WaitGroup
	kind      kernelKind
	dst, a, b []float64
	k, m, n   int
}

// RunRange implements sched.Ranger: rows [lo, hi) of the selected kernel.
// Ranges are disjoint, and every destination element is produced by exactly
// one range with the same per-element arithmetic as a serial run, so results
// are bit-identical regardless of worker count.
func (r *matRanger) RunRange(lo, hi int) {
	switch r.kind {
	case kindMatMul:
		matmulRange(r.dst, r.a, r.b, lo, hi, r.k, r.n)
	case kindMatMulT1:
		matmulT1Range(r.dst, r.a, r.b, lo, hi, r.k, r.m, r.n)
	case kindMatMulT2:
		matmulT2Range(r.dst, r.a, r.b, lo, hi, r.k, r.n)
	}
}

var matRangerPool = sync.Pool{New: func() any { return new(matRanger) }}

// runKernel executes one matmul-family kernel over rows [0, m), splitting
// across the shared compute pool when the multiply-add count is large enough
// to amortize dispatch. work is m·n·k.
func runKernel(kind kernelKind, dst, a, b []float64, m, k, n, work int) {
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw <= 1 || m < 2 {
		switch kind {
		case kindMatMul:
			matmulRange(dst, a, b, 0, m, k, n)
		case kindMatMulT1:
			matmulT1Range(dst, a, b, 0, m, k, m, n)
		case kindMatMulT2:
			matmulT2Range(dst, a, b, 0, m, k, n)
		}
		return
	}
	r := matRangerPool.Get().(*matRanger)
	r.kind, r.dst, r.a, r.b, r.k, r.m, r.n = kind, dst, a, b, k, m, n
	sched.Shared().ForEach(m, nw, r, &r.wg)
	r.dst, r.a, r.b = nil, nil, nil // don't pin operand memory in the pool
	matRangerPool.Put(r)
}
