package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaReuseAfterReset(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 5)
	for i := range t1.Data {
		t1.Data[i] = float64(i)
	}
	p1 := &t1.Data[0]
	if a.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", a.Outstanding())
	}
	a.Reset()
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding after reset = %d, want 0", a.Outstanding())
	}
	// Same element count must reuse the same storage, with the new shape.
	t2 := a.Get(5, 4)
	if &t2.Data[0] != p1 {
		t.Error("Get after Reset did not reuse storage")
	}
	if t2.Shape[0] != 5 || t2.Shape[1] != 4 {
		t.Errorf("shape = %v, want [5 4]", t2.Shape)
	}
	// GetZero must clear the recycled contents.
	a.Reset()
	t3 := a.GetZero(20)
	if &t3.Data[0] != p1 {
		t.Error("GetZero after Reset did not reuse storage")
	}
	for i, v := range t3.Data {
		if v != 0 {
			t.Fatalf("GetZero left stale value %g at %d", v, i)
		}
	}
}

func TestArenaPutMakesStorageAvailable(t *testing.T) {
	a := NewArena()
	t1 := a.Get(8)
	p1 := &t1.Data[0]
	a.Put(t1)
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding after Put = %d, want 0", a.Outstanding())
	}
	if t2 := a.Get(8); &t2.Data[0] != p1 {
		t.Error("Get after Put did not reuse storage")
	}
	// Distinct sizes come from distinct classes.
	t3 := a.Get(16)
	if &t3.Data[0] == p1 {
		t.Error("different size class reused storage of another class")
	}
}

func TestArenaPutForeignPanics(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Error("Put of a foreign tensor did not panic")
		}
	}()
	a.Put(New(7)) // size class never seen by this arena
}

// TestArenaConcurrent hammers Get/Put/Reset-free checkout cycles from many
// goroutines; run under -race this is the concurrency contract check.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				n := 1 + rng.Intn(64)
				tn := a.Get(n)
				for j := range tn.Data {
					tn.Data[j] = float64(w)
				}
				// Verify nobody else scribbled on our checkout.
				for j := range tn.Data {
					if tn.Data[j] != float64(w) {
						t.Errorf("worker %d: tensor mutated concurrently", w)
						return
					}
				}
				a.Put(tn)
			}
		}(w)
	}
	wg.Wait()
	if a.Outstanding() != 0 {
		t.Errorf("outstanding = %d after all Puts", a.Outstanding())
	}
}

func TestEnsureReusesCapacity(t *testing.T) {
	var buf *Tensor
	t1 := Ensure(&buf, 4, 4)
	if buf != t1 {
		t.Fatal("Ensure did not store the allocation")
	}
	p := &t1.Data[0]
	// Smaller request: same storage, new shape/length.
	t2 := Ensure(&buf, 2, 3)
	if &t2.Data[0] != p || t2.Len() != 6 {
		t.Error("Ensure did not reuse capacity for a smaller shape")
	}
	// Larger request: fresh storage.
	t3 := Ensure(&buf, 10, 10)
	if &t3.Data[0] == p {
		t.Error("Ensure reused insufficient capacity")
	}
	// EnsureZero clears recycled contents.
	t3.Fill(3)
	t4 := EnsureZero(&buf, 5)
	for _, v := range t4.Data {
		if v != 0 {
			t.Fatal("EnsureZero left stale values")
		}
	}
}

// TestEnsureZeroAllocSteadyState: once a buffer has settled at its largest
// shape, Ensure must not allocate.
func TestEnsureZeroAllocSteadyState(t *testing.T) {
	var buf *Tensor
	Ensure(&buf, 16, 16)
	allocs := testing.AllocsPerRun(100, func() {
		Ensure(&buf, 16, 16)
		Ensure(&buf, 8, 4)
		Ensure(&buf, 16, 16)
	})
	if allocs != 0 {
		t.Errorf("Ensure allocated %.1f times per run in steady state, want 0", allocs)
	}
}

// TestArenaMixedWidthClasses is the regression test for the mixed-width
// size-class audit: float32 and float64 checkouts of equal element count
// must live in disjoint size classes (an element count names a different
// byte size per width), reuse must stay within a width, and the shared
// leak counter must account for both widths.
func TestArenaMixedWidthClasses(t *testing.T) {
	a := NewArena()
	t64 := a.Get(4, 4)
	t32 := a.Get32(4, 4)
	if a.Outstanding() != 2 {
		t.Fatalf("Outstanding = %d, want 2", a.Outstanding())
	}
	for i := range t64.Data {
		t64.Data[i] = 1e300 // a pattern no float32 can hold
		t32.Data[i] = -7
	}
	// Writing one width must not disturb the other (no shared backing).
	for i := range t64.Data {
		if t64.Data[i] != 1e300 || t32.Data[i] != -7 {
			t.Fatalf("element %d corrupted across widths: %v / %v", i, t64.Data[i], t32.Data[i])
		}
	}
	a.Put(t64)
	a.Put32(t32)
	if a.Outstanding() != 0 {
		t.Fatalf("Outstanding after puts = %d, want 0", a.Outstanding())
	}
	// Reuse stays within a width: the same backing arrays come back from the
	// same-width Get, and the cross-width Get never sees them.
	r32 := a.Get32(4, 4)
	r64 := a.Get(4, 4)
	if &r32.Data[0] != &t32.Data[0] {
		t.Fatal("float32 storage was not reused within its own class")
	}
	if &r64.Data[0] != &t64.Data[0] {
		t.Fatal("float64 storage was not reused within its own class")
	}
	a.Reset()
	if a.Outstanding() != 0 {
		t.Fatalf("Outstanding after Reset = %d", a.Outstanding())
	}
	// Reset reclaims both widths.
	if got := a.Get32(4, 4); &got.Data[0] != &t32.Data[0] {
		t.Fatal("Reset did not reclaim float32 storage")
	}
}

// TestArenaPut32ForeignPanics mirrors TestArenaPutForeignPanics for the
// float32 classes.
func TestArenaPut32ForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign Put32")
		}
	}()
	NewArena().Put32(NewT32(3, 3))
}
