package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

func TestArenaReuseAfterReset(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 5)
	for i := range t1.Data {
		t1.Data[i] = float64(i)
	}
	p1 := &t1.Data[0]
	if a.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", a.Outstanding())
	}
	a.Reset()
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding after reset = %d, want 0", a.Outstanding())
	}
	// Same element count must reuse the same storage, with the new shape.
	t2 := a.Get(5, 4)
	if &t2.Data[0] != p1 {
		t.Error("Get after Reset did not reuse storage")
	}
	if t2.Shape[0] != 5 || t2.Shape[1] != 4 {
		t.Errorf("shape = %v, want [5 4]", t2.Shape)
	}
	// GetZero must clear the recycled contents.
	a.Reset()
	t3 := a.GetZero(20)
	if &t3.Data[0] != p1 {
		t.Error("GetZero after Reset did not reuse storage")
	}
	for i, v := range t3.Data {
		if v != 0 {
			t.Fatalf("GetZero left stale value %g at %d", v, i)
		}
	}
}

func TestArenaPutMakesStorageAvailable(t *testing.T) {
	a := NewArena()
	t1 := a.Get(8)
	p1 := &t1.Data[0]
	a.Put(t1)
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding after Put = %d, want 0", a.Outstanding())
	}
	if t2 := a.Get(8); &t2.Data[0] != p1 {
		t.Error("Get after Put did not reuse storage")
	}
	// Distinct sizes come from distinct classes.
	t3 := a.Get(16)
	if &t3.Data[0] == p1 {
		t.Error("different size class reused storage of another class")
	}
}

func TestArenaPutForeignPanics(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Error("Put of a foreign tensor did not panic")
		}
	}()
	a.Put(New(7)) // size class never seen by this arena
}

// TestArenaConcurrent hammers Get/Put/Reset-free checkout cycles from many
// goroutines; run under -race this is the concurrency contract check.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				n := 1 + rng.Intn(64)
				tn := a.Get(n)
				for j := range tn.Data {
					tn.Data[j] = float64(w)
				}
				// Verify nobody else scribbled on our checkout.
				for j := range tn.Data {
					if tn.Data[j] != float64(w) {
						t.Errorf("worker %d: tensor mutated concurrently", w)
						return
					}
				}
				a.Put(tn)
			}
		}(w)
	}
	wg.Wait()
	if a.Outstanding() != 0 {
		t.Errorf("outstanding = %d after all Puts", a.Outstanding())
	}
}

func TestEnsureReusesCapacity(t *testing.T) {
	var buf *Tensor
	t1 := Ensure(&buf, 4, 4)
	if buf != t1 {
		t.Fatal("Ensure did not store the allocation")
	}
	p := &t1.Data[0]
	// Smaller request: same storage, new shape/length.
	t2 := Ensure(&buf, 2, 3)
	if &t2.Data[0] != p || t2.Len() != 6 {
		t.Error("Ensure did not reuse capacity for a smaller shape")
	}
	// Larger request: fresh storage.
	t3 := Ensure(&buf, 10, 10)
	if &t3.Data[0] == p {
		t.Error("Ensure reused insufficient capacity")
	}
	// EnsureZero clears recycled contents.
	t3.Fill(3)
	t4 := EnsureZero(&buf, 5)
	for _, v := range t4.Data {
		if v != 0 {
			t.Fatal("EnsureZero left stale values")
		}
	}
}

// TestEnsureZeroAllocSteadyState: once a buffer has settled at its largest
// shape, Ensure must not allocate.
func TestEnsureZeroAllocSteadyState(t *testing.T) {
	var buf *Tensor
	Ensure(&buf, 16, 16)
	allocs := testing.AllocsPerRun(100, func() {
		Ensure(&buf, 16, 16)
		Ensure(&buf, 8, 4)
		Ensure(&buf, 16, 16)
	})
	if allocs != 0 {
		t.Errorf("Ensure allocated %.1f times per run in steady state, want 0", allocs)
	}
}
