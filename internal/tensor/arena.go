package tensor

import "sync"

// Arena is a reusable workspace of tensors, keyed by element count. It
// exists so steady-state hot loops (the K-FAC step, layer forward/backward
// passes) can run without per-step heap allocation: tensors are checked out
// with Get/GetZero, optionally handed back early with Put, and reclaimed in
// bulk with Reset once the phase that used them is over.
//
// An Arena is safe for concurrent use. Every tensor it hands out remains
// owned by the arena: after Reset (or Put) the storage may be handed out
// again, so callers must not retain references across a Reset.
type Arena struct {
	mu      sync.Mutex
	classes map[int]*arenaClass

	// classes32 keys the float32 size classes separately from the float64
	// ones: an element count names a different byte size per element width,
	// so sharing one map would alias a 4-byte-per-element buffer with an
	// 8-byte one of equal count and corrupt reuse accounting. See
	// TestArenaMixedWidthClasses.
	classes32 map[int]*arenaClass32

	// Outstanding counts checked-out tensors of either width (for tests and
	// leak checks).
	outstanding int
}

// arenaClass is the free/used bookkeeping for one element count.
type arenaClass struct {
	all  []*Tensor // every tensor ever created for this class
	free []*Tensor // subset of all currently available
}

// arenaClass32 is the float32 twin of arenaClass.
type arenaClass32 struct {
	all  []*T32
	free []*T32
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		classes:   make(map[int]*arenaClass),
		classes32: make(map[int]*arenaClass32),
	}
}

// Get checks out a tensor of the given shape. Contents are unspecified
// (stale values from a previous checkout); use GetZero when zeros are
// required. The tensor's storage is reused from a previous Reset/Put when a
// tensor of equal element count is available.
func (a *Arena) Get(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	a.mu.Lock()
	cl := a.classes[n]
	if cl == nil {
		cl = &arenaClass{}
		a.classes[n] = cl
	}
	var t *Tensor
	if k := len(cl.free); k > 0 {
		t = cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
	} else {
		t = &Tensor{Data: make([]float64, n)}
		cl.all = append(cl.all, t)
	}
	a.outstanding++
	a.mu.Unlock()
	setShape(t, shape)
	return t
}

// GetZero is Get with the returned tensor zero-filled.
func (a *Arena) GetZero(shape ...int) *Tensor {
	t := a.Get(shape...)
	t.Zero()
	return t
}

// Put returns a tensor obtained from Get to the arena ahead of the next
// Reset. The caller must not use t afterwards. Putting a tensor the arena
// did not hand out (or putting one twice) corrupts the bookkeeping; Put
// panics when it can detect this (foreign element count).
func (a *Arena) Put(t *Tensor) {
	n := len(t.Data)
	a.mu.Lock()
	cl := a.classes[n]
	if cl == nil {
		a.mu.Unlock()
		panic("tensor: Arena.Put of tensor not obtained from this arena")
	}
	cl.free = append(cl.free, t)
	a.outstanding--
	a.mu.Unlock()
}

// Get32 checks out a float32 tensor of the given shape. Contents are
// unspecified (stale values from a previous checkout); use GetZero32 when
// zeros are required. Float32 tensors live in their own size classes —
// never backed by, nor backing, float64 storage of equal element count.
func (a *Arena) Get32(shape ...int) *T32 {
	n := 1
	for _, s := range shape {
		n *= s
	}
	a.mu.Lock()
	cl := a.classes32[n]
	if cl == nil {
		cl = &arenaClass32{}
		a.classes32[n] = cl
	}
	var t *T32
	if k := len(cl.free); k > 0 {
		t = cl.free[k-1]
		cl.free[k-1] = nil
		cl.free = cl.free[:k-1]
	} else {
		t = &T32{Data: make([]float32, n)}
		cl.all = append(cl.all, t)
	}
	a.outstanding++
	a.mu.Unlock()
	setShape32(t, shape)
	return t
}

// GetZero32 is Get32 with the returned tensor zero-filled.
func (a *Arena) GetZero32(shape ...int) *T32 {
	t := a.Get32(shape...)
	t.Zero()
	return t
}

// Put32 returns a float32 tensor obtained from Get32 to the arena ahead of
// the next Reset, with the same ownership rules as Put.
func (a *Arena) Put32(t *T32) {
	n := len(t.Data)
	a.mu.Lock()
	cl := a.classes32[n]
	if cl == nil {
		a.mu.Unlock()
		panic("tensor: Arena.Put32 of tensor not obtained from this arena")
	}
	cl.free = append(cl.free, t)
	a.outstanding--
	a.mu.Unlock()
}

// Reset reclaims every tensor the arena has handed out, making all storage
// available to subsequent Gets. Outstanding tensors become invalid: their
// storage will be reused.
func (a *Arena) Reset() {
	a.mu.Lock()
	for _, cl := range a.classes {
		cl.free = append(cl.free[:0], cl.all...)
	}
	for _, cl := range a.classes32 {
		cl.free = append(cl.free[:0], cl.all...)
	}
	a.outstanding = 0
	a.mu.Unlock()
}

// Outstanding returns the number of tensors currently checked out (Get
// minus Put since the last Reset). Used by leak-check tests.
func (a *Arena) Outstanding() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.outstanding
}

// setShape points t at the given shape, reusing t's shape slice when the
// dimensionality matches so steady-state reshapes are allocation-free.
func setShape(t *Tensor, shape []int) {
	if cap(t.Shape) >= len(shape) {
		t.Shape = t.Shape[:len(shape)]
		copy(t.Shape, shape)
		return
	}
	t.Shape = append([]int(nil), shape...)
}

// Ensure returns a tensor of the given shape backed by (*buf)'s storage
// when its capacity suffices, else a fresh allocation, storing the result
// back into *buf. Contents are unspecified when storage is reused — callers
// must overwrite every element (or use EnsureZero). This is the
// shape-stable buffer-reuse primitive the layer forward/backward passes and
// the K-FAC workspaces are built on: after the first step at a given batch
// shape, Ensure never allocates.
func Ensure(buf **Tensor, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	t := *buf
	if t != nil && cap(t.Data) >= n {
		t.Data = t.Data[:n]
		setShape(t, shape)
		return t
	}
	// Built directly (not via New) so the variadic shape slice provably
	// does not escape and steady-state callers allocate nothing.
	t = &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
	*buf = t
	return t
}

// EnsureZero is Ensure with the returned tensor zero-filled.
func EnsureZero(buf **Tensor, shape ...int) *Tensor {
	t := Ensure(buf, shape...)
	t.Zero()
	return t
}
