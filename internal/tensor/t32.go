package tensor

import "fmt"

// T32 is a dense, row-major float32 tensor — the storage type of the
// mixed-precision compute path. It deliberately mirrors Tensor's layout
// (a shape plus a flat slice) but carries none of Tensor's arithmetic
// surface: T32 buffers exist to feed the *32 kernels (MatMulInto32,
// SymMulT1Into32, ...) and are converted back to float64 at the
// boundaries (see docs/ARCHITECTURE.md, "convert at the boundary").
type T32 struct {
	Shape []int
	Data  []float32
}

// NewT32 returns a zero-filled float32 tensor of the given shape.
func NewT32(shape ...int) *T32 {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &T32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Len returns the total number of elements.
func (t *T32) Len() int { return len(t.Data) }

// Rows returns the first dimension of a matrix.
func (t *T32) Rows() int { return t.Shape[0] }

// Cols returns the second dimension of a matrix.
func (t *T32) Cols() int { return t.Shape[1] }

// Zero sets every element to 0.
func (t *T32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// NarrowFrom overwrites t with src rounded to float32. Element counts must
// match; shapes are not reconciled (callers size t via Ensure32 first).
func (t *T32) NarrowFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: NarrowFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	Narrow(t.Data, src.Data)
}

// WidenInto overwrites dst with t widened to float64. Element counts must
// match.
func (t *T32) WidenInto(dst *Tensor) {
	if len(t.Data) != len(dst.Data) {
		panic(fmt.Sprintf("tensor: WidenInto size mismatch %d vs %d", len(t.Data), len(dst.Data)))
	}
	Widen(dst.Data, t.Data)
}

// setShape32 points t at the given shape, reusing t's shape slice when the
// dimensionality matches — the float32 twin of setShape.
func setShape32(t *T32, shape []int) {
	if cap(t.Shape) >= len(shape) {
		t.Shape = t.Shape[:len(shape)]
		copy(t.Shape, shape)
		return
	}
	t.Shape = append([]int(nil), shape...)
}

// Ensure32 returns a float32 tensor of the given shape backed by (*buf)'s
// storage when its capacity suffices, else a fresh allocation, storing the
// result back into *buf — the float32 twin of Ensure, and the primitive the
// per-layer f32 workspaces (nn forward/backward scratch, K-FAC eigenbasis
// mirrors) are built on. Contents are unspecified when storage is reused.
func Ensure32(buf **T32, shape ...int) *T32 {
	n := 1
	for _, s := range shape {
		n *= s
	}
	t := *buf
	if t != nil && cap(t.Data) >= n {
		t.Data = t.Data[:n]
		setShape32(t, shape)
		return t
	}
	// Built directly (not via NewT32) so the variadic shape slice provably
	// does not escape and steady-state callers allocate nothing.
	t = &T32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
	*buf = t
	return t
}

// EnsureZero32 is Ensure32 with the returned tensor zero-filled.
func EnsureZero32(buf **T32, shape ...int) *T32 {
	t := Ensure32(buf, shape...)
	t.Zero()
	return t
}
