//go:build amd64 && !purego

#include "textflag.h"

// AVX2+FMA float32 kernels. Operand order note: the Go assembler reverses
// Intel operand order, so VFMADD231PS Ys, Ym, Yd computes Yd += Ym*Ys.
// Every routine handles arbitrary lengths (vector body + scalar tail) and
// executes VZEROUPPER before returning to avoid SSE/AVX transition stalls.

// func axpy32AVX(dst, src []float32, a float32)
// dst += a*src, 8 lanes per iteration.
TEXT ·axpy32AVX(SB), NOSPLIT, $0-52
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	VBROADCASTSS a+48(FP), Y0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

axpy_loop8:
	CMPQ AX, DX
	JGE  axpy_tail
	VMOVUPS     (SI)(AX*4), Y1
	VMOVUPS     (DI)(AX*4), Y2
	VFMADD231PS Y1, Y0, Y2
	VMOVUPS     Y2, (DI)(AX*4)
	ADDQ $8, AX
	JMP  axpy_loop8

axpy_tail:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSS      (SI)(AX*4), X1
	VMOVSS      (DI)(AX*4), X2
	VFMADD231SS X1, X0, X2
	VMOVSS      X2, (DI)(AX*4)
	INCQ AX
	JMP  axpy_tail

axpy_done:
	VZEROUPPER
	RET

// func dotAcc32AVX(a, b []float32) float64
// Inner product: 4×8 float32 FMA lanes, widened and summed in float64 at
// the end. The Go wrapper bounds the call length (dotChunk32), which bounds
// the in-lane float32 accumulation error.
TEXT ·dotAcc32AVX(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   a_len+8(FP), CX
	MOVQ   b_base+24(FP), DI
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS X8, X8, X8   // scalar-tail float32 accumulator
	XORQ   AX, AX
	MOVQ   CX, DX
	ANDQ   $-32, DX

dot_loop32:
	CMPQ AX, DX
	JGE  dot_rem8
	VMOVUPS     (SI)(AX*4), Y4
	VMOVUPS     32(SI)(AX*4), Y5
	VMOVUPS     64(SI)(AX*4), Y6
	VMOVUPS     96(SI)(AX*4), Y7
	VFMADD231PS (DI)(AX*4), Y4, Y0
	VFMADD231PS 32(DI)(AX*4), Y5, Y1
	VFMADD231PS 64(DI)(AX*4), Y6, Y2
	VFMADD231PS 96(DI)(AX*4), Y7, Y3
	ADDQ $32, AX
	JMP  dot_loop32

dot_rem8:
	MOVQ CX, DX
	ANDQ $-8, DX

dot_rem8_loop:
	CMPQ AX, DX
	JGE  dot_tail
	VMOVUPS     (SI)(AX*4), Y4
	VFMADD231PS (DI)(AX*4), Y4, Y0
	ADDQ $8, AX
	JMP  dot_rem8_loop

dot_tail:
	CMPQ AX, CX
	JGE  dot_sum
	VMOVSS      (SI)(AX*4), X4
	VFMADD231SS (DI)(AX*4), X4, X8
	INCQ AX
	JMP  dot_tail

dot_sum:
	// Combine the four lane accumulators in float32 (reassociation only),
	// then widen the 8 partial sums to float64 for the final reduction.
	VADDPS       Y1, Y0, Y0
	VADDPS       Y3, Y2, Y2
	VADDPS       Y2, Y0, Y0
	VCVTPS2PD    X0, Y1
	VEXTRACTF128 $1, Y0, X2
	VCVTPS2PD    X2, Y2
	VADDPD       Y2, Y1, Y1
	VEXTRACTF128 $1, Y1, X2
	VADDPD       X2, X1, X1
	VHADDPD      X1, X1, X1
	VCVTSS2SD    X8, X8, X8
	VADDSD       X8, X1, X1
	VMOVSD       X1, ret+48(FP)
	VZEROUPPER
	RET

// func foldAccAVX(acc []float64, src []float32)
// acc += widen(src), 4 elements per iteration.
TEXT ·foldAccAVX(SB), NOSPLIT, $0-48
	MOVQ acc_base+0(FP), DI
	MOVQ acc_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

fold_loop4:
	CMPQ AX, DX
	JGE  fold_tail
	VMOVUPS   (SI)(AX*4), X1
	VCVTPS2PD X1, Y1
	VADDPD    (DI)(AX*8), Y1, Y1
	VMOVUPD   Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  fold_loop4

fold_tail:
	CMPQ AX, CX
	JGE  fold_done
	VCVTSS2SD (SI)(AX*4), X1, X1
	VADDSD    (DI)(AX*8), X1, X1
	VMOVSD    X1, (DI)(AX*8)
	INCQ AX
	JMP  fold_tail

fold_done:
	VZEROUPPER
	RET

// func rot32AVX(x, y []float32, c, s float32)
// Plane rotation: x' = c*x − s*y; y' = s*x + c*y, 8 lanes per iteration.
TEXT ·rot32AVX(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), SI
	VBROADCASTSS c+48(FP), Y0
	VBROADCASTSS s+52(FP), Y1
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

rot_loop8:
	CMPQ AX, DX
	JGE  rot_tail
	VMOVUPS      (DI)(AX*4), Y2
	VMOVUPS      (SI)(AX*4), Y3
	VMULPS       Y2, Y0, Y4   // c*x
	VFNMADD231PS Y3, Y1, Y4   // c*x − s*y
	VMULPS       Y3, Y0, Y5   // c*y
	VFMADD231PS  Y2, Y1, Y5   // s*x + c*y
	VMOVUPS      Y4, (DI)(AX*4)
	VMOVUPS      Y5, (SI)(AX*4)
	ADDQ $8, AX
	JMP  rot_loop8

rot_tail:
	CMPQ AX, CX
	JGE  rot_done
	VMOVSS       (DI)(AX*4), X2
	VMOVSS       (SI)(AX*4), X3
	VMULSS       X2, X0, X4
	VFNMADD231SS X3, X1, X4
	VMULSS       X3, X0, X5
	VFMADD231SS  X2, X1, X5
	VMOVSS       X4, (DI)(AX*4)
	VMOVSS       X5, (SI)(AX*4)
	INCQ AX
	JMP  rot_tail

rot_done:
	VZEROUPPER
	RET

// func widenAVX(dst []float64, src []float32)
// dst = widen(src), 4 elements per iteration.
TEXT ·widenAVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

widen_loop4:
	CMPQ AX, DX
	JGE  widen_tail
	VMOVUPS   (SI)(AX*4), X1
	VCVTPS2PD X1, Y1
	VMOVUPD   Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  widen_loop4

widen_tail:
	CMPQ AX, CX
	JGE  widen_done
	VCVTSS2SD (SI)(AX*4), X1, X1
	VMOVSD    X1, (DI)(AX*8)
	INCQ AX
	JMP  widen_tail

widen_done:
	VZEROUPPER
	RET

// func narrowAVX(dst []float32, src []float64)
// dst = round(src), 4 elements per iteration.
TEXT ·narrowAVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

narrow_loop4:
	CMPQ AX, DX
	JGE  narrow_tail
	VMOVUPD    (SI)(AX*8), Y1
	VCVTPD2PSY Y1, X1
	VMOVUPS    X1, (DI)(AX*4)
	ADDQ $4, AX
	JMP  narrow_loop4

narrow_tail:
	CMPQ AX, CX
	JGE  narrow_done
	VCVTSD2SS (SI)(AX*8), X1, X1
	VMOVSS    X1, (DI)(AX*4)
	INCQ AX
	JMP  narrow_tail

narrow_done:
	VZEROUPPER
	RET

// func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
