package tensor

import (
	"fmt"
	"math"
)

// Axis reductions, slicing and concatenation over the leading dimension,
// and numerically careful softmax/log-softmax helpers. These round out the
// tensor surface for library users beyond what the core training loop
// strictly needs.

// SumAxis0 returns the column sums of a matrix: shape [cols].
func SumAxis0(m *Tensor) *Tensor {
	if m.NDim() != 2 {
		panic("tensor: SumAxis0 requires a matrix")
	}
	rows, cols := m.Shape[0], m.Shape[1]
	out := New(cols)
	for i := 0; i < rows; i++ {
		row := m.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SumAxis1 returns the row sums of a matrix: shape [rows].
func SumAxis1(m *Tensor) *Tensor {
	if m.NDim() != 2 {
		panic("tensor: SumAxis1 requires a matrix")
	}
	rows, cols := m.Shape[0], m.Shape[1]
	out := New(rows)
	for i := 0; i < rows; i++ {
		var s float64
		for _, v := range m.Data[i*cols : (i+1)*cols] {
			s += v
		}
		out.Data[i] = s
	}
	return out
}

// MeanAxis0 returns per-column means.
func MeanAxis0(m *Tensor) *Tensor {
	out := SumAxis0(m)
	if m.Shape[0] > 0 {
		out.Scale(1 / float64(m.Shape[0]))
	}
	return out
}

// VarAxis0 returns per-column population variances.
func VarAxis0(m *Tensor) *Tensor {
	rows, cols := m.Shape[0], m.Shape[1]
	mean := MeanAxis0(m)
	out := New(cols)
	if rows == 0 {
		return out
	}
	for i := 0; i < rows; i++ {
		row := m.Data[i*cols : (i+1)*cols]
		for j, v := range row {
			d := v - mean.Data[j]
			out.Data[j] += d * d
		}
	}
	out.Scale(1 / float64(rows))
	return out
}

// SliceRows returns a copy of rows [lo, hi) of the leading dimension.
func SliceRows(t *Tensor, lo, hi int) *Tensor {
	n := t.Shape[0]
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d] out of range for %d rows", lo, hi, n))
	}
	inner := t.Len() / max(n, 1)
	shape := append([]int{hi - lo}, t.Shape[1:]...)
	out := New(shape...)
	copy(out.Data, t.Data[lo*inner:hi*inner])
	return out
}

// ConcatRows stacks tensors along the leading dimension. All inputs must
// share trailing dimensions.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatRows of nothing")
	}
	first := ts[0]
	inner := first.Len() / max(first.Shape[0], 1)
	total := 0
	for _, t := range ts {
		if t.Len()/max(t.Shape[0], 1) != inner || t.NDim() != first.NDim() {
			panic("tensor: ConcatRows shape mismatch")
		}
		total += t.Shape[0]
	}
	shape := append([]int{total}, first.Shape[1:]...)
	out := New(shape...)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += t.Len()
	}
	return out
}

// Softmax returns row-wise softmax probabilities of a logits matrix, using
// max-subtraction for stability.
func Softmax(logits *Tensor) *Tensor {
	rows, cols := logits.Shape[0], logits.Shape[1]
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		row := logits.Data[i*cols : (i+1)*cols]
		dst := out.Data[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - m)
			dst[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// LogSumExpRows returns the stable log-sum-exp of each matrix row.
func LogSumExpRows(logits *Tensor) *Tensor {
	rows, cols := logits.Shape[0], logits.Shape[1]
	out := New(rows)
	for i := 0; i < rows; i++ {
		row := logits.Data[i*cols : (i+1)*cols]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(v - m)
		}
		out.Data[i] = m + math.Log(sum)
	}
	return out
}

// Pad2D zero-pads the two trailing spatial dimensions of an [N, C, H, W]
// tensor by p on every side.
func Pad2D(x *Tensor, p int) *Tensor {
	if p == 0 {
		return x.Clone()
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, h+2*p, w+2*p)
	ow := w + 2*p
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			srcBase := (img*c + ch) * h * w
			dstBase := (img*c+ch)*(h+2*p)*ow + p*ow + p
			for y := 0; y < h; y++ {
				copy(out.Data[dstBase+y*ow:dstBase+y*ow+w], x.Data[srcBase+y*w:srcBase+(y+1)*w])
			}
		}
	}
	return out
}

// Clamp limits every element to [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float64) {
	for i, v := range t.Data {
		if v < lo {
			t.Data[i] = lo
		} else if v > hi {
			t.Data[i] = hi
		}
	}
}
