// Package testenv centralizes the reduced-iteration knob the race-enabled
// CI job uses: `go test -race ./...` multiplies runtimes several-fold, so
// the concurrency-heavy suites (pipelined engine, sessions, chaos
// conformance) read Short() and shrink world sizes / iteration counts to
// stay under the job timeout while still exercising every code path.
package testenv

import (
	"flag"
	"os"
)

// ShortEnv is the environment variable that switches tests into
// reduced-iteration mode (any non-empty value). CI's race job sets it.
const ShortEnv = "REPRO_TEST_SHORT"

// Short reports whether tests should run at reduced scale: either the
// standard -short flag or the ShortEnv variable is set. Safe to call from
// test helpers before flag.Parse (the env var needs no flags).
func Short() bool {
	if os.Getenv(ShortEnv) != "" {
		return true
	}
	f := flag.Lookup("test.short")
	if f == nil {
		return false
	}
	b, ok := f.Value.(flag.Getter)
	if !ok {
		return false
	}
	v, _ := b.Get().(bool)
	return v
}

// Scale returns full normally and short under reduced-iteration mode.
func Scale(full, short int) int {
	if Short() {
		return short
	}
	return full
}
