package ckptstore

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/models"
)

func testFile(t *testing.T, seed int64, epoch, step int) *checkpoint.File {
	t.Helper()
	m := models.BuildMLP("mlp", []int{4, 6, 2}, rand.New(rand.NewSource(seed)))
	return checkpoint.Snapshot(m, epoch, step)
}

// Put files an object under its content hash and a round trip preserves
// both the training state and the hash.
func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testFile(t, 1, 2, 20)
	ref, created, err := s.Put("job-a", f)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Put of new content reported a dedup hit")
	}
	want, err := f.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Sum != want || ref.Seq != 1 || ref.Job != "job-a" {
		t.Errorf("ref = %+v, want seq 1 of job-a under %x", ref, want)
	}

	got, err := s.Get(ref.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || got.Step != 20 {
		t.Errorf("round trip lost progress: %d/%d", got.Epoch, got.Step)
	}
	sum, err := got.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum != want {
		t.Error("content hash changed through the store")
	}
}

// Identical content from different jobs (or repeat Puts) shares one
// object: content addressing dedups, refs keep per-job ownership.
func TestPutDeduplicatesIdenticalContent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testFile(t, 2, 1, 10)
	if _, created, err := s.Put("job-a", f); err != nil || !created {
		t.Fatalf("first put: created=%v err=%v", created, err)
	}
	if _, created, err := s.Put("job-a", f); err != nil || created {
		t.Fatalf("repeat put: created=%v err=%v, want dedup hit", created, err)
	}
	if _, created, err := s.Put("job-b", f); err != nil || created {
		t.Fatalf("cross-job put: created=%v err=%v, want dedup hit", created, err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 || st.Refs != 3 || st.Jobs != 2 {
		t.Errorf("stats %+v, want 1 object, 3 refs, 2 jobs", st)
	}
}

// Latest follows the highest sequence number; a job with no checkpoints
// reports absence without error; sequence numbering survives reopening.
func TestLatestAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if f, _, err := s.Latest("ghost"); err != nil || f != nil {
		t.Fatalf("Latest on unknown job = (%v, %v), want (nil, nil)", f, err)
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := s.Put("job-a", testFile(t, int64(10+i), i, i*10)); err != nil {
			t.Fatal(err)
		}
	}
	f, ref, err := s.Latest("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Seq != 3 || f.Epoch != 3 {
		t.Errorf("latest = seq %d epoch %d, want seq 3 epoch 3", ref.Seq, f.Epoch)
	}

	// Reopen: numbering continues rather than restarting at 1.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref4, _, err := s2.Put("job-a", testFile(t, 99, 4, 40))
	if err != nil {
		t.Fatal(err)
	}
	if ref4.Seq != 4 {
		t.Errorf("post-reopen seq = %d, want 4", ref4.Seq)
	}
}

// Count-based retention keeps the newest MaxPerJob refs and GC removes the
// objects they alone referenced.
func TestPruneCountRetentionAndGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if _, _, err := s.Put("job-a", testFile(t, int64(20+i), i, i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Prune(Policy{MaxPerJob: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefsRemoved != 3 || rep.ObjectsRemoved != 3 || rep.BytesFreed <= 0 {
		t.Errorf("prune report %+v, want 3 refs and 3 objects removed", rep)
	}
	refs, err := s.Refs("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Seq != 4 || refs[1].Seq != 5 {
		t.Errorf("surviving refs %+v, want seqs 4 and 5", refs)
	}
	// Survivors still load and verify.
	if _, err := s.Get(refs[1].Sum); err != nil {
		t.Errorf("surviving object unreadable: %v", err)
	}
	// The pruned objects are gone.
	st, _ := s.Stats()
	if st.Objects != 2 {
		t.Errorf("%d objects after GC, want 2", st.Objects)
	}
}

// GC never removes an object that another job still references.
func TestPruneKeepsCrossJobSharedObjects(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := testFile(t, 31, 1, 1)
	if _, _, err := s.Put("job-a", shared); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("job-b", shared); err != nil {
		t.Fatal(err)
	}
	// job-a gets a newer checkpoint, then is pruned down to 1 ref.
	if _, _, err := s.Put("job-a", testFile(t, 32, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prune(Policy{MaxPerJob: 1}); err != nil {
		t.Fatal(err)
	}
	// job-b's (older, shared) object must survive the GC.
	f, ref, err := s.Latest("job-b")
	if err != nil || f == nil {
		t.Fatalf("shared object lost: %v", err)
	}
	wantSum, _ := shared.Sum()
	if ref.Sum != wantSum {
		t.Error("job-b latest is not the shared checkpoint")
	}
}

// Age-based retention drops old refs but always keeps each job's newest.
func TestPruneAgeRetentionKeepsNewest(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var refs []Ref
	for i := 1; i <= 3; i++ {
		r, _, err := s.Put("job-a", testFile(t, int64(40+i), i, i))
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	// Backdate every ref beyond the age limit; the newest must survive
	// anyway (the resume guarantee).
	old := time.Now().Add(-time.Hour)
	for _, r := range refs {
		path := filepath.Join(s.Root(), "jobs", "job-a",
			refName(r.Seq, r.Sum))
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := s.Prune(Policy{MaxAge: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RefsRemoved != 2 {
		t.Errorf("removed %d refs, want 2 (newest exempt)", rep.RefsRemoved)
	}
	left, err := s.Refs("job-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0].Seq != 3 {
		t.Errorf("surviving refs %+v, want only seq 3", left)
	}
}

// A corrupted object fails content verification on Get instead of handing
// back wrong training state.
func TestGetDetectsCorruptObject(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := s.Put("job-a", testFile(t, 51, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Flip stored bytes while keeping the file a decodable checkpoint: a
	// re-encode of different content under the same name.
	other := testFile(t, 52, 9, 9)
	if err := other.Save(s.objectPath(ref.Sum)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ref.Sum); err == nil {
		t.Error("Get accepted an object that does not match its address")
	}
}

// Job names reach the filesystem, so hostile ones are rejected outright.
func TestPutRejectsUnsafeJobNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := testFile(t, 61, 1, 1)
	for _, job := range []string{"", "../escape", "a/b", ".hidden", "x y"} {
		if _, _, err := s.Put(job, f); err == nil {
			t.Errorf("Put accepted unsafe job name %q", job)
		}
	}
}
