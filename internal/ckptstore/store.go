// Package ckptstore is a content-addressed checkpoint store: checkpoint
// files are stored once per distinct content (keyed by the SHA-256 of
// their canonical serialized bytes, checkpoint.File.Sum) and referenced
// per job in submission order. Two jobs — or two epochs of one job —
// whose training state is bit-identical share a single stored object.
//
// Layout under the store root:
//
//	objects/<64-hex-sha256>.ckpt   the deduplicated checkpoint bytes
//	jobs/<job>/<seq>_<64-hex>.ref  one empty marker per stored checkpoint,
//	                               seq strictly increasing per job
//
// Objects are immutable once written (their name commits to their
// content); refs carry the ordering and ownership. Retention is applied
// to refs (count and age per job, newest always kept) and garbage
// collection removes objects no surviving ref points to. The kfacd
// control-plane daemon keeps every job's recovery checkpoints here.
package ckptstore

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/checkpoint"
)

// jobNameRE bounds job identifiers to filesystem-safe names.
var jobNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Store is a content-addressed checkpoint store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	root string

	mu  sync.Mutex
	seq map[string]int // per-job last issued ref sequence
}

// Ref identifies one stored checkpoint of one job.
type Ref struct {
	// Job is the owning job identifier.
	Job string
	// Seq is the job-local, strictly increasing checkpoint number.
	Seq int
	// Sum is the content hash the object is filed under.
	Sum [32]byte
	// Time is when the ref was recorded (the ref file's mtime).
	Time time.Time
}

// Hex returns the object key as lowercase hex.
func (r Ref) Hex() string { return hex.EncodeToString(r.Sum[:]) }

// Stats summarizes store occupancy.
type Stats struct {
	// Objects is the number of distinct stored checkpoints.
	Objects int `json:"objects"`
	// Refs is the number of job references over those objects; Refs >
	// Objects means deduplication is saving space.
	Refs int `json:"refs"`
	// Bytes is the total size of the stored objects.
	Bytes int64 `json:"bytes"`
	// Jobs is the number of jobs holding at least one ref.
	Jobs int `json:"jobs"`
}

// Policy is the retention policy Prune applies per job. Zero values
// disable the respective limit; the newest ref of every job is always
// retained regardless, so a paused job can always resume.
type Policy struct {
	// MaxPerJob keeps at most this many newest refs per job (0 = no limit).
	MaxPerJob int
	// MaxAge drops refs older than this (0 = no limit).
	MaxAge time.Duration
}

// PruneReport counts what one Prune pass removed.
type PruneReport struct {
	// RefsRemoved counts dropped job references.
	RefsRemoved int
	// ObjectsRemoved counts garbage-collected objects (no surviving ref).
	ObjectsRemoved int
	// BytesFreed is the size of the removed objects.
	BytesFreed int64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "jobs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("ckptstore: %w", err)
		}
	}
	s := &Store{root: dir, seq: make(map[string]int)}
	// Rebuild per-job sequence counters from whatever refs already exist,
	// so a reopened store continues numbering instead of colliding.
	jobs, err := s.Jobs()
	if err != nil {
		return nil, err
	}
	for _, job := range jobs {
		refs, err := s.Refs(job)
		if err != nil {
			return nil, err
		}
		if len(refs) > 0 {
			s.seq[job] = refs[len(refs)-1].Seq
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectPath(sum [32]byte) string {
	return filepath.Join(s.root, "objects", hex.EncodeToString(sum[:])+".ckpt")
}

func (s *Store) jobDir(job string) string { return filepath.Join(s.root, "jobs", job) }

func refName(seq int, sum [32]byte) string {
	return fmt.Sprintf("%08d_%s.ref", seq, hex.EncodeToString(sum[:]))
}

// parseRefName inverts refName; ok is false for foreign files.
func parseRefName(name string) (seq int, sum [32]byte, ok bool) {
	base, found := strings.CutSuffix(name, ".ref")
	if !found {
		return 0, sum, false
	}
	seqStr, hexStr, found := strings.Cut(base, "_")
	if !found || len(hexStr) != 64 {
		return 0, sum, false
	}
	seq, err := strconv.Atoi(seqStr)
	if err != nil {
		return 0, sum, false
	}
	raw, err := hex.DecodeString(hexStr)
	if err != nil {
		return 0, sum, false
	}
	copy(sum[:], raw)
	return seq, sum, true
}

// Put stores one checkpoint under job, deduplicating by content: the
// object is written only if its hash is not already present, and a new ref
// is recorded either way. Returns the ref and whether a new object was
// created (false = pure dedup hit).
func (s *Store) Put(job string, f *checkpoint.File) (Ref, bool, error) {
	if !jobNameRE.MatchString(job) {
		return Ref{}, false, fmt.Errorf("ckptstore: invalid job name %q", job)
	}
	sum, err := f.Sum()
	if err != nil {
		return Ref{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	created := false
	objPath := s.objectPath(sum)
	if _, err := os.Stat(objPath); os.IsNotExist(err) {
		// checkpoint.Save writes via temp file + rename, so a crashed Put
		// never leaves a half-written object under a content hash.
		if err := f.Save(objPath); err != nil {
			return Ref{}, false, fmt.Errorf("ckptstore: storing object: %w", err)
		}
		created = true
	} else if err != nil {
		return Ref{}, false, fmt.Errorf("ckptstore: %w", err)
	}

	if err := os.MkdirAll(s.jobDir(job), 0o755); err != nil {
		return Ref{}, false, fmt.Errorf("ckptstore: %w", err)
	}
	seq := s.seq[job] + 1
	s.seq[job] = seq
	refPath := filepath.Join(s.jobDir(job), refName(seq, sum))
	if err := os.WriteFile(refPath, nil, 0o644); err != nil {
		return Ref{}, false, fmt.Errorf("ckptstore: recording ref: %w", err)
	}
	ref := Ref{Job: job, Seq: seq, Sum: sum, Time: time.Now()}
	if fi, err := os.Stat(refPath); err == nil {
		ref.Time = fi.ModTime()
	}
	return ref, created, nil
}

// Get loads the checkpoint stored under the given content hash.
func (s *Store) Get(sum [32]byte) (*checkpoint.File, error) {
	f, err := checkpoint.Load(s.objectPath(sum))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: object %s: %w", hex.EncodeToString(sum[:8]), err)
	}
	got, err := f.Sum()
	if err != nil {
		return nil, err
	}
	if got != sum {
		// Bit rot or tampering: the object no longer matches its address.
		return nil, fmt.Errorf("ckptstore: object %s failed content verification",
			hex.EncodeToString(sum[:8]))
	}
	return f, nil
}

// Refs lists job's checkpoints in ascending sequence order. A job with no
// refs returns an empty slice, not an error.
func (s *Store) Refs(job string) ([]Ref, error) {
	entries, err := os.ReadDir(s.jobDir(job))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	refs := make([]Ref, 0, len(entries))
	for _, e := range entries {
		seq, sum, ok := parseRefName(e.Name())
		if !ok {
			continue
		}
		r := Ref{Job: job, Seq: seq, Sum: sum}
		if fi, err := e.Info(); err == nil {
			r.Time = fi.ModTime()
		}
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Seq < refs[j].Seq })
	return refs, nil
}

// Latest returns job's newest checkpoint, or (nil, zero Ref, nil) when the
// job has none — absence is a normal state, not an error.
func (s *Store) Latest(job string) (*checkpoint.File, Ref, error) {
	refs, err := s.Refs(job)
	if err != nil || len(refs) == 0 {
		return nil, Ref{}, err
	}
	last := refs[len(refs)-1]
	f, err := s.Get(last.Sum)
	if err != nil {
		return nil, Ref{}, err
	}
	return f, last, nil
}

// Jobs lists every job holding at least one ref, sorted.
func (s *Store) Jobs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	var jobs []string
	for _, e := range entries {
		if e.IsDir() {
			jobs = append(jobs, e.Name())
		}
	}
	sort.Strings(jobs)
	return jobs, nil
}

// Stats scans the store and reports occupancy.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	objs, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return st, fmt.Errorf("ckptstore: %w", err)
	}
	for _, o := range objs {
		if !strings.HasSuffix(o.Name(), ".ckpt") {
			continue
		}
		st.Objects++
		if fi, err := o.Info(); err == nil {
			st.Bytes += fi.Size()
		}
	}
	jobs, err := s.Jobs()
	if err != nil {
		return st, err
	}
	for _, job := range jobs {
		refs, err := s.Refs(job)
		if err != nil {
			return st, err
		}
		if len(refs) > 0 {
			st.Jobs++
		}
		st.Refs += len(refs)
	}
	return st, nil
}

// Prune applies the retention policy, then garbage-collects objects no
// surviving ref points to. The newest ref of every job is exempt from both
// limits: whatever else is trimmed, every job keeps a resumable
// checkpoint.
func (s *Store) Prune(pol Policy) (PruneReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep PruneReport

	jobs, err := s.Jobs()
	if err != nil {
		return rep, err
	}
	live := make(map[[32]byte]bool)
	cutoff := time.Time{}
	if pol.MaxAge > 0 {
		cutoff = time.Now().Add(-pol.MaxAge)
	}
	for _, job := range jobs {
		refs, err := s.Refs(job)
		if err != nil {
			return rep, err
		}
		for i, r := range refs {
			newest := i == len(refs)-1
			drop := false
			if !newest {
				if pol.MaxPerJob > 0 && len(refs)-i > pol.MaxPerJob {
					drop = true
				}
				if pol.MaxAge > 0 && r.Time.Before(cutoff) {
					drop = true
				}
			}
			if drop {
				if err := os.Remove(filepath.Join(s.jobDir(job), refName(r.Seq, r.Sum))); err != nil {
					return rep, fmt.Errorf("ckptstore: pruning ref: %w", err)
				}
				rep.RefsRemoved++
				continue
			}
			live[r.Sum] = true
		}
	}

	objs, err := os.ReadDir(filepath.Join(s.root, "objects"))
	if err != nil {
		return rep, fmt.Errorf("ckptstore: %w", err)
	}
	for _, o := range objs {
		hexStr, found := strings.CutSuffix(o.Name(), ".ckpt")
		if !found || len(hexStr) != 64 {
			continue
		}
		raw, err := hex.DecodeString(hexStr)
		if err != nil {
			continue
		}
		var sum [32]byte
		copy(sum[:], raw)
		if live[sum] {
			continue
		}
		path := filepath.Join(s.root, "objects", o.Name())
		if fi, err := o.Info(); err == nil {
			rep.BytesFreed += fi.Size()
		}
		if err := os.Remove(path); err != nil {
			return rep, fmt.Errorf("ckptstore: collecting object: %w", err)
		}
		rep.ObjectsRemoved++
	}
	return rep, nil
}
