// Benchmark-trajectory harness: kfac-bench's -json mode. Each scenario
// (model size × step engine) runs a single-process training loop with real
// forward/backward and K-FAC steps, measuring wall time per step, the
// preconditioner's stage profile and pipeline overlap, and heap
// allocations/bytes per step — both over a realistic update mix and in the
// stale-decomposition steady state. Results are written as one
// schema-stable BENCH_<scenario>.json per scenario so every future change
// has a recorded trajectory to regress against (CI uploads the JSON of a
// -short run as an artifact and gates on parseability, not timings).
package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// BenchSchema identifies the BENCH_*.json layout. Bump only with a
// migration note in docs/PERFORMANCE.md; downstream tooling (CI artifact
// gate, trend plots) keys on it.
const BenchSchema = "kfac-bench/v1"

// BenchResult is the JSON record one benchmark scenario emits. All
// durations are nanoseconds; alloc metrics are per executed step.
type BenchResult struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"` // "<model>_<engine>[_f32]" or "dist_<model>_w<world>_<mode>"
	Model    string `json:"model"`
	Engine   string `json:"engine"`
	// Precision is the K-FAC compute precision of the run: "f64" (the exact
	// reference path) or "f32" (float32 kernels with float64 accumulation;
	// the scenario name carries a matching _f32 suffix).
	Precision string `json:"precision"`
	// Fabric is the transport the scenario ran on: "local" for
	// single-process cells, "inproc" for the in-process dist_* axis, "tcp"
	// when the cell ran across real OS processes over the TCP transport
	// (kfac-bench -fabric tcp).
	Fabric string `json:"fabric"`

	// Distribution axis. Single-process scenarios report world 1 and the
	// resolved COMM-OPT plan; dist_* scenarios sweep
	// {COMM-OPT, MEM-OPT, HYBRID} × grad-worker fraction at world > 1,
	// with per-rank peak factor memory recorded alongside step time — the
	// measured memory-vs-communication tradeoff.
	World                  int     `json:"world"`
	DistMode               string  `json:"dist_mode"`
	GradWorkerFrac         float64 `json:"grad_worker_frac"`
	PeakFactorBytesPerRank []int64 `json:"peak_factor_bytes_per_rank"`
	// Environment, for comparing trajectories across hosts.
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Params     int    `json:"params"`
	KFACLayers int    `json:"kfac_layers"`
	BatchSize  int    `json:"batch_size"`

	// Mixed phase: FactorUpdateFreq/InvUpdateFreq as configured, so steps
	// amortize factor and decomposition updates the way training does.
	Steps            int     `json:"steps"`
	FactorUpdateFreq int     `json:"factor_update_freq"`
	InvUpdateFreq    int     `json:"inv_update_freq"`
	StepTimeMeanNS   int64   `json:"step_time_mean_ns"`
	StepTimeMinNS    int64   `json:"step_time_min_ns"`
	StepTimeMaxNS    int64   `json:"step_time_max_ns"`
	AllocsPerStep    float64 `json:"allocs_per_step"`
	BytesPerStep     float64 `json:"bytes_per_step"`

	// Stage profile accumulated over the mixed phase (preconditioner's
	// StageStats), plus the pipelined engine's overlap estimate.
	FactorComputeNS int64 `json:"factor_compute_ns"`
	FactorCommNS    int64 `json:"factor_comm_ns"`
	EigComputeNS    int64 `json:"eig_compute_ns"`
	EigCommNS       int64 `json:"eig_comm_ns"`
	PreconditionNS  int64 `json:"precondition_ns"`
	OverlapNS       int64 `json:"overlap_ns"`

	// Steady phase: stale decompositions only (the common iteration).
	SteadySteps         int     `json:"steady_steps"`
	SteadyStepTimeNS    int64   `json:"steady_step_time_mean_ns"`
	SteadyAllocsPerStep float64 `json:"steady_allocs_per_step"`
	SteadyBytesPerStep  float64 `json:"steady_bytes_per_step"`
}

// benchScenario is one (model, engine) cell of the benchmark matrix.
type benchScenario struct {
	model     string
	blocks    int
	width     int
	batch     int
	steps     int
	engines   []kfac.Engine
	precision kfac.Precision
}

// benchMatrix returns the scenario list: -short runs one tiny model for the
// CI smoke job; the full matrix covers small/medium/large against both
// engines.
func benchMatrix(short bool) []benchScenario {
	engines := []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined}
	if short {
		tiny := benchScenario{model: "tiny", blocks: 1, width: 4, batch: 4, steps: 6, engines: engines}
		tinyF32 := tiny
		tinyF32.precision = kfac.F32
		return []benchScenario{tiny, tinyF32}
	}
	cells := []benchScenario{
		{model: "small", blocks: 1, width: 8, batch: 8, steps: 20, engines: engines},
		{model: "medium", blocks: 2, width: 16, batch: 8, steps: 20, engines: engines},
		{model: "large", blocks: 3, width: 32, batch: 8, steps: 10, engines: engines},
	}
	// Mixed-precision cells mirror small and medium — the sizes the
	// committed trajectories track f64-vs-f32 on (docs/PERFORMANCE.md).
	for _, base := range cells[:2] {
		f32 := base
		f32.precision = kfac.F32
		cells = append(cells, f32)
	}
	return cells
}

// distScenario is one cell of the distribution-mode benchmark axis: a
// multi-rank run of one (model, mode, grad-worker fraction) combination,
// in-process by default or across real OS processes under the TCP driver.
type distScenario struct {
	name      string
	mode      kfac.DistMode
	frac      float64
	model     string
	blocks    int
	width     int
	batch     int
	world     int
	steps     int
	precision kfac.Precision
	// fabric is the transport label the cell records ("inproc" when empty).
	fabric string
	// autotune enables the bandwidth-adaptive controller; on the bench's
	// clean in-process fabric it stays at the exact level, so the cell
	// measures pure controller overhead (one consensus allreduce per
	// factor update) against its _-less static twin via benchdiff -suffix.
	autotune bool
}

// DefaultDistWorld is the dist_* axis world size when none is requested —
// the historical in-process default the committed w4 trajectories use.
const DefaultDistWorld = 4

// scenarioName derives the cell's schema-stable scenario string
// ("dist_<model>_w<world>_<name>[_f32]"). File names, the schema test, and
// the CI artifact asserts all come from this one formula.
func (sc distScenario) scenarioName() string {
	s := fmt.Sprintf("dist_%s_w%d_%s", sc.model, sc.world, sc.name)
	if sc.precision == kfac.F32 {
		s += "_f32"
	}
	return s
}

// fabricLabel returns the transport label the cell records.
func (sc distScenario) fabricLabel() string {
	if sc.fabric == "" {
		return "inproc"
	}
	return sc.fabric
}

// distMatrix returns the {mode, gradWorkerFrac} × precision scenario axis
// at the given world size (0 = DefaultDistWorld). The four mode cells cover
// both endpoints of the memory/communication tradeoff and two HYBRID
// interpolations, each measured at the f64 reference precision and on the
// float32 kernel path (_f32 cells: the layers compute in float32 and K-FAC
// runs its narrowed kernels, so the cells track the mixed-precision cost of
// the distribution machinery); -short shrinks the model for the CI smoke
// job.
func distMatrix(short bool, world int) []distScenario {
	model, blocks, width, batch, steps := "small", 1, 8, 8, 8
	if short {
		model, blocks, width, batch, steps = "tiny", 1, 4, 4, 4
	}
	if world <= 0 {
		world = DefaultDistWorld
	}
	cells := []struct {
		name string
		mode kfac.DistMode
		frac float64
	}{
		{"commopt", kfac.CommOpt, 0},
		{"memopt", kfac.MemOpt, 0},
		{"hybrid25", kfac.Hybrid, 0.25},
		{"hybrid50", kfac.Hybrid, 0.5},
	}
	out := make([]distScenario, 0, 2*len(cells)+1)
	for _, prec := range []kfac.Precision{kfac.F64, kfac.F32} {
		for _, c := range cells {
			out = append(out, distScenario{
				name: c.name, mode: c.mode, frac: c.frac,
				model: model, blocks: blocks, width: width, batch: batch,
				world: world, steps: steps, precision: prec,
			})
		}
	}
	// The autotune twin of the f64 COMM-OPT cell:
	// `benchdiff -suffix _autotune` rekeys it onto dist_<model>_w<N>_commopt
	// and reports the controller's step-time overhead as the delta.
	out = append(out, distScenario{
		name: "commopt_autotune", mode: kfac.CommOpt,
		model: model, blocks: blocks, width: width, batch: batch,
		world: world, steps: steps, precision: kfac.F64, autotune: true,
	})
	return out
}

// BenchConfig parameterizes one -json benchmark run: the axes every cell
// name is derived from. BenchCells on the same config predicts exactly
// which BENCH_<scenario>.json files the run writes — the schema test and
// the CI artifact asserts both consume that derivation instead of baked-in
// name lists.
type BenchConfig struct {
	// Short selects the tiny-model matrix (the CI smoke job).
	Short bool
	// Seed is the synthetic-data RNG seed.
	Seed int64
	// Precision restricts the matrix to one precision slice: "f64" keeps
	// the reference cells, "f32" the mixed-precision (_f32) cells, "both"
	// (also the "" default) runs everything.
	Precision string
	// World is the dist_* axis world size (0 = DefaultDistWorld).
	World int
}

// keepPrecision reports whether a cell of the given precision is in the
// configured slice.
func (cfg BenchConfig) keepPrecision(p kfac.Precision) bool {
	switch cfg.Precision {
	case "f64":
		return p == kfac.F64
	case "f32":
		return p == kfac.F32
	default:
		return true
	}
}

// validate rejects unknown precision slices.
func (cfg BenchConfig) validate() error {
	switch cfg.Precision {
	case "", "f64", "f32", "both":
		return nil
	default:
		return fmt.Errorf("bench: unknown precision filter %q (want f64, f32, or both)", cfg.Precision)
	}
}

// BenchCells returns, in run order, the scenario names RunBenchJSONConfig
// emits for a config — the derivation the schema test and the CI artifact
// asserts (kfac-bench -cells) share with the runner, so the expected file
// list can never drift from the axes.
func BenchCells(cfg BenchConfig) []string {
	var out []string
	for _, sc := range benchMatrix(cfg.Short) {
		if !cfg.keepPrecision(sc.precision) {
			continue
		}
		for _, engine := range sc.engines {
			name := fmt.Sprintf("%s_%s", sc.model, engine)
			if sc.precision == kfac.F32 {
				name += "_f32"
			}
			out = append(out, name)
		}
	}
	for _, sc := range distMatrix(cfg.Short, cfg.World) {
		if !cfg.keepPrecision(sc.precision) {
			continue
		}
		out = append(out, sc.scenarioName())
	}
	return out
}

// writeBenchResult persists one scenario record as BENCH_<scenario>.json
// and returns the file path.
func writeBenchResult(outDir string, res *BenchResult) (string, error) {
	path := filepath.Join(outDir, fmt.Sprintf("BENCH_%s.json", res.Scenario))
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// RunBenchJSON executes the benchmark matrix — the single-process
// (model × engine) cells plus the distributed {mode, gradWorkerFrac} axis
// — and writes one BENCH_<scenario>.json per scenario into outDir,
// returning the file paths. Scenarios respect ctx cancellation between
// steps.
func RunBenchJSON(ctx context.Context, outDir string, short bool, seed int64) ([]string, error) {
	return RunBenchJSONConfig(ctx, outDir, BenchConfig{Short: short, Seed: seed})
}

// RunBenchJSONFiltered is RunBenchJSON restricted to one precision slice of
// the matrix at the default dist world.
func RunBenchJSONFiltered(ctx context.Context, outDir string, short bool, seed int64, precision string) ([]string, error) {
	return RunBenchJSONConfig(ctx, outDir, BenchConfig{Short: short, Seed: seed, Precision: precision})
}

// RunBenchJSONConfig runs the matrix described by cfg; the emitted file set
// is exactly BenchCells(cfg).
func RunBenchJSONConfig(ctx context.Context, outDir string, cfg BenchConfig) ([]string, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(res *BenchResult) error {
		path, err := writeBenchResult(outDir, res)
		if err != nil {
			return err
		}
		paths = append(paths, path)
		return nil
	}
	for _, sc := range benchMatrix(cfg.Short) {
		if !cfg.keepPrecision(sc.precision) {
			continue
		}
		for _, engine := range sc.engines {
			res, err := runBenchScenario(ctx, sc, engine, cfg.Seed)
			if err != nil {
				return paths, fmt.Errorf("bench %s_%s: %w", sc.model, engine, err)
			}
			if err := write(res); err != nil {
				return paths, err
			}
		}
	}
	for _, sc := range distMatrix(cfg.Short, cfg.World) {
		if !cfg.keepPrecision(sc.precision) {
			continue
		}
		res, err := runDistBenchScenario(ctx, sc, cfg.Seed)
		if err != nil {
			return paths, fmt.Errorf("bench dist %s: %w", sc.name, err)
		}
		if err := write(res); err != nil {
			return paths, err
		}
	}
	return paths, nil
}

// distBenchFreqs are the factor/decomposition update intervals of every
// dist_* cell: short enough that a handful of steps amortizes both stages.
const distBenchFacFreq, distBenchInvFreq = 2, 4

// newDistBenchResult builds the cell's record skeleton shared by the
// in-process and TCP drivers.
func newDistBenchResult(sc distScenario) *BenchResult {
	return &BenchResult{
		Schema:    BenchSchema,
		Scenario:  sc.scenarioName(),
		Model:     sc.model,
		Engine:    kfac.EngineSync.String(),
		Precision: sc.precision.String(),
		Fabric:    sc.fabricLabel(),

		World:                  sc.world,
		PeakFactorBytesPerRank: make([]int64, sc.world),

		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		BatchSize:  sc.batch,

		Steps:            sc.steps,
		FactorUpdateFreq: distBenchFacFreq,
		InvUpdateFreq:    distBenchInvFreq,
	}
}

// runDistRank executes one rank of a dist scenario over communicator c and
// returns this rank's peak factor bytes. Every rank trains the same model
// on the same data (so the measured cost is the distribution machinery,
// not data divergence). Rank 0 additionally fills the timing, plan, and
// stage-profile fields of res; other ranks leave res untouched. Shared by
// the in-process driver (one goroutine per rank over an InprocFabric) and
// the TCP driver (one OS process per rank).
func runDistRank(ctx context.Context, sc distScenario, seed int64, c *comm.Communicator, res *BenchResult) (int64, error) {
	rank := c.Rank()
	rng := rand.New(rand.NewSource(seed))
	net := models.BuildCIFARResNet(sc.blocks, sc.width, 3, 10, rng)
	nn.SetBufferReuse(net, true)
	if sc.precision == kfac.F32 {
		nn.SetComputeF32(net, true)
	}
	opts := kfac.Options{
		FactorUpdateFreq: distBenchFacFreq, InvUpdateFreq: distBenchInvFreq, Damping: 1e-3,
		DistMode: sc.mode, GradWorkerFrac: sc.frac,
		Precision: sc.precision,
	}
	if sc.autotune {
		opts.Autotune = &kfac.AutotuneConfig{}
	}
	prec := kfac.NewFromOptions(net, c, opts)
	defer prec.Close()
	if rank == 0 {
		plan := prec.Plan()
		res.DistMode = plan.Mode.String()
		res.GradWorkerFrac = plan.GradWorkerFrac
		res.Params = nn.ParamCount(net)
		res.KFACLayers = prec.NumLayers()
	}

	ce := nn.CrossEntropy{}
	x := tensor.Randn(rng, 1, sc.batch, 3, 16, 16)
	labels := make([]int, sc.batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	params := net.Params()
	step := func() error {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		for _, p := range params {
			p.ZeroGrad()
		}
		net.Backward(grad)
		return prec.Step(0.1)
	}
	// Warmup: first factor + decomposition update, workspaces settle.
	for i := 0; i < 2; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := step(); err != nil {
			return 0, err
		}
	}
	statsBefore := prec.Stats().Snapshot()
	var total, min, max time.Duration
	for i := 0; i < sc.steps; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		t0 := time.Now()
		if err := step(); err != nil {
			return 0, err
		}
		d := time.Since(t0)
		total += d
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	statsAfter := prec.Stats().Snapshot()
	if rank == 0 {
		res.StepTimeMeanNS = int64(total) / int64(sc.steps)
		res.StepTimeMinNS = int64(min)
		res.StepTimeMaxNS = int64(max)
		res.FactorComputeNS = int64(statsAfter.FactorCompute - statsBefore.FactorCompute)
		res.FactorCommNS = int64(statsAfter.FactorComm - statsBefore.FactorComm)
		res.EigComputeNS = int64(statsAfter.EigCompute - statsBefore.EigCompute)
		res.EigCommNS = int64(statsAfter.EigComm - statsBefore.EigComm)
		res.PreconditionNS = int64(statsAfter.Precondition - statsBefore.Precondition)
	}
	return statsAfter.PeakFactorBytes, nil
}

// runDistBenchScenario measures one distribution-mode cell: world ranks in
// lockstep over an in-process fabric. Step wall time is rank 0's; the
// per-rank peak factor memory comes from each rank's StageStats.
func runDistBenchScenario(ctx context.Context, sc distScenario, seed int64) (*BenchResult, error) {
	fab := comm.NewInprocFabric(sc.world)
	// Hard-abort context for the communicators: a rank that stops early
	// (cancellation, step error) would otherwise leave its peers blocked
	// forever inside a collective on the in-process fabric. Cancelling it
	// fails their receives fast so wg.Wait always returns.
	abortCtx, abort := context.WithCancel(context.Background())
	defer abort()
	res := newDistBenchResult(sc)

	errs := make([]error, sc.world)
	var wg sync.WaitGroup
	for r := 0; r < sc.world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if errs[r] != nil {
					abort()
				}
			}()
			c := comm.NewCommunicator(fab.Endpoint(r)).WithContext(abortCtx)
			peak, err := runDistRank(ctx, sc, seed, c, res)
			if err != nil {
				errs[r] = err
				return
			}
			res.PeakFactorBytesPerRank[r] = peak
		}(r)
	}
	wg.Wait()
	// Prefer the originating failure over the context errors the hard
	// abort induced in peers.
	var ctxErr error
	for r, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			if ctxErr == nil {
				ctxErr = fmt.Errorf("rank %d: %w", r, err)
			}
		default:
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	return res, nil
}

// runBenchScenario measures one scenario. The model trains on synthetic
// data with a fixed seed, so repeated runs measure the same computation.
func runBenchScenario(ctx context.Context, sc benchScenario, engine kfac.Engine, seed int64) (*BenchResult, error) {
	rng := rand.New(rand.NewSource(seed))
	net := models.BuildCIFARResNet(sc.blocks, sc.width, 3, 10, rng)
	nn.SetBufferReuse(net, true)
	if sc.precision == kfac.F32 {
		nn.SetComputeF32(net, true)
	}
	const facFreq, invFreq = 5, 10
	prec := kfac.NewFromOptions(net, nil, kfac.Options{
		FactorUpdateFreq: facFreq, InvUpdateFreq: invFreq, Damping: 1e-3, Engine: engine,
		Precision: sc.precision,
	})
	defer prec.Close()

	scenario := fmt.Sprintf("%s_%s", sc.model, engine)
	if sc.precision == kfac.F32 {
		scenario += "_f32"
	}
	plan := prec.Plan()
	res := &BenchResult{
		Schema:         BenchSchema,
		Scenario:       scenario,
		Model:          sc.model,
		Engine:         engine.String(),
		Precision:      sc.precision.String(),
		Fabric:         "local",
		World:          1,
		DistMode:       plan.Mode.String(),
		GradWorkerFrac: plan.GradWorkerFrac,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GoVersion:      runtime.Version(),
		Params:         nn.ParamCount(net),
		KFACLayers:     prec.NumLayers(),
		BatchSize:      sc.batch,

		Steps:            sc.steps,
		FactorUpdateFreq: facFreq,
		InvUpdateFreq:    invFreq,
	}

	ce := nn.CrossEntropy{}
	x := tensor.Randn(rng, 1, sc.batch, 3, 16, 16)
	labels := make([]int, sc.batch)
	for i := range labels {
		labels[i] = rng.Intn(10)
	}
	params := net.Params() // cached: Params() rebuilds its slice every call
	step := func() error {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		for _, p := range params {
			p.ZeroGrad()
		}
		net.Backward(grad)
		return prec.Step(0.1)
	}

	// Warmup: settles every reuse workspace and runs the first factor +
	// decomposition update.
	for i := 0; i < 2; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}

	// Mixed phase.
	statsBefore := prec.Stats().Snapshot()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	var total, min, max time.Duration
	for i := 0; i < sc.steps; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		if err := step(); err != nil {
			return nil, err
		}
		d := time.Since(t0)
		total += d
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	runtime.ReadMemStats(&ms1)
	statsAfter := prec.Stats().Snapshot()

	res.StepTimeMeanNS = int64(total) / int64(sc.steps)
	res.StepTimeMinNS = int64(min)
	res.StepTimeMaxNS = int64(max)
	res.AllocsPerStep = float64(ms1.Mallocs-ms0.Mallocs) / float64(sc.steps)
	res.BytesPerStep = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(sc.steps)
	res.FactorComputeNS = int64(statsAfter.FactorCompute - statsBefore.FactorCompute)
	res.FactorCommNS = int64(statsAfter.FactorComm - statsBefore.FactorComm)
	res.EigComputeNS = int64(statsAfter.EigCompute - statsBefore.EigCompute)
	res.EigCommNS = int64(statsAfter.EigComm - statsBefore.EigComm)
	res.PreconditionNS = int64(statsAfter.Precondition - statsBefore.Precondition)
	overlapBefore := statsBefore.PipelineWork - statsBefore.PipelineWall
	overlapAfter := statsAfter.PipelineWork - statsAfter.PipelineWall
	if d := overlapAfter - overlapBefore; d > 0 {
		res.OverlapNS = int64(d)
	}

	// Steady phase: freeze updates so every step is stale-decomposition
	// preconditioning only — the zero-allocation hot path.
	prec.SetFactorUpdateFreq(1 << 30)
	prec.SetInvUpdateFreq(1 << 30)
	if err := step(); err != nil { // re-settle after the frequency change
		return nil, err
	}
	steadySteps := sc.steps
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < steadySteps; i++ {
		if err := step(); err != nil {
			return nil, err
		}
	}
	steadyTotal := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res.SteadySteps = steadySteps
	res.SteadyStepTimeNS = int64(steadyTotal) / int64(steadySteps)
	res.SteadyAllocsPerStep = float64(ms1.Mallocs-ms0.Mallocs) / float64(steadySteps)
	res.SteadyBytesPerStep = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(steadySteps)
	res.PeakFactorBytesPerRank = []int64{prec.Stats().Snapshot().PeakFactorBytes}
	return res, nil
}
