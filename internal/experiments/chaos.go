package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func init() {
	register(Experiment{
		ID:    "chaos",
		Title: "Step-time degradation under injected network latency: sync vs pipelined engine",
		Paper: "§V-A motivation: overlapped communication should hide latency; the chaos transport makes the claim measurable by dialing delivery delay up under both engines",
		Run:   runChaos,
	})
}

// runChaos trains the same 2-rank K-FAC configuration under increasing
// per-message injected latency and reports mean optimizer-step wall time
// for the synchronous and pipelined engines side by side. The pipelined
// engine overlaps factor communication with computation, so its step time
// should degrade more slowly as latency grows — the fault-injected
// analogue of the paper's Table V overlap argument. Results are identical
// across engines and latencies by construction (latency-only schedules
// never change arithmetic; see comm.ChaosConfig).
func runChaos(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("chaos")
	header(w, e)

	const world = 2
	dcfg := data.CIFARLike(cfg.Seed)
	dcfg.Train, dcfg.Test, dcfg.Size, dcfg.Noise = 192, 48, 12, 0.8
	epochs := 2
	latencies := []time.Duration{0, 200 * time.Microsecond, 1 * time.Millisecond}
	if cfg.Quick {
		dcfg.Train, dcfg.Test = 96, 32
		epochs = 1
		latencies = []time.Duration{0, 500 * time.Microsecond}
	}
	train, test := data.GenerateSynthetic(dcfg)

	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildSmallCNN(dcfg.Channels, 6, dcfg.Classes, rng)
	}
	runOne := func(engine kfac.Engine, maxLatency time.Duration) (stepMS float64, loss float64, err error) {
		var fab comm.Fabric = comm.NewInprocFabric(world)
		if maxLatency > 0 {
			fab = comm.NewChaosFabric(fab, world, comm.ChaosConfig{
				Seed:       cfg.Seed,
				MinLatency: maxLatency / 10,
				MaxLatency: maxLatency,
			})
		}
		start := time.Now()
		results, err := trainer.RunSessionsOn(ctx, fab, world, build, train, test,
			trainer.WithEpochs(epochs),
			trainer.WithBatchPerRank(16),
			trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05}),
			trainer.WithMomentum(0.9),
			trainer.WithSeed(cfg.Seed),
			trainer.WithKFAC(
				kfac.WithEngine(engine),
				kfac.WithFactorUpdateFreq(1),
				kfac.WithInvUpdateFreq(2)),
		)
		if err != nil {
			return 0, 0, err
		}
		wall := time.Since(start)
		r := results[0]
		if r.Iterations == 0 {
			return 0, 0, fmt.Errorf("chaos experiment ran zero iterations")
		}
		last := r.History[len(r.History)-1]
		return float64(wall) / float64(time.Millisecond) / float64(r.Iterations), last.TrainLoss, nil
	}

	fmt.Fprintf(w, "%-14s  %16s  %16s  %12s\n", "max latency", "sync ms/step", "pipelined ms/step", "overlap gain")
	for _, lat := range latencies {
		syncMS, syncLoss, err := runOne(kfac.EngineSync, lat)
		if err != nil {
			return err
		}
		pipeMS, pipeLoss, err := runOne(kfac.EnginePipelined, lat)
		if err != nil {
			return err
		}
		gain := syncMS / pipeMS
		fmt.Fprintf(w, "%-14v  %16.2f  %16.2f  %11.2fx\n", lat, syncMS, pipeMS, gain)
		if diff := syncLoss - pipeLoss; diff != 0 {
			return fmt.Errorf("engines diverged under latency %v: sync loss %.6f != pipelined %.6f",
				lat, syncLoss, pipeLoss)
		}
	}
	fmt.Fprintln(w, "shape check: identical losses at every latency; pipelined degrades more slowly as latency rises")
	return nil
}
