package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

// EigBenchSchema identifies the BENCH_eig.json layout. Deliberately
// distinct from BenchSchema: the eig microbenchmark is a kernel-level
// cell, not a training-step scenario, and the step-schema tooling
// (benchdiff, the CI artifact gate) skips files carrying this schema.
const EigBenchSchema = "kfac-bench/eig/v1"

// EigBenchResult is the JSON record of the eigensolver microbenchmark:
// serial vs blocked (team 1) vs teamed (team GOMAXPROCS) across factor
// dimensions.
type EigBenchResult struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"` // always "eig"
	// Environment, for comparing trajectories across hosts.
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Seed       int64  `json:"seed"`
	// Dims lists the benchmarked dimensions, Cells one entry per
	// (dim, solver).
	Dims  []int          `json:"dims"`
	Cells []EigBenchCell `json:"cells"`
}

// EigBenchCell is one (dimension, solver) measurement.
type EigBenchCell struct {
	// Dim is the symmetric matrix dimension.
	Dim int `json:"dim"`
	// Solver is "serial" (linalg.SymEigInto), "blocked"
	// (SymEigBlockedInto, team 1), or "teamed" (team GOMAXPROCS).
	Solver string `json:"solver"`
	// Team is the worker-team size the cell ran with (1 for serial).
	Team int `json:"team"`
	// Reps is the measurement repeat count; BestNS the fastest repeat.
	Reps   int   `json:"reps"`
	BestNS int64 `json:"best_ns"`
	// GFlops is EigFLOPs(dim)/BestNS in GFLOP/s.
	GFlops float64 `json:"gflops"`
	// MaxAbsDiffVsSerial bounds the cell's eigenvalue disagreement with
	// the serial oracle on the same input (0 for the serial cell itself) —
	// a correctness tripwire embedded in the committed reference.
	MaxAbsDiffVsSerial float64 `json:"max_abs_diff_vs_serial"`
}

// eigBenchDims returns the benchmarked dimensions: the documented
// 256/1024/4096 ladder, or a small pair under -short for CI smoke.
func eigBenchDims(short bool) []int {
	if short {
		return []int{64, 192}
	}
	return []int{256, 1024, 4096}
}

// eigBenchReps scales repeats down as cubically-growing dimensions make
// single runs statistically stable (and slow).
func eigBenchReps(dim int) int {
	switch {
	case dim <= 256:
		return 3
	case dim <= 1024:
		return 2
	default:
		return 1
	}
}

// eigBenchMatrix builds the deterministic SPD test matrix for one
// dimension — the same BᵀB + εI structure as a K-FAC covariance factor.
func eigBenchMatrix(dim int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed + int64(dim)))
	b := tensor.Randn(rng, 1, dim, dim)
	m := tensor.MatMulT1(b, b)
	for i := 0; i < dim; i++ {
		m.Data[i*dim+i] += 0.1
	}
	return m
}

// RunEigBench measures the eigensolver ladder and writes BENCH_eig.json
// into outDir, returning the file path. Each dimension runs the serial
// oracle, the blocked solver on a single-worker team, and the blocked
// solver with a full GOMAXPROCS team — the kfac eig scheduler's choice
// for a rank whose load is one big factor. Cells respect ctx
// cancellation between runs.
func RunEigBench(ctx context.Context, outDir string, short bool, seed int64) (string, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return "", err
	}
	procs := runtime.GOMAXPROCS(0)
	res := &EigBenchResult{
		Schema:     EigBenchSchema,
		Scenario:   "eig",
		GoMaxProcs: procs,
		GoVersion:  runtime.Version(),
		Seed:       seed,
		Dims:       eigBenchDims(short),
	}
	for _, dim := range res.Dims {
		a := eigBenchMatrix(dim, seed)
		reps := eigBenchReps(dim)
		var serialVals []float64
		for _, solver := range []struct {
			name string
			team int
		}{
			{"serial", 1},
			{"blocked", 1},
			{"teamed", procs},
		} {
			if err := ctx.Err(); err != nil {
				return "", err
			}
			var eg linalg.Eigen
			best := int64(math.MaxInt64)
			for rep := 0; rep < reps; rep++ {
				t0 := time.Now()
				var err error
				if solver.name == "serial" {
					err = linalg.SymEigInto(a, &eg)
				} else {
					err = linalg.SymEigBlockedInto(a, &eg, solver.team)
				}
				if err != nil {
					return "", fmt.Errorf("eig bench dim %d %s: %w", dim, solver.name, err)
				}
				if d := time.Since(t0).Nanoseconds(); d < best {
					best = d
				}
			}
			var diff float64
			if solver.name == "serial" {
				serialVals = append([]float64(nil), eg.Values...)
			} else {
				for i, v := range eg.Values {
					if d := math.Abs(v - serialVals[i]); d > diff {
						diff = d
					}
				}
			}
			res.Cells = append(res.Cells, EigBenchCell{
				Dim:                dim,
				Solver:             solver.name,
				Team:               solver.team,
				Reps:               reps,
				BestNS:             best,
				GFlops:             linalg.EigFLOPs(dim) / float64(best),
				MaxAbsDiffVsSerial: diff,
			})
		}
	}
	path := filepath.Join(outDir, "BENCH_eig.json")
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
