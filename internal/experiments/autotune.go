package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func init() {
	register(Experiment{
		ID:    "autotune",
		Title: "Step-time degradation under bandwidth caps: static exact comm vs bandwidth-adaptive autotuning",
		Paper: "§V-B motivation: communication dominates K-FAC at scale; when the link degrades, compressing payloads trades bits for round trips. The autotuner makes the choice at runtime from a consensus link estimate",
		Run:   runAutotune,
	})
}

// runAutotune trains the same 2-rank K-FAC configuration under
// progressively tighter injected bandwidth caps and reports mean
// optimizer-step wall time for a static exact-transmission configuration
// next to the bandwidth-adaptive one. On a healthy link the autotuner
// stays at the exact level, so the columns track each other; as the cap
// tightens, the consensus bandwidth estimate drops through the policy
// table's bands and the tuned run switches to compressed payloads, so its
// step time must degrade no faster than the static run's at every cap
// level — the degradation-curve acceptance criterion of ROADMAP item 4.
func runAutotune(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("autotune")
	header(w, e)

	const world = 2
	dcfg := data.CIFARLike(cfg.Seed)
	dcfg.Train, dcfg.Test, dcfg.Size, dcfg.Noise = 192, 48, 12, 0.8
	epochs := 2
	caps := []float64{0, 16 << 20, 4 << 20, 1 << 20}
	if cfg.Quick {
		dcfg.Train, dcfg.Test = 96, 32
		epochs = 1
		caps = []float64{0, 2 << 20}
	}
	train, test := data.GenerateSynthetic(dcfg)

	build := func(rng *rand.Rand) *nn.Sequential {
		return models.BuildSmallCNN(dcfg.Channels, 6, dcfg.Classes, rng)
	}
	runOne := func(tuned bool, capBps float64) (stepMS float64, lastDecision string, err error) {
		var fab comm.Fabric = comm.NewInprocFabric(world)
		if capBps > 0 {
			fab = comm.NewChaosFabric(fab, world, comm.ChaosConfig{
				Seed:         cfg.Seed,
				BandwidthBps: capBps,
			})
		}
		kopts := []kfac.Option{
			kfac.WithFactorUpdateFreq(1),
			kfac.WithInvUpdateFreq(2),
		}
		if tuned {
			kopts = append(kopts, kfac.WithAutotune(kfac.AutotuneConfig{}))
		}
		start := time.Now()
		results, err := trainer.RunSessionsOn(ctx, fab, world, build, train, test,
			trainer.WithEpochs(epochs),
			trainer.WithBatchPerRank(16),
			trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05}),
			trainer.WithMomentum(0.9),
			trainer.WithSeed(cfg.Seed),
			trainer.WithKFAC(kopts...),
		)
		if err != nil {
			return 0, "", err
		}
		wall := time.Since(start)
		r := results[0]
		if r.Iterations == 0 {
			return 0, "", fmt.Errorf("autotune experiment ran zero iterations")
		}
		lastDecision = "static"
		if r.KFACStats != nil {
			if decs := r.KFACStats.Snapshot().TuneDecisions; len(decs) > 0 {
				lastDecision = decs[len(decs)-1].Name
			}
		}
		return float64(wall) / float64(time.Millisecond) / float64(r.Iterations), lastDecision, nil
	}

	fmt.Fprintf(w, "%-14s  %15s  %15s  %10s  %s\n",
		"bandwidth cap", "static ms/step", "tuned ms/step", "speedup", "final level")
	for _, capBps := range caps {
		staticMS, _, err := runOne(false, capBps)
		if err != nil {
			return err
		}
		tunedMS, level, err := runOne(true, capBps)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s  %15.2f  %15.2f  %9.2fx  %s\n",
			bwLabel(capBps), staticMS, tunedMS, staticMS/tunedMS, level)
		// The acceptance bound: tuned never degrades meaningfully past
		// static at any cap level. The slack absorbs scheduler noise at the
		// fast end, where the tuner correctly sits on the exact level and
		// the columns measure the same configuration twice.
		if tunedMS > staticMS*1.25+2 {
			return fmt.Errorf("autotuned run slower than static at cap %s: %.2f ms/step vs %.2f",
				bwLabel(capBps), tunedMS, staticMS)
		}
	}
	fmt.Fprintln(w, "shape check: tuned ≤ static at every cap; tight caps land on compressed levels")
	return nil
}

// bwLabel formats a bandwidth cap for the curve's row labels.
func bwLabel(bps float64) string {
	if bps <= 0 {
		return "uncapped"
	}
	return fmt.Sprintf("%.0f MB/s", bps/(1<<20))
}
