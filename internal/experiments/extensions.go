package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "memory",
		Title: "Per-GPU memory footprint of K-FAC state across models",
		Paper: "§VI-C4 limitations: K-FAC replicates all factors and eigenvectors on every worker; for deep models this state rivals the model itself",
		Run:   runMemory,
	})
	register(Experiment{
		ID:    "ablation-compression",
		Title: "Ablation: gradient compression for the exchange step (paper future work)",
		Paper: "§VII: 'design and evaluate solutions to ... reduce communication quantity'",
		Run:   runAblationCompression,
	})
}

func runMemory(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("memory")
	header(w, e)
	fmt.Fprintf(w, "%-12s  %10s  %10s  %10s  %10s  %10s  %10s\n",
		"model", "weights", "grads+mom", "factors", "eigvecs", "activ.", "total")
	for _, name := range []string{"resnet32", "resnet50", "resnet101", "resnet152"} {
		cat, err := models.CatalogByName(name)
		if err != nil {
			return err
		}
		mb := simulate.MemoryModel(cat, 32, 4)
		toMB := func(b float64) string { return fmt.Sprintf("%8.0fMB", b/1e6) }
		fmt.Fprintf(w, "%-12s  %s  %s  %s  %s  %s  %s\n",
			name, toMB(mb.Weights), toMB(mb.Gradients+mb.Momentum), toMB(mb.Factors),
			toMB(mb.EigVectors), toMB(mb.Activations), toMB(mb.Total()))
	}
	fmt.Fprintln(w, "shape check: K-FAC state (factors+eigvecs) exceeds model weights; grows with depth")
	return nil
}

// runAblationCompression trains the same model over 2 in-process ranks
// three ways — exact fused allreduce, float16-quantized exchange, and top-10%
// sparsified exchange with error feedback — and reports final loss and
// bytes moved per iteration.
func runAblationCompression(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-compression")
	header(w, e)
	dcfg := data.CIFARLike(cfg.Seed)
	dcfg.Train, dcfg.Test, dcfg.Size, dcfg.Noise = 256, 64, 16, 1.0
	train, _ := data.GenerateSynthetic(dcfg)
	iters := 40
	if cfg.Quick {
		iters = 10
	}

	type variant struct {
		name  string
		codec comm.Codec // nil = exact
	}
	variants := []variant{
		{"exact (fp64)", nil},
		{"float16", comm.Float16Codec{}},
		{"top-10% + error feedback", comm.TopKCodec{FractionK: 0.10}},
	}
	fmt.Fprintf(w, "%-26s  %-12s  %-14s  %-12s\n", "exchange", "final loss", "words/iter", "vs exact")
	var exactWords int
	for _, v := range variants {
		loss, words, err := runCompressedTraining(train, v.codec, iters, cfg.Seed)
		if err != nil {
			return err
		}
		if v.codec == nil {
			exactWords = words
		}
		ratio := float64(words) / float64(exactWords)
		fmt.Fprintf(w, "%-26s  %12.4f  %14d  %11.2fx\n", v.name, loss, words, ratio)
	}
	fmt.Fprintln(w, "shape check: compressed variants train comparably with a fraction of the volume")
	return nil
}

// runCompressedTraining runs a bare 2-rank data-parallel loop with the
// given codec for gradient exchange (nil = exact fused allreduce) and
// returns the final mean loss and the per-iteration exchange volume in
// float64 words per rank.
func runCompressedTraining(train *data.Dataset, codec comm.Codec, iters int, seed int64) (float64, int, error) {
	const world = 2
	fab := comm.NewInprocFabric(world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	losses := make([]float64, world)
	words := make([]int, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(77))
			net := models.BuildSmallCNN(3, 10, 4, rng)
			c := comm.NewCommunicator(fab.Endpoint(r))
			params := net.Params()
			opt := optim.SGD(params, optim.WithLR(0.05), optim.WithMomentum(0.9))
			ce := nn.CrossEntropy{}
			sampler := data.ShardSampler{N: train.Len(), Rank: r, World: world, Seed: seed}
			batches := data.Batches(train, sampler.EpochIndices(0), 16)
			// Error-feedback accumulators per parameter.
			residuals := make([][]float64, len(params))
			for i, p := range params {
				residuals[i] = make([]float64, p.Grad.Len())
			}
			var lastLoss float64
			for it := 0; it < iters; it++ {
				b := batches[it%len(batches)]
				out := net.Forward(b.X, true)
				loss, grad := ce.Loss(out, b.Labels)
				lastLoss = loss
				nn.ZeroGrads(net)
				net.Backward(grad)
				if codec == nil {
					fu := comm.NewFuser(c, 0)
					for _, p := range params {
						fu.Add(p.Grad)
					}
					if err := fu.Flush(); err != nil {
						errs[r] = err
						return
					}
					if it == 0 {
						for _, p := range params {
							words[r] += p.Grad.Len()
						}
					}
				} else {
					for i, p := range params {
						for j := range p.Grad.Data {
							p.Grad.Data[j] += residuals[i][j]
						}
						res, err := c.CompressedAllreduceMean(p.Grad.Data, codec)
						if err != nil {
							errs[r] = err
							return
						}
						residuals[i] = res
						if it == 0 {
							words[r] += codec.CompressedLen(p.Grad.Len())
						}
					}
				}
				opt.Step()
			}
			losses[r] = lastLoss
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	return (losses[0] + losses[1]) / 2, words[0], nil
}
