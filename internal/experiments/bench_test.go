package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunBenchJSONSchemaStable runs the -short benchmark matrix into a
// temp dir and verifies every emitted file parses and carries the
// documented kfac-bench/v1 fields — the same gate the CI bench-smoke job
// applies to its artifact.
func TestRunBenchJSONSchemaStable(t *testing.T) {
	dir := t.TempDir()
	paths, err := RunBenchJSON(context.Background(), dir, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	// tiny × {sync, pipelined} × {f64, f32} plus the four dist_* mode cells
	// in both precisions plus the autotune twin of the f64 COMM-OPT cell.
	if len(paths) != 13 {
		t.Fatalf("got %d result files, want 13", len(paths))
	}
	distSeen, f32Seen := 0, 0
	for _, p := range paths {
		if base := filepath.Base(p); base[:6] != "BENCH_" {
			t.Errorf("result file %q does not follow BENCH_<scenario>.json", base)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: not valid JSON: %v", p, err)
		}
		if doc["schema"] != BenchSchema {
			t.Errorf("%s: schema = %v, want %s", p, doc["schema"], BenchSchema)
		}
		for _, key := range []string{
			"scenario", "model", "engine", "precision", "steps",
			"world", "dist_mode", "grad_worker_frac", "peak_factor_bytes_per_rank",
			"step_time_mean_ns", "allocs_per_step", "bytes_per_step",
			"factor_compute_ns", "eig_compute_ns", "precondition_ns", "overlap_ns",
			"steady_steps", "steady_step_time_mean_ns",
			"steady_allocs_per_step", "steady_bytes_per_step",
		} {
			if _, ok := doc[key]; !ok {
				t.Errorf("%s: missing schema field %q", p, key)
			}
		}
		// Sanity: a measured run always reports positive step time.
		if v, ok := doc["step_time_mean_ns"].(float64); !ok || v <= 0 {
			t.Errorf("%s: step_time_mean_ns = %v, want > 0", p, doc["step_time_mean_ns"])
		}
		var typed BenchResult
		if err := json.Unmarshal(raw, &typed); err != nil {
			t.Fatal(err)
		}
		switch typed.Precision {
		case "f64":
		case "f32":
			f32Seen++
			if len(typed.Scenario) < 4 || typed.Scenario[len(typed.Scenario)-4:] != "_f32" {
				t.Errorf("%s: precision f32 but scenario %q lacks _f32 suffix", p, typed.Scenario)
			}
		default:
			t.Errorf("%s: precision = %q, want f64 or f32", p, typed.Precision)
		}
		if typed.World > 1 {
			distSeen++
			if len(typed.PeakFactorBytesPerRank) != typed.World {
				t.Errorf("%s: %d per-rank memory entries for world %d",
					p, len(typed.PeakFactorBytesPerRank), typed.World)
			}
			for r, b := range typed.PeakFactorBytesPerRank {
				if b <= 0 {
					t.Errorf("%s: rank %d peak factor bytes = %d, want > 0", p, r, b)
				}
			}
			if typed.DistMode == "" || typed.GradWorkerFrac <= 0 {
				t.Errorf("%s: dist axis not recorded: mode=%q f=%v", p, typed.DistMode, typed.GradWorkerFrac)
			}
		}
	}
	if distSeen != 9 {
		t.Errorf("saw %d dist_* scenarios, want 9 (4 modes × 2 precisions + autotune twin)", distSeen)
	}
	autotuneSeen := false
	for _, p := range paths {
		if filepath.Base(p) == "BENCH_dist_tiny_w4_commopt_autotune.json" {
			autotuneSeen = true
		}
	}
	if !autotuneSeen {
		t.Error("autotune bench cell missing from the short matrix")
	}
	if f32Seen != 6 {
		t.Errorf("saw %d f32 scenarios, want 6 (2 engines + 4 dist modes)", f32Seen)
	}
	// A round-trip through the typed struct must preserve the schema tag
	// (catches accidental field renames).
	var typed BenchResult
	raw, _ := os.ReadFile(paths[0])
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	if typed.Schema != BenchSchema || typed.Scenario == "" {
		t.Errorf("typed round-trip lost fields: %+v", typed)
	}
}
