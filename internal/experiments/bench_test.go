package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/kfac"
)

// TestRunBenchJSONSchemaStable runs the -short benchmark matrix into a
// temp dir and verifies every emitted file parses and carries the
// documented kfac-bench/v1 fields — the same gate the CI bench-smoke job
// applies to its artifact. The expected file set is DERIVED from the axes
// via BenchCells, not baked in, so adding a world size or mode to the
// matrix updates the expectation automatically.
func TestRunBenchJSONSchemaStable(t *testing.T) {
	dir := t.TempDir()
	cfg := BenchConfig{Short: true, Seed: 42}
	paths, err := RunBenchJSONConfig(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCellsMatch(t, paths, BenchCells(cfg))
	checkBenchFiles(t, paths)

	// Shape invariants derived from the same axes the runner uses.
	wantDist, wantF32, autotuneCell := 0, 0, ""
	for _, sc := range benchMatrix(cfg.Short) {
		if sc.precision == kfac.F32 {
			wantF32 += len(sc.engines)
		}
	}
	for _, sc := range distMatrix(cfg.Short, cfg.World) {
		wantDist++
		if sc.precision == kfac.F32 {
			wantF32++
		}
		if sc.autotune {
			autotuneCell = sc.scenarioName()
		}
	}
	distSeen, f32Seen, autotuneSeen := countCells(t, paths)
	if distSeen != wantDist {
		t.Errorf("saw %d dist_* scenarios, want %d (derived from distMatrix)", distSeen, wantDist)
	}
	if f32Seen != wantF32 {
		t.Errorf("saw %d f32 scenarios, want %d (derived from the axes)", f32Seen, wantF32)
	}
	if autotuneCell == "" || !autotuneSeen {
		t.Errorf("autotune bench cell %q missing from the short matrix", autotuneCell)
	}

	// A round-trip through the typed struct must preserve the schema tag
	// (catches accidental field renames).
	var typed BenchResult
	raw, _ := os.ReadFile(paths[0])
	if err := json.Unmarshal(raw, &typed); err != nil {
		t.Fatal(err)
	}
	if typed.Schema != BenchSchema || typed.Scenario == "" {
		t.Errorf("typed round-trip lost fields: %+v", typed)
	}
}

// TestRunBenchJSONWorldAxis runs one non-default world size through the
// in-process driver and verifies world is a real schema axis: derived
// names, the world field, and world-length per-rank memory all follow it.
func TestRunBenchJSONWorldAxis(t *testing.T) {
	dir := t.TempDir()
	cfg := BenchConfig{Short: true, Seed: 42, Precision: "f64", World: 2}
	paths, err := RunBenchJSONConfig(context.Background(), dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertCellsMatch(t, paths, BenchCells(cfg))
	for _, p := range paths {
		var typed BenchResult
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &typed); err != nil {
			t.Fatal(err)
		}
		if typed.World == 1 {
			continue // single-process engine cells
		}
		if typed.World != 2 {
			t.Errorf("%s: world = %d, want the configured 2", p, typed.World)
		}
		if len(typed.PeakFactorBytesPerRank) != 2 {
			t.Errorf("%s: %d per-rank entries, want 2", p, len(typed.PeakFactorBytesPerRank))
		}
		if typed.Fabric != "inproc" {
			t.Errorf("%s: fabric = %q, want inproc", p, typed.Fabric)
		}
	}
}

// TestBenchCellsDerivation pins the derivation contract: names follow the
// dist_<model>_w<world>_<mode>[_f32] formula at whatever world is asked,
// and the TCP matrix is the f64 three-mode sweep.
func TestBenchCellsDerivation(t *testing.T) {
	cells := BenchCells(BenchConfig{Short: true, World: 32, Precision: "f64"})
	want := map[string]bool{
		"dist_tiny_w32_commopt": true, "dist_tiny_w32_memopt": true,
		"dist_tiny_w32_hybrid25": true, "dist_tiny_w32_hybrid50": true,
		"dist_tiny_w32_commopt_autotune": true,
	}
	for _, c := range cells {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("w32 f64 cells missing: %v (got %v)", want, cells)
	}
	tcp := TCPBenchCells(true, 16)
	wantTCP := []string{"dist_tiny_w16_commopt", "dist_tiny_w16_memopt", "dist_tiny_w16_hybrid50"}
	if len(tcp) != len(wantTCP) {
		t.Fatalf("TCP cells = %v, want %v", tcp, wantTCP)
	}
	for i := range tcp {
		if tcp[i] != wantTCP[i] {
			t.Errorf("TCP cell[%d] = %q, want %q", i, tcp[i], wantTCP[i])
		}
	}
}

// assertCellsMatch checks the emitted file paths are exactly the derived
// cell names, in order.
func assertCellsMatch(t *testing.T, paths, cells []string) {
	t.Helper()
	if len(paths) != len(cells) {
		t.Fatalf("got %d result files, want %d derived cells", len(paths), len(cells))
	}
	for i, p := range paths {
		if want := fmt.Sprintf("BENCH_%s.json", cells[i]); filepath.Base(p) != want {
			t.Errorf("file[%d] = %s, want %s", i, filepath.Base(p), want)
		}
	}
}

// checkBenchFiles applies the per-file schema gate shared with the CI
// artifact job: valid JSON, documented fields, positive timings, world-
// consistent per-rank memory, and _f32 suffix discipline.
func checkBenchFiles(t *testing.T, paths []string) {
	t.Helper()
	for _, p := range paths {
		if base := filepath.Base(p); base[:6] != "BENCH_" {
			t.Errorf("result file %q does not follow BENCH_<scenario>.json", base)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("%s: not valid JSON: %v", p, err)
		}
		if doc["schema"] != BenchSchema {
			t.Errorf("%s: schema = %v, want %s", p, doc["schema"], BenchSchema)
		}
		for _, key := range []string{
			"scenario", "model", "engine", "precision", "fabric", "steps",
			"world", "dist_mode", "grad_worker_frac", "peak_factor_bytes_per_rank",
			"step_time_mean_ns", "allocs_per_step", "bytes_per_step",
			"factor_compute_ns", "eig_compute_ns", "precondition_ns", "overlap_ns",
			"steady_steps", "steady_step_time_mean_ns",
			"steady_allocs_per_step", "steady_bytes_per_step",
		} {
			if _, ok := doc[key]; !ok {
				t.Errorf("%s: missing schema field %q", p, key)
			}
		}
		// Sanity: a measured run always reports positive step time.
		if v, ok := doc["step_time_mean_ns"].(float64); !ok || v <= 0 {
			t.Errorf("%s: step_time_mean_ns = %v, want > 0", p, doc["step_time_mean_ns"])
		}
		var typed BenchResult
		if err := json.Unmarshal(raw, &typed); err != nil {
			t.Fatal(err)
		}
		switch typed.Precision {
		case "f64":
		case "f32":
			if len(typed.Scenario) < 4 || typed.Scenario[len(typed.Scenario)-4:] != "_f32" {
				t.Errorf("%s: precision f32 but scenario %q lacks _f32 suffix", p, typed.Scenario)
			}
		default:
			t.Errorf("%s: precision = %q, want f64 or f32", p, typed.Precision)
		}
		switch typed.Fabric {
		case "local", "inproc", "tcp":
		default:
			t.Errorf("%s: fabric = %q, want local, inproc, or tcp", p, typed.Fabric)
		}
		if typed.World > 1 {
			if len(typed.PeakFactorBytesPerRank) != typed.World {
				t.Errorf("%s: %d per-rank memory entries for world %d",
					p, len(typed.PeakFactorBytesPerRank), typed.World)
			}
			for r, b := range typed.PeakFactorBytesPerRank {
				if b <= 0 {
					t.Errorf("%s: rank %d peak factor bytes = %d, want > 0", p, r, b)
				}
			}
			if typed.DistMode == "" || typed.GradWorkerFrac <= 0 {
				t.Errorf("%s: dist axis not recorded: mode=%q f=%v", p, typed.DistMode, typed.GradWorkerFrac)
			}
		}
	}
}

// countCells tallies dist/f32/autotune cells among emitted files.
func countCells(t *testing.T, paths []string) (dist, f32 int, autotune bool) {
	t.Helper()
	for _, p := range paths {
		var typed BenchResult
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, &typed); err != nil {
			t.Fatal(err)
		}
		if typed.World > 1 {
			dist++
		}
		if typed.Precision == "f32" {
			f32++
		}
		if len(typed.Scenario) > 9 && typed.Scenario[len(typed.Scenario)-9:] == "_autotune" {
			autotune = true
		}
	}
	return dist, f32, autotune
}
