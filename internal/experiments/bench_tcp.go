// Multi-process TCP-fabric benchmark driver: the dist_* cells executed
// across real OS processes connected by comm.TCPFabric instead of
// goroutines over an in-process fabric. This is the closest the benchmark
// harness comes to the paper's multi-node deployment — serialization, the
// kernel network stack, and scheduler interference are all on the measured
// path, which is what makes the committed w16/w32 trajectories honest
// calibration anchors for the topology cost model.
//
// The parent (kfac-bench -json -fabric tcp) reserves one loopback port per
// rank, re-executes its own binary once per rank with -tcp-rank/-addrs,
// and waits; each child joins the TCP world once and runs every cell of
// the TCP matrix over the same fabric (per-cell reconnection would measure
// dial/teardown, not training). Rank 0 writes the BENCH_*.json files.
package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/comm"
	"repro/internal/kfac"
)

// DefaultTCPWorld is the TCP driver's world size when none is requested:
// large enough to span multiple modeled nodes, small enough that 16
// single-threaded training processes fit a CI runner.
const DefaultTCPWorld = 16

// tcpJoinTimeout bounds the full-mesh connection phase; loopback worlds
// join in milliseconds, so a hit here means a child died before listening.
const tcpJoinTimeout = 30 * time.Second

// TCPBenchCells returns, in run order, the scenario names the TCP driver
// emits for (short, world) — the same derivation-over-axes contract as
// BenchCells. The TCP matrix is the f64 mode sweep {commopt, memopt,
// hybrid50}: three cells covering both tradeoff endpoints plus one
// interpolation, kept small because every cell costs world OS processes.
func TCPBenchCells(short bool, world int) []string {
	cells := tcpMatrix(short, world)
	out := make([]string, len(cells))
	for i, sc := range cells {
		out[i] = sc.scenarioName()
	}
	return out
}

// tcpMatrix returns the TCP driver's scenario list at the given world size
// (0 = DefaultTCPWorld).
func tcpMatrix(short bool, world int) []distScenario {
	model, blocks, width, batch, steps := "small", 1, 8, 8, 8
	if short {
		model, blocks, width, batch, steps = "tiny", 1, 4, 4, 4
	}
	if world <= 0 {
		world = DefaultTCPWorld
	}
	cells := []struct {
		name string
		mode kfac.DistMode
		frac float64
	}{
		{"commopt", kfac.CommOpt, 0},
		{"memopt", kfac.MemOpt, 0},
		{"hybrid50", kfac.Hybrid, 0.5},
	}
	out := make([]distScenario, 0, len(cells))
	for _, c := range cells {
		out = append(out, distScenario{
			name: c.name, mode: c.mode, frac: c.frac,
			model: model, blocks: blocks, width: width, batch: batch,
			world: world, steps: steps, precision: kfac.F64,
			fabric: "tcp",
		})
	}
	return out
}

// RunBenchTCP is the parent side of the multi-process driver: it reserves
// one loopback port per rank, spawns exe (normally the running kfac-bench
// binary, via os.Executable) once per rank with the child flags, and waits
// for every rank to exit. Rank 0's child writes the BENCH_*.json files;
// the returned paths are the TCPBenchCells-derived file names, verified to
// exist. If any rank fails, every other rank is killed before returning —
// a dead peer leaves the survivors blocked inside a collective, and the
// parent must not hang on them.
func RunBenchTCP(ctx context.Context, outDir string, short bool, seed int64, world int, exe string) ([]string, error) {
	if world <= 0 {
		world = DefaultTCPWorld
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	addrs := make([]string, world)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench tcp: reserve port: %w", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}

	procs := make([]*exec.Cmd, 0, world)
	killExcept := func(except int) {
		for q, p := range procs {
			if q != except && p.Process != nil {
				_ = p.Process.Kill()
			}
		}
	}
	for r := 0; r < world; r++ {
		args := []string{
			"-json", "-fabric", "tcp",
			"-tcp-rank", fmt.Sprint(r), "-addrs", strings.Join(addrs, ","),
			"-out", outDir, "-world", fmt.Sprint(world), "-seed", fmt.Sprint(seed),
		}
		if short {
			args = append(args, "-short")
		}
		cmd := exec.CommandContext(ctx, exe, args...)
		if r == 0 {
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			killExcept(-1)
			for _, p := range procs {
				_ = p.Wait()
			}
			return nil, fmt.Errorf("bench tcp: spawn rank %d: %w", r, err)
		}
		procs = append(procs, cmd)
	}
	var firstErr error
	for r, p := range procs {
		if err := p.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bench tcp: rank %d: %w", r, err)
			killExcept(r)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	var paths []string
	for _, cell := range TCPBenchCells(short, world) {
		path := filepath.Join(outDir, fmt.Sprintf("BENCH_%s.json", cell))
		if _, err := os.Stat(path); err != nil {
			return paths, fmt.Errorf("bench tcp: rank 0 did not write %s: %w", path, err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// RunBenchTCPChild is one rank of the multi-process driver: it joins the
// TCP world once and runs every cell of the TCP matrix over the same
// fabric. After each cell the per-rank peak factor bytes are gathered to
// rank 0, which writes the cell's BENCH_*.json — so the committed record
// carries every process's memory footprint, exactly like the in-process
// driver. A barrier separates cells, keeping the tag sequence of cell N+1
// from racing a slow rank still finishing cell N.
func RunBenchTCPChild(ctx context.Context, outDir string, short bool, seed int64, world, rank int, addrs []string) error {
	if len(addrs) != world {
		return fmt.Errorf("bench tcp: %d addrs for world %d", len(addrs), world)
	}
	fab, err := comm.NewTCPFabric(rank, addrs, tcpJoinTimeout)
	if err != nil {
		return fmt.Errorf("bench tcp: rank %d join: %w", rank, err)
	}
	defer fab.Close()
	c := comm.NewCommunicator(fab).WithContext(ctx)

	for _, sc := range tcpMatrix(short, world) {
		res := newDistBenchResult(sc)
		peak, err := runDistRank(ctx, sc, seed, c, res)
		if err != nil {
			return fmt.Errorf("bench tcp: rank %d cell %s: %w", rank, sc.scenarioName(), err)
		}
		peaks, err := c.Gather([]float64{float64(peak)}, 0)
		if err != nil {
			return fmt.Errorf("bench tcp: rank %d gather peaks: %w", rank, err)
		}
		if rank == 0 {
			for r, v := range peaks {
				res.PeakFactorBytesPerRank[r] = int64(v[0])
			}
			if _, err := writeBenchResult(outDir, res); err != nil {
				return fmt.Errorf("bench tcp: write %s: %w", sc.scenarioName(), err)
			}
		}
		if err := c.Barrier(); err != nil {
			return fmt.Errorf("bench tcp: rank %d barrier: %w", rank, err)
		}
	}
	return nil
}
