package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

// correctnessData builds the CIFAR-10 stand-in at the requested scale.
func correctnessData(cfg Config) (*data.Dataset, *data.Dataset) {
	c := data.CIFARLike(cfg.Seed)
	if cfg.Quick {
		// Smaller and easier, so three epochs of the tiny model separate
		// the optimizers meaningfully.
		c.Train, c.Test = 512, 256
		c.Size = 16
		c.Noise = 0.9
		c.Shift = 2
	}
	return data.GenerateSynthetic(c)
}

// correctnessNet builds the miniature ResNet used by the trained
// experiments (same topology family as the paper's ResNet-32; see
// models.BuildCIFARResNet).
func correctnessNet(cfg Config) func(rng *rand.Rand) *nn.Sequential {
	width := 8
	if cfg.Quick {
		width = 4
	}
	return func(rng *rand.Rand) *nn.Sequential {
		return models.BuildCIFARResNet(1, width, 3, 10, rng)
	}
}

// correctnessEpochs returns (sgdEpochs, kfacEpochs) mirroring the paper's
// 200/100 CIFAR budget at reduced scale.
func correctnessEpochs(cfg Config) (int, int) {
	if cfg.Quick {
		return 3, 3
	}
	return 10, 6
}

// correctnessOpts is the shared session configuration of the trained
// experiments: the paper's warmup + two-milestone decay recipe.
func correctnessOpts(cfg Config, batch, epochs int, lr float64) []trainer.SessionOption {
	return []trainer.SessionOption{
		trainer.WithEpochs(epochs),
		trainer.WithBatchPerRank(batch),
		trainer.WithLRSchedule(optim.LRSchedule{
			BaseLR: lr, WarmupEpochs: 1,
			Milestones: []int{epochs * 2 / 3, epochs * 5 / 6}, Factor: 0.1,
		}),
		trainer.WithMomentum(0.9),
		trainer.WithSeed(cfg.Seed),
	}
}

// trainOnce runs one configuration single-process and returns the result.
func trainOnce(ctx context.Context, cfg Config, train, test *data.Dataset, batch, epochs int,
	kopts *kfac.Options, lr float64) (*trainer.Result, error) {
	net := correctnessNet(cfg)(rand.New(rand.NewSource(cfg.Seed + 7)))
	opts := correctnessOpts(cfg, batch, epochs, lr)
	if kopts != nil {
		opts = append(opts, trainer.WithKFACOptions(*kopts))
	}
	s, err := trainer.NewSession(net, nil, train, test, opts...)
	if err != nil {
		return nil, err
	}
	return s.Run(ctx)
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Inverse vs eigen-decomposition K-FAC across batch sizes (CIFAR stand-in)",
		Paper: "Table I: eigen K-FAC ≥ 92.49% baseline at batch {256,512,1024}; explicit inverse degrades as batch grows (91.71% at 1024)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Validation accuracy vs GPU count, SGD vs K-FAC (CIFAR stand-in)",
		Paper: "Table II: K-FAC matches or beats SGD at 1,2,4,8 GPUs (92.76–92.93% vs 92.58–92.77%)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Validation-accuracy curves, K-FAC vs SGD (CIFAR stand-in)",
		Paper: "Figure 4: K-FAC reaches SGD's final accuracy in roughly half the epochs",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "ablation-clip",
		Title: "Ablation: kl-clip (Equation 18) on/off",
		Paper: "§V-C: gradient scaling prevents early-training divergence",
		Run:   runAblationClip,
	})
	register(Experiment{
		ID:    "ablation-damping",
		Title: "Ablation: damping decay schedule",
		Paper: "§V-C: larger early damping absorbs rapid FIM changes, decaying as the FIM stabilizes",
		Run:   runAblationDamping,
	})
}

func runTable1(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table1")
	header(w, e)
	train, test := correctnessData(cfg)
	_, kfacEpochs := correctnessEpochs(cfg)
	batches := []int{32, 64, 128}
	if cfg.Quick {
		batches = []int{32, 64}
	}
	fmt.Fprintf(w, "%-26s", "optimizer \\ batch")
	for _, b := range batches {
		fmt.Fprintf(w, "  %8d", b)
	}
	fmt.Fprintln(w)
	rows := []struct {
		name string
		opts *kfac.Options
	}{
		{"SGD", nil},
		{"K-FAC w/ Inverse", &kfac.Options{Mode: kfac.InverseMode, Damping: 1e-4, FactorUpdateFreq: 1, InvUpdateFreq: 10}},
		{"K-FAC w/ Eigen-decomp.", &kfac.Options{Mode: kfac.EigenMode, Damping: 1e-3, FactorUpdateFreq: 1, InvUpdateFreq: 10}},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-26s", row.name)
		for _, b := range batches {
			// Paper scales lr with batch size (N×0.1 for N GPUs of 128).
			lr := 0.05 * float64(b) / 32
			res, err := trainOnce(ctx, cfg, train, test, b, kfacEpochs, row.opts, lr)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %7.2f%%", res.BestValAcc*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "shape check: eigen column-wise ≥ inverse, inverse degrades at the largest batch")
	return nil
}

func runTable2(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table2")
	header(w, e)
	train, test := correctnessData(cfg)
	sgdEpochs, kfacEpochs := correctnessEpochs(cfg)
	worlds := []int{1, 2, 4, 8}
	if cfg.Quick {
		worlds = []int{1, 2}
	}
	fmt.Fprintf(w, "%-8s  %-10s  %-10s\n", "GPUs", "SGD", "K-FAC")
	for _, world := range worlds {
		lr := 0.05 * float64(world)
		run := func(kopts *kfac.Options, epochs int) (float64, error) {
			opts := correctnessOpts(cfg, 32, epochs, lr)
			if kopts != nil {
				opts = append(opts, trainer.WithKFACOptions(*kopts))
			}
			results, err := trainer.RunSessions(ctx, world, correctnessNet(cfg), train, test, opts...)
			if err != nil {
				return 0, err
			}
			return results[0].BestValAcc, nil
		}
		sgd, err := run(nil, sgdEpochs)
		if err != nil {
			return err
		}
		kf, err := run(&kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 10, Damping: 1e-3}, kfacEpochs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d  %9.2f%%  %9.2f%%\n", world, sgd*100, kf*100)
	}
	fmt.Fprintf(w, "shape check: K-FAC ≈ SGD accuracy with %d vs %d epochs\n", kfacEpochs, sgdEpochs)
	return nil
}

func runFig4(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("fig4")
	header(w, e)
	train, test := correctnessData(cfg)
	sgdEpochs, kfacEpochs := correctnessEpochs(cfg)
	sgdRes, err := trainOnce(ctx, cfg, train, test, 32, sgdEpochs, nil, 0.05)
	if err != nil {
		return err
	}
	kfacRes, err := trainOnce(ctx, cfg, train, test, 32, kfacEpochs,
		&kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 10, Damping: 1e-3}, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s  %-10s  %-10s\n", "epoch", "SGD", "K-FAC")
	for i := 0; i < sgdEpochs; i++ {
		sv := fmt.Sprintf("%8.2f%%", sgdRes.History[i].ValAcc*100)
		kv := "       —"
		if i < len(kfacRes.History) {
			kv = fmt.Sprintf("%8.2f%%", kfacRes.History[i].ValAcc*100)
		}
		fmt.Fprintf(w, "%-8d  %s  %s\n", i+1, sv, kv)
	}
	target := sgdRes.BestValAcc * 0.98
	fmt.Fprintf(w, "epochs to reach %.2f%%: SGD %d, K-FAC %d\n",
		target*100, sgdRes.EpochsToReach(target), kfacRes.EpochsToReach(target))
	return nil
}

func runAblationClip(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-clip")
	header(w, e)
	train, test := correctnessData(cfg)
	_, epochs := correctnessEpochs(cfg)
	for _, row := range []struct {
		name string
		clip float64
	}{
		{"kl-clip on (κ=1e-3)", 1e-3},
		{"kl-clip off", -1},
	} {
		res, err := trainOnce(ctx, cfg, train, test, 32, epochs,
			&kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 10, Damping: 1e-3, KLClip: row.clip}, 0.05)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s  best val %.2f%%  final val %.2f%%\n",
			row.name, res.BestValAcc*100, res.FinalValAcc*100)
	}
	return nil
}

func runAblationDamping(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-damping")
	header(w, e)
	train, test := correctnessData(cfg)
	_, epochs := correctnessEpochs(cfg)
	base := &kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 10, Damping: 3e-3}
	for _, row := range []struct {
		name  string
		sched *kfac.ParamSchedule
	}{
		{"constant damping", nil},
		{"damping decay (×0.5 at 1/3, 2/3)", &kfac.ParamSchedule{
			Initial: 3e-3, DecayEpochs: []int{epochs / 3, 2 * epochs / 3}, Factor: 0.5}},
	} {
		net := correctnessNet(cfg)(rand.New(rand.NewSource(cfg.Seed + 7)))
		s, err := trainer.NewSession(net, nil, train, test,
			trainer.WithEpochs(epochs),
			trainer.WithBatchPerRank(32),
			trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1, Milestones: []int{epochs * 2 / 3}}),
			trainer.WithMomentum(0.9),
			trainer.WithSeed(cfg.Seed),
			trainer.WithKFACOptions(*base),
			trainer.WithDampingSchedule(row.sched),
		)
		if err != nil {
			return err
		}
		res, err := s.Run(ctx)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-36s  best val %.2f%%\n", row.name, res.BestValAcc*100)
	}
	return nil
}
