package experiments

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

// TestRunEigBenchSchema runs the short eig microbenchmark end to end and
// checks the committed-artifact contract: distinct schema (so step-schema
// tooling skips the file), one serial/blocked/teamed cell per dimension,
// sane timings, and eigenvalue agreement with the serial oracle.
func TestRunEigBenchSchema(t *testing.T) {
	dir := t.TempDir()
	path, err := RunEigBench(context.Background(), dir, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res EigBenchResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_eig.json does not parse: %v", err)
	}
	if res.Schema != EigBenchSchema {
		t.Fatalf("schema = %q, want %q", res.Schema, EigBenchSchema)
	}
	if res.Schema == BenchSchema {
		t.Fatal("eig schema must differ from the step-bench schema")
	}
	if res.Scenario != "eig" {
		t.Fatalf("scenario = %q, want eig", res.Scenario)
	}
	if res.GoMaxProcs != runtime.GOMAXPROCS(0) || res.GoVersion == "" {
		t.Fatalf("environment fields not recorded: %+v", res)
	}
	solvers := []string{"serial", "blocked", "teamed"}
	if want := len(res.Dims) * len(solvers); len(res.Cells) != want {
		t.Fatalf("got %d cells, want %d", len(res.Cells), want)
	}
	for i, c := range res.Cells {
		dim := res.Dims[i/len(solvers)]
		solver := solvers[i%len(solvers)]
		if c.Dim != dim || c.Solver != solver {
			t.Fatalf("cell %d = (%d, %s), want (%d, %s)", i, c.Dim, c.Solver, dim, solver)
		}
		if c.Team < 1 || c.Reps < 1 || c.BestNS <= 0 || c.GFlops <= 0 {
			t.Fatalf("cell %d has degenerate measurements: %+v", i, c)
		}
		if c.Solver == "serial" && c.MaxAbsDiffVsSerial != 0 {
			t.Fatalf("serial cell %d reports nonzero self-diff %g", i, c.MaxAbsDiffVsSerial)
		}
		// The blocked solver agrees with the oracle to round-off; anything
		// past 1e-6 on these well-conditioned SPD inputs is a broken solver.
		if c.MaxAbsDiffVsSerial > 1e-6 {
			t.Fatalf("cell %d eigenvalues diverge from serial oracle by %g", i, c.MaxAbsDiffVsSerial)
		}
	}
	// Cancelled contexts must stop the run between cells.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunEigBench(ctx, dir, true, 7); err == nil {
		t.Fatal("cancelled RunEigBench returned nil error")
	}
}
