// Package experiments contains one runner per table and figure of the
// paper's evaluation (§VI), shared by the kfac-bench CLI and the top-level
// benchmark suite. DESIGN.md maps every experiment ID to the paper artifact
// and the modules involved; EXPERIMENTS.md records paper-vs-measured
// numbers.
//
// Two kinds of runner exist:
//
//   - correctness experiments (Tables I–II, Figure 4) train real networks
//     with the real distributed K-FAC implementation on the synthetic
//     CIFAR stand-in, at a reduced scale that runs in seconds in pure Go;
//   - ImageNet-scale experiments (Tables III–VI, Figures 5–10) combine the
//     calibrated performance model with the real placement algorithms and
//     the convergence model (see internal/simulate).
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks the trained experiments to smoke-test size (used by
	// the benchmark suite); full scale is the default for kfac-bench.
	Quick bool
	// Seed drives all data generation and initialization.
	Seed int64
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the harness identifier, e.g. "table1", "fig7".
	ID string
	// Title is the artifact's headline.
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Run executes the experiment and writes its table/series to w. The
	// context cancels in-progress training runs (kfac-bench wires it to
	// SIGINT); model-based experiments complete quickly and may ignore it.
	Run func(ctx context.Context, w io.Writer, cfg Config) error
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// header prints a standard experiment banner.
func header(w io.Writer, e Experiment) {
	fmt.Fprintf(w, "== %s — %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "   paper: %s\n", e.Paper)
}
