package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/testenv"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact of the paper's evaluation must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-placement", "ablation-fusion", "ablation-clip", "ablation-damping",
		"ablation-updatefreq", "profile", "pipeline", "memory", "ablation-compression",
		"chaos", "autotune",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllSorted(t *testing.T) {
	es := All()
	for i := 1; i < len(es); i++ {
		if es[i-1].ID >= es[i].ID {
			t.Fatalf("All() not sorted: %s before %s", es[i-1].ID, es[i].ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Error("unknown ID resolved")
	}
}

// TestSimulatedExperimentsRun executes every model-based experiment (they
// are fast) and checks for sane output.
func TestSimulatedExperimentsRun(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{
		"table3", "table4", "table5", "table6",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ablation-placement", "ablation-fusion",
	} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, cfg); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "== "+id) {
				t.Errorf("output missing banner: %q", firstLine(out))
			}
			if len(out) < 100 {
				t.Errorf("suspiciously short output (%d bytes)", len(out))
			}
		})
	}
}

// TestTrainedExperimentsQuick smoke-runs the experiments that really train
// networks, at the smallest scale.
func TestTrainedExperimentsQuick(t *testing.T) {
	if testenv.Short() {
		t.Skip("trained experiments skipped in reduced-iteration mode")
	}
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"table1", "fig4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, _ := ByID(id)
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, cfg); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "%") {
				t.Error("expected accuracy percentages in output")
			}
		})
	}
}

func TestFig5ReportsCrossing(t *testing.T) {
	e, _ := ByID("fig5")
	var buf bytes.Buffer
	if err := e.Run(context.Background(), &buf, Config{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "epochs to 75.9%") {
		t.Error("fig5 should report baseline-crossing epochs")
	}
}

func TestTable4IncludesPaperReference(t *testing.T) {
	e, _ := ByID("table4")
	var buf bytes.Buffer
	if err := e.Run(context.Background(), &buf, Config{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "paper:") {
		t.Error("table4 should print the paper's reference values")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestChaosExperimentQuick smoke-runs the chaos experiment (it trains real
// 2-rank sessions under injected latency) and checks the engine-equality
// guard held at every latency point.
func TestChaosExperimentQuick(t *testing.T) {
	if testenv.Short() {
		t.Skip("chaos experiment trains networks; skipped in reduced-iteration mode")
	}
	e, _ := ByID("chaos")
	var buf bytes.Buffer
	if err := e.Run(context.Background(), &buf, Config{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pipelined ms/step") || !strings.Contains(out, "identical losses") {
		t.Errorf("unexpected chaos experiment output:\n%s", out)
	}
}

// TestAutotuneExperimentQuick smoke-runs the bandwidth-degradation curve:
// the tuned column must never degrade past the static one (the experiment
// errors internally otherwise) and the capped row must land on a
// compressed level.
func TestAutotuneExperimentQuick(t *testing.T) {
	if testenv.Short() {
		t.Skip("autotune experiment trains networks; skipped in reduced-iteration mode")
	}
	e, _ := ByID("autotune")
	var buf bytes.Buffer
	if err := e.Run(context.Background(), &buf, Config{Quick: true, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tuned ms/step") || !strings.Contains(out, "shape check") {
		t.Errorf("unexpected autotune experiment output:\n%s", out)
	}
	// The 2 MB/s row sits below the float16 band edge (4 MB/s), so the
	// final decision must name a compressed level.
	if !strings.Contains(out, "float16") && !strings.Contains(out, "topk10") {
		t.Errorf("capped row did not land on a compressed level:\n%s", out)
	}
}
