package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trainer"
)

func init() {
	register(Experiment{
		ID:    "profile",
		Title: "Measured K-FAC stage profile of the real implementation (Table V analogue)",
		Paper: "Table V: per-stage Tcomp/Tcomm; factor compute constant in worker count, eig bounded by slowest worker",
		Run:   runProfile,
	})
	register(Experiment{
		ID:    "pipeline",
		Title: "Pipelined vs synchronous K-FAC step engine: stage timings and overlap",
		Paper: "§V: distributing factor work and overlapping comm with compute keeps K-FAC overhead sub-linear",
		Run:   runPipelineComparison,
	})
	register(Experiment{
		ID:    "ablation-updatefreq",
		Title: "Ablation: real-training update-frequency sweep (mini Table III)",
		Paper: "Table III: growing kfac-update-freq trades accuracy for time",
		Run:   runAblationUpdateFreq,
	})
}

// profileWorkload is the shared miniature-training harness of the profile
// and pipeline experiments: it trains one epoch at the given world size and
// step engine and returns rank 0's measured K-FAC stage profile.
func profileWorkload(ctx context.Context, cfg Config, world int, engine kfac.Engine) (*kfac.StageStats, error) {
	dcfg := data.CIFARLike(cfg.Seed)
	dcfg.Train, dcfg.Test, dcfg.Size = 256, 96, 16
	train, test := data.GenerateSynthetic(dcfg)
	opts := []trainer.SessionOption{
		trainer.WithEpochs(1),
		trainer.WithBatchPerRank(16),
		trainer.WithLRSchedule(optim.LRSchedule{BaseLR: 0.05}),
		trainer.WithMomentum(0.9),
		trainer.WithKFAC(
			kfac.WithFactorUpdateFreq(2),
			kfac.WithInvUpdateFreq(4),
			kfac.WithEngine(engine)),
		trainer.WithSeed(cfg.Seed),
	}
	build := func(rng *rand.Rand) *nn.Sequential { return correctnessNet(cfg)(rng) }
	if world == 1 {
		s, err := trainer.NewSession(build(rand.New(rand.NewSource(1))), nil, train, test, opts...)
		if err != nil {
			return nil, err
		}
		res, err := s.Run(ctx)
		if err != nil {
			return nil, err
		}
		return res.KFACStats, nil
	}
	results, err := trainer.RunSessions(ctx, world, build, train, test, opts...)
	if err != nil {
		return nil, err
	}
	return results[0].KFACStats, nil
}

// profileWorlds returns the world sizes the profiling experiments sweep.
func profileWorlds(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4}
}

// runPipelineComparison trains the same miniature workload under both step
// engines at several world sizes and reports the per-stage profile plus the
// pipelined engine's overlap/idle accounting.
func runPipelineComparison(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("pipeline")
	header(w, e)
	fmt.Fprintf(w, "%-6s  %-10s  %12s  %12s  %12s  %12s  %12s  %12s\n",
		"ranks", "engine", "factor comp", "factor comm", "eig comp", "eig comm", "update wall", "overlap")
	for _, world := range profileWorlds(cfg) {
		for _, engine := range []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined} {
			stats, err := profileWorkload(ctx, cfg, world, engine)
			if err != nil {
				return err
			}
			snap := stats.Snapshot()
			wall := snap.PipelineWall
			if engine == kfac.EngineSync {
				// The sync engine's update wall is the stage sum by construction.
				wall = snap.FactorCompute + snap.FactorComm + snap.EigCompute + snap.EigComm
			}
			const r = 10 * time.Microsecond
			fmt.Fprintf(w, "%-6d  %-10s  %12v  %12v  %12v  %12v  %12v  %12v\n",
				world, engine,
				snap.FactorCompute.Round(r), snap.FactorComm.Round(r),
				snap.EigCompute.Round(r), snap.EigComm.Round(r),
				wall.Round(r), stats.Overlap().Round(r))
		}
	}
	fmt.Fprintln(w, "shape check: pipelined update wall ≤ stage sum; overlap grows with ranks (comm hidden behind compute) and with cores (parallel eigendecompositions)")
	return nil
}

// runProfile trains briefly at several in-process world sizes with K-FAC
// and prints the measured stage profile from kfac.StageStats.
func runProfile(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("profile")
	header(w, e)
	fmt.Fprintf(w, "%-6s  %14s  %14s  %14s  %14s  %12s\n",
		"ranks", "factor Tcomp", "factor Tcomm", "eig Tcomp", "eig Tcomm", "precond/step")
	for _, world := range profileWorlds(cfg) {
		stats, err := profileWorkload(ctx, cfg, world, kfac.EngineSync)
		if err != nil {
			return err
		}
		fc, fm := stats.PerFactorUpdate()
		ec, em := stats.PerEigUpdate()
		snap := stats.Snapshot()
		perStep := time.Duration(0)
		if snap.Steps > 0 {
			perStep = snap.Precondition / time.Duration(snap.Steps)
		}
		const r = 10 * time.Microsecond
		fmt.Fprintf(w, "%-6d  %14v  %14v  %14v  %14v  %12v\n",
			world, fc.Round(r), fm.Round(r), ec.Round(r), em.Round(r), perStep.Round(r))
	}
	fmt.Fprintln(w, "shape check: factor compute roughly constant with ranks; comm appears only for ranks > 1")
	return nil
}

// runAblationUpdateFreq trains the real implementation at several
// decomposition intervals and reports accuracy and wall time — the trained
// miniature of Table III's tradeoff.
func runAblationUpdateFreq(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-updatefreq")
	header(w, e)
	train, test := correctnessData(cfg)
	_, epochs := correctnessEpochs(cfg)
	freqs := []int{1, 5, 20, 80}
	if cfg.Quick {
		freqs = []int{1, 10}
	}
	fmt.Fprintf(w, "%-12s  %-12s  %-12s  %-12s\n", "inv freq", "best val", "final val", "wall")
	for _, f := range freqs {
		facFreq := f / 10
		if facFreq < 1 {
			facFreq = 1
		}
		res, err := trainOnce(ctx, cfg, train, test, 32, epochs,
			&kfac.Options{FactorUpdateFreq: facFreq, InvUpdateFreq: f, Damping: 1e-3}, 0.05)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12d  %10.2f%%  %10.2f%%  %12v\n",
			f, res.BestValAcc*100, res.FinalValAcc*100, res.TotalWall.Round(time.Millisecond))
	}
	fmt.Fprintln(w, "shape check: larger intervals run faster; very large intervals cost accuracy")
	return nil
}
