package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/plot"
	"repro/internal/simulate"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "ResNet-50 ImageNet validation curves, K-FAC vs SGD on 16 GPUs (convergence model)",
		Paper: "Figure 5: K-FAC reaches 75.9% in epoch 43 (76.4% final), SGD in epoch 76 (76.2% final)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "ResNet-50 last-10-epoch accuracy vs K-FAC update frequency (convergence model)",
		Paper: "Figure 6: freqs {10,100,500} stay above the 75.9% baseline, 1000 falls below",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Accuracy and training time vs K-FAC update frequency at 64 GPUs",
		Paper: "Table III: R50 {76.2%/152m, 76.1%/128m, 75.5%/124m} at freq {100,500,1000}; SGD 76.2%/178m",
		Run:   runTable3,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "ResNet-50 time-to-solution across scales (performance model)",
		Paper: "Figure 7: K-FAC-lw beats SGD by 2.8–19.1%, K-FAC-opt by 17.7–25.2%",
		Run: func(ctx context.Context, w io.Writer, cfg Config) error {
			return runScalingFig(w, cfg, "fig7", "resnet50")
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "ResNet-101 time-to-solution across scales (performance model)",
		Paper: "Figure 8: K-FAC-opt beats SGD by 9.7–19.5% at all scales",
		Run: func(ctx context.Context, w io.Writer, cfg Config) error {
			return runScalingFig(w, cfg, "fig8", "resnet101")
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "ResNet-152 time-to-solution across scales (performance model)",
		Paper: "Figure 9: K-FAC-opt wins by 4.9–8.2% up to 128 GPUs, loses 11.1% at 256",
		Run: func(ctx context.Context, w io.Writer, cfg Config) error {
			return runScalingFig(w, cfg, "fig9", "resnet152")
		},
	})
	register(Experiment{
		ID:    "table4",
		Title: "K-FAC-opt improvement over SGD across models and scales",
		Paper: "Table IV: improvement shrinks with model size and scale; R152@256 negative",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "table5",
		Title: "Factor and eigendecomposition stage profile (performance model)",
		Paper: "Table V: factor Tcomp constant in GPU count (37/125/218 ms for R50/101/152); eig Tcomp 2.2–4.1 s shrinking sub-linearly",
		Run:   runTable5,
	})
	register(Experiment{
		ID:    "table6",
		Title: "Min/max eigendecomposition worker speedup, 16→64 GPUs (real placement)",
		Paper: "Table VI: fastest workers speed up 6.2–8.3×, slowest only 1.3–1.9×",
		Run:   runTable6,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Factor computation time vs model complexity",
		Paper: "Figure 10: super-linear growth in factor time as models grow",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "ablation-placement",
		Title: "Ablation: round-robin vs size-greedy factor placement (paper §VI-C4 future work)",
		Paper: "§VI-C4 proposes size-aware placement to balance eig time across workers",
		Run:   runAblationPlacement,
	})
	register(Experiment{
		ID:    "ablation-fusion",
		Title: "Ablation: allreduce fusion-buffer size under the α–β model",
		Paper: "§II-D: 16–32 MB fusion buffers keep allreduce bandwidth-dominated",
		Run:   runAblationFusion,
	})
}

func modelFor(name string) *simulate.Model {
	cat, err := models.CatalogByName(name)
	if err != nil {
		panic(err)
	}
	return simulate.NewModel(simulate.DefaultV100Cluster(), simulate.ImageNetWorkload(cat))
}

var scalesAll = []int{16, 32, 64, 128, 256}

func runFig5(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("fig5")
	header(w, e)
	kf, sgd := simulate.ResNet50Curves()
	fmt.Fprintf(w, "%-8s  %-10s  %-10s\n", "epoch", "K-FAC", "SGD")
	for i := 0; i < len(sgd); i++ {
		kv := "       —"
		if i < len(kf) {
			kv = fmt.Sprintf("%8.2f%%", kf[i]*100)
		}
		fmt.Fprintf(w, "%-8d  %s  %8.2f%%\n", i+1, kv, sgd[i]*100)
	}
	fmt.Fprintf(w, "epochs to 75.9%%: K-FAC %d (paper 43), SGD %d (paper 76)\n",
		simulate.EpochsToReach(kf, 0.759), simulate.EpochsToReach(sgd, 0.759))
	fmt.Fprintf(w, "final: K-FAC %.1f%% (paper 76.4%%), SGD %.1f%% (paper 76.2%%)\n",
		kf[len(kf)-1]*100, sgd[len(sgd)-1]*100)
	fmt.Fprintln(w, plot.LineChart("validation accuracy vs epoch", 72, 14,
		plot.Series{Name: "K-FAC", Values: kf},
		plot.Series{Name: "SGD", Values: sgd}))
	return nil
}

func runFig6(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("fig6")
	header(w, e)
	freqs := []int{10, 100, 500, 1000}
	fmt.Fprintf(w, "%-8s", "epoch")
	for _, f := range freqs {
		fmt.Fprintf(w, "  freq=%-5d", f)
	}
	fmt.Fprintln(w)
	curves := make(map[int][]float64)
	for _, f := range freqs {
		curves[f] = simulate.AccuracyCurve(simulate.CurveConfig{
			FinalAcc: simulate.FinalAccKFAC("resnet50", f),
			Epochs:   55, WarmupEpochs: 5,
			Milestones: []int{25, 35, 40, 45, 50}, PlateauAcc: 0.70,
		})
	}
	for epoch := 45; epoch <= 54; epoch++ {
		fmt.Fprintf(w, "%-8d", epoch+1)
		for _, f := range freqs {
			fmt.Fprintf(w, "  %9.2f%%", curves[f][epoch]*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "MLPerf baseline: 75.90% — all freqs except 1000 should finish above it")
	return nil
}

func runTable3(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table3")
	header(w, e)
	freqs := []int{100, 500, 1000}
	fmt.Fprintf(w, "%-12s  %-22s", "model", "SGD (acc / min)")
	for _, f := range freqs {
		fmt.Fprintf(w, "  freq=%-4d (acc / min)", f)
	}
	fmt.Fprintln(w)
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		m := modelFor(name)
		sgdT := m.TimeToSolutionMin(simulate.RunSpec{GPUs: 64, Epochs: 90})
		fmt.Fprintf(w, "%-12s  %7.1f%% / %5.0f min ", name, simulate.FinalAccSGD(name)*100, sgdT)
		for _, f := range freqs {
			t := m.TimeToSolutionMin(simulate.RunSpec{GPUs: 64, Epochs: 55, KFAC: true, InvFreq: f})
			fmt.Fprintf(w, "  %7.1f%% / %5.0f min", simulate.FinalAccKFAC(name, f)*100, t)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runScalingFig(w io.Writer, cfg Config, id, model string) error {
	e, _ := ByID(id)
	header(w, e)
	m := modelFor(model)
	fmt.Fprintf(w, "%-6s  %-10s  %-12s  %-12s  %-12s  %-12s\n",
		"GPUs", "SGD(min)", "K-FAC-lw", "K-FAC-opt", "lw vs SGD", "opt vs SGD")
	for _, p := range scalesAll {
		sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 90})
		lw := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.LayerWise})
		opt := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true, Strategy: kfac.RoundRobin})
		fmt.Fprintf(w, "%-6d  %9.0f  %12.0f  %12.0f  %+10.1f%%  %+10.1f%%\n",
			p, sgd, lw, opt, 100*(sgd-lw)/sgd, 100*(sgd-opt)/sgd)
	}
	eff := m.ScalingEfficiency(simulate.RunSpec{GPUs: 128, Epochs: 55, KFAC: true}, 16)
	fmt.Fprintf(w, "K-FAC-opt scaling efficiency at 128 GPUs: %.1f%% (paper R50: 71.8%%)\n", eff*100)
	var bars []plot.Bar
	for _, p := range scalesAll {
		sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 90})
		opt := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true})
		bars = append(bars,
			plot.Bar{Label: fmt.Sprintf("%3d GPUs SGD", p), Value: sgd},
			plot.Bar{Label: fmt.Sprintf("%3d GPUs opt", p), Value: opt})
	}
	fmt.Fprintln(w, plot.BarChart("time-to-solution (minutes)", 48, bars))
	return nil
}

func runTable4(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table4")
	header(w, e)
	fmt.Fprintf(w, "%-12s", "model")
	for _, p := range scalesAll {
		fmt.Fprintf(w, "  %8d", p)
	}
	fmt.Fprintln(w)
	paper := map[string][]float64{
		"resnet50":  {20.9, 19.7, 25.2, 23.5, 17.7},
		"resnet101": {18.4, 11.1, 15.1, 19.5, 9.7},
		"resnet152": {8.2, 7.6, 6.0, 4.9, -11.1},
	}
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		m := modelFor(name)
		fmt.Fprintf(w, "%-12s", name)
		for _, p := range scalesAll {
			sgd := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 90})
			opt := m.TimeToSolutionMin(simulate.RunSpec{GPUs: p, Epochs: 55, KFAC: true})
			fmt.Fprintf(w, "  %+7.1f%%", 100*(sgd-opt)/sgd)
		}
		fmt.Fprintf(w, "   (paper:")
		for _, v := range paper[name] {
			fmt.Fprintf(w, " %+.1f%%", v)
		}
		fmt.Fprintln(w, ")")
	}
	return nil
}

func runTable5(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table5")
	header(w, e)
	fmt.Fprintf(w, "%-12s  %-5s  %13s  %13s  %13s  %13s\n",
		"model", "GPUs", "factor Tcomp", "factor Tcomm", "eig Tcomp", "eig Tcomm")
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		m := modelFor(name)
		for _, p := range []int{16, 32, 64} {
			fc, fm := m.FactorStage(p)
			ec, em := m.EigStage(p, kfac.RoundRobin)
			fmt.Fprintf(w, "%-12s  %-5d  %10.1f ms  %10.1f ms  %10.1f ms  %10.1f ms\n",
				name, p, fc*1000, fm*1000, ec*1000, em*1000)
		}
	}
	fmt.Fprintln(w, "shape check: factor Tcomp constant in GPUs; eig Tcomp bounded by slowest worker")
	return nil
}

func runTable6(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("table6")
	header(w, e)
	fmt.Fprintf(w, "%-12s  %-5s  %-12s  %-12s\n", "model", "GPUs", "min speedup", "max speedup")
	for _, name := range []string{"resnet50", "resnet101", "resnet152"} {
		m := modelFor(name)
		base := m.WorkerEigTimes(16, kfac.RoundRobin)
		minB, maxB := busyMinMax(base)
		for _, p := range []int{16, 32, 64} {
			times := m.WorkerEigTimes(p, kfac.RoundRobin)
			minT, maxT := busyMinMax(times)
			// Table VI semantics: the slowest worker's improvement (min
			// speedup) and the fastest worker's improvement (max speedup)
			// relative to 16 GPUs.
			fmt.Fprintf(w, "%-12s  %-5d  %11.2fx  %11.2fx\n",
				name, p, maxB/maxT, minB/minT)
		}
	}
	fmt.Fprintln(w, "shape check: fastest workers gain ~4-8x from 16→64 GPUs, slowest only ~1-2x")
	return nil
}

// busyMinMax returns the fastest and slowest non-idle worker times.
func busyMinMax(v []float64) (lo, hi float64) {
	first := true
	for _, x := range v {
		if x == 0 {
			continue
		}
		if first {
			lo, hi = x, x
			first = false
			continue
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func runFig10(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("fig10")
	header(w, e)
	fmt.Fprintf(w, "%-12s  %-12s  %-14s  %-12s\n", "model", "params (M)", "factor Tcomp", "vs resnet50")
	base, _ := modelFor("resnet50").FactorStage(16)
	for _, name := range []string{"resnet34", "resnet50", "resnet101", "resnet152"} {
		m := modelFor(name)
		fc, _ := m.FactorStage(16)
		cat, _ := models.CatalogByName(name)
		fmt.Fprintf(w, "%-12s  %12.1f  %11.1f ms  %11.2fx\n",
			name, float64(cat.TotalParams())/1e6, fc*1000, fc/base)
	}
	fmt.Fprintln(w, "shape check: time ratio grows faster than parameter ratio (super-linear)")
	return nil
}

func runAblationPlacement(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-placement")
	header(w, e)
	fmt.Fprintf(w, "%-12s  %-5s  %-16s  %-16s  %-10s\n",
		"model", "GPUs", "round-robin max", "size-greedy max", "gain")
	for _, name := range []string{"resnet50", "resnet152"} {
		m := modelFor(name)
		for _, p := range []int{16, 64, 256} {
			rr, _ := m.EigStage(p, kfac.RoundRobin)
			gr, _ := m.EigStage(p, kfac.SizeGreedy)
			gain := 0.0
			if rr > 0 {
				gain = 100 * (rr - gr) / rr
			}
			fmt.Fprintf(w, "%-12s  %-5d  %13.1f ms  %13.1f ms  %8.1f%%\n",
				name, p, rr*1000, gr*1000, gain)
		}
	}
	return nil
}

func runAblationFusion(ctx context.Context, w io.Writer, cfg Config) error {
	e, _ := ByID("ablation-fusion")
	header(w, e)
	// Model the effect of splitting a 100 MB gradient exchange into k
	// messages: latency term multiplies, bandwidth term is constant.
	m := modelFor("resnet50")
	bytes := m.GradBytes()
	fmt.Fprintf(w, "%-14s  %-12s  %-12s\n", "fusion buffer", "messages", "allreduce @64")
	for _, mb := range []int{1, 4, 16, 32, 64} {
		msgs := int(bytes)/(mb<<20) + 1
		t := 0.0
		per := bytes / float64(msgs)
		for i := 0; i < msgs; i++ {
			t += m.RingAllreduceTime(per, 64)
		}
		fmt.Fprintf(w, "%10d MB  %12d  %9.1f ms\n", mb, msgs, t*1000)
	}
	fmt.Fprintln(w, "shape check: small buffers multiply latency; ≥16 MB is bandwidth-dominated")
	return nil
}
