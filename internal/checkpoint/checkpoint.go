// Package checkpoint serializes training state — model parameters, and
// optionally named auxiliary tensors such as optimizer momentum buffers or
// K-FAC running-average factors — to a stable binary format built on
// encoding/gob. Long ImageNet-scale runs in the paper's setting span many
// hours; checkpoint/restore is part of the production surface a downstream
// user expects.
//
// Format: a single gob stream holding a File struct. Parameter tensors are
// stored by name, so restoring requires a model with the same layer names
// and shapes (the usual state-dict contract).
package checkpoint

import (
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

// Entry is one named tensor.
type Entry struct {
	Name  string
	Shape []int
	Data  []float64
}

// File is the serialized checkpoint.
//
// Checkpoints are world-size agnostic by construction: only replica state
// (parameters, buffers, training progress) is stored — never rank- or
// world-derived state such as data-shard indices or K-FAC factor
// placement. A checkpoint written by an N-rank run therefore restores
// into an M-rank run unchanged; the restoring trainer rebuilds its shard
// sampler and re-runs factor placement for its own world size (the
// elastic recovery path relies on this, see trainer.RunElastic).
type File struct {
	Version int
	// Epoch and Step record training progress for resumption: Epoch is the
	// number of *completed* epochs, Step the optimizer-step count so far.
	Epoch, Step int
	// World optionally records the world size that wrote the checkpoint —
	// informational only (restore never requires it to match).
	World int
	// Params are the model parameters keyed by Param.Name order.
	Params []Entry
	// Buffers are the model's non-trainable state tensors (BatchNorm
	// running statistics), captured and restored alongside parameters.
	Buffers []Entry
	// Extra carries auxiliary tensors (momentum buffers, K-FAC factors)
	// under caller-chosen names.
	Extra []Entry
}

// Snapshot captures a model's parameters and stateful buffers (BatchNorm
// running statistics) into a File.
func Snapshot(model nn.Layer, epoch, step int) *File {
	f := &File{Version: FormatVersion, Epoch: epoch, Step: step}
	for _, p := range model.Params() {
		f.Params = append(f.Params, entryOf(p.Name, p.Value))
	}
	for _, s := range nn.StateTensors(model) {
		f.Buffers = append(f.Buffers, entryOf(s.Name, s.Value))
	}
	return f
}

// AddExtra attaches an auxiliary tensor under the given name.
func (f *File) AddExtra(name string, t *tensor.Tensor) {
	f.Extra = append(f.Extra, entryOf(name, t))
}

// Extra returns the auxiliary tensor stored under name, or nil.
func (f *File) ExtraTensor(name string) *tensor.Tensor {
	for _, e := range f.Extra {
		if e.Name == name {
			return e.tensor()
		}
	}
	return nil
}

func entryOf(name string, t *tensor.Tensor) Entry {
	return Entry{
		Name:  name,
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]float64(nil), t.Data...),
	}
}

func (e Entry) tensor() *tensor.Tensor {
	return tensor.FromSlice(append([]float64(nil), e.Data...), e.Shape...)
}

// Write encodes the checkpoint to w.
func (f *File) Write(w io.Writer) error {
	return gob.NewEncoder(w).Encode(f)
}

// Sum returns the SHA-256 digest of the checkpoint's canonical serialized
// bytes — exactly the bytes Write emits (and Save persists), so the digest
// of an in-memory File equals the digest of its on-disk form and survives
// a Save/Load round trip. File contains only integers and ordered slices
// (never maps), so gob encoding — and therefore the digest — is
// deterministic for a given value. This is the key the content-addressed
// checkpoint store (internal/ckptstore) files objects under: two
// checkpoints with identical training state share one digest and one
// stored object.
func (f *File) Sum() ([32]byte, error) {
	h := sha256.New()
	if err := f.Write(h); err != nil {
		return [32]byte{}, fmt.Errorf("checkpoint: hashing: %w", err)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// Read decodes a checkpoint from r. Truncated streams, non-checkpoint
// bytes, unknown versions, and internally inconsistent entries (a tensor
// whose shape does not describe its data) are all rejected with a
// descriptive error — a corrupt file can never panic a later Restore or
// ExtraTensor call.
func Read(r io.Reader) (*File, error) {
	var f File
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, fmt.Errorf("checkpoint: decode: truncated or empty stream: %w", err)
		}
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported version %d", f.Version)
	}
	if f.Epoch < 0 || f.Step < 0 {
		return nil, fmt.Errorf("checkpoint: negative progress (epoch %d, step %d)", f.Epoch, f.Step)
	}
	for _, sec := range []struct {
		name    string
		entries []Entry
	}{{"param", f.Params}, {"buffer", f.Buffers}, {"extra", f.Extra}} {
		for _, e := range sec.entries {
			if err := e.validate(); err != nil {
				return nil, fmt.Errorf("checkpoint: %s %q: %w", sec.name, e.Name, err)
			}
		}
	}
	return &f, nil
}

// validate checks that the entry's shape describes its data: every
// dimension positive and the dimension product equal to the element count.
// Gob decodes whatever ints were in the stream, so a corrupted or
// hand-crafted file can carry any inconsistency; this is the gate that
// keeps it from reaching tensor construction (which would panic).
func (e Entry) validate() error {
	n := 1
	for _, d := range e.Shape {
		if d <= 0 {
			return fmt.Errorf("invalid shape %v", e.Shape)
		}
		// Guard the product against overflow from adversarially huge dims:
		// bail as soon as it can no longer match len(Data).
		if n > len(e.Data)+1 {
			break
		}
		n *= d
	}
	if len(e.Shape) == 0 {
		n = 0
	}
	if n != len(e.Data) {
		return fmt.Errorf("shape %v does not describe %d data elements", e.Shape, len(e.Data))
	}
	return nil
}

// Restore copies the checkpoint's parameters into model. Every checkpoint
// entry must match a model parameter by name and element count; extra model
// parameters are an error (the strict state-dict contract).
func (f *File) Restore(model nn.Layer) error {
	params := model.Params()
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	if len(f.Params) != len(params) {
		return fmt.Errorf("checkpoint: has %d params, model has %d", len(f.Params), len(params))
	}
	for _, e := range f.Params {
		p, ok := byName[e.Name]
		if !ok {
			return fmt.Errorf("checkpoint: model has no parameter %q", e.Name)
		}
		if len(e.Data) != p.Value.Len() {
			return fmt.Errorf("checkpoint: parameter %q has %d elements, model wants %d",
				e.Name, len(e.Data), p.Value.Len())
		}
		copy(p.Value.Data, e.Data)
	}
	// Restore stateful buffers by name; the model may legitimately have
	// none (no BatchNorm), but a checkpointed buffer with no home is an
	// error.
	states := nn.StateTensors(model)
	stateByName := make(map[string]*tensor.Tensor, len(states))
	for _, s := range states {
		stateByName[s.Name] = s.Value
	}
	for _, e := range f.Buffers {
		buf, ok := stateByName[e.Name]
		if !ok {
			return fmt.Errorf("checkpoint: model has no buffer %q", e.Name)
		}
		if len(e.Data) != buf.Len() {
			return fmt.Errorf("checkpoint: buffer %q has %d elements, model wants %d",
				e.Name, len(e.Data), buf.Len())
		}
		copy(buf.Data, e.Data)
	}
	return nil
}

// Save writes the checkpoint atomically to path (via a temp file + rename).
func (f *File) Save(path string) error {
	tmp := path + ".tmp"
	w, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Write(w); err != nil {
		w.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return os.Rename(tmp, path)
}

// Load reads a checkpoint from path, naming the file in any decode or
// validation error so a corrupt checkpoint on disk is diagnosable.
func Load(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer r.Close()
	f, err := Read(r)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return f, nil
}
