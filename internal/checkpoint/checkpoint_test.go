package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := models.BuildSmallCNN(3, 10, 4, rng)
	f := Snapshot(src, 7, 123)
	if f.Epoch != 7 || f.Step != 123 {
		t.Errorf("progress = %d/%d", f.Epoch, f.Step)
	}

	// Restore into a freshly initialized model with different weights.
	dst := models.BuildSmallCNN(3, 10, 4, rand.New(rand.NewSource(2)))
	if err := f.Restore(dst); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if !sp[i].Value.Equal(dp[i].Value, 0) {
			t.Fatalf("parameter %s differs after restore", sp[i].Name)
		}
	}
}

func TestWriteReadStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := models.BuildMLP("mlp", []int{4, 8, 2}, rng)
	f := Snapshot(m, 1, 2)
	f.AddExtra("momentum.fc0", tensor.Full(0.5, 8, 4))

	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || len(got.Params) != len(f.Params) {
		t.Error("round trip lost data")
	}
	ex := got.ExtraTensor("momentum.fc0")
	if ex == nil || ex.At(0, 0) != 0.5 {
		t.Error("extra tensor lost")
	}
	if got.ExtraTensor("missing") != nil {
		t.Error("missing extra should be nil")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := models.BuildMLP("mlp", []int{3, 3}, rng)
	f := Snapshot(m, 5, 50)
	path := filepath.Join(t.TempDir(), "ckpt.gob")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 50 {
		t.Errorf("Step = %d", got.Step)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("expected error")
	}
}

func TestRestoreMismatchedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := models.BuildMLP("a", []int{4, 4}, rng)
	f := Snapshot(src, 0, 0)

	// Different layer names.
	other := models.BuildMLP("b", []int{4, 4}, rng)
	if err := f.Restore(other); err == nil {
		t.Error("expected name mismatch error")
	}
	// Different shape, same names.
	bigger := models.BuildMLP("a", []int{4, 5}, rng)
	if err := f.Restore(bigger); err == nil {
		t.Error("expected size mismatch error")
	}
	// Different parameter count.
	deeper := models.BuildMLP("a", []int{4, 4, 4}, rng)
	if err := f.Restore(deeper); err == nil {
		t.Error("expected count mismatch error")
	}
}

func TestReadBadVersion(t *testing.T) {
	f := &File{Version: 99}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("expected version error")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not a gob")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSnapshotTrainedStateDiffers(t *testing.T) {
	// Sanity: snapshot captures values, not references.
	rng := rand.New(rand.NewSource(6))
	m := models.BuildMLP("mlp", []int{2, 2}, rng)
	f := Snapshot(m, 0, 0)
	var before float64 = f.Params[0].Data[0]
	m.Params()[0].Value.Data[0] = 999
	if f.Params[0].Data[0] != before {
		t.Error("snapshot aliases live parameters")
	}
	var _ nn.Layer = m
}

// TestSumStableAcrossSaveLoad pins the content-hash contract the
// content-addressed checkpoint store keys on: Sum is deterministic, equals
// the SHA-256 of the saved file's bytes, survives a Save/Load round trip,
// and changes when any stored state changes.
func TestSumStableAcrossSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := models.BuildSmallCNN(1, 4, 4, rng)
	f := Snapshot(m, 2, 17)
	f.World = 3

	s1, err := f.Sum()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("Sum is not deterministic for an unchanged File")
	}

	// Sum hashes exactly the bytes Save persists.
	path := filepath.Join(t.TempDir(), "sum.ckpt")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if disk := sha256.Sum256(raw); disk != s1 {
		t.Errorf("Sum %x != sha256 of saved bytes %x", s1, disk)
	}

	// ...and the digest survives the Save/Load round trip.
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := g.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 {
		t.Errorf("Sum changed across Save/Load: %x → %x", s1, s3)
	}

	// Any state change moves the hash — content addressing, not identity.
	g.Params[0].Data[0] += 1
	s4, err := g.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if s4 == s1 {
		t.Error("Sum unchanged after mutating a parameter")
	}
}

// TestReadTruncatedFile: a valid checkpoint truncated at several offsets
// must yield a descriptive error from Read/Load — never a panic, never a
// silently partial File.
func TestReadTruncatedFile(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := models.BuildSmallCNN(1, 4, 4, rng)
	f := Snapshot(m, 1, 9)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	dir := t.TempDir()
	for _, cut := range []int{0, 1, 16, len(full) / 4, len(full) / 2, len(full) - 1} {
		trunc := full[:cut]
		if _, err := Read(bytes.NewReader(trunc)); err == nil {
			t.Errorf("Read accepted a checkpoint truncated to %d/%d bytes", cut, len(full))
		}
		path := filepath.Join(dir, "trunc.ckpt")
		if err := os.WriteFile(path, trunc, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("Load accepted a checkpoint truncated to %d/%d bytes", cut, len(full))
		} else if !strings.Contains(err.Error(), path) {
			t.Errorf("Load error for truncation at %d does not name the file: %v", cut, err)
		}
	}
	// The untruncated bytes still load, proving the loop exercised real
	// corruption rather than an always-failing fixture.
	if _, err := Read(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated checkpoint failed to read: %v", err)
	}
}

// TestReadInconsistentEntry: a decoded entry whose shape does not describe
// its data is rejected at Read time, before any tensor construction could
// panic on it.
func TestReadInconsistentEntry(t *testing.T) {
	cases := []struct {
		name  string
		entry Entry
	}{
		{"shape/data mismatch", Entry{Name: "w", Shape: []int{4, 4}, Data: make([]float64, 3)}},
		{"zero dim", Entry{Name: "w", Shape: []int{0, 4}, Data: nil}},
		{"negative dim", Entry{Name: "w", Shape: []int{-2, 2}, Data: make([]float64, 4)}},
		{"huge dims overflow", Entry{Name: "w", Shape: []int{1 << 31, 1 << 31, 1 << 31}, Data: make([]float64, 1)}},
	}
	for _, tc := range cases {
		f := &File{Version: FormatVersion, Extra: []Entry{tc.entry}}
		var buf bytes.Buffer
		if err := f.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err == nil {
			// Reaching ExtraTensor on such a File is exactly the panic path
			// the validation exists to prevent.
			t.Errorf("%s: Read accepted inconsistent entry %v", tc.name, got.Extra[0].Shape)
			continue
		}
		if !strings.Contains(err.Error(), "\"w\"") {
			t.Errorf("%s: error does not name the entry: %v", tc.name, err)
		}
	}
	// Negative progress counters are also data corruption.
	f := &File{Version: FormatVersion, Epoch: -1}
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Error("Read accepted a negative epoch")
	}
}

// TestRestoreAcrossWorldSizes: a checkpoint written at one world size must
// restore at any other — only replica state is stored, never rank- or
// world-derived state. This is the contract the elastic trainer's resized
// recovery relies on.
func TestRestoreAcrossWorldSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	src := models.BuildSmallCNN(1, 6, 4, rng)
	f := Snapshot(src, 3, 40)
	f.World = 8 // written by an 8-rank run

	path := filepath.Join(t.TempDir(), "world.ckpt")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.World != 8 || g.Epoch != 3 || g.Step != 40 {
		t.Fatalf("metadata %d/%d/%d, want world 8, epoch 3, step 40", g.World, g.Epoch, g.Step)
	}
	// "The 2-rank survivor restores the 8-rank checkpoint": nothing about
	// the restore consults World.
	dst := models.BuildSmallCNN(1, 6, 4, rand.New(rand.NewSource(10)))
	if err := g.Restore(dst); err != nil {
		t.Fatalf("restore at a different world size: %v", err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		if !sp[i].Value.Equal(dp[i].Value, 0) {
			t.Fatalf("parameter %s differs after cross-world restore", sp[i].Name)
		}
	}
}
