package data

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Standard CIFAR-style training augmentations: random crop with zero
// padding and random horizontal flip. The paper's training recipes use
// these on the real datasets; applying them to the synthetic stand-in
// preserves the pipeline structure (per-batch, training-split only).

// Augmenter applies randomized transforms to a batch in place.
type Augmenter struct {
	// Pad is the zero padding added before a random crop back to the
	// original size (CIFAR standard: 4).
	Pad int
	// FlipProb is the probability of a horizontal flip per image
	// (standard: 0.5).
	FlipProb float64
	rng      *rand.Rand
}

// NewAugmenter builds an augmenter with its own RNG stream.
func NewAugmenter(pad int, flipProb float64, seed int64) *Augmenter {
	return &Augmenter{Pad: pad, FlipProb: flipProb, rng: rand.New(rand.NewSource(seed))}
}

// Apply transforms every image in the batch in place.
func (a *Augmenter) Apply(b Batch) {
	n, c, h, w := b.X.Shape[0], b.X.Shape[1], b.X.Shape[2], b.X.Shape[3]
	sz := c * h * w
	for i := 0; i < n; i++ {
		img := tensor.FromSlice(b.X.Data[i*sz:(i+1)*sz], 1, c, h, w)
		if a.Pad > 0 {
			dy := a.rng.Intn(2*a.Pad+1) - a.Pad
			dx := a.rng.Intn(2*a.Pad+1) - a.Pad
			cropShift(img, dy, dx)
		}
		if a.FlipProb > 0 && a.rng.Float64() < a.FlipProb {
			flipHorizontal(img)
		}
	}
}

// cropShift emulates pad-then-random-crop as a shift with zero fill: the
// image moves by (dy, dx) and exposed borders become zero.
func cropShift(img *tensor.Tensor, dy, dx int) {
	c, h, w := img.Shape[1], img.Shape[2], img.Shape[3]
	src := append([]float64(nil), img.Data...)
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y + dy
			for x := 0; x < w; x++ {
				sx := x + dx
				if sy < 0 || sy >= h || sx < 0 || sx >= w {
					img.Data[base+y*w+x] = 0
				} else {
					img.Data[base+y*w+x] = src[base+sy*w+sx]
				}
			}
		}
	}
}

// flipHorizontal mirrors each row of every channel.
func flipHorizontal(img *tensor.Tensor) {
	c, h, w := img.Shape[1], img.Shape[2], img.Shape[3]
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			row := img.Data[base+y*w : base+(y+1)*w]
			for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
				row[i], row[j] = row[j], row[i]
			}
		}
	}
}

// Normalize standardizes a dataset in place to zero mean and unit variance
// per channel, computed over the given (training) split; returns the means
// and stds so the same statistics can normalize the test split — the
// standard train-statistics contract.
func Normalize(d *Dataset) (means, stds []float64) {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	spatial := h * w
	n := d.Len()
	means = make([]float64, c)
	stds = make([]float64, c)
	cnt := float64(n * spatial)
	for ch := 0; ch < c; ch++ {
		var sum float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				sum += d.X.Data[base+s]
			}
		}
		means[ch] = sum / cnt
		var varSum float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				dv := d.X.Data[base+s] - means[ch]
				varSum += dv * dv
			}
		}
		stds[ch] = sqrt(varSum / cnt)
		if stds[ch] == 0 {
			stds[ch] = 1
		}
	}
	ApplyNormalization(d, means, stds)
	return means, stds
}

// ApplyNormalization standardizes d with externally computed statistics.
func ApplyNormalization(d *Dataset, means, stds []float64) {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	spatial := h * w
	for i := 0; i < d.Len(); i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * spatial
			inv := 1 / stds[ch]
			for s := 0; s < spatial; s++ {
				d.X.Data[base+s] = (d.X.Data[base+s] - means[ch]) * inv
			}
		}
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
