package data

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateSyntheticShapes(t *testing.T) {
	cfg := SyntheticConfig{Train: 100, Test: 40, Classes: 5, Channels: 3, Size: 8, Noise: 0.1, Seed: 1}
	train, test := GenerateSynthetic(cfg)
	if train.Len() != 100 || test.Len() != 40 {
		t.Fatalf("split sizes = %d/%d", train.Len(), test.Len())
	}
	if train.X.Shape[1] != 3 || train.X.Shape[2] != 8 || train.X.Shape[3] != 8 {
		t.Fatalf("image shape = %v", train.X.Shape)
	}
	for _, l := range train.Labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label out of range: %d", l)
		}
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Train: 20, Test: 5, Classes: 3, Channels: 1, Size: 6, Noise: 0.2, Seed: 7}
	a, _ := GenerateSynthetic(cfg)
	b, _ := GenerateSynthetic(cfg)
	if !a.X.Equal(b.X, 0) {
		t.Error("same seed must give identical data")
	}
	cfg.Seed = 8
	c, _ := GenerateSynthetic(cfg)
	if a.X.Equal(c.X, 0) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateSyntheticAllClassesPresent(t *testing.T) {
	cfg := SyntheticConfig{Train: 500, Test: 10, Classes: 10, Channels: 1, Size: 4, Seed: 3}
	train, _ := GenerateSynthetic(cfg)
	seen := make(map[int]bool)
	for _, l := range train.Labels {
		seen[l] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d classes present in 500 samples", len(seen))
	}
}

func TestGenerateSyntheticClassesSeparable(t *testing.T) {
	// With zero noise and no shift, samples equal their class prototype, so
	// a nearest-prototype rule classifies perfectly — the class signal is
	// real, not an artifact.
	cfg := SyntheticConfig{Train: 50, Test: 50, Classes: 4, Channels: 1, Size: 8, Noise: 0, Shift: 0, Seed: 5}
	train, test := GenerateSynthetic(cfg)
	sz := 64
	for i := 0; i < test.Len(); i++ {
		ti := test.X.Data[i*sz : (i+1)*sz]
		// Find any train sample with the same label; must be identical.
		found := false
		for j := 0; j < train.Len(); j++ {
			if train.Labels[j] != test.Labels[i] {
				continue
			}
			tj := train.X.Data[j*sz : (j+1)*sz]
			same := true
			for k := range ti {
				if math.Abs(ti[k]-tj[k]) > 1e-12 {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("noiseless sample %d does not match its class prototype", i)
		}
	}
}

func TestImageView(t *testing.T) {
	cfg := SyntheticConfig{Train: 4, Test: 1, Classes: 2, Channels: 2, Size: 3, Seed: 2}
	train, _ := GenerateSynthetic(cfg)
	img := train.Image(2)
	if img.Shape[0] != 1 || img.Shape[1] != 2 || img.Shape[2] != 3 {
		t.Fatalf("Image shape = %v", img.Shape)
	}
	// Shares storage with the dataset.
	img.Data[0] = 42
	if train.X.Data[2*18] != 42 {
		t.Error("Image must be a view, not a copy")
	}
}

func TestShardSamplerDisjointAndComplete(t *testing.T) {
	// Shards must be disjoint and cover all indices when N divides world.
	s := func(rank int) ShardSampler { return ShardSampler{N: 12, Rank: rank, World: 3, Seed: 9} }
	seen := make(map[int]int)
	for r := 0; r < 3; r++ {
		idx := s(r).EpochIndices(0)
		if len(idx) != 4 {
			t.Fatalf("rank %d shard size %d, want 4", r, len(idx))
		}
		for _, i := range idx {
			seen[i]++
		}
	}
	if len(seen) != 12 {
		t.Errorf("shards cover %d of 12 indices", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("index %d appears %d times", i, c)
		}
	}
}

func TestShardSamplerPadsUnevenN(t *testing.T) {
	// N=10, world=4: padded to 12 — every rank gets 3 indices.
	for r := 0; r < 4; r++ {
		idx := ShardSampler{N: 10, Rank: r, World: 4, Seed: 1}.EpochIndices(0)
		if len(idx) != 3 {
			t.Fatalf("rank %d shard size %d, want 3", r, len(idx))
		}
		for _, i := range idx {
			if i < 0 || i >= 10 {
				t.Fatalf("index %d out of range", i)
			}
		}
	}
}

func TestShardSamplerReshufflesPerEpoch(t *testing.T) {
	s := ShardSampler{N: 100, Rank: 0, World: 2, Seed: 4}
	a := s.EpochIndices(0)
	b := s.EpochIndices(1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("epochs should reshuffle")
	}
	// Same epoch twice: identical (all ranks agree on the permutation).
	c := s.EpochIndices(0)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same epoch must be deterministic")
		}
	}
}

// Property: for any (N, world) the shards partition the padded index
// sequence: equal sizes, all indices valid.
func TestShardSamplerProperty(t *testing.T) {
	f := func(nRaw, worldRaw uint8, seed int64) bool {
		n := int(nRaw%200) + 1
		world := int(worldRaw%8) + 1
		want := (n + world - 1) / world
		for r := 0; r < world; r++ {
			idx := ShardSampler{N: n, Rank: r, World: world, Seed: seed}.EpochIndices(3)
			if len(idx) != want {
				return false
			}
			for _, i := range idx {
				if i < 0 || i >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBatchesShapesAndDropLast(t *testing.T) {
	cfg := SyntheticConfig{Train: 25, Test: 5, Classes: 3, Channels: 2, Size: 4, Seed: 6}
	train, _ := GenerateSynthetic(cfg)
	idx := ShardSampler{N: 25, Rank: 0, World: 1, Seed: 1}.EpochIndices(0)
	bs := Batches(train, idx, 8)
	if len(bs) != 3 { // 25/8 = 3 full batches, last partial dropped
		t.Fatalf("batches = %d, want 3", len(bs))
	}
	for _, b := range bs {
		if b.X.Shape[0] != 8 || len(b.Labels) != 8 {
			t.Fatalf("batch shape = %v labels = %d", b.X.Shape, len(b.Labels))
		}
	}
}

func TestBatchesContentMatchesDataset(t *testing.T) {
	cfg := SyntheticConfig{Train: 6, Test: 2, Classes: 2, Channels: 1, Size: 2, Seed: 8}
	train, _ := GenerateSynthetic(cfg)
	idx := []int{3, 1, 5, 0}
	bs := Batches(train, idx, 2)
	if len(bs) != 2 {
		t.Fatalf("batches = %d", len(bs))
	}
	if bs[0].Labels[0] != train.Labels[3] || bs[0].Labels[1] != train.Labels[1] {
		t.Error("batch labels out of order")
	}
	sz := 4
	for k := 0; k < sz; k++ {
		if bs[1].X.Data[k] != train.X.Data[5*sz+k] {
			t.Fatal("batch pixels do not match source example")
		}
	}
}

func TestBatchesInvalidSizePanics(t *testing.T) {
	cfg := SyntheticConfig{Train: 4, Test: 1, Classes: 2, Channels: 1, Size: 2, Seed: 1}
	train, _ := GenerateSynthetic(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Batches(train, []int{0, 1}, 0)
}

func TestGenerateSyntheticTooFewClassesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GenerateSynthetic(SyntheticConfig{Train: 1, Test: 1, Classes: 1, Channels: 1, Size: 2})
}

func TestPresetConfigs(t *testing.T) {
	c := CIFARLike(1)
	if c.Classes != 10 || c.Channels != 3 || c.Size < 16 {
		t.Errorf("CIFARLike = %+v", c)
	}
	i := ImageNetLike(1)
	if i.Classes <= c.Classes {
		t.Error("ImageNetLike should have more classes than CIFARLike")
	}
}
