// Package data provides the dataset substrate. The paper trains on CIFAR-10
// and ImageNet-1k; neither is redistributable or downloadable here, so this
// package generates class-structured synthetic image datasets with the same
// tensor shapes (see DESIGN.md, substitution 3): each class has a random
// smooth prototype image, samples are prototypes plus structured noise and
// random circular shifts. The resulting task is learnable but not trivially
// linearly separable, which is what the correctness experiments need —
// an optimizer that exploits curvature converges in fewer iterations.
//
// The package also provides the data-parallel sharding sampler that mirrors
// PyTorch's DistributedSampler: each rank iterates a disjoint shard, and a
// per-epoch seed reshuffles globally.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is an in-memory labeled image dataset.
type Dataset struct {
	// X holds images as [N, C, H, W].
	X *tensor.Tensor
	// Labels holds the class index of each image.
	Labels []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Image returns a view of example i as [1, C, H, W] sharing storage.
func (d *Dataset) Image(i int) *tensor.Tensor {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	sz := c * h * w
	return tensor.FromSlice(d.X.Data[i*sz:(i+1)*sz], 1, c, h, w)
}

// SyntheticConfig parameterizes GenerateSynthetic.
type SyntheticConfig struct {
	Train, Test    int // number of examples in each split
	Classes        int
	Channels, Size int     // image geometry (Size × Size)
	Noise          float64 // additive Gaussian noise std
	Shift          int     // max circular shift in pixels (augmentation-like variation)
	Seed           int64
}

// CIFARLike returns the configuration for the CIFAR-10 stand-in used by the
// correctness experiments: 10 classes of 3-channel images, scaled down in
// pixel count and cardinality to keep pure-Go training tractable, with
// enough noise and shift that several epochs are needed to converge.
func CIFARLike(seed int64) SyntheticConfig {
	return SyntheticConfig{
		Train: 1024, Test: 384, Classes: 10,
		Channels: 3, Size: 24, Noise: 2.4, Shift: 7, Seed: seed,
	}
}

// ImageNetLike returns the scaled-down ImageNet-1k stand-in: more classes
// than the CIFAR stand-in, used where the paper trains ResNet-50 on
// ImageNet.
func ImageNetLike(seed int64) SyntheticConfig {
	return SyntheticConfig{
		Train: 2048, Test: 512, Classes: 50,
		Channels: 3, Size: 24, Noise: 1.0, Shift: 6, Seed: seed,
	}
}

// GenerateSynthetic builds train and test splits from per-class smooth
// prototypes. Both splits draw from the identical distribution, so test
// accuracy measures generalization over noise and shifts rather than
// memorization.
func GenerateSynthetic(cfg SyntheticConfig) (train, test *Dataset) {
	if cfg.Classes < 2 {
		panic(fmt.Sprintf("data: need ≥2 classes, got %d", cfg.Classes))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([]*tensor.Tensor, cfg.Classes)
	for k := range protos {
		protos[k] = smoothPrototype(rng, cfg.Channels, cfg.Size)
	}
	gen := func(n int) *Dataset {
		d := &Dataset{
			X:       tensor.New(n, cfg.Channels, cfg.Size, cfg.Size),
			Labels:  make([]int, n),
			Classes: cfg.Classes,
		}
		sz := cfg.Channels * cfg.Size * cfg.Size
		for i := 0; i < n; i++ {
			k := rng.Intn(cfg.Classes)
			d.Labels[i] = k
			dy, dx := 0, 0
			if cfg.Shift > 0 {
				dy = rng.Intn(2*cfg.Shift+1) - cfg.Shift
				dx = rng.Intn(2*cfg.Shift+1) - cfg.Shift
			}
			dst := d.X.Data[i*sz : (i+1)*sz]
			writeShifted(dst, protos[k], cfg.Channels, cfg.Size, dy, dx)
			for j := range dst {
				dst[j] += rng.NormFloat64() * cfg.Noise
			}
		}
		return d
	}
	return gen(cfg.Train), gen(cfg.Test)
}

// smoothPrototype returns a low-frequency random image: a sum of a few
// random 2-D cosine modes per channel, normalized to unit std. Low-frequency
// structure survives shifts and noise, giving each class a stable signature.
func smoothPrototype(rng *rand.Rand, channels, size int) *tensor.Tensor {
	p := tensor.New(channels, size, size)
	const modes = 4
	for c := 0; c < channels; c++ {
		for m := 0; m < modes; m++ {
			fy := float64(rng.Intn(3) + 1)
			fx := float64(rng.Intn(3) + 1)
			phy := rng.Float64() * 6.283185307
			phx := rng.Float64() * 6.283185307
			amp := 0.5 + rng.Float64()
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					v := amp * cosApprox(fy*float64(y)/float64(size)*6.283185307+phy) *
						cosApprox(fx*float64(x)/float64(size)*6.283185307+phx)
					p.Data[(c*size+y)*size+x] += v
				}
			}
		}
	}
	// Normalize to zero mean, unit std.
	mean := p.Mean()
	for i := range p.Data {
		p.Data[i] -= mean
	}
	std := p.Norm2() / sqrtLen(p.Len())
	if std > 0 {
		p.Scale(1 / std)
	}
	return p
}

// writeShifted copies proto into dst with a circular (dy, dx) shift.
func writeShifted(dst []float64, proto *tensor.Tensor, channels, size, dy, dx int) {
	for c := 0; c < channels; c++ {
		for y := 0; y < size; y++ {
			sy := ((y+dy)%size + size) % size
			for x := 0; x < size; x++ {
				sx := ((x+dx)%size + size) % size
				dst[(c*size+y)*size+x] = proto.Data[(c*size+sy)*size+sx]
			}
		}
	}
}

// Batch is one mini-batch of images and labels.
type Batch struct {
	X      *tensor.Tensor // [B, C, H, W]
	Labels []int
}

// ShardSampler yields the indices a rank iterates in one epoch, mirroring
// a distributed sampler: a global permutation seeded by (seed, epoch) is
// computed identically on every rank, padded to a multiple of world size,
// and strided by rank so shards are disjoint and equal-sized.
type ShardSampler struct {
	N     int
	Rank  int
	World int
	Seed  int64
}

// EpochIndices returns this rank's example indices for the given epoch.
func (s ShardSampler) EpochIndices(epoch int) []int {
	perm := rand.New(rand.NewSource(s.Seed + int64(epoch)*1_000_003)).Perm(s.N)
	// Pad to a multiple of the world size by wrapping (the distributed
	// sampler convention) so all ranks step the same number of batches.
	total := ((s.N + s.World - 1) / s.World) * s.World
	out := make([]int, 0, total/s.World)
	for i := s.Rank; i < total; i += s.World {
		out = append(out, perm[i%s.N])
	}
	return out
}

// Batches slices a dataset into mini-batches following idx order. The final
// partial batch is dropped when fewer than batchSize examples remain,
// matching the constant-batch-shape convention of synchronous SGD.
func Batches(d *Dataset, idx []int, batchSize int) []Batch {
	if batchSize < 1 {
		panic("data: batchSize must be ≥ 1")
	}
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	sz := c * h * w
	var out []Batch
	for start := 0; start+batchSize <= len(idx); start += batchSize {
		b := Batch{
			X:      tensor.New(batchSize, c, h, w),
			Labels: make([]int, batchSize),
		}
		for j := 0; j < batchSize; j++ {
			src := idx[start+j]
			copy(b.X.Data[j*sz:(j+1)*sz], d.X.Data[src*sz:(src+1)*sz])
			b.Labels[j] = d.Labels[src]
		}
		out = append(out, b)
	}
	return out
}

func cosApprox(x float64) float64 { return math.Cos(x) }

func sqrtLen(n int) float64 { return math.Sqrt(float64(n)) }
