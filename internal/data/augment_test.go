package data

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func makeBatch(n, c, h, w int) Batch {
	b := Batch{X: tensor.New(n, c, h, w), Labels: make([]int, n)}
	for i := range b.X.Data {
		b.X.Data[i] = float64(i + 1)
	}
	return b
}

func TestFlipHorizontal(t *testing.T) {
	img := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 1, 1, 2, 3)
	flipHorizontal(img)
	want := []float64{3, 2, 1, 6, 5, 4}
	for i := range want {
		if img.Data[i] != want[i] {
			t.Fatalf("flip = %v, want %v", img.Data, want)
		}
	}
	// Involution.
	flipHorizontal(img)
	for i := range img.Data {
		if img.Data[i] != float64(i+1) {
			t.Fatal("double flip should restore")
		}
	}
}

func TestCropShift(t *testing.T) {
	img := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	cropShift(img, 1, 0) // shift up by one: bottom row exposed → zeros
	want := []float64{3, 4, 0, 0}
	for i := range want {
		if img.Data[i] != want[i] {
			t.Fatalf("shift = %v, want %v", img.Data, want)
		}
	}
	// Zero shift is identity.
	img2 := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	cropShift(img2, 0, 0)
	for i := range img2.Data {
		if img2.Data[i] != float64(i+1) {
			t.Fatal("zero shift should be identity")
		}
	}
}

func TestAugmenterPreservesShape(t *testing.T) {
	b := makeBatch(4, 3, 8, 8)
	a := NewAugmenter(2, 0.5, 1)
	a.Apply(b)
	if b.X.Shape[0] != 4 || b.X.Shape[3] != 8 {
		t.Fatalf("shape changed: %v", b.X.Shape)
	}
}

func TestAugmenterDeterministicPerSeed(t *testing.T) {
	b1 := makeBatch(4, 1, 6, 6)
	b2 := makeBatch(4, 1, 6, 6)
	NewAugmenter(2, 0.5, 9).Apply(b1)
	NewAugmenter(2, 0.5, 9).Apply(b2)
	if !b1.X.Equal(b2.X, 0) {
		t.Error("same seed should give identical augmentation")
	}
}

func TestAugmenterNoOpConfig(t *testing.T) {
	b := makeBatch(2, 1, 4, 4)
	orig := b.X.Clone()
	NewAugmenter(0, 0, 1).Apply(b)
	if !b.X.Equal(orig, 0) {
		t.Error("pad=0 flip=0 should be identity")
	}
}

func TestNormalizeZeroMeanUnitVar(t *testing.T) {
	cfg := SyntheticConfig{Train: 64, Test: 16, Classes: 3, Channels: 2, Size: 6, Noise: 1, Seed: 4}
	train, test := GenerateSynthetic(cfg)
	means, stds := Normalize(train)
	if len(means) != 2 || len(stds) != 2 {
		t.Fatalf("stats lengths: %d %d", len(means), len(stds))
	}
	// After normalization the training set is standardized per channel.
	c, spatial := 2, 36
	for ch := 0; ch < c; ch++ {
		var sum float64
		cnt := float64(train.Len() * spatial)
		for i := 0; i < train.Len(); i++ {
			base := (i*c + ch) * spatial
			for s := 0; s < spatial; s++ {
				sum += train.X.Data[base+s]
			}
		}
		if math.Abs(sum/cnt) > 1e-10 {
			t.Errorf("channel %d mean %v after normalize", ch, sum/cnt)
		}
	}
	// Test split normalized with train statistics runs without panic and
	// roughly standardizes (not exactly: different sample).
	ApplyNormalization(test, means, stds)
	if test.X.HasNaN() {
		t.Error("NaN after normalization")
	}
}

func TestNormalizeConstantChannel(t *testing.T) {
	d := &Dataset{X: tensor.New(4, 1, 2, 2), Labels: make([]int, 4), Classes: 2}
	d.X.Fill(3)
	means, stds := Normalize(d)
	if means[0] != 3 || stds[0] != 1 {
		t.Errorf("constant channel stats: %v %v", means, stds)
	}
	for _, v := range d.X.Data {
		if v != 0 {
			t.Fatal("constant channel should normalize to zero")
		}
	}
}
