// Package trainer implements the synchronous data-parallel training loop of
// the paper (§II-B, Figure 1): per-rank forward/backward over a local
// mini-batch shard, ring-allreduce gradient exchange, optional K-FAC
// preconditioning (Listing 1 ordering: synchronize → precondition → step),
// and a first-order optimizer update — plus distributed validation and the
// learning-rate / damping / update-frequency schedules the experiments use.
//
// The K-FAC step may run either synchronously or through the pipelined
// engine (kfac.Options.Engine); the trainer drives both identically because
// Step fully drains its asynchronous collectives before returning, keeping
// the global collective order deterministic across ranks.
package trainer

import (
	"context"
	"io"
	"math/rand"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
)

// Config parameterizes a training run. The zero value is not runnable; see
// the field comments for required entries.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchPerRank is the local mini-batch size; the effective global batch
	// is BatchPerRank × world size (the paper: 32 per GPU).
	BatchPerRank int
	// LR is the learning-rate schedule (already scaled for the world size,
	// per the paper's N×0.0125 linear-scaling rule).
	LR optim.LRSchedule
	// Momentum for SGD (paper: 0.9).
	Momentum float64
	// WeightDecay for SGD (0 disables).
	WeightDecay float64
	// LabelSmoothing ε for the loss (paper: 0.1 on ImageNet).
	LabelSmoothing float64
	// KFAC enables K-FAC preconditioning when non-nil.
	KFAC *kfac.Options
	// DampingSchedule optionally decays K-FAC damping at fixed epochs.
	DampingSchedule *kfac.ParamSchedule
	// FreqSchedule optionally decays kfac-update-freq at fixed epochs.
	FreqSchedule *kfac.ParamSchedule
	// FusionBytes bounds the gradient-fusion buffer (0 = default 16 MB).
	FusionBytes int
	// Seed drives data sharding; must agree across ranks.
	Seed int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// StopAtValAcc, when positive, ends training at the first epoch whose
	// validation accuracy reaches the threshold — the paper's
	// time-to-baseline measurement (e.g. 75.9% for ResNet-50/ImageNet).
	StopAtValAcc float64
	// TrackTop5 additionally records top-5 validation accuracy.
	TrackTop5 bool
	// AccumSteps accumulates gradients over this many micro-batches before
	// the (single) gradient exchange and optimizer step, emulating a
	// larger effective batch without more memory (0/1 = off). The
	// effective batch becomes BatchPerRank × AccumSteps × world.
	AccumSteps int
}

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch     int
	LR        float64
	TrainLoss float64
	TrainAcc  float64
	ValAcc    float64
	ValTop5   float64 // populated when Config.TrackTop5 is set
	Wall      time.Duration
}

// Result summarizes a training run.
type Result struct {
	History     []EpochStats
	FinalValAcc float64
	BestValAcc  float64
	Iterations  int
	// Stopped reports whether StopAtValAcc ended training early.
	Stopped bool
	// TotalWall is the summed epoch wall time (training + validation).
	TotalWall time.Duration
	// KFACStats holds the preconditioner's measured stage profile (nil for
	// SGD runs) — the real-run analogue of the paper's Table V.
	KFACStats *kfac.StageStats
}

// EpochsToReach returns the first 1-based epoch whose validation accuracy
// meets the threshold, or -1 if never reached. This is the paper's
// "converges to the 75.9% baseline in the 43rd epoch" measurement.
func (r *Result) EpochsToReach(acc float64) int {
	for _, e := range r.History {
		if e.ValAcc >= acc {
			return e.Epoch + 1
		}
	}
	return -1
}

// TrainRank trains net on this rank's shards. c may be nil for
// single-process runs. All ranks must use identical Config and datasets
// (each rank loads the full dataset and iterates its shard, as PyTorch's
// DistributedSampler does).
//
// Deprecated: TrainRank is a thin shim over the Session API — the Config
// fields map onto session options (Log, StopAtValAcc and TrackTop5 become
// the stock WithLogger, WithStopAtValAcc and WithTop5 hooks) and the run
// executes under context.Background. New code should build a Session and
// call Run(ctx) for hooks and cancellation.
func TrainRank(net *nn.Sequential, c *comm.Communicator, train, test *data.Dataset, cfg Config) (*Result, error) {
	s, err := NewSession(net, c, train, test, sessionOptionsFromConfig(cfg)...)
	if err != nil {
		return nil, err
	}
	return s.Run(context.Background())
}

// sessionOptionsFromConfig translates the legacy Config struct into the
// equivalent session options, preserving the legacy ordering of the stock
// hooks (log first, then the early-stop decision).
func sessionOptionsFromConfig(cfg Config) []SessionOption {
	opts := []SessionOption{
		WithEpochs(cfg.Epochs),
		WithBatchPerRank(cfg.BatchPerRank),
		WithLRSchedule(cfg.LR),
		WithMomentum(cfg.Momentum),
		WithWeightDecay(cfg.WeightDecay),
		WithLabelSmoothing(cfg.LabelSmoothing),
		WithSeed(cfg.Seed),
		WithAccumSteps(cfg.AccumSteps),
		WithFusionBytes(cfg.FusionBytes),
	}
	if cfg.KFAC != nil {
		opts = append(opts, WithKFACOptions(*cfg.KFAC))
	}
	if cfg.DampingSchedule != nil {
		opts = append(opts, WithDampingSchedule(cfg.DampingSchedule))
	}
	if cfg.FreqSchedule != nil {
		opts = append(opts, WithFreqSchedule(cfg.FreqSchedule))
	}
	if cfg.TrackTop5 {
		opts = append(opts, WithTop5())
	}
	if cfg.Log != nil {
		opts = append(opts, WithLogger(cfg.Log))
	}
	if cfg.StopAtValAcc > 0 {
		opts = append(opts, WithStopAtValAcc(cfg.StopAtValAcc))
	}
	return opts
}

// Evaluate computes validation accuracy over test, sharded across ranks and
// averaged by example count.
func Evaluate(net *nn.Sequential, c *comm.Communicator, test *data.Dataset, batch int, seed int64) (float64, error) {
	acc, _, err := evaluateTopK(net, c, test, batch, seed, false)
	return acc, err
}

// evaluateTopK computes top-1 (and optionally top-5) validation accuracy.
func evaluateTopK(net *nn.Sequential, c *comm.Communicator, test *data.Dataset,
	batch int, seed int64, top5 bool) (float64, float64, error) {
	rank, world := 0, 1
	if c != nil {
		rank, world = c.Rank(), c.Size()
	}
	sampler := data.ShardSampler{N: test.Len(), Rank: rank, World: world, Seed: seed}
	idx := sampler.EpochIndices(0)
	var correct, correct5, total float64
	for _, b := range data.Batches(test, idx, batch) {
		out := net.Forward(b.X, false)
		n := float64(len(b.Labels))
		correct += nn.Accuracy(out, b.Labels) * n
		if top5 {
			correct5 += metrics.TopKAccuracy(out, b.Labels, 5) * n
		}
		total += n
	}
	if c != nil && world > 1 {
		buf := []float64{correct, correct5, total}
		if err := c.AllreduceSum(buf); err != nil {
			return 0, 0, err
		}
		correct, correct5, total = buf[0], buf[1], buf[2]
	}
	if total == 0 {
		return 0, 0, nil
	}
	return correct / total, correct5 / total, nil
}

// RunDistributed builds one model replica per rank over an in-process
// fabric and trains them in parallel, returning every rank's Result. buildNet
// is called once per rank with a rank-independent seed so replicas start
// identical (the initial broadcast enforces it regardless).
//
// Deprecated: RunDistributed is a thin shim over RunSessions (the Session
// API's multi-rank runner) under context.Background; new code should call
// RunSessions for hooks and cancellation.
func RunDistributed(world int, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, cfg Config) ([]*Result, error) {
	return RunSessions(context.Background(), world, buildNet, train, test,
		sessionOptionsFromConfig(cfg)...)
}
