// Package trainer implements the synchronous data-parallel training loop of
// the paper (§II-B, Figure 1): per-rank forward/backward over a local
// mini-batch shard, ring-allreduce gradient exchange, optional K-FAC
// preconditioning (Listing 1 ordering: synchronize → precondition → step),
// and a first-order optimizer update — plus distributed validation and the
// learning-rate / damping / update-frequency schedules the experiments use.
//
// The K-FAC step may run either synchronously or through the pipelined
// engine (kfac.Options.Engine); the trainer drives both identically because
// Step fully drains its asynchronous collectives before returning, keeping
// the global collective order deterministic across ranks.
package trainer

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
)

// Config parameterizes a training run. The zero value is not runnable; see
// the field comments for required entries.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchPerRank is the local mini-batch size; the effective global batch
	// is BatchPerRank × world size (the paper: 32 per GPU).
	BatchPerRank int
	// LR is the learning-rate schedule (already scaled for the world size,
	// per the paper's N×0.0125 linear-scaling rule).
	LR optim.LRSchedule
	// Momentum for SGD (paper: 0.9).
	Momentum float64
	// WeightDecay for SGD (0 disables).
	WeightDecay float64
	// LabelSmoothing ε for the loss (paper: 0.1 on ImageNet).
	LabelSmoothing float64
	// KFAC enables K-FAC preconditioning when non-nil.
	KFAC *kfac.Options
	// DampingSchedule optionally decays K-FAC damping at fixed epochs.
	DampingSchedule *kfac.ParamSchedule
	// FreqSchedule optionally decays kfac-update-freq at fixed epochs.
	FreqSchedule *kfac.ParamSchedule
	// FusionBytes bounds the gradient-fusion buffer (0 = default 16 MB).
	FusionBytes int
	// Seed drives data sharding; must agree across ranks.
	Seed int64
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// StopAtValAcc, when positive, ends training at the first epoch whose
	// validation accuracy reaches the threshold — the paper's
	// time-to-baseline measurement (e.g. 75.9% for ResNet-50/ImageNet).
	StopAtValAcc float64
	// TrackTop5 additionally records top-5 validation accuracy.
	TrackTop5 bool
	// AccumSteps accumulates gradients over this many micro-batches before
	// the (single) gradient exchange and optimizer step, emulating a
	// larger effective batch without more memory (0/1 = off). The
	// effective batch becomes BatchPerRank × AccumSteps × world.
	AccumSteps int
}

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch     int
	LR        float64
	TrainLoss float64
	TrainAcc  float64
	ValAcc    float64
	ValTop5   float64 // populated when Config.TrackTop5 is set
	Wall      time.Duration
}

// Result summarizes a training run.
type Result struct {
	History     []EpochStats
	FinalValAcc float64
	BestValAcc  float64
	Iterations  int
	// Stopped reports whether StopAtValAcc ended training early.
	Stopped bool
	// TotalWall is the summed epoch wall time (training + validation).
	TotalWall time.Duration
	// KFACStats holds the preconditioner's measured stage profile (nil for
	// SGD runs) — the real-run analogue of the paper's Table V.
	KFACStats *kfac.StageStats
}

// EpochsToReach returns the first 1-based epoch whose validation accuracy
// meets the threshold, or -1 if never reached. This is the paper's
// "converges to the 75.9% baseline in the 43rd epoch" measurement.
func (r *Result) EpochsToReach(acc float64) int {
	for _, e := range r.History {
		if e.ValAcc >= acc {
			return e.Epoch + 1
		}
	}
	return -1
}

// TrainRank trains net on this rank's shards. c may be nil for
// single-process runs. All ranks must use identical Config and datasets
// (each rank loads the full dataset and iterates its shard, as PyTorch's
// DistributedSampler does).
func TrainRank(net *nn.Sequential, c *comm.Communicator, train, test *data.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 || cfg.BatchPerRank <= 0 {
		return nil, fmt.Errorf("trainer: Epochs and BatchPerRank must be positive")
	}
	rank, world := 0, 1
	if c != nil {
		rank, world = c.Rank(), c.Size()
	}
	params := net.Params()

	// Horovod convention: broadcast initial weights from rank 0 so all
	// replicas start identical regardless of construction seeds.
	if c != nil && world > 1 {
		for _, p := range params {
			if err := c.Broadcast(p.Value.Data, 0); err != nil {
				return nil, fmt.Errorf("trainer: initial broadcast: %w", err)
			}
		}
	}

	opt := optim.NewSGD(params, cfg.LR.At(0), cfg.Momentum, cfg.WeightDecay, false)
	var prec *kfac.Preconditioner
	if cfg.KFAC != nil {
		// The K-FAC options (including the step engine) pass through as-is.
		// Under kfac.EnginePipelined the preconditioner issues overlapping
		// async collectives inside Step; that is safe here because every
		// rank builds the identical model (so the per-layer schedule is
		// deterministic and identical) and the trainer performs no other
		// collective between Step's entry and return — the SPMD ordering
		// contract of docs/ARCHITECTURE.md.
		prec = kfac.New(net, c, *cfg.KFAC)
		defer prec.Close()
	}
	ce := nn.CrossEntropy{Smoothing: cfg.LabelSmoothing}
	sampler := data.ShardSampler{N: train.Len(), Rank: rank, World: world, Seed: cfg.Seed}

	res := &Result{}
	if prec != nil {
		res.KFACStats = prec.Stats()
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		lr := cfg.LR.At(epoch)
		opt.SetLR(lr)
		if prec != nil {
			if cfg.DampingSchedule != nil {
				prec.SetDamping(cfg.DampingSchedule.At(epoch))
			}
			if cfg.FreqSchedule != nil {
				prec.SetInvUpdateFreq(int(cfg.FreqSchedule.At(epoch) + 0.5))
			}
		}

		accum := cfg.AccumSteps
		if accum < 1 {
			accum = 1
		}
		batches := data.Batches(train, sampler.EpochIndices(epoch), cfg.BatchPerRank)
		// Truncate to a whole number of accumulation groups.
		batches = batches[:len(batches)/accum*accum]
		var lossSum, accSum float64
		for bi := 0; bi < len(batches); bi += accum {
			nn.ZeroGrads(net)
			for k := 0; k < accum; k++ {
				b := batches[bi+k]
				out := net.Forward(b.X, true)
				loss, grad := ce.Loss(out, b.Labels)
				lossSum += loss / float64(accum)
				accSum += nn.Accuracy(out, b.Labels) / float64(accum)
				net.Backward(grad)
			}
			if accum > 1 {
				inv := 1 / float64(accum)
				for _, p := range params {
					p.Grad.Scale(inv)
				}
			}

			// Gradient exchange (optimizer.synchronize() in Listing 1).
			if c != nil && world > 1 {
				fu := comm.NewFuser(c, cfg.FusionBytes)
				for _, p := range params {
					fu.Add(p.Grad)
				}
				if err := fu.Flush(); err != nil {
					return nil, fmt.Errorf("trainer: gradient allreduce: %w", err)
				}
			}
			// preconditioner.step() before optimizer.step().
			if prec != nil {
				if err := prec.Step(lr); err != nil {
					return nil, fmt.Errorf("trainer: kfac step: %w", err)
				}
			}
			opt.Step()
			res.Iterations++
		}

		st := EpochStats{Epoch: epoch, LR: lr}
		if groups := len(batches) / accum; groups > 0 {
			st.TrainLoss = lossSum / float64(groups)
			st.TrainAcc = accSum / float64(groups)
		}
		// Average the per-rank training metrics so logs agree across ranks.
		if c != nil && world > 1 {
			buf := []float64{st.TrainLoss, st.TrainAcc}
			if err := c.AllreduceMean(buf); err != nil {
				return nil, err
			}
			st.TrainLoss, st.TrainAcc = buf[0], buf[1]
		}
		va, top5, err := evaluateTopK(net, c, test, cfg.BatchPerRank, cfg.Seed, cfg.TrackTop5)
		if err != nil {
			return nil, err
		}
		st.ValAcc = va
		st.ValTop5 = top5
		st.Wall = time.Since(epochStart)
		res.TotalWall += st.Wall
		res.History = append(res.History, st)
		if va > res.BestValAcc {
			res.BestValAcc = va
		}
		res.FinalValAcc = va
		if cfg.Log != nil && rank == 0 {
			fmt.Fprintf(cfg.Log, "epoch %3d  lr %.4f  loss %.4f  train-acc %.4f  val-acc %.4f  (%.1fs)\n",
				epoch, lr, st.TrainLoss, st.TrainAcc, st.ValAcc, st.Wall.Seconds())
		}
		if cfg.StopAtValAcc > 0 && va >= cfg.StopAtValAcc {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// Evaluate computes validation accuracy over test, sharded across ranks and
// averaged by example count.
func Evaluate(net *nn.Sequential, c *comm.Communicator, test *data.Dataset, batch int, seed int64) (float64, error) {
	acc, _, err := evaluateTopK(net, c, test, batch, seed, false)
	return acc, err
}

// evaluateTopK computes top-1 (and optionally top-5) validation accuracy.
func evaluateTopK(net *nn.Sequential, c *comm.Communicator, test *data.Dataset,
	batch int, seed int64, top5 bool) (float64, float64, error) {
	rank, world := 0, 1
	if c != nil {
		rank, world = c.Rank(), c.Size()
	}
	sampler := data.ShardSampler{N: test.Len(), Rank: rank, World: world, Seed: seed}
	idx := sampler.EpochIndices(0)
	var correct, correct5, total float64
	for _, b := range data.Batches(test, idx, batch) {
		out := net.Forward(b.X, false)
		n := float64(len(b.Labels))
		correct += nn.Accuracy(out, b.Labels) * n
		if top5 {
			correct5 += metrics.TopKAccuracy(out, b.Labels, 5) * n
		}
		total += n
	}
	if c != nil && world > 1 {
		buf := []float64{correct, correct5, total}
		if err := c.AllreduceSum(buf); err != nil {
			return 0, 0, err
		}
		correct, correct5, total = buf[0], buf[1], buf[2]
	}
	if total == 0 {
		return 0, 0, nil
	}
	return correct / total, correct5 / total, nil
}

// RunDistributed builds one model replica per rank over an in-process
// fabric and trains them in parallel, returning every rank's Result. buildNet
// is called once per rank with a rank-independent seed so replicas start
// identical (the initial broadcast enforces it regardless).
func RunDistributed(world int, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, cfg Config) ([]*Result, error) {
	if world < 1 {
		return nil, fmt.Errorf("trainer: world must be ≥ 1")
	}
	fab := comm.NewInprocFabric(world)
	results := make([]*Result, world)
	errs := make([]error, world)
	done := make(chan int, world)
	for r := 0; r < world; r++ {
		go func(r int) {
			defer func() { done <- r }()
			net := buildNet(rand.New(rand.NewSource(12345)))
			c := comm.NewCommunicator(fab.Endpoint(r))
			results[r], errs[r] = TrainRank(net, c, train, test, cfg)
		}(r)
	}
	for i := 0; i < world; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	return results, nil
}
