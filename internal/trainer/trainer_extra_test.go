package trainer

import (
	"math/rand"
	"testing"

	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
)

func TestStopAtValAccEndsEarly(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(1)))
	cfg := baseConfig()
	cfg.Epochs = 50
	cfg.StopAtValAcc = 0.30 // above chance; reached within a few epochs
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("expected early stop")
	}
	if len(res.History) >= 50 {
		t.Errorf("trained all %d epochs despite target", len(res.History))
	}
	if res.FinalValAcc < 0.30 {
		t.Errorf("stopped below target: %v", res.FinalValAcc)
	}
}

func TestEpochWallTimesRecorded(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(2)))
	cfg := baseConfig()
	cfg.Epochs = 2
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.History {
		if e.Wall <= 0 {
			t.Error("epoch wall time not recorded")
		}
	}
	if res.TotalWall <= 0 {
		t.Error("total wall time not recorded")
	}
}

func TestTrackTop5(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(3)))
	cfg := baseConfig()
	cfg.Epochs = 1
	cfg.TrackTop5 = true
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.History[0]
	// Top-5 over 4 classes is always 1.0 (k clamps to class count); it must
	// be at least top-1.
	if e.ValTop5 < e.ValAcc {
		t.Errorf("top5 %v < top1 %v", e.ValTop5, e.ValAcc)
	}
	if e.ValTop5 != 1 {
		t.Errorf("top5 over 4 classes should be 1, got %v", e.ValTop5)
	}
}

func TestKFACStatsExposed(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(4)))
	cfg := baseConfig()
	cfg.Epochs = 1
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 2, InvUpdateFreq: 4}
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KFACStats == nil {
		t.Fatal("KFACStats not surfaced")
	}
	snap := res.KFACStats.Snapshot()
	if snap.Steps != res.Iterations {
		t.Errorf("stats steps %d != iterations %d", snap.Steps, res.Iterations)
	}
	if snap.FactorUpdates == 0 || snap.EigUpdates == 0 {
		t.Error("no stage updates recorded")
	}
}

func TestSGDRunHasNoKFACStats(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(5)))
	cfg := baseConfig()
	cfg.Epochs = 1
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.KFACStats != nil {
		t.Error("SGD run should not carry K-FAC stats")
	}
}

func TestGradientAccumulation(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(6)))
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	cfg.AccumSteps = 4 // effective batch 32
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 256 examples / 8 per micro-batch = 32 micro-batches = 8 optimizer
	// steps per epoch.
	if res.Iterations != 2*8 {
		t.Errorf("iterations = %d, want 16", res.Iterations)
	}
	if res.History[1].TrainLoss <= 0 {
		t.Error("loss not recorded under accumulation")
	}
}

func TestGradientAccumulationMatchesLargeBatchLoss(t *testing.T) {
	// One accumulated step of 2×8 must produce the same parameter update
	// as a single batch of 16 containing the same examples (linearity of
	// gradient averaging) when BatchNorm is absent.
	train, test := tinyDataset(t)
	_ = test
	buildNoBN := func(seed int64) *nn.Sequential {
		rng := rand.New(rand.NewSource(seed))
		return nn.NewSequential("nobn",
			nn.NewConv2D("c1", 1, 4, 3, 1, 1, true, rng),
			nn.NewReLU("r1"),
			nn.NewGlobalAvgPool("gap"),
			nn.NewLinear("fc", 4, 4, true, rng),
		)
	}
	run := func(batch, accum int) *nn.Sequential {
		net := buildNoBN(7)
		cfg := Config{
			Epochs:       1,
			BatchPerRank: batch,
			AccumSteps:   accum,
			LR:           optim.LRSchedule{BaseLR: 0.1},
			Seed:         9,
		}
		if _, err := TrainRank(net, nil, train, test, cfg); err != nil {
			t.Fatal(err)
		}
		return net
	}
	big := run(16, 1)
	accum := run(8, 2)
	// Shard order is identical (same seed/world), so the same examples are
	// consumed; accumulated micro-batches must match the large batch.
	bp, ap := big.Params(), accum.Params()
	for i := range bp {
		if !bp[i].Value.Equal(ap[i].Value, 1e-10) {
			t.Fatalf("parameter %s diverged between accumulation and large batch", bp[i].Name)
		}
	}
}
