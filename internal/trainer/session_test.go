package trainer

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
)

// sessionOpts are the session-API equivalent of baseConfig.
func sessionOpts() []SessionOption {
	return []SessionOption{
		WithEpochs(3),
		WithBatchPerRank(16),
		WithLRSchedule(optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1}),
		WithMomentum(0.9),
		WithSeed(5),
	}
}

func TestSessionRunMatchesLegacyTrainRankBitIdentical(t *testing.T) {
	train, test := tinyDataset(t)

	legacyNet := buildTestNet(rand.New(rand.NewSource(1)))
	cfg := baseConfig()
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01}
	legacy, err := TrainRank(legacyNet, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sessNet := buildTestNet(rand.New(rand.NewSource(1)))
	s, err := NewSession(sessNet, nil, train, test, append(sessionOpts(),
		WithKFAC(kfac.WithFactorUpdateFreq(2), kfac.WithInvUpdateFreq(4), kfac.WithDamping(0.01)))...)
	if err != nil {
		t.Fatal(err)
	}
	// Run under a cancellable (but never cancelled) context so the
	// cancellation machinery is active and must not perturb numerics.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.Iterations != legacy.Iterations {
		t.Fatalf("iterations %d != legacy %d", res.Iterations, legacy.Iterations)
	}
	if len(res.History) != len(legacy.History) {
		t.Fatalf("history length %d != legacy %d", len(res.History), len(legacy.History))
	}
	for i := range res.History {
		a, b := res.History[i], legacy.History[i]
		if a.LR != b.LR || a.TrainLoss != b.TrainLoss || a.TrainAcc != b.TrainAcc ||
			a.ValAcc != b.ValAcc || a.ValTop5 != b.ValTop5 {
			t.Errorf("epoch %d diverged:\n session %+v\n legacy  %+v", i, a, b)
		}
	}
	// The trained parameters must agree bit for bit as well.
	lp, sp := legacyNet.Params(), sessNet.Params()
	for i := range lp {
		if !lp[i].Value.Equal(sp[i].Value, 0) {
			t.Fatalf("parameter %s diverged between session and legacy paths", lp[i].Name)
		}
	}
}

func TestRunSessionsMatchesRunDistributed(t *testing.T) {
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	legacy, err := RunDistributed(2, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := RunSessions(ctx, 2, buildTestNet, train, test,
		WithEpochs(2), WithBatchPerRank(8),
		WithLRSchedule(optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1}),
		WithMomentum(0.9), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for r := range res {
		for i := range res[r].History {
			a, b := res[r].History[i], legacy[r].History[i]
			if a.TrainLoss != b.TrainLoss || a.ValAcc != b.ValAcc {
				t.Errorf("rank %d epoch %d diverged: %+v vs %+v", r, i, a, b)
			}
		}
	}
}

// Cancelling mid-epoch must return context.Canceled on every rank, with
// every rank stopping at the same iteration boundary and no deadlock.
func TestSessionCancellationAllRanksSameBoundary(t *testing.T) {
	const world = 3
	const cancelAt = 3 // optimizer steps before rank 0 cancels
	train, test := tinyDataset(t)
	fab := comm.NewInprocFabric(world)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	results := make([]*Result, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			net := buildTestNet(rand.New(rand.NewSource(12345)))
			c := comm.NewCommunicator(fab.Endpoint(r))
			opts := append(sessionOpts(), WithEpochs(5), WithBatchPerRank(8))
			if r == 0 {
				opts = append(opts, OnStep(func(s *Session, info StepInfo) error {
					if info.Iteration == cancelAt {
						cancel()
					}
					return nil
				}))
			}
			s, err := NewSession(net, c, train, test, opts...)
			if err != nil {
				errs[r] = err
				return
			}
			results[r], errs[r] = s.Run(ctx)
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ranks deadlocked after cancellation")
	}

	for r := 0; r < world; r++ {
		if !errors.Is(errs[r], context.Canceled) {
			t.Errorf("rank %d returned %v, want context.Canceled", r, errs[r])
		}
		if results[r] == nil {
			t.Fatalf("rank %d returned no partial result", r)
		}
		if results[r].Iterations != cancelAt {
			t.Errorf("rank %d stopped after %d iterations, want %d (same boundary on every rank)",
				r, results[r].Iterations, cancelAt)
		}
	}

	// The communicator stayed synchronized: a fresh collective still works.
	var barrierWG sync.WaitGroup
	barrierErrs := make([]error, world)
	for r := 0; r < world; r++ {
		barrierWG.Add(1)
		go func(r int) {
			defer barrierWG.Done()
			barrierErrs[r] = comm.NewCommunicator(fab.Endpoint(r)).Barrier()
		}(r)
	}
	barrierWG.Wait()
	for r, err := range barrierErrs {
		if err != nil {
			t.Errorf("post-cancel barrier failed on rank %d: %v", r, err)
		}
	}
}

// A context cancelled before Run starts must stop training before the
// first optimizer step.
func TestSessionPreCancelledContext(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(1)))
	s, err := NewSession(net, nil, train, test, sessionOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 0 {
		t.Errorf("took %d steps under a pre-cancelled context", res.Iterations)
	}
}

// StepInfo carries the per-step loss and wall time, so metrics consumers
// (the kfacd daemon's stream) need no side channels. The loss must agree
// with the epoch-level average the session already reports.
func TestStepInfoCarriesLossAndDuration(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(7)))
	var infos []StepInfo
	s, err := NewSession(net, nil, train, test, append(sessionOpts(), WithEpochs(1),
		OnStep(func(s *Session, info StepInfo) error {
			infos = append(infos, info)
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != res.Iterations {
		t.Fatalf("observed %d steps, want %d", len(infos), res.Iterations)
	}
	var lossSum float64
	for i, info := range infos {
		if info.Loss <= 0 {
			t.Errorf("step %d: loss %v, want > 0 on a fresh model", i, info.Loss)
		}
		if info.StepDuration <= 0 {
			t.Errorf("step %d: duration %v, want > 0", i, info.StepDuration)
		}
		lossSum += info.Loss
	}
	// Single-process, accum=1: the epoch's TrainLoss is exactly the mean of
	// the per-step losses.
	want := res.History[0].TrainLoss
	if got := lossSum / float64(len(infos)); got != want {
		t.Errorf("mean per-step loss %v != epoch TrainLoss %v", got, want)
	}
}

// With gradient accumulation the reported step loss is the group average,
// keeping the epoch-mean identity intact.
func TestStepInfoLossAveragesAccumGroup(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(8)))
	var lossSum float64
	var steps int
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		WithEpochs(1), WithBatchPerRank(8), WithAccumSteps(2),
		OnStep(func(s *Session, info StepInfo) error {
			lossSum += info.Loss
			steps++
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Iterations {
		t.Fatalf("observed %d steps, want %d", steps, res.Iterations)
	}
	if got, want := lossSum/float64(steps), res.History[0].TrainLoss; got != want {
		t.Errorf("mean per-step loss %v != epoch TrainLoss %v", got, want)
	}
}

// Hooks of each kind run in registration order, and option-installed stock
// hooks honor option position.
func TestHookOrdering(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(2)))
	var order []string
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		WithEpochs(1),
		OnEpochEnd(func(s *Session, e EpochStats) error {
			order = append(order, "epoch-a")
			return nil
		}),
		OnEpochEnd(func(s *Session, e EpochStats) error {
			order = append(order, "epoch-b")
			return nil
		}),
		OnCheckpoint(func(s *Session, info CheckpointInfo) error {
			order = append(order, "ckpt")
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	first := true
	s.OnStep(func(s *Session, info StepInfo) error {
		if first {
			order = append(order, "step")
			first = false
		}
		return nil
	})
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := "step,epoch-a,epoch-b,ckpt"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("hook order = %q, want %q", got, want)
	}
}

// ErrStop from an epoch hook ends the run gracefully with Stopped set.
func TestEpochHookErrStop(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(3)))
	s, err := NewSession(net, nil, train, test, append(sessionOpts(), WithEpochs(50),
		OnEpochEnd(func(s *Session, e EpochStats) error {
			if e.Epoch >= 1 {
				return ErrStop
			}
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("Stopped not set after ErrStop")
	}
	if len(res.History) != 2 {
		t.Errorf("trained %d epochs, want 2", len(res.History))
	}
}

// ErrStop from a step hook is honored at the epoch boundary.
func TestStepHookErrStopHonoredAtEpochBoundary(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(4)))
	s, err := NewSession(net, nil, train, test, append(sessionOpts(), WithEpochs(5),
		OnStep(func(s *Session, info StepInfo) error {
			if info.Iteration == 2 {
				return ErrStop
			}
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || len(res.History) != 1 {
		t.Errorf("stopped=%v history=%d, want graceful stop after epoch 0", res.Stopped, len(res.History))
	}
}

// A non-ErrStop hook error aborts the run with that error.
func TestHookErrorAbortsRun(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(5)))
	boom := errors.New("boom")
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		OnEpochEnd(func(s *Session, e EpochStats) error { return boom }))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestCheckpointHookCadence(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(6)))
	var at []int
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		WithEpochs(5), WithCheckpointEvery(2),
		OnCheckpoint(func(s *Session, info CheckpointInfo) error {
			at = append(at, info.Epoch)
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4} // every 2nd epoch, plus the final epoch
	if fmt.Sprint(at) != fmt.Sprint(want) {
		t.Errorf("checkpoints at %v, want %v", at, want)
	}
}

// ErrStop from a checkpoint hook also stops the run gracefully.
func TestCheckpointHookErrStop(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(9)))
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		WithEpochs(10), WithCheckpointEvery(1),
		OnCheckpoint(func(s *Session, info CheckpointInfo) error {
			if info.Epoch >= 1 {
				return ErrStop
			}
			return nil
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || len(res.History) != 2 {
		t.Errorf("stopped=%v history=%d, want graceful stop after epoch 1", res.Stopped, len(res.History))
	}
}

// WithOptimizer swaps the update rule; the session drives any Optimizer.
func TestSessionWithCustomOptimizer(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(7)))
	var built optim.Optimizer
	s, err := NewSession(net, nil, train, test, append(sessionOpts(), WithEpochs(1),
		WithOptimizer(func(params []*nn.Param, initialLR float64) optim.Optimizer {
			built = optim.Adam(params, optim.WithLR(initialLR))
			return built
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if built == nil {
		t.Fatal("optimizer factory never called")
	}
	if res.FinalValAcc <= 0.25 {
		t.Errorf("Adam session did not train: val acc %v", res.FinalValAcc)
	}
}

// The stock stop hook (WithStopAtValAcc) behaves like the legacy field.
func TestStockStopHook(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(1)))
	s, err := NewSession(net, nil, train, test, append(sessionOpts(),
		WithEpochs(50), WithStopAtValAcc(0.30))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.FinalValAcc < 0.30 {
		t.Errorf("stopped=%v acc=%v", res.Stopped, res.FinalValAcc)
	}
}

func TestNewSessionValidation(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(8)))
	if _, err := NewSession(net, nil, train, test); err == nil {
		t.Error("expected error without epochs/batch")
	}
	if _, err := NewSession(nil, nil, train, test, sessionOpts()...); err == nil {
		t.Error("expected error for nil net")
	}
}

func TestEpochsToReachEdgeCases(t *testing.T) {
	empty := &Result{}
	if got := empty.EpochsToReach(0.1); got != -1 {
		t.Errorf("empty history: %d, want -1", got)
	}
	r := &Result{History: []EpochStats{
		{Epoch: 0, ValAcc: 0.5},
		{Epoch: 1, ValAcc: 0.7},
		{Epoch: 2, ValAcc: 0.6}, // regression after the peak
	}}
	// 1-based: the threshold met at zero-based epoch 0 reports 1.
	if got := r.EpochsToReach(0.5); got != 1 {
		t.Errorf("first-epoch reach: %d, want 1", got)
	}
	// Exact equality counts as reached.
	if got := r.EpochsToReach(0.7); got != 2 {
		t.Errorf("exact threshold: %d, want 2", got)
	}
	// The first reaching epoch wins even if accuracy later regresses.
	if got := r.EpochsToReach(0.65); got != 2 {
		t.Errorf("first reach: %d, want 2", got)
	}
	if got := r.EpochsToReach(0.95); got != -1 {
		t.Errorf("never reached: %d, want -1", got)
	}
}
