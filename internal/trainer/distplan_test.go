package trainer

import (
	"testing"

	"repro/internal/kfac"
)

// TestDistModesTrainBitIdentically drives the distribution-plan conformance
// through the full session loop (sharded data, fused gradient exchange,
// K-FAC step, optimizer update): MEM-OPT, COMM-OPT and HYBRID must follow
// the default run's trajectory bit for bit at the same world size.
func TestDistModesTrainBitIdentically(t *testing.T) {
	train, test := tinyDataset(t)
	const world = 4
	run := func(mode kfac.DistMode, frac float64, engine kfac.Engine) []*Result {
		cfg := baseConfig()
		cfg.Epochs = 2
		cfg.BatchPerRank = 8
		cfg.KFAC = &kfac.Options{
			FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01,
			DistMode: mode, GradWorkerFrac: frac, Engine: engine,
		}
		results, err := RunDistributed(world, buildTestNet, train, test, cfg)
		if err != nil {
			t.Fatalf("%v f=%v %v: %v", mode, frac, engine, err)
		}
		return results
	}
	ref := run(kfac.DistAuto, 0, kfac.EngineSync)
	for _, tc := range []struct {
		name   string
		mode   kfac.DistMode
		frac   float64
		engine kfac.Engine
	}{
		{"commopt", kfac.CommOpt, 0, kfac.EngineSync},
		{"memopt", kfac.MemOpt, 0, kfac.EngineSync},
		{"hybrid50", kfac.Hybrid, 0.5, kfac.EngineSync},
		{"memopt_pipelined", kfac.MemOpt, 0, kfac.EnginePipelined},
	} {
		got := run(tc.mode, tc.frac, tc.engine)
		for r := range got {
			for e := range got[r].History {
				w, g := ref[r].History[e], got[r].History[e]
				if w.TrainLoss != g.TrainLoss || w.ValAcc != g.ValAcc {
					t.Errorf("%s rank %d epoch %d: trajectory differs (loss %v vs %v, acc %v vs %v)",
						tc.name, r, e, w.TrainLoss, g.TrainLoss, w.ValAcc, g.ValAcc)
				}
			}
		}
	}
}

// TestGroupedGradientExchangeTrains: kfac.WithGroupSize routes both the
// gradient exchange and the factor averaging through the hierarchical
// allreduce; the run must train and every rank must land on the identical
// (leader-broadcast) trajectory.
func TestGroupedGradientExchangeTrains(t *testing.T) {
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	cfg.KFAC = &kfac.Options{
		FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01, GroupSize: 2,
	}
	results, err := RunDistributed(4, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(results); r++ {
		if results[r].FinalValAcc != results[0].FinalValAcc {
			t.Errorf("rank %d disagrees under grouped allreduce: %v vs %v",
				r, results[r].FinalValAcc, results[0].FinalValAcc)
		}
	}
	if results[0].FinalValAcc <= 0.3 {
		t.Errorf("grouped-allreduce val acc = %v, want > 0.3", results[0].FinalValAcc)
	}
}
