package trainer

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/optim"
	"repro/internal/testenv"
)

// elasticOpts is the shared session configuration for the elastic tests.
func elasticOpts(epochs int) []SessionOption {
	return []SessionOption{
		WithEpochs(epochs),
		WithBatchPerRank(16),
		WithLRSchedule(optim.LRSchedule{BaseLR: 0.05}),
		WithMomentum(0.9),
		WithSeed(5),
	}
}

// testHeartbeat is fast enough for test-scale epochs while keeping a
// comfortable margin over scheduler jitter.
var testHeartbeat = comm.HeartbeatConfig{
	Interval: 3 * time.Millisecond,
	Timeout:  60 * time.Millisecond,
}

// TestWithResumeContinuesTraining: a session resumed from an epoch-2
// checkpoint must start at epoch 2 and continue the iteration count.
func TestWithResumeContinuesTraining(t *testing.T) {
	train, test := tinyDataset(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "resume.ckpt")

	s, err := NewSession(buildTestNet(rand.New(rand.NewSource(1))), nil, train, test,
		append(elasticOpts(2),
			WithCheckpointEvery(1),
			OnCheckpoint(func(s *Session, info CheckpointInfo) error {
				ck := checkpoint.Snapshot(s.Net(), info.Epoch+1, info.Iterations)
				return ck.Save(path)
			}))...)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ck, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != 2 || ck.Step != first.Iterations {
		t.Fatalf("checkpoint records epoch %d step %d, want 2/%d", ck.Epoch, ck.Step, first.Iterations)
	}

	s2, err := NewSession(buildTestNet(rand.New(rand.NewSource(1))), nil, train, test,
		append(elasticOpts(4), WithResume(ck))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 || res.History[0].Epoch != 2 || res.History[1].Epoch != 3 {
		t.Fatalf("resumed run trained epochs %+v, want exactly epochs 2 and 3", res.History)
	}
	if res.Iterations <= first.Iterations {
		t.Fatalf("resumed iterations %d did not continue from %d", res.Iterations, first.Iterations)
	}
	if res.FinalValAcc < first.FinalValAcc-0.1 {
		t.Fatalf("resumed accuracy regressed: %.3f after resume vs %.3f at checkpoint",
			res.FinalValAcc, first.FinalValAcc)
	}
}

// TestRunElasticCleanRun: with no faults the elastic runner is a plain
// multi-rank run completing in one generation.
func TestRunElasticCleanRun(t *testing.T) {
	train, test := tinyDataset(t)
	res, err := RunElastic(context.Background(), ElasticConfig{
		World:         2,
		CheckpointDir: t.TempDir(),
		Heartbeat:     testHeartbeat,
	}, buildTestNet, train, test, elasticOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts() != 0 || len(res.Generations) != 1 {
		t.Fatalf("clean run took %d generations, want 1", len(res.Generations))
	}
	if g := res.Generations[0]; g.World != 2 || g.StartEpoch != 0 || len(g.Failed) != 0 {
		t.Fatalf("generation %+v, want world 2 from epoch 0 with no failures", g)
	}
	if len(res.Result.History) != 2 {
		t.Fatalf("history has %d epochs, want 2", len(res.Result.History))
	}
}

// TestElasticKillAndRecover is the kill-and-recover integration test: rank
// 2 of 3 dies mid-epoch-1; the run must detect it by heartbeat, rebuild a
// 2-rank world with re-placed K-FAC layers, resume from the epoch-1
// checkpoint, and finish with a result comparable to a never-failed run.
func TestElasticKillAndRecover(t *testing.T) {
	train, test := tinyDataset(t)
	epochs := testenv.Scale(4, 3)
	const victim = 2

	// Baseline: the identical run with no fault injected.
	clean, err := RunElastic(context.Background(), ElasticConfig{
		World:         3,
		CheckpointDir: t.TempDir(),
		Heartbeat:     testHeartbeat,
	}, buildTestNet, train, test, elasticOpts(epochs)...)
	if err != nil {
		t.Fatal(err)
	}

	var chaos *comm.ChaosFabric
	cfg := ElasticConfig{
		World:         3,
		CheckpointDir: t.TempDir(),
		Heartbeat:     testHeartbeat,
		Fabric: func(gen, world int) comm.Fabric {
			if gen == 0 {
				chaos = comm.NewChaosFabric(comm.NewInprocFabric(world), world, comm.ChaosConfig{Seed: 3})
				return chaos
			}
			return comm.NewInprocFabric(world)
		},
	}
	// Scripted death: two optimizer steps into epoch 1, the victim stops
	// responding — mid-epoch, after the epoch-0 checkpoint exists.
	opts := append(elasticOpts(epochs), OnStep(func(s *Session, info StepInfo) error {
		if s.World() == 3 && s.Rank() == victim && info.Epoch == 1 {
			chaos.Kill(victim)
		}
		return nil
	}))

	res, err := RunElastic(context.Background(), cfg, buildTestNet, train, test, opts...)
	if err != nil {
		t.Fatal(err)
	}

	if res.Restarts() != 1 || len(res.Generations) != 2 {
		t.Fatalf("got %d generations, want 2 (one kill, one recovery)", len(res.Generations))
	}
	g0, g1 := res.Generations[0], res.Generations[1]
	if g0.World != 3 || len(g0.Failed) != 1 || g0.Failed[0] != victim {
		t.Fatalf("generation 0 = %+v, want world 3 losing rank %d", g0, victim)
	}
	if g1.World != 2 || len(g1.Failed) != 0 {
		t.Fatalf("generation 1 = %+v, want a clean 2-rank world", g1)
	}
	if g1.StartEpoch < 1 {
		t.Fatalf("recovery restarted at epoch %d: checkpoint resume did not engage", g1.StartEpoch)
	}
	if len(res.Result.History) != epochs {
		t.Fatalf("merged history has %d epochs, want %d (e.g. %+v)", len(res.Result.History), epochs, res.Result.History)
	}
	for i, e := range res.Result.History {
		if e.Epoch != i {
			t.Fatalf("merged history epoch %d at position %d", e.Epoch, i)
		}
	}

	// The recovered run must land in the same neighborhood as the
	// never-failed baseline: the resized world changes the global batch, so
	// exact equality is off the table, but both runs learn the same easy
	// task to similar loss/accuracy.
	dLoss := math.Abs(res.Result.History[epochs-1].TrainLoss - clean.Result.History[epochs-1].TrainLoss)
	if dLoss > 0.5 {
		t.Errorf("final train loss diverged after recovery: %.4f vs clean %.4f",
			res.Result.History[epochs-1].TrainLoss, clean.Result.History[epochs-1].TrainLoss)
	}
	if res.Result.FinalValAcc < clean.Result.FinalValAcc-0.25 {
		t.Errorf("final val acc collapsed after recovery: %.3f vs clean %.3f",
			res.Result.FinalValAcc, clean.Result.FinalValAcc)
	}
}

// TestElasticKillAndRecoverKFAC runs the recovery path with K-FAC enabled:
// the rebuilt 2-rank world must re-place factors and keep training
// (distributed placement for world 3 would deadlock a 2-rank world, so
// finishing at all proves re-placement ran).
func TestElasticKillAndRecoverKFAC(t *testing.T) {
	// Runs in reduced-iteration mode too (never skipped): this is the only
	// test of heartbeat-triggered recovery with K-FAC re-placement, a
	// concurrency-heavy path the race job must cover.
	epochs := testenv.Scale(3, 2)
	train, test := tinyDataset(t)
	const victim = 1
	var chaos *comm.ChaosFabric
	cfg := ElasticConfig{
		World:         2,
		CheckpointDir: t.TempDir(),
		Heartbeat:     testHeartbeat,
		Fabric: func(gen, world int) comm.Fabric {
			if gen == 0 {
				chaos = comm.NewChaosFabric(comm.NewInprocFabric(world), world, comm.ChaosConfig{Seed: 4})
				return chaos
			}
			return comm.NewInprocFabric(world)
		},
	}
	opts := append(elasticOpts(epochs),
		WithKFAC(), // paper defaults; RoundRobin placement across the world
		OnStep(func(s *Session, info StepInfo) error {
			if s.World() == 2 && s.Rank() == victim && info.Epoch == 1 {
				chaos.Kill(victim)
			}
			return nil
		}))
	res, err := RunElastic(context.Background(), cfg, buildTestNet, train, test, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != 2 || res.Generations[1].World != 1 {
		t.Fatalf("generations %+v, want recovery to a 1-rank world", res.Generations)
	}
	if len(res.Result.History) != epochs {
		t.Fatalf("history %+v, want %d epochs", res.Result.History, epochs)
	}
}

// TestElasticBelowMinWorld: losing too many ranks must abort with a
// MinWorld error, not retry forever.
func TestElasticBelowMinWorld(t *testing.T) {
	train, test := tinyDataset(t)
	var chaos *comm.ChaosFabric
	cfg := ElasticConfig{
		World:         2,
		MinWorld:      2,
		CheckpointDir: t.TempDir(),
		Heartbeat:     testHeartbeat,
		Fabric: func(gen, world int) comm.Fabric {
			chaos = comm.NewChaosFabric(comm.NewInprocFabric(world), world, comm.ChaosConfig{Seed: 5})
			return chaos
		},
	}
	opts := append(elasticOpts(3), OnStep(func(s *Session, info StepInfo) error {
		if s.Rank() == 1 && info.Iteration == 2 {
			chaos.Kill(1)
		}
		return nil
	}))
	_, err := RunElastic(context.Background(), cfg, buildTestNet, train, test, opts...)
	if err == nil || !strings.Contains(err.Error(), "MinWorld") {
		t.Fatalf("got %v, want MinWorld violation", err)
	}
}

// TestRunSessionsOnAbortsPeersOnRankFailure: when one rank dies on a
// chaos fabric, RunSessionsOn must surface the failure instead of leaving
// the surviving ranks blocked forever mid-collective (regression: peers
// used to hang on a Background-context receive).
func TestRunSessionsOnAbortsPeersOnRankFailure(t *testing.T) {
	train, test := tinyDataset(t)
	fab := comm.NewChaosFabric(comm.NewInprocFabric(2), 2, comm.ChaosConfig{
		Seed:  1,
		Kills: []comm.KillSpec{{Rank: 1, AfterSends: 3}},
	})
	done := make(chan error, 1)
	go func() {
		_, err := RunSessionsOn(context.Background(), fab, 2, buildTestNet, train, test, elasticOpts(2)...)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a killed rank reported success")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunSessionsOn hung after a rank death (peer abort did not fire)")
	}
}

// TestRunElasticIgnoresStaleCheckpoint: a leftover elastic.ckpt from a
// previous run in the same directory must not fast-forward (or skip) a
// fresh run.
func TestRunElasticIgnoresStaleCheckpoint(t *testing.T) {
	train, test := tinyDataset(t)
	dir := t.TempDir()
	cfg := ElasticConfig{World: 2, CheckpointDir: dir, Heartbeat: testHeartbeat}
	first, err := RunElastic(context.Background(), cfg, buildTestNet, train, test, elasticOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Result.History) != 2 {
		t.Fatalf("first run trained %d epochs, want 2", len(first.Result.History))
	}
	// The finished run left a checkpoint at Epoch == Epochs; a rerun must
	// still train from scratch, not return an empty result.
	second, err := RunElastic(context.Background(), cfg, buildTestNet, train, test, elasticOpts(2)...)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Result.History) != 2 || second.Generations[0].StartEpoch != 0 {
		t.Fatalf("rerun resumed from a stale checkpoint: history %d epochs, start epoch %d",
			len(second.Result.History), second.Generations[0].StartEpoch)
	}
}

// TestResumePastConfiguredEpochsErrs: resuming from a checkpoint that
// already covers every configured epoch must fail loudly with
// ErrResumeComplete, not silently return a zeroed Result.
func TestResumePastConfiguredEpochsErrs(t *testing.T) {
	train, test := tinyDataset(t)
	ck := checkpoint.Snapshot(buildTestNet(rand.New(rand.NewSource(1))), 2, 32)
	s, err := NewSession(buildTestNet(rand.New(rand.NewSource(1))), nil, train, test,
		append(elasticOpts(2), WithResume(ck))...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background())
	if !errors.Is(err, ErrResumeComplete) {
		t.Fatalf("got %v, want ErrResumeComplete", err)
	}
	if res == nil || res.Iterations != 32 {
		t.Fatalf("result %+v, want the checkpoint's iteration count carried through", res)
	}
}
