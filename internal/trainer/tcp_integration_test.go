package trainer

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/kfac"
)

// TestTCPDistributedKFACTraining runs the complete stack — model,
// backward, fused gradient allreduce, distributed K-FAC with round-robin
// placement — across real TCP sockets on loopback, and verifies the ranks
// agree bit-for-bit on the final validation accuracy.
func TestTCPDistributedKFACTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp integration skipped in -short")
	}
	const world = 2
	addrs := make([]string, world)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 1
	cfg.BatchPerRank = 8
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 1e-2}

	var wg sync.WaitGroup
	accs := make([]float64, world)
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fab, err := comm.NewTCPFabric(r, addrs, 10*time.Second)
			if err != nil {
				errs[r] = err
				return
			}
			defer fab.Close()
			net := buildTestNet(rand.New(rand.NewSource(1)))
			res, err := TrainRank(net, comm.NewCommunicator(fab), train, test, cfg)
			if err != nil {
				errs[r] = err
				return
			}
			accs[r] = res.FinalValAcc
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if accs[0] != accs[1] {
		t.Errorf("TCP ranks disagree: %v vs %v", accs[0], accs[1])
	}
	if accs[0] <= 0 {
		t.Errorf("no learning signal: acc %v", accs[0])
	}
}
