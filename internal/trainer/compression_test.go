package trainer

import (
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/kfac"
	"repro/internal/testenv"
)

// runCompressedWorld2 trains the standard tiny task on two ranks with the
// given codec configuration and returns rank 0's final-epoch training loss.
// All runs share seeds, so any loss difference is purely the codec's doing.
func runCompressedWorld2(t *testing.T, eng kfac.Engine, codec comm.Codec, bare bool, epochs int) float64 {
	t.Helper()
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = epochs
	cfg.KFAC = &kfac.Options{
		FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01, Engine: eng,
		Compression: codec, NoErrorFeedback: bare,
	}
	results, err := RunDistributed(2, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l0, l1 := results[0].History[epochs-1].TrainLoss, results[1].History[epochs-1].TrainLoss; l0 != l1 {
		t.Fatalf("ranks disagree on final loss: %v vs %v", l0, l1)
	}
	return results[0].History[epochs-1].TrainLoss
}

// TestTopKErrorFeedbackConvergenceSafety is the convergence contract of the
// error-feedback wrapper: at sparsity levels where the bare (biased) Top-K
// estimator demonstrably stalls, the compensated stream must track the
// uncompressed run within a small loss tolerance. The compensated residual
// telescopes (comm.TestErrorFeedbackTelescopes proves the arithmetic
// identity); this test shows the identity buys actual training convergence.
// Table-driven over the sparsity fraction and both step engines; the runs
// are deterministic, so the tolerances guard future algorithm changes, not
// noise.
func TestTopKErrorFeedbackConvergenceSafety(t *testing.T) {
	if testenv.Short() {
		t.Skip("multi-run convergence suite skipped in short mode")
	}
	const epochs = 24
	cases := []struct {
		name string
		k    float64
		// efTol bounds |EF loss − exact loss|.
		efTol float64
		// bareMinExcess, when > 0, is the amount by which the bare run's
		// loss must EXCEED exact+efTol — the "demonstrably diverges" side.
		bareMinExcess float64
	}{
		// 2% density is past the cliff: bare Top-K plateaus an order of
		// magnitude above the exact loss while EF recovers the dropped
		// mass (measured ~0.26 bare vs ~0.034 EF vs ~0.0046 exact).
		{name: "topk2pct", k: 0.02, efTol: 0.08, bareMinExcess: 0.08},
		// 3% density: EF is within noise of exact; bare is ~12× worse
		// but not catastrophic, so only the EF side is asserted.
		{name: "topk3pct", k: 0.03, efTol: 0.03},
	}
	for _, eng := range []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined} {
		exact := runCompressedWorld2(t, eng, nil, false, epochs)
		for _, tc := range cases {
			codec := comm.TopKCodec{FractionK: tc.k}
			ef := runCompressedWorld2(t, eng, codec, false, epochs)
			if d := math.Abs(ef - exact); d > tc.efTol {
				t.Errorf("engine=%v %s: EF loss %.4f drifted %.4f from exact %.4f (tol %.3f)",
					eng, tc.name, ef, d, exact, tc.efTol)
			}
			bare := runCompressedWorld2(t, eng, codec, true, epochs)
			if bare <= ef {
				t.Errorf("engine=%v %s: bare loss %.4f not worse than EF %.4f — sparsity not biting",
					eng, tc.name, bare, ef)
			}
			if tc.bareMinExcess > 0 && bare-exact < tc.efTol+tc.bareMinExcess {
				t.Errorf("engine=%v %s: bare loss %.4f did not diverge from exact %.4f (want excess > %.3f)",
					eng, tc.name, bare, exact, tc.efTol+tc.bareMinExcess)
			}
		}
	}
}

// TestFloat16CompressionTracksExact: the value-quantizing codec (no
// sparsification) needs no divergence foil — half-precision payloads plus
// error feedback must track the exact run tightly on both engines.
func TestFloat16CompressionTracksExact(t *testing.T) {
	epochs := testenv.Scale(6, 3)
	for _, eng := range []kfac.Engine{kfac.EngineSync, kfac.EnginePipelined} {
		exact := runCompressedWorld2(t, eng, nil, false, epochs)
		f16 := runCompressedWorld2(t, eng, comm.Float16Codec{}, false, epochs)
		if d := math.Abs(f16 - exact); d > 0.05*(1+math.Abs(exact)) {
			t.Errorf("engine=%v: float16 loss %.4f vs exact %.4f (Δ %.4f)", eng, f16, exact, d)
		}
	}
}
