// Elastic fault-tolerant training: RunElastic supervises a multi-rank run
// through rank failures. Each attempt (a "generation") trains a world of
// sessions with heartbeat failure detection; when a rank dies, the
// surviving ranks hard-abort, the supervisor rebuilds a resized world —
// fresh communicators, re-run K-FAC factor placement, shard sampler for
// the new rank count — and training resumes from the latest checkpoint.
//
// The division of labor with the cancellation contract
// (docs/ARCHITECTURE.md): within a generation the SPMD collective
// schedule is sacred, so failure detection is out-of-band (heartbeats)
// and recovery is by teardown-and-rebuild, never by patching a live
// communicator. Work since the last checkpoint is replayed, not
// recovered; everything before it is durable.
package trainer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn"
)

// ElasticConfig configures a fault-tolerant run.
type ElasticConfig struct {
	// World is the initial rank count (required, ≥ 1).
	World int
	// MinWorld aborts recovery when survivors drop below it (default 1).
	MinWorld int
	// CheckpointDir holds the recovery checkpoint (required). The latest
	// checkpoint is kept at <dir>/elastic.ckpt, written atomically.
	CheckpointDir string
	// CheckpointEvery is the epoch interval between recovery checkpoints
	// (default 1: every epoch boundary is durable).
	CheckpointEvery int
	// Heartbeat tunes failure detection (zero values take the
	// comm.HeartbeatConfig defaults). The timeout bounds how long
	// survivors block on a dead peer before recovery starts.
	Heartbeat comm.HeartbeatConfig
	// Fabric, when non-nil, supplies the transport for each generation —
	// the hook through which tests and the chaos CLI inject a
	// comm.ChaosFabric. Defaults to a fresh in-process fabric per
	// generation.
	Fabric func(gen, world int) comm.Fabric
	// MaxGenerations bounds restart attempts (default World: each
	// generation must lose at least one rank to recurse).
	MaxGenerations int
	// Log, when non-nil, receives one line per generation transition.
	Log io.Writer
}

// Generation records one attempt of an elastic run.
type Generation struct {
	// World is the rank count this generation ran with.
	World int
	// StartEpoch is the epoch training (re)started at (0 for the first
	// generation, the checkpoint's completed-epoch count afterwards).
	StartEpoch int
	// Failed lists the ranks (in this generation's numbering) that died.
	// Empty for the generation that completed the run.
	Failed []int
}

// ElasticResult is the outcome of a fault-tolerant run.
type ElasticResult struct {
	// Result merges rank 0's per-generation results: History holds each
	// epoch's final (post-replay) stats in epoch order, and the scalar
	// fields reflect the finishing generation.
	Result *Result
	// Generations records every attempt, in order; the last one has no
	// failures.
	Generations []Generation
}

// Restarts returns how many recoveries the run needed.
func (r *ElasticResult) Restarts() int { return len(r.Generations) - 1 }

func (cfg *ElasticConfig) fillDefaults() error {
	if cfg.World < 1 {
		return fmt.Errorf("trainer: elastic World must be ≥ 1")
	}
	if cfg.CheckpointDir == "" {
		return fmt.Errorf("trainer: elastic CheckpointDir is required")
	}
	if cfg.MinWorld < 1 {
		cfg.MinWorld = 1
	}
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.MaxGenerations < 1 {
		cfg.MaxGenerations = cfg.World
	}
	return nil
}

// elasticCheckpointPath is where RunElastic keeps the recovery checkpoint.
func elasticCheckpointPath(dir string) string { return filepath.Join(dir, "elastic.ckpt") }

// killErr reports whether err traces back to a chaos kill.
func killErr(err error) bool {
	return errors.Is(err, comm.ErrRankKilled) || errors.Is(err, comm.ErrPeerKilled)
}

// RunElastic trains to completion through rank failures. buildNet and the
// session options carry the same contract as RunSessions (identical on
// every rank); opts must include WithEpochs and WithBatchPerRank, and must
// not install their own WithResume or WithCheckpointEvery (RunElastic owns
// both). Returns the merged result once a generation completes, or the
// first unrecoverable error (survivors below MinWorld, restart budget
// exhausted, a non-failure training error, or outer-context cancellation).
func RunElastic(ctx context.Context, cfg ElasticConfig, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, opts ...SessionOption) (*ElasticResult, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("trainer: elastic checkpoint dir: %w", err)
	}
	ckptPath := elasticCheckpointPath(cfg.CheckpointDir)
	// The recovery checkpoint belongs to THIS run: a stale file from a
	// previous run in the same directory would silently fast-forward (or
	// entirely skip) training. Cross-run resumption is an explicit choice —
	// pass WithResume in opts — not an accident of directory reuse.
	if err := os.Remove(ckptPath); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("trainer: removing stale elastic checkpoint: %w", err)
	}

	out := &ElasticResult{Result: &Result{}}
	byEpoch := make(map[int]EpochStats) // replayed epochs: last run wins
	world := cfg.World

	for gen := 0; gen < cfg.MaxGenerations; gen++ {
		if err := ctx.Err(); err != nil {
			return mergeElastic(out, byEpoch, nil), err
		}
		var resume *checkpoint.File
		startEpoch := 0
		if f, err := checkpoint.Load(ckptPath); err == nil {
			resume, startEpoch = f, f.Epoch
		} else if gen > 0 && cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "elastic: no checkpoint yet, generation %d restarts from scratch\n", gen)
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "elastic: generation %d, world %d, starting at epoch %d\n",
				gen, world, startEpoch)
		}

		results, errs, dead := runGeneration(ctx, &cfg, gen, world, resume, ckptPath,
			buildNet, train, test, opts)

		g := Generation{World: world, StartEpoch: startEpoch, Failed: dead}
		out.Generations = append(out.Generations, g)
		if r := results[0]; r != nil {
			for _, e := range r.History {
				byEpoch[e.Epoch] = e
			}
			out.Result.TotalWall += r.TotalWall
		}

		if len(dead) == 0 {
			// No failure: the generation either finished or hit a genuine
			// error / outer cancellation. Prefer the originating failure
			// over the context.Canceled it induced in peers through the
			// hard abort — a low rank's induced Canceled must not mask the
			// real cause on a higher rank.
			var firstErr error
			for _, err := range errs {
				if err == nil {
					continue
				}
				if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
					firstErr = err
				}
			}
			if cerr := ctx.Err(); cerr != nil {
				return mergeElastic(out, byEpoch, results[0]), cerr
			}
			if errors.Is(firstErr, ErrResumeComplete) {
				// The checkpoint already covers every epoch — a failure
				// landed after the final checkpoint write, so the resumed
				// generation had nothing left to do. The run is complete.
				return mergeElastic(out, byEpoch, results[0]), nil
			}
			if errors.Is(firstErr, context.Canceled) {
				// The generation was hard-aborted without any dead-rank
				// evidence and without outer cancellation: the failure
				// detector fired on a live world (typically
				// Heartbeat.Timeout below the transport's worst-case
				// delay). Name the misfire rather than surfacing a bare
				// context error nobody asked for.
				return mergeElastic(out, byEpoch, results[0]),
					fmt.Errorf("trainer: elastic generation %d aborted with no dead rank (heartbeat false positive? timeout %v): %w",
						gen, cfg.Heartbeat.Timeout, firstErr)
			}
			if firstErr != nil {
				return mergeElastic(out, byEpoch, results[0]), firstErr
			}
			return mergeElastic(out, byEpoch, results[0]), nil
		}

		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "elastic: generation %d lost rank(s) %v, resizing %d → %d\n",
				gen, dead, world, world-len(dead))
		}
		world -= len(dead)
		if world < cfg.MinWorld {
			return mergeElastic(out, byEpoch, results[0]),
				fmt.Errorf("trainer: elastic run below MinWorld: %d survivors < %d", world, cfg.MinWorld)
		}
	}
	return mergeElastic(out, byEpoch, nil),
		fmt.Errorf("trainer: elastic run exhausted %d generations", cfg.MaxGenerations)
}

// runGeneration runs one attempt: world sessions over a fresh fabric with
// heartbeat monitors, any detected failure hard-aborting the generation.
// Returns per-rank results and errors plus the ranks found dead.
func runGeneration(ctx context.Context, cfg *ElasticConfig, gen, world int,
	resume *checkpoint.File, ckptPath string, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, opts []SessionOption) ([]*Result, []error, []int) {

	var fab comm.Fabric
	if cfg.Fabric != nil {
		fab = cfg.Fabric(gen, world)
	} else {
		fab = comm.NewInprocFabric(world)
	}
	genCtx, genCancel := context.WithCancel(ctx)
	defer genCancel()

	// Endpoints and heartbeat monitors outlive the session goroutines: a
	// rank that finishes its last epoch early keeps heartbeating while
	// laggards validate, so generation-end stragglers are never mistaken
	// for deaths. Any real detection hard-aborts the whole generation.
	endpoints := make([]comm.Transport, world)
	monitors := make([]*comm.HeartbeatMonitor, world)
	for r := 0; r < world; r++ {
		endpoints[r] = fab.Endpoint(r)
		if world > 1 {
			monitors[r] = comm.StartHeartbeat(endpoints[r], cfg.Heartbeat,
				func(peer int) { genCancel() })
		}
	}

	results := make([]*Result, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := comm.NewCommunicator(endpoints[r]).WithContext(genCtx)
			ropts := make([]SessionOption, 0, len(opts)+3)
			ropts = append(ropts, opts...)
			if resume != nil {
				ropts = append(ropts, WithResume(resume))
			}
			ropts = append(ropts,
				WithCheckpointEvery(cfg.CheckpointEvery),
				OnCheckpoint(func(s *Session, info CheckpointInfo) error {
					if s.Rank() != 0 {
						return nil
					}
					ck := checkpoint.Snapshot(s.Net(), info.Epoch+1, info.Iterations)
					ck.World = s.World()
					if err := ck.Save(ckptPath); err != nil {
						return fmt.Errorf("elastic checkpoint: %w", err)
					}
					return nil
				}))
			net := buildNet(rand.New(rand.NewSource(12345)))
			s, err := NewSession(net, c, train, test, ropts...)
			if err != nil {
				errs[r] = err
				genCancel()
				return
			}
			results[r], errs[r] = s.Run(genCtx)
			if errs[r] != nil && !killErr(errs[r]) && !errors.Is(errs[r], context.Canceled) {
				// A genuine training error (not a scripted death, not the
				// abort rippling out from one): fail the generation fast.
				genCancel()
			}
		}(r)
	}
	wg.Wait()
	for _, m := range monitors {
		if m != nil {
			m.Close()
		}
	}

	// A rank is dead if the chaos layer killed it or its own error traces
	// to its own kill (ErrPeerKilled marks a *survivor* that touched a
	// dead peer — not a death).
	deadSet := make(map[int]bool)
	if killer, ok := fab.(interface{ Killed() []int }); ok {
		for _, r := range killer.Killed() {
			deadSet[r] = true
		}
	}
	for r, err := range errs {
		if errors.Is(err, comm.ErrRankKilled) {
			deadSet[r] = true
		}
	}
	// Heartbeat verdicts corroborate: a rank flagged silent by a monitor
	// that is NOT itself dead counts as dead. (A killed rank's own monitor
	// goes blind to every peer at once — its verdicts are noise and are
	// excluded.) Only consulted when the generation actually failed; a
	// clean finish ignores residual suspicions.
	anyErr := false
	for _, err := range errs {
		if err != nil {
			anyErr = true
		}
	}
	if anyErr {
		for r, m := range monitors {
			if m == nil || deadSet[r] {
				continue
			}
			for _, failed := range m.Failed() {
				deadSet[failed] = true
			}
		}
	}
	dead := make([]int, 0, len(deadSet))
	for r := range deadSet {
		dead = append(dead, r)
	}
	sort.Ints(dead)
	return results, errs, dead
}

// mergeElastic assembles the cross-generation result: the epoch history in
// order (each epoch's stats from its final run) and the finishing
// generation's scalar outcomes.
func mergeElastic(out *ElasticResult, byEpoch map[int]EpochStats, last *Result) *ElasticResult {
	epochs := make([]int, 0, len(byEpoch))
	for e := range byEpoch {
		epochs = append(epochs, e)
	}
	sort.Ints(epochs)
	r := out.Result
	r.History = r.History[:0]
	for _, e := range epochs {
		st := byEpoch[e]
		r.History = append(r.History, st)
		if st.ValAcc > r.BestValAcc {
			r.BestValAcc = st.ValAcc
		}
		r.FinalValAcc = st.ValAcc
	}
	if last != nil {
		r.Iterations = last.Iterations
		r.Stopped = last.Stopped
		r.KFACStats = last.KFACStats
	}
	return out
}
