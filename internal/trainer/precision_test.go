package trainer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kfac"
)

// TestKFACF32TrainsWithinLossTolerance is the trainer-level acceptance check
// for the mixed-precision path: a same-seed run with Precision == F32 (which
// switches both the layers' forward/backward and the K-FAC kernels to
// float32-with-float64-accumulation) must track the float64 run's per-epoch
// training loss within a small tolerance and reach comparable validation
// accuracy — the "same convergence, faster arithmetic" contract of the
// paper's mixed-precision discussion.
func TestKFACF32TrainsWithinLossTolerance(t *testing.T) {
	train, test := tinyDataset(t)
	run := func(pr kfac.Precision) *Result {
		net := buildTestNet(rand.New(rand.NewSource(1)))
		cfg := baseConfig()
		cfg.KFAC = &kfac.Options{
			FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01, Precision: pr,
		}
		res, err := TrainRank(net, nil, train, test, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(kfac.F64)
	f32 := run(kfac.F32)
	for e := range ref.History {
		d := math.Abs(ref.History[e].TrainLoss - f32.History[e].TrainLoss)
		// Same-seed trajectories diverge slowly: float32 round-off perturbs
		// each step by ~1e-6 relative, compounding over ~48 steps to well
		// under 5% of the loss scale on this task.
		if d > 0.05*(1+math.Abs(ref.History[e].TrainLoss)) {
			t.Errorf("epoch %d: f64 loss %.4f vs f32 loss %.4f",
				e, ref.History[e].TrainLoss, f32.History[e].TrainLoss)
		}
	}
	if f32.FinalValAcc < ref.FinalValAcc-0.1 {
		t.Errorf("f32 val acc %.3f much worse than f64 %.3f", f32.FinalValAcc, ref.FinalValAcc)
	}
}

// TestKFACF32DistributedConsistentAcrossRanks checks the mixed-precision
// path under a real multi-rank run: float64 comm payloads keep the ranks in
// exact agreement even though each rank computes in float32.
func TestKFACF32DistributedConsistentAcrossRanks(t *testing.T) {
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	cfg.KFAC = &kfac.Options{
		FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01, Precision: kfac.F32,
	}
	results, err := RunDistributed(2, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].FinalValAcc != results[1].FinalValAcc {
		t.Errorf("f32 ranks disagree: %v vs %v",
			results[0].FinalValAcc, results[1].FinalValAcc)
	}
	if results[0].FinalValAcc <= 0.3 {
		t.Errorf("f32 distributed val acc = %v, want > 0.3", results[0].FinalValAcc)
	}
}
