package trainer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/nn"
	"repro/internal/optim"
)

// ErrStop is returned by a hook to end training gracefully after the
// current epoch: the run finishes with Result.Stopped set and a nil error.
// In a distributed run every rank's hooks must reach the same decision at
// the same epoch (hooks observing only rank-averaged metrics, like the
// stock WithStopAtValAcc hook, satisfy this automatically) — diverging
// decisions desynchronize the collective schedule.
var ErrStop = errors.New("trainer: stop requested by hook")

// ErrResumeComplete is returned by Run when the resume checkpoint already
// covers every configured epoch — there is nothing left to train. Callers
// that treat the checkpoint as authoritative (RunElastic) interpret it as
// a clean finish; anyone else gets a loud signal instead of a silently
// zeroed Result.
var ErrResumeComplete = errors.New("trainer: resume checkpoint already covers all configured epochs")

// StepInfo describes one completed optimizer step.
type StepInfo struct {
	// Epoch is the zero-based epoch of the step.
	Epoch int
	// Iteration is the global optimizer-step count so far (1-based: the
	// value after this step).
	Iteration int
	// LR is the learning rate the step used.
	LR float64
	// Loss is this rank's training loss of the step, averaged over the
	// step's accumulation group. It is local (not rank-averaged): hooks
	// that need a cross-rank view must reduce it themselves, and any
	// cross-rank decision derived from it must still satisfy the
	// all-ranks-agree contract documented on the hook types.
	Loss float64
	// StepDuration is the wall time of the step on this rank:
	// forward/backward over the accumulation group, gradient exchange,
	// preconditioning, and the optimizer update — everything between two
	// iteration boundaries except the hooks themselves.
	StepDuration time.Duration
}

// CheckpointInfo describes a checkpoint boundary.
type CheckpointInfo struct {
	// Epoch is the zero-based epoch just completed.
	Epoch int
	// Iterations is the global optimizer-step count so far.
	Iterations int
}

// Hook signatures. Hooks run synchronously on the training goroutine of
// EVERY rank, in registration order; anything rank-specific (logging,
// checkpoint writing) must guard on Session.Rank itself. A hook returning
// ErrStop requests a graceful stop (honored at the epoch boundary for all
// hook kinds); any other non-nil error aborts the run with that error.
type (
	// EpochHook runs after each epoch's validation, observing the
	// rank-averaged EpochStats that will be appended to Result.History.
	EpochHook func(s *Session, e EpochStats) error
	// StepHook runs after each optimizer step (after the gradient
	// exchange, preconditioning, and parameter update).
	StepHook func(s *Session, info StepInfo) error
	// CheckpointHook runs after the epoch hooks of every WithCheckpointEvery
	// boundary epoch, and once more at the final epoch of the run.
	CheckpointHook func(s *Session, info CheckpointInfo) error
)

// Session is a configured training run over one rank's model replica. Build
// it with NewSession and functional options, register hooks, then call Run.
// The zero value is not usable.
//
// A Session generalizes the deprecated TrainRank entry point: the paper's
// Listing 1 loop (synchronize → precondition → step) is the fixed skeleton,
// and everything scenario-specific — optimizer, K-FAC preconditioning,
// schedules, logging, early stopping, checkpointing, observation — attaches
// through options and typed hooks.
type Session struct {
	net         *nn.Sequential
	comm        *comm.Communicator
	train, test *data.Dataset
	cfg         Config // resolved option form (kept internal, like kfac.Options)

	buildOpt   func(params []*nn.Param, initialLR float64) optim.Optimizer
	epochHooks []EpochHook
	stepHooks  []StepHook
	ckptHooks  []CheckpointHook
	ckptEvery  int
	resume     *checkpoint.File
}

// SessionOption configures a Session at construction. Options apply in
// argument order; for scalar settings the last option wins, while hook
// options accumulate in order.
type SessionOption func(*Session)

// WithEpochs sets the number of passes over the training set (required).
func WithEpochs(n int) SessionOption { return func(s *Session) { s.cfg.Epochs = n } }

// WithBatchPerRank sets the local mini-batch size (required); the effective
// global batch is BatchPerRank × world size.
func WithBatchPerRank(n int) SessionOption { return func(s *Session) { s.cfg.BatchPerRank = n } }

// WithLRSchedule sets the per-epoch learning-rate schedule (already scaled
// for the world size, per the paper's linear-scaling rule).
func WithLRSchedule(sched optim.LRSchedule) SessionOption {
	return func(s *Session) { s.cfg.LR = sched }
}

// WithMomentum sets the default SGD optimizer's momentum (ignored when
// WithOptimizer overrides the optimizer).
func WithMomentum(m float64) SessionOption { return func(s *Session) { s.cfg.Momentum = m } }

// WithWeightDecay sets the default SGD optimizer's L2 weight decay (ignored
// when WithOptimizer overrides the optimizer).
func WithWeightDecay(wd float64) SessionOption { return func(s *Session) { s.cfg.WeightDecay = wd } }

// WithLabelSmoothing sets the cross-entropy label-smoothing ε.
func WithLabelSmoothing(eps float64) SessionOption {
	return func(s *Session) { s.cfg.LabelSmoothing = eps }
}

// WithSeed drives data sharding; it must agree across ranks.
func WithSeed(seed int64) SessionOption { return func(s *Session) { s.cfg.Seed = seed } }

// WithAccumSteps accumulates gradients over this many micro-batches before
// each exchange and optimizer step (0/1 = off).
func WithAccumSteps(n int) SessionOption { return func(s *Session) { s.cfg.AccumSteps = n } }

// WithFusionBytes bounds the gradient-fusion buffer (0 = default 16 MB).
func WithFusionBytes(b int) SessionOption { return func(s *Session) { s.cfg.FusionBytes = b } }

// WithKFAC enables K-FAC preconditioning, configured by kfac functional
// options (paper defaults where unset).
func WithKFAC(opts ...kfac.Option) SessionOption {
	return func(s *Session) {
		o := kfac.Build(opts...)
		s.cfg.KFAC = &o
	}
}

// WithKFACOptions enables K-FAC preconditioning from a resolved options
// struct — the form trainer.Config carries.
func WithKFACOptions(o kfac.Options) SessionOption {
	return func(s *Session) { s.cfg.KFAC = &o }
}

// WithDampingSchedule decays K-FAC damping at fixed epochs (§V-C).
func WithDampingSchedule(sched *kfac.ParamSchedule) SessionOption {
	return func(s *Session) { s.cfg.DampingSchedule = sched }
}

// WithFreqSchedule decays kfac-update-freq at fixed epochs (§V-C).
func WithFreqSchedule(sched *kfac.ParamSchedule) SessionOption {
	return func(s *Session) { s.cfg.FreqSchedule = sched }
}

// WithOptimizer replaces the default SGD update rule. build receives the
// model parameters and the schedule's epoch-0 learning rate; the session
// calls SetLR on the returned optimizer at every epoch boundary and
// ZeroGrad before every accumulation group.
func WithOptimizer(build func(params []*nn.Param, initialLR float64) optim.Optimizer) SessionOption {
	return func(s *Session) { s.buildOpt = build }
}

// WithTop5 additionally records top-5 validation accuracy in EpochStats.
func WithTop5() SessionOption { return func(s *Session) { s.cfg.TrackTop5 = true } }

// WithLogger installs the stock per-epoch logging hook: one line per epoch
// to w, written by rank 0 only.
func WithLogger(w io.Writer) SessionOption {
	return func(s *Session) {
		s.OnEpochEnd(func(s *Session, e EpochStats) error {
			if s.Rank() == 0 && w != nil {
				fmt.Fprintf(w, "epoch %3d  lr %.4f  loss %.4f  train-acc %.4f  val-acc %.4f  (%.1fs)\n",
					e.Epoch, e.LR, e.TrainLoss, e.TrainAcc, e.ValAcc, e.Wall.Seconds())
			}
			return nil
		})
	}
}

// WithStopAtValAcc installs the stock early-stopping hook: training ends at
// the first epoch whose (rank-averaged) validation accuracy reaches the
// threshold — the paper's time-to-baseline measurement. Non-positive
// thresholds install nothing.
func WithStopAtValAcc(acc float64) SessionOption {
	return func(s *Session) {
		if acc <= 0 {
			return
		}
		s.OnEpochEnd(func(s *Session, e EpochStats) error {
			if e.ValAcc >= acc {
				return ErrStop
			}
			return nil
		})
	}
}

// WithResume starts the run from a checkpoint instead of from scratch:
// Run restores the file's parameters and buffers into the model before the
// initial broadcast, begins at epoch f.Epoch (the checkpoint's count of
// completed epochs), and continues Result.Iterations from f.Step. The
// checkpoint may have been written at any world size — restore is
// world-size agnostic (see package checkpoint) and this session's shard
// sampler and K-FAC placement are built for the current world. All ranks
// must resume from an identical checkpoint (the broadcast enforces
// replica agreement regardless).
func WithResume(f *checkpoint.File) SessionOption {
	return func(s *Session) { s.resume = f }
}

// WithCheckpointEvery fires the OnCheckpoint hooks after every n-th epoch
// (and, regardless of alignment, after the final epoch of a completed or
// stopped run). n ≤ 0 fires them only at that final epoch.
func WithCheckpointEvery(n int) SessionOption {
	return func(s *Session) { s.ckptEvery = n }
}

// OnEpochEnd returns an option registering an epoch hook; see also the
// Session.OnEpochEnd method for post-construction registration.
func OnEpochEnd(h EpochHook) SessionOption { return func(s *Session) { s.OnEpochEnd(h) } }

// OnStep returns an option registering a step hook.
func OnStep(h StepHook) SessionOption { return func(s *Session) { s.OnStep(h) } }

// OnCheckpoint returns an option registering a checkpoint hook.
func OnCheckpoint(h CheckpointHook) SessionOption { return func(s *Session) { s.OnCheckpoint(h) } }

// NewSession builds a training session for this rank. c may be nil for
// single-process runs; all ranks must use identical options and datasets
// (each rank loads the full dataset and iterates its shard).
func NewSession(net *nn.Sequential, c *comm.Communicator, train, test *data.Dataset,
	opts ...SessionOption) (*Session, error) {
	if net == nil || train == nil || test == nil {
		return nil, fmt.Errorf("trainer: NewSession requires a model and datasets")
	}
	s := &Session{net: net, comm: c, train: train, test: test}
	for _, o := range opts {
		o(s)
	}
	if s.cfg.Epochs <= 0 || s.cfg.BatchPerRank <= 0 {
		return nil, fmt.Errorf("trainer: Epochs and BatchPerRank must be positive")
	}
	return s, nil
}

// OnEpochEnd appends an epoch hook (run after each epoch's validation, in
// registration order).
func (s *Session) OnEpochEnd(h EpochHook) { s.epochHooks = append(s.epochHooks, h) }

// OnStep appends a step hook (run after each optimizer step).
func (s *Session) OnStep(h StepHook) { s.stepHooks = append(s.stepHooks, h) }

// OnCheckpoint appends a checkpoint hook (run at WithCheckpointEvery
// boundaries and at the end of the run).
func (s *Session) OnCheckpoint(h CheckpointHook) { s.ckptHooks = append(s.ckptHooks, h) }

// Net returns the model replica this session trains.
func (s *Session) Net() *nn.Sequential { return s.net }

// Rank returns this session's rank (0 for single-process runs).
func (s *Session) Rank() int {
	if s.comm == nil {
		return 0
	}
	return s.comm.Rank()
}

// World returns the number of ranks (1 for single-process runs).
func (s *Session) World() int {
	if s.comm == nil {
		return 1
	}
	return s.comm.Size()
}

// checkCancelled decides — identically on every rank — whether the run has
// been cancelled. Local context observations may race (one rank can see
// cancellation an iteration before another), so each rank contributes a
// flag to a tiny allreduce and every rank acts on the agreed sum: either
// all ranks stop at this iteration boundary or none do. This is the
// cooperative half of the cancellation contract (docs/ARCHITECTURE.md);
// it never aborts a collective mid-protocol, so the SPMD schedule stays
// synchronized up to the common stopping point.
//
// The consensus collective is only issued for cancellable contexts: every
// rank must agree on cancellability (all pass a cancellable context or
// none do), which RunSessions guarantees by construction.
func (s *Session) checkCancelled(ctx context.Context) (bool, error) {
	if ctx.Done() == nil {
		return false, nil
	}
	flag := 0.0
	if ctx.Err() != nil {
		flag = 1
	}
	if s.comm != nil && s.comm.Size() > 1 {
		buf := []float64{flag}
		if err := s.comm.AllreduceSum(buf); err != nil {
			return false, fmt.Errorf("trainer: cancellation consensus: %w", err)
		}
		flag = buf[0]
	}
	if flag == 0 {
		return false, nil
	}
	// Report the local cause when this rank was cancelled itself; a rank
	// stopped purely by consensus reports context.Canceled.
	if err := ctx.Err(); err != nil {
		return true, err
	}
	return true, context.Canceled
}

// runHooks drives one hook list, folding ErrStop into a graceful-stop flag
// and propagating any other error.
func runHooks[T any, H ~func(*Session, T) error](s *Session, hooks []H, v T) (stop bool, err error) {
	for _, h := range hooks {
		switch herr := h(s, v); {
		case herr == nil:
		case errors.Is(herr, ErrStop):
			stop = true
		default:
			return stop, herr
		}
	}
	return stop, nil
}

// Run trains until the configured epochs complete, a hook requests a stop,
// an error occurs, or ctx is cancelled. On cancellation it returns the
// partial Result together with the context's error (context.Canceled on
// ranks stopped by cross-rank consensus); every rank observes cancellation
// at the same iteration boundary, so the communicator remains synchronized
// and reusable.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := &s.cfg
	rank, world := s.Rank(), s.World()
	c := s.comm
	params := s.net.Params()

	// The session consumes every layer output within the step that produced
	// it, so workspace recycling is safe here and removes the per-step heap
	// churn of forward/backward (see nn.BufferReuser). Results are
	// bit-identical either way. Restored on exit: callers that keep using
	// the net afterwards (inference loops comparing outputs across forward
	// passes) get the default fresh-tensor contract back.
	nn.SetBufferReuse(s.net, true)
	defer nn.SetBufferReuse(s.net, false)

	// Mixed precision: when K-FAC is configured for float32 kernels, switch
	// the layers' forward/backward to the float32 compute path too, so the
	// preconditioner consumes native float32 captures with no narrowing
	// pass. Parameters, gradients, the allreduce payloads, and checkpoints
	// stay float64 (convert at the boundary). Restored on exit like buffer
	// reuse.
	if cfg.KFAC != nil && cfg.KFAC.Precision == kfac.F32 {
		nn.SetComputeF32(s.net, true)
		defer nn.SetComputeF32(s.net, false)
	}

	startEpoch, startStep := 0, 0
	if s.resume != nil {
		if err := s.resume.Restore(s.net); err != nil {
			return nil, fmt.Errorf("trainer: resume: %w", err)
		}
		startEpoch, startStep = s.resume.Epoch, s.resume.Step
		if startEpoch >= cfg.Epochs {
			return &Result{Iterations: startStep},
				fmt.Errorf("%w (checkpoint epoch %d, configured epochs %d)",
					ErrResumeComplete, startEpoch, cfg.Epochs)
		}
	}

	// Horovod convention: broadcast initial weights from rank 0 so all
	// replicas start identical regardless of construction seeds.
	if c != nil && world > 1 {
		for _, p := range params {
			if err := c.Broadcast(p.Value.Data, 0); err != nil {
				return nil, fmt.Errorf("trainer: initial broadcast: %w", err)
			}
		}
	}

	var opt optim.Optimizer
	if s.buildOpt != nil {
		opt = s.buildOpt(params, cfg.LR.At(0))
	} else {
		opt = optim.SGD(params, optim.WithLR(cfg.LR.At(0)),
			optim.WithMomentum(cfg.Momentum), optim.WithWeightDecay(cfg.WeightDecay))
	}
	var prec *kfac.Preconditioner
	if cfg.KFAC != nil {
		// The K-FAC options (including the step engine) pass through as-is.
		// Under kfac.EnginePipelined the preconditioner issues overlapping
		// async collectives inside Step; that is safe here because every
		// rank builds the identical model (so the per-layer schedule is
		// deterministic and identical) and the session performs no other
		// collective between Step's entry and return — the SPMD ordering
		// contract of docs/ARCHITECTURE.md.
		prec = kfac.NewFromOptions(s.net, c, *cfg.KFAC)
		defer prec.Close()
	}
	ce := nn.CrossEntropy{Smoothing: cfg.LabelSmoothing}
	sampler := data.ShardSampler{N: s.train.Len(), Rank: rank, World: world, Seed: cfg.Seed}
	// kfac.WithGroupSize routes the per-iteration gradient exchange (and
	// the preconditioner's own factor averaging) through the two-level
	// hierarchical allreduce — the intra-node/inter-node split of the
	// paper's platform. Zero keeps the flat ring.
	gradGroupSize := 0
	if cfg.KFAC != nil {
		gradGroupSize = cfg.KFAC.GroupSize
	}
	// The gradient exchange owns its error-feedback accumulator, separate
	// from the preconditioner's factor-path residuals: the two streams
	// carry different tensors, so sharing slots would corrupt both. It
	// persists across iterations (and codec switches — see
	// comm.ErrorFeedback.SetCodec) so residual mass is never dropped.
	gradEF := comm.NewErrorFeedback(nil)

	res := &Result{Iterations: startStep}
	if prec != nil {
		res.KFACStats = prec.Stats()
	}
	fireCheckpoints := func(epoch int) (stop bool, err error) {
		if len(s.ckptHooks) == 0 {
			return false, nil
		}
		return runHooks(s, s.ckptHooks, CheckpointInfo{Epoch: epoch, Iterations: res.Iterations})
	}
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		lr := cfg.LR.At(epoch)
		opt.SetLR(lr)
		if prec != nil {
			if cfg.DampingSchedule != nil {
				prec.SetDamping(cfg.DampingSchedule.At(epoch))
			}
			if cfg.FreqSchedule != nil {
				prec.SetInvUpdateFreq(int(cfg.FreqSchedule.At(epoch) + 0.5))
			}
		}

		accum := cfg.AccumSteps
		if accum < 1 {
			accum = 1
		}
		batches := data.Batches(s.train, sampler.EpochIndices(epoch), cfg.BatchPerRank)
		// Truncate to a whole number of accumulation groups.
		batches = batches[:len(batches)/accum*accum]
		var lossSum, accSum float64
		var stopRequested bool
		for bi := 0; bi < len(batches); bi += accum {
			// Iteration boundary: the only point at which cancellation is
			// acted on, and only by cross-rank consensus.
			if cancelled, cerr := s.checkCancelled(ctx); cancelled || cerr != nil {
				return res, cerr
			}
			stepStart := time.Now()
			opt.ZeroGrad()
			stepLoss := 0.0
			for k := 0; k < accum; k++ {
				b := batches[bi+k]
				out := s.net.Forward(b.X, true)
				loss, grad := ce.Loss(out, b.Labels)
				stepLoss += loss / float64(accum)
				accSum += nn.Accuracy(out, b.Labels) / float64(accum)
				s.net.Backward(grad)
			}
			lossSum += stepLoss
			if accum > 1 {
				inv := 1 / float64(accum)
				for _, p := range params {
					p.Grad.Scale(inv)
				}
			}

			// Gradient exchange (optimizer.synchronize() in Listing 1).
			// With a preconditioner attached, the exchange follows its
			// effective tuning: the static kfac.WithCompression codec, or —
			// under kfac.WithAutotune — whatever level the last consensus
			// decision selected. Tuning() is sampled here, before Step, so a
			// decision made during step k reconfigures the exchange from
			// step k+1: the same boundary on every rank, because the
			// decision itself is a consensus output.
			if c != nil && world > 1 {
				fusionBytes, groupSize := cfg.FusionBytes, gradGroupSize
				var codec comm.Codec
				bare := false
				if prec != nil {
					ts := prec.Tuning()
					if ts.Tuned {
						fusionBytes, groupSize = ts.FusionBytes, ts.GroupSize
					}
					codec, bare = ts.Codec, ts.NoErrorFeedback
				}
				fu := comm.NewFuser(c, fusionBytes)
				fu.SetGroupSize(groupSize)
				if codec != nil {
					if bare {
						fu.SetCodec(codec)
					} else {
						gradEF.SetCodec(codec)
						fu.SetErrorFeedback(gradEF)
					}
				}
				for _, p := range params {
					fu.Add(p.Grad)
				}
				if err := fu.Flush(); err != nil {
					return res, fmt.Errorf("trainer: gradient allreduce: %w", err)
				}
			}
			// preconditioner.step() before optimizer.step().
			if prec != nil {
				if err := prec.Step(lr); err != nil {
					return res, fmt.Errorf("trainer: kfac step: %w", err)
				}
			}
			opt.Step()
			res.Iterations++
			if len(s.stepHooks) > 0 {
				stop, err := runHooks(s, s.stepHooks,
					StepInfo{Epoch: epoch, Iteration: res.Iterations, LR: lr,
						Loss: stepLoss, StepDuration: time.Since(stepStart)})
				if err != nil {
					return res, err
				}
				// ErrStop from a step hook is honored at the epoch
				// boundary, keeping ranks synchronized through validation.
				stopRequested = stopRequested || stop
			}
		}

		st := EpochStats{Epoch: epoch, LR: lr}
		if groups := len(batches) / accum; groups > 0 {
			st.TrainLoss = lossSum / float64(groups)
			st.TrainAcc = accSum / float64(groups)
		}
		// Average the per-rank training metrics so logs agree across ranks.
		if c != nil && world > 1 {
			buf := []float64{st.TrainLoss, st.TrainAcc}
			if err := c.AllreduceMean(buf); err != nil {
				return res, err
			}
			st.TrainLoss, st.TrainAcc = buf[0], buf[1]
		}
		va, top5, err := evaluateTopK(s.net, c, s.test, cfg.BatchPerRank, cfg.Seed, cfg.TrackTop5)
		if err != nil {
			return res, err
		}
		st.ValAcc = va
		st.ValTop5 = top5
		st.Wall = time.Since(epochStart)
		res.TotalWall += st.Wall
		res.History = append(res.History, st)
		if va > res.BestValAcc {
			res.BestValAcc = va
		}
		res.FinalValAcc = va

		stop, err := runHooks(s, s.epochHooks, st)
		if err != nil {
			return res, err
		}
		stopRequested = stopRequested || stop
		atCheckpoint := s.ckptEvery > 0 && (epoch+1)%s.ckptEvery == 0
		lastEpoch := epoch == cfg.Epochs-1 || stopRequested
		if atCheckpoint || lastEpoch {
			stop, err := fireCheckpoints(epoch)
			if err != nil {
				return res, err
			}
			stopRequested = stopRequested || stop
		}
		if stopRequested {
			res.Stopped = true
			break
		}
	}
	return res, nil
}

// RunSessions builds one session per rank over an in-process fabric and
// runs them in parallel under a shared context, returning every rank's
// Result — the Session-API counterpart of RunDistributed. buildNet is
// called once per rank with a rank-independent seed so replicas start
// identical (the initial broadcast enforces it regardless). The shared
// context satisfies the cancellation contract's requirement that every
// rank agree on cancellability.
func RunSessions(ctx context.Context, world int, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, opts ...SessionOption) ([]*Result, error) {
	if world < 1 {
		return nil, fmt.Errorf("trainer: world must be ≥ 1")
	}
	return RunSessionsOn(ctx, comm.NewInprocFabric(world), world, buildNet, train, test, opts...)
}

// RunSessionsOn is RunSessions over a caller-supplied fabric: one session
// per rank on fab.Endpoint(0..world-1). This is how a run is placed on a
// fault-injected world (comm.NewChaosFabric) or any other transport that
// hands out per-rank endpoints; the kfac-train CLI's -chaos mode and the
// chaos experiment both use it.
func RunSessionsOn(ctx context.Context, fab comm.Fabric, world int, buildNet func(rng *rand.Rand) *nn.Sequential,
	train, test *data.Dataset, opts ...SessionOption) ([]*Result, error) {
	if world < 1 {
		return nil, fmt.Errorf("trainer: world must be ≥ 1")
	}
	// abortCtx fires only when a rank fails: peers blocked mid-collective
	// on the broken rank (reachable on fault-injecting fabrics — exhausted
	// chaos retries, kills) are hard-aborted instead of hanging forever.
	// It is deliberately NOT derived from the run ctx: user cancellation
	// goes through the cooperative consensus path, which keeps the clean
	// all-ranks-stop-together semantics and bit-identical arithmetic.
	abortCtx, abort := context.WithCancel(context.Background())
	defer abort()
	results := make([]*Result, world)
	errs := make([]error, world)
	done := make(chan int, world)
	for r := 0; r < world; r++ {
		go func(r int) {
			defer func() { done <- r }()
			net := buildNet(rand.New(rand.NewSource(12345)))
			c := comm.NewCommunicator(fab.Endpoint(r)).WithContext(abortCtx)
			s, err := NewSession(net, c, train, test, opts...)
			if err != nil {
				errs[r] = err
				abort()
				return
			}
			results[r], errs[r] = s.Run(ctx)
			if errs[r] != nil && !errors.Is(errs[r], context.Canceled) {
				abort()
			}
		}(r)
	}
	for i := 0; i < world; i++ {
		<-done
	}
	// Prefer the originating failure over the context errors it induced in
	// peers through the abort.
	var ctxErr error
	for r, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			if ctxErr == nil {
				ctxErr = fmt.Errorf("rank %d: %w", r, err)
			}
		default:
			return results, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if ctxErr != nil {
		return results, ctxErr
	}
	return results, nil
}
