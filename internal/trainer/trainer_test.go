package trainer

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/kfac"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
)

// tinyDataset returns a small, easy synthetic task the tests can learn in a
// handful of epochs.
func tinyDataset(t *testing.T) (*data.Dataset, *data.Dataset) {
	t.Helper()
	cfg := data.SyntheticConfig{
		Train: 256, Test: 96, Classes: 4,
		Channels: 1, Size: 8, Noise: 0.3, Shift: 1, Seed: 11,
	}
	train, test := data.GenerateSynthetic(cfg)
	return train, test
}

func buildTestNet(rng *rand.Rand) *nn.Sequential {
	return models.BuildSmallCNN(1, 4, 4, rng)
}

func baseConfig() Config {
	return Config{
		Epochs:       3,
		BatchPerRank: 16,
		LR:           optim.LRSchedule{BaseLR: 0.05, WarmupEpochs: 1},
		Momentum:     0.9,
		Seed:         5,
	}
}

func TestSingleProcessSGDTrains(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(1)))
	cfg := baseConfig()
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != cfg.Epochs {
		t.Fatalf("history length = %d", len(res.History))
	}
	if res.Iterations != cfg.Epochs*(train.Len()/cfg.BatchPerRank) {
		t.Errorf("iterations = %d", res.Iterations)
	}
	// Loss should drop from epoch 0 to the last epoch.
	if res.History[cfg.Epochs-1].TrainLoss >= res.History[0].TrainLoss {
		t.Errorf("loss did not decrease: %v → %v",
			res.History[0].TrainLoss, res.History[cfg.Epochs-1].TrainLoss)
	}
	// Better than chance (0.25) on validation.
	if res.FinalValAcc <= 0.3 {
		t.Errorf("val acc = %v, want > 0.3", res.FinalValAcc)
	}
}

func TestSingleProcessKFACTrains(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(1)))
	cfg := baseConfig()
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01}
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalValAcc <= 0.3 {
		t.Errorf("K-FAC val acc = %v, want > 0.3", res.FinalValAcc)
	}
	for _, p := range net.Params() {
		if p.Value.HasNaN() {
			t.Fatalf("parameter %s has NaN after K-FAC training", p.Name)
		}
	}
}

func TestDistributedMatchesSingleWithSameGlobalBatch(t *testing.T) {
	// 2 ranks × batch 8 must follow the same trajectory as 1 rank × batch
	// 16 when both see the same global batches. Exact equality is not
	// expected (shard order differs within the global batch is fine — the
	// averaged gradient is permutation invariant, so losses should agree
	// closely). We verify the distributed run trains and all ranks agree.
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	results, err := RunDistributed(2, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].FinalValAcc != results[1].FinalValAcc {
		t.Errorf("ranks disagree on val acc: %v vs %v",
			results[0].FinalValAcc, results[1].FinalValAcc)
	}
	if results[0].FinalValAcc <= 0.3 {
		t.Errorf("distributed val acc = %v", results[0].FinalValAcc)
	}
}

func TestDistributedKFACConsistentAcrossRanks(t *testing.T) {
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.BatchPerRank = 8
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01}
	results, err := RunDistributed(2, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].FinalValAcc != results[1].FinalValAcc {
		t.Errorf("K-FAC ranks disagree: %v vs %v",
			results[0].FinalValAcc, results[1].FinalValAcc)
	}
}

func TestDistributedKFACLayerWise(t *testing.T) {
	train, test := tinyDataset(t)
	cfg := baseConfig()
	cfg.Epochs = 1
	cfg.BatchPerRank = 8
	cfg.KFAC = &kfac.Options{
		Strategy: kfac.LayerWise, FactorUpdateFreq: 2, InvUpdateFreq: 4, Damping: 0.01,
	}
	results, err := RunDistributed(3, buildTestNet, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].FinalValAcc != results[2].FinalValAcc {
		t.Error("layer-wise ranks disagree")
	}
}

func TestSchedulesApplied(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(2)))
	cfg := baseConfig()
	cfg.Epochs = 2
	cfg.KFAC = &kfac.Options{FactorUpdateFreq: 1, InvUpdateFreq: 1}
	cfg.DampingSchedule = &kfac.ParamSchedule{Initial: 0.01, DecayEpochs: []int{1}, Factor: 0.5}
	cfg.FreqSchedule = &kfac.ParamSchedule{Initial: 2, DecayEpochs: []int{1}, Factor: 2} // grows to 4
	res, err := TrainRank(net, nil, train, test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatal("wrong history length")
	}
	// LR schedule honored in history.
	if res.History[0].LR != cfg.LR.At(0) || res.History[1].LR != cfg.LR.At(1) {
		t.Error("LR schedule not recorded")
	}
}

func TestEpochsToReach(t *testing.T) {
	r := &Result{History: []EpochStats{
		{Epoch: 0, ValAcc: 0.5},
		{Epoch: 1, ValAcc: 0.7},
		{Epoch: 2, ValAcc: 0.9},
	}}
	if got := r.EpochsToReach(0.7); got != 2 {
		t.Errorf("EpochsToReach(0.7) = %d, want 2", got)
	}
	if got := r.EpochsToReach(0.95); got != -1 {
		t.Errorf("EpochsToReach(0.95) = %d, want -1", got)
	}
}

func TestEvaluateSharded(t *testing.T) {
	train, test := tinyDataset(t)
	_ = train
	net := buildTestNet(rand.New(rand.NewSource(3)))
	acc, err := Evaluate(net, nil, test, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy out of range: %v", acc)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	train, test := tinyDataset(t)
	net := buildTestNet(rand.New(rand.NewSource(4)))
	if _, err := TrainRank(net, nil, train, test, Config{}); err == nil {
		t.Error("expected error for zero config")
	}
	if _, err := RunDistributed(0, buildTestNet, train, test, baseConfig()); err == nil {
		t.Error("expected error for world=0")
	}
}
