// Package sched provides the concurrency primitives the pipelined K-FAC
// step engine is built from, kept generic so any layer of the codebase can
// use them: a bounded worker Pool for CPU-bound tasks, an error-collecting
// Group for wait-bound goroutines (communication waiters, stage issuers),
// and a dependency-driven task Graph.
//
// The split matters for deadlock freedom: Pool workers must never block on
// other tasks (they run leaf compute), while Group goroutines are unbounded
// and may block on channels, collective handles, or Task completion. The
// Graph schedules a task onto its Pool only once every dependency has
// finished, so no worker slot is ever held by a task that is waiting.
package sched

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool for CPU-bound tasks. Submitted functions are
// executed by at most `workers` goroutines; Submit never blocks the caller.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup // tracks in-flight + queued tasks

	mu      sync.Mutex
	closed  bool
	workers int
}

// NewPool creates a pool with the given concurrency; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		// Buffer a healthy queue so producers rarely need the overflow path.
		tasks:   make(chan func(), 4*workers),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for fn := range p.tasks {
		fn()
		p.wg.Done()
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Submit enqueues fn for execution. It never blocks: when the queue is full
// the task is handed to a transient goroutine that feeds it into the queue,
// preserving the concurrency bound while keeping producers (e.g. collective
// issuers that must maintain SPMD ordering) free-running. Submitting to a
// closed pool panics, as sending on a closed channel would.
func (p *Pool) Submit(fn func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed Pool")
	}
	p.wg.Add(1)
	select {
	case p.tasks <- fn:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		go func() { p.tasks <- fn }()
	}
}

// Wait blocks until every task submitted so far has finished.
func (p *Pool) Wait() { p.wg.Wait() }

// Close waits for outstanding tasks and stops the workers. The pool cannot
// be reused afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
	close(p.tasks)
}

// Group runs goroutines that may block (on channels, network handles, or
// Task completion) and collects the first error — errgroup with no external
// dependency. The zero value is ready to use.
type Group struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// Go runs fn on its own goroutine.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Err returns the first recorded error without waiting.
func (g *Group) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Wait blocks until every goroutine started with Go has returned, then
// reports the first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.Err()
}

// Task is one node of a Graph: a function plus its dependencies. A task runs
// on the graph's Pool once all dependencies have completed successfully; if
// any dependency failed (or was itself skipped), the task is skipped and
// inherits the error.
type Task struct {
	fn   func() error
	done chan struct{}
	err  error

	mu      sync.Mutex
	pending int
	succs   []*Task
	g       *Graph
}

// Err returns the task's error (nil until done; call Wait first to
// synchronize).
func (t *Task) Err() error { return t.err }

// Wait blocks until the task has run (or been skipped) and returns its
// error.
func (t *Task) Wait() error {
	<-t.done
	return t.err
}

// Done returns a channel closed when the task completes; useful in select
// loops.
func (t *Task) Done() <-chan struct{} { return t.done }

// Graph schedules dependent tasks over a Pool. Tasks may be added
// dynamically — including from inside running tasks — until Wait is called.
// Dependency cycles are impossible by construction: a task can only depend
// on tasks that already exist.
type Graph struct {
	pool *Pool
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGraph creates a task graph over pool.
func NewGraph(pool *Pool) *Graph { return &Graph{pool: pool} }

// Add registers fn with the given dependencies and returns its Task. The
// task is submitted to the pool as soon as every dependency has finished.
func (g *Graph) Add(fn func() error, deps ...*Task) *Task {
	t := &Task{fn: fn, done: make(chan struct{}), g: g}
	g.wg.Add(1)
	t.mu.Lock()
	for _, d := range deps {
		d.mu.Lock()
		select {
		case <-d.done:
			d.mu.Unlock()
			if d.err != nil && t.err == nil {
				t.err = fmt.Errorf("sched: dependency failed: %w", d.err)
			}
		default:
			t.pending++
			d.succs = append(d.succs, t)
			d.mu.Unlock()
		}
	}
	ready := t.pending == 0
	t.mu.Unlock()
	if ready {
		g.dispatch(t)
	}
	return t
}

// dispatch submits a ready task (or completes it immediately when a
// dependency already failed).
func (g *Graph) dispatch(t *Task) {
	if t.err != nil {
		t.finish()
		return
	}
	g.pool.Submit(func() {
		t.err = t.fn()
		t.finish()
	})
}

// finish marks t complete, records the graph error, and releases
// successors.
func (t *Task) finish() {
	close(t.done)
	if t.err != nil {
		t.g.mu.Lock()
		if t.g.err == nil {
			t.g.err = t.err
		}
		t.g.mu.Unlock()
	}
	t.mu.Lock()
	succs := t.succs
	t.succs = nil
	t.mu.Unlock()
	for _, s := range succs {
		s.mu.Lock()
		if t.err != nil && s.err == nil {
			s.err = fmt.Errorf("sched: dependency failed: %w", t.err)
		}
		s.pending--
		ready := s.pending == 0
		s.mu.Unlock()
		if ready {
			t.g.dispatch(s)
		}
	}
	t.g.wg.Done()
}

// Wait blocks until every task added so far has completed and returns the
// first error recorded in the graph.
func (g *Graph) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
